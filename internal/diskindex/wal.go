// Write-ahead-log plumbing of the disk partition: log lifecycle, the
// group-commit fsync barrier, and the coordinator-level recovery replay
// that turns "recovered to the last checkpoint" into "recovered every
// acknowledged commit". The on-disk format and the tail scan live in
// internal/store (wal.go); this file owns the partition integration and
// the shard.<k>.wal.* fault sites.
package diskindex

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"metablocking/internal/incremental"
	"metablocking/internal/store"
)

// openWal creates the partition's log generation bound to the lineage
// it extends — called at Open (non-deferred mode) before any commit can
// arrive.
func (p *Partition) openWal(checkpoint uint64, size int) error {
	w, err := store.CreateWal(filepath.Join(p.dir, store.WalFileName(p.nextWal)),
		store.WalMetaFor(p.cfg, p.index, p.shards, checkpoint, size))
	if err != nil {
		return err
	}
	p.wal = w
	p.nextWal++
	return nil
}

// SyncWAL implements shard.Maintainer: fsync the log if any record was
// appended since the last barrier. The fault site is consulted only
// when dirty, so a delay spec pins exactly the sync that has something
// to lose — the chaos suite's crash window.
func (p *Partition) SyncWAL() error {
	if p.wal == nil || !p.wal.Dirty() {
		return nil
	}
	if err := p.fault.Check(p.siteWalSync); err != nil {
		return err
	}
	start := time.Now()
	if err := p.wal.Sync(); err != nil {
		return err
	}
	d := time.Since(start).Nanoseconds()
	p.walSyncs++
	p.walSyncLastNs = d
	p.walSyncTotalNs += d
	p.ctrWalSyncs.Inc()
	return nil
}

// ReplayWAL applies the recovered write-ahead tail to freshly opened
// partitions: each record commits to its home shard through the normal
// memtable path — in ascending ID order, reproducing the exact
// insertion order of the never-crashed run — and, with the WAL enabled,
// is thereby re-logged into the new generation. The re-log is synced
// and the pre-open log files deleted before serving starts, so a crash
// loop converges instead of accumulating logs. With the WAL disabled
// the old files stay on disk (the replayed records exist nowhere else
// durable) until a checkpoint's sweep covers them.
//
// Call it after Open on every partition and before AddBlockCounts /
// shard.Restored; it returns the recovered global size — layout.Size
// plus the replayed records.
func ReplayWAL(parts []*Partition, layout *store.DiskLayout) (int, error) {
	tail := store.RecoverWalTail(layout)
	if len(tail.Records) > 0 && tail.Cfg != parts[0].cfg {
		return 0, fmt.Errorf("diskindex: wal written under config %+v, serving config is %+v: %w",
			tail.Cfg, parts[0].cfg, store.ErrVersionMismatch)
	}
	size := layout.Size
	for _, rec := range tail.Records {
		home := incremental.ShardOf(rec.ID, len(parts))
		if err := parts[home].Commit(rec.ID, rec.Profile, rec.Keys); err != nil {
			return 0, fmt.Errorf("diskindex: wal replay at id %d: %w", rec.ID, err)
		}
		parts[home].walReplayed++
		parts[home].ctrWalReplayed.Inc()
		size++
	}
	for k, p := range parts {
		p.walTruncated += tail.Truncated[k]
		p.ctrWalTruncated.Add(tail.Truncated[k])
		if !p.walEnabled {
			continue
		}
		if err := p.SyncWAL(); err != nil {
			return 0, err
		}
		p.dropStaleWals()
	}
	return size, nil
}

// dropStaleWals deletes the log files that predate this open: their
// surviving records were just re-logged (and synced) into the new
// generation.
func (p *Partition) dropStaleWals() {
	for _, name := range p.staleWals {
		os.Remove(filepath.Join(p.dir, name))
	}
	p.staleWals = nil
}
