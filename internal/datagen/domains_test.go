package datagen

import (
	"strings"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/entity"
)

func TestBIBShape(t *testing.T) {
	ds := BIB(0.2)
	c := ds.Collection
	if c.Task != entity.CleanClean {
		t.Fatal("BIB must be Clean-Clean")
	}
	if err := ds.GroundTruth.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Schema heterogeneity: DBLP side structured, Scholar side one field.
	if n := len(c.Profiles[0].Attributes); n != 4 {
		t.Fatalf("DBLP profile has %d attributes, want 4", n)
	}
	if n := len(c.Profiles[c.Split].Attributes); n != 1 {
		t.Fatalf("Scholar profile has %d attributes, want 1", n)
	}
	// Blocking quality: duplicates share names/titles, so Token Blocking
	// keeps high recall at low precision.
	blocks := blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(c))
	pc := float64(blocks.DetectedDuplicates(ds.GroundTruth)) / float64(ds.GroundTruth.Size())
	if pc < 0.95 {
		t.Fatalf("BIB blocking recall = %.3f", pc)
	}
	t.Logf("BIB: |E|=%d |D|=%d PC=%.3f ‖B‖=%d", c.Size(), ds.GroundTruth.Size(), pc, blocks.Comparisons())
}

func TestMOVShape(t *testing.T) {
	ds := MOV(0.2)
	c := ds.Collection
	if err := ds.GroundTruth.Validate(c); err != nil {
		t.Fatal(err)
	}
	// The DBpedia side must be far more verbose (the D2 asymmetry).
	tokens1, tokens2 := 0, 0
	for i := 0; i < c.Split; i++ {
		tokens1 += len(c.Profiles[i].Tokens())
	}
	for i := c.Split; i < c.Size(); i++ {
		tokens2 += len(c.Profiles[i].Tokens())
	}
	mean1 := float64(tokens1) / float64(c.Split)
	mean2 := float64(tokens2) / float64(c.Size()-c.Split)
	if mean2 < 2.5*mean1 {
		t.Fatalf("verbosity asymmetry missing: %.1f vs %.1f tokens/profile", mean1, mean2)
	}
	blocks := blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(c))
	pc := float64(blocks.DetectedDuplicates(ds.GroundTruth)) / float64(ds.GroundTruth.Size())
	if pc < 0.95 {
		t.Fatalf("MOV blocking recall = %.3f", pc)
	}
	t.Logf("MOV: tokens/profile %.1f vs %.1f, PC=%.3f", mean1, mean2, pc)
}

func TestDomainDatasetsDeterministic(t *testing.T) {
	a, b := BIB(0.05), BIB(0.05)
	if a.Collection.Size() != b.Collection.Size() {
		t.Fatal("sizes differ")
	}
	for i := range a.Collection.Profiles {
		if a.Collection.Profiles[i].String() != b.Collection.Profiles[i].String() {
			t.Fatal("BIB not deterministic")
		}
	}
}

func TestSurnamesArePlausibleTokens(t *testing.T) {
	ds := BIB(0.02)
	for i := range ds.Collection.Profiles {
		for _, a := range ds.Collection.Profiles[i].Attributes {
			for _, tok := range entity.Tokenize(a.Value) {
				if strings.ContainsAny(tok, " ,;") {
					t.Fatalf("token %q contains separators", tok)
				}
			}
		}
	}
}

// TestDomainMetaBlockingEndToEnd runs the recommended configuration on the
// domain datasets — the scenario the examples demonstrate.
func TestDomainMetaBlockingEndToEnd(t *testing.T) {
	for _, ds := range []Dataset{BIB(0.1), MOV(0.1)} {
		blocks := blockproc.BlockFiltering{Ratio: 0.8}.Apply(
			blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(ds.Collection)))
		pc := float64(blocks.DetectedDuplicates(ds.GroundTruth)) / float64(ds.GroundTruth.Size())
		if pc < 0.9 {
			t.Errorf("%s: post-filtering recall %.3f", ds.Name, pc)
		}
	}
}
