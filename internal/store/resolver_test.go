package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/paperexample"
)

func testSnapshot(t *testing.T) *incremental.Snapshot {
	t.Helper()
	r, err := incremental.NewResolver(incremental.Config{Scheme: core.JS, K: 5, MaxBlockSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	r.AddBatch(paperexample.Collection().Profiles)
	return r.Snapshot()
}

func TestResolverRoundTrip(t *testing.T) {
	want := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteResolver(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResolver(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot differs after round trip")
	}
	// And the restored snapshot rebuilds a working resolver.
	r, err := incremental.FromSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 6 {
		t.Fatalf("restored resolver size = %d, want 6", r.Size())
	}
}

func TestResolverDeterministicBytes(t *testing.T) {
	snap := testSnapshot(t)
	var a, b bytes.Buffer
	if err := WriteResolver(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteResolver(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same snapshot serialized to different bytes")
	}
}

func TestResolverFileHelpers(t *testing.T) {
	want := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "resolver.snap")
	if err := SaveResolverFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResolverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip differs")
	}
	if _, err := LoadResolverFile(filepath.Join(t.TempDir(), "missing.snap")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v, want not-exist", err)
	}
}

func TestResolverVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeArtifact(&buf, "resolver", resolverVersion+1, storedResolver{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResolver(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestResolverKindMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairs(&buf, []entity.Pair{{A: 1, B: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResolver(&buf); err == nil {
		t.Fatal("pairs artifact accepted as resolver snapshot")
	}
}

func TestResolverTruncatedRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResolver(&buf, testSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Cut the artifact at several depths: inside the header, between
	// header and payload, and inside the payload.
	for _, n := range []int{1, 5, len(whole) / 2, len(whole) - 1} {
		if n >= len(whole) {
			continue
		}
		if _, err := ReadResolver(bytes.NewReader(whole[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(whole))
		}
	}
	if _, err := ReadResolver(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Inconsistent member-list shape is rejected even at the right version.
	var bad bytes.Buffer
	if err := writeArtifact(&bad, "resolver", resolverVersion, storedResolver{
		BlockKeys:    []string{"a", "b"},
		BlockMembers: [][]entity.ID{{0}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResolver(&bad); err == nil {
		t.Fatal("mismatched key/member lists accepted")
	}
}
