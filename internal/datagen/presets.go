package datagen

// The presets mirror the paper's three benchmarks (Table 2) at laptop
// scale. Relative characteristics are preserved:
//
//   - D1 (DBLP–Scholar): small, few attribute names, terse values → the
//     smallest blocking graph and the lowest BPE.
//   - D2 (IMDB–DBpedia): mid-sized with a very verbose second source
//     (many tokens per profile) → the highest BPE and the densest graph
//     relative to its size.
//   - D3 (Wikipedia infoboxes): the largest collections with thousands of
//     distinct attribute names → the largest graph overall.
//
// Scale multiplies the collection sizes (ground truth scales along);
// scale 1.0 keeps the default laptop-friendly sizes.

// D1C returns the DBLP–Scholar-like Clean-Clean dataset.
func D1C(scale float64) Dataset {
	return Generate(Config{
		Name:       "D1C",
		Seed:       101,
		Size1:      scaled(2500, scale),
		Size2:      scaled(12000, scale),
		Duplicates: scaled(2300, scale),
		Vocabulary: scaled(15000, scale),
		ZipfS:      1.1,
		CoreTokens: 6,
		Source1: SourceConfig{
			AttributeNames: 4, AttributesPerProfile: 4,
			TokensPerProfile: 7, NoiseRate: 0.12, FillerRate: 0.90,
		},
		Source2: SourceConfig{
			AttributeNames: 4, AttributesPerProfile: 3,
			TokensPerProfile: 6, NoiseRate: 0.12, FillerRate: 0.90,
		},
	})
}

// D2C returns the IMDB–DBpedia-like Clean-Clean dataset with one verbose
// source.
func D2C(scale float64) Dataset {
	return Generate(Config{
		Name:       "D2C",
		Seed:       202,
		Size1:      scaled(9000, scale),
		Size2:      scaled(8000, scale),
		Duplicates: scaled(7000, scale),
		Vocabulary: scaled(25000, scale),
		ZipfS:      1.1,
		CoreTokens: 6,
		Source1: SourceConfig{
			AttributeNames: 4, AttributesPerProfile: 4,
			TokensPerProfile: 7, NoiseRate: 0.13, FillerRate: 0.70,
		},
		Source2: SourceConfig{
			AttributeNames: 7, AttributesPerProfile: 7,
			TokensPerProfile: 32, NoiseRate: 0.13, FillerRate: 0.55,
		},
	})
}

// D3C returns the Wikipedia-infobox-like Clean-Clean dataset: the largest,
// with thousands of attribute names.
func D3C(scale float64) Dataset {
	return Generate(Config{
		Name:       "D3C",
		Seed:       303,
		Size1:      scaled(10000, scale),
		Size2:      scaled(12000, scale),
		Duplicates: scaled(7500, scale),
		Vocabulary: scaled(40000, scale),
		ZipfS:      1.1,
		CoreTokens: 8,
		Source1: SourceConfig{
			AttributeNames: 3000, AttributesPerProfile: 10,
			TokensPerProfile: 14, NoiseRate: 0.14, FillerRate: 0.90,
		},
		Source2: SourceConfig{
			AttributeNames: 5000, AttributesPerProfile: 11,
			TokensPerProfile: 15, NoiseRate: 0.14, FillerRate: 0.90,
		},
	})
}

// D1D, D2D and D3D derive the Dirty ER datasets from the clean pairs, as
// the paper does (§6.1).
func D1D(scale float64) Dataset { return D1C(scale).ToDirty("D1D") }

// D2D is the Dirty variant of D2C.
func D2D(scale float64) Dataset { return D2C(scale).ToDirty("D2D") }

// D3D is the Dirty variant of D3C.
func D3D(scale float64) Dataset { return D3C(scale).ToDirty("D3D") }

// CleanDatasets generates the three Clean-Clean datasets.
func CleanDatasets(scale float64) []Dataset {
	return []Dataset{D1C(scale), D2C(scale), D3C(scale)}
}

// DirtyDatasets generates the three Dirty datasets.
func DirtyDatasets(scale float64) []Dataset {
	return []Dataset{D1D(scale), D2D(scale), D3D(scale)}
}

// AllDatasets generates all six datasets in the paper's order
// (D1C, D2C, D3C, D1D, D2D, D3D).
func AllDatasets(scale float64) []Dataset {
	return append(CleanDatasets(scale), DirtyDatasets(scale)...)
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
