// Package matching implements the entity-matching stage that the paper
// treats as orthogonal to blocking (§3): the Jaccard similarity of all
// value tokens of two profiles, used to estimate Resolution Time, plus the
// equivalence clustering of matched pairs.
package matching

import (
	"sort"

	"metablocking/internal/entity"
)

// JaccardMatcher compares profiles by the Jaccard similarity of their
// value-token sets. Token sets are precomputed per profile so repeated
// comparisons cost only the merge of two sorted slices. It is safe for
// concurrent use after construction.
type JaccardMatcher struct {
	// Threshold is the minimum similarity for a match.
	Threshold float64
	tokens    [][]string
}

// NewJaccardMatcher precomputes the sorted distinct token lists of every
// profile in the collection.
func NewJaccardMatcher(c *entity.Collection, threshold float64) *JaccardMatcher {
	m := &JaccardMatcher{Threshold: threshold, tokens: make([][]string, c.Size())}
	for i := range c.Profiles {
		set := c.Profiles[i].TokenSet()
		list := make([]string, 0, len(set))
		for t := range set {
			list = append(list, t)
		}
		sort.Strings(list)
		m.tokens[i] = list
	}
	return m
}

// Similarity returns the Jaccard similarity of the token sets of the two
// profiles.
func (m *JaccardMatcher) Similarity(a, b entity.ID) float64 {
	ta, tb := m.tokens[a], m.tokens[b]
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	common, i, j := 0, 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] < tb[j]:
			i++
		case ta[i] > tb[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	return float64(common) / float64(len(ta)+len(tb)-common)
}

// Match implements blockproc.Matcher.
func (m *JaccardMatcher) Match(a, b entity.ID) bool {
	return m.Similarity(a, b) >= m.Threshold
}

// Cluster groups matched pairs into equivalence clusters via transitive
// closure — the output of Dirty ER (§3). Clusters are returned sorted by
// their smallest member, singletons omitted.
func Cluster(numEntities int, matches []entity.Pair) [][]entity.ID {
	parent := make([]entity.ID, numEntities)
	for i := range parent {
		parent[i] = entity.ID(i)
	}
	var find func(entity.ID) entity.ID
	find = func(x entity.ID) entity.ID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range matches {
		ra, rb := find(p.A), find(p.B)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	groups := make(map[entity.ID][]entity.ID)
	for i := range parent {
		id := entity.ID(i)
		groups[find(id)] = append(groups[find(id)], id)
	}
	var out [][]entity.ID
	for root, members := range groups {
		if len(members) < 2 {
			continue
		}
		_ = root
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
