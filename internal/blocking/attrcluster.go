package blocking

import (
	"fmt"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// AttributeClusteringBlocking refines Token Blocking by first clustering
// attribute names whose values draw from similar vocabularies, then keying
// each token on (cluster, token) instead of the bare token (paper §2,
// ref [21]). Tokens shared only across unrelated attributes (e.g. a year
// in a "title" and a "price") no longer co-occur, improving precision.
//
// Names are clustered greedily: every attribute name links to its most
// similar name (Jaccard similarity of value-token vocabularies) when the
// similarity exceeds Threshold, and the connected components of these links
// form the clusters. Names without a link join a single glue cluster, so
// recall degrades gracefully to Token Blocking's.
type AttributeClusteringBlocking struct {
	// Threshold is the minimum vocabulary similarity for linking two
	// attribute names; values <= 0 default to 0.1.
	Threshold float64
}

// Name implements Method.
func (AttributeClusteringBlocking) Name() string { return "Attribute Clustering Blocking" }

// Build implements Method.
func (a AttributeClusteringBlocking) Build(c *entity.Collection) *block.Collection {
	threshold := a.Threshold
	if threshold <= 0 {
		threshold = 0.1
	}
	clusterOf := clusterAttributes(c, threshold)

	idx := newKeyIndex(c)
	forEachProfileKeys(c, func(p *entity.Profile, toks []string, emit func(string)) []string {
		for _, attr := range p.Attributes {
			cluster := clusterOf[attr.Name]
			toks = entity.AppendTokens(toks[:0], attr.Value)
			for _, tok := range toks {
				emit(fmt.Sprintf("%d#%s", cluster, tok))
			}
		}
		return toks
	}, func(id entity.ID, keys []string) {
		for _, k := range keys {
			idx.add(k, id)
		}
	})
	return idx.build(c)
}

// clusterAttributes groups attribute names into vocabulary clusters and
// returns the cluster ID of every name. Cluster 0 is the glue cluster.
// For Clean-Clean ER, links are restricted to cross-source name pairs, as
// in the original method (ref [21]): the point of the clusters is to map
// each source's attributes onto the other's, and intra-source links would
// otherwise split the keys by source and destroy every cross-source block.
func clusterAttributes(c *entity.Collection, threshold float64) map[string]int {
	vocab := make(map[string]map[string]struct{})
	sourceOf := make(map[string]int) // 1, 2, or 3 when seen in both
	for i := range c.Profiles {
		source := 1
		if c.Task == entity.CleanClean && !c.InFirst(c.Profiles[i].ID) {
			source = 2
		}
		for _, attr := range c.Profiles[i].Attributes {
			set := vocab[attr.Name]
			if set == nil {
				set = make(map[string]struct{})
				vocab[attr.Name] = set
			}
			sourceOf[attr.Name] |= source
			for _, tok := range entity.Tokenize(attr.Value) {
				set[tok] = struct{}{}
			}
		}
	}
	crossOnly := c.Task == entity.CleanClean

	names := make([]string, 0, len(vocab))
	for name := range vocab {
		names = append(names, name)
	}
	sort.Strings(names)

	// Candidate pairs come from a token inverted index: only names whose
	// vocabularies share a token can exceed any positive threshold, so an
	// all-pairs scan (quadratic in |N|, prohibitive for Wikipedia-scale
	// schemata) is unnecessary. Posting lists longer than maxPosting
	// belong to ubiquitous tokens and are skipped — they would link
	// everything to everything.
	const maxPosting = 100
	nameID := make(map[string]int, len(names))
	for i, n := range names {
		nameID[n] = i
	}
	postings := make(map[string][]int)
	for i, n := range names {
		for tok := range vocab[n] {
			postings[tok] = append(postings[tok], i)
		}
	}
	candidates := make(map[[2]int]struct{})
	for _, list := range postings {
		if len(list) > maxPosting {
			continue
		}
		for a := 0; a < len(list); a++ {
			for b := a + 1; b < len(list); b++ {
				if crossOnly {
					sa, sb := sourceOf[names[list[a]]], sourceOf[names[list[b]]]
					if sa == sb && sa != 3 {
						continue // both names confined to the same source
					}
				}
				candidates[[2]int{list[a], list[b]}] = struct{}{}
			}
		}
	}

	// Union-find over attribute names; each name links to its single most
	// similar candidate if the similarity exceeds the threshold.
	parent := make([]int, len(names))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	best := make([]int, len(names))
	bestSim := make([]float64, len(names))
	for i := range best {
		best[i] = -1
		bestSim[i] = threshold
	}
	for pair := range candidates {
		i, j := pair[0], pair[1]
		sim := jaccardSets(vocab[names[i]], vocab[names[j]])
		if sim > bestSim[i] || (sim == bestSim[i] && best[i] >= 0 && j < best[i]) {
			best[i], bestSim[i] = j, sim
		}
		if sim > bestSim[j] || (sim == bestSim[j] && best[j] >= 0 && i < best[j]) {
			best[j], bestSim[j] = i, sim
		}
	}
	linked := make([]bool, len(names))
	for i := range names {
		if best[i] < 0 {
			continue
		}
		linked[i], linked[best[i]] = true, true
		ri, rj := find(i), find(best[i])
		if ri != rj {
			parent[ri] = rj
		}
	}

	clusterOf := make(map[string]int, len(names))
	rootID := make(map[int]int)
	next := 1
	for i, name := range names {
		if !linked[i] {
			clusterOf[name] = 0 // glue cluster
			continue
		}
		root := find(i)
		id, ok := rootID[root]
		if !ok {
			id = next
			next++
			rootID[root] = id
		}
		clusterOf[name] = id
	}
	return clusterOf
}

func jaccardSets(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	common := 0
	for t := range small {
		if _, ok := large[t]; ok {
			common++
		}
	}
	union := len(a) + len(b) - common
	return float64(common) / float64(union)
}
