// Package diskindex is the out-of-core shard backend: an LSM-flavored
// posting store that keeps recent commits in an in-memory memtable and
// everything older in immutable, paged, CRC-guarded segment files
// (internal/store), so the resolver serves collections larger than the
// memtable budget — ROADMAP item 1's scale regime.
//
// The write path is the classic LSM shape, cut to this repo's
// single-writer actor model:
//
//   - Commit appends to the memtable: per-token postings.Builders plus
//     the batch's profiles and key lists. O(1) per key, all in RAM.
//   - Seal — triggered by the coordinator's checkpoint, which is also
//     all /v1/admin/snapshot does in disk mode — streams the memtable
//     into a new segment file and commits a manifest naming the shard's
//     full segment list. Manifest-written-last makes the checkpoint the
//     crash-consistency point: a kill at any instant leaves the previous
//     manifest pointing at untouched files.
//   - MaybeCompact, run by the shard actor off the request path, merges
//     every sealed segment into one once enough deltas pile up. The merge
//     streams: sorted token dictionaries zip together and raw varint
//     posting bytes splice with postings.RebaseVarint — no decode, no
//     full-index materialization.
//
// The read path keeps exactly the small state in RAM — per-profile key
// counts (the |B_j| weight term), ScanCount cells, and the segments'
// token dictionaries — while posting members and profiles stay on disk
// behind a byte-budgeted page LRU. Gather replicates
// incremental.Partition.Gather bit-for-bit: the same key order, the same
// per-cell accumulation, the same float operand order, with each
// token's members visited segment-by-segment in ascending-ID order (IDs
// only grow across seals, so segment order is ID order). The partition
// returns every weighted neighbor unpruned — a superset the
// coordinator's exact merge kernels reduce to the identical answer.
//
// Gather and the other read accessors cannot return errors through the
// shard.Backend contract; an I/O failure or a page that fails its CRC
// panics with a descriptive error, which the owning actor recovers into
// a typed per-resolve error (internal/par) — the same containment path
// as any other shard failure.
package diskindex

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/obs"
	"metablocking/internal/postings"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

// Metric names registered on the partition's obs.Metrics. Counters are
// additive across shards.
const (
	CtrSeals       = "diskindex.seals"
	CtrCompactions = "diskindex.compactions"
	CtrPageReads   = "diskindex.page_reads"
	CtrCacheHits   = "diskindex.cache_hits"
	CtrWalAppends  = "diskindex.wal_appends"
	CtrWalSyncs    = "diskindex.wal_syncs"
	// CtrWalReplayed / CtrWalTruncated describe the last recovery:
	// acknowledged records replayed on top of the checkpoint, and frames
	// dropped as torn, undecodable, or beyond the contiguous run.
	CtrWalReplayed  = "diskindex.wal_replayed"
	CtrWalTruncated = "diskindex.wal_truncated"
)

// Options parameterizes one shard's disk-backed partition.
type Options struct {
	// Config is the resolver configuration stamped into every manifest.
	Config incremental.Config
	// Shards and Index place the partition in the hash layout.
	Shards int
	Index  int
	// State is the shard's recovered directory state from
	// store.RecoverDiskDir — segments to adopt (may be empty for a fresh
	// shard) and the next safe file numbers.
	State *store.DiskShardState
	// Checkpoint is the recovered checkpoint id (layout.Checkpoint).
	Checkpoint uint64
	// Size is the recovered global resolver size (layout.Size).
	Size int
	// CacheBytes budgets the page cache. Default 8 MiB.
	CacheBytes int
	// CompactAfter is the sealed-segment count that triggers background
	// compaction. Default 4; minimum 2.
	CompactAfter int
	// WAL enables the per-shard write-ahead log: every Commit is framed
	// and pushed to the OS before it is acknowledged, so a crash between
	// checkpoints loses nothing acknowledged (see store/wal.go).
	WAL bool
	// WALDefer delays log creation until the first Seal — the reload
	// path's mode, where the partition starts by replaying a snapshot
	// that only the *next* checkpoint makes durable; logging those
	// commits against the recovered checkpoint would corrupt recovery if
	// that checkpoint never commits.
	WALDefer bool
	// Fault injects failures at the shard.<k>.wal.* sites. Nil means no
	// injection.
	Fault *fault.Injector
	// Metrics receives the diskindex.* counters. Nil means a private
	// registry.
	Metrics *obs.Metrics
}

// cell is the ScanCount scratch of one local slot, like the in-memory
// partition's shardCell.
type cell struct {
	epoch    int64
	common   float64
	firstKey int32
}

// Partition is one disk-backed hash-shard of the incremental index. It
// implements shard.Backend and shard.Maintainer; like every partition it
// is single-writer — the owning shard actor serializes all access.
type Partition struct {
	cfg    incremental.Config
	shards int
	index  int
	dir    string

	// Sealed tier: immutable segments in ascending MinSeq (= ascending
	// ID range) order, plus the lineage counters.
	segs        []*store.Segment
	sealedSlots int
	checkpoint  uint64
	lastSize    int
	nextSeq     uint64
	nextGen     uint64

	// Memtable: unsealed commits.
	mem         map[string]*postings.Builder
	memProfiles []entity.Profile
	memKeys     [][]string
	memBytes    int

	// RAM-resident read state for every local slot, sealed or not.
	keyCounts []int32
	cells     []cell
	epoch     int64

	cache *pageCache

	// Per-call scratch, reused across gathers.
	members   []entity.ID
	neighbors []entity.ID

	compactAfter int
	seals        int64
	compactions  int64

	// Write-ahead log state (see wal.go). wal is nil when the WAL is
	// disabled or deferred; staleWals are directory leftovers from before
	// this open, kept until a manifest covers their records.
	fault      *fault.Injector
	walEnabled bool
	wal        *store.WalWriter
	staleWals  []string
	nextWal    uint64
	walBuf     []byte

	walAppends     int64
	walReplayed    int64
	walTruncated   int64
	walSyncs       int64
	walSyncLastNs  int64
	walSyncTotalNs int64

	siteWalAppend string
	siteWalSync   string
	siteWalRotate string

	ctrSeals        *obs.Counter
	ctrCompactions  *obs.Counter
	ctrWalAppends   *obs.Counter
	ctrWalSyncs     *obs.Counter
	ctrWalReplayed  *obs.Counter
	ctrWalTruncated *obs.Counter
}

// Open builds the partition over a recovered shard directory, adopting
// its segments and loading the RAM tier (key counts) from their indexes
// — no posting page is read until the first gather touches it.
func Open(opts Options) (*Partition, error) {
	if opts.State == nil {
		return nil, fmt.Errorf("diskindex: nil shard state")
	}
	if opts.Config.Scheme == core.EJS {
		return nil, incremental.ErrUnsupportedScheme
	}
	if opts.Config.MaxBlockSize == 0 {
		opts.Config.MaxBlockSize = 1000
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 8 << 20
	}
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = 4
	}
	if opts.CompactAfter < 2 {
		opts.CompactAfter = 2
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = obs.NewMetrics()
	}
	p := &Partition{
		cfg:          opts.Config,
		shards:       opts.Shards,
		index:        opts.Index,
		dir:          opts.State.Dir,
		segs:         opts.State.Segments,
		checkpoint:   opts.Checkpoint,
		lastSize:     opts.Size,
		nextSeq:      opts.State.NextSeq,
		nextGen:      opts.State.NextGen,
		mem:          make(map[string]*postings.Builder),
		compactAfter: opts.CompactAfter,
		cache: newPageCache(opts.CacheBytes,
			metrics.Counter(CtrPageReads), metrics.Counter(CtrCacheHits)),
		fault:           opts.Fault,
		walEnabled:      opts.WAL,
		staleWals:       opts.State.WALs,
		nextWal:         opts.State.NextWal,
		siteWalAppend:   shard.WalAppendSite(opts.Index),
		siteWalSync:     shard.WalSyncSite(opts.Index),
		siteWalRotate:   shard.WalRotateSite(opts.Index),
		ctrSeals:        metrics.Counter(CtrSeals),
		ctrCompactions:  metrics.Counter(CtrCompactions),
		ctrWalAppends:   metrics.Counter(CtrWalAppends),
		ctrWalSyncs:     metrics.Counter(CtrWalSyncs),
		ctrWalReplayed:  metrics.Counter(CtrWalReplayed),
		ctrWalTruncated: metrics.Counter(CtrWalTruncated),
	}
	for _, seg := range p.segs {
		meta := seg.Meta()
		if meta.Shard != p.index || meta.Shards != p.shards {
			return nil, fmt.Errorf("diskindex: segment %s labeled shard %d/%d, partition is %d/%d",
				seg.Path(), meta.Shard, meta.Shards, p.index, p.shards)
		}
		if meta.FirstSlot != p.sealedSlots {
			return nil, fmt.Errorf("diskindex: segment %s starts at slot %d, expected %d",
				seg.Path(), meta.FirstSlot, p.sealedSlots)
		}
		p.keyCounts = append(p.keyCounts, seg.KeyCounts()...)
		p.sealedSlots += meta.Profiles
	}
	p.cells = make([]cell, len(p.keyCounts))
	if p.walEnabled && !opts.WALDefer {
		if err := p.openWal(p.checkpoint, p.lastSize); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// slots returns the local profile count, sealed plus memtable.
func (p *Partition) slots() int { return p.sealedSlots + len(p.memProfiles) }

// Len implements shard.Backend.
func (p *Partition) Len() int { return p.slots() }

// Blocks implements shard.Backend: distinct block keys across the
// sealed segments and the memtable. Sealed dictionaries can overlap each
// other and the memtable, so this merges the sorted token lists.
func (p *Partition) Blocks() int {
	toks := make(map[string]struct{})
	for _, seg := range p.segs {
		for _, t := range seg.Tokens() {
			toks[t] = struct{}{}
		}
	}
	for t := range p.mem {
		toks[t] = struct{}{}
	}
	return len(toks)
}

// fail panics with a diskindex-labeled error; the shard actor recovers
// it into a per-resolve error (see the package comment).
func fail(err error) {
	panic(fmt.Errorf("diskindex: %w", err))
}

// Gather implements shard.Backend: the ScanCount accumulation of
// incremental.Partition.Gather over the sealed segments plus the
// memtable. maxWeighted is ignored — every weighted neighbor is
// returned, a superset the coordinator's exact top-K merge prunes to
// the identical result.
func (p *Partition) Gather(keys []string, incs []float64, bi int, nb float64, _ int, dst []incremental.ShardCand) []incremental.ShardCand {
	p.epoch++
	epoch := p.epoch
	cells := p.cells
	neighbors := p.neighbors[:0]
	for ki, k := range keys {
		inc := incs[ki]
		if inc == incremental.SkipKey {
			continue
		}
		for _, seg := range p.segs {
			ti, ok := seg.FindToken(k)
			if !ok {
				continue
			}
			ref := seg.Ref(ti)
			page, err := p.cache.page(seg, ref.Page)
			if err != nil {
				fail(err)
			}
			enc := page[ref.Off : ref.Off+ref.Len]
			p.members = postings.AppendDecoded(p.members[:0], postings.Varint, enc, int(ref.Count))
			neighbors = accumulate(cells, p.members, epoch, inc, int32(ki), p.shards, neighbors)
		}
		if b := p.mem[k]; b != nil {
			p.members = b.AppendTo(p.members[:0])
			neighbors = accumulate(cells, p.members, epoch, inc, int32(ki), p.shards, neighbors)
		}
	}
	p.neighbors = neighbors
	dst = dst[:0]
	for _, j := range neighbors {
		dst = append(dst, incremental.ShardCand{
			Candidate: incremental.Candidate{ID: j, Weight: p.weight(bi, nb, j)},
			FirstKey:  cells[int(j)/p.shards].firstKey,
		})
	}
	return dst
}

// accumulate folds one member list into the ScanCount cells — the inner
// loop of incremental.Partition.Gather, shared by the segment and
// memtable passes so the float accumulation order is identical.
func accumulate(cells []cell, members []entity.ID, epoch int64, inc float64, ki int32, shards int, neighbors []entity.ID) []entity.ID {
	for _, j := range members {
		c := &cells[int(j)/shards]
		if c.epoch != epoch {
			c.epoch = epoch
			c.common = inc
			c.firstKey = ki
			neighbors = append(neighbors, j)
		} else {
			c.common += inc
		}
	}
	return neighbors
}

// weight mirrors incremental.Partition.weight: same expressions, same
// operand order, with |B_j| from the RAM-resident key counts.
func (p *Partition) weight(bi int, nb float64, j entity.ID) float64 {
	slot := int(j) / p.shards
	common := p.cells[slot].common
	bj := int(p.keyCounts[slot])
	switch p.cfg.Scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		return common * math.Log(nb/float64(bi)) * math.Log(nb/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	default:
		return common
	}
}

// Commit implements shard.Backend: the profile and its keys join the
// memtable.
func (p *Partition) Commit(id entity.ID, prof entity.Profile, keys []string) error {
	if incremental.ShardOf(id, p.shards) != p.index {
		return fmt.Errorf("diskindex: profile %d committed to shard %d of %d, belongs on %d",
			id, p.index, p.shards, incremental.ShardOf(id, p.shards))
	}
	if slot := int(id) / p.shards; slot != p.slots() {
		return fmt.Errorf("diskindex: profile %d arrives at shard %d slot %d, expected slot %d",
			id, p.index, slot, p.slots())
	}
	prof.ID = id
	var kept []string
	if len(keys) > 0 {
		kept = make([]string, len(keys))
		copy(kept, keys)
	}
	// Log before state: the record reaches the OS before the memtable
	// mutates, so an append failure leaves nothing to acknowledge and a
	// crash after acknowledgment always finds the record on disk.
	if p.wal != nil {
		if err := p.fault.Check(p.siteWalAppend); err != nil {
			return err
		}
		p.walBuf = store.AppendWalRecord(p.walBuf[:0], store.WalRecord{ID: id, Profile: prof, Keys: kept})
		if err := p.wal.Append(p.walBuf); err != nil {
			return err
		}
		p.walAppends++
		p.ctrWalAppends.Inc()
	}
	p.memProfiles = append(p.memProfiles, prof)
	p.memKeys = append(p.memKeys, kept)
	p.keyCounts = append(p.keyCounts, int32(len(keys)))
	p.cells = append(p.cells, cell{})
	for _, k := range keys {
		b := p.mem[k]
		if b == nil {
			b = new(postings.Builder)
			p.mem[k] = b
		}
		b.Append(id)
	}
	p.memBytes += estimateBytes(prof, kept)
	return nil
}

// estimateBytes approximates one commit's memtable footprint: profile
// strings, key strings, and per-entry bookkeeping. The estimate only
// drives the seal trigger; it need not be exact.
func estimateBytes(p entity.Profile, keys []string) int {
	n := 64
	for _, a := range p.Attributes {
		n += len(a.Name) + len(a.Value) + 32
	}
	for _, k := range keys {
		n += len(k) + 24
	}
	return n
}

// PendingBytes implements shard.Maintainer.
func (p *Partition) PendingBytes() int { return p.memBytes }

// Seal implements shard.Maintainer: stream the memtable into a new
// segment (when non-empty), then commit a manifest under the
// coordinator's checkpoint id — the durability point. On any error the
// previous manifest and its files are untouched.
//
// The write-ahead log rotates inside the same protocol: the next log
// generation — bound to the (checkpoint, size) about to commit — is
// created *before* the manifest, and the manifest commit's retention
// sweep deletes the superseded log. A crash before the manifest leaves
// the old log matching the old checkpoint (full replay); a crash after
// leaves the new, empty log matching the new one. If the manifest
// commit fails, the new log is discarded and the old one stays live, so
// later commits keep extending the lineage recovery will actually load.
func (p *Partition) Seal(checkpoint uint64, size int) error {
	// Rotate unconditionally, even when the live log holds no records: a
	// log is bound to the checkpoint it extends, and once this seal
	// commits, an old-bound log's later appends would be discarded by
	// recovery's lineage check. (The fuzzer found exactly that: empty
	// shard at checkpoint N, commits after it, crash — lost.)
	var newWal *store.WalWriter
	if p.walEnabled {
		if err := p.fault.Check(p.siteWalRotate); err != nil {
			return err
		}
		w, err := store.CreateWal(filepath.Join(p.dir, store.WalFileName(p.nextWal)),
			store.WalMetaFor(p.cfg, p.index, p.shards, checkpoint, size))
		if err != nil {
			return err
		}
		newWal = w
	}
	abort := func(err error) error {
		if newWal != nil {
			newWal.Remove()
		}
		return err
	}
	if len(p.memProfiles) > 0 {
		seq := p.nextSeq
		meta := store.SegmentMeta{
			Shard:     p.index,
			Shards:    p.shards,
			MinSeq:    seq,
			Seq:       seq,
			FirstSlot: p.sealedSlots,
			Profiles:  len(p.memProfiles),
		}
		toks := make([]string, 0, len(p.mem))
		for t := range p.mem {
			toks = append(toks, t)
		}
		sort.Strings(toks)
		src := store.SegmentSource{
			Tokens: func(emit func(tok string, enc []byte, count, last int32) error) error {
				for _, t := range toks {
					b := p.mem[t]
					if err := emit(t, b.Bytes(), int32(b.Len()), b.Last()); err != nil {
						return err
					}
				}
				return nil
			},
			Profiles: func(emit func(prof entity.Profile, keys []string) error) error {
				for i := range p.memProfiles {
					if err := emit(p.memProfiles[i], p.memKeys[i]); err != nil {
						return err
					}
				}
				return nil
			},
		}
		path := filepath.Join(p.dir, store.SegmentFileName(seq))
		if err := store.WriteSegment(path, meta, src); err != nil {
			return abort(err)
		}
		seg, err := store.OpenSegment(path, false)
		if err != nil {
			return abort(err)
		}
		p.segs = append(p.segs, seg)
		p.sealedSlots += len(p.memProfiles)
		p.nextSeq++
		clear(p.mem)
		p.memProfiles = p.memProfiles[:0]
		p.memKeys = p.memKeys[:0]
		p.memBytes = 0
	}
	keep := p.liveWalName(newWal)
	if err := p.commitManifest(checkpoint, size, keep...); err != nil {
		return abort(err)
	}
	if newWal != nil {
		if p.wal != nil {
			p.wal.Close() // its file is gone — the sweep just reclaimed it
		}
		p.wal = newWal
		p.nextWal++
	}
	// Everything the stale logs held is inside the manifest now; the
	// sweep deleted the files.
	p.staleWals = nil
	p.seals++
	p.ctrSeals.Inc()
	return nil
}

// liveWalName is the keep-set for a manifest-commit sweep: the log that
// stays authoritative after the commit (a just-rotated generation or
// the current one).
func (p *Partition) liveWalName(pending *store.WalWriter) []string {
	if pending != nil {
		return []string{pending.Name()}
	}
	if p.wal != nil {
		return []string{p.wal.Name()}
	}
	return nil
}

// commitManifest writes the manifest naming the current segment list and
// advances the lineage counters, then applies the retention sweep —
// which also reclaims every write-ahead log not named in keepWals.
func (p *Partition) commitManifest(checkpoint uint64, size int, keepWals ...string) error {
	names := make([]string, len(p.segs))
	for i, seg := range p.segs {
		names[i] = filepath.Base(seg.Path())
	}
	m := store.DiskManifest{
		Scheme:         int(p.cfg.Scheme),
		K:              p.cfg.K,
		MaxBlockSize:   p.cfg.MaxBlockSize,
		MinTokenLength: p.cfg.MinTokenLength,
		Shard:          p.index,
		Shards:         p.shards,
		Checkpoint:     checkpoint,
		Size:           size,
		LocalGen:       p.nextGen,
		Segments:       names,
	}
	if err := store.SaveDiskManifest(p.dir, m); err != nil {
		return err
	}
	p.nextGen++
	p.checkpoint = checkpoint
	p.lastSize = size
	store.SweepShardDir(p.dir, checkpoint, keepWals...)
	return nil
}

// MaybeCompact implements shard.Maintainer: once CompactAfter sealed
// deltas accumulate, merge them all into one segment and commit a
// manifest for it under the same checkpoint. The merge streams token and
// profile data segment-by-segment; the pre-compaction manifest survives
// the sweep (same checkpoint), so a later corruption of the merged file
// falls back to the un-merged generation.
func (p *Partition) MaybeCompact() (bool, error) {
	if len(p.segs) < p.compactAfter || p.checkpoint == 0 {
		return false, nil
	}
	seq := p.nextSeq
	meta := store.SegmentMeta{
		Shard:     p.index,
		Shards:    p.shards,
		MinSeq:    p.segs[0].Meta().MinSeq,
		Seq:       seq,
		FirstSlot: p.segs[0].Meta().FirstSlot,
		Profiles:  p.sealedSlots - p.segs[0].Meta().FirstSlot,
	}
	path := filepath.Join(p.dir, store.SegmentFileName(seq))
	if err := store.WriteSegment(path, meta, p.mergeSource()); err != nil {
		return false, err
	}
	merged, err := store.OpenSegment(path, false)
	if err != nil {
		return false, err
	}
	old := p.segs
	p.segs = []*store.Segment{merged}
	p.nextSeq++
	// Keep the live log and any stale ones: a compaction manifest covers
	// only sealed slots, and the stale logs may hold memtable records a
	// WAL-disabled open replayed but has not resealed yet.
	keep := append(p.liveWalName(nil), p.staleWals...)
	if err := p.commitManifest(p.checkpoint, p.lastSize, keep...); err != nil {
		// The merged file is orphaned (no manifest names it); the sealed
		// state is unchanged. Fall back to the old segment set.
		merged.Close()
		p.segs = old
		return false, err
	}
	for _, seg := range old {
		p.cache.dropSegment(seg)
		seg.Close()
	}
	p.compactions++
	p.ctrCompactions.Inc()
	return true, nil
}

// mergeSource streams the union of every sealed segment: tokens zip
// together in dictionary order with their raw posting bytes spliced by
// RebaseVarint (segments cover disjoint ascending ID ranges), profiles
// chain in slot order. Bounded memory: one posting list and one profile
// chunk at a time.
func (p *Partition) mergeSource() store.SegmentSource {
	segs := p.segs
	return store.SegmentSource{
		Tokens: func(emit func(tok string, enc []byte, count, last int32) error) error {
			heads := make([]int, len(segs))
			pages := make([]segPage, len(segs))
			var enc []byte
			for {
				tok := ""
				found := false
				for si, seg := range segs {
					if heads[si] >= len(seg.Tokens()) {
						continue
					}
					if t := seg.Tokens()[heads[si]]; !found || t < tok {
						tok, found = t, true
					}
				}
				if !found {
					return nil
				}
				enc = enc[:0]
				var count int32
				var last int32 = -1
				for si, seg := range segs {
					if heads[si] >= len(seg.Tokens()) || seg.Tokens()[heads[si]] != tok {
						continue
					}
					ref := seg.Ref(heads[si])
					raw, err := pages[si].bytes(seg, ref)
					if err != nil {
						return err
					}
					if count == 0 {
						enc = append(enc, raw...)
					} else {
						enc = postings.RebaseVarint(enc, last, raw)
					}
					count += ref.Count
					last = ref.Last
					heads[si]++
				}
				if err := emit(tok, enc, count, last); err != nil {
					return err
				}
			}
		},
		Profiles: func(emit func(prof entity.Profile, keys []string) error) error {
			var scratch []byte
			for _, seg := range segs {
				for ci := 0; ci < seg.ProfileChunks(); ci++ {
					var profiles []entity.Profile
					var keys [][]string
					var err error
					profiles, keys, scratch, err = seg.ReadProfileChunk(ci, scratch)
					if err != nil {
						return err
					}
					for i := range profiles {
						if err := emit(profiles[i], keys[i]); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
}

// segPage caches one segment's current page during a merge — tokens are
// packed in dictionary order, so reads walk pages sequentially.
type segPage struct {
	idx int32
	buf []byte
	ok  bool
}

func (sp *segPage) bytes(seg *store.Segment, ref store.TokenRef) ([]byte, error) {
	if !sp.ok || sp.idx != ref.Page {
		var err error
		if sp.buf, err = seg.ReadPage(int(ref.Page), sp.buf); err != nil {
			return nil, err
		}
		sp.idx, sp.ok = ref.Page, true
	}
	return sp.buf[ref.Off : ref.Off+ref.Len], nil
}

// DiskStats implements shard.Maintainer.
func (p *Partition) DiskStats() shard.DiskStats {
	st := shard.DiskStats{
		Segments:      len(p.segs),
		MemtableBytes: p.memBytes,
		Checkpoint:    p.checkpoint,
		Seals:         p.seals,
		Compactions:   p.compactions,
		PageReads:     p.cache.reads,
		CacheHits:     p.cache.hits,
		WalAppends:     p.walAppends,
		WalReplayed:    p.walReplayed,
		WalTruncated:   p.walTruncated,
		WalSyncs:       p.walSyncs,
		WalSyncLastNs:  p.walSyncLastNs,
		WalSyncTotalNs: p.walSyncTotalNs,
	}
	if p.wal != nil {
		st.WalBytes = p.wal.Bytes()
	}
	return st
}

// AddBlockCounts folds the partition's per-token member counts into the
// coordinator's global block-cardinality map — what Restored groups need
// instead of replaying every commit.
func (p *Partition) AddBlockCounts(m map[string]int) {
	for _, seg := range p.segs {
		toks := seg.Tokens()
		for ti := range toks {
			m[toks[ti]] += int(seg.Ref(ti).Count)
		}
	}
	for t, b := range p.mem {
		m[t] += b.Len()
	}
}

// Snapshot implements shard.Backend: the canonical in-memory segment,
// read back from the sealed files plus the memtable. Shapes match
// incremental.Partition.Snapshot exactly (nil for empty profile lists
// and key lists) so DeepEqual equivalence holds across backends.
func (p *Partition) Snapshot() *incremental.PartitionSnapshot {
	s := &incremental.PartitionSnapshot{
		Shard:    p.index,
		Shards:   p.shards,
		Blocks:   make(map[string][]entity.ID),
		BlocksOf: make([][]string, 0, p.slots()),
	}
	var scratch []byte
	for _, seg := range p.segs {
		for ci := 0; ci < seg.ProfileChunks(); ci++ {
			profiles, keys, sc, err := seg.ReadProfileChunk(ci, scratch)
			if err != nil {
				fail(err)
			}
			scratch = sc
			s.Profiles = append(s.Profiles, profiles...)
			s.BlocksOf = append(s.BlocksOf, keys...)
		}
		toks := seg.Tokens()
		for ti := range toks {
			ref := seg.Ref(ti)
			var err error
			if scratch, err = seg.ReadPage(int(ref.Page), scratch); err != nil {
				fail(err)
			}
			enc := scratch[ref.Off : ref.Off+ref.Len]
			s.Blocks[toks[ti]] = postings.AppendDecoded(s.Blocks[toks[ti]], postings.Varint, enc, int(ref.Count))
		}
	}
	s.Profiles = append(s.Profiles, p.memProfiles...)
	for _, keys := range p.memKeys {
		s.BlocksOf = append(s.BlocksOf, append([]string(nil), keys...))
	}
	for t, b := range p.mem {
		s.Blocks[t] = b.AppendTo(s.Blocks[t])
	}
	return s
}

// Close releases the open segment files and the write-ahead log,
// syncing the log first so a graceful shutdown is durable under every
// sync policy.
func (p *Partition) Close() error {
	var firstErr error
	if p.wal != nil {
		if err := p.wal.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := p.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.wal = nil
	}
	for _, seg := range p.segs {
		if err := seg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.segs = nil
	return firstErr
}
