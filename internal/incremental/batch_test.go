package incremental

import (
	"errors"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
)

// TestSentinelWrapsPublic: the incremental sentinel must wrap the shared
// core sentinel (which the public metablocking package aliases), so
// errors.Is matches across layers.
func TestSentinelWrapsPublic(t *testing.T) {
	if !errors.Is(ErrUnsupportedScheme, core.ErrUnsupportedScheme) {
		t.Fatal("incremental.ErrUnsupportedScheme does not wrap core.ErrUnsupportedScheme")
	}
	_, err := NewResolver(Config{Scheme: core.EJS})
	if !errors.Is(err, core.ErrUnsupportedScheme) {
		t.Fatalf("NewResolver(EJS) error %v does not match the shared sentinel", err)
	}
	if !errors.Is(err, ErrUnsupportedScheme) {
		t.Fatalf("NewResolver(EJS) error %v does not match the package sentinel", err)
	}
}

func candidatesEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Weight != b[i].Weight {
			return false
		}
	}
	return true
}

// TestAddBatchMatchesSequential: one AddBatch call must be
// indistinguishable from the same profiles added one at a time.
func TestAddBatchMatchesSequential(t *testing.T) {
	ds := datagen.D1D(0.05)
	profiles := ds.Collection.Profiles
	for _, cfg := range []Config{
		{Scheme: core.JS, K: 10},
		{Scheme: core.ARCS},
		{Scheme: core.ECBS, K: 3, MaxBlockSize: 50},
	} {
		batched := mustResolver(t, cfg)
		serial := mustResolver(t, cfg)
		// Mixed batch sizes, including empty and single.
		for lo := 0; lo < len(profiles); {
			hi := lo + (lo%7)+1
			if hi > len(profiles) {
				hi = len(profiles)
			}
			results := batched.AddBatch(profiles[lo:hi])
			if len(results) != hi-lo {
				t.Fatalf("AddBatch returned %d results for %d profiles", len(results), hi-lo)
			}
			for i, r := range results {
				wantID, wantCands := serial.Add(profiles[lo+i])
				if r.ID != wantID {
					t.Fatalf("cfg %+v: batch ID %d, serial %d", cfg, r.ID, wantID)
				}
				if !candidatesEqual(r.Candidates, wantCands) {
					t.Fatalf("cfg %+v arrival %d: batch candidates %v, serial %v",
						cfg, r.ID, r.Candidates, wantCands)
				}
			}
			lo = hi
		}
		if batched.AddBatch(nil) != nil {
			t.Fatal("empty batch returned results")
		}
	}
}

// TestSnapshotRoundTrip: restoring a snapshot yields a resolver whose
// future answers are identical to the original's.
func TestSnapshotRoundTrip(t *testing.T) {
	ds := datagen.D1D(0.05)
	profiles := ds.Collection.Profiles
	half := len(profiles) / 2

	orig := mustResolver(t, Config{Scheme: core.JS, K: 10})
	orig.AddBatch(profiles[:half])
	snap := orig.Snapshot()

	restored, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != half {
		t.Fatalf("restored size = %d, want %d", restored.Size(), half)
	}
	for i := half; i < len(profiles); i++ {
		idA, candsA := orig.Add(profiles[i])
		idB, candsB := restored.Add(profiles[i])
		if idA != idB || !candidatesEqual(candsA, candsB) {
			t.Fatalf("arrival %d diverged after restore: (%d %v) vs (%d %v)",
				i, idA, candsA, idB, candsB)
		}
	}
}

// TestSnapshotIsDeepCopy: mutating the original after Snapshot must not
// leak into the copy.
func TestSnapshotIsDeepCopy(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.CBS})
	var p entity.Profile
	p.Add("v", "alpha beta")
	r.Add(p)
	snap := r.Snapshot()
	before := len(snap.Blocks["alpha"])
	r.Add(p) // grows the live block
	if got := len(snap.Blocks["alpha"]); got != before {
		t.Fatalf("snapshot block grew from %d to %d after a live Add", before, got)
	}
}

// TestFromSnapshotValidates covers the rejection paths.
func TestFromSnapshotValidates(t *testing.T) {
	if _, err := FromSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := FromSnapshot(&Snapshot{Config: Config{Scheme: core.EJS}}); !errors.Is(err, ErrUnsupportedScheme) {
		t.Fatal("EJS snapshot accepted")
	}
	if _, err := FromSnapshot(&Snapshot{
		Profiles: make([]entity.Profile, 2),
		BlocksOf: make([][]string, 1),
	}); err == nil {
		t.Fatal("mismatched BlocksOf length accepted")
	}
	if _, err := FromSnapshot(&Snapshot{
		Profiles: make([]entity.Profile, 1),
		BlocksOf: make([][]string, 1),
		Blocks:   map[string][]entity.ID{"tok": {5}},
	}); err == nil {
		t.Fatal("out-of-range block member accepted")
	}
}
