package obs

import (
	"net/http"
	"time"
)

// HTTP middleware counter suffixes. Each instrumented endpoint name yields
//
//	http.<name>.requests   — completed requests
//	http.<name>.errors     — responses with status ≥ 500
//	http.<name>.rejected   — responses with status 429 (load shedding)
//	http.<name>.latency_ns — summed wall-clock handler time; divide by
//	                         requests for the mean latency, sample over an
//	                         interval for QPS
//
// in the shared registry. Counter semantics match the pipeline's: atomic,
// cheap, and safe to scrape live from /metrics or /debug/vars.
const (
	ctrHTTPRequests = ".requests"
	ctrHTTPErrors   = ".errors"
	ctrHTTPRejected = ".rejected"
	ctrHTTPLatency  = ".latency_ns"
)

// statusRecorder captures the response status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (SSE,
// NDJSON) can push frames through the instrumentation. A non-flushing
// underlying writer is a no-op.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// HTTPMetrics wraps a handler with per-endpoint instrumentation under the
// "http.<name>." counter prefix and brackets each request in a span (the
// same start/end hooks pipeline stages use, when o carries any). A nil
// registry or Observer degrades to pass-through with no overhead beyond
// the status recorder.
func HTTPMetrics(m *Metrics, o *Observer, name string, h http.Handler) http.Handler {
	requests := m.Counter("http." + name + ctrHTTPRequests)
	errors := m.Counter("http." + name + ctrHTTPErrors)
	rejected := m.Counter("http." + name + ctrHTTPRejected)
	latency := m.Counter("http." + name + ctrHTTPLatency)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		endSpan := o.StartSpan("http." + name)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, req)
		latency.Add(time.Since(start).Nanoseconds())
		endSpan()
		requests.Inc()
		switch {
		case rec.status >= 500:
			errors.Inc()
		case rec.status == http.StatusTooManyRequests:
			rejected.Inc()
		}
	})
}
