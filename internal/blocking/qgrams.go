package blocking

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// QGramsBlocking generalizes Token Blocking by keying on the character
// q-grams of every token (paper §2, redundancy-positive). It is more
// robust to typographical noise than whole tokens at the cost of larger,
// less precise blocks.
type QGramsBlocking struct {
	// Q is the gram length; values below 2 default to 3.
	Q int
}

// Name implements Method.
func (q QGramsBlocking) Name() string { return "Q-grams Blocking" }

func (q QGramsBlocking) size() int {
	if q.Q < 2 {
		return 3
	}
	return q.Q
}

// Build implements Method.
func (q QGramsBlocking) Build(c *entity.Collection) *block.Collection {
	n := q.size()
	idx := newKeyIndex(c)
	forEachProfileKeys(c, func(p *entity.Profile, emit func(string)) {
		for _, a := range p.Attributes {
			for _, tok := range entity.Tokenize(a.Value) {
				if len(tok) <= n {
					emit(tok)
					continue
				}
				for i := 0; i+n <= len(tok); i++ {
					emit(tok[i : i+n])
				}
			}
		}
	}, func(id entity.ID, keys []string) {
		for _, k := range keys {
			idx.add(k, id)
		}
	})
	return idx.build(c)
}

// SuffixArrayBlocking keys every token on its suffixes of at least
// MinLength characters (paper §2 ref [1]). Oversized suffix blocks (more
// than MaxBlockSize profiles) are dropped, as in the original method, since
// short common suffixes are not discriminative.
type SuffixArrayBlocking struct {
	// MinLength is the minimum suffix length; values below 1 default to 4.
	MinLength int
	// MaxBlockSize drops suffix keys assigned to more profiles than this;
	// 0 defaults to 50.
	MaxBlockSize int
}

// Name implements Method.
func (SuffixArrayBlocking) Name() string { return "Suffix Arrays Blocking" }

// Build implements Method.
func (s SuffixArrayBlocking) Build(c *entity.Collection) *block.Collection {
	minLen := s.MinLength
	if minLen < 1 {
		minLen = 4
	}
	maxSize := s.MaxBlockSize
	if maxSize <= 0 {
		maxSize = 50
	}
	idx := newKeyIndex(c)
	forEachProfileKeys(c, func(p *entity.Profile, emit func(string)) {
		for _, a := range p.Attributes {
			for _, tok := range entity.Tokenize(a.Value) {
				if len(tok) < minLen {
					continue
				}
				for i := 0; i+minLen <= len(tok); i++ {
					emit(tok[i:])
				}
			}
		}
	}, func(id entity.ID, keys []string) {
		for _, k := range keys {
			idx.add(k, id)
		}
	})
	// Drop oversized suffix blocks before materializing.
	for key, e := range idx.keys {
		if len(e.e1)+len(e.e2) > maxSize {
			delete(idx.keys, key)
		}
	}
	return idx.build(c)
}
