// The progressive-serving side of the load generator: an NDJSON
// streaming client for the budget-aware /v1/resolve mode, and RunMixed,
// a mixed-tier traffic profile that drives interactive and batch
// requests side by side and reports per-tier latency percentiles and
// partial-result rates — the workload behind the tiered-SLA benchmarks.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metablocking/internal/dataio"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// StreamResult is one completed streamed resolve: the reassembled
// candidate prefix and how the stream ended.
type StreamResult struct {
	ID         entity.ID
	Candidates []incremental.Candidate
	// Partial reports an incomplete answer: the budget exhausted (Cursor
	// non-empty) or the server answered degraded.
	Partial  bool
	Degraded bool
	// Cursor is the resumption token of an exhausted stream; empty on
	// completion.
	Cursor string
	// Reason echoes the terminal frame's stop reason ("", "deadline",
	// "max_comparisons", "min_confidence", "degraded").
	Reason string
}

// Streamer is one streamed resolve attempt: the profile plus the budget
// query parameters (tier, budget_ms, max_comparisons, cursor, ...).
type Streamer func(p entity.Profile, query url.Values) (StreamResult, error)

// streamFrame mirrors the server's NDJSON stream envelope.
type streamFrame struct {
	Meta *struct {
		ID       int  `json:"id"`
		Degraded bool `json:"degraded"`
	} `json:"meta"`
	Batch []struct {
		ID     int     `json:"id"`
		Weight float64 `json:"weight"`
	} `json:"batch"`
	Done *struct {
		Reason string `json:"reason"`
	} `json:"done"`
	Cursor *struct {
		Cursor string `json:"cursor"`
		Reason string `json:"reason"`
	} `json:"cursor"`
}

// HTTPStreamer adapts a server base URL to a Streamer speaking the
// chunked-NDJSON encoding. Non-2xx responses are classified exactly like
// HTTPResolver's: retryable codes (including tier_busy and timeout)
// become RejectedError. A nil client uses http.DefaultClient.
func HTTPStreamer(baseURL string, client *http.Client) Streamer {
	if client == nil {
		client = http.DefaultClient
	}
	return func(p entity.Profile, query url.Values) (StreamResult, error) {
		var out StreamResult
		body, err := dataio.MarshalProfileJSON(p)
		if err != nil {
			return out, err
		}
		u := baseURL + "/v1/resolve"
		if len(query) > 0 {
			u += "?" + query.Encode()
		}
		req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return out, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := client.Do(req)
		if err != nil {
			return out, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			payload, _ := readAll(resp)
			return out, classifyError(resp, payload)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		terminated := false
		for sc.Scan() {
			var fr streamFrame
			if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
				return out, fmt.Errorf("loadgen: bad stream frame %q: %v", sc.Text(), err)
			}
			switch {
			case fr.Meta != nil:
				out.ID = entity.ID(fr.Meta.ID)
				out.Degraded = fr.Meta.Degraded
			case fr.Batch != nil:
				for _, c := range fr.Batch {
					out.Candidates = append(out.Candidates, incremental.Candidate{ID: entity.ID(c.ID), Weight: c.Weight})
				}
			case fr.Done != nil:
				out.Reason = fr.Done.Reason
				out.Partial = out.Degraded
				terminated = true
			case fr.Cursor != nil:
				out.Reason = fr.Cursor.Reason
				out.Cursor = fr.Cursor.Cursor
				out.Partial = true
				terminated = true
			}
		}
		if err := sc.Err(); err != nil {
			return out, err
		}
		if !terminated {
			return out, fmt.Errorf("loadgen: stream ended without a terminal frame")
		}
		return out, nil
	}
}

// FollowStream drives one streamed resolve to completion: a
// budget-exhausted prefix is resumed via its cursor, and a cursor the
// target no longer honors (410 cursor_invalid — the server restarted
// or checkpointed, killing the generation the cursor was cut against)
// restarts the stream from scratch, discarding the stale prefix, up to
// maxRestarts times. Returns the reassembled result and how many
// from-scratch restarts it took; every other error is returned as-is
// (shed resumes are the caller's backoff policy, not this loop's).
func FollowStream(stream Streamer, p entity.Profile, query url.Values, maxRestarts int) (StreamResult, int, error) {
	q := url.Values{}
	for k, vs := range query {
		q[k] = vs
	}
	var out StreamResult
	var acc []incremental.Candidate
	restarts := 0
	for {
		res, err := stream(p, q)
		if errors.Is(err, ErrCursorInvalid) {
			if restarts >= maxRestarts {
				return out, restarts, fmt.Errorf("loadgen: stream not complete after %d restarts: %w", restarts, err)
			}
			// The prefix was cut against a dead generation; candidate ranks
			// may have shifted, so nothing of it is salvageable.
			restarts++
			acc = acc[:0]
			q.Del("cursor")
			continue
		}
		if err != nil {
			return out, restarts, err
		}
		acc = append(acc, res.Candidates...)
		out = res
		out.Candidates = acc
		if res.Cursor == "" {
			return out, restarts, nil
		}
		q.Set("cursor", res.Cursor)
	}
}

// readAll drains a response body (small error envelopes only).
func readAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// MixedOptions shapes a mixed-tier run.
type MixedOptions struct {
	Options
	// BatchRatio is the fraction of requests sent on the batch tier, in
	// [0, 1]; the rest go interactive. Assignment is deterministic by
	// request index, so a given (Requests, BatchRatio) pair always yields
	// the same interleaving.
	BatchRatio float64
	// InteractiveQuery and BatchQuery are the budget parameters attached
	// to each tier's requests (tier= is set automatically).
	InteractiveQuery url.Values
	BatchQuery       url.Values
	// FollowCursors drives every request through FollowStream: exhausted
	// prefixes resume via their cursor and invalidated cursors restart
	// the stream from scratch, with the per-tier restart count in the
	// report. Off by default — the one-shot profile measures admission
	// and partial-result rates, which following would mask.
	FollowCursors bool
	// MaxRestarts bounds from-scratch restarts per request when
	// following. Default 3.
	MaxRestarts int
}

// TierReport aggregates one tier's outcomes.
type TierReport struct {
	Tier     string
	Requests int
	// Partials counts responses that delivered only a prefix (exhausted
	// or degraded); PartialRate is Partials/Requests.
	Partials    int
	PartialRate float64
	Rejected    int
	// Restarts counts streams restarted from scratch after the target
	// invalidated their resumption cursor (FollowCursors mode) — how
	// many requests observed a server restart mid-stream and recovered.
	Restarts int
	P50, P99 time.Duration
}

// MixedReport is RunMixed's aggregate: per-tier latency and
// partial-result rates.
type MixedReport struct {
	Interactive TierReport
	Batch       TierReport
	Errors      []error
}

// RunMixed drives a mixed interactive/batch streamed workload: Requests
// calls over Clients workers, each request deterministically assigned a
// tier by BatchRatio, with per-tier latency percentiles (p50/p99) and
// partial-result rates in the report. Shed requests (RejectedError —
// tier saturation, queue overflow, timeout) are counted per tier, not
// retried: the mixed profile measures admission behavior, so retrying
// would mask the shedding it exists to observe.
func RunMixed(stream Streamer, profiles []entity.Profile, opts MixedOptions) *MixedReport {
	opts.Options = opts.Options.withDefaults()
	if opts.BatchRatio < 0 {
		opts.BatchRatio = 0
	}
	if opts.BatchRatio > 1 {
		opts.BatchRatio = 1
	}
	// Deterministic assignment: request i is batch iff i mod 100 falls
	// below the ratio percentage.
	batchPct := int(opts.BatchRatio * 100)

	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 3
	}

	type sample struct {
		batch    bool
		latency  time.Duration
		partial  bool
		rejected bool
		restarts int
		err      error
	}
	samples := make([]sample, opts.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				isBatch := i%100 < batchPct
				q := url.Values{}
				src := opts.InteractiveQuery
				tier := "interactive"
				if isBatch {
					src, tier = opts.BatchQuery, "batch"
				}
				for k, vs := range src {
					q[k] = vs
				}
				q.Set("tier", tier)
				start := time.Now()
				var res StreamResult
				var err error
				restarts := 0
				if opts.FollowCursors {
					res, restarts, err = FollowStream(stream, profiles[i%len(profiles)], q, opts.MaxRestarts)
				} else {
					res, err = stream(profiles[i%len(profiles)], q)
				}
				s := sample{batch: isBatch, latency: time.Since(start), restarts: restarts}
				switch {
				case err == nil:
					s.partial = res.Partial
				case errors.Is(err, ErrRejected):
					s.rejected = true
				default:
					s.err = err
				}
				samples[i] = s
			}
		}()
	}
	wg.Wait()

	rep := &MixedReport{
		Interactive: TierReport{Tier: "interactive"},
		Batch:       TierReport{Tier: "batch"},
	}
	var latI, latB []time.Duration
	for _, s := range samples {
		tr, lat := &rep.Interactive, &latI
		if s.batch {
			tr, lat = &rep.Batch, &latB
		}
		tr.Requests++
		tr.Restarts += s.restarts
		switch {
		case s.err != nil:
			rep.Errors = append(rep.Errors, s.err)
		case s.rejected:
			tr.Rejected++
		default:
			*lat = append(*lat, s.latency)
			if s.partial {
				tr.Partials++
			}
		}
	}
	finishTier(&rep.Interactive, latI)
	finishTier(&rep.Batch, latB)
	return rep
}

// finishTier computes the percentiles and rates of one tier's samples.
func finishTier(tr *TierReport, lat []time.Duration) {
	if ok := tr.Requests - tr.Rejected; ok > 0 {
		tr.PartialRate = float64(tr.Partials) / float64(ok)
	}
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	tr.P50 = lat[len(lat)/2]
	tr.P99 = lat[(len(lat)*99)/100]
}
