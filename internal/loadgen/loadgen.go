// Package loadgen drives concurrent resolve traffic against an Entity
// Resolution serving target — the race-enabled harness behind the server's
// equivalence and backpressure tests and its micro-benchmarks.
//
// The generator is transport-agnostic: Run fans Options.Requests calls
// across Options.Clients goroutines through any Resolver func, and
// HTTPResolver adapts a running /v1/resolve endpoint to that signature.
// Shed load (HTTP 429 / server.ErrQueueFull mapped to ErrRejected by the
// adapter) is tallied separately from hard errors, so tests can assert
// "every accepted request completed" exactly.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"metablocking/internal/dataio"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// ErrRejected marks a request the target shed under load (HTTP 429). The
// generator counts these as backpressure, not failures.
var ErrRejected = errors.New("loadgen: request shed by target")

// Resolver is one resolve attempt against the target.
type Resolver func(p entity.Profile) (incremental.BatchResult, error)

// Options shapes a load run.
type Options struct {
	// Clients is the number of concurrent workers. Default 8.
	Clients int
	// Requests is the total number of resolve calls. Default 1000.
	Requests int
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	return o
}

// Response records one completed request: the profile that was sent and
// what the target answered.
type Response struct {
	Profile    entity.Profile
	ID         entity.ID
	Candidates []incremental.Candidate
}

// Report aggregates a load run.
type Report struct {
	// Responses holds every accepted-and-answered request, in no
	// particular order (sort by ID to recover arrival order).
	Responses []Response
	// Rejected counts requests the target shed (ErrRejected).
	Rejected int
	// Errors holds every other failure.
	Errors []error
}

// Run fans opts.Requests resolve calls over opts.Clients workers, cycling
// through the profile set, and aggregates the outcomes. It returns once
// every request has completed.
func Run(resolve Resolver, profiles []entity.Profile, opts Options) *Report {
	opts = opts.withDefaults()
	var (
		next atomic.Int64
		mu   sync.Mutex
		rep  Report
		wg   sync.WaitGroup
	)
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				p := profiles[i%len(profiles)]
				res, err := resolve(p)
				mu.Lock()
				switch {
				case errors.Is(err, ErrRejected):
					rep.Rejected++
				case err != nil:
					rep.Errors = append(rep.Errors, err)
				default:
					rep.Responses = append(rep.Responses, Response{
						Profile:    p,
						ID:         res.ID,
						Candidates: res.Candidates,
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return &rep
}

// HTTPResolver adapts a server's base URL ("http://host:port") to a
// Resolver posting JSONL records to /v1/resolve. A 429 maps to
// ErrRejected; any other non-200 status is a hard error. A nil client
// uses http.DefaultClient.
func HTTPResolver(baseURL string, client *http.Client) Resolver {
	if client == nil {
		client = http.DefaultClient
	}
	return func(p entity.Profile) (incremental.BatchResult, error) {
		body, err := dataio.MarshalProfileJSON(p)
		if err != nil {
			return incremental.BatchResult{}, err
		}
		resp, err := client.Post(baseURL+"/v1/resolve", "application/json", bytes.NewReader(body))
		if err != nil {
			return incremental.BatchResult{}, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return incremental.BatchResult{}, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			return incremental.BatchResult{}, fmt.Errorf("%w (Retry-After %s)", ErrRejected, resp.Header.Get("Retry-After"))
		default:
			return incremental.BatchResult{}, fmt.Errorf("loadgen: status %d: %s", resp.StatusCode, payload)
		}
		var out struct {
			ID         int `json:"id"`
			Candidates []struct {
				ID     int     `json:"id"`
				Weight float64 `json:"weight"`
			} `json:"candidates"`
		}
		if err := json.Unmarshal(payload, &out); err != nil {
			return incremental.BatchResult{}, fmt.Errorf("loadgen: decoding response: %v", err)
		}
		res := incremental.BatchResult{ID: entity.ID(out.ID)}
		for _, c := range out.Candidates {
			res.Candidates = append(res.Candidates, incremental.Candidate{ID: entity.ID(c.ID), Weight: c.Weight})
		}
		return res, nil
	}
}
