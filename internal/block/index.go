package block

import "metablocking/internal/entity"

// EntityIndex is the inverted index from entity IDs to the ascending list
// of block IDs that contain them (paper §2). It underlies Comparison
// Propagation (via the LeCoBI condition) and both edge-weighting
// implementations of meta-blocking.
type EntityIndex struct {
	lists       [][]int32
	numEntities int
}

// NewEntityIndex builds the index for the collection's current block order.
// Block IDs are positional: block i of c.Blocks has ID i. Because blocks
// are visited in order and member slices are only appended to, every block
// list comes out ascending.
func NewEntityIndex(c *Collection) *EntityIndex {
	idx := &EntityIndex{
		lists:       make([][]int32, c.NumEntities),
		numEntities: c.NumEntities,
	}
	// First pass: count assignments per entity so each list is allocated
	// exactly once.
	counts := make([]int32, c.NumEntities)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, id := range b.E1 {
			counts[id]++
		}
		for _, id := range b.E2 {
			counts[id]++
		}
	}
	for id, n := range counts {
		if n > 0 {
			idx.lists[id] = make([]int32, 0, n)
		}
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, id := range b.E1 {
			idx.lists[id] = append(idx.lists[id], int32(i))
		}
		for _, id := range b.E2 {
			idx.lists[id] = append(idx.lists[id], int32(i))
		}
	}
	return idx
}

// NumEntities returns the size of the ID space the index covers.
func (x *EntityIndex) NumEntities() int { return x.numEntities }

// BlockList returns the ascending block IDs containing the given entity.
// The returned slice is shared; callers must not modify it.
func (x *EntityIndex) BlockList(id entity.ID) []int32 { return x.lists[id] }

// NumBlocks returns |Bi|, the number of blocks containing the entity.
func (x *EntityIndex) NumBlocks(id entity.ID) int { return len(x.lists[id]) }

// CommonBlocks returns |Bij|, the number of blocks shared by the two
// entities, by intersecting their sorted block lists (the core of the
// paper's Algorithm 2).
func (x *EntityIndex) CommonBlocks(a, b entity.ID) int {
	la, lb := x.lists[a], x.lists[b]
	common, i, j := 0, 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			common++
			i++
			j++
		}
	}
	return common
}

// LeastCommonBlock returns the smallest block ID shared by the two
// entities, or -1 if they share none.
func (x *EntityIndex) LeastCommonBlock(a, b entity.ID) int32 {
	la, lb := x.lists[a], x.lists[b]
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			return la[i]
		}
	}
	return -1
}

// IsNonRedundant implements the Least Common Block Index (LeCoBI)
// condition: a comparison (a, b) inside block blockID is non-redundant iff
// blockID equals the least common block ID of the two entities.
func (x *EntityIndex) IsNonRedundant(blockID int32, a, b entity.ID) bool {
	return x.LeastCommonBlock(a, b) == blockID
}
