package blocking

import (
	"reflect"
	"runtime"
	"testing"

	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

// shardedMethods builds every blocking method that supports a sharded
// build, parameterized by worker count.
func shardedMethods(workers int) []Method {
	return []Method{
		TokenBlocking{Workers: workers},
		QGramsBlocking{Workers: workers},
		SuffixArrayBlocking{Workers: workers},
		ExtendedQGramsBlocking{Workers: workers},
	}
}

// TestShardedBlockingMatchesSerial: for every sharded method, worker count
// and task type, the parallel build must be bit-identical to the serial
// one — same block order, same member order.
func TestShardedBlockingMatchesSerial(t *testing.T) {
	inputs := map[string]*entity.Collection{
		"example": paperexample.Collection(),
		"dirty":   datagen.D1D(0.03).Collection,
		"clean":   datagen.D1C(0.03).Collection,
	}
	workerCounts := []int{2, 3, 7, runtime.GOMAXPROCS(0), -1}
	for name, c := range inputs {
		for i, m := range shardedMethods(0) {
			want := m.Build(c)
			for _, w := range workerCounts {
				got := shardedMethods(w)[i].Build(c)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s workers=%d: sharded build differs from serial (%d vs %d blocks)",
						name, m.Name(), w, got.Len(), want.Len())
				}
			}
		}
	}
}

// TestShardedBlockingWorkersExceedProfiles: more workers than profiles must
// not panic or change the output.
func TestShardedBlockingWorkersExceedProfiles(t *testing.T) {
	c := paperexample.Collection()
	want := TokenBlocking{}.Build(c)
	got := TokenBlocking{Workers: 1000}.Build(c)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oversubscribed build differs: %d vs %d blocks", got.Len(), want.Len())
	}
}

// TestShardedBlockingEmptyCollection: the sharded path must handle inputs
// smaller than any worker count.
func TestShardedBlockingEmptyCollection(t *testing.T) {
	c := entity.NewDirty(nil)
	got := TokenBlocking{Workers: 4}.Build(c)
	if got.Len() != 0 {
		t.Fatalf("expected no blocks, got %d", got.Len())
	}
}

// TestKeyShardStable: the shard function must be deterministic and in
// range for any shard count.
func TestKeyShardStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for _, key := range []string{"", "a", "token", "suffix arrays"} {
			s := keyShard(key, n)
			if s != keyShard(key, n) {
				t.Fatalf("keyShard(%q, %d) not deterministic", key, n)
			}
			if s < 0 || s >= n {
				t.Fatalf("keyShard(%q, %d) = %d out of range", key, n, s)
			}
		}
	}
}

// TestSuffixArrayDropAfterMerge: the oversized-key drop must apply to the
// globally merged postings, not the per-worker partials — a key that is
// small in every shard but large in total must still be dropped.
func TestSuffixArrayDropAfterMerge(t *testing.T) {
	// 12 profiles share the token "suffix"; MaxBlockSize 8 must drop its
	// suffix keys in both the serial and the sharded build.
	var profiles []entity.Profile
	for i := 0; i < 12; i++ {
		profiles = append(profiles, entity.Profile{
			Attributes: []entity.Attribute{{Name: "title", Value: "suffix"}},
		})
	}
	c := entity.NewDirty(profiles)
	s := SuffixArrayBlocking{MinLength: 4, MaxBlockSize: 8}
	want := s.Build(c)
	s.Workers = 5
	got := s.Build(c)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded drop differs from serial: %d vs %d blocks", got.Len(), want.Len())
	}
	if want.Len() != 0 {
		t.Fatalf("expected all oversized suffix blocks dropped, got %d", want.Len())
	}
}

// TestBuildBlocksMultiShardOrder: blocks must come out sorted by key even
// when the keys are spread over many shards.
func TestBuildBlocksMultiShardOrder(t *testing.T) {
	ds := datagen.D2D(0.02)
	blocks := TokenBlocking{Workers: 6}.Build(ds.Collection)
	for i := 1; i < blocks.Len(); i++ {
		if blocks.Blocks[i-1].Key >= blocks.Blocks[i].Key {
			t.Fatalf("blocks out of key order at %d: %q >= %q",
				i, blocks.Blocks[i-1].Key, blocks.Blocks[i].Key)
		}
	}
}
