package experiments

import (
	"time"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/eval"
)

// BlockingMethodRow is one blocking method's performance on one dataset.
type BlockingMethodRow struct {
	Dataset     string
	Method      string
	Blocks      int
	Comparisons int64
	PC, PQ, RR  float64
	OTime       time.Duration
}

// BlockingMethods compares every implemented blocking method on the
// Clean-Clean datasets (after Block Purging, as in §6.2). The paper
// reports that all schema-agnostic redundancy-positive methods behave like
// Token Blocking (§6.2, "omitted for brevity"); this experiment makes that
// claim checkable, and also positions the non-redundancy-positive methods
// (Standard, Sorted Neighborhood, Canopy) and LSH.
func (s *Suite) BlockingMethods() []BlockingMethodRow {
	methods := []blocking.Method{
		blocking.TokenBlocking{},
		blocking.QGramsBlocking{},
		blocking.ExtendedQGramsBlocking{},
		blocking.SuffixArrayBlocking{},
		blocking.AttributeClusteringBlocking{},
		blocking.MinHashBlocking{},
		blocking.StandardBlocking{},
		blocking.SortedNeighborhood{},
		blocking.ExtendedSortedNeighborhood{},
		blocking.CanopyClustering{},
	}
	var out []BlockingMethodRow
	s.printf("\n=== Blocking methods (Clean-Clean datasets, after Block Purging) ===\n")
	for _, p := range s.Datasets() {
		if p.Dataset.Name[2] != 'C' || p.Dataset.Name != "D1C" {
			continue // one representative dataset keeps this affordable
		}
		s.printf("\n--- %s ---\n", p.Dataset.Name)
		s.printf("%-30s %8s %10s %7s %10s %7s %9s\n",
			"method", "|B|", "‖B‖", "PC", "PQ", "RR", "OTime")
		base := p.Dataset.Collection.BruteForceComparisons()
		for _, m := range methods {
			start := time.Now()
			blocks := blockproc.BlockPurging{}.Apply(m.Build(p.Dataset.Collection))
			otime := time.Since(start)
			rep := eval.EvaluateBlocks(blocks, p.Dataset.GroundTruth, base)
			row := BlockingMethodRow{
				Dataset:     p.Dataset.Name,
				Method:      m.Name(),
				Blocks:      blocks.Len(),
				Comparisons: rep.Comparisons,
				PC:          rep.PC(),
				PQ:          rep.PQ(),
				RR:          rep.RR(),
				OTime:       otime,
			}
			out = append(out, row)
			s.printf("%-30s %8d %10s %7.3f %10.2e %7.3f %9s\n",
				row.Method, row.Blocks, sci(row.Comparisons), row.PC, row.PQ, row.RR, dur(row.OTime))
		}
	}
	return out
}
