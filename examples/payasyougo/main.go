// Pay-as-you-go ER: resolve as many duplicates as possible under a hard
// comparison budget — the efficiency-intensive application class of §3.
//
// The weighted blocking graph is turned into a prioritized comparison
// stream (heaviest edges first); the example reports the recall reached at
// growing budget prefixes, versus executing the same comparisons in random
// order.
//
//	go run ./examples/payasyougo
package main

import (
	"fmt"
	"math/rand"

	mb "metablocking"
)

func main() {
	ds := mb.GenerateDataset(mb.D1C, 0.3)
	blocks := mb.BuildBlocks(ds.Collection, mb.TokenBlocking{}, 0.8)
	fmt.Printf("blocks entail %d comparisons; %d true matches exist\n",
		blocks.Comparisons(), ds.GroundTruth.Size())

	sched := mb.NewProgressiveScheduler(blocks, mb.ARCS)
	total := sched.Len()

	// Random-order baseline over the same comparison set.
	random := make([]mb.Comparison, 0, total)
	for {
		c, ok := sched.Next()
		if !ok {
			break
		}
		random = append(random, c)
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(random), func(i, j int) { random[i], random[j] = random[j], random[i] })
	sched.Reset()

	fmt.Printf("\n%12s %14s %14s\n", "budget", "progressive", "random order")
	detectedP, detectedR := 0, 0
	emittedP, emittedR := 0, 0
	for _, budget := range []int{500, 1000, 2000, 5000, 10000, total} {
		if budget > total {
			budget = total
		}
		for emittedP < budget {
			c, _ := sched.Next()
			emittedP++
			if ds.GroundTruth.Contains(c.Pair.A, c.Pair.B) {
				detectedP++
			}
		}
		for emittedR < budget {
			c := random[emittedR]
			emittedR++
			if ds.GroundTruth.Contains(c.Pair.A, c.Pair.B) {
				detectedR++
			}
		}
		fmt.Printf("%12d %13.1f%% %13.1f%%\n", budget,
			100*float64(detectedP)/float64(ds.GroundTruth.Size()),
			100*float64(detectedR)/float64(ds.GroundTruth.Size()))
	}
	fmt.Println("\nthe prioritized stream finds nearly all duplicates within a tiny")
	fmt.Println("budget prefix — the property pay-as-you-go applications rely on")
}
