//go:build !race

package server

// raceEnabled reports whether the race detector is active; the allocation
// regression tests skip under it (instrumentation inflates alloc counts).
const raceEnabled = false
