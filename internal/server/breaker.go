package server

import (
	"sync"
	"time"
)

// breakerState is the degraded-mode state machine:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open
//	half-open probe succeeds ──▶ closed
//	half-open probe fails ──▶ open (cooldown restarts)
//
// While open (and while a half-open probe is outstanding) the serving
// layer answers resolve requests read-only from the last good index
// instead of running the failing write path.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the resolve-path circuit breaker. It is consulted by the
// single-writer batcher, but guards its state with a mutex anyway so
// tests and future callers need no external fencing.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit; 0 disables
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time
	onChange  func(degraded bool) // fired on closed↔open transitions

	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onChange func(bool)) *breaker {
	if now == nil {
		now = time.Now
	}
	if onChange == nil {
		onChange = func(bool) {}
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, onChange: onChange}
}

// allow reports whether the real resolve path may run this request
// (proceed) and whether that run is the half-open probe (probe). A false
// proceed means: serve degraded.
func (b *breaker) allow() (proceed, probe bool) {
	if b == nil || b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	case breakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return true, false
	}
}

// result records the outcome of a resolve the breaker allowed.
func (b *breaker) result(probe, failed bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if failed {
			// Probe failed: stay degraded, restart the cooldown.
			b.state = breakerOpen
			b.openedAt = b.now()
			return
		}
		b.state = breakerClosed
		b.consecutive = 0
		b.onChange(false)
		return
	}
	if !failed {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerClosed && b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.onChange(true)
	}
}

// reset force-closes the circuit — used after a successful snapshot swap
// installs a known-good index.
func (b *breaker) reset() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.state != breakerClosed
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	if wasOpen {
		b.onChange(false)
	}
}

// stateString names the current state for the admin status endpoint.
func (b *breaker) stateString() string {
	if b == nil || b.threshold <= 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// degraded reports whether the circuit is currently answering read-only.
func (b *breaker) degraded() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}
