package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSVReports runs every experiment and writes one CSV per table and
// figure into dir, for downstream plotting and regression tracking:
//
//	table1_original.csv, table1_filtered.csv, table2.csv, figure10.csv,
//	table3_original.csv, table3_filtered.csv, table4.csv, table5.csv,
//	table6.csv
func (s *Suite) WriteCSVReports(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := writeCSV(f, header, rows); err != nil {
			return fmt.Errorf("experiments: writing %s: %w", name, err)
		}
		return f.Close()
	}

	t2 := s.Table2()
	rows := make([][]string, 0, len(t2))
	for _, r := range t2 {
		rows = append(rows, []string{
			r.Name, itoa(r.Entities1), itoa(r.Entities2), itoa(r.Duplicates),
			itoa(r.Names), itoa(r.Pairs), ftoa(r.MeanPairs), i64toa(r.BruteForce),
		})
	}
	if err := write("table2.csv", []string{"dataset", "e1", "e2", "duplicates", "names", "pairs", "mean_pairs", "brute_force"}, rows); err != nil {
		return err
	}

	t1a, t1b := s.Table1()
	for name, t1 := range map[string][]Table1Row{"table1_original.csv": t1a, "table1_filtered.csv": t1b} {
		rows = rows[:0]
		for _, r := range t1 {
			rows = append(rows, []string{
				r.Name, itoa(r.Blocks), i64toa(r.Comparisons), ftoa(r.BPE),
				ftoa(r.PC), ftoa(r.PQ), ftoa(r.RR), itoa(r.GraphOrder), i64toa(r.GraphSize),
			})
		}
		if err := write(name, []string{"dataset", "blocks", "comparisons", "bpe", "pc", "pq", "rr", "graph_order", "graph_size"}, rows); err != nil {
			return err
		}
	}

	fig := s.Figure10()
	rows = rows[:0]
	for _, series := range fig {
		for _, pt := range series.Points {
			rows = append(rows, []string{series.Name, ftoa(pt.Ratio), ftoa(pt.PC), ftoa(pt.RR)})
		}
	}
	if err := write("figure10.csv", []string{"dataset", "ratio", "pc", "rr"}, rows); err != nil {
		return err
	}

	t3a, t3b := s.Table3()
	for name, t3 := range map[string][]PruneResult{"table3_original.csv": t3a, "table3_filtered.csv": t3b} {
		if err := write(name, pruneHeader(), pruneRows(t3)); err != nil {
			return err
		}
	}
	if err := write("table5.csv", pruneHeader(), pruneRows(s.Table5())); err != nil {
		return err
	}
	if err := write("table4.csv", pruneHeader(), pruneRows(s.Table4())); err != nil {
		return err
	}

	t6 := s.Table6()
	rows = rows[:0]
	for _, r := range t6 {
		rows = append(rows, []string{
			r.Dataset, r.Method, i64toa(r.Comparisons), ftoa(r.PC), ftoa(r.PQ),
			i64toa(r.OTime.Microseconds()),
		})
	}
	return write("table6.csv", []string{"dataset", "method", "comparisons", "pc", "pq", "otime_us"}, rows)
}

func pruneHeader() []string {
	return []string{"dataset", "algorithm", "comparisons", "pc", "pq", "otime_us"}
}

func pruneRows(results []PruneResult) [][]string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Dataset, r.Algorithm.String(), i64toa(r.Comparisons),
			ftoa(r.PC), ftoa(r.PQ), i64toa(r.OTime.Microseconds()),
		})
	}
	return rows
}

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int) string     { return strconv.Itoa(v) }
func i64toa(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
