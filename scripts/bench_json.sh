#!/bin/sh
# bench_json.sh — emit the headline benchmark trajectory as machine-readable
# JSON (the BENCH_PR10.json format): ns/op, B/op, allocs/op for the serial
# pipeline, the batched server resolve path (monolithic plus the 4- and
# 16-shard scatter-gather sweep) and the out-of-core read path (cold and
# warm page cache), plus p50/p99 request latency under concurrent load —
# for both the synchronous resolve path and the budget-aware interactive
# streaming mode (resolve_budget_interactive, with comparisons/ms).
#
# Usage:
#   sh scripts/bench_json.sh [out.json]
#
# With no argument the JSON goes to stdout. To refresh the committed
# trajectory after an intentional performance change:
#   sh scripts/bench_json.sh fresh.json
#   # inspect fresh.json, then fold its numbers into BENCH_PR10.json's
#   # "benchmarks" section (keep "baseline" as the historical record).
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -ge 1 ]; then
    exec go run ./cmd/benchjson emit -o "$1"
fi
exec go run ./cmd/benchjson emit
