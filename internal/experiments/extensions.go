package experiments

import (
	"runtime"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/eval"
	"metablocking/internal/progressive"
	"metablocking/internal/supervised"
)

// SupervisedRow compares supervised meta-blocking against the unsupervised
// reference on one dataset.
type SupervisedRow struct {
	Dataset       string
	Comparisons   int64
	PC, PQ        float64
	TrainingEdges int
	OTime         time.Duration
}

// Supervised runs Supervised Meta-blocking (ref [23]) on the filtered
// blocks of every dataset — the extension experiment enabled by the
// synthetic ground truth (see internal/supervised).
func (s *Suite) Supervised() []SupervisedRow {
	var out []SupervisedRow
	s.printf("\n=== Extension: Supervised Meta-blocking (logistic regression, 5%% labelled sample) ===\n")
	s.prunePrintHeader()
	for _, p := range s.Datasets() {
		res, err := supervised.Run(p.Filtered, p.Dataset.GroundTruth, supervised.Config{})
		if err != nil {
			s.printf("%-5s error: %v\n", p.Dataset.Name, err)
			continue
		}
		rep := eval.EvaluatePairs(res.Pairs, p.Dataset.GroundTruth, p.Filtered.Comparisons())
		row := SupervisedRow{
			Dataset:       p.Dataset.Name,
			Comparisons:   rep.Comparisons,
			PC:            rep.PC(),
			PQ:            rep.PQ(),
			TrainingEdges: res.TrainingEdges,
			OTime:         res.OTime,
		}
		out = append(out, row)
		s.prunePrint("", PruneResult{
			Dataset:     row.Dataset,
			Comparisons: row.Comparisons,
			PC:          row.PC,
			PQ:          row.PQ,
			OTime:       row.OTime,
		})
	}
	return out
}

// ProgressiveRow is the recall of the prioritized comparison stream at one
// budget, expressed in comparisons-per-duplicate.
type ProgressiveRow struct {
	Dataset string
	// BudgetPerDup is the emitted comparisons divided by |D(E)|.
	BudgetPerDup int
	Recall       float64
}

// Progressive evaluates pay-as-you-go scheduling: recall at budgets of 1,
// 2, 5 and 10 comparisons per existing duplicate, using ARCS weights on
// the filtered blocks.
func (s *Suite) Progressive() []ProgressiveRow {
	var out []ProgressiveRow
	s.printf("\n=== Extension: Progressive (pay-as-you-go) recall at fixed budgets ===\n")
	s.printf("%-5s %12s %12s %12s %12s\n", "", "1×|D|", "2×|D|", "5×|D|", "10×|D|")
	perDup := []int{1, 2, 5, 10}
	for _, p := range s.Datasets() {
		sched := progressive.NewScheduler(p.Filtered, core.ARCS)
		budgets := make([]int, len(perDup))
		for i, m := range perDup {
			budgets[i] = m * p.Dataset.GroundTruth.Size()
		}
		curve := progressive.RecallCurve(sched, p.Dataset.GroundTruth, budgets)
		s.printf("%-5s", p.Dataset.Name)
		for i, pt := range curve {
			out = append(out, ProgressiveRow{
				Dataset:      p.Dataset.Name,
				BudgetPerDup: perDup[i],
				Recall:       pt.Recall,
			})
			s.printf(" %11.3f", pt.Recall)
		}
		s.printf("\n")
	}
	return out
}

// ParallelRow reports the wall-clock of serial vs parallel pruning.
type ParallelRow struct {
	Dataset  string
	Serial   time.Duration
	Parallel time.Duration
	Workers  int
}

// Parallel measures the speedup of parallel Reciprocal WNP over the serial
// implementation on the filtered blocks.
func (s *Suite) Parallel() []ParallelRow {
	workers := runtime.GOMAXPROCS(0)
	var out []ParallelRow
	s.printf("\n=== Extension: Parallel pruning speedup (Reciprocal WNP, JS, %d workers) ===\n", workers)
	s.printf("%-5s %12s %12s %9s\n", "", "serial", "parallel", "speedup")
	best := func(cfg core.Config, p *Prepared) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for run := 0; run < 3; run++ { // best-of-3 to damp scheduler noise
			start := time.Now()
			core.Run(p.Filtered, cfg)
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	for _, p := range s.Datasets() {
		serial := best(core.Config{Scheme: core.JS, Algorithm: core.ReciprocalWNP}, p)
		parallel := best(core.Config{Scheme: core.JS, Algorithm: core.ReciprocalWNP, Workers: -1}, p)

		out = append(out, ParallelRow{Dataset: p.Dataset.Name, Serial: serial, Parallel: parallel, Workers: workers})
		s.printf("%-5s %12s %12s %8.1fx\n", p.Dataset.Name, dur(serial), dur(parallel),
			float64(serial)/float64(parallel))
	}
	return out
}

// Extensions runs all extension experiments.
func (s *Suite) Extensions() {
	s.Supervised()
	s.Progressive()
	s.Parallel()
}
