package oracle

import (
	"testing"

	"metablocking/internal/core"
)

// fuzzDiff decodes a fuzzer-controlled byte string into a small block
// collection and runs the full differential comparator on it: bit-identical
// weights across Algorithm 2, Algorithm 3 and the oracle, exact
// comparison-set equality for every pruning algorithm (serial, original
// weighting, parallel), and the Redefined/Reciprocal family theorems. The
// weighting scheme is itself fuzzer-chosen.
func fuzzDiff(t *testing.T, data []byte, clean bool) {
	if len(data) == 0 {
		return
	}
	scheme := core.AllSchemes[int(data[0])%len(core.AllSchemes)]
	c := FromBytes(data[1:], clean)
	if c == nil {
		return
	}
	if err := CheckWeights(c, scheme); err != nil {
		t.Fatal(err)
	}
	if err := CheckFamilies(c, scheme); err != nil {
		t.Fatal(err)
	}
	for _, alg := range core.AllAlgorithms {
		if err := CheckPruning(c, scheme, alg, 1, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckFiltering(c, 0.5, 4); err != nil {
		t.Fatal(err)
	}
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 7, 3})
	// One multi-block input per scheme byte so every formula is in the
	// initial corpus.
	for s := byte(0); s < 5; s++ {
		f.Add([]byte{s, 13, 9, 4, 1, 2, 3, 4, 3, 2, 5, 9, 0, 2, 200, 100, 5, 1, 2, 3, 4, 5, 1, 7})
	}
}

// FuzzDiffDirty cross-checks production against the oracle on mutated
// Dirty ER collections.
func FuzzDiffDirty(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) { fuzzDiff(t, data, false) })
}

// FuzzDiffClean cross-checks production against the oracle on mutated
// Clean-Clean ER collections.
func FuzzDiffClean(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) { fuzzDiff(t, data, true) })
}
