package shard

import (
	"errors"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
)

func testProfiles(t testing.TB, n int) []entity.Profile {
	t.Helper()
	ds := datagen.D1D(0.1)
	if len(ds.Collection.Profiles) < n {
		t.Fatalf("dataset has %d profiles, need %d", len(ds.Collection.Profiles), n)
	}
	return ds.Collection.Profiles[:n]
}

// TestGroupMatchesSerial is the core sharding claim: for every scheme ×
// pruning algorithm × shard count, the group's resolved IDs, candidate
// sets AND weights are bit-identical to a single-index Resolver fed the
// same arrivals, and so are Peek answers and the canonical snapshot.
func TestGroupMatchesSerial(t *testing.T) {
	profiles := testProfiles(t, 200)
	for _, scheme := range []core.Scheme{core.ARCS, core.CBS, core.ECBS, core.JS} {
		for _, k := range []int{0, 3} {
			rcfg := incremental.Config{Scheme: scheme, K: k, MaxBlockSize: 40}
			serial, err := incremental.NewResolver(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]incremental.BatchResult, len(profiles))
			for i, p := range profiles {
				want[i], _ = serial.Resolve(p)
			}
			wantPeek, _ := serial.Peek(profiles[13])
			wantSnap := serial.Snapshot()

			for _, shards := range []int{1, 2, 3, 4, 16} {
				g, err := New(Config{Resolver: rcfg, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range profiles {
					got, err := g.Resolve(p)
					if err != nil {
						t.Fatalf("scheme %v k=%d shards=%d: resolve %d: %v", scheme, k, shards, i, err)
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Fatalf("scheme %v k=%d shards=%d: arrival %d diverged:\n got %+v\nwant %+v",
							scheme, k, shards, i, got, want[i])
					}
				}
				if gotPeek, err := g.Peek(profiles[13]); err != nil || !reflect.DeepEqual(gotPeek, wantPeek) {
					t.Fatalf("scheme %v k=%d shards=%d: Peek diverged (err %v)", scheme, k, shards, err)
				}
				if g.Size() != serial.Size() {
					t.Fatalf("scheme %v k=%d shards=%d: size %d, want %d", scheme, k, shards, g.Size(), serial.Size())
				}
				if gotSnap := g.Snapshot(); !reflect.DeepEqual(gotSnap, wantSnap) {
					t.Fatalf("scheme %v k=%d shards=%d: canonical snapshot diverged", scheme, k, shards)
				}
				if err := g.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestMergerTieBreak pins the deterministic tie-break of the cross-shard
// top-K merge: equal weights rank by ascending entity ID regardless of
// which shard reported them or in what order the lists arrive.
func TestMergerTieBreak(t *testing.T) {
	sc := func(id int, w float64) incremental.ShardCand {
		return incremental.ShardCand{Candidate: incremental.Candidate{ID: entity.ID(id), Weight: w}}
	}
	listsA := [][]incremental.ShardCand{
		{sc(7, 2.0), sc(3, 1.0)},
		{sc(2, 2.0), sc(5, 2.0)},
	}
	listsB := [][]incremental.ShardCand{ // same candidates, shards swapped
		{sc(5, 2.0), sc(2, 2.0)},
		{sc(3, 1.0), sc(7, 2.0)},
	}
	want := []incremental.Candidate{{ID: 2, Weight: 2.0}, {ID: 5, Weight: 2.0}}
	var merger incremental.Merger
	gotA := merger.TopK(2, listsA)
	gotB := merger.TopK(2, listsB)
	if !reflect.DeepEqual(gotA, want) || !reflect.DeepEqual(gotB, want) {
		t.Fatalf("tie-break not deterministic:\n A=%v\n B=%v\n want %v", gotA, gotB, want)
	}
	// Mean pruning: discovery order reconstructed from (FirstKey, ID)
	// must be input-order independent too.
	fk := func(id int, w float64, key int32) incremental.ShardCand {
		c := sc(id, w)
		c.FirstKey = key
		return c
	}
	meanA := [][]incremental.ShardCand{{fk(4, 3.0, 1), fk(0, 1.0, 0)}, {fk(1, 2.0, 0)}}
	meanB := [][]incremental.ShardCand{{fk(1, 2.0, 0)}, {fk(0, 1.0, 0), fk(4, 3.0, 1)}}
	wantMean := []incremental.Candidate{{ID: 4, Weight: 3.0}, {ID: 1, Weight: 2.0}}
	if got := merger.AboveMean(meanA); !reflect.DeepEqual(got, wantMean) {
		t.Fatalf("AboveMean A = %v, want %v", got, wantMean)
	}
	if got := merger.AboveMean(meanB); !reflect.DeepEqual(got, wantMean) {
		t.Fatalf("AboveMean B = %v, want %v", got, wantMean)
	}
}

// TestTokenBackpressure exhausts a shard's admission tokens and expects
// ErrShardBusy — without consuming an ID or mutating any shard.
func TestTokenBackpressure(t *testing.T) {
	profiles := testProfiles(t, 4)
	g, err := New(Config{Resolver: incremental.Config{Scheme: core.CBS}, Shards: 2, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Resolve(profiles[0]); err != nil {
		t.Fatal(err)
	}
	// Steal shard 1's only token: the next resolve cannot scatter to it.
	g.actors[1].tokens <- struct{}{}
	if _, err := g.Resolve(profiles[1]); !errors.Is(err, ErrShardBusy) {
		t.Fatalf("resolve with exhausted tokens: err = %v, want ErrShardBusy", err)
	}
	if g.Size() != 1 {
		t.Fatalf("failed resolve consumed an ID: size %d", g.Size())
	}
	<-g.actors[1].tokens
	if _, err := g.Resolve(profiles[1]); err != nil {
		t.Fatalf("resolve after releasing token: %v", err)
	}
}

// TestShardDownAndPartial drives one shard into down state via injected
// gather faults, then verifies degraded behavior: gathers skip the down
// shard, commits homed on it are refused with ErrShardDown, IDs never
// skip, and the other shard keeps serving.
func TestShardDownAndPartial(t *testing.T) {
	profiles := testProfiles(t, 10)
	inj := fault.New(1)
	g, err := New(Config{
		Resolver: incremental.Config{Scheme: core.CBS},
		Shards:   2, DownAfter: 3, Fault: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 2; i++ {
		if _, err := g.Resolve(profiles[i]); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(GatherSite(1), fault.Spec{Times: 3})
	for i := 0; i < 3; i++ {
		if _, err := g.Resolve(profiles[2]); err == nil {
			t.Fatalf("resolve %d with armed fault: no error", i)
		}
		if g.Size() != 2 {
			t.Fatalf("failed resolve consumed an ID: size %d", g.Size())
		}
	}
	if down := g.Down(); !down[1] || down[0] {
		t.Fatalf("down after 3 consecutive failures = %v, want shard 1 only", down)
	}
	// id 2 homes on shard 0: partial gather, successful commit.
	res, err := g.Resolve(profiles[2])
	if err != nil {
		t.Fatalf("partial resolve: %v", err)
	}
	if res.ID != 2 {
		t.Fatalf("partial resolve ID = %d, want 2", res.ID)
	}
	if got := g.metrics.Counter(CtrPartialGathers).Value(); got == 0 {
		t.Fatal("partial gather not counted")
	}
	// id 3 homes on the down shard 1: refused, no ID consumed.
	if _, err := g.Resolve(profiles[3]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("resolve homed on down shard: err = %v, want ErrShardDown", err)
	}
	if g.Size() != 3 {
		t.Fatalf("size after refused resolve = %d, want 3", g.Size())
	}
	// Peek still answers, degraded.
	if _, err := g.Peek(profiles[4]); err != nil {
		t.Fatalf("degraded peek: %v", err)
	}
	stats := g.Stats()
	if !stats[1].Down || stats[0].Down {
		t.Fatalf("stats down flags = %+v", stats)
	}
}

// TestPanicIsolation injects a panic inside one actor's commit: the
// resolve fails with a typed error, the actor survives, and the very
// next resolve succeeds with the same ID.
func TestPanicIsolation(t *testing.T) {
	profiles := testProfiles(t, 4)
	inj := fault.New(1)
	g, err := New(Config{Resolver: incremental.Config{Scheme: core.JS}, Shards: 2, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	inj.Arm(CommitSite(0), fault.Spec{Panic: true, Times: 1})
	if _, err := g.Resolve(profiles[0]); err == nil {
		t.Fatal("resolve with armed panic: no error")
	}
	res, err := g.Resolve(profiles[0])
	if err != nil {
		t.Fatalf("resolve after recovered panic: %v", err)
	}
	if res.ID != 0 {
		t.Fatalf("ID after recovered panic = %d, want 0 (no ID consumed by the failure)", res.ID)
	}
}

// TestFromSnapshotRoundTrip proves the canonical snapshot is
// shard-count-neutral in both directions: group → snapshot → group at a
// different shard count → identical future resolutions and snapshot.
func TestFromSnapshotRoundTrip(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.ECBS, K: 2}
	g4, err := New(Config{Resolver: rcfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer g4.Close()
	for _, p := range profiles[:40] {
		if _, err := g4.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	snap := g4.Snapshot()

	serial, err := incremental.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := FromSnapshot(snap, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g3.Close()
	if g3.Size() != 40 {
		t.Fatalf("restored size = %d, want 40", g3.Size())
	}
	for i, p := range profiles[40:] {
		want, _ := serial.Resolve(p)
		got, err := g3.Resolve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-restore arrival %d diverged", i)
		}
	}
	if !reflect.DeepEqual(g3.Snapshot(), serial.Snapshot()) {
		t.Fatal("post-restore snapshots diverged")
	}

	// Segment round trip: per-shard segments → group at the same count.
	segs := g3.PartitionSnapshots()
	g3b, err := FromPartitionSnapshots(snap.Config, segs, Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer g3b.Close()
	if !reflect.DeepEqual(g3b.Snapshot(), g3.Snapshot()) {
		t.Fatal("segment round trip diverged")
	}

	// Corrupt snapshot refused: drop a block member.
	bad := g3.Snapshot()
	for k, ms := range bad.Blocks {
		if len(ms) > 1 {
			bad.Blocks[k] = ms[:len(ms)-1]
			break
		}
	}
	if _, err := FromSnapshot(bad, Config{Shards: 2}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestCloseIdempotent: Close twice is fine, Resolve/Peek after Close are
// refused, Snapshot after Close still works (for final persistence).
func TestCloseIdempotent(t *testing.T) {
	profiles := testProfiles(t, 2)
	g, err := New(Config{Resolver: incremental.Config{Scheme: core.ARCS}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(profiles[0]); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Resolve(profiles[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("resolve after close: err = %v, want ErrClosed", err)
	}
	if _, err := g.Peek(profiles[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("peek after close: err = %v, want ErrClosed", err)
	}
	if snap := g.Snapshot(); len(snap.Profiles) != 1 {
		t.Fatalf("snapshot after close has %d profiles, want 1", len(snap.Profiles))
	}
}

// TestEJSRefused: the unsupported scheme is refused up front, matching
// incremental.NewResolver.
func TestEJSRefused(t *testing.T) {
	if _, err := New(Config{Resolver: incremental.Config{Scheme: core.EJS}}); !errors.Is(err, incremental.ErrUnsupportedScheme) {
		t.Fatalf("EJS: err = %v, want ErrUnsupportedScheme", err)
	}
}
