package blocking

import (
	"reflect"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
)

func TestMinHashIdenticalProfilesAlwaysCollide(t *testing.T) {
	c := entity.NewDirty([]entity.Profile{
		oneAttr("alpha beta gamma delta"),
		oneAttr("alpha beta gamma delta"),
	})
	blocks := MinHashBlocking{}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("identical profiles share no band")
	}
	idx := block.NewEntityIndex(blocks)
	// Identical token sets → identical signatures → all 8 bands shared.
	if got := idx.CommonBlocks(0, 1); got != 8 {
		t.Fatalf("identical profiles share %d bands, want 8", got)
	}
}

func TestMinHashDissimilarProfilesRarelyCollide(t *testing.T) {
	c := entity.NewDirty([]entity.Profile{
		oneAttr("alpha beta gamma delta"),
		oneAttr("epsilon zeta eta theta"),
	})
	blocks := MinHashBlocking{}.Build(c)
	// Disjoint token sets: a collision would need a full band of hash
	// ties, essentially impossible.
	if blocks.Len() != 0 {
		t.Fatalf("disjoint profiles collided: %+v", blocks.Blocks)
	}
}

func TestMinHashHighSimilarityCollides(t *testing.T) {
	// 7 of 8 tokens shared → s = 7/9 ≈ 0.78; with 8 bands × 4 rows the
	// collision probability is ~0.96.
	c := entity.NewDirty([]entity.Profile{
		oneAttr("a b c d e f g h"),
		oneAttr("a b c d e f g x"),
	})
	blocks := MinHashBlocking{}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("highly similar profiles share no band")
	}
}

func TestMinHashDeterministicPerSeed(t *testing.T) {
	ds := datagen.D1C(0.02)
	a := MinHashBlocking{Seed: 3}.Build(ds.Collection)
	b := MinHashBlocking{Seed: 3}.Build(ds.Collection)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different blocks")
	}
}

func TestMinHashRecallOnSyntheticData(t *testing.T) {
	ds := datagen.D1C(0.05)
	blocks := MinHashBlocking{Bands: 16, Rows: 3}.Build(ds.Collection)
	det := blocks.DetectedDuplicates(ds.GroundTruth)
	recall := float64(det) / float64(ds.GroundTruth.Size())
	// Duplicates in D1 share only part of their tokens (noise, filler),
	// so LSH recall is below Token Blocking's but must stay substantial
	// with a recall-oriented banding.
	if recall < 0.5 {
		t.Fatalf("MinHash recall = %.3f, want ≥ 0.5", recall)
	}
	t.Logf("MinHash(16×3) recall %.3f over %d blocks (Token Blocking: ~0.99)", recall, blocks.Len())
	// And it must be far cheaper than brute force.
	if blocks.Comparisons() >= ds.Collection.BruteForceComparisons()/10 {
		t.Fatalf("MinHash blocks too dense: %d comparisons", blocks.Comparisons())
	}
}

func TestMinHashCleanCleanSplit(t *testing.T) {
	c := entity.NewCleanClean(
		[]entity.Profile{oneAttr("alpha beta gamma delta")},
		[]entity.Profile{oneAttr("alpha beta gamma delta")},
	)
	blocks := MinHashBlocking{}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("cross-source duplicates share no band")
	}
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		if len(b.E1) == 0 || len(b.E2) == 0 {
			t.Fatal("clean-clean band block missing a side")
		}
	}
}
