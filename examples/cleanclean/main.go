// Clean-Clean ER (record linkage): link two overlapping, duplicate-free
// sources with very different schemata — the scenario of the paper's D2
// benchmark (terse catalog records vs verbose encyclopedia entries).
//
// The example generates the synthetic D2C dataset, compares an
// efficiency-intensive configuration (Reciprocal CNP) against an
// effectiveness-intensive one (Reciprocal WNP), and reports the paper's
// measures for both.
//
//	go run ./examples/cleanclean
package main

import (
	"fmt"
	"log"

	mb "metablocking"
)

func main() {
	// A movies record-linkage task: a terse catalog vs a verbose
	// encyclopedia, the paper's D2 scenario with readable records.
	ds := mb.GenerateDataset(mb.MOV, 0.5)
	c := ds.Collection
	fmt.Printf("linking %d + %d profiles, %d true matches, brute force = %d comparisons\n",
		c.Split, c.Size()-c.Split, ds.GroundTruth.Size(), c.BruteForceComparisons())
	fmt.Printf("\na catalog record:      %v\n", c.Profile(0))
	fmt.Printf("an encyclopedia entry: %v\n", c.Profile(mb.ID(c.Split)))

	configs := []struct {
		label string
		alg   mb.Algorithm
	}{
		{"efficiency-intensive  (Reciprocal CNP)", mb.ReciprocalCNP},
		{"effectiveness-intensive (Reciprocal WNP)", mb.ReciprocalWNP},
	}
	for _, cfg := range configs {
		res, err := mb.Pipeline{
			FilterRatio: 0.8, // Block Filtering, the paper's tuned r
			Scheme:      mb.JS,
			Algorithm:   cfg.alg,
		}.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		rep := mb.Evaluate(res.Pairs, ds.GroundTruth, c.BruteForceComparisons())
		fmt.Printf("\n%s\n", cfg.label)
		fmt.Printf("  retained comparisons: %d (%.4f%% of brute force)\n",
			len(res.Pairs), 100*float64(len(res.Pairs))/float64(c.BruteForceComparisons()))
		fmt.Printf("  recall (PC) = %.3f   precision (PQ) = %.3f   overhead = %v\n",
			rep.PC(), rep.PQ(), res.OTime)
	}
}
