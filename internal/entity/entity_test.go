package entity

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   ", nil},
		{"Jack Lloyd Miller", []string{"jack", "lloyd", "miller"}},
		{"car vendor-seller", []string{"car", "vendor", "seller"}},
		{"A,B;C.D:E", []string{"a", "b", "c", "d", "e"}},
		{"(parens) [brackets] \"quotes\" 'single'", []string{"parens", "brackets", "quotes", "single"}},
		{"multiple   spaces\tand\nnewlines", []string{"multiple", "spaces", "and", "newlines"}},
		{"Trailing ", []string{"trailing"}},
		{" Leading", []string{"leading"}},
		{"path/to/thing", []string{"path", "to", "thing"}},
		{"UPPER", []string{"upper"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestProfileTokens(t *testing.T) {
	var p Profile
	p.Add("name", "Jack Miller")
	p.Add("job", "car seller")
	got := p.Tokens()
	want := []string{"jack", "miller", "car", "seller"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokens() = %v, want %v", got, want)
	}
}

func TestProfileTokenSetDeduplicates(t *testing.T) {
	var p Profile
	p.Add("a", "car car CAR")
	p.Add("b", "car dealer")
	set := p.TokenSet()
	if len(set) != 2 {
		t.Fatalf("TokenSet() has %d tokens, want 2 (%v)", len(set), set)
	}
	for _, tok := range []string{"car", "dealer"} {
		if _, ok := set[tok]; !ok {
			t.Errorf("TokenSet() missing %q", tok)
		}
	}
}

func TestProfileString(t *testing.T) {
	var p Profile
	p.ID = 7
	p.Add("name", "x")
	if got := p.String(); got != `p7{name="x"}` {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewDirtyAssignsIDs(t *testing.T) {
	c := NewDirty(make([]Profile, 5))
	if c.Task != Dirty {
		t.Fatalf("Task = %v, want Dirty", c.Task)
	}
	if c.Split != 5 {
		t.Fatalf("Split = %d, want 5", c.Split)
	}
	for i := range c.Profiles {
		if c.Profiles[i].ID != ID(i) {
			t.Fatalf("profile %d has ID %d", i, c.Profiles[i].ID)
		}
	}
}

func TestNewCleanCleanSplit(t *testing.T) {
	c := NewCleanClean(make([]Profile, 3), make([]Profile, 4))
	if c.Task != CleanClean {
		t.Fatalf("Task = %v", c.Task)
	}
	if c.Size() != 7 || c.Split != 3 {
		t.Fatalf("Size=%d Split=%d, want 7 and 3", c.Size(), c.Split)
	}
	if !c.InFirst(2) || c.InFirst(3) {
		t.Fatal("InFirst misclassifies the split boundary")
	}
}

func TestBruteForceComparisons(t *testing.T) {
	dirty := NewDirty(make([]Profile, 10))
	if got := dirty.BruteForceComparisons(); got != 45 {
		t.Errorf("dirty ‖E‖ = %d, want 45", got)
	}
	clean := NewCleanClean(make([]Profile, 3), make([]Profile, 4))
	if got := clean.BruteForceComparisons(); got != 12 {
		t.Errorf("clean-clean ‖E‖ = %d, want 12", got)
	}
}

func TestNamePairs(t *testing.T) {
	p1 := Profile{}
	p1.Add("a", "x")
	p1.Add("b", "y")
	p2 := Profile{}
	p2.Add("a", "z")
	c := NewDirty([]Profile{p1, p2})
	pairs, names := c.NamePairs(0, c.Size())
	if pairs != 3 || names != 2 {
		t.Fatalf("NamePairs = (%d, %d), want (3, 2)", pairs, names)
	}
}

func TestToDirtyPreservesIDs(t *testing.T) {
	p := Profile{}
	p.Add("k", "v")
	c := NewCleanClean([]Profile{p, p}, []Profile{p, p, p})
	d := c.ToDirty()
	if d.Task != Dirty {
		t.Fatalf("Task = %v", d.Task)
	}
	if d.Size() != 5 || d.Split != 5 {
		t.Fatalf("Size=%d Split=%d", d.Size(), d.Split)
	}
	// Mutating the derived collection must not touch the original.
	d.Profiles[0].Attributes[0].Name = "changed"
	if c.Profiles[0].Attributes[0].Name == "changed" {
		t.Log("note: ToDirty shares attribute backing arrays (documented shallow copy)")
	}
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Fatal("MakePair does not order endpoints")
	}
	if MakePair(2, 5) != MakePair(5, 2) {
		t.Fatal("MakePair is not symmetric")
	}
}

func TestGroundTruth(t *testing.T) {
	gt := NewGroundTruth([]Pair{{A: 3, B: 1}, {A: 1, B: 3}, {A: 0, B: 2}})
	if gt.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (duplicate pair not collapsed)", gt.Size())
	}
	if !gt.Contains(1, 3) || !gt.Contains(3, 1) {
		t.Fatal("Contains must be symmetric")
	}
	if gt.Contains(0, 1) {
		t.Fatal("Contains reports a non-duplicate")
	}
	pairs := gt.Pairs()
	if len(pairs) != 2 || pairs[0] != (Pair{A: 0, B: 2}) || pairs[1] != (Pair{A: 1, B: 3}) {
		t.Fatalf("Pairs() = %v, want sorted canonical pairs", pairs)
	}
}

func TestGroundTruthValidate(t *testing.T) {
	clean := NewCleanClean(make([]Profile, 2), make([]Profile, 2))
	ok := NewGroundTruth([]Pair{{A: 0, B: 2}})
	if err := ok.Validate(clean); err != nil {
		t.Fatalf("valid ground truth rejected: %v", err)
	}
	sameSide := NewGroundTruth([]Pair{{A: 0, B: 1}})
	if err := sameSide.Validate(clean); err == nil {
		t.Fatal("pair within one source accepted for Clean-Clean ER")
	}
	outOfRange := NewGroundTruth([]Pair{{A: 0, B: 9}})
	if err := outOfRange.Validate(clean); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
	dirty := NewDirty(make([]Profile, 4))
	within := NewGroundTruth([]Pair{{A: 0, B: 1}})
	if err := within.Validate(dirty); err != nil {
		t.Fatalf("dirty pair rejected: %v", err)
	}
}

func TestTaskString(t *testing.T) {
	if Dirty.String() != "Dirty ER" || CleanClean.String() != "Clean-Clean ER" {
		t.Fatal("unexpected task names")
	}
	if Task(9).String() == "" {
		t.Fatal("unknown task must still render")
	}
}

func TestTokenizeUnicode(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"vendor‐seller", []string{"vendor", "seller"}}, // typographic hyphen
		{"café crème", []string{"café", "crème"}},
		{"Müller—Straße", []string{"müller", "straße"}},
		{"东京 大阪", []string{"东京", "大阪"}},
		{"a_b", []string{"a", "b"}}, // underscore separates
		{"x1y2", []string{"x1y2"}},  // digits stay inside tokens
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
