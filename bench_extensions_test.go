package metablocking

// Benchmarks for the extension subsystems (DESIGN.md extensions table):
// incremental resolution, supervised meta-blocking, progressive
// scheduling, the MapReduce formulation, MinHash blocking and automatic
// purging.

import (
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/incremental"
	"metablocking/internal/mapreduce"
	"metablocking/internal/mrmeta"
	"metablocking/internal/progressive"
	"metablocking/internal/supervised"
)

// BenchmarkIncrementalResolver streams profiles through the incremental
// resolver, reporting per-arrival cost.
func BenchmarkIncrementalResolver(b *testing.B) {
	d := benchDatasets(b)["D1C"]
	profiles := d.ds.Collection.Profiles
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := incremental.NewResolver(incremental.Config{Scheme: core.JS, K: 10})
		if err != nil {
			b.Fatal(err)
		}
		for p := range profiles {
			r.Add(profiles[p])
		}
	}
}

// BenchmarkSupervised measures the full supervised run: feature
// extraction, training and classification.
func BenchmarkSupervised(b *testing.B) {
	d := benchDatasets(b)["D1C"]
	for i := 0; i < b.N; i++ {
		if _, err := supervised.Run(d.filtered, d.ds.GroundTruth, supervised.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgressiveSchedule measures building the weight-descending
// comparison schedule.
func BenchmarkProgressiveSchedule(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := progressive.NewScheduler(d.filtered, core.ARCS)
		if s.Len() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkMapReduceWEP contrasts the MapReduce formulation against the
// sequential core on the same pruning task (the shuffle materialization
// cost is the difference).
func BenchmarkMapReduceWEP(b *testing.B) {
	d := benchDatasets(b)["D1C"]
	b.Run("core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(d.filtered, core.Config{Scheme: core.JS, Algorithm: core.WEP})
		}
	})
	b.Run("mapreduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mrmeta.NewJob(d.filtered, core.JS, mapreduce.Config{}).WEP()
		}
	})
}

// BenchmarkMinHashBlocking measures LSH blocking against Token Blocking.
func BenchmarkMinHashBlocking(b *testing.B) {
	d := benchDatasets(b)["D1C"]
	b.Run("minhash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blocking.MinHashBlocking{}.Build(d.ds.Collection)
		}
	})
	b.Run("token", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blocking.TokenBlocking{}.Build(d.ds.Collection)
		}
	})
}

// BenchmarkAblationAutoPurging contrasts the paper's size-based purging
// with the automatic comparison-based threshold of ref [21].
func BenchmarkAblationAutoPurging(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	raw := blocking.TokenBlocking{}.Build(d.ds.Collection)
	b.Run("size-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.BlockPurging{}.Apply(raw)
		}
	})
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.AutoBlockPurging{}.Apply(raw)
		}
	})
}
