package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metablocking/internal/core"
)

// testSuite builds a tiny suite; experiments on it finish in seconds.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(0.04, nil)
}

func TestDatasetsPreparedOnce(t *testing.T) {
	s := testSuite(t)
	a := s.Datasets()
	b := s.Datasets()
	if len(a) != 6 {
		t.Fatalf("datasets = %d, want 6", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Datasets() is not cached")
		}
	}
	wantOrder := []string{"D1C", "D2C", "D3C", "D1D", "D2D", "D3D"}
	for i, p := range a {
		if p.Dataset.Name != wantOrder[i] {
			t.Fatalf("dataset %d is %s, want %s", i, p.Dataset.Name, wantOrder[i])
		}
		if p.Original.Len() == 0 || p.Filtered.Len() == 0 {
			t.Fatalf("%s: empty block collections", p.Dataset.Name)
		}
		if p.Filtered.Comparisons() >= p.Original.Comparisons() {
			t.Fatalf("%s: filtering did not reduce ‖B‖", p.Dataset.Name)
		}
	}
}

func TestTable2Rows(t *testing.T) {
	s := testSuite(t)
	rows := s.Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Duplicates <= 0 || r.BruteForce <= 0 || r.Pairs <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Name, r)
		}
	}
	// Dirty variants have no second collection.
	if rows[3].Entities2 != 0 || rows[0].Entities2 == 0 {
		t.Fatal("E2 column wrong")
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	original, filtered := s.Table1()
	if len(original) != 6 || len(filtered) != 6 {
		t.Fatalf("row counts: %d, %d", len(original), len(filtered))
	}
	for i := range original {
		o, f := original[i], filtered[i]
		// Paper Table 1: near-perfect recall before filtering, small loss
		// after; precision rises; ‖B‖ shrinks.
		if o.PC < 0.95 {
			t.Errorf("%s: original PC = %.3f", o.Name, o.PC)
		}
		if f.PC < o.PC-0.05 {
			t.Errorf("%s: filtering lost too much recall: %.3f → %.3f", o.Name, o.PC, f.PC)
		}
		if f.Comparisons >= o.Comparisons {
			t.Errorf("%s: ‖B‖ not reduced", o.Name)
		}
		if f.PQ <= o.PQ {
			t.Errorf("%s: PQ not improved by filtering", o.Name)
		}
	}
}

func TestFigure10Monotone(t *testing.T) {
	s := testSuite(t)
	series := s.Figure10()
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (D2C, D2D)", len(series))
	}
	for _, se := range series {
		if len(se.Points) != 20 {
			t.Fatalf("%s: points = %d, want 20", se.Name, len(se.Points))
		}
		for i := 1; i < len(se.Points); i++ {
			if se.Points[i].PC+1e-9 < se.Points[i-1].PC {
				t.Errorf("%s: PC not monotone at r=%.2f", se.Name, se.Points[i].Ratio)
			}
			if se.Points[i].RR-1e-9 > se.Points[i-1].RR {
				t.Errorf("%s: RR not anti-monotone at r=%.2f", se.Name, se.Points[i].Ratio)
			}
		}
		last := se.Points[len(se.Points)-1]
		if last.Ratio != 1.0 || last.RR != 0 {
			t.Errorf("%s: r=1 must have RR=0, got %+v", se.Name, last)
		}
	}
}

func TestPruneAveragedRelations(t *testing.T) {
	s := testSuite(t)
	p := s.Datasets()[0] // D1C
	cnp := s.pruneAveraged(p, p.Filtered, core.CNP, false)
	redef := s.pruneAveraged(p, p.Filtered, core.RedefinedCNP, false)
	recip := s.pruneAveraged(p, p.Filtered, core.ReciprocalCNP, false)
	// Paper §5: Redefined keeps CNP's recall with fewer comparisons;
	// Reciprocal trades recall for far fewer comparisons.
	if redef.PC != cnp.PC {
		t.Errorf("Redefined CNP changed recall: %.4f vs %.4f", redef.PC, cnp.PC)
	}
	if !(recip.Comparisons <= redef.Comparisons && redef.Comparisons <= cnp.Comparisons) {
		t.Errorf("comparison ordering violated: %d, %d, %d",
			recip.Comparisons, redef.Comparisons, cnp.Comparisons)
	}
	if recip.PQ < redef.PQ {
		t.Errorf("Reciprocal CNP must have the highest precision: %.4f < %.4f", recip.PQ, redef.PQ)
	}
}

func TestTable6Baselines(t *testing.T) {
	s := testSuite(t)
	rows := s.Table6()
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18 (3 methods × 6 datasets)", len(rows))
	}
	for _, r := range rows {
		if r.PC <= 0 || r.PC > 1 {
			t.Errorf("%s/%s: PC = %v", r.Method, r.Dataset, r.PC)
		}
		if r.Comparisons <= 0 {
			t.Errorf("%s/%s: no comparisons", r.Method, r.Dataset)
		}
	}
	// Iterative Blocking detects essentially all duplicates (oracle
	// matcher + near-perfect input recall).
	for _, r := range rows[12:] {
		if r.PC < 0.95 {
			t.Errorf("iterative blocking PC = %.3f on %s", r.PC, r.Dataset)
		}
	}
}

func TestOutputRendering(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(0.04, &buf)
	s.Table2()
	out := buf.String()
	for _, want := range []string{"Table 2", "D1C", "D3D", "‖E‖"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if sci(0) != "0" || sci(123) != "123" || sci(1230000) != "1.23e+06" {
		t.Fatalf("sci: %q %q %q", sci(0), sci(123), sci(1230000))
	}
	for in, want := range map[time.Duration]string{
		90 * time.Minute:        "1.5h",
		90 * time.Second:        "1.5m",
		1500 * time.Millisecond: "1.50s",
		15 * time.Millisecond:   "15ms",
		150 * time.Microsecond:  "150µs",
	} {
		if got := dur(in); got != want {
			t.Errorf("dur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestASCIIPlot(t *testing.T) {
	p := newASCIIPlot(5)
	p.add("up", '*', []float64{0, 0.25, 0.5, 0.75, 1})
	p.add("down", 'o', []float64{1, 0.75, 0.5, 0.25, 0})
	out := p.render("x")
	if !strings.Contains(out, "* = up") || !strings.Contains(out, "o = down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 5 rows + axis + legend.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Top row holds the y=1 points: the last '*' and first 'o'.
	if !strings.Contains(lines[0], "*") || !strings.Contains(lines[0], "o") {
		t.Fatalf("top row wrong: %q", lines[0])
	}
	// Out-of-range values are clamped, not dropped.
	q := newASCIIPlot(3)
	q.add("clamped", 'x', []float64{-1, 2})
	if qo := q.render("x"); !strings.Contains(qo, "x") {
		t.Fatal("clamped values missing")
	}
	if (&asciiPlot{}).render("x") != "" {
		t.Fatal("empty plot must render empty")
	}
}

// TestTable3And5Smoke runs the pruning tables at tiny scale and checks the
// paper's headline efficiency relations numerically.
func TestTable3And5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("pruning tables are slow")
	}
	s := NewSuite(0.03, nil)
	before, after := s.Table3()
	if len(before) != 24 || len(after) != 24 {
		t.Fatalf("row counts: %d, %d (want 24 each: 4 algs × 6 datasets)", len(before), len(after))
	}
	for i := range before {
		if after[i].Comparisons > before[i].Comparisons {
			t.Errorf("%s/%v: filtering increased ‖B'‖", before[i].Dataset, before[i].Algorithm)
		}
	}
	opt := s.Table5()
	if len(opt) != 24 {
		t.Fatalf("table 5 rows = %d", len(opt))
	}
	// Optimized weighting must beat the original on the same filtered
	// blocks, at least in aggregate (tiny scales are noisy per-cell).
	var origTotal, optTotal float64
	for i := range after {
		origTotal += after[i].OTime.Seconds()
		optTotal += opt[i].OTime.Seconds()
	}
	if optTotal >= origTotal {
		t.Errorf("optimized weighting (%vs) not faster than original (%vs) in aggregate",
			optTotal, origTotal)
	}
}

func TestTable4Smoke(t *testing.T) {
	s := NewSuite(0.03, nil)
	rows := s.Table4()
	if len(rows) != 24 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PC <= 0 || r.PQ <= 0 {
			t.Errorf("%s/%v: degenerate row", r.Dataset, r.Algorithm)
		}
	}
}

func TestSchemeBreakdownSmoke(t *testing.T) {
	s := NewSuite(0.03, nil)
	rows := s.SchemeBreakdown()
	if len(rows) != 60 {
		t.Fatalf("rows = %d (want 2 algs × 5 schemes × 6 datasets)", len(rows))
	}
}

func TestBlockingMethodsSmoke(t *testing.T) {
	s := NewSuite(0.03, nil)
	rows := s.BlockingMethods()
	if len(rows) != 10 {
		t.Fatalf("rows = %d (want 10 methods on D1C)", len(rows))
	}
	byName := map[string]BlockingMethodRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	// Redundancy-positive methods keep near-perfect recall; Standard
	// Blocking cannot (single key per profile).
	if byName["Token Blocking"].PC < 0.95 {
		t.Errorf("token blocking PC = %.3f", byName["Token Blocking"].PC)
	}
	if byName["Standard Blocking"].PC >= byName["Token Blocking"].PC {
		t.Errorf("standard blocking recall (%.3f) should trail token blocking (%.3f)",
			byName["Standard Blocking"].PC, byName["Token Blocking"].PC)
	}
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are slow")
	}
	s := NewSuite(0.03, nil)
	sup := s.Supervised()
	if len(sup) != 6 {
		t.Fatalf("supervised rows = %d", len(sup))
	}
	prog := s.Progressive()
	if len(prog) != 24 {
		t.Fatalf("progressive rows = %d", len(prog))
	}
	// Recall must be monotone in the budget for each dataset.
	for i := 1; i < len(prog); i++ {
		if prog[i].Dataset == prog[i-1].Dataset && prog[i].Recall+1e-9 < prog[i-1].Recall {
			t.Errorf("%s: progressive recall not monotone", prog[i].Dataset)
		}
	}
	par := s.Parallel()
	if len(par) != 6 {
		t.Fatalf("parallel rows = %d", len(par))
	}
}

func TestWriteCSVReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation is slow")
	}
	dir := t.TempDir()
	s := NewSuite(0.03, nil)
	if err := s.WriteCSVReports(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table1_original.csv", "table1_filtered.csv", "table2.csv",
		"figure10.csv", "table3_original.csv", "table3_filtered.csv",
		"table4.csv", "table5.csv", "table6.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
}
