package blocking

import (
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// KeyFunc derives a single blocking key from a profile. An empty key leaves
// the profile unblocked.
type KeyFunc func(p *entity.Profile) string

// FirstTokenKey is the default Standard Blocking key: the first token of
// the first non-empty attribute value.
func FirstTokenKey(p *entity.Profile) string {
	for _, a := range p.Attributes {
		toks := entity.Tokenize(a.Value)
		if len(toks) > 0 {
			return toks[0]
		}
	}
	return ""
}

// StandardBlocking assigns every profile to exactly one block via a key
// function, producing disjoint blocks (paper §2, ref [9]). It is included
// as the classic non-redundant baseline of the blocking taxonomy; it is NOT
// redundancy-positive and therefore not a valid meta-blocking input.
type StandardBlocking struct {
	// Key derives the blocking key; nil defaults to FirstTokenKey.
	Key KeyFunc
}

// Name implements Method.
func (StandardBlocking) Name() string { return "Standard Blocking" }

// Build implements Method.
func (s StandardBlocking) Build(c *entity.Collection) *block.Collection {
	key := s.Key
	if key == nil {
		key = FirstTokenKey
	}
	idx := newKeyIndex(c)
	for i := range c.Profiles {
		p := &c.Profiles[i]
		if k := key(p); k != "" {
			idx.add(k, p.ID)
		}
	}
	return idx.build(c)
}

// SortedNeighborhood implements the single-pass Sorted Neighborhood method
// (paper §2, ref [13]): profiles are ordered by blocking key and a sliding
// window of fixed size moves over the sorted list, each position yielding
// one block. It is redundancy-neutral: all co-occurring pairs share the
// same number of blocks, so block overlap carries no match signal.
type SortedNeighborhood struct {
	// Window is the sliding-window size in profiles; values < 2 default
	// to 4.
	Window int
	// Key derives the sorting key; nil defaults to FirstTokenKey.
	Key KeyFunc
}

// Name implements Method.
func (SortedNeighborhood) Name() string { return "Sorted Neighborhood" }

// Build implements Method.
func (s SortedNeighborhood) Build(c *entity.Collection) *block.Collection {
	w := s.Window
	if w < 2 {
		w = 4
	}
	key := s.Key
	if key == nil {
		key = FirstTokenKey
	}

	type keyed struct {
		key string
		id  entity.ID
	}
	order := make([]keyed, 0, len(c.Profiles))
	for i := range c.Profiles {
		p := &c.Profiles[i]
		if k := key(p); k != "" {
			order = append(order, keyed{key: k, id: p.ID})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].key != order[j].key {
			return order[i].key < order[j].key
		}
		return order[i].id < order[j].id
	})

	out := &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	for start := 0; start+w <= len(order); start++ {
		var e1, e2 []entity.ID
		for _, k := range order[start : start+w] {
			if c.Task == entity.CleanClean && !c.InFirst(k.id) {
				e2 = append(e2, k.id)
			} else {
				e1 = append(e1, k.id)
			}
		}
		if c.Task == entity.CleanClean {
			if len(e1) == 0 || len(e2) == 0 {
				continue
			}
		} else if len(e1) < 2 {
			continue
		}
		sortIDs(e1)
		sortIDs(e2)
		b := block.Block{Key: order[start].key, E1: e1}
		if c.Task == entity.CleanClean {
			b.E2 = e2
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

func sortIDs(ids []entity.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
