package supervised

import (
	"errors"
	"math/rand"
	"time"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Config drives an end-to-end supervised meta-blocking run.
type Config struct {
	// SampleFraction is the portion of edges labelled for training
	// (ref [23] shows small sets suffice). Zero defaults to 0.05; the
	// fraction is capped so at most MaxSample edges are labelled.
	SampleFraction float64
	// MaxSample caps the labelled edges (default 50000).
	MaxSample int
	// Threshold retains edges with P(match) at or above it (default 0.5,
	// the WEP-like decision rule of ref [23]).
	Threshold float64
	// Seed drives sampling and SGD shuffling (default 1).
	Seed int64
	// Train overrides the SGD settings.
	Train TrainConfig
}

// Result is the output of a supervised run.
type Result struct {
	Pairs []entity.Pair
	Model *LogisticRegression
	// TrainingEdges is the number of labelled edges used.
	TrainingEdges int
	OTime         time.Duration
}

// Run extracts edge features, labels a random sample with the ground
// truth, trains the classifier, and retains the comparisons classified as
// matches. The ground truth is used only for the training sample, mirroring
// the supervised meta-blocking protocol.
func Run(c *block.Collection, gt *entity.GroundTruth, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = 0.05
	}
	if cfg.SampleFraction < 0 || cfg.SampleFraction > 1 {
		return nil, errors.New("supervised: SampleFraction must be in (0, 1]")
	}
	if cfg.MaxSample == 0 {
		cfg.MaxSample = 50000
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Train.Seed == 0 {
		cfg.Train.Seed = cfg.Seed
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	extractor := NewExtractor(c)

	// Pass 1: reservoir-sample training edges uniformly over the stream.
	reservoir := make([]Edge, 0, cfg.MaxSample)
	target := int(cfg.SampleFraction * float64(extractor.NumEdges()))
	if target < 100 {
		target = 100
	}
	if target > cfg.MaxSample {
		target = cfg.MaxSample
	}
	seen := 0
	extractor.ForEachEdge(func(e Edge) {
		seen++
		if len(reservoir) < target {
			reservoir = append(reservoir, e)
			return
		}
		if k := rng.Intn(seen); k < target {
			reservoir[k] = e
		}
	})
	if len(reservoir) == 0 {
		return nil, errors.New("supervised: blocking graph has no edges")
	}
	labels := make([]bool, len(reservoir))
	for i, e := range reservoir {
		labels[i] = gt.Contains(e.I, e.J)
	}

	model, err := Train(reservoir, labels, cfg.Train)
	if err != nil {
		return nil, err
	}

	// Pass 2: classify every edge.
	var pairs []entity.Pair
	extractor.ForEachEdge(func(e Edge) {
		if model.Probability(e) >= cfg.Threshold {
			pairs = append(pairs, entity.MakePair(e.I, e.J))
		}
	})
	return &Result{
		Pairs:         pairs,
		Model:         model,
		TrainingEdges: len(reservoir),
		OTime:         time.Since(start),
	}, nil
}
