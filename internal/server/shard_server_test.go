package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/dataio"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/loadgen"
	"metablocking/internal/shard"
)

// TestShardedBatchedEqualsSerial is the sharded acceptance load test:
// concurrent clients drive the HTTP micro-batching path at shard counts
// {1, 4, 16}, and every response — IDs, candidate sets, exact weights —
// must match a serial one-at-a-time Resolver fed the same arrival order.
// The canonical snapshot must also be independent of the shard count.
func TestShardedBatchedEqualsSerial(t *testing.T) {
	const requests = 300
	profiles := testProfiles(t, requests)
	for _, shards := range []int{1, 4, 16} {
		for _, clients := range []int{1, 4} {
			cfg := Config{
				Resolver:    incremental.Config{Scheme: core.ECBS, K: 5},
				Shards:      shards,
				BatchWindow: time.Millisecond,
				MaxBatch:    32,
				QueueDepth:  4096, // never shed: every request participates
			}
			s := newTestServer(t, cfg)
			ts := httptest.NewServer(s.Handler())
			rep := loadgen.Run(loadgen.HTTPResolver(ts.URL, ts.Client()), profiles, loadgen.Options{
				Clients:  clients,
				Requests: requests,
			})
			if len(rep.Errors) > 0 {
				t.Fatalf("shards=%d clients=%d: %d hard errors, first: %v",
					shards, clients, len(rep.Errors), rep.Errors[0])
			}
			if rep.Rejected != 0 || len(rep.Responses) != requests {
				t.Fatalf("shards=%d clients=%d: %d responses, %d shed",
					shards, clients, len(rep.Responses), rep.Rejected)
			}
			byID := make([]*loadgen.Response, requests)
			for i := range rep.Responses {
				r := &rep.Responses[i]
				if int(r.ID) < 0 || int(r.ID) >= requests || byID[r.ID] != nil {
					t.Fatalf("shards=%d clients=%d: IDs not dense: %d", shards, clients, r.ID)
				}
				byID[r.ID] = r
			}
			serial, err := incremental.NewResolver(cfg.Resolver)
			if err != nil {
				t.Fatal(err)
			}
			for id, r := range byID {
				_, want := serial.Add(r.Profile)
				if !reflect.DeepEqual(r.Candidates, want) {
					t.Fatalf("shards=%d clients=%d arrival %d: candidates diverged from serial",
						shards, clients, id)
				}
			}
			if !reflect.DeepEqual(s.Snapshot(), serial.Snapshot()) {
				t.Fatalf("shards=%d clients=%d: canonical snapshot diverged from serial", shards, clients)
			}
			ts.Close()
			s.Close()
		}
	}
}

// TestShardedSnapshotRoundTrips: a sharded server persists the
// manifest+segments layout, and the artifact reloads into servers of any
// shard count — including the monolithic one — with identical contents.
func TestShardedSnapshotRoundTrips(t *testing.T) {
	s4 := newTestServer(t, Config{
		Resolver: incremental.Config{Scheme: core.JS, K: 5},
		Shards:   4,
	})
	profiles := testProfiles(t, 40)
	for _, p := range profiles {
		if _, err := s4.Resolve(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	want := s4.Snapshot()
	path := filepath.Join(t.TempDir(), "sharded.snap")
	if n, err := s4.SnapshotFile(path); err != nil || n != 40 {
		t.Fatalf("sharded snapshot: n=%d err=%v", n, err)
	}
	// The sharded layout leaves per-shard segment files beside the manifest.
	if matches, _ := filepath.Glob(path + ".g*.s*"); len(matches) != 4 {
		t.Fatalf("expected 4 segment files, found %d", len(matches))
	}
	for _, shards := range []int{1, 2, 16} {
		s, err := New(Config{Resolver: incremental.Config{Scheme: core.JS, K: 5}, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if n, err := s.ReloadFile(path); err != nil || n != 40 {
			t.Fatalf("shards=%d reload: n=%d err=%v", shards, n, err)
		}
		if !reflect.DeepEqual(s.Snapshot(), want) {
			t.Fatalf("shards=%d: reloaded snapshot diverged", shards)
		}
		s.Close()
	}
}

// TestShardedFaultEnvelopes drives per-shard fault injection end to end
// through the HTTP surface: gather failures surface as 500 "internal"
// envelopes until the failing shard is marked down, after which resolves
// homed on the downed shard get 503 "shard_down" and the rest keep
// working with partial gathers. /v1/admin/status reports the down shard.
func TestShardedFaultEnvelopes(t *testing.T) {
	inj := fault.New(1)
	s := newTestServer(t, Config{
		Resolver:         incremental.Config{Scheme: core.JS, K: 5},
		Shards:           2,
		MaxBatch:         1,
		QueueDepth:       64,
		BreakerThreshold: -1, // isolate shard health from the server breaker
	}, WithFault(inj))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	profiles := testProfiles(t, 8)

	post := func(i int) (int, ErrorBody) {
		t.Helper()
		raw, err := dataio.MarshalProfileJSON(profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		payload, _ := io.ReadAll(resp.Body)
		var e ErrorResponse
		if resp.StatusCode != http.StatusOK {
			if err := json.Unmarshal(payload, &e); err != nil || e.Error.Code == "" {
				t.Fatalf("non-2xx without envelope: %d %s", resp.StatusCode, payload)
			}
		}
		return resp.StatusCode, e.Error
	}

	// Shard 1's gather fails persistently: the group's DownAfter (default
	// 3) consecutive failures surface as per-request 500s, then mark the
	// shard down.
	inj.Arm(shard.GatherSite(1), fault.Spec{Err: fault.ErrInjected})
	for i := 0; i < 3; i++ {
		if code, e := post(0); code != 500 || e.Code != CodeInternal {
			t.Fatalf("failure %d = %d %+v, want 500 internal", i, code, e)
		}
	}
	// Shard 1 is down now. ID 0 homes on shard 0: the resolve succeeds
	// with a partial gather.
	if code, e := post(1); code != 200 {
		t.Fatalf("partial resolve = %d %+v, want 200", code, e)
	}
	// ID 1 homes on shard 1: refused with the stable shard_down code.
	if code, e := post(2); code != 503 || e.Code != CodeShardDown {
		t.Fatalf("down-home resolve = %d %+v, want 503 shard_down", code, e)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || st.Shards[0].Down || !st.Shards[1].Down {
		t.Fatalf("status shards = %+v, want shard 1 down", st.Shards)
	}

	// A snapshot swap installs a fresh group: the down mark clears and
	// both shards serve again.
	inj.Disarm(shard.GatherSite(1))
	path := filepath.Join(t.TempDir(), "heal.snap")
	if _, err := s.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReloadFile(path); err != nil {
		t.Fatal(err)
	}
	if code, e := post(3); code != 200 {
		t.Fatalf("post-reload resolve = %d %+v, want 200", code, e)
	}
}
