// Incremental ER: resolve a stream of arriving profiles in real time —
// the paper's future-work direction (§7), built on the same weighted
// co-occurrence signal as batch meta-blocking.
//
// Profiles of a synthetic Dirty dataset arrive one by one; each arrival is
// blocked immediately and compared only against its pruned candidates
// (top-K by JS weight). The example reports stream recall and the
// comparisons saved against batch brute force.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	mb "metablocking"
)

func main() {
	ds := mb.GenerateDataset(mb.D1D, 0.3)
	profiles := ds.Collection.Profiles

	resolver, err := mb.NewIncrementalResolver(mb.IncrementalConfig{
		Scheme: mb.JS,
		K:      10, // compare each arrival against at most 10 candidates
	})
	if err != nil {
		log.Fatal(err)
	}

	matcher := mb.NewJaccardMatcher(ds.Collection, 0.3)
	var comparisons, detected, matched int
	start := time.Now()
	for i := range profiles {
		id, candidates := resolver.Add(profiles[i])
		comparisons += len(candidates)
		for _, c := range candidates {
			if ds.GroundTruth.Contains(id, c.ID) {
				detected++
			}
			if matcher.Match(id, c.ID) {
				matched++
			}
		}
	}
	elapsed := time.Since(start)

	n := len(profiles)
	fmt.Printf("streamed %d profiles in %v (%.1f µs/profile)\n",
		n, elapsed, float64(elapsed.Microseconds())/float64(n))
	fmt.Printf("comparisons executed: %d (brute force would need %d)\n",
		comparisons, ds.Collection.BruteForceComparisons())
	fmt.Printf("stream recall: %.3f (%d of %d duplicate pairs proposed on arrival)\n",
		float64(detected)/float64(ds.GroundTruth.Size()), detected, ds.GroundTruth.Size())
	fmt.Printf("matcher accepted %d pairs\n", matched)
}
