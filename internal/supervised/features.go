// Package supervised implements Supervised Meta-blocking (paper §2,
// ref [23]: Papadakis, Papastefanatos, Koutrika — PVLDB 2014): instead of
// pruning the blocking graph with a single weighting scheme, every edge is
// described by a feature vector combining all co-occurrence signals, and a
// binary classifier trained on a small labelled sample decides which
// comparisons to retain.
//
// The EDBT 2016 paper studies only unsupervised meta-blocking because
// "there is no effective and efficient way for extracting the required
// training set from the input blocks"; with the synthetic benchmarks'
// ground truth this package lifts that restriction and provides the
// supervised baseline for comparison.
package supervised

import (
	"math"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// NumFeatures is the edge feature-vector length.
const NumFeatures = 6

// FeatureNames lists the edge features in vector order: the four
// profile-pair weighting signals of Fig. 4 plus the two node degrees (the
// profile-level signal EJS folds in). All features are computed in one
// traversal.
var FeatureNames = [NumFeatures]string{"ARCS", "CBS", "ECBS", "JS", "DegreeI", "DegreeJ"}

// Edge is a comparison with its feature vector.
type Edge struct {
	I, J     entity.ID
	Features [NumFeatures]float64
}

// Extractor derives feature vectors for every non-redundant comparison of
// a block collection via the ScanCount traversal of Algorithm 3, with two
// accumulators per neighbor (shared-block count and Σ 1/‖b‖). It is not
// safe for concurrent use.
type Extractor struct {
	blocks  *block.Collection
	index   *block.EntityIndex
	invCard []float64
	degrees []int32

	flags     []int64
	epoch     int64
	count     []float64
	arcs      []float64
	neighbors []entity.ID
}

// NewExtractor builds the extractor, including the degree pre-pass.
func NewExtractor(c *block.Collection) *Extractor {
	e := &Extractor{
		blocks:  c,
		index:   block.NewEntityIndex(c),
		invCard: make([]float64, len(c.Blocks)),
		flags:   make([]int64, c.NumEntities),
		count:   make([]float64, c.NumEntities),
		arcs:    make([]float64, c.NumEntities),
	}
	for i := range c.Blocks {
		if n := c.Blocks[i].Comparisons(); n > 0 {
			e.invCard[i] = 1 / float64(n)
		}
	}
	e.degrees = make([]int32, c.NumEntities)
	for id := 0; id < c.NumEntities; id++ {
		e.degrees[id] = int32(len(e.scan(entity.ID(id))))
	}
	return e
}

// NumEdges returns the number of distinct comparisons (graph size).
func (e *Extractor) NumEdges() int64 {
	var n int64
	for id := 0; id < e.blocks.NumEntities; id++ {
		n += int64(e.degrees[id])
	}
	return n / 2
}

// Degree returns the node degree |vi|.
func (e *Extractor) Degree(id entity.ID) int32 { return e.degrees[id] }

// scan enumerates the distinct neighbors of i, filling the count and arcs
// accumulators. The returned slice is scratch.
func (e *Extractor) scan(i entity.ID) []entity.ID {
	e.neighbors = e.neighbors[:0]
	e.epoch++
	clean := e.blocks.Task == entity.CleanClean
	iFirst := e.blocks.InFirst(i)
	for _, bid := range e.index.BlockList(i) {
		b := &e.blocks.Blocks[bid]
		others := b.E1
		if clean {
			if iFirst {
				others = b.E2
			}
		}
		inv := e.invCard[bid]
		for _, j := range others {
			if j == i {
				continue
			}
			if e.flags[j] != e.epoch {
				e.flags[j] = e.epoch
				e.count[j] = 0
				e.arcs[j] = 0
				e.neighbors = append(e.neighbors, j)
			}
			e.count[j]++
			e.arcs[j] += inv
		}
	}
	return e.neighbors
}

// ForEachEdge invokes fn once per distinct comparison with its features,
// in deterministic order (ascending smaller endpoint).
func (e *Extractor) ForEachEdge(fn func(Edge)) {
	clean := e.blocks.Task == entity.CleanClean
	limit := e.blocks.NumEntities
	if clean {
		limit = e.blocks.Split
	}
	nb := float64(e.blocks.Len())
	for id := 0; id < limit; id++ {
		i := entity.ID(id)
		if e.index.NumBlocks(i) == 0 {
			continue
		}
		bi := float64(e.index.NumBlocks(i))
		for _, j := range e.scan(i) {
			if !clean && j < i {
				continue
			}
			bj := float64(e.index.NumBlocks(j))
			common := e.count[j]
			fn(Edge{
				I: i, J: j,
				Features: [NumFeatures]float64{
					e.arcs[j],
					common,
					common * math.Log(nb/bi) * math.Log(nb/bj),
					common / (bi + bj - common),
					float64(e.degrees[i]),
					float64(e.degrees[j]),
				},
			})
		}
	}
}
