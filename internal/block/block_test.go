package block

import (
	"reflect"
	"testing"

	"metablocking/internal/entity"
)

// dirtyFixture builds a small Dirty ER collection:
//
//	block 0 "x": {0,1,2}   → 3 comparisons
//	block 1 "y": {0,1}     → 1 comparison
//	block 2 "z": {2,3}     → 1 comparison
func dirtyFixture() *Collection {
	return &Collection{
		Task:        entity.Dirty,
		NumEntities: 4,
		Split:       4,
		Blocks: []Block{
			{Key: "x", E1: []entity.ID{0, 1, 2}},
			{Key: "y", E1: []entity.ID{0, 1}},
			{Key: "z", E1: []entity.ID{2, 3}},
		},
	}
}

// cleanFixture builds a Clean-Clean collection with split 2:
//
//	block 0 "x": E1{0,1} × E2{2,3} → 4 comparisons
//	block 1 "y": E1{0}   × E2{3}   → 1 comparison
func cleanFixture() *Collection {
	return &Collection{
		Task:        entity.CleanClean,
		NumEntities: 4,
		Split:       2,
		Blocks: []Block{
			{Key: "x", E1: []entity.ID{0, 1}, E2: []entity.ID{2, 3}},
			{Key: "y", E1: []entity.ID{0}, E2: []entity.ID{3}},
		},
	}
}

func TestBlockCardinality(t *testing.T) {
	dirty := Block{E1: []entity.ID{0, 1, 2}}
	if dirty.Comparisons() != 3 || dirty.Size() != 3 {
		t.Fatalf("dirty block: ‖b‖=%d |b|=%d, want 3 and 3", dirty.Comparisons(), dirty.Size())
	}
	clean := Block{E1: []entity.ID{0, 1}, E2: []entity.ID{2, 3, 4}}
	if clean.Comparisons() != 6 || clean.Size() != 5 {
		t.Fatalf("clean block: ‖b‖=%d |b|=%d, want 6 and 5", clean.Comparisons(), clean.Size())
	}
	empty := Block{E1: []entity.ID{7}}
	if empty.Comparisons() != 0 {
		t.Fatalf("singleton block has %d comparisons", empty.Comparisons())
	}
}

func TestCollectionStats(t *testing.T) {
	c := dirtyFixture()
	if c.Len() != 3 {
		t.Errorf("|B| = %d, want 3", c.Len())
	}
	if c.Comparisons() != 5 {
		t.Errorf("‖B‖ = %d, want 5", c.Comparisons())
	}
	if c.Assignments() != 7 {
		t.Errorf("Σ|b| = %d, want 7", c.Assignments())
	}
	if got := c.BPE(); got != 7.0/4.0 {
		t.Errorf("BPE = %v, want 1.75", got)
	}
}

func TestSortByCardinality(t *testing.T) {
	c := dirtyFixture()
	c.SortByCardinality()
	got := []string{c.Blocks[0].Key, c.Blocks[1].Key, c.Blocks[2].Key}
	// y and z tie at 1 comparison; key order breaks the tie.
	want := []string{"y", "z", "x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := cleanFixture()
	cl := c.Clone()
	cl.Blocks[0].E1[0] = 99
	cl.Blocks[0].E2[0] = 98
	if c.Blocks[0].E1[0] == 99 || c.Blocks[0].E2[0] == 98 {
		t.Fatal("Clone shares member slices with the original")
	}
	if cl.Split != c.Split || cl.Task != c.Task || cl.NumEntities != c.NumEntities {
		t.Fatal("Clone drops collection metadata")
	}
}

// TestClonePreservesEmptySides: E2's nil-ness decides whether a block is
// bilateral, so cloning an empty-but-non-nil side must not turn it nil —
// that would flip Comparisons() from |E1|·0 to |E1|-choose-2 and reorder
// Block Filtering's cardinality sort (found by FuzzDiffClean).
func TestClonePreservesEmptySides(t *testing.T) {
	c := &Collection{Task: entity.CleanClean, NumEntities: 6, Split: 3, Blocks: []Block{
		{Key: "a", E1: []entity.ID{0, 1, 2}, E2: []entity.ID{}},
		{Key: "b", E1: []entity.ID{}, E2: []entity.ID{4}},
		{Key: "c", E1: []entity.ID{0, 1}},
	}}
	cl := c.CloneWorkers(2)
	for i := range c.Blocks {
		b, nb := &c.Blocks[i], &cl.Blocks[i]
		if (b.E1 == nil) != (nb.E1 == nil) || (b.E2 == nil) != (nb.E2 == nil) {
			t.Errorf("block %q: clone changed side nil-ness", b.Key)
		}
		if b.Comparisons() != nb.Comparisons() {
			t.Errorf("block %q: clone changed comparisons %d → %d", b.Key, b.Comparisons(), nb.Comparisons())
		}
	}
}

func TestForEachComparisonDirty(t *testing.T) {
	c := dirtyFixture()
	var got []entity.Pair
	var blocks []int
	c.ForEachComparison(func(blockID int, a, b entity.ID) bool {
		got = append(got, entity.MakePair(a, b))
		blocks = append(blocks, blockID)
		return true
	})
	want := []entity.Pair{
		{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 2}, // block 0
		{A: 0, B: 1}, // block 1 (redundant)
		{A: 2, B: 3}, // block 2
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("comparisons = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(blocks, []int{0, 0, 0, 1, 2}) {
		t.Fatalf("block ids = %v", blocks)
	}
}

func TestForEachComparisonClean(t *testing.T) {
	c := cleanFixture()
	count := 0
	c.ForEachComparison(func(_ int, a, b entity.ID) bool {
		if int(a) >= c.Split || int(b) < c.Split {
			t.Fatalf("comparison (%d,%d) does not cross the split", a, b)
		}
		count++
		return true
	})
	if int64(count) != c.Comparisons() {
		t.Fatalf("visited %d comparisons, want %d", count, c.Comparisons())
	}
}

func TestForEachComparisonEarlyStop(t *testing.T) {
	c := dirtyFixture()
	count := 0
	c.ForEachComparison(func(_ int, _, _ entity.ID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d comparisons, want 2", count)
	}
}

func TestDetectedDuplicates(t *testing.T) {
	c := dirtyFixture()
	gt := entity.NewGroundTruth([]entity.Pair{
		{A: 0, B: 1}, // co-occurs in blocks 0 and 1
		{A: 2, B: 3}, // co-occurs in block 2
		{A: 0, B: 3}, // never co-occurs
	})
	if got := c.DetectedDuplicates(gt); got != 2 {
		t.Fatalf("|D(B)| = %d, want 2", got)
	}
}

func TestInFirst(t *testing.T) {
	c := cleanFixture()
	if !c.InFirst(1) || c.InFirst(2) {
		t.Fatal("InFirst misclassifies around the split")
	}
}
