package server

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/incremental"
)

// diskConfig is the disk-mode test configuration: batch size 1 keeps
// request order deterministic, a tiny memtable budget forces seals and
// compactions mid-run.
func diskConfig(dir string, shards int) Config {
	return Config{
		Resolver:       incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40},
		Shards:         shards,
		MaxBatch:       1,
		DiskDir:          dir,
		MemtableBudget:   4 << 10,
		DiskCompactAfter: 2,
	}
}

// TestServerDiskModeMatchesMemory is the serving-stack slice of the
// out-of-core claim: a server in -disk-dir mode answers bit-identically
// to the in-memory resolver while sealing and compacting under a
// memtable budget far below the collection size, survives a
// checkpointed restart with its state intact, and keeps answering
// identically afterwards.
func TestServerDiskModeMatchesMemory(t *testing.T) {
	profiles := testProfiles(t, 160)
	const restartAt = 120
	for _, shards := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), "index")
		cfg := diskConfig(dir, shards)
		serial, err := incremental.NewResolver(cfg.Resolver)
		if err != nil {
			t.Fatal(err)
		}

		s := newTestServer(t, cfg)
		ctx := context.Background()
		for i, p := range profiles[:restartAt] {
			want, _ := serial.Resolve(p)
			got, err := s.Resolve(ctx, p)
			if err != nil {
				t.Fatalf("shards=%d: resolve %d: %v", shards, i, err)
			}
			if !reflect.DeepEqual(got.BatchResult, want) {
				t.Fatalf("shards=%d: arrival %d diverged:\n got %+v\nwant %+v", shards, i, got.BatchResult, want)
			}
		}
		st := s.Status()
		if st.Checkpoint == 0 {
			t.Fatalf("shards=%d: no automatic checkpoint despite memtable budget", shards)
		}
		var seals, compactions int64
		for _, sh := range st.Shards {
			if sh.Disk != nil {
				seals += sh.Disk.Seals
				compactions += sh.Disk.Compactions
			}
		}
		if seals == 0 || compactions == 0 {
			t.Fatalf("shards=%d: out-of-core path not exercised: %d seals, %d compactions", shards, seals, compactions)
		}

		// /v1/admin/snapshot with no path = checkpoint in place.
		n, err := s.SnapshotFile("")
		if err != nil {
			t.Fatalf("shards=%d: checkpoint: %v", shards, err)
		}
		if n != restartAt {
			t.Fatalf("shards=%d: checkpoint reports %d profiles, want %d", shards, n, restartAt)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Restart over the same directory: state recovered, answers
		// still bit-identical.
		s2 := newTestServer(t, cfg)
		if s2.Size() != restartAt {
			t.Fatalf("shards=%d: restarted size %d, want %d", shards, s2.Size(), restartAt)
		}
		for i, p := range profiles[restartAt:] {
			want, _ := serial.Resolve(p)
			got, err := s2.Resolve(ctx, p)
			if err != nil {
				t.Fatalf("shards=%d: post-restart resolve %d: %v", shards, i, err)
			}
			if !reflect.DeepEqual(got.BatchResult, want) {
				t.Fatalf("shards=%d: post-restart arrival %d diverged", shards, i)
			}
		}
		if !reflect.DeepEqual(s2.Snapshot(), serial.Snapshot()) {
			t.Fatalf("shards=%d: canonical snapshot diverged after restart", shards)
		}
	}
}

// TestServerDiskConfigMismatchRefused pins the startup guard: a
// directory checkpointed under one resolver configuration refuses to
// serve under another instead of silently changing answers.
func TestServerDiskConfigMismatchRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "index")
	cfg := diskConfig(dir, 2)
	s := newTestServer(t, cfg)
	ctx := context.Background()
	for _, p := range testProfiles(t, 20) {
		if _, err := s.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SnapshotFile(""); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Resolver.Scheme = core.CBS
	if _, err := New(other); err == nil {
		t.Fatal("server accepted a disk dir checkpointed under a different scheme")
	}
}

// TestServerDiskReloadAndExport covers the two snapshot bridges in disk
// mode: reloading a portable artifact replaces the directory's contents
// durably (it survives a restart), and a non-empty snapshot path
// exports a portable artifact an in-memory server can load.
func TestServerDiskReloadAndExport(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}

	// An in-memory server produces the portable artifact.
	mem := newTestServer(t, Config{Resolver: rcfg, MaxBatch: 1})
	ctx := context.Background()
	for _, p := range profiles[:40] {
		if _, err := mem.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	artifact := filepath.Join(t.TempDir(), "resolver.snap")
	if _, err := mem.SnapshotFile(artifact); err != nil {
		t.Fatal(err)
	}
	wantSnap := mem.Snapshot()

	// Disk server adopts it via reload; the swap must survive a restart.
	dir := filepath.Join(t.TempDir(), "index")
	cfg := diskConfig(dir, 2)
	s := newTestServer(t, cfg)
	for _, p := range profiles[40:] {
		if _, err := s.Resolve(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.ReloadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("reload reports %d profiles, want 40", n)
	}
	if !reflect.DeepEqual(s.Snapshot(), wantSnap) {
		t.Fatal("disk server's snapshot differs from the reloaded artifact")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, cfg)
	if s2.Size() != 40 {
		t.Fatalf("restart after reload: size %d, want 40", s2.Size())
	}
	if !reflect.DeepEqual(s2.Snapshot(), wantSnap) {
		t.Fatal("reloaded contents did not survive the restart")
	}

	// Export: a non-empty path writes the portable sharded artifact.
	exported := filepath.Join(t.TempDir(), "exported.snap")
	if _, err := s2.SnapshotFile(exported); err != nil {
		t.Fatal(err)
	}
	mem2 := newTestServer(t, Config{Resolver: rcfg, MaxBatch: 1})
	if _, err := mem2.ReloadFile(exported); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem2.Snapshot(), wantSnap) {
		t.Fatal("exported artifact loads to different contents")
	}
}
