package server

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source, safe for concurrent use —
// the chaos tests advance it while the batcher goroutine reads it.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock, *[]bool) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	var changes []bool
	b := newBreaker(threshold, cooldown, clk.now, func(degraded bool) {
		changes = append(changes, degraded)
	})
	return b, clk, &changes
}

func mustAllow(t *testing.T, b *breaker, wantProceed, wantProbe bool) {
	t.Helper()
	proceed, probe := b.allow()
	if proceed != wantProceed || probe != wantProbe {
		t.Fatalf("allow() = (%v, %v), want (%v, %v)", proceed, probe, wantProceed, wantProbe)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, changes := newTestBreaker(3, time.Second)

	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		mustAllow(t, b, true, false)
		b.result(false, true)
	}
	if b.degraded() {
		t.Fatal("degraded below threshold")
	}
	// A success resets the consecutive count.
	mustAllow(t, b, true, false)
	b.result(false, false)
	for i := 0; i < 2; i++ {
		mustAllow(t, b, true, false)
		b.result(false, true)
	}
	if b.degraded() {
		t.Fatal("failure streak survived an intervening success")
	}
	// Third consecutive failure opens the circuit.
	mustAllow(t, b, true, false)
	b.result(false, true)
	if !b.degraded() {
		t.Fatal("not degraded at threshold")
	}
	if len(*changes) != 1 || !(*changes)[0] {
		t.Fatalf("onChange calls = %v, want [true]", *changes)
	}
	// While open and inside the cooldown: nothing proceeds.
	mustAllow(t, b, false, false)
	mustAllow(t, b, false, false)
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk, changes := newTestBreaker(1, time.Second)
	mustAllow(t, b, true, false)
	b.result(false, true) // threshold 1: open immediately

	mustAllow(t, b, false, false) // inside cooldown
	clk.advance(time.Second)

	// Cooldown elapsed: exactly one probe proceeds; others stay degraded
	// until the probe reports.
	mustAllow(t, b, true, true)
	mustAllow(t, b, false, false)

	// Probe fails: back to open, cooldown restarts.
	b.result(true, true)
	mustAllow(t, b, false, false)
	clk.advance(999 * time.Millisecond)
	mustAllow(t, b, false, false)
	clk.advance(time.Millisecond)

	// Second probe succeeds: closed again.
	mustAllow(t, b, true, true)
	b.result(true, false)
	if b.degraded() {
		t.Fatal("still degraded after successful probe")
	}
	mustAllow(t, b, true, false)
	if want := []bool{true, false}; len(*changes) != 2 || (*changes)[0] != want[0] || (*changes)[1] != want[1] {
		t.Fatalf("onChange calls = %v, want %v", *changes, want)
	}
}

func TestBreakerReset(t *testing.T) {
	b, _, changes := newTestBreaker(1, time.Hour)
	mustAllow(t, b, true, false)
	b.result(false, true)
	mustAllow(t, b, false, false)

	b.reset() // e.g. a successful snapshot reload
	if b.degraded() {
		t.Fatal("degraded after reset")
	}
	mustAllow(t, b, true, false)
	if want := []bool{true, false}; len(*changes) != 2 || (*changes)[1] != want[1] {
		t.Fatalf("onChange calls = %v, want %v", *changes, want)
	}
	// Reset while already closed: no spurious transition.
	b.reset()
	if len(*changes) != 2 {
		t.Fatalf("reset while closed fired onChange: %v", *changes)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	b, _, _ := newTestBreaker(0, time.Second)
	for i := 0; i < 100; i++ {
		mustAllow(t, b, true, false)
		b.result(false, true)
	}
	if b.degraded() {
		t.Fatal("disabled breaker went degraded")
	}

	var nb *breaker
	mustAllow(t, nb, true, false)
	nb.result(false, true)
	nb.reset()
	if nb.degraded() {
		t.Fatal("nil breaker degraded")
	}
}
