package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"metablocking/internal/budget"
	"metablocking/internal/core"
	"metablocking/internal/dataio"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
)

// postStream POSTs a profile to /v1/resolve with the given Accept header
// and raw query string, returning the undecoded response.
func postStream(t *testing.T, ts *httptest.Server, p entity.Profile, accept, query string) *http.Response {
	t.Helper()
	raw, err := dataio.MarshalProfileJSON(p)
	if err != nil {
		t.Fatal(err)
	}
	u := ts.URL + "/v1/resolve"
	if query != "" {
		u += "?" + query
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readFrames decodes a streamed response body — either encoding — into
// the ordered frame sequence, closing the body.
func readFrames(t *testing.T, resp *http.Response) []streamFrame {
	t.Helper()
	defer resp.Body.Close()
	sse := strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream")
	var frames []streamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !sse {
			var fr streamFrame
			if err := json.Unmarshal([]byte(line), &fr); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			frames = append(frames, fr)
			continue
		}
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			event = name
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("unexpected SSE line %q", line)
		}
		var fr streamFrame
		var err error
		switch event {
		case "meta":
			fr.Meta = &streamMeta{}
			err = json.Unmarshal([]byte(data), fr.Meta)
		case "batch":
			err = json.Unmarshal([]byte(data), &fr.Batch)
		case "done":
			fr.Done = &streamDone{}
			err = json.Unmarshal([]byte(data), fr.Done)
		case "cursor":
			fr.Cursor = &streamCursor{}
			err = json.Unmarshal([]byte(data), fr.Cursor)
		default:
			t.Fatalf("unknown SSE event %q", event)
		}
		if err != nil {
			t.Fatalf("bad SSE data for %q: %v", event, err)
		}
		frames = append(frames, fr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("stream carried no frames")
	}
	return frames
}

// splitFrames picks a frame sequence apart: the leading meta, the
// concatenated batches, and the terminal done-or-cursor frame.
func splitFrames(t *testing.T, frames []streamFrame) (streamMeta, []CandidateJSON, streamFrame) {
	t.Helper()
	if frames[0].Meta == nil {
		t.Fatalf("first frame is not meta: %+v", frames[0])
	}
	last := frames[len(frames)-1]
	if last.Done == nil && last.Cursor == nil {
		t.Fatalf("stream not terminated by done or cursor: %+v", last)
	}
	var cands []CandidateJSON
	for _, fr := range frames[1 : len(frames)-1] {
		if fr.Batch == nil {
			t.Fatalf("interior frame is not a batch: %+v", fr)
		}
		cands = append(cands, fr.Batch...)
	}
	return *frames[0].Meta, cands, last
}

// streamErrorCode decodes a non-2xx response's envelope code.
func streamErrorCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	return e.Error.Code
}

// TestStreamUnbudgetedEqualsSync is the first streaming oracle: an
// unbudgeted streamed resolve — over SSE and over NDJSON — delivers
// bit-identical candidates, in order, to the synchronous JSON path, at
// shard counts 1 and 4.
func TestStreamUnbudgetedEqualsSync(t *testing.T) {
	profiles := testProfiles(t, 80)
	for _, shards := range []int{1, 4} {
		for _, accept := range []string{"application/x-ndjson", "text/event-stream"} {
			cfg := Config{
				Resolver:    incremental.Config{Scheme: core.JS, K: 10},
				Shards:      shards,
				MaxBatch:    1, // sequential arrivals get deterministic IDs
				QueueDepth:  64,
				StreamBatch: 4,
			}
			syncSrv := newTestServer(t, cfg)
			streamSrv := newTestServer(t, cfg)
			tsSync := httptest.NewServer(syncSrv.Handler())
			tsStream := httptest.NewServer(streamSrv.Handler())

			for i, p := range profiles {
				resp := postStream(t, tsSync, p, "", "")
				var want ResolveResponse
				if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()

				sresp := postStream(t, tsStream, p, accept, "")
				if sresp.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d %s: arrival %d: status %d", shards, accept, i, sresp.StatusCode)
				}
				meta, got, last := splitFrames(t, readFrames(t, sresp))
				if meta.ID != want.ID || meta.Degraded || meta.Resumed {
					t.Fatalf("shards=%d %s: arrival %d: meta %+v, sync ID %d", shards, accept, i, meta, want.ID)
				}
				if last.Done == nil || last.Done.Reason != "" ||
					last.Done.Emitted != len(got) || last.Done.TotalEmitted != len(got) {
					t.Fatalf("shards=%d %s: arrival %d: bad terminal frame %+v", shards, accept, i, last)
				}
				if len(got) != len(want.Candidates) || (len(got) > 0 && !reflect.DeepEqual(got, want.Candidates)) {
					t.Fatalf("shards=%d %s: arrival %d: streamed candidates diverged\n got %v\nwant %v",
						shards, accept, i, got, want.Candidates)
				}
			}
			tsSync.Close()
			tsStream.Close()
		}
	}
}

// TestBudgetResumeToCompletionEqualsUnbudgeted is the second streaming
// oracle: a comparison-capped stream resumed through its cursors until
// completion reassembles exactly the unbudgeted candidate list, at shard
// counts 1 and 4 — and every exhausted leg delivered at least one batch.
func TestBudgetResumeToCompletionEqualsUnbudgeted(t *testing.T) {
	profiles := testProfiles(t, 60)
	for _, shards := range []int{1, 4} {
		cfg := Config{
			Resolver:    incremental.Config{Scheme: core.JS, K: 10},
			Shards:      shards,
			MaxBatch:    1,
			QueueDepth:  64,
			StreamBatch: 4,
		}
		s := newTestServer(t, cfg)
		ts := httptest.NewServer(s.Handler())
		serial, err := incremental.NewResolver(cfg.Resolver)
		if err != nil {
			t.Fatal(err)
		}

		resumes := 0
		for i, p := range profiles {
			want, err := serial.Resolve(p)
			if err != nil {
				t.Fatal(err)
			}
			var got []CandidateJSON
			query := "max_comparisons=3"
			for leg := 0; ; leg++ {
				resp := postStream(t, ts, p, "application/x-ndjson", query)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d: arrival %d leg %d: status %d, code %q",
						shards, i, leg, resp.StatusCode, streamErrorCode(t, resp))
				}
				meta, cands, last := splitFrames(t, readFrames(t, resp))
				if meta.ID != int(want.ID) {
					t.Fatalf("shards=%d: arrival %d leg %d: meta ID %d, want %d", shards, i, leg, meta.ID, want.ID)
				}
				if (leg > 0) != meta.Resumed {
					t.Fatalf("shards=%d: arrival %d leg %d: resumed=%v", shards, i, leg, meta.Resumed)
				}
				got = append(got, cands...)
				if last.Cursor != nil {
					if len(cands) == 0 {
						t.Fatalf("shards=%d: arrival %d leg %d: exhausted with zero flushed batches", shards, i, leg)
					}
					if last.Cursor.Reason != budget.ReasonMaxComparisons || last.Cursor.TotalEmitted != len(got) {
						t.Fatalf("shards=%d: arrival %d leg %d: bad cursor frame %+v", shards, i, leg, last.Cursor)
					}
					query = "max_comparisons=3&cursor=" + url.QueryEscape(last.Cursor.Cursor)
					resumes++
					continue
				}
				if last.Done.TotalEmitted != len(got) {
					t.Fatalf("shards=%d: arrival %d leg %d: done %+v after %d candidates", shards, i, leg, last.Done, len(got))
				}
				break
			}
			if len(got) != len(want.Candidates) || (len(got) > 0 && !reflect.DeepEqual(got, candidateJSON(want.Candidates))) {
				t.Fatalf("shards=%d: arrival %d: resumed stream diverged\n got %v\nwant %v",
					shards, i, got, want.Candidates)
			}
		}
		if resumes == 0 {
			t.Fatal("no stream ever exhausted: oracle vacuous")
		}
		if got := s.Metrics().Counter(budget.CtrCursorResumes).Value(); got != int64(resumes) {
			t.Fatalf("cursor_resumes = %d, want %d", got, resumes)
		}
		if s.Metrics().Counter(budget.CtrExhausted).Value() != int64(resumes) {
			t.Fatalf("exhausted = %d, want %d", s.Metrics().Counter(budget.CtrExhausted).Value(), resumes)
		}
		ts.Close()
	}
}

// TestStreamDeadlineExhaustion pins the "never a bare 408" guarantee on
// the wall-clock axis: a stream whose budget is already spent when the
// first flush happens still gets that batch, then a deadline cursor —
// and resuming unbudgeted drains the exact remainder.
func TestStreamDeadlineExhaustion(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultStream, fault.Spec{Delay: 120 * time.Millisecond, Times: 1})
	cfg := Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		MaxBatch:    1,
		QueueDepth:  64,
		StreamBatch: 2,
	}
	s := newTestServer(t, cfg, WithFault(inj))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	serial, err := incremental.NewResolver(cfg.Resolver)
	if err != nil {
		t.Fatal(err)
	}

	// Seed co-blocking profiles so the target has well over one batch of
	// candidates.
	profiles := testProfiles(t, 13)
	for _, p := range profiles[:12] {
		if _, err := serial.Resolve(p); err != nil {
			t.Fatal(err)
		}
		resp := postStream(t, ts, p, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	want, err := serial.Resolve(profiles[12])
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Candidates) <= cfg.StreamBatch {
		t.Fatalf("target has only %d candidates; test needs > %d", len(want.Candidates), cfg.StreamBatch)
	}

	resp := postStream(t, ts, profiles[12], "application/x-ndjson", "budget_ms=30")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted stream status %d, want 200 (never a bare timeout)", resp.StatusCode)
	}
	_, got, last := splitFrames(t, readFrames(t, resp))
	if len(got) == 0 {
		t.Fatal("deadline exhaustion flushed no batch")
	}
	if last.Cursor == nil || last.Cursor.Reason != budget.ReasonDeadline {
		t.Fatalf("terminal frame %+v, want deadline cursor", last)
	}

	resp = postStream(t, ts, profiles[12], "application/x-ndjson",
		"cursor="+url.QueryEscape(last.Cursor.Cursor))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status %d, code %q", resp.StatusCode, streamErrorCode(t, resp))
	}
	_, rest, rlast := splitFrames(t, readFrames(t, resp))
	if rlast.Done == nil {
		t.Fatalf("unbudgeted resume did not complete: %+v", rlast)
	}
	if all := append(got, rest...); !reflect.DeepEqual(all, candidateJSON(want.Candidates)) {
		t.Fatalf("exhausted+resumed diverged\n got %v\nwant %v", all, want.Candidates)
	}
}

// TestStreamCursorInvalid covers every refusal: tampering, a different
// profile, a superseded generation (reload), and garbage — all 410
// cursor_invalid, counted.
func TestStreamCursorInvalid(t *testing.T) {
	cfg := Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		MaxBatch:    1,
		QueueDepth:  64,
		StreamBatch: 2,
	}
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	profiles := testProfiles(t, 8)
	for _, p := range profiles[:7] {
		resp := postStream(t, ts, p, "", "")
		resp.Body.Close()
	}
	resp := postStream(t, ts, profiles[7], "application/x-ndjson", "max_comparisons=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	_, _, last := splitFrames(t, readFrames(t, resp))
	if last.Cursor == nil {
		t.Fatal("capped stream issued no cursor")
	}
	token := last.Cursor.Cursor

	expect410 := func(p entity.Profile, cursor, label string) {
		t.Helper()
		resp := postStream(t, ts, p, "application/x-ndjson", "cursor="+url.QueryEscape(cursor))
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("%s: status %d, want 410", label, resp.StatusCode)
		}
		if code := streamErrorCode(t, resp); code != CodeCursorInvalid {
			t.Fatalf("%s: code %q, want %q", label, code, CodeCursorInvalid)
		}
	}

	// Tampered payload: flip a byte while keeping the shape.
	tampered := []byte(token)
	tampered[3] ^= 0x01
	if string(tampered) == token {
		t.Fatal("tampering was a no-op")
	}
	expect410(profiles[7], string(tampered), "tampered token")
	expect410(profiles[7], "not-even-a-cursor", "garbage token")
	expect410(profiles[2], token, "wrong profile")

	// Valid resume still works before the reload...
	resp = postStream(t, ts, profiles[7], "application/x-ndjson", "cursor="+url.QueryEscape(token))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-reload resume status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// ...and is refused after it: the generation advanced.
	gen := s.Generation()
	if _, err := s.Reload(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != gen+1 {
		t.Fatalf("generation %d after reload, want %d", s.Generation(), gen+1)
	}
	expect410(profiles[7], token, "post-reload resume")

	if got := s.Metrics().Counter(budget.CtrCursorInvalid).Value(); got != 4 {
		t.Fatalf("cursor_invalid = %d, want 4", got)
	}
}

// TestStreamTierAdmission pins the SLA pools: a saturated tier sheds
// with 429 tier_busy while the other tier still admits, and an unknown
// tier is a 400.
func TestStreamTierAdmission(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultStream, fault.Spec{Delay: 300 * time.Millisecond, Times: 1})
	cfg := Config{
		Resolver:   incremental.Config{Scheme: core.JS, K: 10},
		MaxBatch:   1,
		QueueDepth: 64,
		Tiers: []budget.Tier{
			{Name: budget.TierInteractive, Slots: 1},
			{Name: budget.TierBatch, Slots: 1},
		},
	}
	s := newTestServer(t, cfg, WithFault(inj))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	profiles := testProfiles(t, 12)

	// Seed co-blocking profiles so the pinned stream has candidates to
	// flush — the fault site only fires on a flush.
	for _, p := range profiles[:8] {
		resp := postStream(t, ts, p, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Pin one interactive stream mid-flush via the stream fault site.
	// (Raw reads only: t.Fatal is not legal off the test goroutine.)
	pinned := make(chan int, 1)
	go func() {
		raw, err := dataio.MarshalProfileJSON(profiles[8])
		if err != nil {
			pinned <- -1
			return
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/resolve?tier=interactive", "application/json", bytes.NewReader(raw))
		if err != nil {
			pinned <- -1
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pinned <- strings.Count(string(body), `"batch"`)
	}()
	time.Sleep(80 * time.Millisecond)

	resp := postStream(t, ts, profiles[9], "application/x-ndjson", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tier status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 tier_busy missing Retry-After")
	}
	if code := streamErrorCode(t, resp); code != CodeTierBusy {
		t.Fatalf("saturated tier code %q, want %q", code, CodeTierBusy)
	}

	resp = postStream(t, ts, profiles[10], "application/x-ndjson", "tier=batch")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch tier status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postStream(t, ts, profiles[11], "application/x-ndjson", "tier=bulk")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier status %d, want 400", resp.StatusCode)
	}
	if code := streamErrorCode(t, resp); code != CodeInvalidRequest {
		t.Fatalf("unknown tier code %q", code)
	}
	if flushed := <-pinned; flushed <= 0 {
		t.Fatalf("pinned stream flushed %d batches: saturation was never exercised", flushed)
	}

	if s.Metrics().Counter(budget.CtrTierShed).Value() != 1 {
		t.Fatalf("tier_shed = %d, want 1", s.Metrics().Counter(budget.CtrTierShed).Value())
	}
}

// TestStreamDegradedZeroBudget pins the breaker's streaming behavior:
// while the circuit is open a stream is the zero-budget tier — one
// read-only batch, reason degraded, no cursor, even when the request
// asked for a budget that would otherwise exhaust.
func TestStreamDegradedZeroBudget(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultResolve, fault.Spec{Err: fault.ErrInjected, After: 10})
	cfg := Config{
		Resolver:         incremental.Config{Scheme: core.JS, K: 10},
		MaxBatch:         1,
		QueueDepth:       64,
		StreamBatch:      2,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	}
	s := newTestServer(t, cfg, WithFault(inj))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	profiles := testProfiles(t, 12)
	for _, p := range profiles[:10] {
		resp := postStream(t, ts, p, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	// The 11th resolve hits the armed fault and opens the breaker.
	resp := postStream(t, ts, profiles[10], "", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("breaker-opening resolve status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()

	// max_comparisons=1 would exhaust with a cursor when healthy; the
	// degraded path overrides it to the cursor-less single batch.
	resp = postStream(t, ts, profiles[11], "application/x-ndjson", "max_comparisons=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded stream status %d", resp.StatusCode)
	}
	meta, got, last := splitFrames(t, readFrames(t, resp))
	if !meta.Degraded || meta.ID != -1 {
		t.Fatalf("degraded stream meta %+v", meta)
	}
	if len(got) == 0 || len(got) > cfg.StreamBatch {
		t.Fatalf("degraded stream emitted %d candidates, want 1..%d", len(got), cfg.StreamBatch)
	}
	if last.Cursor != nil {
		t.Fatal("degraded stream issued a cursor")
	}
	if last.Done.Reason != budget.ReasonDegraded {
		t.Fatalf("degraded stream reason %q", last.Done.Reason)
	}
	if s.Metrics().Counter(budget.CtrPartialResults).Value() == 0 {
		t.Fatal("degraded partial result not counted")
	}
}

// TestTimeoutCarriesRetryAfter pins the envelope fix: 408s (and 503s)
// advertise retry_after_ms and the Retry-After header exactly like 429s,
// so clients back off uniformly.
func TestTimeoutCarriesRetryAfter(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultResolve, fault.Spec{Delay: 300 * time.Millisecond, Times: 1})
	cfg := Config{
		Resolver:       incremental.Config{Scheme: core.CBS},
		MaxBatch:       1,
		QueueDepth:     64,
		RetryAfter:     2 * time.Second,
		RequestTimeout: 50 * time.Millisecond,
	}
	s := newTestServer(t, cfg, WithFault(inj))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	profiles := testProfiles(t, 2)

	resp := postStream(t, ts, profiles[0], "", "")
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Code != CodeTimeout || e.Error.RetryAfterMs != 2000 {
		t.Fatalf("408 envelope %+v, want timeout with retry_after_ms 2000", e.Error)
	}

	// Draining 503s carry it too.
	s.Close()
	resp = postStream(t, ts, profiles[1], "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
	e = ErrorResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.Error.Code != CodeDraining || e.Error.RetryAfterMs != 2000 {
		t.Fatalf("503 envelope %+v, want draining with retry_after_ms 2000", e.Error)
	}
}

// TestDiskStatusShardGauges hits GET /v1/admin/status over HTTP against
// a disk-mode sharded server: every shard reports its disk-tier gauges
// and the committed checkpoint id, and the checkpoint advanced the
// cursor generation.
func TestDiskStatusShardGauges(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "index")
	cfg := diskConfig(dir, 4)
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	profiles := testProfiles(t, 60)
	for i, p := range profiles {
		resp := postStream(t, ts, p, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// An explicit checkpoint guarantees a committed id regardless of the
	// memtable budget's automatic ones.
	body, _ := json.Marshal(SnapshotRequest{})
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if st.Checkpoint == 0 {
		t.Fatal("status reports no committed checkpoint")
	}
	if st.Generation == 0 {
		t.Fatal("checkpoint did not advance the cursor generation")
	}
	if len(st.Shards) != 4 {
		t.Fatalf("status reports %d shards, want 4", len(st.Shards))
	}
	total := 0
	for _, sh := range st.Shards {
		if sh.Disk == nil {
			t.Fatalf("shard %d has no disk gauges: %+v", sh.Shard, sh)
		}
		if sh.Disk.Checkpoint != st.Checkpoint {
			t.Fatalf("shard %d checkpoint %d, server-wide %d", sh.Shard, sh.Disk.Checkpoint, st.Checkpoint)
		}
		total += sh.Profiles
	}
	if total != len(profiles) {
		t.Fatalf("per-shard profiles sum to %d, want %d", total, len(profiles))
	}
	if len(st.Tiers) != 2 {
		t.Fatalf("status reports %d tiers, want 2: %+v", len(st.Tiers), st.Tiers)
	}
	if st.Config.StreamBatch != budget.DefaultBatch {
		t.Fatalf("stream_batch %d, want default %d", st.Config.StreamBatch, budget.DefaultBatch)
	}
}
