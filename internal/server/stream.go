// The budget-aware progressive serving path: POST /v1/resolve grows a
// streaming mode that emits ranked candidates best-first as they clear
// the weight frontier, under the request's budget contract
// (internal/budget), over either Server-Sent Events or chunked NDJSON.
//
// Routing: a request streams when its Accept header asks for
// text/event-stream or application/x-ndjson, or when it carries any
// budget parameter (budget_ms, max_comparisons, min_confidence, tier,
// cursor). Everything else takes the untouched synchronous JSON path, so
// existing clients see byte-identical responses.
//
// Frame sequence (NDJSON shown; SSE wraps the same payloads in named
// events):
//
//	{"meta":{"id":7,"tier":"interactive","generation":0}}
//	{"batch":[{"id":3,"weight":2.5},...]}          — repeated
//	{"done":{"emitted":40,"total_emitted":40}}      — completion, or
//	{"cursor":{"cursor":"...","reason":"deadline",...}} — exhaustion
//
// Exhaustion always delivers at least one batch before the cursor — a
// budgeted request never gets a bare timeout.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"metablocking/internal/budget"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// streamParams are the query parameters that opt a resolve into the
// streaming path.
var streamParams = []string{"budget_ms", "max_comparisons", "min_confidence", "tier", "cursor"}

// isStreamRequest reports whether the request asked for the progressive
// path — by Accept header or by naming any budget parameter.
func isStreamRequest(req *http.Request) bool {
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "text/event-stream") || strings.Contains(accept, "application/x-ndjson") {
		return true
	}
	q := req.URL.Query()
	for _, k := range streamParams {
		if q.Has(k) {
			return true
		}
	}
	return false
}

// streamMeta is the first frame of every stream: what is being answered
// and against which snapshot generation.
type streamMeta struct {
	ID         int    `json:"id"`
	Tier       string `json:"tier"`
	Generation uint64 `json:"generation"`
	Degraded   bool   `json:"degraded,omitempty"`
	Resumed    bool   `json:"resumed,omitempty"`
}

// streamDone terminates a completed stream: every candidate the contract
// wanted was delivered, no cursor.
type streamDone struct {
	// Emitted counts comparisons this response flushed; TotalEmitted is
	// cumulative across the original stream and every resume.
	Emitted      int    `json:"emitted"`
	TotalEmitted int    `json:"total_emitted"`
	Reason       string `json:"reason,omitempty"`
}

// streamCursor terminates an exhausted stream: the budget ran out with
// candidates remaining, and the signed cursor resumes exactly after the
// last emitted pair.
type streamCursor struct {
	Cursor       string  `json:"cursor"`
	Reason       string  `json:"reason"`
	Emitted      int     `json:"emitted"`
	TotalEmitted int     `json:"total_emitted"`
	Frontier     float64 `json:"frontier"`
}

// streamFrame is the NDJSON envelope: exactly one field set per line.
type streamFrame struct {
	Meta   *streamMeta     `json:"meta,omitempty"`
	Batch  []CandidateJSON `json:"batch,omitempty"`
	Done   *streamDone     `json:"done,omitempty"`
	Cursor *streamCursor   `json:"cursor,omitempty"`
}

// streamWriter abstracts the two stream encodings. begin writes the
// response header; every other method writes and flushes one frame.
type streamWriter interface {
	begin()
	meta(streamMeta) error
	batch([]incremental.Candidate) error
	done(streamDone) error
	cursor(streamCursor) error
}

// newStreamWriter negotiates the encoding: SSE when the Accept header
// asks for text/event-stream, chunked NDJSON otherwise (including for
// budgeted requests that sent no Accept at all).
func newStreamWriter(w http.ResponseWriter, req *http.Request) streamWriter {
	f, _ := w.(http.Flusher)
	if strings.Contains(req.Header.Get("Accept"), "text/event-stream") {
		return &sseWriter{w: w, f: f}
	}
	return &ndjsonWriter{w: w, f: f}
}

// candidateJSON converts a ranked candidate slice to its wire form.
func candidateJSON(cands []incremental.Candidate) []CandidateJSON {
	out := make([]CandidateJSON, len(cands))
	for i, c := range cands {
		out[i] = CandidateJSON{ID: int(c.ID), Weight: c.Weight}
	}
	return out
}

// ndjsonWriter emits one JSON object per line, flushing each.
type ndjsonWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (nw *ndjsonWriter) begin() {
	nw.w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	nw.w.Header().Set("Cache-Control", "no-store")
	nw.w.WriteHeader(http.StatusOK)
}

func (nw *ndjsonWriter) send(fr streamFrame) error {
	b, err := json.Marshal(fr)
	if err != nil {
		return err
	}
	if _, err := nw.w.Write(append(b, '\n')); err != nil {
		return err
	}
	if nw.f != nil {
		nw.f.Flush()
	}
	return nil
}

func (nw *ndjsonWriter) meta(m streamMeta) error { return nw.send(streamFrame{Meta: &m}) }
func (nw *ndjsonWriter) batch(c []incremental.Candidate) error {
	return nw.send(streamFrame{Batch: candidateJSON(c)})
}
func (nw *ndjsonWriter) done(d streamDone) error     { return nw.send(streamFrame{Done: &d}) }
func (nw *ndjsonWriter) cursor(c streamCursor) error { return nw.send(streamFrame{Cursor: &c}) }

// sseWriter emits Server-Sent Events: "event: <name>" + JSON data.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (sw *sseWriter) begin() {
	sw.w.Header().Set("Content-Type", "text/event-stream")
	sw.w.Header().Set("Cache-Control", "no-store")
	sw.w.WriteHeader(http.StatusOK)
}

func (sw *sseWriter) send(event string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	if sw.f != nil {
		sw.f.Flush()
	}
	return nil
}

func (sw *sseWriter) meta(m streamMeta) error { return sw.send("meta", m) }
func (sw *sseWriter) batch(c []incremental.Candidate) error {
	return sw.send("batch", candidateJSON(c))
}
func (sw *sseWriter) done(d streamDone) error     { return sw.send("done", d) }
func (sw *sseWriter) cursor(c streamCursor) error { return sw.send("cursor", c) }

// handleResolveStream serves the progressive path for an already-parsed
// profile. start anchors the wall-clock budget at request arrival, so
// the resolve itself spends budget.
func (s *Server) handleResolveStream(w http.ResponseWriter, req *http.Request, p entity.Profile, start time.Time) {
	q := req.URL.Query()
	contract, err := budget.ParseContract(q, s.pools.Tiers())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	release, err := s.pools.Acquire(contract.Tier)
	if err != nil {
		if errors.Is(err, budget.ErrTierSaturated) {
			s.metrics.Counter(budget.CtrTierShed).Inc()
			s.writeError(w, http.StatusTooManyRequests, CodeTierBusy, err.Error())
			return
		}
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	defer release()

	// Pin the generation BEFORE the gather: if a reload lands while the
	// request is in flight, any cursor issued here carries the superseded
	// generation and is refused on resume — conservative, never wrong.
	gen := s.generation.Load()
	hash := budget.ProfileHash(p)

	var (
		res     Resolution
		resumed bool
		prior   budget.Cursor
	)
	if token := q.Get("cursor"); token != "" {
		cur, verr := s.signer.Verify(token)
		if verr == nil && cur.Generation != gen {
			verr = fmt.Errorf("%w: superseded snapshot generation", budget.ErrCursorInvalid)
		}
		if verr == nil && cur.Profile != hash {
			verr = fmt.Errorf("%w: profile does not match the cursor's", budget.ErrCursorInvalid)
		}
		if verr != nil {
			s.metrics.Counter(budget.CtrCursorInvalid).Inc()
			s.writeError(w, http.StatusGone, CodeCursorInvalid, verr.Error())
			return
		}
		res, err = s.Resume(req.Context(), p, cur.ID)
		if err == nil && s.generation.Load() != cur.Generation {
			// A reload/checkpoint raced the re-gather: the candidates came
			// from an index the cursor was not cut against.
			err = fmt.Errorf("%w: superseded snapshot generation", budget.ErrCursorInvalid)
		}
		if errors.Is(err, budget.ErrCursorInvalid) {
			s.metrics.Counter(budget.CtrCursorInvalid).Inc()
			s.writeError(w, http.StatusGone, CodeCursorInvalid, err.Error())
			return
		}
		if err != nil {
			status, code := resolveErrorCode(err)
			s.writeError(w, status, code, err.Error())
			return
		}
		s.metrics.Counter(budget.CtrCursorResumes).Inc()
		resumed, prior = true, cur
	} else {
		res, err = s.Resolve(req.Context(), p)
		if err != nil {
			status, code := resolveErrorCode(err)
			s.writeError(w, status, code, err.Error())
			return
		}
	}

	cands := res.Candidates
	if resumed {
		// Continue strictly after the cursor position in the emission
		// order; the re-gather reproduced the original ranked stream.
		cands = budget.SkipAfter(cands, prior.LastWeight, prior.LastID)
	}
	if res.Degraded {
		// Breaker open: the zero-budget tier. One read-only batch,
		// cursor-less — a degraded index cannot promise a resumable
		// frontier.
		if len(cands) > s.cfg.StreamBatch {
			cands = cands[:s.cfg.StreamBatch]
		}
		contract = budget.Contract{Tier: contract.Tier}
	}

	sw := newStreamWriter(w, req)
	sw.begin()
	s.metrics.Counter(budget.CtrStreams).Inc()
	if err := sw.meta(streamMeta{
		ID:         int(res.ID),
		Tier:       contract.Tier,
		Generation: gen,
		Degraded:   res.Degraded,
		Resumed:    resumed,
	}); err != nil {
		return
	}

	em := budget.Emitter{Batch: s.cfg.StreamBatch}
	out, err := em.Emit(cands, contract, start, func(b []incremental.Candidate) error {
		if ferr := s.cfg.Fault.Check(FaultStream); ferr != nil {
			return ferr
		}
		return sw.batch(b)
	})
	s.metrics.Counter(budget.CtrComparisons).Add(int64(out.Emitted))
	if err != nil {
		// Mid-stream abort: the client vanished or the injected stream
		// fault fired. The response is already half-written; nothing
		// coherent can follow.
		s.metrics.Text(TextLastError).Set(err.Error())
		return
	}
	total := out.Emitted
	if resumed {
		total += prior.Emitted
	}
	switch {
	case res.Degraded:
		s.metrics.Counter(budget.CtrPartialResults).Inc()
		sw.done(streamDone{Emitted: out.Emitted, TotalEmitted: total, Reason: budget.ReasonDegraded})
	case out.Exhausted:
		s.metrics.Counter(budget.CtrExhausted).Inc()
		s.metrics.Counter(budget.CtrPartialResults).Inc()
		token := s.signer.Sign(budget.Cursor{
			Generation: gen,
			ID:         res.ID,
			Profile:    hash,
			Emitted:    total,
			LastWeight: out.Last.Weight,
			LastID:     out.Last.ID,
			Frontier:   out.Frontier,
		})
		sw.cursor(streamCursor{
			Cursor:       token,
			Reason:       out.Reason,
			Emitted:      out.Emitted,
			TotalEmitted: total,
			Frontier:     out.Frontier,
		})
	default:
		sw.done(streamDone{Emitted: out.Emitted, TotalEmitted: total, Reason: out.Reason})
	}
}
