package budget

import (
	"errors"
	"net/url"
	"strings"
	"testing"
	"time"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

func testTiers() []Tier {
	return []Tier{
		{Name: TierInteractive, Slots: 2, DefaultBudget: 250 * time.Millisecond, DefaultMaxComparisons: 64},
		{Name: TierBatch, Slots: 1, DefaultBudget: 5 * time.Second},
	}
}

func TestParseContractDefaultsAndOverrides(t *testing.T) {
	tiers := testTiers()

	c, err := ParseContract(url.Values{}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tier != TierInteractive || c.Budget != 250*time.Millisecond || c.MaxComparisons != 64 || !c.Budgeted {
		t.Fatalf("tier defaults not applied: %+v", c)
	}

	c, err = ParseContract(url.Values{"tier": {"batch"}, "budget_ms": {"10"}, "max_comparisons": {"3"}, "min_confidence": {"0.5"}}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tier != TierBatch || c.Budget != 10*time.Millisecond || c.MaxComparisons != 3 || c.MinConfidence != 0.5 {
		t.Fatalf("explicit params not honored: %+v", c)
	}

	// An explicit zero disables an axis the tier would default.
	c, err = ParseContract(url.Values{"budget_ms": {"0"}, "max_comparisons": {"0"}}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget != 0 || c.MaxComparisons != 0 || c.Budgeted {
		t.Fatalf("explicit zeros should disable budgets: %+v", c)
	}
}

func TestParseContractErrors(t *testing.T) {
	tiers := testTiers()
	if _, err := ParseContract(url.Values{"tier": {"vip"}}, tiers); !errors.Is(err, ErrUnknownTier) {
		t.Fatalf("unknown tier: got %v", err)
	}
	for _, q := range []url.Values{
		{"budget_ms": {"-1"}},
		{"budget_ms": {"soon"}},
		{"max_comparisons": {"-2"}},
		{"min_confidence": {"-0.1"}},
		{"min_confidence": {"high"}},
	} {
		if _, err := ParseContract(q, tiers); !errors.Is(err, ErrBadContract) {
			t.Fatalf("%v: got %v, want ErrBadContract", q, err)
		}
	}
}

func TestPoolsAdmission(t *testing.T) {
	ps := NewPools(testTiers()...)

	rel1, err := ps.Acquire(TierInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Acquire(TierInteractive); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Acquire(TierInteractive); !errors.Is(err, ErrTierSaturated) {
		t.Fatalf("third interactive acquire: got %v", err)
	}
	// Saturating interactive must not touch batch's pool.
	relB, err := ps.Acquire(TierBatch)
	if err != nil {
		t.Fatalf("batch pool affected by interactive saturation: %v", err)
	}
	relB()
	rel1()
	if _, err := ps.Acquire(TierInteractive); err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
	if _, err := ps.Acquire("vip"); !errors.Is(err, ErrUnknownTier) {
		t.Fatalf("unknown tier: got %v", err)
	}

	stats := ps.Stats()
	if len(stats) != 2 || stats[0].Tier != TierInteractive || stats[0].Slots != 2 || stats[0].Free != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats[0].DefaultBudgetMs != 250 || stats[0].DefaultMaxComparisons != 64 {
		t.Fatalf("stats defaults: %+v", stats[0])
	}

	// Unbounded pool (Slots 0) admits everything.
	open := NewPools(Tier{Name: "open"})
	for i := 0; i < 100; i++ {
		if _, err := open.Acquire("open"); err != nil {
			t.Fatal(err)
		}
	}
	if st := open.Stats()[0]; st.Free != 0 || st.Slots != 0 {
		t.Fatalf("unbounded stats: %+v", st)
	}
}

func TestCursorRoundTripAndTamper(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	c := Cursor{Generation: 3, ID: 41, Profile: 0xdeadbeef, Emitted: 12, LastWeight: 0.25, LastID: 7, Frontier: 0.125}
	tok := s.Sign(c)
	got, err := s.Verify(tok)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}

	for _, bad := range []string{
		"",
		"garbage",
		tok + "x",
		"x" + tok,
		strings.Replace(tok, ".", "", 1),
		tok[:len(tok)-2],
	} {
		if _, err := s.Verify(bad); !errors.Is(err, ErrCursorInvalid) {
			t.Fatalf("Verify(%q): got %v, want ErrCursorInvalid", bad, err)
		}
	}

	// A token signed under another key (another process lifetime) is
	// refused — the restart-invalidates-cursors contract.
	other, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Verify(tok); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("cross-key verify: got %v", err)
	}
}

func TestProfileHash(t *testing.T) {
	p := entity.Profile{Attributes: []entity.Attribute{{Name: "name", Value: "alice"}, {Name: "city", Value: "nyc"}}}
	q := p
	q.ID = 99
	if ProfileHash(p) != ProfileHash(q) {
		t.Fatal("hash must ignore the assigned ID")
	}
	r := entity.Profile{Attributes: []entity.Attribute{{Name: "name", Value: "alicec"}, {Name: "ity", Value: "nyc"}}}
	if ProfileHash(p) == ProfileHash(r) {
		t.Fatal("field boundaries must be hashed")
	}
}

func rankedCands(n int) []incremental.Candidate {
	cs := make([]incremental.Candidate, n)
	for i := range cs {
		cs[i] = incremental.Candidate{ID: entity.ID(i), Weight: float64(n-i) / float64(n)}
	}
	return cs
}

// collectFlush records flushed batches.
type collectFlush struct {
	batches [][]incremental.Candidate
	flat    []incremental.Candidate
}

func (c *collectFlush) flush(cs []incremental.Candidate) error {
	c.batches = append(c.batches, append([]incremental.Candidate(nil), cs...))
	c.flat = append(c.flat, cs...)
	return nil
}

func TestEmitUnbudgetedDrains(t *testing.T) {
	cands := rankedCands(37)
	var sink collectFlush
	e := Emitter{Batch: 8}
	out, err := e.Emit(cands, Contract{}, time.Now(), sink.flush)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exhausted || out.Reason != "" || out.Emitted != 37 {
		t.Fatalf("outcome: %+v", out)
	}
	if len(sink.batches) != 5 || len(sink.batches[4]) != 5 {
		t.Fatalf("batch shapes: %d batches, last %d", len(sink.batches), len(sink.batches[len(sink.batches)-1]))
	}
	for i, c := range sink.flat {
		if c != cands[i] {
			t.Fatalf("emission order diverged at %d", i)
		}
	}
}

func TestEmitMaxComparisons(t *testing.T) {
	cands := rankedCands(10)
	var sink collectFlush
	e := Emitter{Batch: 4}
	out, err := e.Emit(cands, Contract{MaxComparisons: 6, Budgeted: true}, time.Now(), sink.flush)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Exhausted || out.Reason != ReasonMaxComparisons || out.Emitted != 6 {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Last != cands[5] || out.Frontier != cands[6].Weight {
		t.Fatalf("resume position: %+v", out)
	}
	// Mid-batch truncation: 4 + 2.
	if len(sink.batches) != 2 || len(sink.batches[1]) != 2 {
		t.Fatalf("batch shapes: %+v", sink.batches)
	}
}

func TestEmitDeadlineAlwaysFlushesOneBatch(t *testing.T) {
	cands := rankedCands(40)
	var sink collectFlush
	start := time.Unix(1000, 0)
	clock := start
	e := Emitter{Batch: 16, Now: func() time.Time {
		clock = clock.Add(30 * time.Millisecond)
		return clock
	}}
	// Budget so small it is already expired at the first check: the first
	// batch must still flush (never a bare timeout).
	out, err := e.Emit(cands, Contract{Budget: time.Millisecond, Budgeted: true}, start, sink.flush)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Exhausted || out.Reason != ReasonDeadline {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Emitted != 16 || len(sink.batches) != 1 {
		t.Fatalf("want exactly the first batch, got %d emitted in %d batches", out.Emitted, len(sink.batches))
	}
	if out.Frontier != cands[16].Weight || out.Last != cands[15] {
		t.Fatalf("resume position: %+v", out)
	}
}

func TestEmitMinConfidenceIsCompletion(t *testing.T) {
	cands := rankedCands(10) // weights 1.0, 0.9, ... 0.1
	var sink collectFlush
	e := Emitter{Batch: 4}
	out, err := e.Emit(cands, Contract{MinConfidence: 0.65, Budgeted: true}, time.Now(), sink.flush)
	if err != nil {
		t.Fatal(err)
	}
	if out.Exhausted {
		t.Fatalf("confidence floor is completion, not exhaustion: %+v", out)
	}
	if out.Reason != ReasonMinConfidence || out.Emitted != 4 {
		t.Fatalf("outcome: %+v", out)
	}
	// All-below-floor streams emit nothing and complete.
	out, err = e.Emit(cands, Contract{MinConfidence: 2, Budgeted: true}, time.Now(), (&collectFlush{}).flush)
	if err != nil {
		t.Fatal(err)
	}
	if out.Emitted != 0 || out.Exhausted || out.Reason != ReasonMinConfidence {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestEmitFlushErrorAborts(t *testing.T) {
	boom := errors.New("client gone")
	e := Emitter{Batch: 4}
	calls := 0
	_, err := e.Emit(rankedCands(10), Contract{}, time.Now(), func([]incremental.Candidate) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if calls != 2 {
		t.Fatalf("flush called %d times after error", calls)
	}
}

func TestSkipAfterResumesExactly(t *testing.T) {
	cands := rankedCands(20)
	// Introduce a weight tie to exercise the ID tiebreak.
	cands[7].Weight = cands[6].Weight
	for split := 0; split <= len(cands); split++ {
		var rest []incremental.Candidate
		if split == 0 {
			rest = SkipAfter(cands, cands[0].Weight+1, -1)
		} else {
			last := cands[split-1]
			rest = SkipAfter(cands, last.Weight, last.ID)
		}
		if len(rest) != len(cands)-split {
			t.Fatalf("split %d: got %d remaining, want %d", split, len(rest), len(cands)-split)
		}
		for i, c := range rest {
			if c != cands[split+i] {
				t.Fatalf("split %d: remainder diverged at %d", split, i)
			}
		}
	}
}
