package experiments

import (
	"time"

	"metablocking/internal/blockproc"
	"metablocking/internal/eval"
)

// BaselineResult is one baseline method's performance on one dataset.
type BaselineResult struct {
	Dataset     string
	Method      string
	Comparisons int64
	PC, PQ      float64
	OTime       time.Duration
}

// Table6 evaluates the baseline block-processing methods: Graph-free
// Meta-blocking tuned for efficiency-intensive (r=0.25) and
// effectiveness-intensive (r=0.55) applications, and Iterative Blocking
// with an oracle matcher and smallest-first block ordering (§6.4).
func (s *Suite) Table6() []BaselineResult {
	var out []BaselineResult

	run := func(label string, f func(p *Prepared) BaselineResult) {
		s.printf("\n--- %s ---\n", label)
		s.prunePrintHeader()
		for _, p := range s.Datasets() {
			r := f(p)
			out = append(out, r)
			s.prunePrint("", PruneResult{
				Dataset:     r.Dataset,
				Comparisons: r.Comparisons,
				PC:          r.PC,
				PQ:          r.PQ,
				OTime:       r.OTime,
			})
		}
	}

	s.printf("\n=== Table 6: Baseline methods ===\n")
	graphFree := func(ratio float64) func(p *Prepared) BaselineResult {
		return func(p *Prepared) BaselineResult {
			start := time.Now()
			pairs := blockproc.GraphFreeMetaBlocking{Ratio: ratio}.Apply(p.Original)
			otime := time.Since(start)
			rep := eval.EvaluatePairs(pairs, p.Dataset.GroundTruth, p.Original.Comparisons())
			return BaselineResult{
				Dataset:     p.Dataset.Name,
				Method:      "graph-free",
				Comparisons: rep.Comparisons,
				PC:          rep.PC(),
				PQ:          rep.PQ(),
				OTime:       otime,
			}
		}
	}
	run("(a) Efficiency-intensive Graph-free Meta-blocking (r=0.25)", graphFree(0.25))
	run("(b) Effectiveness-intensive Graph-free Meta-blocking (r=0.55)", graphFree(0.55))
	run("(c) Iterative Blocking", func(p *Prepared) BaselineResult {
		start := time.Now()
		res := blockproc.IterativeBlocking{
			Matcher: blockproc.OracleMatcher{GT: p.Dataset.GroundTruth},
		}.Run(p.Original)
		otime := time.Since(start)
		detected := len(res.Matches)
		return BaselineResult{
			Dataset:     p.Dataset.Name,
			Method:      "iterative",
			Comparisons: res.Comparisons,
			PC:          float64(detected) / float64(p.Dataset.GroundTruth.Size()),
			PQ:          float64(detected) / float64(res.Comparisons),
			OTime:       otime,
		}
	})
	return out
}
