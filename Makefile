GO ?= go

.PHONY: check race ci bench-parallel

## check: vet, build and test everything (the tier-1 gate).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: run the packages with concurrency — including the root package's
## observability/cancellation tests — under the race detector.
race:
	$(GO) test -race . ./internal/core/... ./internal/block/... ./internal/blocking/... ./internal/obs/...

## ci: what the GitHub Actions workflow runs (check + race).
ci: check race

## bench-parallel: regenerate the worker-sweep numbers of
## results_parallel_scale0.5.txt (honest wall-clock depends on host cores).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 5x .
