package shard

import (
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/incremental"
)

// TestPeekExcludingReproducesResolve is the sharded twin of the
// single-index resume-gather test: immediately after a resolve commits,
// PeekExcluding(profile, id) must reproduce the resolve's candidate list
// bit-identically at every shard count — the coordinator compensates the
// global block sizes, the ECBS block count and the home shard's reply
// for the committed profile's own contribution.
func TestPeekExcludingReproducesResolve(t *testing.T) {
	ds := datagen.D1D(0.1)
	profiles := ds.Collection.Profiles[:300]
	configs := []incremental.Config{
		{Scheme: core.JS, K: 5},
		{Scheme: core.ARCS, K: 5},
		{Scheme: core.ECBS},
		{Scheme: core.CBS, K: 5, MaxBlockSize: 7},
	}
	for _, shards := range []int{1, 4} {
		for _, rcfg := range configs {
			g, err := New(Config{Resolver: rcfg, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for i := range profiles {
				res, err := g.Resolve(profiles[i])
				if err != nil {
					t.Fatalf("shards=%d %+v: resolve %d: %v", shards, rcfg, i, err)
				}
				got, err := g.PeekExcluding(profiles[i], res.ID)
				if err != nil {
					t.Fatalf("shards=%d %+v: PeekExcluding(%d): %v", shards, rcfg, res.ID, err)
				}
				if !reflect.DeepEqual(got, res.Candidates) {
					t.Fatalf("shards=%d %+v: profile %d: resume gather diverged\n got %v\nwant %v",
						shards, rcfg, res.ID, got, res.Candidates)
				}
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPeekExcludingRejectsUnknownID(t *testing.T) {
	g, err := New(Config{Resolver: incremental.Config{Scheme: core.JS, K: 5}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	p := datagen.D1D(0.1).Collection.Profiles[0]
	if _, err := g.Resolve(p); err != nil {
		t.Fatal(err)
	}
	if _, err := g.PeekExcluding(p, 7); err == nil {
		t.Fatal("out-of-range exclude accepted")
	}
}

// TestOnGatherHookObservesEveryShard pins the early-emit hook: one call
// per live shard per gather, reporting its weighed-neighbor count.
func TestOnGatherHookObservesEveryShard(t *testing.T) {
	type obsv struct{ shard, weighed int }
	var seen []obsv
	g, err := New(Config{
		Resolver: incremental.Config{Scheme: core.JS, K: 5},
		Shards:   4,
		OnGather: func(shard, weighed int) { seen = append(seen, obsv{shard, weighed}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ds := datagen.D1D(0.1)
	total := 0
	for i := 0; i < 20; i++ {
		if _, err := g.Resolve(ds.Collection.Profiles[i]); err != nil {
			t.Fatal(err)
		}
		total += 4
		if len(seen) != total {
			t.Fatalf("after resolve %d: %d observations, want %d", i, len(seen), total)
		}
		for _, o := range seen[total-4:] {
			if o.shard < 0 || o.shard >= 4 || o.weighed < 0 {
				t.Fatalf("bad observation %+v", o)
			}
		}
	}
}
