package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/incremental"
)

// BenchmarkServerResolve measures the batched resolve path end to end
// (admission queue → micro-batch → index pass → reply), with concurrent
// submitters so batches actually coalesce.
func BenchmarkServerResolve(b *testing.B) {
	profiles := testProfiles(b, 1000)
	s, err := New(Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    64,
		QueueDepth:  8192,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(8) // 8 submitters per proc so micro-batches coalesce
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Resolve(ctx, profiles[i%len(profiles)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	batches := s.Metrics().Counter(CtrBatches).Value()
	if batches > 0 {
		b.ReportMetric(float64(s.Metrics().Counter(CtrBatchedProfs).Value())/float64(batches), "profiles/batch")
	}
}

// BenchmarkServerResolveShards sweeps the scatter-gather coordinator at
// 1, 4 and 16 shards on the same batched harness. On a multicore host
// the per-shard single-writer actors resolve gathers in parallel; on a
// single-CPU host the sweep measures pure coordination overhead instead.
func BenchmarkServerResolveShards(b *testing.B) {
	profiles := testProfiles(b, 1000)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := New(Config{
				Resolver:    incremental.Config{Scheme: core.JS, K: 10},
				Shards:      shards,
				BatchWindow: 200 * time.Microsecond,
				MaxBatch:    64,
				QueueDepth:  8192,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := s.Resolve(ctx, profiles[i%len(profiles)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
