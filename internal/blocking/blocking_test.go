package blocking

import (
	"reflect"
	"strings"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

// TestTokenBlockingPaperExample verifies that Token Blocking reproduces the
// paper's Figure 1(b) exactly: the 8 blocks, their members, and the 13
// comparisons.
func TestTokenBlockingPaperExample(t *testing.T) {
	c := paperexample.Collection()
	got := TokenBlocking{}.Build(c)
	want := paperexample.Blocks()

	if got.Len() != len(want) {
		t.Fatalf("|B| = %d, want %d", got.Len(), len(want))
	}
	for i := range got.Blocks {
		b := &got.Blocks[i]
		members, ok := want[b.Key]
		if !ok {
			t.Errorf("unexpected block %q", b.Key)
			continue
		}
		if !reflect.DeepEqual(b.E1, members) {
			t.Errorf("block %q = %v, want %v", b.Key, b.E1, members)
		}
	}
	if got.Comparisons() != 13 {
		t.Errorf("‖B‖ = %d, want 13 (paper §1)", got.Comparisons())
	}
	// Both duplicate pairs co-occur in at least one block.
	if det := got.DetectedDuplicates(paperexample.GroundTruth()); det != 2 {
		t.Errorf("|D(B)| = %d, want 2", det)
	}
}

func TestTokenBlockingCleanClean(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewCleanClean(
		[]entity.Profile{mk("alpha beta"), mk("gamma")},
		[]entity.Profile{mk("beta delta"), mk("epsilon gamma")},
	)
	blocks := TokenBlocking{}.Build(c)
	// Valid blocks need one member from each side: beta {0}×{2},
	// gamma {1}×{3}. alpha/delta/epsilon are single-source.
	if blocks.Len() != 2 {
		t.Fatalf("|B| = %d, want 2: %+v", blocks.Len(), blocks.Blocks)
	}
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		if len(b.E1) == 0 || len(b.E2) == 0 {
			t.Errorf("block %q lacks a side: %v | %v", b.Key, b.E1, b.E2)
		}
	}
	if blocks.Comparisons() != 2 {
		t.Fatalf("‖B‖ = %d, want 2", blocks.Comparisons())
	}
	if blocks.Split != 2 {
		t.Fatalf("Split = %d, want 2", blocks.Split)
	}
}

func TestTokenBlockingMinTokenLength(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewDirty([]entity.Profile{mk("ab longtoken"), mk("ab longtoken")})
	all := TokenBlocking{}.Build(c)
	if all.Len() != 2 {
		t.Fatalf("|B| = %d, want 2", all.Len())
	}
	long := TokenBlocking{MinTokenLength: 3}.Build(c)
	if long.Len() != 1 || long.Blocks[0].Key != "longtoken" {
		t.Fatalf("MinTokenLength did not drop short tokens: %+v", long.Blocks)
	}
}

func TestTokenBlockingDeduplicatesProfileTokens(t *testing.T) {
	var p1, p2 entity.Profile
	p1.Add("a", "dup dup dup")
	p2.Add("b", "dup")
	c := entity.NewDirty([]entity.Profile{p1, p2})
	blocks := TokenBlocking{}.Build(c)
	if blocks.Len() != 1 {
		t.Fatalf("|B| = %d, want 1", blocks.Len())
	}
	if got := blocks.Blocks[0].E1; !reflect.DeepEqual(got, []entity.ID{0, 1}) {
		t.Fatalf("members = %v: repeated tokens must not duplicate assignments", got)
	}
}

func TestTokenBlockingDeterminism(t *testing.T) {
	c := paperexample.Collection()
	a := TokenBlocking{}.Build(c)
	b := TokenBlocking{}.Build(c)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Token Blocking output is not deterministic")
	}
}

func TestQGramsBlocking(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	// "miller" vs the typo "millar" share no token but share q-grams.
	c := entity.NewDirty([]entity.Profile{mk("miller"), mk("millar")})
	tokens := TokenBlocking{}.Build(c)
	if tokens.Len() != 0 {
		t.Fatalf("token blocking should produce no blocks, got %d", tokens.Len())
	}
	grams := QGramsBlocking{Q: 3}.Build(c)
	if grams.Len() == 0 {
		t.Fatal("q-grams blocking must co-block the typo variants")
	}
	if grams.DetectedDuplicates(entity.NewGroundTruth([]entity.Pair{{A: 0, B: 1}})) != 1 {
		t.Fatal("typo pair not detected by q-grams")
	}
	// Short tokens are kept whole.
	c2 := entity.NewDirty([]entity.Profile{mk("ab"), mk("ab")})
	g2 := QGramsBlocking{}.Build(c2)
	if g2.Len() != 1 || g2.Blocks[0].Key != "ab" {
		t.Fatalf("short tokens must block whole: %+v", g2.Blocks)
	}
}

func TestQGramsDefaultQ(t *testing.T) {
	if (QGramsBlocking{}).size() != 3 || (QGramsBlocking{Q: 4}).size() != 4 {
		t.Fatal("unexpected q defaults")
	}
}

func TestSuffixArrayBlocking(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	// "johnson" and "johnsen"? No common suffix of length >= 4 except...
	// "nson"/"nsen" differ. Use "anderson" and "henderson": common
	// suffixes "nderson", "derson", "erson", "rson" (>= MinLength 4).
	c := entity.NewDirty([]entity.Profile{mk("anderson"), mk("henderson")})
	blocks := SuffixArrayBlocking{MinLength: 4}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("no common suffix blocks found")
	}
	keys := make(map[string]bool)
	for i := range blocks.Blocks {
		keys[blocks.Blocks[i].Key] = true
	}
	for _, want := range []string{"nderson", "derson", "erson", "rson"} {
		if !keys[want] {
			t.Errorf("missing suffix block %q (have %v)", want, keys)
		}
	}
	for key := range keys {
		if len(key) < 4 {
			t.Errorf("suffix %q shorter than MinLength", key)
		}
		if !strings.HasSuffix("anderson", key) || !strings.HasSuffix("henderson", key) {
			t.Errorf("block key %q is not a shared suffix", key)
		}
	}
}

func TestSuffixArrayMaxBlockSize(t *testing.T) {
	var profiles []entity.Profile
	for i := 0; i < 10; i++ {
		var p entity.Profile
		p.Add("v", "common")
		profiles = append(profiles, p)
	}
	c := entity.NewDirty(profiles)
	blocks := SuffixArrayBlocking{MinLength: 4, MaxBlockSize: 5}.Build(c)
	if blocks.Len() != 0 {
		t.Fatalf("oversized suffix blocks must be dropped, got %d blocks", blocks.Len())
	}
}

func TestAttributeClusteringBlocking(t *testing.T) {
	mk := func(name, value string) entity.Profile {
		var p entity.Profile
		p.Add(name, value)
		return p
	}
	// "title" and "name" share vocabulary; "year" values are disjoint
	// numbers that also appear inside titles — attribute clustering keeps
	// the 2001 in "year" from blocking with the 2001 in "title" only if
	// the attributes land in different clusters.
	c := entity.NewCleanClean(
		[]entity.Profile{
			mk("title", "space odyssey 2001 film"),
			mk("year", "2001"),
		},
		[]entity.Profile{
			mk("name", "space odyssey 2001 movie film"),
			mk("released", "1999"),
		},
	)
	blocks := AttributeClusteringBlocking{Threshold: 0.2}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("no blocks produced")
	}
	// The duplicate pair (0, 2) must still co-occur.
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 2}})
	if blocks.DetectedDuplicates(gt) != 1 {
		t.Fatal("duplicate pair lost by attribute clustering")
	}
	// Every key carries a cluster prefix.
	for i := range blocks.Blocks {
		if !strings.Contains(blocks.Blocks[i].Key, "#") {
			t.Fatalf("key %q lacks cluster prefix", blocks.Blocks[i].Key)
		}
	}
}

func TestStandardBlockingDisjoint(t *testing.T) {
	c := paperexample.Collection()
	blocks := StandardBlocking{}.Build(c)
	seen := make(map[entity.ID]int)
	for i := range blocks.Blocks {
		for _, id := range blocks.Blocks[i].E1 {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n > 1 {
			t.Fatalf("profile %d appears in %d blocks; standard blocking must be disjoint", id, n)
		}
	}
}

func TestStandardBlockingCustomKey(t *testing.T) {
	c := paperexample.Collection()
	blocks := StandardBlocking{Key: func(p *entity.Profile) string {
		return "same-for-everyone"
	}}.Build(c)
	if blocks.Len() != 1 || blocks.Blocks[0].Size() != 6 {
		t.Fatalf("expected one block of 6, got %+v", blocks.Blocks)
	}
}

func TestFirstTokenKey(t *testing.T) {
	var p entity.Profile
	p.Add("empty", "   ")
	p.Add("name", "Jack Miller")
	if got := FirstTokenKey(&p); got != "jack" {
		t.Fatalf("FirstTokenKey = %q, want jack", got)
	}
	var empty entity.Profile
	if FirstTokenKey(&empty) != "" {
		t.Fatal("empty profile must yield empty key")
	}
}

func TestSortedNeighborhoodWindow(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewDirty([]entity.Profile{
		mk("alpha"), mk("beta"), mk("gamma"), mk("delta"), mk("epsilon"),
	})
	blocks := SortedNeighborhood{Window: 2}.Build(c)
	// Sorted keys: alpha(0) beta(1) delta(3) epsilon(4) gamma(2); windows
	// of 2 → 4 blocks, each with exactly 1 comparison.
	if blocks.Len() != 4 {
		t.Fatalf("|B| = %d, want 4", blocks.Len())
	}
	for i := range blocks.Blocks {
		if blocks.Blocks[i].Comparisons() != 1 {
			t.Fatalf("window block %d has %d comparisons, want 1", i, blocks.Blocks[i].Comparisons())
		}
	}
	// Redundancy-neutral: adjacent profiles co-occur in at most Window-1
	// windows regardless of similarity.
	idx := block.NewEntityIndex(blocks)
	if idx.CommonBlocks(0, 1) != 1 {
		t.Fatalf("adjacent pair shares %d blocks, want 1", idx.CommonBlocks(0, 1))
	}
}

func TestSortedNeighborhoodCleanClean(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewCleanClean(
		[]entity.Profile{mk("aaa"), mk("ccc")},
		[]entity.Profile{mk("aab"), mk("ddd")},
	)
	blocks := SortedNeighborhood{Window: 2}.Build(c)
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		if len(b.E1) == 0 || len(b.E2) == 0 {
			t.Fatalf("clean-clean window block without both sides: %+v", b)
		}
	}
}

func TestMethodNames(t *testing.T) {
	methods := []Method{
		TokenBlocking{}, QGramsBlocking{}, SuffixArrayBlocking{},
		AttributeClusteringBlocking{}, StandardBlocking{}, SortedNeighborhood{},
	}
	seen := make(map[string]bool)
	for _, m := range methods {
		name := m.Name()
		if name == "" || seen[name] {
			t.Fatalf("method name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}
