// Package dataio reads and writes entity collections, ground truths and
// comparison lists in interchange formats: the CSV layout used by the
// command-line tools and a JSONL layout for streaming pipelines.
//
// CSV profiles (header required): id,source,attribute,value — rows with
// the same id form one profile; source is 1 or 2 and any source-2 row
// makes the task Clean-Clean ER. Ground truth CSV: id1,id2 per line.
//
// JSONL profiles: one object per line,
// {"id": 0, "source": 1, "attributes": {"name": ["Jack Miller"], ...}}.
package dataio

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"metablocking/internal/entity"
)

// rawProfile accumulates one profile's rows before densification.
type rawProfile struct {
	source int
	attrs  []entity.Attribute
}

// assemble densifies raw profiles into a collection, source 1 first.
func assemble(profiles map[int]*rawProfile) (*entity.Collection, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("dataio: no profiles in input")
	}
	order := make([]int, 0, len(profiles))
	for id := range profiles {
		order = append(order, id)
	}
	sort.Ints(order)
	var e1, e2 []entity.Profile
	for _, id := range order {
		p := entity.Profile{Attributes: profiles[id].attrs}
		if profiles[id].source == 1 {
			e1 = append(e1, p)
		} else {
			e2 = append(e2, p)
		}
	}
	if len(e2) == 0 {
		return entity.NewDirty(e1), nil
	}
	return entity.NewCleanClean(e1, e2), nil
}

// ReadProfilesCSV parses the id,source,attribute,value layout.
func ReadProfilesCSV(r io.Reader) (*entity.Collection, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	profiles := make(map[int]*rawProfile)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if strings.EqualFold(rec[0], "id") {
				continue // header
			}
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataio: bad profile id %q: %v", rec[0], err)
		}
		source, err := strconv.Atoi(rec[1])
		if err != nil || (source != 1 && source != 2) {
			return nil, fmt.Errorf("dataio: bad source %q (want 1 or 2)", rec[1])
		}
		p := profiles[id]
		if p == nil {
			p = &rawProfile{source: source}
			profiles[id] = p
		}
		if p.source != source {
			return nil, fmt.Errorf("dataio: profile %d appears in both sources", id)
		}
		p.attrs = append(p.attrs, entity.Attribute{Name: rec[2], Value: rec[3]})
	}
	return assemble(profiles)
}

// WriteProfilesCSV writes a collection in the CSV layout.
func WriteProfilesCSV(w io.Writer, c *entity.Collection) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"id", "source", "attribute", "value"}); err != nil {
		return err
	}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		source := "1"
		if c.Task == entity.CleanClean && !c.InFirst(p.ID) {
			source = "2"
		}
		for _, a := range p.Attributes {
			if err := cw.Write([]string{strconv.Itoa(int(p.ID)), source, a.Name, a.Value}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonlProfile is the JSONL record shape.
type jsonlProfile struct {
	ID         int                 `json:"id"`
	Source     int                 `json:"source"`
	Attributes map[string][]string `json:"attributes"`
}

// ParseProfileJSON decodes a single JSONL profile record —
// {"id": 0, "source": 1, "attributes": {"name": ["Jack Miller"], ...}} —
// into a Profile. The id and source fields are ignored: callers that
// assign IDs by arrival order (cmd/stream, the resolve server) own them.
// Attribute names are emitted in sorted order so the profile is
// deterministic regardless of JSON map iteration.
func ParseProfileJSON(line []byte) (entity.Profile, error) {
	var rec jsonlProfile
	if err := json.Unmarshal(line, &rec); err != nil {
		return entity.Profile{}, fmt.Errorf("dataio: %v", err)
	}
	var p entity.Profile
	names := make([]string, 0, len(rec.Attributes))
	for name := range rec.Attributes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, value := range rec.Attributes[name] {
			p.Add(name, value)
		}
	}
	return p, nil
}

// MarshalProfileJSON encodes a profile as one JSONL record — the shape
// ParseProfileJSON reads. Attributes with the same name are grouped, so
// Parse(Marshal(p)) yields p with attributes grouped by sorted name; two
// marshal/parse round trips are idempotent.
func MarshalProfileJSON(p entity.Profile) ([]byte, error) {
	attrs := make(map[string][]string, len(p.Attributes))
	for _, a := range p.Attributes {
		attrs[a.Name] = append(attrs[a.Name], a.Value)
	}
	return json.Marshal(jsonlProfile{ID: int(p.ID), Source: 1, Attributes: attrs})
}

// ReadProfilesJSONL parses one JSON object per line.
func ReadProfilesJSONL(r io.Reader) (*entity.Collection, error) {
	profiles := make(map[int]*rawProfile)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec jsonlProfile
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("dataio: line %d: %v", line, err)
		}
		if rec.Source == 0 {
			rec.Source = 1
		}
		if rec.Source != 1 && rec.Source != 2 {
			return nil, fmt.Errorf("dataio: line %d: bad source %d", line, rec.Source)
		}
		p := profiles[rec.ID]
		if p == nil {
			p = &rawProfile{source: rec.Source}
			profiles[rec.ID] = p
		} else if p.source != rec.Source {
			return nil, fmt.Errorf("dataio: profile %d appears in both sources", rec.ID)
		}
		// Deterministic attribute order within a record.
		names := make([]string, 0, len(rec.Attributes))
		for name := range rec.Attributes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, value := range rec.Attributes[name] {
				p.attrs = append(p.attrs, entity.Attribute{Name: name, Value: value})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return assemble(profiles)
}

// WriteProfilesJSONL writes a collection as one JSON object per line.
func WriteProfilesJSONL(w io.Writer, c *entity.Collection) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range c.Profiles {
		p := &c.Profiles[i]
		source := 1
		if c.Task == entity.CleanClean && !c.InFirst(p.ID) {
			source = 2
		}
		attrs := make(map[string][]string)
		for _, a := range p.Attributes {
			attrs[a.Name] = append(attrs[a.Name], a.Value)
		}
		if err := enc.Encode(jsonlProfile{ID: int(p.ID), Source: source, Attributes: attrs}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGroundTruthCSV parses id1,id2 lines.
func ReadGroundTruthCSV(r io.Reader) (*entity.GroundTruth, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var pairs []entity.Pair
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a, err1 := strconv.Atoi(rec[0])
		b, err2 := strconv.Atoi(rec[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("dataio: bad truth pair %v", rec)
		}
		pairs = append(pairs, entity.MakePair(entity.ID(a), entity.ID(b)))
	}
	return entity.NewGroundTruth(pairs), nil
}

// WritePairsCSV writes comparison pairs as id1,id2 lines.
func WritePairsCSV(w io.Writer, pairs []entity.Pair) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	for _, p := range pairs {
		if err := cw.Write([]string{strconv.Itoa(int(p.A)), strconv.Itoa(int(p.B))}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
