package metablocking_test

import (
	"fmt"

	mb "metablocking"
)

// The package-level example walks through the paper's running example
// (Figure 1): six noisy profiles, Token Blocking, and Reciprocal WNP
// pruning down to the four comparisons of Figure 9.
func Example() {
	mk := func(pairs ...string) mb.Profile {
		var p mb.Profile
		for i := 0; i+1 < len(pairs); i += 2 {
			p.Add(pairs[i], pairs[i+1])
		}
		return p
	}
	collection := mb.NewDirty([]mb.Profile{
		mk("FullName", "Jack Lloyd Miller", "job", "autoseller"),
		mk("name", "Erick Green", "profession", "vehicle vendor"),
		mk("fullname", "Jack Miller", "Work", "car vendor-seller"),
		mk("name", "Erick Lloyd Green", "profession", "car trader"),
		mk("Fullname", "James Jordan", "job", "car seller"),
		mk("name", "Nick Papas", "profession", "car dealer"),
	})

	res, err := mb.Pipeline{
		DisablePurging: true, // keep the walk-through numbers exact
		Scheme:         mb.JS,
		Algorithm:      mb.ReciprocalWNP,
	}.Run(collection)
	if err != nil {
		panic(err)
	}
	fmt.Printf("input comparisons: %d\n", res.InputComparisons)
	fmt.Printf("retained: %d\n", len(res.Pairs))
	// Output:
	// input comparisons: 13
	// retained: 4
}

// ExamplePipeline_graphFree shows the blocking-graph-free workflow of
// Figure 7(b): Block Filtering plus Comparison Propagation.
func ExamplePipeline_graphFree() {
	ds := mb.GenerateDataset(mb.D1C, 0.02)
	res, err := mb.Pipeline{GraphFree: true, FilterRatio: 0.55}.Run(ds.Collection)
	if err != nil {
		panic(err)
	}
	rep := mb.Evaluate(res.Pairs, ds.GroundTruth, res.InputComparisons)
	fmt.Printf("recall above 0.9: %v\n", rep.PC() > 0.9)
	// Output:
	// recall above 0.9: true
}

// ExampleEvaluate demonstrates the paper's effectiveness measures.
func ExampleEvaluate() {
	gt := mb.NewGroundTruth([]mb.Pair{{A: 0, B: 1}, {A: 2, B: 3}})
	retained := []mb.Pair{{A: 0, B: 1}, {A: 1, B: 2}} // one hit, one miss
	rep := mb.Evaluate(retained, gt, 100)
	fmt.Printf("PC=%.2f PQ=%.2f RR=%.2f\n", rep.PC(), rep.PQ(), rep.RR())
	// Output:
	// PC=0.50 PQ=0.50 RR=0.98
}
