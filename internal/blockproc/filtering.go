package blockproc

import (
	"metablocking/internal/arena"
	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
	"metablocking/internal/par"
)

// BlockFiltering removes every profile from the least important of its
// blocks (paper §4.1, Algorithm 1). Block importance is the inverse of
// block cardinality: the fewer comparisons a block contains, the more
// important it is for its members. Each profile is retained only in the
// first ⌈r·|Bi|⌉ of its blocks after sorting all blocks from the smallest
// to the largest cardinality.
//
// The zero value is not useful; set Ratio explicitly (the paper fine-tunes
// r = 0.80 for pre-processing, §6.2).
type BlockFiltering struct {
	// Ratio is the filtering ratio r in (0, 1]: the portion of each
	// profile's blocks (the smallest ones) in which it is retained.
	Ratio float64
	// GlobalThreshold, when positive, replaces the per-profile limit with
	// one global maximum number of block assignments for all profiles.
	// The paper reports this variant performs poorly (§4.1); it is kept
	// for the ablation benchmarks.
	GlobalThreshold int
	// Workers parallelizes the clone, the cardinality sort, the per-entity
	// count pass and the limit pass: 0 or 1 keeps the serial
	// implementation, negative uses GOMAXPROCS. The retain pass is
	// inherently sequential (each removal depends on all prior blocks) and
	// stays serial; output is identical for any worker count.
	Workers int
	// Obs is the optional observability handle: it receives the filter
	// stage's progress over the sorted blocks and the workers.filter gauge,
	// and is polled for cancellation between passes and once per stride of
	// the retain loop. When Obs's context is canceled Apply returns a
	// partial collection the caller must discard after checking Obs.Err.
	Obs *obs.Observer
}

// Apply restructures the collection per Algorithm 1 and returns the result.
// The input is not modified. The output blocks are ordered by ascending
// cardinality (the processing order of the algorithm), which downstream
// methods such as Iterative Blocking also assume.
func (f BlockFiltering) Apply(c *block.Collection) *block.Collection {
	o := f.Obs
	workers := par.Resolve(f.Workers, len(c.Blocks))
	o.Gauge(obs.GaugeWorkersFilter).Set(int64(workers))
	out := &block.Collection{Task: c.Task, NumEntities: c.NumEntities, Split: c.Split}
	sorted := c.CloneWorkers(workers)
	sorted.SortByCardinalityWorkers(workers) // orderBlocks: descending importance
	if o.Canceled() {
		return out
	}

	// getThresholds: the per-profile limit ⌈r·|Bi|⌉ (at least 1 so no
	// profile disappears from all blocks).
	counts := assignmentCounts(sorted, workers)
	if o.Canceled() {
		return out
	}
	limits := make([]int32, c.NumEntities)
	par.Ranges(par.Resolve(workers, len(limits)), len(limits), func(_, lo, hi int) {
		for id := lo; id < hi; id++ {
			if f.GlobalThreshold > 0 {
				limits[id] = int32(f.GlobalThreshold)
				continue
			}
			limit := int32(f.Ratio*float64(counts[id]) + 0.5)
			if limit < 1 {
				limit = 1
			}
			limits[id] = limit
		}
	})

	meter := o.NewMeter(obs.StageFilter, int64(len(sorted.Blocks)))
	counters := make([]int32, c.NumEntities)
	// All retained member lists are carved from one slab arena: they share
	// the output collection's lifetime, so the retain loop does a handful
	// of slab allocations instead of two per block.
	var members arena.Arena[entity.ID]
	for i := range sorted.Blocks {
		if i&obs.StrideMask == obs.StrideMask {
			meter.Add(obs.Stride)
			if o.Canceled() {
				return out
			}
		}
		b := &sorted.Blocks[i]
		e1 := filterMembers(b.E1, counters, limits, &members)
		var e2 []entity.ID
		if b.E2 != nil {
			e2 = filterMembers(b.E2, counters, limits, &members)
		}
		if !retainBlock(c.Task, e1, e2) {
			continue
		}
		nb := block.Block{Key: b.Key, E1: e1}
		if b.E2 != nil {
			nb.E2 = e2
		}
		out.Blocks = append(out.Blocks, nb)
	}
	meter.Add(int64(len(sorted.Blocks)) & obs.StrideMask)
	return out
}

// assignmentCounts returns |Bi| per entity: with multiple workers, each
// worker counts a disjoint block range into a private array and the
// per-worker arrays are summed over disjoint entity ranges (integer
// addition commutes, so the result is exact regardless of partitioning).
func assignmentCounts(c *block.Collection, workers int) []int32 {
	counts := make([]int32, c.NumEntities)
	if workers <= 1 {
		countRange(c, 0, len(c.Blocks), counts)
		return counts
	}
	partial := make([][]int32, workers)
	par.Ranges(workers, len(c.Blocks), func(w, lo, hi int) {
		p := make([]int32, c.NumEntities)
		countRange(c, lo, hi, p)
		partial[w] = p
	})
	par.Ranges(par.Resolve(workers, c.NumEntities), c.NumEntities, func(_, lo, hi int) {
		for _, p := range partial {
			if p == nil {
				continue
			}
			for id := lo; id < hi; id++ {
				counts[id] += p[id]
			}
		}
	})
	return counts
}

func countRange(c *block.Collection, lo, hi int, counts []int32) {
	for i := lo; i < hi; i++ {
		b := &c.Blocks[i]
		for _, id := range b.E1 {
			counts[id]++
		}
		for _, id := range b.E2 {
			counts[id]++
		}
	}
}

// filterMembers keeps the members still under their assignment limit,
// writing the result into a slice carved from the members arena (capacity
// len(ids), so the appends never reallocate).
func filterMembers(ids []entity.ID, counters, limits []int32, members *arena.Arena[entity.ID]) []entity.ID {
	if len(ids) == 0 {
		return nil
	}
	kept := members.Alloc(len(ids))[:0]
	for _, id := range ids {
		if counters[id] >= limits[id] {
			continue // remove profile from this (less important) block
		}
		counters[id]++
		kept = append(kept, id)
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}
