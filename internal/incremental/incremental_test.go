package incremental

import (
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func mustResolver(t *testing.T, cfg Config) *Resolver {
	t.Helper()
	r, err := NewResolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRejectEJS(t *testing.T) {
	if _, err := NewResolver(Config{Scheme: core.EJS}); err == nil {
		t.Fatal("EJS must be rejected")
	}
}

func TestAddAssignsSequentialIDs(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.JS})
	c := paperexample.Collection()
	for i := range c.Profiles {
		id, _ := r.Add(c.Profiles[i])
		if id != entity.ID(i) {
			t.Fatalf("profile %d got ID %d", i, id)
		}
	}
	if r.Size() != 6 {
		t.Fatalf("Size = %d", r.Size())
	}
	if got := r.Profile(2).Attributes[0].Value; got != "Jack Miller" {
		t.Fatalf("Profile(2) = %q", got)
	}
}

func TestFirstProfileHasNoCandidates(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.JS})
	c := paperexample.Collection()
	_, cands := r.Add(c.Profiles[0])
	if len(cands) != 0 {
		t.Fatalf("first profile got candidates %v", cands)
	}
}

// TestPaperExampleStream streams the running example and checks that each
// duplicate's partner is proposed when the later profile arrives — with
// the strongest weight first.
func TestPaperExampleStream(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.JS, K: 2})
	c := paperexample.Collection()
	candidatesOf := make(map[entity.ID][]Candidate)
	for i := range c.Profiles {
		id, cands := r.Add(c.Profiles[i])
		candidatesOf[id] = cands
	}
	// p3 (ID 2) arrives after its duplicate p1 (ID 0): 0 must be its top
	// candidate (they share jack and miller).
	if cs := candidatesOf[2]; len(cs) == 0 || cs[0].ID != 0 {
		t.Fatalf("p3's candidates = %v, want p1 first", cs)
	}
	// p4 (ID 3) arrives after p2 (ID 1): 1 must be among its top-2.
	found := false
	for _, c := range candidatesOf[3] {
		if c.ID == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("p4's candidates = %v, want p2 included", candidatesOf[3])
	}
}

func TestCandidatesRespectK(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.CBS, K: 3})
	// Ten profiles all sharing one token: each new arrival sees at most
	// 3 candidates.
	for i := 0; i < 10; i++ {
		var p entity.Profile
		p.Add("v", "shared")
		_, cands := r.Add(p)
		if len(cands) > 3 {
			t.Fatalf("arrival %d got %d candidates", i, len(cands))
		}
		if i > 0 && len(cands) == 0 {
			t.Fatalf("arrival %d got no candidates", i)
		}
	}
}

func TestWeightPruningKeepsAboveMean(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.CBS}) // K=0 → mean threshold
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	r.Add(mk("aaa bbb ccc"))
	r.Add(mk("xxx yyy"))
	// Shares 3 tokens with profile 0 and none with profile 1.
	_, cands := r.Add(mk("aaa bbb ccc"))
	if len(cands) != 1 || cands[0].ID != 0 {
		t.Fatalf("candidates = %v, want only profile 0", cands)
	}
}

func TestMaxBlockSizeSkipsOversized(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.CBS, MaxBlockSize: 2})
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	r.Add(mk("stop common"))
	r.Add(mk("stop other"))
	r.Add(mk("stop more"))
	// "stop" now has 3 members > MaxBlockSize → ignored; the new profile
	// shares only "stop" and must get no candidates.
	_, cands := r.Add(mk("stop unique"))
	if len(cands) != 0 {
		t.Fatalf("oversized block leaked candidates: %v", cands)
	}
}

// TestStreamRecall streams a synthetic Dirty dataset and measures how many
// duplicate pairs were proposed when their second member arrived. The
// pruned candidate stream must preserve most of the recall of full Token
// Blocking (which is ~0.99 on this data).
func TestStreamRecall(t *testing.T) {
	ds := datagen.D1D(0.1)
	r := mustResolver(t, Config{Scheme: core.JS, K: 10})
	detected := 0
	for i := range ds.Collection.Profiles {
		id, cands := r.Add(ds.Collection.Profiles[i])
		for _, c := range cands {
			if ds.GroundTruth.Contains(id, c.ID) {
				detected++
			}
		}
	}
	recall := float64(detected) / float64(ds.GroundTruth.Size())
	if recall < 0.9 {
		t.Fatalf("incremental recall = %.3f, want ≥ 0.9", recall)
	}
	t.Logf("incremental recall %.3f with K=10", recall)
}

// TestSchemesProduceWeights sanity-checks each supported scheme.
func TestSchemesProduceWeights(t *testing.T) {
	for _, scheme := range []core.Scheme{core.ARCS, core.CBS, core.ECBS, core.JS} {
		r := mustResolver(t, Config{Scheme: scheme})
		mk := func(value string) entity.Profile {
			var p entity.Profile
			p.Add("v", value)
			return p
		}
		r.Add(mk("alpha beta"))
		_, cands := r.Add(mk("alpha beta"))
		if len(cands) != 1 || cands[0].Weight <= 0 {
			t.Fatalf("%v: candidates = %v", scheme, cands)
		}
	}
}
