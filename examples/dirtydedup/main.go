// Dirty ER (deduplication): clean a single collection that contains
// duplicates in itself — the off-line data-warehouse scenario the paper's
// effectiveness-intensive configurations target (§3).
//
// The example generates the synthetic D1D dataset, runs the full pipeline
// (Token Blocking → Block Purging → Block Filtering → Redefined WNP →
// Jaccard matching → clustering), and reports end-to-end quality.
//
//	go run ./examples/dirtydedup
package main

import (
	"fmt"
	"log"
	"time"

	mb "metablocking"
)

func main() {
	ds := mb.GenerateDataset(mb.D1D, 0.3)
	c := ds.Collection
	fmt.Printf("deduplicating %d profiles (%d duplicate pairs hidden inside)\n",
		c.Size(), ds.GroundTruth.Size())

	start := time.Now()
	res, err := mb.Pipeline{
		FilterRatio: 0.8,
		Scheme:      mb.ECBS,
		Algorithm:   mb.RedefinedWNP, // effectiveness-intensive: PC > 0.95
	}.Run(c)
	if err != nil {
		log.Fatal(err)
	}
	rep := mb.Evaluate(res.Pairs, ds.GroundTruth, c.BruteForceComparisons())
	fmt.Printf("meta-blocking: %d of %d brute-force comparisons retained (RR=%.3f), PC=%.3f, in %v\n",
		len(res.Pairs), c.BruteForceComparisons(), rep.RR(), rep.PC(), res.OTime)

	// Resolve: match the retained comparisons and build clusters.
	matcher := mb.NewJaccardMatcher(c, 0.35)
	matches := mb.Matches(matcher, res.Pairs)
	clusters := mb.Cluster(c, matches)
	fmt.Printf("matching: %d pairs above threshold → %d duplicate clusters (total %v)\n",
		len(matches), len(clusters), time.Since(start))

	// How good was the end-to-end resolution against the ground truth?
	truePos := 0
	for _, p := range matches {
		if ds.GroundTruth.Contains(p.A, p.B) {
			truePos++
		}
	}
	fmt.Printf("end-to-end: precision %.3f, recall %.3f\n",
		float64(truePos)/float64(len(matches)),
		float64(truePos)/float64(ds.GroundTruth.Size()))
}
