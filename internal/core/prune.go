package core

import (
	"fmt"

	"metablocking/internal/entity"
	"metablocking/internal/floatsum"
)

// Algorithm selects the pruning algorithm applied to the blocking graph.
type Algorithm int

const (
	// CEP — Cardinality Edge Pruning: retains the top-K edges of the
	// entire graph, K = ⌊Σ|b|/2⌋.
	CEP Algorithm = iota
	// CNP — Cardinality Node Pruning: retains the top-k edges of every
	// node neighborhood, k = ⌊Σ|b|/|E|−1⌋. The original formulation keeps
	// an edge once per endpoint that ranked it, yielding redundant
	// comparisons.
	CNP
	// WEP — Weighted Edge Pruning: retains edges at or above the mean
	// edge weight of the entire graph.
	WEP
	// WNP — Weighted Node Pruning: retains, per node, the edges at or
	// above the neighborhood's mean weight; like CNP it yields redundant
	// comparisons.
	WNP
	// RedefinedCNP (§5.1, Alg. 4) retains an edge once if it ranks in the
	// top-k of either incident node — CNP recall with no redundancy.
	RedefinedCNP
	// ReciprocalCNP (§5.2) retains an edge only if it ranks in the top-k
	// of both incident nodes.
	ReciprocalCNP
	// RedefinedWNP (§5.1, Alg. 5) retains an edge once if it meets the
	// weight threshold of either incident neighborhood.
	RedefinedWNP
	// ReciprocalWNP (§5.2) retains an edge only if it meets the weight
	// thresholds of both incident neighborhoods.
	ReciprocalWNP
)

// AllAlgorithms lists every pruning algorithm.
var AllAlgorithms = []Algorithm{CEP, CNP, WEP, WNP, RedefinedCNP, ReciprocalCNP, RedefinedWNP, ReciprocalWNP}

// String returns the algorithm's name as used in the paper.
func (a Algorithm) String() string {
	switch a {
	case CEP:
		return "CEP"
	case CNP:
		return "CNP"
	case WEP:
		return "WEP"
	case WNP:
		return "WNP"
	case RedefinedCNP:
		return "Redefined CNP"
	case ReciprocalCNP:
		return "Reciprocal CNP"
	case RedefinedWNP:
		return "Redefined WNP"
	case ReciprocalWNP:
		return "Reciprocal WNP"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// NodeCentric reports whether the algorithm prunes per node neighborhood.
func (a Algorithm) NodeCentric() bool { return a != CEP && a != WEP }

// edges dispatches to the configured edge traversal.
func (g *Graph) edges(fn func(i, j entity.ID, w float64)) {
	if g.OriginalWeighting {
		g.ForEachEdgeOriginal(fn)
		return
	}
	g.ForEachEdge(fn)
}

// nodes dispatches to the configured node traversal.
func (g *Graph) nodes(fn func(i entity.ID, neighbors []entity.ID, weights []float64)) {
	if g.OriginalWeighting {
		g.ForEachNodeOriginal(fn)
		return
	}
	g.ForEachNode(fn)
}

// Prune applies the given pruning algorithm and returns the retained
// comparisons. For the original node-centric algorithms (CNP, WNP) the
// result may contain the same pair twice — those are exactly the redundant
// comparisons the Redefined variants eliminate.
func (g *Graph) Prune(a Algorithm) []entity.Pair {
	switch a {
	case CEP:
		return g.cep()
	case CNP:
		return g.cnp()
	case WEP:
		return g.wep()
	case WNP:
		return g.wnp()
	case RedefinedCNP:
		return g.redefinedCNP(false)
	case ReciprocalCNP:
		return g.redefinedCNP(true)
	case RedefinedWNP:
		return g.redefinedWNP(false)
	case ReciprocalWNP:
		return g.redefinedWNP(true)
	default:
		panic(fmt.Sprintf("core: unknown pruning algorithm %d", int(a)))
	}
}

// CardinalityEdgeThreshold returns CEP's global K = ⌊Σ|b|/2⌋.
func (g *Graph) CardinalityEdgeThreshold() int {
	return int(g.blocks.Assignments() / 2)
}

// CardinalityNodeThreshold returns CNP's per-node k = max(1, ⌊Σ|b|/|E|−1⌋).
func (g *Graph) CardinalityNodeThreshold() int {
	k := int(g.blocks.Assignments())/g.blocks.NumEntities - 1
	if k < 1 {
		k = 1
	}
	return k
}

// cep retains the globally top-K weighted edges via a bounded min-heap.
func (g *Graph) cep() []entity.Pair {
	k := g.CardinalityEdgeThreshold()
	if k == 0 {
		return nil
	}
	h := newEdgeHeap(k)
	g.edges(func(i, j entity.ID, w float64) {
		h.offer(w, i, j)
	})
	out := make([]entity.Pair, 0, h.len())
	for _, e := range h.items {
		out = append(out, entity.MakePair(e.i, e.j))
	}
	return out
}

// wep retains edges at or above the graph's mean edge weight. The mean is
// derived in a first traversal and the pruning happens in a second one,
// since the implicit graph stores no weights. Like the neighborhood means,
// the global mean uses exact (correctly rounded) summation, so every
// implementation (serial, parallel, MapReduce) and every worker partition
// lands on the same threshold bit-for-bit — without materializing or
// sorting the edge weights.
func (g *Graph) wep() []entity.Pair {
	var acc floatsum.Acc
	g.edges(func(_, _ entity.ID, w float64) {
		acc.Add(w)
	})
	if acc.Count() == 0 {
		return nil
	}
	mean := acc.Mean()
	var out []entity.Pair
	g.edges(func(i, j entity.ID, w float64) {
		if w >= mean {
			out = append(out, entity.MakePair(i, j))
		}
	})
	return out
}

// cnp retains, per node, the top-k weighted incident edges. Every retained
// directed edge yields a comparison, so pairs ranked by both endpoints
// appear twice (the original algorithm's redundant comparisons).
func (g *Graph) cnp() []entity.Pair {
	k := g.CardinalityNodeThreshold()
	h := newEdgeHeap(k)
	var out []entity.Pair
	g.nodes(func(i entity.ID, neighbors []entity.ID, weights []float64) {
		h.reset()
		for n, j := range neighbors {
			h.offer(weights[n], i, j)
		}
		for _, e := range h.items {
			out = append(out, entity.MakePair(e.i, e.j))
		}
	})
	return out
}

// wnp retains, per node, the incident edges at or above the neighborhood's
// mean weight, one comparison per retained directed edge.
func (g *Graph) wnp() []entity.Pair {
	var out []entity.Pair
	g.nodes(func(i entity.ID, neighbors []entity.ID, weights []float64) {
		threshold := g.meanOf(weights)
		for n, j := range neighbors {
			if weights[n] >= threshold {
				out = append(out, entity.MakePair(i, j))
			}
		}
	})
	return out
}

// redefinedCNP implements Algorithms 4 (reciprocal=false, the disjunctive
// OR of Redefined CNP) and its conjunctive sibling Reciprocal CNP
// (reciprocal=true). One node-centric pass records which endpoints ranked
// each edge in their top-k; an edge is retained once if either endpoint
// (OR) or both endpoints (AND) ranked it.
func (g *Graph) redefinedCNP(reciprocal bool) []entity.Pair {
	k := g.CardinalityNodeThreshold()
	h := newEdgeHeap(k)
	marks := make(map[entity.Pair]uint8)
	g.nodes(func(i entity.ID, neighbors []entity.ID, weights []float64) {
		h.reset()
		for n, j := range neighbors {
			h.offer(weights[n], i, j)
		}
		for _, e := range h.items {
			p := entity.MakePair(e.i, e.j)
			if e.i < e.j {
				marks[p] |= 1 // ranked by the smaller endpoint
			} else {
				marks[p] |= 2 // ranked by the larger endpoint
			}
		}
	})
	return collectMarks(marks, reciprocal)
}

// redefinedWNP implements Algorithm 5 (reciprocal=false) and Reciprocal
// WNP (reciprocal=true): a node-centric pass derives every neighborhood's
// weight threshold, then one edge-centric pass retains edges meeting the
// threshold of either (OR) or both (AND) endpoints.
func (g *Graph) redefinedWNP(reciprocal bool) []entity.Pair {
	thresholds := make([]float64, g.blocks.NumEntities)
	g.nodes(func(i entity.ID, _ []entity.ID, weights []float64) {
		thresholds[i] = g.meanOf(weights)
	})
	var out []entity.Pair
	g.edges(func(i, j entity.ID, w float64) {
		okI, okJ := w >= thresholds[i], w >= thresholds[j]
		if (reciprocal && okI && okJ) || (!reciprocal && (okI || okJ)) {
			out = append(out, entity.MakePair(i, j))
		}
	})
	return out
}

func collectMarks(marks map[entity.Pair]uint8, reciprocal bool) []entity.Pair {
	out := make([]entity.Pair, 0, len(marks))
	for p, m := range marks {
		if reciprocal && m != 3 {
			continue
		}
		out = append(out, p)
	}
	return out
}

