// Package server is the online Entity Resolution query service: a
// concurrency-safe façade over the incremental Resolver that turns the
// one-shot cmd/stream workflow into an always-on serving layer.
//
// Three serving-stack shapes make it production-grade:
//
//   - Micro-batching. Concurrent /v1/resolve requests are coalesced into
//     one index pass: a single batcher goroutine — the only writer —
//     drains the admission queue for up to BatchWindow or MaxBatch
//     arrivals and feeds them to Resolver.AddBatch under one lock
//     acquisition. Responses are identical to processing the same
//     arrival order one at a time.
//   - Backpressure. Admission is a bounded queue; when it is full the
//     server sheds load immediately (ErrQueueFull → HTTP 429 with
//     Retry-After) instead of building an unbounded backlog. Accepted
//     requests are never dropped: every queued job is answered, even
//     during graceful shutdown.
//   - Snapshot hot-swap. The resolver behind the façade can be replaced
//     atomically (Reload / POST /v1/admin/reload) with one built from a
//     pre-blocked internal/store snapshot. The swap fences on the same
//     lock the batcher writes under, so in-flight requests complete
//     against whichever index they were batched into and none fail.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/obs"
	"metablocking/internal/store"
)

// Typed errors of the façade; test with errors.Is. The HTTP layer maps
// ErrQueueFull to 429 + Retry-After and ErrDraining to 503.
var (
	// ErrQueueFull is returned when the admission queue is at capacity.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining is returned once Close has begun: the server finishes
	// accepted work but admits nothing new.
	ErrDraining = errors.New("server: shutting down")
)

// Counter and gauge names the server reports into its registry, alongside
// the per-endpoint http.* counters from obs.HTTPMetrics.
const (
	CtrAccepted      = "server.accepted"
	CtrRejectedFull  = "server.rejected_full"
	CtrRejectedDrain = "server.rejected_draining"
	CtrBatches       = "server.batches"
	CtrBatchedProfs  = "server.batch_profiles"
	CtrCandidates    = "server.candidates"
	CtrReloads       = "server.reloads"
	CtrSnapshots     = "server.snapshots"
	GaugeProfiles    = "server.profiles"
	GaugeQueueCap    = "server.queue_cap"
)

// Config tunes the serving façade. The zero value gets sensible defaults.
type Config struct {
	// Resolver configures the incremental index (scheme, K, block cap).
	Resolver incremental.Config
	// BatchWindow is how long the batcher waits for more arrivals after
	// the first one before flushing a partial batch. Default 2ms.
	BatchWindow time.Duration
	// MaxBatch caps arrivals per index pass. Default 64.
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with ErrQueueFull. Default 1024.
	QueueDepth int
	// RetryAfter is the advisory client back-off sent with 429 responses.
	// Default 1s.
	RetryAfter time.Duration
	// Metrics receives the server's counters; nil creates a private
	// registry (exposed at /metrics either way).
	Metrics *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// job is one admitted resolve request. reply is buffered so the batcher
// never blocks on a client that gave up waiting.
type job struct {
	profile entity.Profile
	reply   chan incremental.BatchResult
}

// Server is the concurrency-safe serving façade. One batcher goroutine is
// the single writer to the resolver; handler goroutines are readers that
// fence on mu. Create with New, stop with Close.
type Server struct {
	cfg     Config
	metrics *obs.Metrics

	// mu fences the resolver pointer and its state: the batcher's flush
	// and Reload's swap take the write lock, read-only accessors the
	// read lock.
	mu       sync.RWMutex
	resolver *incremental.Resolver

	queue chan job

	// submitMu serializes admission against the start of a drain: once
	// Close sets draining under the write lock, no submitter can still
	// be inside the enqueue critical section, so the batcher's final
	// drain pass sees every accepted job.
	submitMu sync.RWMutex
	draining bool

	stopc chan struct{}
	done  chan struct{}
}

// New validates the configuration, builds an empty resolver and starts the
// batcher. Call Close to stop it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	r, err := incremental.NewResolver(cfg.Resolver)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		resolver: r,
		queue:    make(chan job, cfg.QueueDepth),
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.metrics.Gauge(GaugeQueueCap).Set(int64(cfg.QueueDepth))
	s.metrics.Gauge(GaugeProfiles).Set(0)
	go s.batcher()
	return s, nil
}

// Resolve admits the profile, waits for its micro-batch to flush, and
// returns the assigned ID and pruned candidates. It returns ErrQueueFull
// when the admission queue is at capacity, ErrDraining after Close has
// begun, and ctx.Err() if the caller gives up first — in which case the
// accepted request is still processed (its ID is consumed) and only the
// reply is discarded.
func (s *Server) Resolve(ctx context.Context, p entity.Profile) (incremental.BatchResult, error) {
	j := job{profile: p, reply: make(chan incremental.BatchResult, 1)}
	s.submitMu.RLock()
	if s.draining {
		s.submitMu.RUnlock()
		s.metrics.Counter(CtrRejectedDrain).Inc()
		return incremental.BatchResult{}, ErrDraining
	}
	select {
	case s.queue <- j:
		s.submitMu.RUnlock()
	default:
		s.submitMu.RUnlock()
		s.metrics.Counter(CtrRejectedFull).Inc()
		return incremental.BatchResult{}, ErrQueueFull
	}
	s.metrics.Counter(CtrAccepted).Inc()
	select {
	case res := <-j.reply:
		return res, nil
	case <-ctx.Done():
		return incremental.BatchResult{}, ctx.Err()
	}
}

// Reload atomically swaps the serving index for one rebuilt from the
// snapshot and returns its profile count. The swap waits for the batch in
// flight (if any) to finish; requests already admitted but not yet batched
// are resolved against the new index. IDs restart at the snapshot's size.
func (s *Server) Reload(snap *incremental.Snapshot) (int, error) {
	r, err := incremental.FromSnapshot(snap)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.resolver = r
	n := r.Size()
	s.mu.Unlock()
	s.metrics.Counter(CtrReloads).Inc()
	s.metrics.Gauge(GaugeProfiles).Set(int64(n))
	return n, nil
}

// ReloadFile is Reload from a store resolver-snapshot file.
func (s *Server) ReloadFile(path string) (int, error) {
	snap, err := store.LoadResolverFile(path)
	if err != nil {
		return 0, err
	}
	if snap.Config.Scheme != s.cfg.Resolver.Scheme {
		return 0, fmt.Errorf("server: snapshot scheme %v differs from serving scheme %v",
			snap.Config.Scheme, s.cfg.Resolver.Scheme)
	}
	return s.Reload(snap)
}

// Size returns the number of profiles in the serving index.
func (s *Server) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolver.Size()
}

// Snapshot deep-copies the serving index, fenced against the writer — the
// artifact Reload and /v1/admin/reload consume.
func (s *Server) Snapshot() *incremental.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolver.Snapshot()
}

// SnapshotFile persists the current serving index as a resolver-snapshot
// artifact at path, and returns the number of profiles it holds. The file
// can be fed back to -snapshot at startup or to /v1/admin/reload.
func (s *Server) SnapshotFile(path string) (int, error) {
	snap := s.Snapshot()
	if err := store.SaveResolverFile(path, snap); err != nil {
		return 0, err
	}
	s.metrics.Counter(CtrSnapshots).Inc()
	return len(snap.Profiles), nil
}

// Ready reports whether the server is accepting requests.
func (s *Server) Ready() bool {
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	return !s.draining
}

// Metrics returns the server's registry (never nil after New).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Close drains gracefully: new requests are rejected with ErrDraining,
// every already-accepted request is answered, then the batcher exits.
// Safe to call more than once.
func (s *Server) Close() error {
	s.submitMu.Lock()
	already := s.draining
	s.draining = true
	s.submitMu.Unlock()
	if !already {
		close(s.stopc)
	}
	<-s.done
	return nil
}

// batcher is the single writer: it owns every mutation of the resolver.
func (s *Server) batcher() {
	defer close(s.done)
	for {
		select {
		case first := <-s.queue:
			s.flush(s.fill(first))
		case <-s.stopc:
			// draining is set before stopc closes and submitters check
			// it under submitMu, so the queue can only shrink now.
			for {
				select {
				case first := <-s.queue:
					s.flush(s.fillQueued(first))
				default:
					return
				}
			}
		}
	}
}

// fill gathers a micro-batch: the first job plus whatever else arrives
// within BatchWindow, capped at MaxBatch.
func (s *Server) fill(first job) []job {
	batch := append(make([]job, 0, s.cfg.MaxBatch), first)
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-s.stopc:
			// Finish this batch immediately; the drain loop answers the
			// rest of the queue.
			return batch
		}
	}
	return batch
}

// fillQueued gathers a batch without waiting — used by the drain loop,
// when no new arrivals are possible.
func (s *Server) fillQueued(first job) []job {
	batch := append(make([]job, 0, s.cfg.MaxBatch), first)
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// flush runs one index pass over the batch and answers every job. The
// write lock is taken once per batch — this is the micro-batching win —
// and is the same lock Reload swaps under.
func (s *Server) flush(batch []job) {
	profiles := make([]entity.Profile, len(batch))
	for i, j := range batch {
		profiles[i] = j.profile
	}
	s.mu.Lock()
	results := s.resolver.AddBatch(profiles)
	size := s.resolver.Size()
	s.mu.Unlock()

	candidates := 0
	for i, j := range batch {
		candidates += len(results[i].Candidates)
		j.reply <- results[i]
	}
	s.metrics.Counter(CtrBatches).Inc()
	s.metrics.Counter(CtrBatchedProfs).Add(int64(len(batch)))
	s.metrics.Counter(CtrCandidates).Add(int64(candidates))
	s.metrics.Gauge(GaugeProfiles).Set(int64(size))
}
