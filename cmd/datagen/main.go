// Command datagen generates the synthetic benchmark datasets and prints
// their technical characteristics (the rows of the paper's Table 2), plus
// the Token Blocking statistics used to calibrate them against the paper.
//
// Usage:
//
//	datagen [-scale 1.0] [-dataset D2C] [-dump out.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	only := flag.String("dataset", "", "generate a single dataset (D1C..D3D)")
	dump := flag.String("dump", "", "write the selected dataset's profiles to a CSV file")
	flag.Parse()

	datasets := datagen.AllDatasets(*scale)
	fmt.Printf("%-5s %10s %10s %8s %10s %6s %14s\n",
		"name", "|E1|", "|E2|", "|D(E)|", "|P|", "|p̄|", "‖E‖")
	for _, d := range datasets {
		if *only != "" && d.Name != *only {
			continue
		}
		printDataset(d)
		if *dump != "" {
			if err := dumpCSV(*dump, d); err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
		}
	}
}

func printDataset(d datagen.Dataset) {
	c := d.Collection
	pairs, _ := c.NamePairs(0, c.Size())
	n1, n2 := c.Split, c.Size()-c.Split
	if c.Task == entity.Dirty {
		n1, n2 = c.Size(), 0
	}
	fmt.Printf("%-5s %10d %10d %8d %10d %6.1f %14d\n",
		d.Name, n1, n2, d.GroundTruth.Size(), pairs,
		float64(pairs)/float64(c.Size()), c.BruteForceComparisons())

	blocks := blocking.TokenBlocking{}.Build(c)
	purged := blockproc.BlockPurging{}.Apply(blocks)
	det := purged.DetectedDuplicates(d.GroundTruth)
	pc := float64(det) / float64(d.GroundTruth.Size())
	fmt.Printf("      token blocking (purged): |B|=%d ‖B‖=%.3g BPE=%.2f PC=%.3f PQ=%.2e\n",
		purged.Len(), float64(purged.Comparisons()), purged.BPE(), pc,
		float64(det)/float64(purged.Comparisons()))
}

func dumpCSV(path string, d datagen.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"id", "source", "attribute", "value"}); err != nil {
		return err
	}
	for i := range d.Collection.Profiles {
		p := &d.Collection.Profiles[i]
		source := "1"
		if !d.Collection.InFirst(p.ID) {
			source = "2"
		}
		for _, a := range p.Attributes {
			if err := w.Write([]string{strconv.Itoa(int(p.ID)), source, a.Name, a.Value}); err != nil {
				return err
			}
		}
	}
	return nil
}
