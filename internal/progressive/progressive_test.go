package progressive

import (
	"math/rand"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/paperexample"
)

func TestSchedulerOrderPaperExample(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	s := NewScheduler(c, core.JS)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	// First emission must be the heaviest edge of Figure 2(a): p5-p6 at
	// 1/2.
	first, ok := s.Next()
	if !ok || first.Weight != 0.5 {
		t.Fatalf("first = %+v", first)
	}
	// Weights must be non-increasing.
	prev := first.Weight
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		if c.Weight > prev {
			t.Fatalf("weight increased: %v after %v", c.Weight, prev)
		}
		prev = c.Weight
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
}

func TestTakeAndReset(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	s := NewScheduler(c, core.JS)
	batch := s.Take(4)
	if len(batch) != 4 || s.Remaining() != 6 {
		t.Fatalf("Take(4): got %d, remaining %d", len(batch), s.Remaining())
	}
	rest := s.Take(100)
	if len(rest) != 6 {
		t.Fatalf("Take(100) after 4 = %d", len(rest))
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next after exhaustion")
	}
	s.Reset()
	if s.Remaining() != 10 {
		t.Fatal("Reset failed")
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	a := NewScheduler(c, core.ECBS).Take(10)
	b := NewScheduler(c, core.ECBS).Take(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("schedule not deterministic")
		}
	}
}

// TestProgressiveBeatsRandomOrder: on a synthetic dataset, the weighted
// schedule must reach a far higher recall within a small budget than the
// block-order baseline (the point of pay-as-you-go ER).
func TestProgressiveBeatsRandomOrder(t *testing.T) {
	ds := datagen.D1C(0.1)
	blocks := blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(ds.Collection))
	s := NewScheduler(blocks, core.JS)

	budget := ds.GroundTruth.Size() * 2 // two comparisons per duplicate
	curve := RecallCurve(s, ds.GroundTruth, []int{budget})
	if len(curve) != 1 {
		t.Fatal("curve length")
	}
	progressiveRecall := curve[0].Recall

	// Baseline: the same distinct comparisons in random order.
	all := blockproc.ComparisonPropagation{}.Apply(blocks)
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	detected := 0
	for _, p := range all[:budget] {
		if ds.GroundTruth.Contains(p.A, p.B) {
			detected++
		}
	}
	baselineRecall := float64(detected) / float64(ds.GroundTruth.Size())

	t.Logf("budget %d: progressive recall %.3f vs random order %.3f",
		budget, progressiveRecall, baselineRecall)
	if progressiveRecall < 0.5 {
		t.Errorf("progressive recall %.3f too low at 2 comparisons/duplicate", progressiveRecall)
	}
	if progressiveRecall < 5*baselineRecall {
		t.Errorf("progressive (%.3f) does not decisively beat random order (%.3f)",
			progressiveRecall, baselineRecall)
	}
}

func TestRecallCurveMonotone(t *testing.T) {
	ds := datagen.D1C(0.05)
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	s := NewScheduler(blocks, core.ARCS)
	curve := RecallCurve(s, ds.GroundTruth, []int{10, 100, 1000, 10000, 1 << 30})
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatal("recall curve not monotone")
		}
		if curve[i].Comparisons < curve[i-1].Comparisons {
			t.Fatal("comparison counts not monotone")
		}
	}
	// The unbounded budget must reach the blocks' full recall.
	full := blocks.DetectedDuplicates(ds.GroundTruth)
	if got := curve[len(curve)-1].Recall; got != float64(full)/float64(ds.GroundTruth.Size()) {
		t.Fatalf("final recall %.4f ≠ blocking recall", got)
	}
}
