// Package blocking implements the blocking methods the paper builds on:
// the schema-agnostic, redundancy-positive methods (Token Blocking,
// Q-grams Blocking, Suffix Arrays, Attribute Clustering) plus Standard
// Blocking (disjoint) and Sorted Neighborhood (redundancy-neutral) for
// completeness of the taxonomy in §2.
package blocking

import (
	"hash/fnv"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
	"metablocking/internal/par"
)

// Method builds a block collection from an entity collection.
type Method interface {
	// Name identifies the method in reports and experiment output.
	Name() string
	// Build extracts the block collection. Implementations must produce a
	// deterministic block order for a given input.
	Build(c *entity.Collection) *block.Collection
}

// WorkerSetter is implemented by the methods with a sharded parallel
// build (Token, Q-grams, Suffix Arrays, Extended Q-grams). It lets
// callers propagate a pipeline-wide worker count without enumerating the
// concrete method types.
type WorkerSetter interface {
	Method
	// WithWorkers returns a copy of the method with the given worker
	// count, keeping the method's own Workers when already non-zero.
	WithWorkers(workers int) Method
}

// ObservedMethod is implemented by the methods whose build reports into
// an observability handle: blocking-stage progress over the profiles, the
// workers.blocking gauge, and cooperative cancellation polled at shard
// strides. A nil Observer makes BuildObserved identical to Build.
type ObservedMethod interface {
	Method
	BuildObserved(c *entity.Collection, o *obs.Observer) *block.Collection
}

// BuildObserved runs the method's observed build when it has one and
// falls back to the plain Build otherwise.
func BuildObserved(m Method, c *entity.Collection, o *obs.Observer) *block.Collection {
	if om, ok := m.(ObservedMethod); ok {
		return om.BuildObserved(c, o)
	}
	return m.Build(c)
}

// keyIndex accumulates, per blocking key, the profiles assigned to it,
// split by source collection, and converts the result into blocks.
type keyIndex struct {
	task  entity.Task
	split int
	keys  *keyStore
}

type keyEntry struct {
	e1, e2 []entity.ID
}

// keyStore maps blocking keys to postings entries kept in one growing
// slab, so accumulating n distinct keys costs O(log n) slab growths
// instead of one heap allocation per key.
type keyStore struct {
	idx     map[string]int32
	entries []keyEntry
}

func newKeyStore() *keyStore {
	return &keyStore{idx: make(map[string]int32)}
}

// entry returns the postings entry for key, creating it on first use. The
// returned pointer is invalidated by the next entry call (the slab may
// move); use it immediately.
func (s *keyStore) entry(key string) *keyEntry {
	if i, ok := s.idx[key]; ok {
		return &s.entries[i]
	}
	s.idx[key] = int32(len(s.entries))
	s.entries = append(s.entries, keyEntry{})
	return &s.entries[len(s.entries)-1]
}

// get returns the entry of a key known to be present.
func (s *keyStore) get(key string) *keyEntry { return &s.entries[s.idx[key]] }

func newKeyIndex(c *entity.Collection) *keyIndex {
	return &keyIndex{task: c.Task, split: c.Split, keys: newKeyStore()}
}

// add assigns a profile to a blocking key. Repeated assignments of the same
// profile to the same key are deduplicated by the caller supplying distinct
// keys per profile (use a per-profile set).
func (k *keyIndex) add(key string, id entity.ID) {
	e := k.keys.entry(key)
	if k.task == entity.CleanClean && int(id) >= k.split {
		e.e2 = append(e.e2, id)
	} else {
		e.e1 = append(e.e1, id)
	}
}

// build converts the accumulated keys into a block collection; see
// buildBlocks for the retention rules.
func (k *keyIndex) build(c *entity.Collection) *block.Collection {
	return buildBlocks(c, []*keyStore{k.keys}, nil, 1)
}

// eligible reports whether a key's postings entail at least one
// comparison: two profiles for Dirty ER, or one profile from each source
// for Clean-Clean ER.
func eligible(task entity.Task, e *keyEntry) bool {
	if task == entity.CleanClean {
		return len(e.e1) > 0 && len(e.e2) > 0
	}
	return len(e.e1) >= 2
}

// keyShard maps a blocking key to one of n merge shards (FNV-1a).
func keyShard(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// buildBlocks converts key→postings maps into a block collection, keeping
// only keys that entail at least one comparison and dropping keys matched
// by the optional drop predicate (Suffix Arrays' oversized blocks). maps
// must be partitioned by keyShard(·, len(maps)) — a single map (shard
// count 1) covers the serial case. Blocks are ordered by key for
// determinism, regardless of how the keys were sharded.
func buildBlocks(c *entity.Collection, maps []*keyStore, drop func(e *keyEntry) bool, workers int) *block.Collection {
	task := c.Task
	var keys []string
	for _, m := range maps {
		for key, i := range m.idx {
			e := &m.entries[i]
			if drop != nil && drop(e) {
				continue
			}
			if eligible(task, e) {
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)

	out := &block.Collection{Task: task, NumEntities: c.Size(), Split: c.Split}
	out.Blocks = make([]block.Block, len(keys))
	shards := len(maps)
	workers = par.Resolve(workers, len(keys))
	par.Ranges(workers, len(keys), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			key := keys[i]
			e := maps[keyShard(key, shards)].get(key)
			b := block.Block{Key: key, E1: e.e1}
			if task == entity.CleanClean {
				b.E2 = e.e2
			}
			out.Blocks[i] = b
		}
	})
	return out
}

// buildKeyed runs a keyed blocking method end to end: each worker extracts
// keys for a contiguous profile range into a private key index, the
// per-worker postings are merged by key shard (again in parallel), and the
// merged keys are materialized into blocks. Because worker w owns profile
// IDs strictly below worker w+1's and postings merge in worker order,
// every posting list comes out in ascending ID order — bit-identical to
// the serial single-map build.
//
// An optional Observer o reports blocking-stage progress over the
// profiles and the resolved workers.blocking gauge, and is polled for
// cancellation once per stride of profiles: once o's context is canceled
// the remaining phases are skipped and an empty collection is returned —
// callers must check o.Err before using the result.
func buildKeyed(c *entity.Collection, workers int, o *obs.Observer, keysOf keysFunc, drop func(e *keyEntry) bool) *block.Collection {
	workers = par.Resolve(workers, len(c.Profiles))
	o.Gauge(obs.GaugeWorkersBlocking).Set(int64(workers))
	meter := o.NewMeter(obs.StageBlocking, int64(len(c.Profiles)))
	if workers <= 1 {
		idx := newKeyIndex(c)
		forEachProfileKeysRange(c, 0, len(c.Profiles), o, meter, keysOf, func(id entity.ID, keys []string) {
			for _, k := range keys {
				idx.add(k, id)
			}
		})
		if o.Canceled() {
			return &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
		}
		return buildBlocks(c, []*keyStore{idx.keys}, drop, 1)
	}

	// Map phase: per-worker key indexes over disjoint profile ranges,
	// pre-partitioned into merge shards so the merge phase touches only
	// its own shard of every worker map.
	sharded := make([][]*keyStore, workers)
	task, split := c.Task, c.Split
	par.Ranges(workers, len(c.Profiles), func(w, lo, hi int) {
		local := make([]*keyStore, workers)
		for s := range local {
			local[s] = newKeyStore()
		}
		forEachProfileKeysRange(c, lo, hi, o, meter, keysOf, func(id entity.ID, keys []string) {
			for _, key := range keys {
				e := local[keyShard(key, workers)].entry(key)
				if task == entity.CleanClean && int(id) >= split {
					e.e2 = append(e.e2, id)
				} else {
					e.e1 = append(e.e1, id)
				}
			}
		})
		sharded[w] = local
	})
	if o.Canceled() {
		return &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	}

	// Merge phase: shard s collects every worker's shard-s postings in
	// worker order.
	merged := make([]*keyStore, workers)
	par.Ranges(workers, workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			if o.Canceled() {
				break
			}
			m := newKeyStore()
			for _, local := range sharded {
				if local == nil {
					continue
				}
				for key, i := range local[s].idx {
					e := &local[s].entries[i]
					t := m.entry(key)
					t.e1 = append(t.e1, e.e1...)
					t.e2 = append(t.e2, e.e2...)
				}
			}
			merged[s] = m
		}
	})
	if o.Canceled() {
		return &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	}
	return buildBlocks(c, merged, drop, workers)
}

// keysFunc extracts a profile's blocking keys, calling emit once per key
// (duplicates are fine; the caller deduplicates). toks is a reusable
// token scratch buffer owned by the iteration loop: implementations that
// tokenize values should fill it with entity.AppendTokens(toks[:0], …)
// per value and return the (possibly grown) buffer, so one buffer serves
// every profile of a worker's range instead of allocating per attribute.
type keysFunc func(p *entity.Profile, toks []string, emit func(string)) []string

// forEachProfileKeys runs fn once per profile with that profile's distinct
// blocking keys, reusing a scratch set between profiles.
func forEachProfileKeys(c *entity.Collection, keysOf keysFunc, fn func(id entity.ID, keys []string)) {
	forEachProfileKeysRange(c, 0, len(c.Profiles), nil, nil, keysOf, fn)
}

// forEachProfileKeysRange is forEachProfileKeys restricted to profiles
// [lo, hi) — the per-worker slice of the sharded build. It ticks m and
// polls o for cancellation once per stride of profiles, aborting the
// range early when the run is canceled. All scratch (the dedup set, the
// key and token buffers, the emit closure) is hoisted out of the profile
// loop, so a warm pass over a range allocates only when a buffer grows.
func forEachProfileKeysRange(c *entity.Collection, lo, hi int, o *obs.Observer, m *obs.Meter, keysOf keysFunc, fn func(id entity.ID, keys []string)) {
	seen := make(map[string]struct{})
	var buf, toks []string
	emit := func(key string) {
		if key == "" {
			return
		}
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		buf = append(buf, key)
	}
	for i := lo; i < hi; i++ {
		if (i-lo)&obs.StrideMask == obs.StrideMask {
			m.Add(obs.Stride)
			if o.Canceled() {
				return
			}
		}
		p := &c.Profiles[i]
		buf = buf[:0]
		clear(seen)
		toks = keysOf(p, toks, emit)
		fn(p.ID, buf)
	}
	m.Add(int64(hi-lo) & obs.StrideMask)
}
