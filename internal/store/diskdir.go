// Disk-directory layout of the out-of-core resolver: per-shard posting
// segments plus checkpoint manifests, and the recovery walk that picks
// the newest generation every shard can still prove.
//
// Layout for a root directory with N shards:
//
//	<root>/s<k>/seg-<seq>.seg        immutable posting segments (paged,
//	                                 CRC'd — see segment.go)
//	<root>/s<k>/manifest-<gen>       checkpoint manifests (checksummed
//	                                 container), written last
//
// Crash consistency is manifest-committed-last, like the sharded gob
// layout: a seal writes its new segment, fsyncs it, and only then
// atomically writes a new manifest naming the full segment list; a
// compaction writes the merged segment and then its manifest. A crash at
// any instant leaves the previous manifest pointing at untouched files.
//
// Cross-shard consistency comes from coordinator-assigned checkpoint
// ids: every shard seals at the same global resolver size under the same
// checkpoint number, and recovery loads the highest checkpoint every
// shard holds a fully verifiable manifest for. If shard k's newest
// generation is torn or bit-flipped, all shards fall back together to
// the previous checkpoint — a consistent, older index instead of a
// corrupt or skewed one. Retention keeps exactly what that fallback
// needs: every manifest of the current checkpoint (compaction adds a
// second one) plus the newest older-checkpoint manifest, and every
// segment one of those references.
package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/postings"
)

const (
	diskManifestKind    = "disk-manifest"
	diskManifestVersion = 1
)

// DiskManifest is one shard's checkpoint commit point: the resolver
// configuration, the lineage binding, and the segment files that make up
// the shard at this checkpoint.
type DiskManifest struct {
	Scheme         int
	K              int
	MaxBlockSize   int
	MinTokenLength int

	Shard  int
	Shards int
	// Checkpoint is the coordinator-assigned global checkpoint id; all
	// shards write the same id for one checkpoint.
	Checkpoint uint64
	// Size is the global resolver size (profiles across all shards) the
	// checkpoint sealed at.
	Size int
	// LocalGen is this shard's own monotonic manifest number — the file
	// name — advancing on every manifest write (seal or compaction).
	LocalGen uint64
	// Segments lists the shard's segment file names in ascending MinSeq
	// order; together they cover local slots [0, localCount(Size)).
	Segments []string
}

// Config returns the resolver configuration the manifest binds.
func (m *DiskManifest) Config() incremental.Config {
	return incremental.Config{
		Scheme:         core.Scheme(m.Scheme),
		K:              m.K,
		MaxBlockSize:   m.MaxBlockSize,
		MinTokenLength: m.MinTokenLength,
	}
}

// DiskShardDir names shard k's directory under root.
func DiskShardDir(root string, k int) string {
	return filepath.Join(root, "s"+strconv.Itoa(k))
}

// SegmentFileName names the segment file with the given seal sequence.
func SegmentFileName(seq uint64) string {
	return fmt.Sprintf("seg-%020d.seg", seq)
}

func manifestFileName(gen uint64) string {
	return fmt.Sprintf("manifest-%020d", gen)
}

func parseSegmentSeq(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".seg")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(s, 10, 64)
	return seq, err == nil
}

func parseManifestGen(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "manifest-")
	if !ok {
		return 0, false
	}
	gen, err := strconv.ParseUint(s, 10, 64)
	return gen, err == nil
}

// SaveDiskManifest atomically writes the manifest into dir under its
// LocalGen-derived name — the commit point of a seal or compaction.
func SaveDiskManifest(dir string, m DiskManifest) error {
	return saveFileAtomic(filepath.Join(dir, manifestFileName(m.LocalGen)), func(w io.Writer) error {
		return writeArtifact(w, diskManifestKind, diskManifestVersion, m)
	})
}

// LoadDiskManifest reads and verifies one manifest file.
func LoadDiskManifest(path string) (DiskManifest, error) {
	var m DiskManifest
	payload, err := readFileVerified(path)
	if err != nil {
		return m, err
	}
	if err := readArtifact(bytes.NewReader(payload), diskManifestKind, diskManifestVersion, &m); err != nil {
		return m, err
	}
	return m, nil
}

// IsDiskDir reports whether path looks like an out-of-core resolver
// directory — a directory holding an s0 shard subdirectory.
func IsDiskDir(path string) bool {
	st, err := os.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	st, err = os.Stat(DiskShardDir(path, 0))
	return err == nil && st.IsDir()
}

// localCount is how many of the first size global IDs are homed on shard
// k of shards — the profile count a shard's manifest must account for.
func localCount(size, shards, k int) int {
	if size <= k {
		return 0
	}
	return (size - k + shards - 1) / shards
}

// DiskShardState is one shard's recovered state: the chosen manifest and
// its opened segments (nil/empty for a fresh shard), plus the next safe
// file numbers, scanned past every file in the directory — even torn
// leftovers — so new writes never collide with old bytes.
type DiskShardState struct {
	Dir      string
	Manifest *DiskManifest
	Segments []*Segment
	NextSeq  uint64
	NextGen  uint64
	// WALs lists every write-ahead log file present in the directory
	// (ascending sequence); recovery replays the ones whose lineage meta
	// matches the chosen checkpoint and ignores the rest.
	WALs []string
	// NextWal is the next safe WAL rotation number.
	NextWal uint64
}

// CloseSegments closes any opened segments (for callers that recover
// only to inspect or rebuild, not to serve).
func (s *DiskShardState) CloseSegments() {
	for _, seg := range s.Segments {
		seg.Close()
	}
	s.Segments = nil
}

// DiskLayout is the recovered state of a whole out-of-core directory.
type DiskLayout struct {
	// Cfg is the resolver configuration the chosen manifests agree on;
	// meaningful only when Checkpoint > 0.
	Cfg incremental.Config
	// Shards is the directory's shard count.
	Shards int
	// Size is the global resolver size at the chosen checkpoint.
	Size int
	// Checkpoint is the loaded checkpoint id — the highest every shard
	// holds a verifiable manifest for; 0 means an empty index.
	Checkpoint uint64
	// MaxCheckpoint is the highest checkpoint id seen on any shard, valid
	// or not chosen; new checkpoints must start above it so abandoned
	// lineages can never shadow live ones.
	MaxCheckpoint uint64
	Shard         []*DiskShardState
}

// Close closes every shard's opened segments.
func (l *DiskLayout) Close() {
	for _, s := range l.Shard {
		s.CloseSegments()
	}
}

// shardCandidate is one verifiable manifest found during recovery.
type shardCandidate struct {
	gen      uint64
	manifest DiskManifest
}

// RecoverDiskDir opens (creating if absent) an out-of-core directory and
// recovers the newest consistent checkpoint. shards fixes the expected
// shard count; pass 0 to infer it from the directory (1 if fresh). A
// directory laid out for a different shard count is refused — segments
// partition IDs by id mod N, so reinterpreting them at another N would
// scramble the index.
//
// Per shard, manifests are walked newest-first and each is verified in
// full: container checksum, lineage binding, every referenced segment
// opened with a complete page-CRC scan, slot ranges chaining from 0 and
// summing to the manifest's size. The loaded checkpoint is the highest
// one every shard verified — so a torn or bit-flipped newest generation
// on any shard falls the whole index back to the previous checkpoint
// rather than erroring or serving a skewed view.
func RecoverDiskDir(root string, shards int) (*DiskLayout, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	existing := 0
	for {
		st, err := os.Stat(DiskShardDir(root, existing))
		if err != nil || !st.IsDir() {
			break
		}
		existing++
	}
	if shards <= 0 {
		shards = existing
		if shards == 0 {
			shards = 1
		}
	} else if existing > 0 && existing != shards {
		return nil, fmt.Errorf("store: %s is laid out for %d shards, not %d", root, existing, shards)
	}

	layout := &DiskLayout{Shards: shards, Shard: make([]*DiskShardState, shards)}
	cands := make([]map[uint64]shardCandidate, shards)
	for k := 0; k < shards; k++ {
		dir := DiskShardDir(root, k)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		state, cs, err := scanShardDir(dir, k, shards)
		if err != nil {
			return nil, err
		}
		layout.Shard[k] = state
		cands[k] = cs
		for ckpt := range cs {
			if ckpt > layout.MaxCheckpoint {
				layout.MaxCheckpoint = ckpt
			}
		}
	}

	// The loaded checkpoint is the highest id every shard can verify.
	chosen := uint64(0)
	for ckpt := range cands[0] {
		if ckpt <= chosen {
			continue
		}
		common := true
		for k := 1; k < shards; k++ {
			if _, ok := cands[k][ckpt]; !ok {
				common = false
				break
			}
		}
		if common {
			chosen = ckpt
		}
	}
	if chosen == 0 {
		return layout, nil
	}
	layout.Checkpoint = chosen
	for k := 0; k < shards; k++ {
		c := cands[k][chosen]
		m := c.manifest
		if k == 0 {
			layout.Cfg = m.Config()
			layout.Size = m.Size
		} else if m.Config() != layout.Cfg || m.Size != layout.Size {
			return nil, fmt.Errorf("store: shard %d manifest disagrees with shard 0 at checkpoint %d: %w",
				k, chosen, ErrCorruptArtifact)
		}
		state := layout.Shard[k]
		state.Manifest = &m
		// The candidate scan already page-verified these files; reopen
		// without the full scan (page CRCs still guard every later read).
		for _, name := range m.Segments {
			seg, err := OpenSegment(filepath.Join(state.Dir, name), false)
			if err != nil {
				layout.Close()
				return nil, err
			}
			state.Segments = append(state.Segments, seg)
		}
	}
	return layout, nil
}

// scanShardDir walks one shard directory: next safe file numbers from
// every file name present, and the verifiable manifest per checkpoint
// (newest LocalGen wins — a compacted manifest supersedes the seal it
// folded, and falls back to it if the merged segment is damaged).
func scanShardDir(dir string, k, shards int) (*DiskShardState, map[uint64]shardCandidate, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	state := &DiskShardState{Dir: dir}
	var gens []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentSeq(e.Name()); ok && seq >= state.NextSeq {
			state.NextSeq = seq + 1
		}
		if gen, ok := parseManifestGen(e.Name()); ok {
			gens = append(gens, gen)
			if gen >= state.NextGen {
				state.NextGen = gen + 1
			}
		}
		if seq, ok := parseWalSeq(e.Name()); ok {
			state.WALs = append(state.WALs, e.Name())
			if seq >= state.NextWal {
				state.NextWal = seq + 1
			}
		}
	}
	sort.Slice(gens, func(a, b int) bool { return gens[a] > gens[b] })
	cands := make(map[uint64]shardCandidate)
	for _, gen := range gens {
		m, err := LoadDiskManifest(filepath.Join(dir, manifestFileName(gen)))
		if err != nil {
			continue // torn or bit-flipped: an older generation will serve
		}
		if m.Shard != k || m.Shards != shards || m.LocalGen != gen {
			continue
		}
		if !verifyManifestSegments(dir, m) {
			continue
		}
		if prev, ok := cands[m.Checkpoint]; !ok || gen > prev.gen {
			cands[m.Checkpoint] = shardCandidate{gen: gen, manifest: m}
		}
	}
	return state, cands, nil
}

// verifyManifestSegments fully verifies every segment a manifest names:
// page-CRC scan, lineage binding, slot ranges chaining from 0 and
// summing to the manifest's share of its global size.
func verifyManifestSegments(dir string, m DiskManifest) bool {
	nextSlot := 0
	for _, name := range m.Segments {
		seg, err := OpenSegment(filepath.Join(dir, name), true)
		if err != nil {
			return false
		}
		meta := seg.Meta()
		seg.Close()
		if meta.Shard != m.Shard || meta.Shards != m.Shards || meta.FirstSlot != nextSlot {
			return false
		}
		nextSlot += meta.Profiles
	}
	return nextSlot == localCount(m.Size, m.Shards, m.Shard)
}

// SweepShardDir applies the retention rule after a manifest commit: keep
// every manifest of the current checkpoint, keep the newest manifest of
// any older checkpoint (the recovery fallback), delete the rest —
// including abandoned higher-checkpoint lineages — and delete every
// segment file no kept manifest references. Write-ahead logs follow the
// same pass: any wal file not named in keepWals is superseded by the
// manifest that just committed and is deleted. Best-effort: leftover
// files are wasted disk, never a correctness hazard, because recovery
// only trusts what a manifest (or a matching-lineage log) proves.
func SweepShardDir(dir string, current uint64, keepWals ...string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type mf struct {
		gen  uint64
		m    DiskManifest
		ok   bool
		name string
	}
	var manifests []mf
	var segFiles []string
	for _, e := range entries {
		if gen, ok := parseManifestGen(e.Name()); ok {
			entry := mf{gen: gen, name: e.Name()}
			if m, err := LoadDiskManifest(filepath.Join(dir, e.Name())); err == nil && m.LocalGen == gen {
				entry.m, entry.ok = m, true
			}
			manifests = append(manifests, entry)
			continue
		}
		if _, ok := parseSegmentSeq(e.Name()); ok {
			segFiles = append(segFiles, e.Name())
		}
		if _, ok := parseWalSeq(e.Name()); ok {
			kept := false
			for _, keep := range keepWals {
				kept = kept || keep == e.Name()
			}
			if !kept {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	var fallback uint64 // newest gen with checkpoint below current
	haveFallback := false
	for _, e := range manifests {
		if e.ok && e.m.Checkpoint < current && (!haveFallback || e.gen > fallback) {
			fallback, haveFallback = e.gen, true
		}
	}
	referenced := make(map[string]bool)
	for _, e := range manifests {
		keep := e.ok && (e.m.Checkpoint == current || (haveFallback && e.gen == fallback))
		if !keep {
			os.Remove(filepath.Join(dir, e.name))
			continue
		}
		for _, name := range e.m.Segments {
			referenced[name] = true
		}
	}
	for _, name := range segFiles {
		if !referenced[name] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadDiskDir materializes an out-of-core directory into the canonical
// in-memory snapshot — the bridge that lets a disk-backed index be
// reloaded into any serving shape, like the other two resolver layouts.
func LoadDiskDir(root string) (*incremental.Snapshot, error) {
	layout, err := RecoverDiskDir(root, 0)
	if err != nil {
		return nil, err
	}
	defer layout.Close()
	cfg := layout.Cfg
	if layout.Checkpoint == 0 {
		cfg = incremental.Config{}
	}
	segs := make([]*incremental.PartitionSnapshot, layout.Shards)
	for k, state := range layout.Shard {
		ps := &incremental.PartitionSnapshot{
			Shard:    k,
			Shards:   layout.Shards,
			Blocks:   make(map[string][]entity.ID),
			BlocksOf: make([][]string, 0),
		}
		var scratch []byte
		for _, seg := range state.Segments {
			for ci := 0; ci < seg.ProfileChunks(); ci++ {
				var profiles []entity.Profile
				var keys [][]string
				profiles, keys, scratch, err = seg.ReadProfileChunk(ci, scratch)
				if err != nil {
					return nil, err
				}
				ps.Profiles = append(ps.Profiles, profiles...)
				ps.BlocksOf = append(ps.BlocksOf, keys...)
			}
			for ti, tok := range seg.Tokens() {
				ref := seg.Ref(ti)
				scratch, err = seg.ReadPage(int(ref.Page), scratch)
				if err != nil {
					return nil, err
				}
				enc := scratch[ref.Off : ref.Off+ref.Len]
				ps.Blocks[tok] = postings.AppendDecoded(ps.Blocks[tok], postings.Varint, enc, int(ref.Count))
			}
		}
		segs[k] = ps
	}
	// Replay the write-ahead tail on top of the checkpoint, exactly as a
	// serving reopen would: each record appends to its home shard in
	// ascending ID order, so the merged snapshot is bit-identical to the
	// never-crashed index.
	tail := RecoverWalTail(layout)
	if len(tail.Records) > 0 && layout.Checkpoint == 0 {
		cfg = tail.Cfg
	}
	for _, rec := range tail.Records {
		ps := segs[int(rec.ID)%layout.Shards]
		ps.Profiles = append(ps.Profiles, rec.Profile)
		ps.BlocksOf = append(ps.BlocksOf, append([]string(nil), rec.Keys...))
		for _, key := range rec.Keys {
			ps.Blocks[key] = append(ps.Blocks[key], rec.ID)
		}
	}
	return incremental.MergeSnapshots(cfg, segs), nil
}
