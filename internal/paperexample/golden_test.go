package paperexample

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

var update = flag.Bool("update", false, "rewrite the golden file with the current output")

// TestGoldenPaperExample pins the complete §3 worked example — Token
// Blocking output, the JS blocking graph, and all eight pruned comparison
// sets — to a golden file. Any change to tokenization, weighting or
// pruning that shifts the example shows up as a readable diff; regenerate
// deliberately with:
//
//	go test ./internal/paperexample -update
func TestGoldenPaperExample(t *testing.T) {
	var sb strings.Builder
	blocks := blocking.TokenBlocking{}.Build(Collection())

	sb.WriteString("# Token Blocking (Figure 1(b))\n")
	type kb struct {
		key     string
		members []entity.ID
	}
	sorted := make([]kb, 0, blocks.Len())
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		sorted = append(sorted, kb{key: b.Key, members: b.E1})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
	for _, b := range sorted {
		fmt.Fprintf(&sb, "block %-8s %v\n", b.key, b.members)
	}

	sb.WriteString("\n# JS blocking graph (Figure 2(a))\n")
	g := core.NewGraph(blocks, core.JS)
	type edge struct {
		p entity.Pair
		w float64
	}
	var edges []edge
	g.ForEachEdge(func(i, j entity.ID, w float64) {
		edges = append(edges, edge{p: entity.MakePair(i, j), w: w})
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].p.A != edges[j].p.A {
			return edges[i].p.A < edges[j].p.A
		}
		return edges[i].p.B < edges[j].p.B
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "edge p%d-p%d %.17g\n", e.p.A+1, e.p.B+1, e.w)
	}

	sb.WriteString("\n# Pruned comparisons (JS weighting)\n")
	for _, alg := range core.AllAlgorithms {
		pairs := core.NewGraph(blocks, core.JS).Prune(alg)
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].A != pairs[j].A {
				return pairs[i].A < pairs[j].A
			}
			return pairs[i].B < pairs[j].B
		})
		parts := make([]string, len(pairs))
		for i, p := range pairs {
			parts[i] = fmt.Sprintf("p%d-p%d", p.A+1, p.B+1)
		}
		fmt.Fprintf(&sb, "%-14s %s\n", alg, strings.Join(parts, " "))
	}

	got := sb.String()
	path := filepath.Join("testdata", "paper_example.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/paperexample -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch (run with -update after verifying the change is intended)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
