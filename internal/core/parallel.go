package core

import (
	"runtime"
	"sort"
	"sync"

	"metablocking/internal/entity"
)

// shard returns a Graph view sharing the immutable state (blocks, Entity
// Index, per-block cardinalities, degrees) but with private ScanCount
// scratch, so multiple shards can traverse concurrently.
func (g *Graph) shard() *Graph {
	return &Graph{
		OriginalWeighting: g.OriginalWeighting,
		blocks:            g.blocks,
		index:             g.index,
		ctx:               g.ctx,
		invCard:           g.invCard,
		degrees:           g.degrees,
		flags:             make([]int64, g.blocks.NumEntities),
		commonBlocks:      make([]float64, g.blocks.NumEntities),
	}
}

// forEachNodeRange is ForEachNode restricted to node IDs in [lo, hi).
func (g *Graph) forEachNodeRange(lo, hi int, fn func(i entity.ID, neighbors []entity.ID, weights []float64)) {
	var weights []float64
	for id := lo; id < hi; id++ {
		i := entity.ID(id)
		if g.index.NumBlocks(i) == 0 {
			continue
		}
		neighbors := g.scanNeighborhood(i)
		if len(neighbors) == 0 {
			continue
		}
		weights = weights[:0]
		for _, j := range neighbors {
			weights = append(weights, g.weightOf(i, j))
		}
		fn(i, neighbors, weights)
	}
}

// forEachEdgeRange is ForEachEdge restricted to edges whose emitting
// endpoint (the smaller ID for Dirty ER, the E1 member for Clean-Clean ER)
// lies in [lo, hi).
func (g *Graph) forEachEdgeRange(lo, hi int, fn func(i, j entity.ID, w float64)) {
	clean := g.blocks.Task == entity.CleanClean
	if clean && hi > g.blocks.Split {
		hi = g.blocks.Split
	}
	for id := lo; id < hi; id++ {
		i := entity.ID(id)
		if g.index.NumBlocks(i) == 0 {
			continue
		}
		for _, j := range g.scanNeighborhood(i) {
			if !clean && j < i {
				continue
			}
			fn(i, j, g.weightOf(i, j))
		}
	}
}

// parallelRanges splits [0, n) into roughly equal chunks, one per worker,
// and runs fn(worker, lo, hi) concurrently on shard copies of the graph.
func (g *Graph) parallelRanges(workers int, fn func(w *Graph, worker, lo, hi int)) {
	n := g.blocks.NumEntities
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers > 64 {
		workers = 64 // per-worker result buckets are sized for 64 workers
	}
	if workers <= 1 {
		fn(g, 0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(g.shard(), worker, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// PruneParallel applies the pruning algorithm using the given number of
// workers (0 = GOMAXPROCS) and returns the same retained comparisons as
// Prune, in a canonical order. It supports the Optimized Edge Weighting
// only; node-centric sharding by ID range keeps every neighborhood on one
// worker, so the per-node criteria are computed exactly as in the serial
// implementation.
func (g *Graph) PruneParallel(a Algorithm, workers int) []entity.Pair {
	var out []entity.Pair
	switch a {
	case CEP:
		out = g.cepParallel(workers)
	case WEP:
		out = g.wepParallel(workers)
	case CNP:
		out = g.cnpParallel(workers)
	case WNP:
		out = g.wnpParallel(workers)
	case RedefinedCNP:
		out = g.redefinedCNPParallel(false, workers)
	case ReciprocalCNP:
		out = g.redefinedCNPParallel(true, workers)
	case RedefinedWNP:
		out = g.redefinedWNPParallel(false, workers)
	case ReciprocalWNP:
		out = g.redefinedWNPParallel(true, workers)
	default:
		out = g.Prune(a)
	}
	sortPairs(out)
	return out
}

func sortPairs(pairs []entity.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}

func (g *Graph) wepParallel(workers int) []entity.Pair {
	// Pass 1: collect every edge weight, then take the order-insensitive
	// (sorted) mean so the threshold is bit-identical to the serial one.
	weightBuckets := make([][]float64, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []float64
		w.forEachEdgeRange(lo, hi, func(_, _ entity.ID, wt float64) {
			local = append(local, wt)
		})
		weightBuckets[worker%len(weightBuckets)] = append(weightBuckets[worker%len(weightBuckets)], local...)
	})
	var weights []float64
	for _, b := range weightBuckets {
		weights = append(weights, b...)
	}
	if len(weights) == 0 {
		return nil
	}
	mean := sortedMeanInPlace(weights)

	// Pass 2: retain in per-worker buckets.
	buckets := make([][]entity.Pair, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			if wt >= mean {
				local = append(local, entity.MakePair(i, j))
			}
		})
		buckets[worker%len(buckets)] = append(buckets[worker%len(buckets)], local...)
	})
	return flatten(buckets)
}

func (g *Graph) cepParallel(workers int) []entity.Pair {
	k := g.CardinalityEdgeThreshold()
	if k == 0 {
		return nil
	}
	heaps := make([]*edgeHeap, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		h := newEdgeHeap(k)
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			h.offer(wt, i, j)
		})
		heaps[worker%len(heaps)] = h
	})
	// Merge: the global top-K of the per-worker top-Ks.
	final := newEdgeHeap(k)
	for _, h := range heaps {
		if h == nil {
			continue
		}
		for _, e := range h.items {
			final.offer(e.w, e.i, e.j)
		}
	}
	out := make([]entity.Pair, 0, final.len())
	for _, e := range final.items {
		out = append(out, entity.MakePair(e.i, e.j))
	}
	return out
}

func (g *Graph) cnpParallel(workers int) []entity.Pair {
	k := g.CardinalityNodeThreshold()
	buckets := make([][]entity.Pair, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		h := newEdgeHeap(k)
		var local []entity.Pair
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			h.reset()
			for n, j := range neighbors {
				h.offer(weights[n], i, j)
			}
			for _, e := range h.items {
				local = append(local, entity.MakePair(e.i, e.j))
			}
		})
		buckets[worker%len(buckets)] = local
	})
	return flatten(buckets)
}

func (g *Graph) wnpParallel(workers int) []entity.Pair {
	buckets := make([][]entity.Pair, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			threshold := mean(weights)
			for n, j := range neighbors {
				if weights[n] >= threshold {
					local = append(local, entity.MakePair(i, j))
				}
			}
		})
		buckets[worker%len(buckets)] = local
	})
	return flatten(buckets)
}

func (g *Graph) redefinedCNPParallel(reciprocal bool, workers int) []entity.Pair {
	k := g.CardinalityNodeThreshold()
	type mark struct {
		p entity.Pair
		m uint8
	}
	buckets := make([][]mark, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		h := newEdgeHeap(k)
		var local []mark
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			h.reset()
			for n, j := range neighbors {
				h.offer(weights[n], i, j)
			}
			for _, e := range h.items {
				p := entity.MakePair(e.i, e.j)
				bit := uint8(1)
				if e.i > e.j {
					bit = 2
				}
				local = append(local, mark{p: p, m: bit})
			}
		})
		buckets[worker%len(buckets)] = local
	})
	marks := make(map[entity.Pair]uint8)
	for _, b := range buckets {
		for _, mk := range b {
			marks[mk.p] |= mk.m
		}
	}
	return collectMarks(marks, reciprocal)
}

func (g *Graph) redefinedWNPParallel(reciprocal bool, workers int) []entity.Pair {
	thresholds := make([]float64, g.blocks.NumEntities)
	g.parallelRanges(workers, func(w *Graph, _, lo, hi int) {
		w.forEachNodeRange(lo, hi, func(i entity.ID, _ []entity.ID, weights []float64) {
			thresholds[i] = mean(weights) // disjoint index ranges: no race
		})
	})
	buckets := make([][]entity.Pair, 64)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			okI, okJ := wt >= thresholds[i], wt >= thresholds[j]
			if (reciprocal && okI && okJ) || (!reciprocal && (okI || okJ)) {
				local = append(local, entity.MakePair(i, j))
			}
		})
		buckets[worker%len(buckets)] = local
	})
	return flatten(buckets)
}

func flatten(buckets [][]entity.Pair) []entity.Pair {
	var n int
	for _, b := range buckets {
		n += len(b)
	}
	out := make([]entity.Pair, 0, n)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}
