GO ?= go

# FUZZTIME bounds each fuzz-smoke target; COVER_BASELINE is the minimum
# total statement coverage `make cover` accepts (the pre-harness figure,
# ratcheted up as coverage grows).
FUZZTIME ?= 30s
COVER_BASELINE ?= 88.5

.PHONY: check race cover fuzz-smoke serve-smoke chaos-smoke ci bench-parallel bench-serve bench-json bench-gate

## check: vet, build and test everything (the tier-1 gate).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: run the packages with concurrency — including the root package's
## observability/cancellation tests — under the race detector.
race:
	$(GO) test -race . ./internal/core/... ./internal/block/... ./internal/blocking/... ./internal/obs/... ./internal/oracle/... ./internal/server/... ./internal/shard/... ./internal/incremental/... ./internal/budget/... ./internal/loadgen/... ./internal/fault/... ./internal/par/... ./internal/store/... ./internal/diskindex/... ./cmd/serve

## cover: fail if total statement coverage drops below COVER_BASELINE.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_BASELINE) \
		'/^total:/ { sub(/%/, "", $$3); printf "total coverage %s%% (baseline %s%%)\n", $$3, min; \
		if ($$3+0 < min+0) { print "coverage regressed below baseline"; exit 1 } }'

## fuzz-smoke: run every fuzz target for FUZZTIME each — the differential
## oracle comparators on mutated block collections, the tokenizer, the
## out-of-core add/checkpoint/crash state machine, and the WAL
## crash-replay loop (reference never rolls back).
fuzz-smoke:
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzDiffDirty$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzDiffClean$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/entity -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/diskindex -run '^$$' -fuzz '^FuzzOutOfCore$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/diskindex -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME)

## serve-smoke: build cmd/serve, start it on a random port, resolve a
## profile over HTTP, assert /healthz + /metrics, SIGTERM-drain, exit 0.
serve-smoke:
	sh scripts/serve_smoke.sh

## chaos-smoke: SIGKILL the real binary mid-snapshot (fault-injected
## delay), restart on the surviving artifact, assert /readyz green and
## that a corrupted snapshot reload yields 422. Runs the same crash
## window against the sharded (-shards 4) manifest+segments layout.
chaos-smoke:
	sh scripts/chaos_smoke.sh

## ci: what the GitHub Actions workflow runs.
ci: check race cover fuzz-smoke serve-smoke chaos-smoke bench-gate

## bench-parallel: regenerate the worker-sweep numbers locally (output is
## machine-specific and gitignored; honest wall-clock depends on host cores).
## Time-based -benchtime with -count=5 gives benchstat enough samples to
## separate signal from scheduler noise; compare two runs with
##   go run golang.org/x/perf/cmd/benchstat old.txt new.txt
## (or eyeball the per-count spread if benchstat is unavailable).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 2s -count=5 .

## bench-serve: micro-bench the batched server resolve path (reports
## ns/op, allocs and the achieved profiles/batch).
bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkServerResolve' ./internal/server

## bench-json: emit the headline benchmark trajectory as JSON
## (BENCH_PR10.json format: ns/op, B/op, allocs/op, p50/p99 latency,
## streamed comparisons/ms).
bench-json:
	sh scripts/bench_json.sh

## bench-gate: re-run the headline benchmarks and fail if a gated metric
## regressed beyond its tolerance vs the committed BENCH_PR10.json.
## allocs/op is always gated (hardware-independent); add -ns via
## BENCH_GATE_FLAGS for same-machine wall-clock gating.
bench-gate:
	$(GO) run ./cmd/benchjson gate -baseline BENCH_PR10.json $(BENCH_GATE_FLAGS)
