// Package blockproc implements the block-processing methods that surround
// meta-blocking in the paper: Block Purging and Block Filtering (pre-
// processing, §2 and §4.1), Comparison Propagation (LeCoBI-based redundant
// comparison removal, §2), the Iterative Blocking baseline (§6.4), and
// Graph-free Meta-blocking (Block Filtering + Comparison Propagation,
// §4.1 / §6.4).
package blockproc

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// BlockPurging discards oversized blocks that are dominated by redundant
// and superfluous comparisons (paper §2, ref [21]). Following the paper's
// experimental setup (§6.2), a block is purged when it contains more than
// MaxSizeRatio of the input entity profiles; an optional absolute
// comparison cap can purge blocks by cardinality as well.
type BlockPurging struct {
	// MaxSizeRatio purges blocks with more than MaxSizeRatio·|E| profiles.
	// Values <= 0 default to 0.5, the paper's setting.
	MaxSizeRatio float64
	// MaxComparisons, when positive, additionally purges blocks whose
	// individual cardinality ‖b‖ exceeds it.
	MaxComparisons int64
}

// Apply returns a new collection without the purged blocks. Block order is
// preserved.
func (p BlockPurging) Apply(c *block.Collection) *block.Collection {
	ratio := p.MaxSizeRatio
	if ratio <= 0 {
		ratio = 0.5
	}
	maxSize := int(ratio * float64(c.NumEntities))
	out := &block.Collection{Task: c.Task, NumEntities: c.NumEntities, Split: c.Split}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.Size() > maxSize {
			continue
		}
		if p.MaxComparisons > 0 && b.Comparisons() > p.MaxComparisons {
			continue
		}
		out.Blocks = append(out.Blocks, *b)
	}
	return out
}

// retainBlock reports whether a filtered block still entails at least one
// comparison and should be kept (Alg. 1, lines 11-12, adapted to both ER
// tasks).
func retainBlock(task entity.Task, e1, e2 []entity.ID) bool {
	if task == entity.CleanClean {
		return len(e1) > 0 && len(e2) > 0
	}
	return len(e1) > 1
}
