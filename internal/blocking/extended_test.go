package blocking

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func oneAttr(value string) entity.Profile {
	var p entity.Profile
	p.Add("v", value)
	return p
}

func TestCanopyClusteringMostSimilarShareOneBlock(t *testing.T) {
	// Two near-identical profiles (above the tight threshold) plus a
	// loosely similar one.
	c := entity.NewDirty([]entity.Profile{
		oneAttr("alpha beta gamma delta"),
		oneAttr("alpha beta gamma delta epsilon"),
		oneAttr("alpha beta zeta"),
	})
	blocks := CanopyClustering{LooseThreshold: 2, TightThreshold: 4}.Build(c)
	if blocks.Len() == 0 {
		t.Fatal("no canopies")
	}
	idx := block.NewEntityIndex(blocks)
	// Redundancy-negative: the most similar pair (0,1) shares exactly one
	// canopy.
	if n := idx.CommonBlocks(0, 1); n != 1 {
		t.Fatalf("tight pair shares %d canopies, want exactly 1", n)
	}
}

func TestCanopyClusteringDeterministicPerSeed(t *testing.T) {
	c := paperexample.Collection()
	a := CanopyClustering{Seed: 5}.Build(c)
	b := CanopyClustering{Seed: 5}.Build(c)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different canopies")
	}
}

func TestCanopyClusteringCleanClean(t *testing.T) {
	c := entity.NewCleanClean(
		[]entity.Profile{oneAttr("alpha beta gamma"), oneAttr("solo only here")},
		[]entity.Profile{oneAttr("alpha beta gamma extra"), oneAttr("unrelated words")},
	)
	blocks := CanopyClustering{LooseThreshold: 2, TightThreshold: 3}.Build(c)
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		if len(b.E1) == 0 || len(b.E2) == 0 {
			t.Fatalf("clean-clean canopy without both sides: %+v", b)
		}
	}
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 2}})
	if blocks.DetectedDuplicates(gt) != 1 {
		t.Fatal("duplicate pair not canopied together")
	}
}

func TestExtendedQGramKeys(t *testing.T) {
	// "miller": grams mil, ill, lle, ler (k=4). T=0.9 → min=4 → drop 0:
	// only the full concatenation.
	keys := extendedQGramKeys("miller", 3, 0.9)
	if len(keys) != 1 || keys[0] != "mil"+"ill"+"lle"+"ler" {
		t.Fatalf("T=0.9 keys = %v", keys)
	}
	// T=0.7 → min=⌈2.8⌉=3 → drop ≤ 1: 1 + 4 keys.
	keys = extendedQGramKeys("miller", 3, 0.7)
	if len(keys) != 5 {
		t.Fatalf("T=0.7 produced %d keys: %v", len(keys), keys)
	}
	// Short tokens pass through whole.
	if got := extendedQGramKeys("ab", 3, 0.9); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short token keys = %v", got)
	}
}

func TestExtendedQGramsMorePreciseThanQGrams(t *testing.T) {
	// "miller" vs "muller": share grams (lle, ler) but not most of them —
	// plain q-grams co-block them, extended q-grams at T=0.9 must not.
	c := entity.NewDirty([]entity.Profile{oneAttr("miller"), oneAttr("muller")})
	plain := QGramsBlocking{Q: 3}.Build(c)
	if plain.Len() == 0 {
		t.Fatal("plain q-grams should co-block miller/muller")
	}
	extended := ExtendedQGramsBlocking{Q: 3, Threshold: 0.9}.Build(c)
	if extended.Len() != 0 {
		t.Fatalf("extended q-grams at T=0.9 co-blocked dissimilar tokens: %+v", extended.Blocks)
	}
	// Identical tokens always co-block.
	c2 := entity.NewDirty([]entity.Profile{oneAttr("miller"), oneAttr("miller")})
	if (ExtendedQGramsBlocking{}).Build(c2).Len() == 0 {
		t.Fatal("identical tokens must co-block")
	}
}

func TestExtendedQGramsTypoRobustness(t *testing.T) {
	// One substituted character: "jonathan" vs "jonathon". With T low
	// enough to drop 2 grams, the pair must share a key.
	c := entity.NewDirty([]entity.Profile{oneAttr("jonathan"), oneAttr("jonathon")})
	blocks := ExtendedQGramsBlocking{Q: 3, Threshold: 0.5}.Build(c)
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 1}})
	if blocks.DetectedDuplicates(gt) != 1 {
		t.Fatal("typo pair not co-blocked at T=0.5")
	}
}

func TestExtendedSortedNeighborhood(t *testing.T) {
	// Keys: alpha{0,1}, beta{2}, gamma{3}. Window 2 → blocks over
	// {alpha,beta} = {0,1,2} and {beta,gamma} = {2,3}.
	c := entity.NewDirty([]entity.Profile{
		oneAttr("alpha"), oneAttr("alpha"), oneAttr("beta"), oneAttr("gamma"),
	})
	blocks := ExtendedSortedNeighborhood{Window: 2}.Build(c)
	if blocks.Len() != 2 {
		t.Fatalf("|B| = %d, want 2: %+v", blocks.Len(), blocks.Blocks)
	}
	want := [][]entity.ID{{0, 1, 2}, {2, 3}}
	for i, b := range blocks.Blocks {
		if !reflect.DeepEqual(b.E1, want[i]) {
			t.Fatalf("block %d = %v, want %v", i, b.E1, want[i])
		}
	}
}

func TestExtendedSortedNeighborhoodSkewRobust(t *testing.T) {
	// A very frequent key must not push its profiles out of each other's
	// windows (the flaw of record-level SN the extension fixes): all
	// "common" profiles plus the "uncommon" one co-occur.
	profiles := []entity.Profile{
		oneAttr("common"), oneAttr("common"), oneAttr("common"),
		oneAttr("common"), oneAttr("uncommon"),
	}
	c := entity.NewDirty(profiles)
	blocks := ExtendedSortedNeighborhood{Window: 2}.Build(c)
	idx := block.NewEntityIndex(blocks)
	if idx.CommonBlocks(0, 3) == 0 {
		t.Fatal("same-key profiles not co-blocked")
	}
	if idx.CommonBlocks(0, 4) == 0 {
		t.Fatal("adjacent-key profiles not co-blocked")
	}
}

func TestExtendedMethodsCleanCleanSplit(t *testing.T) {
	c := entity.NewCleanClean(
		[]entity.Profile{oneAttr("miller janes")},
		[]entity.Profile{oneAttr("miller johns")},
	)
	for _, m := range []Method{
		ExtendedQGramsBlocking{},
		ExtendedSortedNeighborhood{},
	} {
		blocks := m.Build(c)
		for i := range blocks.Blocks {
			b := &blocks.Blocks[i]
			if len(b.E1) == 0 || len(b.E2) == 0 {
				t.Fatalf("%s: block without both sides", m.Name())
			}
		}
	}
}

func TestNewMethodNamesUnique(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []Method{
		TokenBlocking{}, QGramsBlocking{}, SuffixArrayBlocking{},
		AttributeClusteringBlocking{}, StandardBlocking{}, SortedNeighborhood{},
		CanopyClustering{}, ExtendedQGramsBlocking{}, ExtendedSortedNeighborhood{},
	} {
		n := m.Name()
		if n == "" || names[n] {
			t.Fatalf("name %q empty or duplicate", n)
		}
		names[n] = true
	}
}

func TestCanopyKeysAreStable(t *testing.T) {
	c := paperexample.Collection()
	blocks := CanopyClustering{Seed: 2}.Build(c)
	for i := range blocks.Blocks {
		if !strings.HasPrefix(blocks.Blocks[i].Key, "canopy-") {
			t.Fatalf("bad canopy key %q", blocks.Blocks[i].Key)
		}
	}
	var keys []string
	for i := range blocks.Blocks {
		keys = append(keys, blocks.Blocks[i].Key)
	}
	if !sort.StringsAreSorted(keys) {
		// Canopy order follows the shuffled seed order; keys need not be
		// sorted — just distinct.
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate canopy key %q", k)
			}
			seen[k] = true
		}
	}
}
