package core

import (
	"slices"
	"sync"

	"metablocking/internal/arena"
	"metablocking/internal/entity"
	"metablocking/internal/floatsum"
	"metablocking/internal/obs"
	"metablocking/internal/par"
)

// shard returns a Graph view sharing the immutable state (blocks, Entity
// Index, per-block cardinalities, degrees) but with private ScanCount
// scratch, so multiple shards can traverse concurrently. Scratch comes
// from the graph's pool; parallelRanges recycles it when the shard's work
// is done.
func (g *Graph) shard() *Graph {
	ng := *g
	ng.sc = g.getScratch()
	return &ng
}

func (g *Graph) getScratch() *scanScratch {
	if v := g.scratchPool.Get(); v != nil {
		return v.(*scanScratch)
	}
	return &scanScratch{cells: make([]scanCell, g.blocks.NumEntities)}
}

// forEachNodeRange is ForEachNode restricted to node IDs in [lo, hi).
func (g *Graph) forEachNodeRange(lo, hi int, fn func(i entity.ID, neighbors []entity.ID, weights []float64)) {
	tick := obsTick{o: g.obs, m: g.meter}
	var weighed int64
	for id := lo; id < hi; id++ {
		if tick.step() {
			break
		}
		i := entity.ID(id)
		if g.index.NumBlocks(i) == 0 {
			continue
		}
		neighbors := g.scanNeighborhood(i)
		if len(neighbors) == 0 {
			continue
		}
		weights := g.fillWeights(i, neighbors)
		weighed += int64(len(neighbors))
		fn(i, neighbors, weights)
	}
	tick.flush()
	g.obs.Counter(obs.CtrEdgesWeighted).Add(weighed)
}

// forEachEdgeRange is ForEachEdge restricted to edges whose emitting
// endpoint (the smaller ID for Dirty ER, the E1 member for Clean-Clean ER)
// lies in [lo, hi). Every emitted pair's canonical A is the emitting
// endpoint, so per-range result buckets cover disjoint ascending A ranges.
func (g *Graph) forEachEdgeRange(lo, hi int, fn func(i, j entity.ID, w float64)) {
	tick := obsTick{o: g.obs, m: g.meter}
	clean := g.blocks.Task == entity.CleanClean
	if clean && hi > g.blocks.Split {
		hi = g.blocks.Split
	}
	var weighed int64
	for id := lo; id < hi; id++ {
		if tick.step() {
			break
		}
		i := entity.ID(id)
		bi := g.index.NumBlocks(i)
		if bi == 0 {
			continue
		}
		var di int32
		if g.degrees != nil {
			di = g.degrees[i]
		}
		cells := g.sc.cells
		for _, j := range g.scanNeighborhood(i) {
			if !clean && j < i {
				continue
			}
			var dj int32
			if g.degrees != nil {
				dj = g.degrees[j]
			}
			weighed++
			fn(i, j, g.ctx.weight(cells[j].common, bi, g.index.NumBlocks(j), di, dj))
		}
	}
	tick.flush()
	g.obs.Counter(obs.CtrEdgesWeighted).Add(weighed)
}

// meanOf is the exact neighborhood mean (see internal/floatsum), computed
// with this graph's persistent accumulator so the partials buffer is
// reused across every node of a traversal — floatsum.Mean's stack buffer
// escapes once per call. Identical Add sequence and rounding, so the
// threshold is bit-identical.
func (g *Graph) meanOf(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	a := &g.sc.meanAcc
	a.Reset()
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum() / float64(len(xs))
}

// parallelRanges splits [0, n) into roughly equal chunks, one per worker,
// and runs fn(worker, lo, hi) concurrently on shard copies of the graph.
// workers must already be resolved with par.Resolve; trailing workers with
// an empty chunk are not started, so fn may index per-worker buckets with
// its worker argument directly.
func (g *Graph) parallelRanges(workers int, fn func(w *Graph, worker, lo, hi int)) {
	n := g.blocks.NumEntities
	if workers <= 1 {
		fn(g, 0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			s := g.shard()
			fn(s, worker, lo, hi)
			g.scratchPool.Put(s.sc)
		}(w, lo, hi)
	}
	wg.Wait()
}

// PruneParallel applies the pruning algorithm using the given number of
// workers (0 or negative = GOMAXPROCS) and returns the same retained
// comparisons as Prune, in a canonical order. It supports the Optimized
// Edge Weighting only; node-centric sharding by ID range keeps every
// neighborhood on one worker, so the per-node criteria are computed exactly
// as in the serial implementation.
func (g *Graph) PruneParallel(a Algorithm, workers int) []entity.Pair {
	if workers == 0 {
		workers = -1 // historical PruneParallel convention: 0 = GOMAXPROCS
	}
	workers = par.Resolve(workers, g.blocks.NumEntities)
	g.obs.Gauge(obs.GaugeWorkersPrune).Set(int64(workers))
	switch a {
	case CEP:
		return g.cepParallel(workers)
	case WEP:
		return g.wepParallel(workers)
	case CNP:
		return g.cnpParallel(workers)
	case WNP:
		return g.wnpParallel(workers)
	case RedefinedCNP:
		return g.redefinedCNPParallel(false, workers)
	case ReciprocalCNP:
		return g.redefinedCNPParallel(true, workers)
	case RedefinedWNP:
		return g.redefinedWNPParallel(false, workers)
	case ReciprocalWNP:
		return g.redefinedWNPParallel(true, workers)
	default:
		out := g.Prune(a)
		sortPairs(out)
		return out
	}
}

func pairLess(p, q entity.Pair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

func comparePairs(p, q entity.Pair) int {
	switch {
	case p.A < q.A:
		return -1
	case p.A > q.A:
		return 1
	case p.B < q.B:
		return -1
	case p.B > q.B:
		return 1
	}
	return 0
}

// pairKeys pools the packed-key buffers of concurrent sortPairs calls
// (sortBucketsConcurrently sorts every worker bucket at once).
var pairKeys arena.Pool[uint64]

// sortPairs orders pairs canonically by (A, B). Exact duplicates (the
// redundant comparisons of CNP/WNP) are indistinguishable, so the unstable
// sort is deterministic. Large slices are sorted through packed uint64
// keys — IDs are non-negative, so (A, B) lexicographic order equals the
// numeric order of A<<32|B — because the specialized slices.Sort beats the
// comparison-function sort by a wide margin on the pair-assembly path.
func sortPairs(pairs []entity.Pair) {
	if len(pairs) < 64 {
		slices.SortFunc(pairs, comparePairs)
		return
	}
	b := pairKeys.GetCap(len(pairs))
	keys := b.S[:len(pairs)]
	for i, p := range pairs {
		keys[i] = uint64(uint32(p.A))<<32 | uint64(uint32(p.B))
	}
	slices.Sort(keys)
	for i, k := range keys {
		pairs[i] = entity.Pair{A: int32(k >> 32), B: int32(uint32(k))}
	}
	b.S = keys
	pairKeys.Put(b)
}

// assembleRangeBuckets turns per-worker buckets produced from disjoint
// ascending emitting-endpoint ranges (forEachEdgeRange, the mark reducers)
// into one canonically ordered slice: each bucket is sorted concurrently,
// and because bucket b's pairs all have smaller A than bucket b+1's, the
// sorted buckets concatenate into a globally sorted result — no k-way
// merge and no global sort.
func assembleRangeBuckets(buckets [][]entity.Pair) []entity.Pair {
	sortBucketsConcurrently(buckets)
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([]entity.Pair, 0, total)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// assembleNodeBuckets merges per-worker buckets whose pairs may interleave
// across the whole ID space (node-centric traversals emit MakePair(i, j)
// with j on either side of the worker's range): each bucket is sorted
// concurrently, then adjacent runs are merged pairwise — also
// concurrently — into ping-pong buffers until one sorted run remains.
func assembleNodeBuckets(buckets [][]entity.Pair) []entity.Pair {
	sortBucketsConcurrently(buckets)

	// Pack the sorted buckets into one backing array, tracking run bounds.
	total := 0
	runs := make([]int, 0, len(buckets)+1)
	runs = append(runs, 0)
	for _, b := range buckets {
		if len(b) > 0 {
			total += len(b)
			runs = append(runs, total)
		}
	}
	cur := make([]entity.Pair, total)
	{
		off := 0
		for _, b := range buckets {
			off += copy(cur[off:], b)
		}
	}
	if len(runs) <= 2 {
		return cur
	}
	tmp := make([]entity.Pair, total)
	for len(runs) > 2 {
		nextRuns := make([]int, 0, len(runs)/2+2)
		nextRuns = append(nextRuns, 0)
		var thunks []func()
		for i := 0; i+2 < len(runs); i += 2 {
			lo, mid, hi := runs[i], runs[i+1], runs[i+2]
			nextRuns = append(nextRuns, hi)
			thunks = append(thunks, func() {
				mergePairRuns(tmp[lo:hi], cur[lo:mid], cur[mid:hi])
			})
		}
		if len(runs)%2 == 0 { // odd run count: copy the trailing run over
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			nextRuns = append(nextRuns, hi)
			thunks = append(thunks, func() { copy(tmp[lo:hi], cur[lo:hi]) })
		}
		par.Do(thunks...)
		cur, tmp = tmp, cur
		runs = nextRuns
	}
	return cur
}

// mergePairRuns merges the two sorted runs a and b into dst
// (len(dst) == len(a)+len(b)), preferring a on ties.
func mergePairRuns(dst, a, b []entity.Pair) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if pairLess(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// sortBucketsConcurrently sorts every bucket canonically, one goroutine per
// non-trivial bucket.
func sortBucketsConcurrently(buckets [][]entity.Pair) {
	var thunks []func()
	for _, b := range buckets {
		if len(b) > 1 {
			b := b
			thunks = append(thunks, func() { sortPairs(b) })
		}
	}
	if len(thunks) == 0 {
		return
	}
	par.Do(thunks...)
}

func (g *Graph) wepParallel(workers int) []entity.Pair {
	// Pass 1: per-worker exact partial sums (no edge weight is ever
	// materialized). The exact sum is a property of the weight multiset, so
	// the resulting mean is bit-identical to the serial threshold for every
	// worker count.
	accs := make([]floatsum.Acc, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		acc := &accs[worker]
		w.forEachEdgeRange(lo, hi, func(_, _ entity.ID, wt float64) {
			acc.Add(wt)
		})
	})
	var total floatsum.Acc
	for i := range accs {
		total.Merge(&accs[i])
	}
	if total.Count() == 0 {
		return nil
	}
	mean := total.Mean()

	// Pass 2: retain in per-worker buckets over disjoint A ranges.
	buckets := make([][]entity.Pair, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			if wt >= mean {
				local = append(local, entity.MakePair(i, j))
			}
		})
		buckets[worker] = local
	})
	return assembleRangeBuckets(buckets)
}

func (g *Graph) cepParallel(workers int) []entity.Pair {
	k := g.CardinalityEdgeThreshold()
	if k == 0 {
		return nil
	}
	heaps := make([]*edgeHeap, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		h := newEdgeHeap(k)
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			h.offer(wt, i, j)
		})
		heaps[worker] = h
	})
	// Merge: the global top-K of the per-worker top-Ks.
	final := newEdgeHeap(k)
	for _, h := range heaps {
		if h == nil {
			continue
		}
		for _, e := range h.items {
			final.offer(e.w, e.i, e.j)
		}
	}
	out := make([]entity.Pair, 0, final.len())
	for _, e := range final.items {
		out = append(out, entity.MakePair(e.i, e.j))
	}
	sortPairs(out)
	return out
}

func (g *Graph) cnpParallel(workers int) []entity.Pair {
	k := g.CardinalityNodeThreshold()
	buckets := make([][]entity.Pair, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		h := newEdgeHeap(k)
		var local []entity.Pair
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			h.reset()
			for n, j := range neighbors {
				h.offer(weights[n], i, j)
			}
			for _, e := range h.items {
				local = append(local, entity.MakePair(e.i, e.j))
			}
		})
		buckets[worker] = local
	})
	return assembleNodeBuckets(buckets)
}

func (g *Graph) wnpParallel(workers int) []entity.Pair {
	buckets := make([][]entity.Pair, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			threshold := w.meanOf(weights)
			for n, j := range neighbors {
				if weights[n] >= threshold {
					local = append(local, entity.MakePair(i, j))
				}
			}
		})
		buckets[worker] = local
	})
	return assembleNodeBuckets(buckets)
}

// pairMark is one endpoint's vote for a pair: bit 1 when the smaller
// endpoint ranked the edge in its top-k, bit 2 when the larger one did.
type pairMark struct {
	p entity.Pair
	m uint8
}

// redefinedCNPParallel implements the Redefined (OR) and Reciprocal (AND)
// CNP variants with sharded mark accumulation instead of a global hash
// map: finder workers emit per-reducer mark lists partitioned by the
// pair's canonical A, and each reducer sorts its shard and merges mark
// runs in one pass. Reducer shards cover disjoint ascending A ranges, so
// their outputs concatenate into the canonical global order.
func (g *Graph) redefinedCNPParallel(reciprocal bool, workers int) []entity.Pair {
	k := g.CardinalityNodeThreshold()
	n := g.blocks.NumEntities
	reducers := workers
	marks := make([][][]pairMark, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		local := make([][]pairMark, reducers)
		h := newEdgeHeap(k)
		w.forEachNodeRange(lo, hi, func(i entity.ID, neighbors []entity.ID, weights []float64) {
			h.reset()
			for nn, j := range neighbors {
				h.offer(weights[nn], i, j)
			}
			for _, e := range h.items {
				p := entity.MakePair(e.i, e.j)
				bit := uint8(1)
				if e.i > e.j {
					bit = 2
				}
				r := int(uint64(p.A) * uint64(reducers) / uint64(n))
				local[r] = append(local[r], pairMark{p: p, m: bit})
			}
		})
		marks[worker] = local
	})

	outs := make([][]entity.Pair, reducers)
	par.Ranges(reducers, reducers, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			outs[r] = reduceMarkShard(marks, r, reciprocal)
		}
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]entity.Pair, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// reduceMarkShard gathers every worker's marks for reducer shard r, sorts
// them canonically and ORs each pair's bits in a single run scan.
func reduceMarkShard(marks [][][]pairMark, r int, reciprocal bool) []entity.Pair {
	total := 0
	for _, workerMarks := range marks {
		if workerMarks != nil {
			total += len(workerMarks[r])
		}
	}
	if total == 0 {
		return nil
	}
	shard := make([]pairMark, 0, total)
	for _, workerMarks := range marks {
		if workerMarks != nil {
			shard = append(shard, workerMarks[r]...)
		}
	}
	// Equal pairs may carry different bits; their relative order is
	// irrelevant because the run scan ORs them.
	slices.SortFunc(shard, func(a, b pairMark) int { return comparePairs(a.p, b.p) })
	var out []entity.Pair
	for i := 0; i < len(shard); {
		p := shard[i].p
		m := shard[i].m
		for i++; i < len(shard) && shard[i].p == p; i++ {
			m |= shard[i].m
		}
		if !reciprocal || m == 3 {
			out = append(out, p)
		}
	}
	return out
}

func (g *Graph) redefinedWNPParallel(reciprocal bool, workers int) []entity.Pair {
	thresholds := make([]float64, g.blocks.NumEntities)
	g.parallelRanges(workers, func(w *Graph, _, lo, hi int) {
		w.forEachNodeRange(lo, hi, func(i entity.ID, _ []entity.ID, weights []float64) {
			thresholds[i] = w.meanOf(weights) // disjoint index ranges: no race
		})
	})
	buckets := make([][]entity.Pair, workers)
	g.parallelRanges(workers, func(w *Graph, worker, lo, hi int) {
		var local []entity.Pair
		w.forEachEdgeRange(lo, hi, func(i, j entity.ID, wt float64) {
			okI, okJ := wt >= thresholds[i], wt >= thresholds[j]
			if (reciprocal && okI && okJ) || (!reciprocal && (okI || okJ)) {
				local = append(local, entity.MakePair(i, j))
			}
		})
		buckets[worker] = local
	})
	return assembleRangeBuckets(buckets)
}
