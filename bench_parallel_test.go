package metablocking

// BenchmarkParallelPipeline sweeps the Workers knob over the full pipeline
// (sharded Token Blocking → Block Purging → parallel Block Filtering →
// parallel graph construction → parallel pruning) at scale 0.5 — the
// configuration recorded in results_parallel_scale0.5.txt. Workers=1 is
// the serial baseline; every worker count retains the exact same pairs.

import (
	"fmt"
	"sync"
	"testing"

	"metablocking/internal/blockproc"
	"metablocking/internal/datagen"
)

// parallelBenchScale matches the recorded results_parallel_scale0.5.txt run.
const parallelBenchScale = 0.5

var (
	parallelBenchOnce sync.Once
	parallelBenchDS   datagen.Dataset
)

func parallelBenchDataset() datagen.Dataset {
	parallelBenchOnce.Do(func() {
		parallelBenchDS = datagen.D2D(parallelBenchScale)
	})
	return parallelBenchDS
}

func BenchmarkParallelPipeline(b *testing.B) {
	ds := parallelBenchDataset()
	var serialRetained int
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Pipeline{
					FilterRatio: 0.8,
					Scheme:      JS,
					Algorithm:   ReciprocalWNP,
					Workers:     workers,
				}.Run(ds.Collection)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("nothing retained")
				}
				if serialRetained == 0 {
					serialRetained = len(res.Pairs)
				} else if len(res.Pairs) != serialRetained {
					b.Fatalf("workers=%d retained %d pairs, serial retained %d",
						workers, len(res.Pairs), serialRetained)
				}
			}
		})
	}
}

// BenchmarkParallelStages isolates the worker sweep per stage on the same
// dataset: blocking, filtering, and graph+pruning.
func BenchmarkParallelStages(b *testing.B) {
	ds := parallelBenchDataset()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("blocking/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if (TokenBlocking{Workers: workers}).Build(ds.Collection).Len() == 0 {
					b.Fatal("no blocks")
				}
			}
		})
	}
	blocks := BuildBlocks(ds.Collection, TokenBlocking{}, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("filtering/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if (blockproc.BlockFiltering{Ratio: 0.8, Workers: workers}).Apply(blocks).Len() == 0 {
					b.Fatal("no blocks")
				}
			}
		})
	}
}
