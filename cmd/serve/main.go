// Command serve runs the online Entity Resolution query service: an
// HTTP/JSON façade over the incremental resolver that micro-batches
// concurrent /v1/resolve requests into single index passes, sheds load
// with 429 + Retry-After when its bounded admission queue fills, and
// hot-swaps pre-blocked snapshots (written by internal/store) via
// /v1/admin/reload without failing in-flight requests.
//
// Endpoints: POST /v1/resolve, POST /v1/admin/reload, GET /healthz,
// GET /readyz, GET /metrics, GET /debug/vars.
//
// Example:
//
//	go run ./cmd/serve -addr 127.0.0.1:8080 -scheme js -k 5 &
//	curl -X POST -d '{"attributes":{"name":["Jack Miller"]}}' \
//	    http://127.0.0.1:8080/v1/resolve
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops, accepted
// requests are answered, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/incremental"
	"metablocking/internal/server"
)

// options carries the parsed command-line configuration.
type options struct {
	addr        string
	scheme      string
	k           int
	maxBlock    int
	minToken    int
	batchWindow time.Duration
	batchMax    int
	queueDepth  int
	retryAfter  time.Duration
	snapshot    string
	metrics     bool
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	flag.StringVar(&opts.scheme, "scheme", "js", "weighting scheme: arcs, cbs, ecbs, js")
	flag.IntVar(&opts.k, "k", 10, "max candidates per arrival (0 = mean-weight pruning)")
	flag.IntVar(&opts.maxBlock, "maxblock", 1000, "ignore blocks larger than this")
	flag.IntVar(&opts.minToken, "min-token", 0, "drop tokens shorter than this at blocking time")
	flag.DurationVar(&opts.batchWindow, "batch-window", 2*time.Millisecond, "max wait for more arrivals before flushing a micro-batch")
	flag.IntVar(&opts.batchMax, "batch-max", 64, "max arrivals per index pass")
	flag.IntVar(&opts.queueDepth, "queue", 1024, "admission queue bound; overflow sheds with 429")
	flag.DurationVar(&opts.retryAfter, "retry-after", time.Second, "advisory back-off sent with 429 responses")
	flag.StringVar(&opts.snapshot, "snapshot", "", "resolver snapshot to load at startup (see /v1/admin/reload)")
	flag.BoolVar(&opts.metrics, "metrics", false, "print the counter table to stderr on exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is canceled, then drains
// gracefully. When ready is non-nil the resolved listen address is sent on
// it once the listener is bound (used by tests and by nothing else).
func run(ctx context.Context, opts options, logw io.Writer, ready chan<- string) error {
	scheme, err := parseScheme(opts.scheme)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Resolver: incremental.Config{
			Scheme:         scheme,
			K:              opts.k,
			MaxBlockSize:   opts.maxBlock,
			MinTokenLength: opts.minToken,
		},
		BatchWindow: opts.batchWindow,
		MaxBatch:    opts.batchMax,
		QueueDepth:  opts.queueDepth,
		RetryAfter:  opts.retryAfter,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if opts.snapshot != "" {
		n, err := srv.ReloadFile(opts.snapshot)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		fmt.Fprintf(logw, "serve: loaded snapshot %s (%d profiles)\n", opts.snapshot, n)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(logw, "serve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener (in-flight handlers finish),
	// then answer every accepted request before exiting.
	fmt.Fprintln(logw, "serve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close()
	if opts.metrics {
		fmt.Fprint(logw, srv.Metrics().Snapshot().Table())
	}
	fmt.Fprintf(logw, "serve: drained, %d profiles resolved\n", srv.Size())
	return nil
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "arcs":
		return core.ARCS, nil
	case "cbs":
		return core.CBS, nil
	case "ecbs":
		return core.ECBS, nil
	case "js":
		return core.JS, nil
	default:
		return 0, fmt.Errorf("unknown or unsupported scheme %q: %w (EJS needs global state)", s, core.ErrUnsupportedScheme)
	}
}
