package metablocking

// Benchmarks regenerating the computational kernels behind every table and
// figure of the paper's evaluation (§6). The full tables themselves are
// printed by cmd/experiments; these benches measure the kernels at a
// reduced scale so `go test -bench=.` stays laptop-friendly.
//
//	BenchmarkTable2Blocking      Token Blocking + Block Purging (Table 1a/2)
//	BenchmarkTable1Filtering     Block Filtering r=0.8 (Table 1b)
//	BenchmarkFigure10Sweep       Block Filtering at r = 0.25 / 0.55 / 0.85
//	BenchmarkTable3Pruning       CEP/CNP/WEP/WNP, original weighting, before/after filtering
//	BenchmarkTable5Weighting     Alg. 2 vs Alg. 3 edge weighting (the paper's headline speedup)
//	BenchmarkTable4NewPruning    Redefined/Reciprocal CNP/WNP on filtered blocks
//	BenchmarkTable6Baselines     Graph-free Meta-blocking and Iterative Blocking
//	BenchmarkAblation*           design-choice ablations (DESIGN.md §6)

import (
	"sync"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
)

// benchScale keeps the full bench suite in the minutes range.
const benchScale = 0.08

type benchData struct {
	ds       datagen.Dataset
	original *block.Collection
	filtered *block.Collection
}

var (
	benchOnce  sync.Once
	benchState map[string]*benchData
)

func benchDatasets(b *testing.B) map[string]*benchData {
	b.Helper()
	benchOnce.Do(func() {
		benchState = make(map[string]*benchData)
		for _, ds := range []datagen.Dataset{
			datagen.D1C(benchScale), datagen.D2D(benchScale),
		} {
			blocks := blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(ds.Collection))
			benchState[ds.Name] = &benchData{
				ds:       ds,
				original: blocks,
				filtered: blockproc.BlockFiltering{Ratio: 0.8}.Apply(blocks),
			}
		}
	})
	return benchState
}

func forEachDataset(b *testing.B, fn func(b *testing.B, d *benchData)) {
	for _, name := range []string{"D1C", "D2D"} {
		d := benchDatasets(b)[name]
		b.Run(name, func(b *testing.B) { fn(b, d) })
	}
}

// BenchmarkTable2Blocking measures extracting the original block
// collections (Token Blocking + Block Purging), the OTime(B) of Table 1(a).
func BenchmarkTable2Blocking(b *testing.B) {
	forEachDataset(b, func(b *testing.B, d *benchData) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blocks := blocking.TokenBlocking{}.Build(d.ds.Collection)
			blocks = blockproc.BlockPurging{}.Apply(blocks)
			if blocks.Len() == 0 {
				b.Fatal("no blocks")
			}
		}
	})
}

// BenchmarkTable1Filtering measures Block Filtering at the paper's tuned
// r=0.80 (Table 1b).
func BenchmarkTable1Filtering(b *testing.B) {
	forEachDataset(b, func(b *testing.B, d *benchData) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := blockproc.BlockFiltering{Ratio: 0.8}.Apply(d.original)
			if out.Len() == 0 {
				b.Fatal("no blocks")
			}
		}
	})
}

// BenchmarkFigure10Sweep measures Block Filtering at the sweep's
// representative ratios.
func BenchmarkFigure10Sweep(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	for _, r := range []struct {
		name  string
		ratio float64
	}{{"r=0.25", 0.25}, {"r=0.55", 0.55}, {"r=0.85", 0.85}} {
		b.Run(r.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blockproc.BlockFiltering{Ratio: r.ratio}.Apply(d.original)
			}
		})
	}
}

// BenchmarkTable3Pruning measures the four existing pruning schemes with
// the Original Edge Weighting (Alg. 2), on the original and the filtered
// blocks — the before/after comparison of Table 3.
func BenchmarkTable3Pruning(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	for _, alg := range []core.Algorithm{core.CEP, core.CNP, core.WEP, core.WNP} {
		for _, in := range []struct {
			name   string
			blocks *block.Collection
		}{{"original", d.original}, {"filtered", d.filtered}} {
			b.Run(alg.String()+"/"+in.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := core.Run(in.blocks, core.Config{
						Scheme: core.JS, Algorithm: alg, OriginalWeighting: true,
					})
					if len(res.Pairs) == 0 {
						b.Fatal("nothing retained")
					}
				}
			})
		}
	}
}

// BenchmarkTable5Weighting isolates the paper's headline efficiency
// result: Optimized Edge Weighting (Alg. 3) vs the Original one (Alg. 2),
// enumerating every edge of the filtered blocking graph with its weight.
func BenchmarkTable5Weighting(b *testing.B) {
	forEachDataset(b, func(b *testing.B, d *benchData) {
		g := core.NewGraph(d.filtered, core.JS)
		b.Run("original", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var n int64
				g.ForEachEdgeOriginal(func(_, _ ID, _ float64) { n++ })
				if n == 0 {
					b.Fatal("no edges")
				}
			}
		})
		b.Run("optimized", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var n int64
				g.ForEachEdge(func(_, _ ID, _ float64) { n++ })
				if n == 0 {
					b.Fatal("no edges")
				}
			}
		})
	})
}

// BenchmarkTable4NewPruning measures the paper's new pruning algorithms on
// the filtered blocks with Optimized Edge Weighting.
func BenchmarkTable4NewPruning(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	for _, alg := range []core.Algorithm{
		core.RedefinedCNP, core.ReciprocalCNP, core.RedefinedWNP, core.ReciprocalWNP,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.Run(d.filtered, core.Config{Scheme: core.JS, Algorithm: alg})
				if len(res.Pairs) == 0 {
					b.Fatal("nothing retained")
				}
			}
		})
	}
}

// BenchmarkTable6Baselines measures the baseline block-processing methods.
func BenchmarkTable6Baselines(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	b.Run("GraphFree/r=0.25", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.GraphFreeMetaBlocking{Ratio: 0.25}.Apply(d.original)
		}
	})
	b.Run("GraphFree/r=0.55", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.GraphFreeMetaBlocking{Ratio: 0.55}.Apply(d.original)
		}
	})
	b.Run("IterativeBlocking", func(b *testing.B) {
		m := blockproc.OracleMatcher{GT: d.ds.GroundTruth}
		for i := 0; i < b.N; i++ {
			res := blockproc.IterativeBlocking{Matcher: m}.Run(d.original)
			if len(res.Matches) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

// BenchmarkAblationFilterThreshold compares Block Filtering's per-profile
// limit (the paper's choice) against a single global threshold (the
// variant §4.1 argues against).
func BenchmarkAblationFilterThreshold(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	global := int(d.original.BPE() * 0.8)
	if global < 1 {
		global = 1
	}
	b.Run("per-profile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.BlockFiltering{Ratio: 0.8}.Apply(d.original)
		}
	})
	b.Run("global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blockproc.BlockFiltering{Ratio: 0.8, GlobalThreshold: global}.Apply(d.original)
		}
	})
}

// BenchmarkAblationPropagation compares LeCoBI-based Comparison
// Propagation against the direct hash-set strategy the paper deems
// unusable at scale (§2).
func BenchmarkAblationPropagation(b *testing.B) {
	d := benchDatasets(b)["D1C"]
	b.Run("lecobi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blockproc.ComparisonPropagation{}.Apply(d.filtered)
		}
	})
	b.Run("direct-hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blockproc.ComparisonPropagation{}.ApplyDirect(d.filtered)
		}
	})
}

// BenchmarkEntityIndex measures building the Entity Index, the shared
// substrate of every meta-blocking traversal.
func BenchmarkEntityIndex(b *testing.B) {
	forEachDataset(b, func(b *testing.B, d *benchData) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := block.NewEntityIndex(d.original)
			if idx.NumEntities() == 0 {
				b.Fatal("empty index")
			}
		}
	})
}

// BenchmarkPipeline measures the end-to-end public API on the paper's
// recommended configurations.
func BenchmarkPipeline(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	for _, cfg := range []struct {
		name string
		alg  Algorithm
	}{{"ReciprocalCNP", ReciprocalCNP}, {"ReciprocalWNP", ReciprocalWNP}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: cfg.alg}.Run(d.ds.Collection)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) == 0 {
					b.Fatal("nothing retained")
				}
			}
		})
	}
}

// BenchmarkWeightingSchemes isolates the per-scheme cost of one full
// optimized edge enumeration (EJS pays an extra degree pre-pass, folded
// into graph construction here to reflect real usage).
func BenchmarkWeightingSchemes(b *testing.B) {
	d := benchDatasets(b)["D2D"]
	for _, scheme := range core.AllSchemes {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := core.NewGraph(d.filtered, scheme)
				var n int64
				g.ForEachEdge(func(_, _ ID, _ float64) { n++ })
				if n == 0 {
					b.Fatal("no edges")
				}
			}
		})
	}
}
