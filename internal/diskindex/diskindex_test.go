package diskindex

import (
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

func testProfiles(t testing.TB, n int) []entity.Profile {
	t.Helper()
	ds := datagen.D1D(0.1)
	if len(ds.Collection.Profiles) < n {
		t.Fatalf("dataset has %d profiles, need %d", len(ds.Collection.Profiles), n)
	}
	return ds.Collection.Profiles[:n]
}

// openDiskGroup recovers root and serves it through the shard
// coordinator over disk-backed partitions — the same wiring
// internal/server uses in -disk-dir mode, at test-chosen knobs. With
// wal set every commit is write-ahead-logged and the recovered tail is
// replayed on open (the -wal default); without it the group recovers
// only to the last checkpoint, the pre-WAL rollback semantics some
// batteries pin deliberately.
func openDiskGroup(t testing.TB, root string, shards int, rcfg incremental.Config, budget, compactAfter int, wal bool) *shard.Group {
	t.Helper()
	return openDiskGroupFault(t, root, shards, rcfg, budget, compactAfter, wal, nil)
}

func openDiskGroupFault(t testing.TB, root string, shards int, rcfg incremental.Config, budget, compactAfter int, wal bool, inj *fault.Injector) *shard.Group {
	t.Helper()
	layout, err := store.RecoverDiskDir(root, shards)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Partition, layout.Shards)
	for k, state := range layout.Shard {
		parts[k], err = Open(Options{
			Config:       rcfg,
			Shards:       layout.Shards,
			Index:        k,
			State:        state,
			Checkpoint:   layout.Checkpoint,
			Size:         layout.Size,
			CompactAfter: compactAfter,
			WAL:          wal,
			Fault:        inj,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	size := layout.Size
	if wal {
		if size, err = ReplayWAL(parts, layout); err != nil {
			t.Fatal(err)
		}
	}
	blockSize := make(map[string]int)
	for _, p := range parts {
		p.AddBlockCounts(blockSize)
	}
	g, err := shard.Restored(shard.Config{
		Resolver:       rcfg,
		Shards:         layout.Shards,
		Backends:       func(k int) (shard.Backend, error) { return parts[k], nil },
		MemtableBudget: budget,
		Checkpoint:     layout.MaxCheckpoint,
	}, size, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// diskStats sums the per-shard disk counters.
func diskStats(g *shard.Group) (seals, compactions int64, segments int) {
	for _, st := range g.Stats() {
		if st.Disk != nil {
			seals += st.Disk.Seals
			compactions += st.Disk.Compactions
			segments += st.Disk.Segments
		}
	}
	return
}

// TestDiskGroupMatchesSerial is the out-of-core tentpole claim: for
// every scheme × pruning mode × shard count, a disk-backed group whose
// memtable budget is far smaller than the collection — so it seals and
// compacts repeatedly mid-run — resolves bit-identically to the
// all-in-memory single-index Resolver, answer by answer, and so do its
// Peek answers and canonical snapshot. A checkpointed restart then
// continues the run, still bit-identical.
func TestDiskGroupMatchesSerial(t *testing.T) {
	profiles := testProfiles(t, 200)
	const restartAt = 150
	for _, scheme := range []core.Scheme{core.ARCS, core.CBS, core.ECBS, core.JS} {
		for _, k := range []int{0, 3} {
			rcfg := incremental.Config{Scheme: scheme, K: k, MaxBlockSize: 40}
			serial, err := incremental.NewResolver(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]incremental.BatchResult, len(profiles))
			for i, p := range profiles {
				want[i], _ = serial.Resolve(p)
			}
			wantPeek, _ := serial.Peek(profiles[13])
			wantSnap := serial.Snapshot()

			for _, shards := range []int{1, 4} {
				root := t.TempDir()
				// A ~4 KiB budget forces dozens of seals over 200 profiles;
				// CompactAfter 2 forces compaction behind nearly every one.
				g := openDiskGroup(t, root, shards, rcfg, 4<<10, 2, true)
				for i, p := range profiles[:restartAt] {
					got, err := g.Resolve(p)
					if err != nil {
						t.Fatalf("scheme %v k=%d shards=%d: resolve %d: %v", scheme, k, shards, i, err)
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Fatalf("scheme %v k=%d shards=%d: arrival %d diverged:\n got %+v\nwant %+v",
							scheme, k, shards, i, got, want[i])
					}
				}
				seals, compactions, _ := diskStats(g)
				if seals == 0 || compactions == 0 {
					t.Fatalf("scheme %v k=%d shards=%d: out-of-core path not exercised: %d seals, %d compactions",
						scheme, k, shards, seals, compactions)
				}
				// Clean restart: checkpoint (durability point), close, recover.
				if err := g.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if err := g.Close(); err != nil {
					t.Fatal(err)
				}
				g = openDiskGroup(t, root, shards, rcfg, 4<<10, 2, true)
				if g.Size() != restartAt {
					t.Fatalf("scheme %v k=%d shards=%d: recovered size %d, want %d",
						scheme, k, shards, g.Size(), restartAt)
				}
				for i, p := range profiles[restartAt:] {
					got, err := g.Resolve(p)
					if err != nil {
						t.Fatalf("scheme %v k=%d shards=%d: post-restart resolve %d: %v", scheme, k, shards, i, err)
					}
					if !reflect.DeepEqual(got, want[restartAt+i]) {
						t.Fatalf("scheme %v k=%d shards=%d: post-restart arrival %d diverged:\n got %+v\nwant %+v",
							scheme, k, shards, restartAt+i, got, want[restartAt+i])
					}
				}
				if gotPeek, err := g.Peek(profiles[13]); err != nil || !reflect.DeepEqual(gotPeek, wantPeek) {
					t.Fatalf("scheme %v k=%d shards=%d: Peek diverged (err %v)", scheme, k, shards, err)
				}
				if gotSnap := g.Snapshot(); !reflect.DeepEqual(gotSnap, wantSnap) {
					t.Fatalf("scheme %v k=%d shards=%d: canonical snapshot diverged", scheme, k, shards)
				}
				if err := g.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestDiskDirPortability pins the layout bridge: a checkpointed disk
// directory loads through store.LoadAnyResolverFile into the same
// canonical snapshot the in-memory resolver produces, so disk
// directories interoperate with /v1/admin/reload like the two file
// layouts.
func TestDiskDirPortability(t *testing.T) {
	profiles := testProfiles(t, 80)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}
	serial, err := incremental.NewResolver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		serial.Resolve(p)
	}
	root := t.TempDir()
	g := openDiskGroup(t, root, 3, rcfg, 2<<10, 2, true)
	for _, p := range profiles {
		if _, err := g.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := store.LoadAnyResolverFile(root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, serial.Snapshot()) {
		t.Fatal("disk directory loads to a different canonical snapshot than the serial resolver")
	}
}

// TestGatherWarmAllocs pins the warm-cache read path: once a token's
// pages are cached, a Gather allocates nothing — scratch buffers,
// ScanCount cells and the page cache all reuse steady-state memory.
func TestGatherWarmAllocs(t *testing.T) {
	profiles := testProfiles(t, 120)
	dir := t.TempDir()
	p, err := Open(Options{
		Config: incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 1000},
		Shards: 1,
		State:  &store.DiskShardState{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	keyer := incremental.Keyer{}
	var lists [][]string
	for i, prof := range profiles {
		keys := append([]string(nil), keyer.Keys(prof)...)
		lists = append(lists, keys)
		if err := p.Commit(entity.ID(i), prof, keys); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Seal(1, len(profiles)); err != nil {
		t.Fatal(err)
	}
	keys := lists[60]
	incs := make([]float64, len(keys))
	for i := range incs {
		incs[i] = 1
	}
	var dst []incremental.ShardCand
	dst = p.Gather(keys, incs, len(keys), 100, 0, dst) // cold: faults pages in
	if len(dst) == 0 {
		t.Fatal("gather found no neighbors; test needs a denser key set")
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = p.Gather(keys, incs, len(keys), 100, 0, dst)
	})
	if allocs > 0 {
		t.Fatalf("warm gather allocates %.1f times per run, want 0", allocs)
	}
}
