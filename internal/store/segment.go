// Paged posting segments — the on-disk unit of the out-of-core index.
//
// A segment is one shard's immutable batch of resolver state: every token
// the batch touched with its raw delta+varint posting bytes, plus the
// batch's profiles and their block-key lists, packed into CRC-guarded
// pages so readers can verify and load one page at a time instead of the
// whole file. The layout is:
//
//	header   magic "MBSG" + version              (8 bytes)
//	pages    posting pages, then profile pages   (CRC per page)
//	index    gob(segIndex)                       (token dictionary, page
//	                                              refs, key counts, meta)
//	footer   indexOff(8) indexLen(8) indexCRC(4) magic "MBSE"  (24 bytes)
//
// The footer-last layout makes torn writes detectable wherever they tear,
// like the artifact container; segments additionally checksum every page
// so a bit flip in one posting page is caught by the first read that
// touches it, not only by a whole-file scan. Files are written through
// AtomicWriteFile, so a crash mid-write never leaves a segment path with
// partial content.
//
// Posting lists are stored as the exact bytes postings.Builder holds
// (first element delta-coded from zero), which buys two things: sealing a
// memtable is a straight copy, and compaction splices consecutive
// segments' lists with postings.RebaseVarint instead of a decode/encode
// round trip. The token dictionary, page refs and per-profile key counts
// live in the index block, so opening a segment costs one index read and
// no page reads — the weight terms (|B_j|) every gather needs stay in
// RAM while members and profiles stay on disk.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"metablocking/internal/entity"
)

const (
	segmentFileVersion = 1
	segHeaderSize      = 8  // magic(4) + version(4)
	segFooterSize      = 24 // indexOff(8) + indexLen(8) + indexCRC(4) + magic(4)

	// segPageTarget is the soft posting-page size: a page closes when the
	// next list would push it past this. A single list larger than the
	// target gets a page of its own — lists never split across pages.
	segPageTarget = 32 << 10

	// ProfileChunkSize is how many profiles share one profile page.
	ProfileChunkSize = 64
)

var (
	segHeadMagic = [4]byte{'M', 'B', 'S', 'G'}
	segFootMagic = [4]byte{'M', 'B', 'S', 'E'}
)

// SegmentMeta binds a segment to its place in a shard's lineage.
type SegmentMeta struct {
	// Shard / Shards bind the file to one partition of one layout.
	Shard  int
	Shards int
	// MinSeq..Seq is the range of seal sequence numbers folded into this
	// file: equal for a fresh delta, widening as compaction merges.
	MinSeq uint64
	Seq    uint64
	// FirstSlot is the first local profile slot this segment covers;
	// segments of one manifest chain contiguously from slot 0.
	FirstSlot int
	// Profiles is the local profile count of the segment.
	Profiles int
}

// PageRef locates one CRC-guarded page inside the segment file.
type PageRef struct {
	Off int64
	Len int32
	CRC uint32
}

// TokenRef locates one token's posting bytes inside a page. Count is the
// number of IDs, Last the largest — what RebaseVarint needs to splice the
// next segment's list on without decoding this one.
type TokenRef struct {
	Page  int32
	Off   int32
	Len   int32
	Count int32
	Last  int32
}

// segIndex is the gob-encoded index block at the tail of every segment.
type segIndex struct {
	Meta   SegmentMeta
	Pages  []PageRef
	Tokens []string // ascending
	Refs   []TokenRef
	// ProfilePages lists the page index of each profile chunk, in slot
	// order; chunk i holds profiles [i*ProfileChunkSize, ...).
	ProfilePages []int32
	// KeyCounts[i] is the block-key count of local profile i — the |B_j|
	// weight term, kept in the index so gathers never page profiles in.
	KeyCounts []int32
}

// profileChunk is the gob payload of one profile page.
type profileChunk struct {
	Profiles []entity.Profile
	Keys     [][]string
}

// SegmentSource feeds WriteSegment. Both callbacks stream: nothing
// obliges the caller to materialize the whole segment in memory, which is
// what lets compaction merge arbitrarily large segments in bounded space.
type SegmentSource struct {
	// Tokens emits every token in strictly ascending order with its raw
	// delta+varint posting bytes, ID count and largest ID. enc need only
	// stay valid during the emit call.
	Tokens func(emit func(tok string, enc []byte, count, last int32) error) error
	// Profiles emits the segment's profiles in slot order with their
	// block-key lists. keys need only stay valid during the emit call.
	Profiles func(emit func(p entity.Profile, keys []string) error) error
}

// segmentWriter tracks the byte offset of everything written so page and
// index refs can be recorded while streaming.
type segmentWriter struct {
	w  io.Writer
	n  int64
	ix segIndex

	pageBuf  []byte
	chunk    profileChunk
	chunkBuf bytes.Buffer
}

func (sw *segmentWriter) write(p []byte) error {
	n, err := sw.w.Write(p)
	sw.n += int64(n)
	return err
}

// flushPage writes one CRC-guarded page and returns its page index.
func (sw *segmentWriter) flushPage(data []byte) (int32, error) {
	ref := PageRef{Off: sw.n, Len: int32(len(data)), CRC: crc32.Checksum(data, crcPoly)}
	if err := sw.write(data); err != nil {
		return 0, err
	}
	sw.ix.Pages = append(sw.ix.Pages, ref)
	return int32(len(sw.ix.Pages) - 1), nil
}

func (sw *segmentWriter) flushChunk() error {
	sw.chunkBuf.Reset()
	if err := gob.NewEncoder(&sw.chunkBuf).Encode(&sw.chunk); err != nil {
		return fmt.Errorf("store: encoding profile chunk: %w", err)
	}
	pg, err := sw.flushPage(sw.chunkBuf.Bytes())
	if err != nil {
		return err
	}
	sw.ix.ProfilePages = append(sw.ix.ProfilePages, pg)
	sw.chunk.Profiles = sw.chunk.Profiles[:0]
	sw.chunk.Keys = sw.chunk.Keys[:0]
	return nil
}

// WriteSegment streams one segment to path with the atomic write protocol:
// the file appears complete or not at all.
func WriteSegment(path string, meta SegmentMeta, src SegmentSource) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		sw := &segmentWriter{w: w}
		var header [segHeaderSize]byte
		copy(header[:4], segHeadMagic[:])
		binary.LittleEndian.PutUint32(header[4:], segmentFileVersion)
		if err := sw.write(header[:]); err != nil {
			return err
		}

		prevTok := ""
		if src.Tokens != nil {
			err := src.Tokens(func(tok string, enc []byte, count, last int32) error {
				if len(sw.ix.Tokens) > 0 && tok <= prevTok {
					return fmt.Errorf("store: segment tokens out of order: %q after %q", tok, prevTok)
				}
				prevTok = tok
				if len(sw.pageBuf) > 0 && len(sw.pageBuf)+len(enc) > segPageTarget {
					if _, err := sw.flushPage(sw.pageBuf); err != nil {
						return err
					}
					sw.pageBuf = sw.pageBuf[:0]
				}
				sw.ix.Tokens = append(sw.ix.Tokens, tok)
				sw.ix.Refs = append(sw.ix.Refs, TokenRef{
					Page:  int32(len(sw.ix.Pages)),
					Off:   int32(len(sw.pageBuf)),
					Len:   int32(len(enc)),
					Count: count,
					Last:  last,
				})
				sw.pageBuf = append(sw.pageBuf, enc...)
				return nil
			})
			if err != nil {
				return err
			}
		}
		if len(sw.pageBuf) > 0 {
			if _, err := sw.flushPage(sw.pageBuf); err != nil {
				return err
			}
		}

		if src.Profiles != nil {
			err := src.Profiles(func(p entity.Profile, keys []string) error {
				sw.chunk.Profiles = append(sw.chunk.Profiles, p)
				sw.chunk.Keys = append(sw.chunk.Keys, keys)
				sw.ix.KeyCounts = append(sw.ix.KeyCounts, int32(len(keys)))
				if len(sw.chunk.Profiles) == ProfileChunkSize {
					return sw.flushChunk()
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		if len(sw.chunk.Profiles) > 0 {
			if err := sw.flushChunk(); err != nil {
				return err
			}
		}
		if len(sw.ix.KeyCounts) != meta.Profiles {
			return fmt.Errorf("store: segment meta says %d profiles, source emitted %d",
				meta.Profiles, len(sw.ix.KeyCounts))
		}
		sw.ix.Meta = meta

		var ixBuf bytes.Buffer
		if err := gob.NewEncoder(&ixBuf).Encode(&sw.ix); err != nil {
			return fmt.Errorf("store: encoding segment index: %w", err)
		}
		indexOff := sw.n
		if err := sw.write(ixBuf.Bytes()); err != nil {
			return err
		}
		var footer [segFooterSize]byte
		binary.LittleEndian.PutUint64(footer[:8], uint64(indexOff))
		binary.LittleEndian.PutUint64(footer[8:16], uint64(ixBuf.Len()))
		binary.LittleEndian.PutUint32(footer[16:20], crc32.Checksum(ixBuf.Bytes(), crcPoly))
		copy(footer[20:], segFootMagic[:])
		return sw.write(footer[:])
	})
}

// Segment is an open, immutable posting segment. The index block lives in
// memory; pages are read (and CRC-verified) on demand. Safe for one
// reader at a time — the shard actor that owns the partition.
type Segment struct {
	path string
	f    *os.File
	ix   segIndex
}

// OpenSegment opens a segment, verifying the framing and the index
// checksum; with verify set it additionally reads and checks every page,
// which is what recovery does before trusting a generation. Failures
// classify under ErrCorruptArtifact / ErrVersionMismatch.
func OpenSegment(path string, verify bool) (*Segment, error) {
	if err := inj().Check(FaultLoadRead); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	seg, err := openSegment(path, f, verify)
	if err != nil {
		f.Close()
		return nil, err
	}
	return seg, nil
}

func openSegment(path string, f *os.File, verify bool) (*Segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < segHeaderSize+segFooterSize {
		return nil, fmt.Errorf("store: %s: segment truncated to %d bytes: %w", path, size, ErrCorruptArtifact)
	}
	var header [segHeaderSize]byte
	if _, err := f.ReadAt(header[:], 0); err != nil {
		return nil, fmt.Errorf("store: %s: reading segment header: %v: %w", path, err, ErrCorruptArtifact)
	}
	if !bytes.Equal(header[:4], segHeadMagic[:]) {
		return nil, fmt.Errorf("store: %s: not a posting segment: %w", path, ErrCorruptArtifact)
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != segmentFileVersion {
		return nil, fmt.Errorf("store: %s: segment version %d (want %d): %w", path, v, segmentFileVersion, ErrVersionMismatch)
	}
	var footer [segFooterSize]byte
	if _, err := f.ReadAt(footer[:], size-segFooterSize); err != nil {
		return nil, fmt.Errorf("store: %s: reading segment footer: %v: %w", path, err, ErrCorruptArtifact)
	}
	if !bytes.Equal(footer[20:], segFootMagic[:]) {
		return nil, fmt.Errorf("store: %s: segment footer magic missing (torn write): %w", path, ErrCorruptArtifact)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[:8]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	if indexOff < segHeaderSize || indexLen < 0 || indexOff+indexLen != size-segFooterSize {
		return nil, fmt.Errorf("store: %s: segment index bounds [%d,+%d) inconsistent with size %d: %w",
			path, indexOff, indexLen, size, ErrCorruptArtifact)
	}
	ixBytes := make([]byte, indexLen)
	if _, err := f.ReadAt(ixBytes, indexOff); err != nil {
		return nil, fmt.Errorf("store: %s: reading segment index: %v: %w", path, err, ErrCorruptArtifact)
	}
	if crc := crc32.Checksum(ixBytes, crcPoly); crc != binary.LittleEndian.Uint32(footer[16:20]) {
		return nil, fmt.Errorf("store: %s: segment index checksum mismatch: %w", path, ErrCorruptArtifact)
	}
	seg := &Segment{path: path, f: f}
	if err := gob.NewDecoder(bytes.NewReader(ixBytes)).Decode(&seg.ix); err != nil {
		return nil, fmt.Errorf("store: %s: decoding segment index: %v: %w", path, err, ErrCorruptArtifact)
	}
	if err := seg.checkIndex(indexOff); err != nil {
		return nil, err
	}
	if verify {
		var buf []byte
		for i := range seg.ix.Pages {
			if buf, err = seg.ReadPage(i, buf); err != nil {
				return nil, err
			}
		}
	}
	return seg, nil
}

// checkIndex validates the decoded index's internal consistency so a
// corrupted (but checksum-colliding) or mislabeled index cannot drive
// out-of-bounds page reads later.
func (s *Segment) checkIndex(indexOff int64) error {
	ix := &s.ix
	bad := func(format string, args ...any) error {
		return fmt.Errorf("store: %s: segment index: %s: %w", s.path, fmt.Sprintf(format, args...), ErrCorruptArtifact)
	}
	if len(ix.Tokens) != len(ix.Refs) {
		return bad("%d tokens but %d refs", len(ix.Tokens), len(ix.Refs))
	}
	if ix.Meta.Profiles < 0 || len(ix.KeyCounts) != ix.Meta.Profiles {
		return bad("%d key counts for %d profiles", len(ix.KeyCounts), ix.Meta.Profiles)
	}
	wantChunks := (ix.Meta.Profiles + ProfileChunkSize - 1) / ProfileChunkSize
	if len(ix.ProfilePages) != wantChunks {
		return bad("%d profile pages for %d profiles", len(ix.ProfilePages), ix.Meta.Profiles)
	}
	for i, pg := range ix.Pages {
		if pg.Off < segHeaderSize || pg.Len < 0 || pg.Off+int64(pg.Len) > indexOff {
			return bad("page %d bounds [%d,+%d) outside data area", i, pg.Off, pg.Len)
		}
	}
	if !sort.StringsAreSorted(ix.Tokens) {
		return bad("token dictionary unsorted")
	}
	for i, ref := range ix.Refs {
		if ref.Page < 0 || int(ref.Page) >= len(ix.Pages) {
			return bad("token %q references page %d of %d", ix.Tokens[i], ref.Page, len(ix.Pages))
		}
		if ref.Off < 0 || ref.Len < 0 || ref.Off+ref.Len > ix.Pages[ref.Page].Len {
			return bad("token %q bytes [%d,+%d) outside page %d", ix.Tokens[i], ref.Off, ref.Len, ref.Page)
		}
		if ref.Count <= 0 {
			return bad("token %q has %d members", ix.Tokens[i], ref.Count)
		}
	}
	for i, pg := range ix.ProfilePages {
		if pg < 0 || int(pg) >= len(ix.Pages) {
			return bad("profile chunk %d references page %d of %d", i, pg, len(ix.Pages))
		}
	}
	return nil
}

// Meta returns the segment's lineage binding.
func (s *Segment) Meta() SegmentMeta { return s.ix.Meta }

// Path returns the file the segment was opened from.
func (s *Segment) Path() string { return s.path }

// Tokens returns the ascending token dictionary. Callers must not mutate.
func (s *Segment) Tokens() []string { return s.ix.Tokens }

// Ref returns token i's posting location.
func (s *Segment) Ref(i int) TokenRef { return s.ix.Refs[i] }

// FindToken binary-searches the dictionary.
func (s *Segment) FindToken(tok string) (int, bool) {
	i := sort.SearchStrings(s.ix.Tokens, tok)
	if i < len(s.ix.Tokens) && s.ix.Tokens[i] == tok {
		return i, true
	}
	return 0, false
}

// NumPages returns the page count.
func (s *Segment) NumPages() int { return len(s.ix.Pages) }

// PageLen returns page i's size in bytes, for cache accounting.
func (s *Segment) PageLen(i int) int { return int(s.ix.Pages[i].Len) }

// ReadPage reads page i into dst (grown as needed) and verifies its CRC,
// so a bit flip is caught by the first read that touches the page.
func (s *Segment) ReadPage(i int, dst []byte) ([]byte, error) {
	ref := s.ix.Pages[i]
	if cap(dst) < int(ref.Len) {
		dst = make([]byte, ref.Len)
	}
	dst = dst[:ref.Len]
	if _, err := s.f.ReadAt(dst, ref.Off); err != nil {
		return dst, fmt.Errorf("store: %s: reading page %d: %v: %w", s.path, i, err, ErrCorruptArtifact)
	}
	if crc := crc32.Checksum(dst, crcPoly); crc != ref.CRC {
		return dst, fmt.Errorf("store: %s: page %d checksum mismatch: %w", s.path, i, ErrCorruptArtifact)
	}
	return dst, nil
}

// KeyCounts returns the per-profile block-key counts (slot-relative).
// Callers must not mutate.
func (s *Segment) KeyCounts() []int32 { return s.ix.KeyCounts }

// ProfileChunks returns the number of profile pages.
func (s *Segment) ProfileChunks() int { return len(s.ix.ProfilePages) }

// ReadProfileChunk reads and decodes profile chunk i: the profiles and
// their block-key lists, in slot order. Empty key lists are normalized to
// nil so snapshots rebuilt from disk compare DeepEqual with in-memory
// ones.
func (s *Segment) ReadProfileChunk(i int, scratch []byte) ([]entity.Profile, [][]string, []byte, error) {
	scratch, err := s.ReadPage(int(s.ix.ProfilePages[i]), scratch)
	if err != nil {
		return nil, nil, scratch, err
	}
	var chunk profileChunk
	if err := gob.NewDecoder(bytes.NewReader(scratch)).Decode(&chunk); err != nil {
		return nil, nil, scratch, fmt.Errorf("store: %s: decoding profile chunk %d: %v: %w", s.path, i, err, ErrCorruptArtifact)
	}
	if len(chunk.Profiles) != len(chunk.Keys) {
		return nil, nil, scratch, fmt.Errorf("store: %s: profile chunk %d has %d profiles but %d key lists: %w",
			s.path, i, len(chunk.Profiles), len(chunk.Keys), ErrCorruptArtifact)
	}
	for j := range chunk.Keys {
		if len(chunk.Keys[j]) == 0 {
			chunk.Keys[j] = nil
		}
	}
	return chunk.Profiles, chunk.Keys, scratch, nil
}

// Close releases the underlying file.
func (s *Segment) Close() error { return s.f.Close() }
