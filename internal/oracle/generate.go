package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// GenConfig parameterizes the seeded random block-collection generator.
// The generator aims for nasty inputs rather than realistic ones: Zipf-
// skewed membership (a few entities land in very many blocks, mirroring
// the skewed token distributions real blocking produces), plus explicit
// empty and singleton blocks, which blocking methods never emit but the
// algorithms must tolerate (they change |B|, Σ|b| and |Bi|, and therefore
// the ECBS/EJS weights and the CEP/CNP cardinality thresholds).
type GenConfig struct {
	// Entities is |E|; for Clean-Clean ER the ID space covers both sources.
	Entities int
	// Split is the E1/E2 boundary; 0 or Entities generates Dirty ER.
	Split int
	// Blocks is the number of regular (multi-member) blocks.
	Blocks int
	// MaxBlockSize caps the members sampled per block side (minimum 2).
	MaxBlockSize int
	// ZipfS skews member sampling toward low IDs; values ≤ 1 fall back
	// to 1.5.
	ZipfS float64
	// EmptyBlocks and SingletonBlocks add that many comparison-free
	// blocks (no members / one member).
	EmptyBlocks, SingletonBlocks int
}

// Random generates a block collection from the config. The same rng
// state yields the same collection; block keys are distinct (a total
// order requirement of the cardinality sort), and members are distinct
// and ascending within each block side, as real blocking output is.
func Random(rng *rand.Rand, cfg GenConfig) *block.Collection {
	clean := cfg.Split > 0 && cfg.Split < cfg.Entities
	c := &block.Collection{Task: entity.Dirty, NumEntities: cfg.Entities, Split: cfg.Entities}
	if clean {
		c.Task = entity.CleanClean
		c.Split = cfg.Split
	}
	s := cfg.ZipfS
	if s <= 1 {
		s = 1.5
	}
	max := cfg.MaxBlockSize
	if max < 2 {
		max = 2
	}
	// Zipf over an offset so every entity stays reachable.
	zipf := rand.NewZipf(rng, s, 1, uint64(cfg.Entities-1))
	sample := func(lo, hi, n int) []entity.ID {
		seen := make(map[entity.ID]bool)
		var out []entity.ID
		for attempts := 0; len(out) < n && attempts < 20*n; attempts++ {
			id := entity.ID(lo + int(zipf.Uint64())%(hi-lo))
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	bid := 0
	add := func(b block.Block) {
		b.Key = fmt.Sprintf("b%04d", bid)
		bid++
		c.Blocks = append(c.Blocks, b)
	}
	for i := 0; i < cfg.Blocks; i++ {
		if clean {
			add(block.Block{
				E1: sample(0, cfg.Split, 1+rng.Intn(max)),
				E2: sample(cfg.Split, cfg.Entities, 1+rng.Intn(max)),
			})
			continue
		}
		add(block.Block{E1: sample(0, cfg.Entities, 2+rng.Intn(max-1))})
	}
	for i := 0; i < cfg.SingletonBlocks; i++ {
		var b block.Block
		switch {
		case !clean:
			b.E1 = sample(0, cfg.Entities, 1)
		case rng.Intn(2) == 0:
			// Bilateral blocks keep each source on its own side even when
			// one side is empty.
			b.E1, b.E2 = sample(0, cfg.Split, 1), []entity.ID{}
		default:
			b.E1, b.E2 = []entity.ID{}, sample(cfg.Split, cfg.Entities, 1)
		}
		add(b)
	}
	for i := 0; i < cfg.EmptyBlocks; i++ {
		add(block.Block{})
	}
	// Shuffle so the nasty blocks are not clustered at the tail (block
	// IDs feed the LeCoBI condition and the ARCS summation order).
	rng.Shuffle(len(c.Blocks), func(i, j int) {
		c.Blocks[i], c.Blocks[j] = c.Blocks[j], c.Blocks[i]
	})
	return c
}

// FromBytes decodes a fuzzer-controlled byte string into a small, always
// valid block collection: a header picks the ID space and task, then each
// block consumes a size byte and that many member bytes. It never fails —
// every input maps to some collection — so the fuzzer explores the input
// space without wasted executions. Returns nil when the data cannot seed
// even one entity.
func FromBytes(data []byte, clean bool) *block.Collection {
	if len(data) < 2 {
		return nil
	}
	numEntities := 2 + int(data[0])%30
	c := &block.Collection{Task: entity.Dirty, NumEntities: numEntities, Split: numEntities}
	if clean {
		split := 1 + int(data[1])%(numEntities-1)
		c.Task = entity.CleanClean
		c.Split = split
	}
	data = data[2:]

	bid := 0
	for len(data) > 0 && bid < 64 {
		size := int(data[0]) % 8 // 0 and 1 yield empty/singleton blocks
		data = data[1:]
		if size > len(data) {
			size = len(data)
		}
		members := make(map[entity.ID]bool)
		for _, raw := range data[:size] {
			members[entity.ID(int(raw)%numEntities)] = true
		}
		data = data[size:]
		b := block.Block{Key: fmt.Sprintf("f%03d", bid)}
		for id := range members {
			if clean && int(id) >= c.Split {
				b.E2 = append(b.E2, id)
			} else {
				b.E1 = append(b.E1, id)
			}
		}
		sort.Slice(b.E1, func(i, j int) bool { return b.E1[i] < b.E1[j] })
		sort.Slice(b.E2, func(i, j int) bool { return b.E2[i] < b.E2[j] })
		if clean && b.E2 == nil {
			b.E2 = []entity.ID{} // keep the two-sided shape of Clean-Clean blocks
		}
		c.Blocks = append(c.Blocks, b)
		bid++
	}
	if len(c.Blocks) == 0 {
		return nil
	}
	return c
}
