// Sharded resolver artifacts: one checksummed segment file per shard
// plus a manifest committed last.
//
// Layout for a manifest at <path>, generation g with N shards:
//
//	<path>.g<g>.s0 … <path>.g<g>.s<N-1>   per-shard segments
//	<path>                                 manifest (written last)
//
// Every file — segments and manifest — rides on the PR-5 atomic
// checksummed container (saveFileAtomic / readFileVerified), so each is
// individually torn-write-proof. Crash consistency across files comes
// from generation numbering and manifest-last ordering: a new save
// writes fresh segments under a NEW generation (never touching the
// previous generation's files), fsyncs them, and only then atomically
// replaces the manifest. A crash at any instant leaves the old manifest
// pointing at the old, untouched segments; the half-written new
// generation is garbage that the next successful save sweeps. Only
// after the manifest commits are older generations deleted
// (best-effort).
package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/par"
)

const (
	shardManifestVersion = 1
	shardSegmentVersion  = 1

	shardManifestKind = "resolver-shards"
	shardSegmentKind  = "resolver-shard"
)

// storedShardManifest is the gob payload of the manifest artifact: the
// resolver configuration, the shard count and the generation whose
// segment files are current.
type storedShardManifest struct {
	Scheme         int
	K              int
	MaxBlockSize   int
	MinTokenLength int
	Shards         int
	Generation     uint64
}

// storedShardSegment mirrors incremental.PartitionSnapshot for gob, with
// the block index flattened into sorted parallel slices so the same
// segment always serializes to the same bytes (map iteration order would
// not).
type storedShardSegment struct {
	Shard      int
	Shards     int
	Generation uint64
	Profiles   []entity.Profile
	BlockKeys  []string
	// BlockMembers[i] lists the shard-owned member IDs of BlockKeys[i].
	BlockMembers [][]entity.ID
	BlocksOf     [][]string
}

// segmentPath names shard k's segment file of the given generation.
func segmentPath(path string, gen uint64, k int) string {
	return path + ".g" + strconv.FormatUint(gen, 10) + ".s" + strconv.Itoa(k)
}

// SaveShardedResolverFile persists per-shard segments plus a manifest at
// path, crash-safely (see the package comment above). The segments are
// written in parallel — they are independent files — and the manifest
// only after every segment is durable.
func SaveShardedResolverFile(path string, cfg incremental.Config, segs []*incremental.PartitionSnapshot) error {
	if len(segs) == 0 {
		return fmt.Errorf("store: sharded save with no segments")
	}
	for i, seg := range segs {
		if seg == nil || seg.Shard != i || seg.Shards != len(segs) {
			return fmt.Errorf("store: segment %d of %d malformed", i, len(segs))
		}
	}
	gen := nextGeneration(path)
	errs := make([]error, len(segs))
	par.Ranges(len(segs), len(segs), func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			errs[k] = saveFileAtomic(segmentPath(path, gen, k), func(w io.Writer) error {
				return writeShardSegment(w, gen, segs[k])
			})
		}
	})
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("store: segment %d: %w", k, err)
		}
	}
	m := storedShardManifest{
		Scheme:         int(cfg.Scheme),
		K:              cfg.K,
		MaxBlockSize:   cfg.MaxBlockSize,
		MinTokenLength: cfg.MinTokenLength,
		Shards:         len(segs),
		Generation:     gen,
	}
	if err := saveFileAtomic(path, func(w io.Writer) error {
		return writeArtifact(w, shardManifestKind, shardManifestVersion, m)
	}); err != nil {
		return err
	}
	sweepGenerations(path, gen)
	return nil
}

func writeShardSegment(w io.Writer, gen uint64, seg *incremental.PartitionSnapshot) error {
	ss := storedShardSegment{
		Shard:      seg.Shard,
		Shards:     seg.Shards,
		Generation: gen,
		Profiles:   seg.Profiles,
		BlocksOf:   seg.BlocksOf,
	}
	ss.BlockKeys = make([]string, 0, len(seg.Blocks))
	for k := range seg.Blocks {
		ss.BlockKeys = append(ss.BlockKeys, k)
	}
	sort.Strings(ss.BlockKeys)
	ss.BlockMembers = make([][]entity.ID, len(ss.BlockKeys))
	for i, k := range ss.BlockKeys {
		ss.BlockMembers[i] = seg.Blocks[k]
	}
	return writeArtifact(w, shardSegmentKind, shardSegmentVersion, ss)
}

// nextGeneration picks the generation for a new sharded save: one past
// the current manifest's if path holds one, otherwise one past the
// highest generation any leftover segment file carries (so a crashed
// half-save is never overwritten in place).
func nextGeneration(path string) uint64 {
	gen := uint64(0)
	if payload, err := readFileVerified(path); err == nil {
		var m storedShardManifest
		if readArtifact(bytes.NewReader(payload), shardManifestKind, shardManifestVersion, &m) == nil {
			gen = m.Generation
		}
	}
	matches, _ := filepath.Glob(path + ".g*.s*")
	for _, f := range matches {
		if g, ok := parseGeneration(path, f); ok && g > gen {
			gen = g
		}
	}
	return gen + 1
}

// parseGeneration extracts <g> from a "<path>.g<g>.s<k>" segment name.
func parseGeneration(path, file string) (uint64, bool) {
	suffix, ok := strings.CutPrefix(file, path+".g")
	if !ok {
		return 0, false
	}
	genStr, _, ok := strings.Cut(suffix, ".s")
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(genStr, 10, 64)
	return g, err == nil
}

// sweepGenerations removes segment files of generations other than keep.
// Best-effort: a leftover file is wasted disk, not a correctness hazard,
// because loads only read the generation the manifest names.
func sweepGenerations(path string, keep uint64) {
	matches, _ := filepath.Glob(path + ".g*.s*")
	for _, f := range matches {
		if g, ok := parseGeneration(path, f); ok && g != keep {
			os.Remove(f)
		}
	}
}

// LoadShardedResolverFile loads the manifest at path and every segment
// of its generation, verifying each file's checksum and the cross-file
// binding (shard number, shard count, generation stamped inside each
// segment must match the manifest). Failures classify under
// ErrCorruptArtifact / ErrVersionMismatch like every other artifact.
func LoadShardedResolverFile(path string) (incremental.Config, []*incremental.PartitionSnapshot, error) {
	var cfg incremental.Config
	payload, err := readFileVerified(path)
	if err != nil {
		return cfg, nil, err
	}
	var m storedShardManifest
	if err := readArtifact(bytes.NewReader(payload), shardManifestKind, shardManifestVersion, &m); err != nil {
		return cfg, nil, err
	}
	if m.Shards <= 0 {
		return cfg, nil, fmt.Errorf("store: manifest names %d shards: %w", m.Shards, ErrCorruptArtifact)
	}
	cfg = incremental.Config{
		Scheme:         core.Scheme(m.Scheme),
		K:              m.K,
		MaxBlockSize:   m.MaxBlockSize,
		MinTokenLength: m.MinTokenLength,
	}
	segs := make([]*incremental.PartitionSnapshot, m.Shards)
	for k := 0; k < m.Shards; k++ {
		seg, err := loadShardSegment(segmentPath(path, m.Generation, k), k, m)
		if err != nil {
			return cfg, nil, err
		}
		segs[k] = seg
	}
	return cfg, segs, nil
}

func loadShardSegment(segPath string, k int, m storedShardManifest) (*incremental.PartitionSnapshot, error) {
	payload, err := readFileVerified(segPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("store: %s: segment missing: %w", segPath, ErrCorruptArtifact)
		}
		return nil, err
	}
	var ss storedShardSegment
	if err := readArtifact(bytes.NewReader(payload), shardSegmentKind, shardSegmentVersion, &ss); err != nil {
		return nil, err
	}
	if ss.Shard != k || ss.Shards != m.Shards || ss.Generation != m.Generation {
		return nil, fmt.Errorf("store: %s: segment labeled shard %d/%d gen %d, manifest wants %d/%d gen %d: %w",
			segPath, ss.Shard, ss.Shards, ss.Generation, k, m.Shards, m.Generation, ErrCorruptArtifact)
	}
	if len(ss.BlockKeys) != len(ss.BlockMembers) {
		return nil, fmt.Errorf("store: %s: %d block keys but %d member lists: %w",
			segPath, len(ss.BlockKeys), len(ss.BlockMembers), ErrCorruptArtifact)
	}
	seg := &incremental.PartitionSnapshot{
		Shard:    ss.Shard,
		Shards:   ss.Shards,
		Profiles: ss.Profiles,
		Blocks:   make(map[string][]entity.ID, len(ss.BlockKeys)),
		BlocksOf: ss.BlocksOf,
	}
	for i, k := range ss.BlockKeys {
		seg.Blocks[k] = ss.BlockMembers[i]
	}
	return seg, nil
}

// LoadAnyResolverFile loads a resolver artifact of any layout — a plain
// "resolver" snapshot, a sharded manifest+segments, or an out-of-core
// disk directory — and returns the canonical global snapshot, so callers
// can serve it at any shard count regardless of how it was written.
func LoadAnyResolverFile(path string) (*incremental.Snapshot, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return LoadDiskDir(path)
	}
	payload, err := readFileVerified(path)
	if err != nil {
		return nil, err
	}
	kind, err := peekKind(payload)
	if err != nil {
		return nil, err
	}
	switch kind {
	case shardManifestKind:
		cfg, segs, err := LoadShardedResolverFile(path)
		if err != nil {
			return nil, err
		}
		return incremental.MergeSnapshots(cfg, segs), nil
	default:
		return ReadResolver(bytes.NewReader(payload))
	}
}

// peekKind decodes just the gob envelope of an artifact payload.
func peekKind(payload []byte) (string, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return "", fmt.Errorf("store: reading header: %v: %w", err, ErrCorruptArtifact)
	}
	return env.Kind, nil
}
