// Package fault is the deterministic fault-injection layer behind the
// chaos acceptance suite. Production code declares named sites — points
// where a failure could occur (a write, a sync, a rename, an index pass) —
// and consults the injector there. A nil *Injector is the production
// default: every method is a nil-safe no-op, so un-instrumented binaries
// pay a single pointer comparison per site.
//
// Faults are armed per site with a Spec describing what happens (an error
// return, a delay, a short write, a panic) and when (skip the first After
// triggers, fire at most Times times, fire with probability Prob under the
// injector's seeded RNG). Everything is deterministic for a given seed and
// call sequence, which is what lets the chaos tests assert exact outcomes
// ("exactly one request fails with 500") instead of flaky distributions.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error a firing site returns. Injected
// failures wrap it, so errors.Is(err, fault.ErrInjected) identifies a
// synthetic fault anywhere up the stack.
var ErrInjected = errors.New("fault: injected failure")

// Spec describes one armed fault: what it does and when it fires.
type Spec struct {
	// Err is the error to return when the site fires; nil uses ErrInjected
	// (wrapped with the site name). Ignored when Panic is set.
	Err error
	// Delay is slept each time the site fires, before the failure (if any)
	// takes effect. A Spec with only a Delay is a pure slow-down.
	Delay time.Duration
	// Panic makes the site panic with a *fault.Panic value instead of
	// returning an error.
	Panic bool
	// ShortWrite, when ≥ 0, truncates the Write call a Writer-wrapped
	// site fires on: only ShortWrite bytes are written, then the injected
	// error is returned. Negative means the write fails without writing.
	ShortWrite int
	// After skips the first After triggers of the site before it may fire.
	After int
	// Times caps how often the site fires; 0 means every trigger (after
	// After) fires.
	Times int
	// Prob fires the site with this probability per trigger (once past
	// After and under Times), using the injector's seeded RNG. 0 means
	// always fire.
	Prob float64
}

// Panic is the value an armed Panic site panics with.
type Panic struct {
	// Site names the fault site that fired.
	Site string
}

func (p Panic) String() string { return "fault: injected panic at site " + p.Site }

// site is the runtime state of one armed fault.
type site struct {
	spec  Spec
	hits  int64 // triggers seen
	fired int64 // triggers that fired
}

// Injector is a set of armed fault sites sharing one seeded RNG. The zero
// value is not useful; use New. All methods are safe for concurrent use and
// safe (as no-ops) on a nil receiver.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*site
	sleep func(time.Duration)
}

// New returns an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		sites: make(map[string]*site),
		sleep: time.Sleep,
	}
}

// Arm installs (or replaces) the fault at a named site.
func (in *Injector) Arm(name string, spec Spec) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[name] = &site{spec: spec}
}

// Disarm removes the fault at a site, if any.
func (in *Injector) Disarm(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, name)
}

// Hits returns how many times the site has been consulted.
func (in *Injector) Hits(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.sites[name]; s != nil {
		return s.hits
	}
	return 0
}

// Fired returns how many times the site actually fired.
func (in *Injector) Fired(name string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s := in.sites[name]; s != nil {
		return s.fired
	}
	return 0
}

// trigger records one consultation of the site and decides whether it
// fires, returning the spec when it does.
func (in *Injector) trigger(name string) (Spec, bool) {
	if in == nil {
		return Spec{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		return Spec{}, false
	}
	s.hits++
	if s.hits <= int64(s.spec.After) {
		return Spec{}, false
	}
	if s.spec.Times > 0 && s.fired >= int64(s.spec.Times) {
		return Spec{}, false
	}
	if s.spec.Prob > 0 && in.rng.Float64() >= s.spec.Prob {
		return Spec{}, false
	}
	s.fired++
	return s.spec, true
}

// Check consults a site: if its fault fires, Check sleeps the armed delay
// and then panics (Panic specs) or returns the armed error. A site that is
// disarmed, out of budget, or attached to a nil injector returns nil.
func (in *Injector) Check(name string) error {
	spec, fire := in.trigger(name)
	if !fire {
		return nil
	}
	if spec.Delay > 0 {
		in.sleep(spec.Delay)
	}
	if spec.Panic {
		panic(Panic{Site: name})
	}
	if spec.Err != nil {
		return fmt.Errorf("fault: site %s: %w", name, spec.Err)
	}
	if spec.Delay > 0 {
		// Delay-only spec: a pure slow-down, not a failure.
		return nil
	}
	return fmt.Errorf("fault: site %s: %w", name, ErrInjected)
}

// Writer wraps w so that when the site fires, that Write call is truncated
// to the armed ShortWrite byte count and fails — a torn write. While the
// site stays quiet (or the injector is nil) the writer passes through.
func (in *Injector) Writer(name string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, name: name, w: w}
}

type faultWriter struct {
	in   *Injector
	name string
	w    io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	spec, fire := fw.in.trigger(fw.name)
	if !fire {
		return fw.w.Write(p)
	}
	if spec.Delay > 0 {
		fw.in.sleep(spec.Delay)
	}
	if spec.Panic {
		panic(Panic{Site: fw.name})
	}
	n := 0
	if spec.ShortWrite > 0 {
		short := spec.ShortWrite
		if short > len(p) {
			short = len(p)
		}
		n, _ = fw.w.Write(p[:short])
	}
	err := spec.Err
	if err == nil {
		err = ErrInjected
	}
	return n, fmt.Errorf("fault: site %s: short write (%d of %d bytes): %w", fw.name, n, len(p), err)
}

// ParseSpec parses one "-fault" flag value of the form
//
//	site:directive[,directive...]
//
// with directives error, panic, delay=<duration>, short=<bytes>,
// after=<n>, times=<n>, prob=<float>. A bare site (no directives) arms a
// plain error return. Example:
//
//	store.save.sync:delay=2s
//	server.resolve:panic,times=1
func ParseSpec(v string) (name string, spec Spec, err error) {
	name, rest, _ := strings.Cut(v, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", Spec{}, fmt.Errorf("fault: empty site in spec %q", v)
	}
	if strings.TrimSpace(rest) == "" {
		return name, Spec{Err: ErrInjected}, nil
	}
	for _, d := range strings.Split(rest, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(d), "=")
		switch key {
		case "error":
			spec.Err = ErrInjected
		case "panic":
			spec.Panic = true
		case "delay":
			if !hasVal {
				return "", Spec{}, fmt.Errorf("fault: delay needs a duration in %q", v)
			}
			spec.Delay, err = time.ParseDuration(val)
			if err != nil {
				return "", Spec{}, fmt.Errorf("fault: bad delay in %q: %v", v, err)
			}
		case "short":
			if !hasVal {
				return "", Spec{}, fmt.Errorf("fault: short needs a byte count in %q", v)
			}
			spec.ShortWrite, err = strconv.Atoi(val)
			if err != nil {
				return "", Spec{}, fmt.Errorf("fault: bad short in %q: %v", v, err)
			}
			if spec.Err == nil {
				spec.Err = ErrInjected
			}
		case "after":
			if spec.After, err = strconv.Atoi(val); err != nil || !hasVal {
				return "", Spec{}, fmt.Errorf("fault: bad after in %q", v)
			}
		case "times":
			if spec.Times, err = strconv.Atoi(val); err != nil || !hasVal {
				return "", Spec{}, fmt.Errorf("fault: bad times in %q", v)
			}
		case "prob":
			if spec.Prob, err = strconv.ParseFloat(val, 64); err != nil || !hasVal {
				return "", Spec{}, fmt.Errorf("fault: bad prob in %q", v)
			}
		default:
			return "", Spec{}, fmt.Errorf("fault: unknown directive %q in %q", key, v)
		}
	}
	return name, spec, nil
}
