// Package budget turns the offline progressive scheduler into the serving
// layer's admission and execution model: pay-as-you-go Entity Resolution
// under per-request SLAs (the paper's §3 "efficiency-intensive"
// application class, online).
//
// Three pieces:
//
//   - Contract: the per-request budget — a wall-clock allowance
//     (budget_ms), a comparison cap (max_comparisons) and a confidence
//     floor (min_confidence) parsed from /v1/resolve query parameters and
//     clamped by the request's tier defaults. A comparison is one ranked
//     candidate handed to the client: the unit of downstream matching
//     work the stream's best-first order is optimizing.
//   - Emitter: the deadline-aware, comparison-counting executor. It walks
//     a resolve's ranked candidates (already in the strict weight-desc,
//     ID-asc total order) and flushes them in batches as they clear the
//     weight frontier, stopping at whichever budget axis exhausts first.
//     Exhaustion always flushes at least one batch and yields a signed
//     resumption Cursor; completion (stream drained, or the frontier fell
//     below min_confidence) yields none.
//   - Pools: tiered SLA admission. Named tiers (interactive, batch) each
//     gate their traffic with a separate token pool sitting in FRONT of
//     the server's bounded admission queue, so a flood of batch traffic
//     cannot starve interactive requests of queue slots. Each tier also
//     carries the default budget applied to requests that name none.
//
// The zero-budget tier is the circuit breaker's degraded mode: a request
// served while the breaker is open gets a read-only (Peek) first batch
// and no cursor — the same mechanism, with an empty allowance.
package budget

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"time"
)

// Counter names the serving layer registers for the budget subsystem.
const (
	// CtrStreams counts streamed (SSE or chunked-JSON) resolve responses.
	CtrStreams = "budget.streams"
	// CtrExhausted counts streams stopped by budget exhaustion
	// (deadline or comparison cap) before the ranked stream drained.
	CtrExhausted = "budget.exhausted"
	// CtrPartialResults counts responses that delivered only a prefix of
	// the ranked stream: exhausted budgets plus degraded zero-budget
	// (cursor-less) answers.
	CtrPartialResults = "budget.partial_results"
	// CtrCursorResumes counts resolves that presented a valid resumption
	// cursor and continued a previous stream.
	CtrCursorResumes = "budget.cursor_resumes"
	// CtrCursorInvalid counts cursors refused: bad signature, wrong
	// generation (the index was reloaded or checkpointed), or garbage.
	CtrCursorInvalid = "budget.cursor_invalid"
	// CtrComparisons counts ranked candidates emitted across all streams
	// — the numerator of comparisons-per-ms.
	CtrComparisons = "budget.comparisons"
	// CtrGathered counts candidates surfaced by the gather path (the
	// shard coordinator's early-emit hook, or the single resolver's
	// weighed-neighbor count) on behalf of budgeted requests.
	CtrGathered = "budget.gathered"
	// CtrTierShed counts requests refused because their tier's token pool
	// was empty (HTTP 429 tier_busy).
	CtrTierShed = "budget.tier_shed"
)

// Well-known tier names. TierInteractive is the default for requests that
// name none.
const (
	TierInteractive = "interactive"
	TierBatch       = "batch"
)

// Sentinel errors, matchable with errors.Is across the serving layer.
var (
	// ErrTierSaturated reports a tier whose token pool had no free slot —
	// the serving layer sheds with 429 tier_busy.
	ErrTierSaturated = errors.New("budget: tier admission pool full")
	// ErrUnknownTier reports a request naming a tier the server does not
	// run.
	ErrUnknownTier = errors.New("budget: unknown tier")
	// ErrBadContract reports unparseable budget parameters.
	ErrBadContract = errors.New("budget: invalid budget parameter")
)

// Contract is one request's budget: how much work the client is paying
// for. The zero value is "unbudgeted": the full ranked stream.
type Contract struct {
	// Tier names the admission pool and supplies defaults; empty means
	// TierInteractive.
	Tier string
	// Budget bounds server-side wall clock from the start of emission.
	// Zero means no time budget.
	Budget time.Duration
	// MaxComparisons caps ranked candidates emitted. Zero means no cap.
	MaxComparisons int
	// MinConfidence stops the stream once the weight frontier falls below
	// it. Reaching the floor is completion (the client declared it does
	// not want weaker candidates), not exhaustion — no cursor is issued.
	MinConfidence float64
	// Budgeted reports whether any axis is active (explicitly or via tier
	// defaults): whether exhaustion is possible at all.
	Budgeted bool
}

// ParseContract reads the budget contract from /v1/resolve query
// parameters (budget_ms, max_comparisons, min_confidence, tier), applying
// the tier's default time/comparison budgets for axes the request leaves
// unset. An explicit 0 disables an axis the tier would otherwise default.
func ParseContract(q url.Values, tiers []Tier) (Contract, error) {
	c := Contract{Tier: q.Get("tier")}
	if c.Tier == "" {
		c.Tier = TierInteractive
	}
	var tier *Tier
	for i := range tiers {
		if tiers[i].Name == c.Tier {
			tier = &tiers[i]
			break
		}
	}
	if tier == nil {
		return c, fmt.Errorf("%w: %q", ErrUnknownTier, c.Tier)
	}
	budgetMs, hasBudgetMs, err := intParam(q, "budget_ms")
	if err != nil {
		return c, err
	}
	maxComp, hasMaxComp, err := intParam(q, "max_comparisons")
	if err != nil {
		return c, err
	}
	if v := q.Get("min_confidence"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return c, fmt.Errorf("%w: min_confidence=%q", ErrBadContract, v)
		}
		c.MinConfidence = f
	}
	c.Budget = time.Duration(budgetMs) * time.Millisecond
	if !hasBudgetMs {
		c.Budget = tier.DefaultBudget
	}
	c.MaxComparisons = maxComp
	if !hasMaxComp {
		c.MaxComparisons = tier.DefaultMaxComparisons
	}
	c.Budgeted = c.Budget > 0 || c.MaxComparisons > 0 || c.MinConfidence > 0
	return c, nil
}

// intParam parses a non-negative integer query parameter, reporting
// whether it was present at all.
func intParam(q url.Values, name string) (int, bool, error) {
	v := q.Get(name)
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, true, fmt.Errorf("%w: %s=%q", ErrBadContract, name, v)
	}
	return n, true, nil
}

// Tier is one named SLA class: an admission pool size and the default
// budgets applied to its requests.
type Tier struct {
	// Name identifies the tier in requests and metrics.
	Name string
	// Slots bounds concurrently admitted requests of this tier. Zero or
	// negative disables the pool (admit everything) — the in-library
	// default; cmd/serve sets real bounds.
	Slots int
	// DefaultBudget is the time budget applied when a request sets none.
	DefaultBudget time.Duration
	// DefaultMaxComparisons is the comparison cap applied when a request
	// sets none.
	DefaultMaxComparisons int
}

// pool is one tier's token channel.
type pool struct {
	tier   Tier
	tokens chan struct{} // nil when unbounded
}

// Pools gates admission per tier, in front of the serving queue. Safe for
// concurrent use.
type Pools struct {
	pools []*pool
}

// NewPools builds the admission pools. Tier order is preserved in Stats.
func NewPools(tiers ...Tier) *Pools {
	ps := &Pools{}
	for _, t := range tiers {
		p := &pool{tier: t}
		if t.Slots > 0 {
			p.tokens = make(chan struct{}, t.Slots)
		}
		ps.pools = append(ps.pools, p)
	}
	return ps
}

// Tiers returns the configured tiers, in order.
func (ps *Pools) Tiers() []Tier {
	out := make([]Tier, len(ps.pools))
	for i, p := range ps.pools {
		out[i] = p.tier
	}
	return out
}

// Acquire takes one admission slot of the named tier, returning the
// release func, or ErrTierSaturated when the pool is full (the caller
// sheds with 429) / ErrUnknownTier for a tier Pools does not run.
func (ps *Pools) Acquire(tier string) (func(), error) {
	for _, p := range ps.pools {
		if p.tier.Name != tier {
			continue
		}
		if p.tokens == nil {
			return func() {}, nil
		}
		select {
		case p.tokens <- struct{}{}:
			return func() { <-p.tokens }, nil
		default:
			return nil, fmt.Errorf("%w: %s (%d slots)", ErrTierSaturated, tier, p.tier.Slots)
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownTier, tier)
}

// TierStat is one tier's admission snapshot, served by
// GET /v1/admin/status.
type TierStat struct {
	Tier  string `json:"tier"`
	Slots int    `json:"slots"`
	// Free is the number of unheld slots; equal to Slots for unbounded
	// pools.
	Free int `json:"free"`
	// DefaultBudgetMs and DefaultMaxComparisons echo the tier's defaults.
	DefaultBudgetMs       int64 `json:"default_budget_ms"`
	DefaultMaxComparisons int   `json:"default_max_comparisons"`
}

// Stats snapshots every tier's pool occupancy.
func (ps *Pools) Stats() []TierStat {
	out := make([]TierStat, len(ps.pools))
	for i, p := range ps.pools {
		st := TierStat{
			Tier:                  p.tier.Name,
			Slots:                 p.tier.Slots,
			Free:                  p.tier.Slots,
			DefaultBudgetMs:       p.tier.DefaultBudget.Milliseconds(),
			DefaultMaxComparisons: p.tier.DefaultMaxComparisons,
		}
		if p.tokens != nil {
			st.Free = cap(p.tokens) - len(p.tokens)
		}
		out[i] = st
	}
	return out
}
