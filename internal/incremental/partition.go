// Sharded building blocks of the incremental index.
//
// A Partition is one hash-shard of a Resolver: it holds the profiles whose
// IDs hash to it (ShardOf), the shard's slice of every block's posting
// list, and its own ScanCount scratch. Partitions know nothing about each
// other — the global statistics every weighting scheme needs (block
// cardinalities for ARCS and Block Purging, the distinct-block count for
// ECBS, the arriving profile's key count) are computed once by a
// coordinator (internal/shard.Group) and passed into Gather, so a
// candidate's weight comes out bit-identical to the single-index Resolver:
// the per-candidate accumulation order, the float operations and the
// operand values are all the same.
//
// The coordinator reconstructs the serial resolver's global behavior from
// the per-partition results with the merge kernels below:
//
//   - MergeTopK folds per-shard bounded top-K heaps into the global top-K.
//     The candidate ranking (weight descending, ID ascending) is a strict
//     total order — IDs are distinct — so local-then-global selection
//     picks exactly the set a single global heap would.
//   - MergeAboveMean re-sorts the union of all shards' neighbors into the
//     serial resolver's discovery order (first-key index, then ID) before
//     summing the mean, so the float threshold is bit-identical too.
package incremental

import (
	"fmt"
	"math"
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/postings"
)

// Index is the shardable serving-index contract: what internal/server
// binds to, implemented by the single-writer *Resolver and by the
// scatter-gather shard.Group. Implementations are not safe for concurrent
// use — the serving layer serializes every call behind its writer lock.
type Index interface {
	// Resolve assigns the next ID and returns the pruned candidates —
	// Add with an error channel for implementations whose index pass can
	// fail partway (a downed shard).
	Resolve(p entity.Profile) (BatchResult, error)
	// Peek computes the candidates Resolve would return without mutating
	// the index — the degraded-mode read path.
	Peek(p entity.Profile) ([]Candidate, error)
	// Size returns the number of profiles resolved so far.
	Size() int
	// Snapshot deep-copies the index state in the canonical (global,
	// shard-count-independent) snapshot form.
	Snapshot() *Snapshot
	// Close releases any goroutines or buffers the index owns.
	Close() error
}

// Resolve implements Index: Add, which cannot fail on a single index.
func (r *Resolver) Resolve(p entity.Profile) (BatchResult, error) {
	id, cands := r.Add(p)
	return BatchResult{ID: id, Candidates: cands}, nil
}

// Close implements Index; a Resolver owns no goroutines.
func (r *Resolver) Close() error { return nil }

// ShardOf maps an entity ID to its home shard. IDs are dense arrival
// indexes, so modular placement is a perfect hash: shards stay within one
// profile of each other and the local slot of an ID is id/shards.
func ShardOf(id entity.ID, shards int) int { return int(id) % shards }

// SkipKey marks a block key the coordinator has ruled out of a gather —
// no block exists yet, or Block Purging dropped it — in the per-key
// increment slice passed to Gather.
const SkipKey = float64(-1)

// KeyIncrements fills incs with the per-key ScanCount increment of one
// arrival, exactly as the serial resolver derives it from its own index:
// SkipKey for keys with no block or with more than maxBlockSize members
// (global cardinality), 1/‖b‖ for ARCS (the cardinality counting the
// arriving profile), 1 otherwise. blockSize must report global sizes.
func KeyIncrements(incs []float64, keys []string, blockSize func(string) int, scheme core.Scheme, maxBlockSize int) []float64 {
	incs = incs[:0]
	for _, k := range keys {
		n := blockSize(k)
		if n == 0 || n > maxBlockSize {
			incs = append(incs, SkipKey)
			continue
		}
		inc := 1.0
		if scheme == core.ARCS {
			nc := int64(n+1) * int64(n) / 2
			inc = 1 / float64(nc)
		}
		incs = append(incs, inc)
	}
	return incs
}

// ShardCand is one weighted neighbor reported by a partition: the
// candidate plus the index of the first gather key whose block contains
// it, which is what lets the coordinator reconstruct the serial
// resolver's discovery order across shards.
type ShardCand struct {
	Candidate
	FirstKey int32
}

// shardCell is a scanCell that additionally remembers the index of the
// gather key whose block first discovered this slot's entity.
type shardCell struct {
	epoch    int64
	common   float64
	firstKey int32
}

// Partition is one hash-shard of the incremental index: profiles with
// ShardOf(id) == index live here, stored at local slot id/shards. It is a
// single-writer structure like Resolver — internal/shard gives each
// partition its own actor goroutine.
type Partition struct {
	scheme core.Scheme
	shards int // total shard count (for slot arithmetic)
	index  int // this partition's shard number

	// profiles[slot] is the profile with global ID slot*shards+index.
	profiles []entity.Profile
	// blocks maps token → the posting list of member GLOBAL IDs owned by
	// this shard. Commits arrive in ascending global-ID order, so every
	// list still delta-encodes.
	blocks map[string]*postings.Builder
	// blocksOf[slot] lists the block keys of the profile at slot — the
	// |B_j| term of ECBS and JS, local by construction.
	blocksOf [][]string

	// ScanCount scratch, slot-indexed, grown by Commit. Unlike the
	// single-index scanCell it also records the first gather key that
	// discovered the slot, for the cross-shard discovery-order merge.
	cells []shardCell
	epoch int64

	// Per-call scratch, reused across gathers.
	neighbors []entity.ID
	members   []entity.ID
	out       []ShardCand
	topk      candHeap
}

// NewPartition returns shard index of shards for the given scheme.
func NewPartition(scheme core.Scheme, shards, index int) *Partition {
	return &Partition{
		scheme: scheme,
		shards: shards,
		index:  index,
		blocks: make(map[string]*postings.Builder),
	}
}

// Len returns the number of profiles homed on this partition.
func (t *Partition) Len() int { return len(t.profiles) }

// Blocks returns the number of distinct block keys with at least one
// member on this partition.
func (t *Partition) Blocks() int { return len(t.blocks) }

// Profile returns the partition-homed profile with the given global ID.
func (t *Partition) Profile(id entity.ID) *entity.Profile {
	return &t.profiles[int(id)/t.shards]
}

// Gather runs the ScanCount accumulation for one arrival over this
// shard's slices of the keyed blocks and returns every local neighbor
// with its weight and first-key discovery index, appended to dst (which
// may be a reused buffer; the result aliases it). incs carries the
// coordinator-computed per-key increment (SkipKey to skip), bi the
// arrival's distinct-key count and nb the ECBS block-count term — the
// global quantities a shard cannot know. maxWeighted, when positive,
// prunes the result to the local top-K under the candidate ranking; the
// FirstKey fields of a pruned result are meaningless (top-K selection
// never needs discovery order).
func (t *Partition) Gather(keys []string, incs []float64, bi int, nb float64, maxWeighted int, dst []ShardCand) []ShardCand {
	t.epoch++
	epoch := t.epoch
	cells := t.cells
	neighbors := t.neighbors[:0]
	for ki, k := range keys {
		inc := incs[ki]
		if inc == SkipKey {
			continue
		}
		b := t.blocks[k]
		if b == nil {
			continue
		}
		t.members = b.AppendTo(t.members[:0])
		for _, j := range t.members {
			c := &cells[int(j)/t.shards]
			if c.epoch != epoch {
				c.epoch = epoch
				c.common = inc
				c.firstKey = int32(ki)
				neighbors = append(neighbors, j)
			} else {
				c.common += inc
			}
		}
	}
	t.neighbors = neighbors
	if len(neighbors) == 0 {
		return dst[:0]
	}
	if maxWeighted > 0 {
		t.topk.reset(maxWeighted)
		for _, j := range neighbors {
			t.topk.offer(Candidate{ID: j, Weight: t.weight(bi, nb, j)})
		}
		dst = dst[:0]
		for _, c := range t.topk.cs {
			dst = append(dst, ShardCand{Candidate: c})
		}
		return dst
	}
	dst = dst[:0]
	for _, j := range neighbors {
		dst = append(dst, ShardCand{
			Candidate: Candidate{ID: j, Weight: t.weight(bi, nb, j)},
			FirstKey:  t.cells[int(j)/t.shards].firstKey,
		})
	}
	return dst
}

// weight evaluates the scheme for the arriving profile (bi keys, nb the
// ECBS block-count term) against local neighbor j — the same expressions,
// in the same order, as Resolver.weight.
func (t *Partition) weight(bi int, nb float64, j entity.ID) float64 {
	c := &t.cells[int(j)/t.shards]
	common := c.common
	bj := len(t.blocksOf[int(j)/t.shards])
	switch t.scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		return common * math.Log(nb/float64(bi)) * math.Log(nb/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	default:
		return common
	}
}

// Commit homes a newly assigned profile on this partition: the profile and
// its block keys are appended, and its global ID joins the shard's slice
// of each keyed posting list. The caller (the coordinator's second phase)
// guarantees IDs arrive in ascending order and ShardOf(id) == index; keys
// are copied, so the caller may reuse its buffer.
func (t *Partition) Commit(id entity.ID, p entity.Profile, keys []string) error {
	if ShardOf(id, t.shards) != t.index {
		return fmt.Errorf("incremental: profile %d committed to shard %d of %d, belongs on %d",
			id, t.index, t.shards, ShardOf(id, t.shards))
	}
	if slot := int(id) / t.shards; slot != len(t.profiles) {
		return fmt.Errorf("incremental: profile %d arrives at shard %d slot %d, expected slot %d",
			id, t.index, slot, len(t.profiles))
	}
	p.ID = id
	t.profiles = append(t.profiles, p)
	t.cells = append(t.cells, shardCell{})
	var kept []string
	if len(keys) > 0 {
		kept = make([]string, len(keys))
		copy(kept, keys)
	}
	t.blocksOf = append(t.blocksOf, kept)
	for _, k := range keys {
		b := t.blocks[k]
		if b == nil {
			b = new(postings.Builder)
			t.blocks[k] = b
		}
		b.Append(id)
	}
	return nil
}

// PartitionSnapshot is one shard's slice of a resolver snapshot — what
// internal/store persists as a per-shard segment.
type PartitionSnapshot struct {
	Shard    int
	Shards   int
	Profiles []entity.Profile
	// Blocks maps token → this shard's ascending global member IDs.
	Blocks   map[string][]entity.ID
	BlocksOf [][]string
}

// Snapshot deep-copies the partition's state.
func (t *Partition) Snapshot() *PartitionSnapshot {
	s := &PartitionSnapshot{
		Shard:    t.index,
		Shards:   t.shards,
		Profiles: append([]entity.Profile(nil), t.profiles...),
		Blocks:   make(map[string][]entity.ID, len(t.blocks)),
		BlocksOf: make([][]string, len(t.blocksOf)),
	}
	for k, b := range t.blocks {
		s.Blocks[k] = b.AppendTo(make([]entity.ID, 0, b.Len()))
	}
	for i, keys := range t.blocksOf {
		s.BlocksOf[i] = append([]string(nil), keys...)
	}
	return s
}

// MergeSnapshots folds per-shard segments into the canonical global
// snapshot: profiles re-interleaved into arrival order, each block's
// member list the ascending union of the shards' disjoint slices. The
// result is byte-identical to the snapshot a single-index Resolver over
// the same arrivals would produce — shard count does not leak into the
// artifact, which is what lets internal/store load either layout into
// either serving shape.
func MergeSnapshots(cfg Config, segs []*PartitionSnapshot) *Snapshot {
	if cfg.MaxBlockSize == 0 {
		cfg.MaxBlockSize = 1000
	}
	shards := len(segs)
	n := 0
	for _, seg := range segs {
		n += len(seg.Profiles)
	}
	snap := &Snapshot{
		Config: cfg,
		Blocks: make(map[string][]entity.ID),
		// Matching Resolver.Snapshot's shapes (nil Profiles on an empty
		// index, non-nil BlocksOf) keeps reflect.DeepEqual equivalence.
		BlocksOf: make([][]string, n),
	}
	if n > 0 {
		snap.Profiles = make([]entity.Profile, n)
	}
	for _, seg := range segs {
		for slot, p := range seg.Profiles {
			id := slot*shards + seg.Shard
			snap.Profiles[id] = p
			snap.BlocksOf[id] = seg.BlocksOf[slot]
		}
		for k, members := range seg.Blocks {
			snap.Blocks[k] = append(snap.Blocks[k], members...)
		}
	}
	for k := range snap.Blocks {
		ms := snap.Blocks[k]
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
	}
	return snap
}

// PartitionSnapshotsOf splits a canonical snapshot into per-shard
// segments — the inverse of MergeSnapshots, used to persist or serve an
// existing artifact at a different shard count. The segments share the
// snapshot's profile and member slices; treat both as immutable.
func PartitionSnapshotsOf(s *Snapshot, shards int) ([]*PartitionSnapshot, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("incremental: %d shards", shards)
	}
	if len(s.BlocksOf) != len(s.Profiles) {
		return nil, fmt.Errorf("incremental: snapshot has %d profiles but %d block-key lists",
			len(s.Profiles), len(s.BlocksOf))
	}
	segs := make([]*PartitionSnapshot, shards)
	for i := range segs {
		segs[i] = &PartitionSnapshot{
			Shard:    i,
			Shards:   shards,
			Blocks:   make(map[string][]entity.ID),
			BlocksOf: make([][]string, 0),
		}
	}
	for id, p := range s.Profiles {
		seg := segs[ShardOf(entity.ID(id), shards)]
		seg.Profiles = append(seg.Profiles, p)
		seg.BlocksOf = append(seg.BlocksOf, s.BlocksOf[id])
	}
	for key, members := range s.Blocks {
		for _, id := range members {
			seg := segs[ShardOf(id, shards)]
			seg.Blocks[key] = append(seg.Blocks[key], id)
		}
	}
	return segs, nil
}

// Merger holds the coordinator-side scratch of the cross-shard merge
// kernels, reused across arrivals. The zero value is ready to use; not
// safe for concurrent use.
type Merger struct {
	heap  candHeap
	union []ShardCand
}

// TopK folds per-shard gather results into the global top-K under the
// candidate ranking, returning a freshly allocated slice sorted
// heaviest-first. Each input list need only contain its shard's top K —
// any candidate in the global top-K outranks at least as many candidates
// globally as within its own shard, so it survives local pruning. The
// ranking is strict (IDs are distinct), which makes the merge independent
// of input order: ties in weight break deterministically by ascending ID.
func (m *Merger) TopK(k int, lists [][]ShardCand) []Candidate {
	m.heap.reset(k)
	for _, list := range lists {
		for _, c := range list {
			m.heap.offer(c.Candidate)
		}
	}
	if len(m.heap.cs) == 0 {
		return nil
	}
	out := make([]Candidate, len(m.heap.cs))
	copy(out, m.heap.cs)
	sortCandidates(out)
	return out
}

// AboveMean applies the serial resolver's mean-weight pruning to the
// union of per-shard gather results. The inputs are re-sorted into the
// serial discovery order — ascending (FirstKey, ID): every neighbor first
// discovered at key ki precedes every neighbor first discovered later,
// and neighbors sharing a first key were appended in ascending-ID order
// because posting lists are ascending — and the mean is a single
// left-to-right sum over that order, so the threshold is bit-identical to
// the single-index computation.
func (m *Merger) AboveMean(lists [][]ShardCand) []Candidate {
	all := m.union[:0]
	for _, list := range lists {
		all = append(all, list...)
	}
	m.union = all
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].FirstKey != all[b].FirstKey {
			return all[a].FirstKey < all[b].FirstKey
		}
		return all[a].ID < all[b].ID
	})
	var sum float64
	for _, c := range all {
		sum += c.Weight
	}
	mean := sum / float64(len(all))
	kept := 0
	for _, c := range all {
		if c.Weight >= mean {
			kept++
		}
	}
	out := make([]Candidate, 0, kept)
	for _, c := range all {
		if c.Weight >= mean {
			out = append(out, c.Candidate)
		}
	}
	sortCandidates(out)
	return out
}
