package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metablocking/internal/core"
	"metablocking/internal/dataio"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/par"
	"metablocking/internal/store"
)

// TestInjectedPanicFailsOneRequestOnly is the panic-isolation acceptance
// test: with a panic armed at the resolve site for exactly one trigger,
// exactly one concurrent request fails (with a *par.PanicError), its
// batch-mates all succeed with dense IDs, the batcher survives, and
// server.panics_recovered reads 1.
func TestInjectedPanicFailsOneRequestOnly(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultResolve, fault.Spec{Panic: true, Times: 1})
	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 5},
		BatchWindow: 20 * time.Millisecond,
		MaxBatch:    16,
		QueueDepth:  64,
		Fault:       inj,
	})
	const n = 6
	profiles := testProfiles(t, n+1)

	var wg sync.WaitGroup
	errc := make(chan error, n)
	ids := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Resolve(context.Background(), profiles[i])
			if err != nil {
				errc <- err
				return
			}
			ids <- int(res.ID)
		}(i)
	}
	wg.Wait()
	close(errc)
	close(ids)

	var failures []error
	for err := range errc {
		failures = append(failures, err)
	}
	if len(failures) != 1 {
		t.Fatalf("%d requests failed, want exactly 1: %v", len(failures), failures)
	}
	var pe *par.PanicError
	if !errors.As(failures[0], &pe) {
		t.Fatalf("failure is %T (%v), want *par.PanicError", failures[0], failures[0])
	}
	// The panicking request never touched the index: survivors got dense IDs.
	seen := make(map[int]bool)
	for id := range ids {
		if id < 0 || id >= n-1 || seen[id] {
			t.Fatalf("survivor IDs not dense 0..%d: got %d", n-2, id)
		}
		seen[id] = true
	}
	if got := s.Metrics().Counter(CtrPanics).Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	// The process — and the batcher — are still alive.
	if res, err := s.Resolve(context.Background(), profiles[n]); err != nil || int(res.ID) != n-1 {
		t.Fatalf("resolve after panic: id=%d err=%v", res.ID, err)
	}
	if s.Metrics().Text(TextLastError).Value() == "" {
		t.Fatal("server.last_error not recorded")
	}
}

// TestInjectedPanicHTTP500 drives the same scenario through the HTTP
// layer: the poisoned request gets a 500, every other request a 200, and
// the server keeps serving.
func TestInjectedPanicHTTP500(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultResolve, fault.Spec{Panic: true, After: 1, Times: 1})
	s := newTestServer(t, Config{
		Resolver:   incremental.Config{Scheme: core.CBS},
		MaxBatch:   1,
		QueueDepth: 64,
		Fault:      inj,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	profiles := testProfiles(t, 3)
	var statuses []int
	for _, p := range profiles {
		raw, err := dataio.MarshalProfileJSON(p)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
	}
	if want := []int{200, 500, 200}; fmt.Sprint(statuses) != fmt.Sprint(want) {
		t.Fatalf("statuses = %v, want %v", statuses, want)
	}
	if got := s.Metrics().Counter(CtrPanics).Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
}

// TestDegradedModeServesReads opens the circuit breaker with injected
// resolve failures and checks the degraded contract: requests keep being
// answered read-only from the last good index (ID -1, Degraded true, no
// error), and a successful half-open probe closes the circuit again.
func TestDegradedModeServesReads(t *testing.T) {
	inj := fault.New(1)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	s := newTestServer(t, Config{
		Resolver:         incremental.Config{Scheme: core.JS, K: 5},
		MaxBatch:         1, // one request per index pass: deterministic breaker stepping
		QueueDepth:       64,
		Fault:            inj,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	}, WithClock(clk.now))
	profiles := testProfiles(t, 8)
	ctx := context.Background()

	// Seed the index with three good profiles.
	for i := 0; i < 3; i++ {
		if _, err := s.Resolve(ctx, profiles[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Two consecutive injected failures trip the breaker.
	inj.Arm(FaultResolve, fault.Spec{Err: fault.ErrInjected})
	for i := 0; i < 2; i++ {
		if _, err := s.Resolve(ctx, profiles[3]); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("failure %d: err = %v, want injected", i, err)
		}
	}
	if !s.Degraded() {
		t.Fatal("breaker not open after threshold failures")
	}
	if got := s.Metrics().Gauge(GaugeDegraded).Value(); got != 1 {
		t.Fatalf("degraded gauge = %d, want 1", got)
	}

	// Degraded answers: read-only, no error, no mutation — even though the
	// fault is still armed (the write path is never entered).
	sizeBefore := s.Size()
	for i := 0; i < 3; i++ {
		res, err := s.Resolve(ctx, profiles[4])
		if err != nil {
			t.Fatalf("degraded resolve errored: %v", err)
		}
		if !res.Degraded || res.ID != -1 {
			t.Fatalf("degraded answer = {ID:%d Degraded:%v}, want {ID:-1 Degraded:true}", res.ID, res.Degraded)
		}
	}
	if s.Size() != sizeBefore {
		t.Fatalf("degraded mode mutated the index: %d → %d", sizeBefore, s.Size())
	}
	if got := s.Metrics().Counter(CtrDegradedSrv).Value(); got != 3 {
		t.Fatalf("degraded_served = %d, want 3", got)
	}

	// Heal the fault, pass the cooldown: the half-open probe succeeds and
	// the circuit closes.
	inj.Disarm(FaultResolve)
	clk.advance(time.Minute)
	res, err := s.Resolve(ctx, profiles[5])
	if err != nil || res.Degraded || res.ID == -1 {
		t.Fatalf("probe resolve = {ID:%d Degraded:%v} err=%v, want a real ID", res.ID, res.Degraded, err)
	}
	if s.Degraded() {
		t.Fatal("still degraded after successful probe")
	}
	if got := s.Metrics().Gauge(GaugeDegraded).Value(); got != 0 {
		t.Fatalf("degraded gauge = %d, want 0", got)
	}
}

// TestFailedProbeReopens: while the write path keeps failing, the single
// half-open probe fails and the circuit goes straight back to degraded.
func TestFailedProbeReopens(t *testing.T) {
	inj := fault.New(1)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	s := newTestServer(t, Config{
		Resolver:         incremental.Config{Scheme: core.CBS},
		MaxBatch:         1,
		QueueDepth:       64,
		Fault:            inj,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	}, WithClock(clk.now))
	profiles := testProfiles(t, 3)
	ctx := context.Background()

	inj.Arm(FaultResolve, fault.Spec{Err: fault.ErrInjected})
	if _, err := s.Resolve(ctx, profiles[0]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if !s.Degraded() {
		t.Fatal("breaker not open")
	}
	clk.advance(time.Minute)
	// Probe runs the still-failing write path: the caller sees the error,
	// the circuit reopens.
	if _, err := s.Resolve(ctx, profiles[1]); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("probe err = %v, want injected", err)
	}
	if !s.Degraded() {
		t.Fatal("breaker closed after failed probe")
	}
	// Back inside the new cooldown: degraded answers again.
	res, err := s.Resolve(ctx, profiles[2])
	if err != nil || !res.Degraded {
		t.Fatalf("post-probe resolve = {Degraded:%v} err=%v, want degraded", res.Degraded, err)
	}
}

// TestCorruptReloadNeverTouchesLiveIndex is the verify-before-swap
// acceptance test: reloading a corrupted snapshot under live resolve
// traffic returns 422, fails or drops zero in-flight requests, leaves the
// live index serving, and a subsequent good reload still works.
func TestCorruptReloadNeverTouchesLiveIndex(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	bad := filepath.Join(dir, "bad.snap")

	s := newTestServer(t, Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 5},
		BatchWindow: time.Millisecond,
		MaxBatch:    16,
		QueueDepth:  4096, // never shed: every in-flight request must succeed
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const seed = 10
	profiles := testProfiles(t, seed+40)
	for i := 0; i < seed; i++ {
		if _, err := s.Resolve(context.Background(), profiles[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SnapshotFile(good); err != nil {
		t.Fatal(err)
	}
	// Corrupt a copy: flip one bit in the payload.
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Live traffic while the corrupt reload lands.
	var wg sync.WaitGroup
	errc := make(chan error, 40)
	for i := seed; i < seed+40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := dataio.MarshalProfileJSON(profiles[i])
			if err != nil {
				errc <- err
				return
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(raw))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("resolve status %d", resp.StatusCode)
			}
		}(i)
	}

	body, _ := json.Marshal(ReloadRequest{Path: bad})
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload status = %d, want 422 (%s: %s)", resp.StatusCode, e.Error.Code, e.Error.Message)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("in-flight request failed during corrupt reload: %v", err)
	}
	if got := s.Metrics().Counter(CtrReloads).Value(); got != 0 {
		t.Fatalf("reloads = %d: the corrupt artifact was swapped in", got)
	}
	if got := s.Metrics().Counter(CtrCorruptLoads).Value(); got != 1 {
		t.Fatalf("corrupt_loads = %d, want 1", got)
	}
	if got := s.Size(); got != seed+40 {
		t.Fatalf("index size = %d, want %d (live index must be untouched)", got, seed+40)
	}

	// The good artifact still swaps in fine.
	body, _ = json.Marshal(ReloadRequest{Path: good})
	resp, err = ts.Client().Post(ts.URL+"/v1/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good reload status = %d", resp.StatusCode)
	}
	if got := s.Size(); got != seed {
		t.Fatalf("size after good reload = %d, want %d", got, seed)
	}
}

// TestVersionMismatchReload422 writes a future-versioned artifact and
// checks the reload path classifies it as 422, not 500.
func TestVersionMismatchReload422(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.snap")
	if err := store.SaveResolverFile(path, &incremental.Snapshot{
		Config: incremental.Config{Scheme: core.JS},
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4]++ // container version byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Resolver: incremental.Config{Scheme: core.JS}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ReloadRequest{Path: path})
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("version-mismatch reload status = %d, want 422", resp.StatusCode)
	}
}

// TestRequestTimeout arms a resolve delay longer than the configured
// per-request deadline: the client gets a bounded 408 instead of a hung
// connection, and the next (undelayed) request works.
func TestRequestTimeout(t *testing.T) {
	inj := fault.New(1)
	inj.Arm(FaultResolve, fault.Spec{Delay: 300 * time.Millisecond, Times: 1})
	s := newTestServer(t, Config{
		Resolver:       incremental.Config{Scheme: core.CBS},
		MaxBatch:       1,
		QueueDepth:     64,
		Fault:          inj,
		RequestTimeout: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	profiles := testProfiles(t, 2)
	post := func(i int) int {
		raw, err := dataio.MarshalProfileJSON(profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/resolve", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(0); got != http.StatusRequestTimeout {
		t.Fatalf("delayed resolve status = %d, want 408", got)
	}
	// The batcher is still sleeping out the injected delay; give it time
	// to finish before the undelayed follow-up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := post(1); got == http.StatusOK {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("follow-up resolve status = %d, want 200", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
