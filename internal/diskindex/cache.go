package diskindex

import (
	"container/list"

	"metablocking/internal/obs"
	"metablocking/internal/store"
)

// pageCache is a byte-budgeted LRU over segment pages. It is owned by a
// single partition, which is itself single-writer, so no locking. Keys
// are (segment pointer, page index); compaction drops a whole segment's
// entries before closing its file.
type pageCache struct {
	budget  int
	used    int
	entries map[pageKey]*list.Element
	lru     *list.List // front = most recent; values are *pageEntry

	reads int64
	hits  int64

	ctrReads *obs.Counter
	ctrHits  *obs.Counter
}

type pageKey struct {
	seg  *store.Segment
	page int32
}

type pageEntry struct {
	key pageKey
	buf []byte
}

func newPageCache(budget int, reads, hits *obs.Counter) *pageCache {
	return &pageCache{
		budget:   budget,
		entries:  make(map[pageKey]*list.Element),
		lru:      list.New(),
		ctrReads: reads,
		ctrHits:  hits,
	}
}

// page returns the verified bytes of the given segment page, from cache
// or disk. The returned slice is owned by the cache: valid until the
// entry is evicted, which cannot happen before the caller's next page
// call — callers must finish with it (or copy) before requesting
// another page.
func (c *pageCache) page(seg *store.Segment, page int32) ([]byte, error) {
	key := pageKey{seg, page}
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.ctrHits.Inc()
		c.lru.MoveToFront(el)
		return el.Value.(*pageEntry).buf, nil
	}
	buf, err := seg.ReadPage(int(page), nil)
	if err != nil {
		return nil, err
	}
	c.reads++
	c.ctrReads.Inc()
	e := &pageEntry{key: key, buf: buf}
	c.entries[key] = c.lru.PushFront(e)
	c.used += len(buf)
	for c.used > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		old := el.Value.(*pageEntry)
		c.lru.Remove(el)
		delete(c.entries, old.key)
		c.used -= len(old.buf)
	}
	return buf, nil
}

// dropSegment evicts every cached page of seg; called before the
// segment file is closed during compaction.
func (c *pageCache) dropSegment(seg *store.Segment) {
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*pageEntry)
		if e.key.seg == seg {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.used -= len(e.buf)
		}
		el = next
	}
}
