package core

import (
	"math/rand"
	"testing"

	"metablocking/internal/entity"
)

// TestNodeTraversalAllocFree pins the hot-path allocation contract of the
// neighbor-aggregation inner loop (ScanCount + weighting, Algorithm 3):
// after one warm-up traversal grows the scratch, ForEachNode and
// ForEachEdge allocate nothing per pass, flat or compressed.
func TestNodeTraversalAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	c := randomDirtyBlocks(rng, 60, 50)
	for _, compressed := range []bool{false, true} {
		name := "flat"
		if compressed {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			g := NewGraph(c, CBS)
			if compressed {
				g.CompressIndex()
			}
			nodeSink := 0
			node := func(i entity.ID, neighbors []entity.ID, weights []float64) {
				nodeSink += len(neighbors)
			}
			edgeSink := 0
			edge := func(i, j entity.ID, w float64) { edgeSink++ }
			g.ForEachNode(node) // warm-up: grows cells/neighbors/weights scratch
			g.ForEachEdge(edge)
			if avg := testing.AllocsPerRun(5, func() { g.ForEachNode(node) }); avg != 0 {
				t.Errorf("ForEachNode allocated %.1f times per warm pass, want 0", avg)
			}
			if avg := testing.AllocsPerRun(5, func() { g.ForEachEdge(edge) }); avg != 0 {
				t.Errorf("ForEachEdge allocated %.1f times per warm pass, want 0", avg)
			}
			if nodeSink == 0 || edgeSink == 0 {
				t.Fatal("traversals visited nothing")
			}
		})
	}
}
