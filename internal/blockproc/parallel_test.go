package blockproc

import (
	"reflect"
	"runtime"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/datagen"
	"metablocking/internal/paperexample"
)

// TestBlockFilteringParallelMatchesSerial: the parallel Block Filtering
// must be bit-identical to the serial one for every worker count, task
// type, and both threshold modes.
func TestBlockFilteringParallelMatchesSerial(t *testing.T) {
	inputs := map[string]*block.Collection{
		"example": blocking.TokenBlocking{}.Build(paperexample.Collection()),
		"dirty":   blocking.TokenBlocking{}.Build(datagen.D1D(0.05).Collection),
		"clean":   blocking.TokenBlocking{}.Build(datagen.D1C(0.05).Collection),
	}
	filters := []BlockFiltering{
		{Ratio: 0.8},
		{Ratio: 0.5},
		{Ratio: 0.8, GlobalThreshold: 3},
	}
	for name, in := range inputs {
		for _, f := range filters {
			want := f.Apply(in)
			for _, w := range []int{2, 3, 7, runtime.GOMAXPROCS(0), -1} {
				pf := f
				pf.Workers = w
				got := pf.Apply(in)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s r=%.1f g=%d workers=%d: parallel filtering differs from serial (%d vs %d blocks)",
						name, f.Ratio, f.GlobalThreshold, w, got.Len(), want.Len())
				}
			}
		}
	}
}

// TestBlockFilteringParallelLeavesInputIntact: the parallel path must not
// mutate the input collection (it clones before sorting).
func TestBlockFilteringParallelLeavesInputIntact(t *testing.T) {
	in := blocking.TokenBlocking{}.Build(paperexample.Collection())
	snapshot := in.Clone()
	BlockFiltering{Ratio: 0.8, Workers: 4}.Apply(in)
	if !reflect.DeepEqual(in, snapshot) {
		t.Fatal("parallel Block Filtering mutated its input")
	}
}
