// Package par holds the small shared machinery of the parallel pipeline:
// worker-count resolution and deterministic range fan-out. Every parallel
// stage (blocking, filtering, Entity Index construction, graph traversal)
// partitions its input into one contiguous range per worker, so results can
// be merged back in worker order without any cross-worker coordination.
package par

import (
	"runtime"
	"sync"
)

// Resolve maps a Workers knob to a concrete worker count for an input of
// size n, using the convention of core.Config.Workers: 0 or 1 keeps the
// serial path, negative uses GOMAXPROCS, positive uses that many workers.
// The result is clamped to [1, n] (with a minimum of 1 for empty inputs).
func Resolve(workers, n int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Ranges splits [0, n) into one contiguous chunk per worker and runs
// fn(worker, lo, hi) concurrently. workers must already be resolved
// (≥ 1); workers == 1 runs fn inline with the full range. Trailing workers
// whose chunk is empty are not started, so fn may index per-worker result
// buckets with its worker argument directly.
func Ranges(workers, n int, fn func(worker, lo, hi int)) {
	if workers <= 1 || n == 0 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Do runs the given thunks concurrently and waits for all of them — the
// fork/join used for independent pipeline phases (e.g. sorting per-worker
// result buckets).
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
