package datagen

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/entity"
)

func small(seed int64) Config {
	return Config{
		Name:       "small",
		Seed:       seed,
		Size1:      200,
		Size2:      300,
		Duplicates: 150,
		Vocabulary: 2000,
		CoreTokens: 5,
		Source1: SourceConfig{
			AttributeNames: 4, AttributesPerProfile: 3,
			TokensPerProfile: 7, NoiseRate: 0.1, FillerRate: 0.7,
		},
		Source2: SourceConfig{
			AttributeNames: 6, AttributesPerProfile: 4,
			TokensPerProfile: 9, NoiseRate: 0.1, FillerRate: 0.7,
		},
	}
}

func TestGenerateSizes(t *testing.T) {
	d := Generate(small(1))
	c := d.Collection
	if c.Task != entity.CleanClean {
		t.Fatalf("Task = %v", c.Task)
	}
	if c.Split != 200 || c.Size() != 500 {
		t.Fatalf("sizes: split=%d total=%d", c.Split, c.Size())
	}
	if d.GroundTruth.Size() != 150 {
		t.Fatalf("|D(E)| = %d, want 150", d.GroundTruth.Size())
	}
}

func TestGroundTruthIsValid(t *testing.T) {
	d := Generate(small(2))
	if err := d.GroundTruth.Validate(d.Collection); err != nil {
		t.Fatal(err)
	}
	dirty := d.ToDirty("smallD")
	if err := dirty.GroundTruth.Validate(dirty.Collection); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(small(3)), Generate(small(3))
	if !reflect.DeepEqual(a.Collection.Profiles, b.Collection.Profiles) {
		t.Fatal("same seed produced different profiles")
	}
	if !reflect.DeepEqual(a.GroundTruth.Pairs(), b.GroundTruth.Pairs()) {
		t.Fatal("same seed produced different ground truth")
	}
	c := Generate(small(4))
	if reflect.DeepEqual(a.Collection.Profiles, c.Collection.Profiles) {
		t.Fatal("different seeds produced identical profiles")
	}
}

func TestDuplicatesShareTokens(t *testing.T) {
	// The whole premise of redundancy-positive blocking: duplicates must
	// usually share at least one token. Require ≥ 90% here (the paper's
	// datasets exceed 98% after purging, checked in TestPresetsShape).
	d := Generate(small(5))
	shared := 0
	for _, p := range d.GroundTruth.Pairs() {
		a := d.Collection.Profile(p.A).TokenSet()
		b := d.Collection.Profile(p.B).TokenSet()
		for tok := range a {
			if _, ok := b[tok]; ok {
				shared++
				break
			}
		}
	}
	if frac := float64(shared) / float64(d.GroundTruth.Size()); frac < 0.9 {
		t.Fatalf("only %.2f of duplicate pairs share a token", frac)
	}
}

func TestSchemaHeterogeneity(t *testing.T) {
	// The two sources must not share attribute names (schema-agnostic
	// methods are the point of the paper).
	d := Generate(small(6))
	c := d.Collection
	names1 := make(map[string]struct{})
	for i := 0; i < c.Split; i++ {
		for _, a := range c.Profiles[i].Attributes {
			names1[a.Name] = struct{}{}
		}
	}
	for i := c.Split; i < c.Size(); i++ {
		for _, a := range c.Profiles[i].Attributes {
			if _, ok := names1[a.Name]; ok {
				t.Fatalf("attribute name %q appears in both sources", a.Name)
			}
		}
	}
}

func TestToDirtyPreservesGroundTruth(t *testing.T) {
	d := Generate(small(7))
	dirty := d.ToDirty("d")
	if dirty.Collection.Task != entity.Dirty {
		t.Fatal("not dirty")
	}
	if !reflect.DeepEqual(d.GroundTruth.Pairs(), dirty.GroundTruth.Pairs()) {
		t.Fatal("ground truth changed")
	}
	if dirty.Collection.Size() != d.Collection.Size() {
		t.Fatal("profile count changed")
	}
}

// TestPresetsShape verifies, at reduced scale, the relative dataset
// characteristics the experiments rely on (DESIGN.md §5): near-perfect
// blocking recall, PQ ≪ 0.01, and the BPE ordering D2 > D3 > D1.
func TestPresetsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset shape check is slow")
	}
	const scale = 0.15
	bpe := make(map[string]float64)
	for _, d := range AllDatasets(scale) {
		blocks := blockproc.BlockPurging{}.Apply(blocking.TokenBlocking{}.Build(d.Collection))
		det := blocks.DetectedDuplicates(d.GroundTruth)
		pc := float64(det) / float64(d.GroundTruth.Size())
		if pc < 0.95 {
			t.Errorf("%s: PC = %.3f, want ≥ 0.95", d.Name, pc)
		}
		pq := float64(det) / float64(blocks.Comparisons())
		if pq > 0.02 {
			t.Errorf("%s: PQ = %.4f, want ≪ 0.01-ish", d.Name, pq)
		}
		bpe[d.Name] = blocks.BPE()
	}
	if !(bpe["D2C"] > bpe["D3C"] && bpe["D3C"] > bpe["D1C"]) {
		t.Errorf("clean BPE ordering broken: %v", bpe)
	}
	if !(bpe["D2D"] > bpe["D3D"] && bpe["D3D"] > bpe["D1D"]) {
		t.Errorf("dirty BPE ordering broken: %v", bpe)
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5) != 50 || scaled(100, 0) != 100 || scaled(1, 0.001) != 1 {
		t.Fatal("scaled() broken")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicates > source size")
		}
	}()
	Generate(Config{Name: "bad", Size1: 5, Size2: 10, Duplicates: 7, Vocabulary: 100, CoreTokens: 3})
}

// renderDataset serializes a dataset — every profile attribute-by-
// attribute plus the ground truth — to one byte string, so determinism is
// checked at full fidelity rather than through DeepEqual's tolerance for
// aliasing differences.
func renderDataset(d Dataset) []byte {
	var sb strings.Builder
	sb.WriteString(d.Name)
	fmt.Fprintf(&sb, "|%v|%d|%d\n", d.Collection.Task, d.Collection.Split, d.Collection.Size())
	for i := range d.Collection.Profiles {
		sb.WriteString(d.Collection.Profiles[i].String())
		sb.WriteByte('\n')
	}
	for _, p := range d.GroundTruth.Pairs() {
		fmt.Fprintf(&sb, "%d-%d\n", p.A, p.B)
	}
	return []byte(sb.String())
}

// TestSeedByteIdentical: generation is a pure function of the config —
// the same seed reproduces the dataset byte for byte (profiles, attribute
// order, ground truth), and different seeds do not.
func TestSeedByteIdentical(t *testing.T) {
	a := renderDataset(Generate(small(42)))
	b := renderDataset(Generate(small(42)))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different datasets")
	}
	if bytes.Equal(a, renderDataset(Generate(small(43)))) {
		t.Fatal("different seeds produced identical datasets")
	}
	// The presets — the fixtures experiments and benchmarks cite — are
	// deterministic end to end, including the dirty derivation.
	p1 := renderDataset(D1D(0.02))
	p2 := renderDataset(D1D(0.02))
	if !bytes.Equal(p1, p2) {
		t.Fatal("preset D1D(0.02) is not reproducible")
	}
}
