package incremental

import (
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
)

func entityProfile(value string) entity.Profile {
	var p entity.Profile
	p.Add("v", value)
	return p
}

// TestPeekExcludingReproducesResolve pins the resume-gather contract
// budget-aware streaming relies on: immediately after a profile is
// committed, PeekExcluding(profile, id) must return the exact candidate
// list its own Add produced — for every scheme and both pruning modes,
// including ARCS increments, Block Purging thresholds and the ECBS block
// count, all of which the exclusion arithmetic has to compensate.
func TestPeekExcludingReproducesResolve(t *testing.T) {
	ds := datagen.D1D(0.1)
	profiles := ds.Collection.Profiles[:400]
	configs := []Config{
		{Scheme: core.CBS, K: 5},
		{Scheme: core.JS, K: 5},
		{Scheme: core.ARCS, K: 5},
		{Scheme: core.ECBS, K: 5},
		{Scheme: core.JS},                         // weight pruning (above-mean)
		{Scheme: core.ECBS},                       // weight pruning with block-count term
		{Scheme: core.CBS, K: 5, MaxBlockSize: 7}, // purging boundary in play
	}
	for _, cfg := range configs {
		r := mustResolver(t, cfg)
		for i := range profiles {
			id, want := r.Add(profiles[i])
			got, err := r.PeekExcluding(profiles[i], id)
			if err != nil {
				t.Fatalf("%+v: PeekExcluding(%d): %v", cfg, id, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%+v: profile %d: resume gather diverged\n got %v\nwant %v", cfg, id, got, want)
			}
		}
	}
}

func TestPeekExcludingRejectsUnknownID(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.JS, K: 5})
	p := entityProfile("alpha beta")
	r.Add(p)
	if _, err := r.PeekExcluding(p, 5); err == nil {
		t.Fatal("out-of-range exclude accepted")
	}
	if _, err := r.PeekExcluding(p, -1); err == nil {
		t.Fatal("negative exclude accepted")
	}
}

func TestLastWeighed(t *testing.T) {
	r := mustResolver(t, Config{Scheme: core.CBS, K: 1})
	r.Add(entityProfile("alpha"))
	r.Add(entityProfile("alpha beta"))
	// Third arrival co-occurs with both predecessors but prunes to K=1:
	// LastWeighed reports the pre-prune neighborhood.
	_, cands := r.Add(entityProfile("alpha beta"))
	if len(cands) != 1 {
		t.Fatalf("candidates: %v", cands)
	}
	if got := r.LastWeighed(); got != 2 {
		t.Fatalf("LastWeighed = %d, want 2", got)
	}
}
