package blockproc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// genCollection derives a random Dirty block collection from fuzz bytes,
// so testing/quick drives structurally varied inputs.
func genCollection(data []byte) *block.Collection {
	if len(data) == 0 {
		data = []byte{1}
	}
	seed := int64(0)
	for _, b := range data {
		seed = seed*31 + int64(b)
	}
	rng := rand.New(rand.NewSource(seed))
	numEntities := 5 + rng.Intn(40)
	numBlocks := 1 + rng.Intn(30)
	return randomDirty(rng, numEntities, numBlocks)
}

// Property: Block Filtering never increases any profile's number of block
// assignments, never increases ‖B‖, and never invents new members.
func TestQuickFilteringShrinks(t *testing.T) {
	f := func(data []byte, ratioByte uint8) bool {
		c := genCollection(data)
		ratio := 0.05 + float64(ratioByte%90)/100
		out := BlockFiltering{Ratio: ratio}.Apply(c)
		if out.Comparisons() > c.Comparisons() {
			return false
		}
		in := block.NewEntityIndex(c)
		res := block.NewEntityIndex(out)
		for id := 0; id < c.NumEntities; id++ {
			if res.NumBlocks(entity.ID(id)) > in.NumBlocks(entity.ID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Comparison Propagation's output has no duplicate pairs and its
// size equals the number of distinct co-occurring pairs.
func TestQuickPropagationDistinct(t *testing.T) {
	f := func(data []byte) bool {
		c := genCollection(data)
		pairs := ComparisonPropagation{}.Apply(c)
		seen := make(map[entity.Pair]struct{}, len(pairs))
		for _, p := range pairs {
			if _, dup := seen[p]; dup {
				return false
			}
			seen[p] = struct{}{}
		}
		distinct := make(map[entity.Pair]struct{})
		c.ForEachComparison(func(_ int, a, b entity.ID) bool {
			distinct[entity.MakePair(a, b)] = struct{}{}
			return true
		})
		return len(seen) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Block Purging never increases |B| and the surviving blocks are
// a subset of the input.
func TestQuickPurgingSubset(t *testing.T) {
	f := func(data []byte, ratioByte uint8) bool {
		c := genCollection(data)
		ratio := 0.1 + float64(ratioByte%90)/100
		out := BlockPurging{MaxSizeRatio: ratio}.Apply(c)
		if out.Len() > c.Len() {
			return false
		}
		keys := make(map[string]int64)
		for i := range c.Blocks {
			keys[c.Blocks[i].Key] = c.Blocks[i].Comparisons()
		}
		for i := range out.Blocks {
			if _, ok := keys[out.Blocks[i].Key]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Iterative Blocking with an oracle never reports more matches
// than ground-truth pairs reachable through the blocks, and never executes
// more than ‖B‖ comparisons.
func TestQuickIterativeBounds(t *testing.T) {
	f := func(data []byte) bool {
		c := genCollection(data)
		var gtPairs []entity.Pair
		rng := rand.New(rand.NewSource(int64(len(data) + 1)))
		for i := 0; i < 5; i++ {
			a := entity.ID(rng.Intn(c.NumEntities))
			b := entity.ID(rng.Intn(c.NumEntities))
			if a != b {
				gtPairs = append(gtPairs, entity.MakePair(a, b))
			}
		}
		if len(gtPairs) == 0 {
			return true
		}
		gt := entity.NewGroundTruth(gtPairs)
		res := IterativeBlocking{Matcher: OracleMatcher{GT: gt}}.Run(c)
		return res.Comparisons <= c.Comparisons() && len(res.Matches) <= gt.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
