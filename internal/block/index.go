package block

import (
	"metablocking/internal/entity"
	"metablocking/internal/obs"
	"metablocking/internal/par"
	"metablocking/internal/postings"
)

// EntityIndex is the inverted index from entity IDs to the ascending list
// of block IDs that contain them (paper §2). It underlies Comparison
// Propagation (via the LeCoBI condition) and both edge-weighting
// implementations of meta-blocking.
//
// Every per-entity list is a view into one flat backing array, so building
// the index costs a constant number of allocations regardless of |E|. An
// index can optionally be Compressed into delta+varint posting lists
// afterwards; callers then read lists through AppendBlockList
// (decode-into-scratch) instead of the zero-copy BlockList.
type EntityIndex struct {
	lists       [][]int32
	flat        []int32
	packed      *postings.Packed // non-nil after Compress; lists/flat are released
	numEntities int
}

// NewEntityIndex builds the index for the collection's current block order
// on a single core. Block IDs are positional: block i of c.Blocks has ID i.
// Because blocks are visited in ascending ID order, every block list comes
// out ascending.
func NewEntityIndex(c *Collection) *EntityIndex {
	return NewEntityIndexParallel(c, 1)
}

// NewEntityIndexParallel builds the same index with the given number of
// workers (0 or 1 = serial, negative = GOMAXPROCS). The build runs a
// parallel count pass (per-worker assignment counts over disjoint block
// ranges) and a parallel fill pass: each worker writes its blocks' members
// into precomputed per-worker offsets of the flat backing array, so the
// result is bit-identical to the serial build — including the ascending
// order within every entity's list — without any locking.
func NewEntityIndexParallel(c *Collection, workers int) *EntityIndex {
	return NewEntityIndexObserved(c, workers, nil)
}

// NewEntityIndexObserved is NewEntityIndexParallel with an observability
// handle: the count and fill loops poll o for cancellation once per
// stride of blocks and the build aborts between passes once o's context
// is canceled, returning a partially built index the caller must discard
// after checking o. A nil o disables the polls.
func NewEntityIndexObserved(c *Collection, workers int, o *obs.Observer) *EntityIndex {
	idx := &EntityIndex{
		lists:       make([][]int32, c.NumEntities),
		numEntities: c.NumEntities,
	}
	numBlocks := len(c.Blocks)
	workers = par.Resolve(workers, numBlocks)
	if workers <= 1 {
		idx.buildSerial(c, o)
		return idx
	}

	// Count pass: per-worker assignment counts over disjoint block ranges.
	perWorker := make([][]int32, workers)
	par.Ranges(workers, numBlocks, func(w, lo, hi int) {
		counts := make([]int32, c.NumEntities)
		for i := lo; i < hi; i++ {
			if (i-lo)&obs.StrideMask == obs.StrideMask && o.Canceled() {
				break
			}
			b := &c.Blocks[i]
			for _, id := range b.E1 {
				counts[id]++
			}
			for _, id := range b.E2 {
				counts[id]++
			}
		}
		perWorker[w] = counts
	})
	if o.Canceled() {
		return idx
	}

	// Per-entity totals (parallel over entity ranges), then one serial
	// prefix sum to place every entity's segment in the flat array.
	totals := make([]int32, c.NumEntities)
	par.Ranges(workers, c.NumEntities, func(_, lo, hi int) {
		for _, counts := range perWorker {
			if counts == nil {
				continue
			}
			for id := lo; id < hi; id++ {
				totals[id] += counts[id]
			}
		}
	})
	offsets := make([]int64, c.NumEntities+1)
	for id, n := range totals {
		offsets[id+1] = offsets[id] + int64(n)
	}
	idx.flat = make([]int32, offsets[c.NumEntities])

	// Turn each worker's counts into its starting cursor per entity:
	// offsets[id] plus the contributions of all lower-ranked workers.
	// Lower-ranked workers own lower block IDs, so filling at these
	// cursors reproduces the serial (ascending block ID) order exactly.
	par.Ranges(workers, c.NumEntities, func(_, lo, hi int) {
		for id := lo; id < hi; id++ {
			cursor := int32(offsets[id])
			for _, counts := range perWorker {
				if counts == nil {
					continue
				}
				n := counts[id]
				counts[id] = cursor
				cursor += n
			}
		}
	})

	// Fill pass: every worker writes disjoint flat segments.
	par.Ranges(workers, numBlocks, func(w, lo, hi int) {
		cursors := perWorker[w]
		for i := lo; i < hi; i++ {
			if (i-lo)&obs.StrideMask == obs.StrideMask && o.Canceled() {
				break
			}
			b := &c.Blocks[i]
			for _, id := range b.E1 {
				idx.flat[cursors[id]] = int32(i)
				cursors[id]++
			}
			for _, id := range b.E2 {
				idx.flat[cursors[id]] = int32(i)
				cursors[id]++
			}
		}
	})

	// Slice the flat array into per-entity views.
	par.Ranges(workers, c.NumEntities, func(_, lo, hi int) {
		for id := lo; id < hi; id++ {
			if totals[id] > 0 {
				idx.lists[id] = idx.flat[offsets[id]:offsets[id+1]:offsets[id+1]]
			}
		}
	})
	return idx
}

// buildSerial is the single-core build: one count pass, one prefix sum,
// one fill pass into the flat backing array.
func (x *EntityIndex) buildSerial(c *Collection, o *obs.Observer) {
	counts := make([]int32, c.NumEntities)
	for i := range c.Blocks {
		if i&obs.StrideMask == obs.StrideMask && o.Canceled() {
			return
		}
		b := &c.Blocks[i]
		for _, id := range b.E1 {
			counts[id]++
		}
		for _, id := range b.E2 {
			counts[id]++
		}
	}
	offsets := make([]int64, c.NumEntities+1)
	for id, n := range counts {
		offsets[id+1] = offsets[id] + int64(n)
	}
	x.flat = make([]int32, offsets[c.NumEntities])
	cursors := counts // reuse as per-entity write cursors
	for id := range cursors {
		cursors[id] = int32(offsets[id])
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, id := range b.E1 {
			x.flat[cursors[id]] = int32(i)
			cursors[id]++
		}
		for _, id := range b.E2 {
			x.flat[cursors[id]] = int32(i)
			cursors[id]++
		}
	}
	for id := 0; id < c.NumEntities; id++ {
		if offsets[id+1] > offsets[id] {
			x.lists[id] = x.flat[offsets[id]:offsets[id+1]:offsets[id+1]]
		}
	}
}

// NumEntities returns the size of the ID space the index covers.
func (x *EntityIndex) NumEntities() int { return x.numEntities }

// Compress re-encodes every block list as a delta+varint (or, for dense
// lists, bitmap) posting list packed into one byte arena, and releases the
// flat storage. The compressed index serves NumBlocks in O(1) and lists
// through AppendBlockList; the zero-copy BlockList view is no longer
// available. Not safe concurrently with readers; compress before sharing.
func (x *EntityIndex) Compress() {
	if x.packed != nil {
		return
	}
	x.packed = postings.Pack(x.lists)
	x.lists, x.flat = nil, nil
}

// Compressed reports whether Compress has been applied.
func (x *EntityIndex) Compressed() bool { return x.packed != nil }

// SizeBytes returns the memory footprint of the index's list storage.
func (x *EntityIndex) SizeBytes() int {
	if x.packed != nil {
		return x.packed.SizeBytes()
	}
	return 4*len(x.flat) + 24*len(x.lists)
}

// BlockList returns the ascending block IDs containing the given entity.
// The returned slice is shared; callers must not modify it. Only available
// on flat indexes — compressed callers use AppendBlockList.
func (x *EntityIndex) BlockList(id entity.ID) []int32 {
	if x.packed != nil {
		panic("block: BlockList on a compressed EntityIndex; use AppendBlockList")
	}
	return x.lists[id]
}

// AppendBlockList appends the entity's ascending block IDs to dst,
// decoding from the compressed form when one is present. With a reused
// scratch buffer the compressed decode allocates nothing in steady state.
func (x *EntityIndex) AppendBlockList(dst []int32, id entity.ID) []int32 {
	if x.packed != nil {
		return x.packed.AppendList(dst, int(id))
	}
	return append(dst, x.lists[id]...)
}

// NumBlocks returns |Bi|, the number of blocks containing the entity.
func (x *EntityIndex) NumBlocks(id entity.ID) int {
	if x.packed != nil {
		return x.packed.Count(int(id))
	}
	return len(x.lists[id])
}

// CommonBlocks returns |Bij|, the number of blocks shared by the two
// entities, by intersecting their sorted block lists (the core of the
// paper's Algorithm 2) with a galloping merge for skewed list pairs.
func (x *EntityIndex) CommonBlocks(a, b entity.ID) int {
	return postings.IntersectCount(x.BlockList(a), x.BlockList(b))
}

// LeastCommonBlock returns the smallest block ID shared by the two
// entities, or -1 if they share none.
func (x *EntityIndex) LeastCommonBlock(a, b entity.ID) int32 {
	return postings.First(x.BlockList(a), x.BlockList(b))
}

// IsNonRedundant implements the Least Common Block Index (LeCoBI)
// condition: a comparison (a, b) inside block blockID is non-redundant iff
// blockID equals the least common block ID of the two entities.
func (x *EntityIndex) IsNonRedundant(blockID int32, a, b entity.ID) bool {
	return x.LeastCommonBlock(a, b) == blockID
}
