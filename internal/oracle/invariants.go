package oracle

import (
	"fmt"

	"metablocking/internal/block"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// CheckWeights verifies the paper's §4.2 equivalence theorem on one
// collection and scheme: Optimized Edge Weighting (Alg. 3), Original Edge
// Weighting (Alg. 2) and the oracle's explicit intersection must agree on
// the exact edge set and on bit-identical weights — with the Entity Index
// stored flat and compressed (delta+varint/bitmap posting lists).
func CheckWeights(c *block.Collection, scheme core.Scheme) error {
	want := NewGraph(c, scheme).Weights
	for name, traverse := range map[string]func(func(i, j entity.ID, w float64)){
		"optimized (Alg. 3)":   core.NewGraph(c, scheme).ForEachEdge,
		"original (Alg. 2)":    withOriginal(core.NewGraph(c, scheme)).ForEachEdgeOriginal,
		"optimized compressed": withCompressed(core.NewGraph(c, scheme)).ForEachEdge,
		"original compressed":  withCompressed(withOriginal(core.NewGraph(c, scheme))).ForEachEdgeOriginal,
	} {
		got := make(map[entity.Pair]float64, len(want))
		dup := false
		traverse(func(i, j entity.ID, w float64) {
			p := entity.MakePair(i, j)
			if _, seen := got[p]; seen {
				dup = true
			}
			got[p] = w
		})
		if dup {
			return fmt.Errorf("%s/%v: an edge was emitted twice", name, scheme)
		}
		if len(got) != len(want) {
			return fmt.Errorf("%s/%v: %d edges, oracle has %d", name, scheme, len(got), len(want))
		}
		for p, w := range want {
			gw, ok := got[p]
			if !ok {
				return fmt.Errorf("%s/%v: edge %v missing", name, scheme, p)
			}
			if gw != w {
				return fmt.Errorf("%s/%v: edge %v weight %v ≠ oracle %v (diff %g)",
					name, scheme, p, gw, w, gw-w)
			}
		}
	}
	return nil
}

func withOriginal(g *core.Graph) *core.Graph {
	g.OriginalWeighting = true
	return g
}

func withCompressed(g *core.Graph) *core.Graph {
	g.CompressIndex()
	return g
}

// CheckPruning verifies that every production implementation of one
// scheme × algorithm cell — serial optimized, serial with Original Edge
// Weighting, the parallel path at each given worker count, and the serial
// and parallel paths over a compressed (posting-list) Entity Index —
// retains exactly the oracle's comparison multiset.
func CheckPruning(c *block.Collection, scheme core.Scheme, alg core.Algorithm, workers ...int) error {
	want := Prune(c, scheme, alg)
	label := func(kind string) string { return fmt.Sprintf("%v/%v %s", scheme, alg, kind) }

	serial := SortPairs(core.NewGraph(c, scheme).Prune(alg))
	if err := samePairs(label("serial"), serial, want); err != nil {
		return err
	}
	orig := SortPairs(withOriginal(core.NewGraph(c, scheme)).Prune(alg))
	if err := samePairs(label("original-weighting"), orig, want); err != nil {
		return err
	}
	comp := SortPairs(withCompressed(core.NewGraph(c, scheme)).Prune(alg))
	if err := samePairs(label("compressed"), comp, want); err != nil {
		return err
	}
	for _, w := range workers {
		par := core.NewGraph(c, scheme).PruneParallel(alg, w)
		if err := samePairs(label(fmt.Sprintf("parallel workers=%d", w)), par, want); err != nil {
			return err
		}
		cpar := withCompressed(core.NewGraph(c, scheme)).PruneParallel(alg, w)
		if err := samePairs(label(fmt.Sprintf("compressed parallel workers=%d", w)), cpar, want); err != nil {
			return err
		}
	}
	// Redundancy-freedom: the paper's §5.1 variants emit each pair at
	// most once.
	if alg == core.RedefinedCNP || alg == core.ReciprocalCNP ||
		alg == core.RedefinedWNP || alg == core.ReciprocalWNP {
		for i := 1; i < len(want); i++ {
			if want[i] == want[i-1] {
				return fmt.Errorf("%v/%v: pair %v retained twice", scheme, alg, want[i])
			}
		}
	}
	return nil
}

// CheckFamilies verifies the structural theorems tying the node-centric
// families together (paper §5.1–§5.2), using only oracle outputs:
// Redefined = distinct(Original) and Reciprocal ⊆ Redefined, for both the
// cardinality (CNP) and weight (WNP) families.
func CheckFamilies(c *block.Collection, scheme core.Scheme) error {
	g := NewGraph(c, scheme)
	for _, fam := range []struct{ orig, redef, recip core.Algorithm }{
		{core.CNP, core.RedefinedCNP, core.ReciprocalCNP},
		{core.WNP, core.RedefinedWNP, core.ReciprocalWNP},
	} {
		orig := distinct(g.Prune(fam.orig))
		redef := g.Prune(fam.redef)
		if err := samePairs(fmt.Sprintf("%v/%v vs distinct original", scheme, fam.redef), redef, orig); err != nil {
			return err
		}
		set := make(map[entity.Pair]bool, len(redef))
		for _, p := range redef {
			set[p] = true
		}
		for _, p := range g.Prune(fam.recip) {
			if !set[p] {
				return fmt.Errorf("%v/%v: reciprocal pair %v not in redefined", scheme, fam.recip, p)
			}
		}
	}
	return nil
}

// CheckFiltering verifies the production Block Filtering — serial and at
// each given worker count — against the brute-force reference: identical
// block order, keys and members.
func CheckFiltering(c *block.Collection, ratio float64, workers ...int) error {
	want := FilterBlocks(c, ratio)
	for _, w := range append([]int{1}, workers...) {
		got := blockproc.BlockFiltering{Ratio: ratio, Workers: w}.Apply(c)
		if got.Len() != want.Len() {
			return fmt.Errorf("filter r=%.2f workers=%d: %d blocks, oracle has %d",
				ratio, w, got.Len(), want.Len())
		}
		for i := range want.Blocks {
			gb, wb := &got.Blocks[i], &want.Blocks[i]
			if gb.Key != wb.Key || !sameIDs(gb.E1, wb.E1) || !sameIDs(gb.E2, wb.E2) {
				return fmt.Errorf("filter r=%.2f workers=%d: block %d is %q%v|%v, oracle has %q%v|%v",
					ratio, w, i, gb.Key, gb.E1, gb.E2, wb.Key, wb.E1, wb.E2)
			}
		}
	}
	return nil
}

// CheckAll sweeps the full scheme × algorithm matrix on one collection:
// weight equality for every scheme, comparison-set equality for every
// cell (at the given worker counts), and the family theorems.
func CheckAll(c *block.Collection, workers ...int) error {
	for _, scheme := range core.AllSchemes {
		if err := CheckWeights(c, scheme); err != nil {
			return err
		}
		if err := CheckFamilies(c, scheme); err != nil {
			return err
		}
		for _, alg := range core.AllAlgorithms {
			if err := CheckPruning(c, scheme, alg, workers...); err != nil {
				return err
			}
		}
	}
	return nil
}

// samePairs compares two canonically sorted comparison multisets
// (treating nil and empty alike).
func samePairs(label string, got, want []entity.Pair) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d pairs, oracle has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: pair %d is %v, oracle has %v", label, i, got[i], want[i])
		}
	}
	return nil
}

func sameIDs(a, b []entity.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// distinct returns the sorted distinct pairs of a sorted multiset.
func distinct(pairs []entity.Pair) []entity.Pair {
	out := make([]entity.Pair, 0, len(pairs))
	for i, p := range pairs {
		if i == 0 || p != pairs[i-1] {
			out = append(out, p)
		}
	}
	return out
}
