// Package datagen synthesizes heterogeneous, noisy entity collections with
// known ground truth. It substitutes for the paper's real-world benchmarks
// (D1: DBLP–Google Scholar, D2: IMDB–DBpedia, D3: Wikipedia infoboxes),
// which are not redistributable here; see DESIGN.md §5 for the
// substitution rationale.
//
// The generator models real-world objects as bags of core tokens drawn
// from a Zipf-distributed vocabulary (so Token Blocking produces the
// skewed block-size distribution the paper's methods exploit) and renders
// every object through per-source "schemata": attribute-name pools,
// verbosity levels and token noise. Two renderings of the same object are
// a ground-truth duplicate pair.
package datagen

import (
	"fmt"
	"math/rand"

	"metablocking/internal/entity"
)

// SourceConfig describes one source collection's schema and noise profile.
type SourceConfig struct {
	// AttributeNames is the source's schema vocabulary size (|N|).
	AttributeNames int
	// AttributesPerProfile is the mean number of name–value pairs per
	// profile.
	AttributesPerProfile int
	// TokensPerProfile is the mean number of value tokens per profile
	// (controls verbosity, and hence BPE, like the paper's D2 DBpedia
	// side).
	TokensPerProfile int
	// NoiseRate is the probability that a rendered token is corrupted
	// (replaced by a typo variant) and that a core token is dropped.
	NoiseRate float64
	// FillerRate is the portion of tokens drawn from the global filler
	// vocabulary instead of the object's core tokens — the source-specific
	// boilerplate that creates superfluous co-occurrences.
	FillerRate float64
}

// Config describes a full Clean-Clean dataset: two sources over a shared
// universe of objects with a known overlap.
type Config struct {
	// Name labels the dataset in reports (e.g. "D1C").
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// Size1 and Size2 are |E1| and |E2|.
	Size1, Size2 int
	// Duplicates is |D(E)|: the number of objects rendered in both
	// sources.
	Duplicates int
	// Vocabulary is the size of the core-token vocabulary; tokens are
	// drawn from it with a Zipf distribution so block sizes are skewed.
	Vocabulary int
	// ZipfS is the Zipf exponent (>1); larger means more skew. Zero
	// defaults to 1.3.
	ZipfS float64
	// CoreTokens is the number of core tokens per object drawn from the
	// Zipf vocabulary (popular, shared vocabulary that creates the large
	// blocks).
	CoreTokens int
	// RareTokens is the number of identifying tokens per object drawn
	// uniformly from a large rare vocabulary (names, identifiers). They
	// mostly land in tiny blocks, so duplicates keep co-occurring after
	// Block Filtering — the property the paper's datasets exhibit
	// (PC loss < 0.5% at r=0.8, §6.2). Zero defaults to 3.
	RareTokens int
	// RareVocabulary is the rare-token vocabulary size; zero defaults to
	// 4×(Size1+Size2−Duplicates), giving occasional cross-object
	// collisions.
	RareVocabulary int
	// Source1 and Source2 configure the two renderings.
	Source1, Source2 SourceConfig
}

// Dataset bundles a generated collection with its ground truth.
type Dataset struct {
	Name        string
	Collection  *entity.Collection
	GroundTruth *entity.GroundTruth
}

// Generate builds the Clean-Clean dataset described by the config.
func Generate(cfg Config) Dataset {
	if cfg.Duplicates > cfg.Size1 || cfg.Duplicates > cfg.Size2 {
		panic(fmt.Sprintf("datagen: %s: duplicates %d exceed a source size (%d, %d)",
			cfg.Name, cfg.Duplicates, cfg.Size1, cfg.Size2))
	}
	s := cfg.ZipfS
	if s <= 1 {
		s = 1.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(cfg.Vocabulary-1))

	// The object universe: duplicates appear in both sources, the rest in
	// exactly one.
	numObjects := cfg.Size1 + cfg.Size2 - cfg.Duplicates
	rare := cfg.RareTokens
	if rare == 0 {
		rare = 3
	}
	rareVocab := cfg.RareVocabulary
	if rareVocab == 0 {
		rareVocab = 4 * numObjects
	}
	objects := make([][]string, numObjects)
	for o := range objects {
		// Rare identifying tokens first: under a tight token budget the
		// renderer keeps the head of the list, and the identifying
		// tokens are the ones real-world records preserve.
		core := make([]string, 0, rare+cfg.CoreTokens)
		for t := 0; t < rare; t++ {
			core = append(core, rareToken(rng.Intn(rareVocab)))
		}
		for t := 0; t < cfg.CoreTokens; t++ {
			core = append(core, coreToken(zipf.Uint64()))
		}
		objects[o] = core
	}

	// Object o in [0, Duplicates) is shared; [Duplicates, Size1) is only
	// in E1; [Size1, numObjects) only in E2.
	e1 := make([]entity.Profile, 0, cfg.Size1)
	for o := 0; o < cfg.Size1; o++ {
		e1 = append(e1, renderProfile(rng, objects[o], &cfg.Source1, "s1"))
	}
	e2 := make([]entity.Profile, 0, cfg.Size2)
	e2Objects := make([]int, 0, cfg.Size2)
	for o := 0; o < cfg.Duplicates; o++ {
		e2Objects = append(e2Objects, o)
	}
	for o := cfg.Size1; o < numObjects; o++ {
		e2Objects = append(e2Objects, o)
	}
	// Shuffle E2 so duplicate rows are not clustered at the front.
	rng.Shuffle(len(e2Objects), func(i, j int) {
		e2Objects[i], e2Objects[j] = e2Objects[j], e2Objects[i]
	})
	for _, o := range e2Objects {
		e2 = append(e2, renderProfile(rng, objects[o], &cfg.Source2, "s2"))
	}

	coll := entity.NewCleanClean(e1, e2)
	var pairs []entity.Pair
	for i2, o := range e2Objects {
		if o < cfg.Duplicates {
			pairs = append(pairs, entity.MakePair(entity.ID(o), entity.ID(cfg.Size1+i2)))
		}
	}
	return Dataset{Name: cfg.Name, Collection: coll, GroundTruth: entity.NewGroundTruth(pairs)}
}

// ToDirty derives the Dirty ER dataset by merging the two clean sources,
// exactly as the paper derives DxD from DxC (§6.1). IDs and ground truth
// are preserved.
func (d Dataset) ToDirty(name string) Dataset {
	return Dataset{
		Name:        name,
		Collection:  d.Collection.ToDirty(),
		GroundTruth: d.GroundTruth,
	}
}

// renderProfile turns an object's core tokens into a profile under the
// source's schema: it distributes a noisy selection of core tokens plus
// filler tokens across attribute values with source-specific names.
func renderProfile(rng *rand.Rand, core []string, src *SourceConfig, prefix string) entity.Profile {
	numAttrs := jitter(rng, src.AttributesPerProfile)
	if numAttrs < 1 {
		numAttrs = 1
	}
	budget := jitter(rng, src.TokensPerProfile)
	if budget < len(core)/2 {
		budget = len(core)/2 + 1
	}

	// Select tokens: core tokens (each dropped with NoiseRate, corrupted
	// with NoiseRate) first, then filler until the budget is met.
	tokens := make([]string, 0, budget)
	for _, t := range core {
		if len(tokens) >= budget {
			break
		}
		if rng.Float64() < src.NoiseRate {
			continue // dropped token
		}
		if rng.Float64() < src.NoiseRate {
			t = corrupt(rng, t)
		}
		tokens = append(tokens, t)
	}
	for len(tokens) < budget {
		if rng.Float64() < src.FillerRate {
			tokens = append(tokens, fillerToken(prefix, rng.Intn(fillerVocabulary)))
		} else {
			// Verbose sources repeat popular descriptive vocabulary,
			// creating large, noisy blocks.
			tokens = append(tokens, descToken(rng.Intn(descVocabulary)))
		}
	}

	var p entity.Profile
	per := (len(tokens) + numAttrs - 1) / numAttrs
	for a := 0; a < numAttrs && a*per < len(tokens); a++ {
		end := (a + 1) * per
		if end > len(tokens) {
			end = len(tokens)
		}
		name := fmt.Sprintf("%s_attr%d", prefix, rng.Intn(src.AttributeNames))
		p.Add(name, join(tokens[a*per:end]))
	}
	return p
}

const (
	fillerVocabulary = 2000
	descVocabulary   = 300
)

func coreToken(v uint64) string               { return fmt.Sprintf("tok%d", v) }
func rareToken(v int) string                  { return fmt.Sprintf("id%d", v) }
func fillerToken(prefix string, v int) string { return fmt.Sprintf("%sf%d", prefix, v) }
func descToken(v int) string                  { return fmt.Sprintf("desc%d", v) }

// corrupt produces a typo variant of a token that no longer blocks with
// the original (Token Blocking is exact-match on tokens). The variant must
// remain a single alphanumeric token so the tokenizer does not split it.
func corrupt(rng *rand.Rand, t string) string {
	return fmt.Sprintf("%sq%d", t, rng.Intn(10))
}

// jitter returns a value uniformly in [mean/2, 3·mean/2].
func jitter(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return mean
	}
	return mean/2 + rng.Intn(mean+1)
}

func join(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	buf := make([]byte, 0, n)
	for i, t := range tokens {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t...)
	}
	return string(buf)
}
