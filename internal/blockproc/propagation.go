package blockproc

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// ComparisonPropagation discards all redundant comparisons from a block
// collection without any impact on recall (paper §2, ref [21]). At scale it
// works indirectly: blocks are enumerated in their processing order, the
// Entity Index is built, and a comparison inside block b is executed only
// if b's ID is the least common block ID of the two profiles (the LeCoBI
// condition).
type ComparisonPropagation struct{}

// Apply returns the distinct comparisons of the collection, in block
// processing order.
func (ComparisonPropagation) Apply(c *block.Collection) []entity.Pair {
	idx := block.NewEntityIndex(c)
	var out []entity.Pair
	c.ForEachComparison(func(blockID int, a, b entity.ID) bool {
		if idx.IsNonRedundant(int32(blockID), a, b) {
			out = append(out, entity.MakePair(a, b))
		}
		return true
	})
	return out
}

// ApplyDirect removes redundant comparisons with a central hash of executed
// comparisons — the small-scale strategy the paper mentions (§2). It is the
// test oracle for the LeCoBI-based implementation.
func (ComparisonPropagation) ApplyDirect(c *block.Collection) []entity.Pair {
	seen := make(map[entity.Pair]struct{})
	var out []entity.Pair
	c.ForEachComparison(func(_ int, a, b entity.ID) bool {
		p := entity.MakePair(a, b)
		if _, ok := seen[p]; !ok {
			seen[p] = struct{}{}
			out = append(out, p)
		}
		return true
	})
	return out
}

// DistinctComparisons returns the number of non-redundant comparisons in
// the collection without materializing them.
func DistinctComparisons(c *block.Collection) int64 {
	idx := block.NewEntityIndex(c)
	var n int64
	c.ForEachComparison(func(blockID int, a, b entity.ID) bool {
		if idx.IsNonRedundant(int32(blockID), a, b) {
			n++
		}
		return true
	})
	return n
}

// GraphFreeMetaBlocking is the blocking-graph-free workflow of Figure 7(b):
// Block Filtering (with an aggressive ratio) followed by Comparison
// Propagation. It operates on the level of individual profiles instead of
// profile pairs, trading precision for a minimal overhead time (§6.4).
//
// The paper's tuned ratios are 0.25 for efficiency-intensive applications
// and 0.55 for effectiveness-intensive ones.
type GraphFreeMetaBlocking struct {
	// Ratio is the Block Filtering ratio r.
	Ratio float64
}

// Apply returns the restructured comparisons.
func (g GraphFreeMetaBlocking) Apply(c *block.Collection) []entity.Pair {
	filtered := BlockFiltering{Ratio: g.Ratio}.Apply(c)
	return ComparisonPropagation{}.Apply(filtered)
}
