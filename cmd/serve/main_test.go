package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"metablocking/internal/core"
)

// TestServeLifecycle boots the service on a random port, resolves two
// profiles over HTTP, checks the operational endpoints, then cancels the
// context and expects a clean drain.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var logBuf bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:        "127.0.0.1:0",
			scheme:      "js",
			k:           10,
			maxBlock:    1000,
			batchWindow: time.Millisecond,
			batchMax:    16,
			queueDepth:  64,
			retryAfter:  time.Second,
			metrics:     true,
		}, &logBuf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 {
		t.Fatalf("healthz = %d %q", code, body)
	}
	post := func(payload string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/resolve", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("resolve = %d %s", resp.StatusCode, body)
		}
		return string(body)
	}
	first := post(`{"attributes":{"name":["jack miller"],"job":["car seller"]}}`)
	if !strings.Contains(first, `"id":0`) {
		t.Fatalf("first resolve = %s", first)
	}
	second := post(`{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}`)
	if !strings.Contains(second, `"candidates":[{"id":0,`) {
		t.Fatalf("second resolve found no candidate: %s", second)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "server.accepted") {
		t.Fatalf("metrics = %d %q", code, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never drained")
	}
	log := logBuf.String()
	for _, want := range []string{"listening on", "draining", "drained, 2 profiles resolved", "server.accepted"} {
		if !strings.Contains(log, want) {
			t.Fatalf("log missing %q:\n%s", want, log)
		}
	}
}

func TestParseSchemeServe(t *testing.T) {
	for _, s := range []string{"arcs", "cbs", "ecbs", "js"} {
		if _, err := parseScheme(s); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := parseScheme("ejs"); !errors.Is(err, core.ErrUnsupportedScheme) {
		t.Errorf("ejs error = %v, want the shared sentinel", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(context.Background(), options{scheme: "nope"}, io.Discard, nil); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if err := run(context.Background(), options{scheme: "js", addr: "256.0.0.1:bad"}, io.Discard, nil); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run(context.Background(), options{
		scheme: "js", addr: "127.0.0.1:0", snapshot: "/nonexistent/snap",
	}, io.Discard, nil); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestServeFaultFlag boots the service with an armed resolve fault and
// checks the flag wiring end to end: the armed request fails with 500,
// the next succeeds, and bad specs are rejected at startup.
func TestServeFaultFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:        "127.0.0.1:0",
			scheme:      "js",
			k:           10,
			maxBlock:    1000,
			batchWindow: time.Millisecond,
			batchMax:    1,
			queueDepth:  64,
			retryAfter:  time.Second,
			faults:      faultFlags{"server.resolve:error,times=1"},
			faultSeed:   7,
		}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	post := func() int {
		t.Helper()
		resp, err := http.Post(base+"/v1/resolve", "application/json",
			strings.NewReader(`{"attributes":{"name":["jack miller"]}}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != 500 {
		t.Fatalf("armed resolve = %d, want 500", code)
	}
	if code := post(); code != 200 {
		t.Fatalf("resolve after fault budget = %d, want 200", code)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("drain returned %v", err)
	}

	if err := run(context.Background(), options{
		scheme: "js", addr: "127.0.0.1:0", faults: faultFlags{"server.resolve:bogus"},
	}, io.Discard, nil); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestServeSharded boots the service with -shards 4 and checks the
// sharded wiring end to end: resolves work identically, the admin status
// endpoint reports the partition layout, and a malformed request gets the
// structured error envelope.
func TestServeSharded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, options{
			addr:        "127.0.0.1:0",
			scheme:      "js",
			k:           10,
			maxBlock:    1000,
			shards:      4,
			shardQueue:  2,
			batchWindow: time.Millisecond,
			batchMax:    16,
			queueDepth:  64,
			retryAfter:  time.Second,
		}, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	post := func(payload string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/resolve", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := post(`{"attributes":{"name":["jack miller"],"job":["car seller"]}}`); code != 200 || !strings.Contains(body, `"id":0`) {
		t.Fatalf("first resolve = %d %s", code, body)
	}
	if code, body := post(`{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}`); code != 200 || !strings.Contains(body, `"candidates":[{"id":0,`) {
		t.Fatalf("second resolve = %d %s", code, body)
	}
	if code, body := post(`not json`); code != 422 || !strings.Contains(body, `"code":"invalid_profile"`) {
		t.Fatalf("garbage resolve = %d %s, want 422 with envelope", code, body)
	}

	resp, err := http.Get(base + "/v1/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	status, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`"shards":4`, `"shard_queue_depth":2`, `"profiles":2`} {
		if !strings.Contains(string(status), want) {
			t.Fatalf("status missing %s: %s", want, status)
		}
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("drain returned %v", err)
	}
}
