package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamRun(t *testing.T) {
	in := strings.NewReader(`{"attributes":{"name":["jack miller"],"job":["car seller"]}}
{"attributes":{"name":["erick green"]}}

{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}
`)
	var out bytes.Buffer
	if err := run(in, &out, options{k: 10, scheme: "js", maxBlock: 1000}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("emitted %d candidate rows, want 1: %q", len(lines), out.String())
	}
	// Profile 2 (jack q miller / car vendor) must pair with profile 0 at
	// JS = |{jack,miller,car}| / |{jack,miller,car,seller,q,vendor}| = 0.5.
	if !strings.HasPrefix(lines[0], "2,0,0.5") {
		t.Fatalf("candidate row = %q", lines[0])
	}
}

func TestStreamRejectsGarbage(t *testing.T) {
	if err := run(strings.NewReader("not json\n"), &bytes.Buffer{}, options{k: 3, scheme: "cbs"}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParseSchemeStream(t *testing.T) {
	for _, s := range []string{"arcs", "cbs", "ecbs", "js"} {
		if _, err := parseScheme(s); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	if _, err := parseScheme("ejs"); err == nil {
		t.Error("ejs must be rejected (needs global degrees)")
	}
}
