package oracle

import (
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// Prune materializes the blocking graph and applies the pruning algorithm
// the set-based way: full sorts over explicit edge lists, maps for the
// retain-once semantics. The returned comparison multiset is canonically
// sorted; the original node-centric algorithms (CNP, WNP) may list a pair
// twice — exactly the redundant comparisons the Redefined variants
// eliminate.
func Prune(c *block.Collection, scheme core.Scheme, a core.Algorithm) []entity.Pair {
	return NewGraph(c, scheme).Prune(a)
}

// Prune applies the pruning algorithm to an already materialized graph.
func (g *Graph) Prune(a core.Algorithm) []entity.Pair {
	switch a {
	case core.CEP:
		return g.cep()
	case core.WEP:
		return g.wep()
	case core.CNP:
		return g.cnp()
	case core.WNP:
		return g.wnp()
	case core.RedefinedCNP:
		return g.cnpVariant(false)
	case core.ReciprocalCNP:
		return g.cnpVariant(true)
	case core.RedefinedWNP:
		return g.wnpVariant(false)
	case core.ReciprocalWNP:
		return g.wnpVariant(true)
	default:
		panic("oracle: unknown algorithm")
	}
}

// CardinalityEdgeThreshold restates CEP's K = ⌊Σ|b|/2⌋.
func CardinalityEdgeThreshold(c *block.Collection) int {
	return int(assignments(c) / 2)
}

// CardinalityNodeThreshold restates CNP's k = max(1, ⌊Σ|b|/|E|⌋−1).
func CardinalityNodeThreshold(c *block.Collection) int {
	k := int(assignments(c))/c.NumEntities - 1
	if k < 1 {
		k = 1
	}
	return k
}

// cep sorts all edges under the canonical rank order and keeps the first
// K.
func (g *Graph) cep() []entity.Pair {
	k := CardinalityEdgeThreshold(g.c)
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return rankBefore(edges[i], edges[j]) })
	if k > len(edges) {
		k = len(edges)
	}
	out := make([]entity.Pair, 0, k)
	for _, e := range edges[:k] {
		out = append(out, e.Pair)
	}
	return SortPairs(out)
}

// wep keeps every edge at or above the exact global mean weight.
func (g *Graph) wep() []entity.Pair {
	edges := g.Edges()
	if len(edges) == 0 {
		return nil
	}
	ws := make([]float64, len(edges))
	for i, e := range edges {
		ws[i] = e.Weight
	}
	mean := exactMean(ws)
	var out []entity.Pair
	for _, e := range edges {
		if e.Weight >= mean {
			out = append(out, e.Pair)
		}
	}
	return SortPairs(out)
}

// incident returns node i's incident edges sorted under the canonical
// rank order (heaviest first).
func (g *Graph) incident(i entity.ID) []Edge {
	ns := g.Neighbors[i]
	out := make([]Edge, 0, len(ns))
	for _, j := range ns {
		p := entity.MakePair(i, j)
		out = append(out, Edge{Pair: p, Weight: g.Weights[p]})
	}
	sort.Slice(out, func(a, b int) bool { return rankBefore(out[a], out[b]) })
	return out
}

// nodes returns every node with at least one neighbor, ascending.
func (g *Graph) nodes() []entity.ID {
	out := make([]entity.ID, 0, len(g.Neighbors))
	for id, ns := range g.Neighbors {
		if len(ns) > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// cnp keeps, per node, the top-k incident edges; every retained directed
// edge is one comparison, so reciprocally ranked pairs appear twice.
func (g *Graph) cnp() []entity.Pair {
	k := CardinalityNodeThreshold(g.c)
	var out []entity.Pair
	for _, i := range g.nodes() {
		ranked := g.incident(i)
		if k < len(ranked) {
			ranked = ranked[:k]
		}
		for _, e := range ranked {
			out = append(out, e.Pair)
		}
	}
	return SortPairs(out)
}

// wnp keeps, per node, the incident edges at or above the neighborhood's
// exact mean, one comparison per retained directed edge.
func (g *Graph) wnp() []entity.Pair {
	var out []entity.Pair
	for _, i := range g.nodes() {
		ranked := g.incident(i)
		ws := make([]float64, len(ranked))
		for n, e := range ranked {
			ws[n] = e.Weight
		}
		mean := exactMean(ws)
		for _, e := range ranked {
			if e.Weight >= mean {
				out = append(out, e.Pair)
			}
		}
	}
	return SortPairs(out)
}

// cnpVariant implements Redefined CNP (reciprocal=false: a pair survives
// when either endpoint ranks it in its top-k, retained once) and
// Reciprocal CNP (reciprocal=true: both endpoints must rank it).
func (g *Graph) cnpVariant(reciprocal bool) []entity.Pair {
	k := CardinalityNodeThreshold(g.c)
	votes := make(map[entity.Pair]int)
	for _, i := range g.nodes() {
		ranked := g.incident(i)
		if k < len(ranked) {
			ranked = ranked[:k]
		}
		for _, e := range ranked {
			votes[e.Pair]++
		}
	}
	return collectVotes(votes, reciprocal)
}

// wnpVariant implements Redefined WNP (either neighborhood's mean
// threshold admits the edge, retained once) and Reciprocal WNP (both
// must).
func (g *Graph) wnpVariant(reciprocal bool) []entity.Pair {
	thresholds := make(map[entity.ID]float64)
	for _, i := range g.nodes() {
		ranked := g.incident(i)
		ws := make([]float64, len(ranked))
		for n, e := range ranked {
			ws[n] = e.Weight
		}
		thresholds[i] = exactMean(ws)
	}
	votes := make(map[entity.Pair]int)
	for p, w := range g.Weights {
		if w >= thresholds[p.A] {
			votes[p]++
		}
		if w >= thresholds[p.B] {
			votes[p]++
		}
	}
	return collectVotes(votes, reciprocal)
}

// collectVotes keeps pairs with two endpoint votes (reciprocal) or at
// least one (redefined), each exactly once.
func collectVotes(votes map[entity.Pair]int, reciprocal bool) []entity.Pair {
	var out []entity.Pair
	for p, n := range votes {
		if reciprocal && n < 2 {
			continue
		}
		out = append(out, p)
	}
	return SortPairs(out)
}
