// Package block defines block collections — the output of blocking methods
// and the input of every block-processing and meta-blocking technique —
// together with the Entity Index used to traverse the implicit blocking
// graph (paper §2, §3, §4.2).
package block

import (
	"sort"

	"metablocking/internal/entity"
	"metablocking/internal/par"
)

// Block groups co-occurring profiles. For Dirty ER all members live in E1
// and every unordered pair is a comparison; for Clean-Clean ER only pairs
// crossing E1×E2 are comparisons.
type Block struct {
	// Key is the blocking key that produced the block (e.g. a token).
	Key string
	// E1 holds the member IDs from the (single or first) collection,
	// sorted ascending.
	E1 []entity.ID
	// E2 holds the member IDs from the second collection for Clean-Clean
	// ER, sorted ascending. Nil for Dirty ER.
	E2 []entity.ID
}

// Size returns |b|, the number of profiles in the block.
func (b *Block) Size() int { return len(b.E1) + len(b.E2) }

// Comparisons returns ‖b‖, the number of comparisons the block entails.
func (b *Block) Comparisons() int64 {
	if b.E2 != nil {
		return int64(len(b.E1)) * int64(len(b.E2))
	}
	n := int64(len(b.E1))
	return n * (n - 1) / 2
}

// Collection is a set of blocks extracted from an entity collection.
// The order of Blocks is the processing order used for block enumeration
// (block IDs are positional indices into Blocks).
type Collection struct {
	Task entity.Task
	// NumEntities is |E| of the underlying entity collection (the full ID
	// space, both sources for Clean-Clean ER).
	NumEntities int
	// Split is the boundary of the two source collections for Clean-Clean
	// ER (IDs < Split belong to E1); it equals NumEntities for Dirty ER.
	Split  int
	Blocks []Block
}

// InFirst reports whether the profile belongs to the first source
// collection.
func (c *Collection) InFirst(id entity.ID) bool { return int(id) < c.Split }

// Len returns |B|, the number of blocks.
func (c *Collection) Len() int { return len(c.Blocks) }

// Comparisons returns ‖B‖ = Σ ‖b‖, the total comparison cardinality.
func (c *Collection) Comparisons() int64 {
	var total int64
	for i := range c.Blocks {
		total += c.Blocks[i].Comparisons()
	}
	return total
}

// Assignments returns Σ|b|, the total number of block assignments.
func (c *Collection) Assignments() int64 {
	var total int64
	for i := range c.Blocks {
		total += int64(c.Blocks[i].Size())
	}
	return total
}

// BPE returns the average number of blocks per entity, Σ|b| / |E|.
func (c *Collection) BPE() float64 {
	if c.NumEntities == 0 {
		return 0
	}
	return float64(c.Assignments()) / float64(c.NumEntities)
}

// SortByCardinality orders the blocks from the smallest to the largest
// number of comparisons, the processing order Block Filtering and Iterative
// Blocking assume (paper §4.1, §6.4). Ties break on the block key so the
// order is deterministic.
func (c *Collection) SortByCardinality() {
	sort.Slice(c.Blocks, func(i, j int) bool {
		ci, cj := c.Blocks[i].Comparisons(), c.Blocks[j].Comparisons()
		if ci != cj {
			return ci < cj
		}
		return c.Blocks[i].Key < c.Blocks[j].Key
	})
}

// SortByCardinalityWorkers is SortByCardinality sharded across workers
// (0 or 1 = serial, negative = GOMAXPROCS): the cardinalities are
// precomputed in parallel, each worker sorts a permutation run over its
// block range, the runs merge pairwise, and the final permutation is
// applied in parallel. (cardinality, key) is a total order — block keys
// are distinct within a collection — so the result is identical to the
// serial sort.
func (c *Collection) SortByCardinalityWorkers(workers int) {
	n := len(c.Blocks)
	workers = par.Resolve(workers, n)
	if workers <= 1 {
		c.SortByCardinality()
		return
	}
	comps := make([]int64, n)
	par.Ranges(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			comps[i] = c.Blocks[i].Comparisons()
		}
	})
	less := func(i, j int32) bool {
		if comps[i] != comps[j] {
			return comps[i] < comps[j]
		}
		return c.Blocks[i].Key < c.Blocks[j].Key
	}

	perm := make([]int32, n)
	bounds := make([][2]int, workers)
	par.Ranges(workers, n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			perm[i] = int32(i)
		}
		run := perm[lo:hi]
		sort.Slice(run, func(a, b int) bool { return less(run[a], run[b]) })
		bounds[w] = [2]int{lo, hi}
	})
	// Ranges may start fewer chunks than workers (ceil-sized chunks); the
	// unstarted trailing entries stay [0,0) and are dropped.
	runs := bounds[:0]
	for _, r := range bounds {
		if r[0] < r[1] {
			runs = append(runs, r)
		}
	}

	// Merge sorted runs pairwise into a ping-pong buffer until one remains.
	cur, tmp := perm, make([]int32, n)
	for len(runs) > 1 {
		next := make([][2]int, 0, (len(runs)+1)/2)
		var thunks []func()
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			next = append(next, [2]int{a[0], b[1]})
			thunks = append(thunks, func() {
				mergeRuns(tmp[a[0]:b[1]], cur[a[0]:a[1]], cur[b[0]:b[1]], less)
			})
		}
		if len(runs)%2 == 1 {
			last := runs[len(runs)-1]
			next = append(next, last)
			thunks = append(thunks, func() {
				copy(tmp[last[0]:last[1]], cur[last[0]:last[1]])
			})
		}
		par.Do(thunks...)
		cur, tmp = tmp, cur
		runs = next
	}

	blocks := make([]Block, n)
	par.Ranges(workers, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			blocks[i] = c.Blocks[cur[i]]
		}
	})
	c.Blocks = blocks
}

// mergeRuns merges the sorted runs a and b into dst (len(dst) =
// len(a)+len(b)), taking from a on ties so equal elements keep their
// original relative order.
func mergeRuns(dst, a, b []int32, less func(i, j int32) bool) {
	k := 0
	for len(a) > 0 && len(b) > 0 {
		if less(b[0], a[0]) {
			dst[k] = b[0]
			b = b[1:]
		} else {
			dst[k] = a[0]
			a = a[1:]
		}
		k++
	}
	copy(dst[k:], a)
	copy(dst[k+len(a):], b)
}

// Clone returns a deep copy of the collection. Blocking-graph algorithms
// never mutate their input, but restructuring methods (Purging, Filtering)
// produce fresh collections; Clone supports tests and ablations that need
// to compare before/after.
func (c *Collection) Clone() *Collection { return c.CloneWorkers(1) }

// CloneWorkers deep-copies the collection with the block copies sharded
// across workers (0 or 1 = serial, negative = GOMAXPROCS).
func (c *Collection) CloneWorkers(workers int) *Collection {
	out := &Collection{Task: c.Task, NumEntities: c.NumEntities, Split: c.Split, Blocks: make([]Block, len(c.Blocks))}
	workers = par.Resolve(workers, len(c.Blocks))
	par.Ranges(workers, len(c.Blocks), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b := &c.Blocks[i]
			// cloneIDs rather than append(nil, ...): an empty E2 must stay
			// non-nil, because E2's nil-ness decides whether Comparisons()
			// counts the block as bilateral or unilateral.
			out.Blocks[i] = Block{Key: b.Key, E1: cloneIDs(b.E1), E2: cloneIDs(b.E2)}
		}
	})
	return out
}

func cloneIDs(ids []entity.ID) []entity.ID {
	if ids == nil {
		return nil
	}
	out := make([]entity.ID, len(ids))
	copy(out, ids)
	return out
}

// ForEachComparison invokes fn for every comparison of every block,
// including redundant ones (the same pair repeated across blocks). The
// blockID passed to fn is the positional index of the block. fn returning
// false stops the iteration early.
func (c *Collection) ForEachComparison(fn func(blockID int, a, b entity.ID) bool) {
	for k := range c.Blocks {
		blk := &c.Blocks[k]
		if blk.E2 != nil {
			for _, a := range blk.E1 {
				for _, b := range blk.E2 {
					if !fn(k, a, b) {
						return
					}
				}
			}
			continue
		}
		ids := blk.E1
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if !fn(k, ids[i], ids[j]) {
					return
				}
			}
		}
	}
}

// DetectedDuplicates returns |D(B)|: the number of ground-truth pairs that
// co-occur in at least one block. It builds a temporary Entity Index and
// probes it per ground-truth pair, which is far cheaper than enumerating
// ‖B‖ comparisons.
func (c *Collection) DetectedDuplicates(gt *entity.GroundTruth) int {
	idx := NewEntityIndex(c)
	detected := 0
	for _, p := range gt.Pairs() {
		if idx.LeastCommonBlock(p.A, p.B) >= 0 {
			detected++
		}
	}
	return detected
}
