// Out-of-core serving mode: with Config.DiskDir set the index behind the
// façade is the internal/diskindex LSM store — memtable + delta segments
// + background compaction — served through the shard coordinator at any
// shard count (including 1). Answers are bit-identical to the in-memory
// configurations; what changes is that /v1/admin/snapshot becomes a
// checkpoint (seal the memtables, commit manifests) instead of a file
// write, and a restart recovers the newest checkpoint every shard can
// prove instead of starting empty.
package server

import (
	"fmt"

	"metablocking/internal/incremental"
	"metablocking/internal/shard"
	"metablocking/internal/store"
	"metablocking/internal/diskindex"
)

// diskMode reports whether the server serves the out-of-core index.
func (s *Server) diskMode() bool { return s.cfg.DiskDir != "" }

// newDiskIndex recovers cfg.DiskDir and serves it: the directory's
// newest consistent checkpoint becomes the starting state, new arrivals
// land in memtables, and the coordinator checkpoints whenever a shard's
// memtable exceeds cfg.MemtableBudget. A directory holding data under a
// different resolver configuration is refused — serving it under other
// weights would silently change answers.
func newDiskIndex(cfg Config) (incremental.Index, error) {
	layout, err := store.RecoverDiskDir(cfg.DiskDir, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if layout.Checkpoint > 0 && layout.Cfg != cfg.Resolver {
		layout.Close()
		return nil, fmt.Errorf("server: disk dir %s holds checkpoint %d under config %+v, serving config is %+v",
			cfg.DiskDir, layout.Checkpoint, layout.Cfg, cfg.Resolver)
	}
	return diskGroup(cfg, layout, nil)
}

// diskGroup builds the shard group over disk-backed partitions, either
// adopting the layout's recovered segments (snap nil) or replaying a
// snapshot into fresh memtables over the same directory lineage (snap
// non-nil — the reload path; the layout's recovered segments are
// dropped, its file numbering and checkpoint high-water mark kept).
func diskGroup(cfg Config, layout *store.DiskLayout, snap *incremental.Snapshot) (*shard.Group, error) {
	rcfg := cfg.Resolver
	if snap != nil {
		rcfg = snap.Config
		layout.Close() // reload replaces the contents; keep only the lineage
	}
	parts := make([]*diskindex.Partition, layout.Shards)
	for k, state := range layout.Shard {
		st := state
		if snap != nil {
			st = &store.DiskShardState{Dir: state.Dir, NextSeq: state.NextSeq, NextGen: state.NextGen,
				NextWal: state.NextWal, WALs: state.WALs}
		}
		p, err := diskindex.Open(diskindex.Options{
			Config:       rcfg,
			Shards:       layout.Shards,
			Index:        k,
			State:        st,
			Checkpoint:   layout.Checkpoint,
			Size:         layout.Size,
			CacheBytes:   cfg.DiskCacheBytes,
			CompactAfter: cfg.DiskCompactAfter,
			Metrics:      cfg.Metrics,
			WAL:          !cfg.WALDisabled,
			// Reload replays a snapshot against the pre-reload lineage;
			// logging those commits before the post-reload checkpoint
			// exists would poison recovery, so the log opens at the first
			// seal instead.
			WALDefer: snap != nil,
			Fault:    cfg.Fault,
		})
		if err != nil {
			layout.Close()
			return nil, err
		}
		parts[k] = p
	}
	scfg := shardConfig(cfg)
	scfg.Resolver = rcfg
	scfg.Shards = layout.Shards
	scfg.Checkpoint = layout.MaxCheckpoint
	scfg.Backends = func(k int) (shard.Backend, error) { return parts[k], nil }
	if snap != nil {
		return shard.FromSnapshot(snap, scfg)
	}
	// Replay the write-ahead tail before the block-count scan: replayed
	// commits land in the memtables like any other arrival, so the
	// restored coordinator sees them in its size and block counts and
	// resumes ID assignment after them.
	size, err := diskindex.ReplayWAL(parts, layout)
	if err != nil {
		for _, p := range parts {
			p.Close()
		}
		return nil, err
	}
	blockSize := make(map[string]int)
	for _, p := range parts {
		p.AddBlockCounts(blockSize)
	}
	return shard.Restored(scfg, size, blockSize)
}

// diskReload is Reload for the out-of-core index: the directory's next
// lineage adopts the snapshot's contents. The old index must be fully
// closed BEFORE the directory is re-scanned — its actors may still be
// compacting — so unlike the in-memory reload this swap briefly leaves
// no serving index; admitted requests wait on s.mu either way. If the
// rebuilt group cannot be produced, the directory (which a failed
// rebuild never modified) is reopened as it was; the reload reports its
// error either way.
func (s *Server) diskReload(snap *incremental.Snapshot) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resolver.Close()
	g, err := s.rebuildDisk(snap)
	if err != nil {
		if fb, ferr := newDiskIndex(s.cfg); ferr == nil {
			s.resolver = fb
		} else {
			// Last resort: never serve a nil index. An empty in-memory
			// resolver keeps the process answering (and /readyz honest
			// about size 0) while the operator repairs the directory.
			s.resolver, _ = incremental.NewResolver(s.cfg.Resolver)
		}
		return 0, err
	}
	s.resolver = g
	n := g.Size()
	s.breaker.reset()
	s.generation.Add(1) // outstanding resume cursors die with the old index
	s.metrics.Counter(CtrReloads).Inc()
	s.metrics.Gauge(GaugeProfiles).Set(int64(n))
	return n, nil
}

// rebuildDisk replays snap over the directory's next lineage and
// checkpoints it durable. A checkpoint failure (e.g. disk full) keeps
// the group — its in-memory answers are correct — and is surfaced as a
// metric, not a failed reload; the next checkpoint retries the same id.
func (s *Server) rebuildDisk(snap *incremental.Snapshot) (*shard.Group, error) {
	layout, err := store.RecoverDiskDir(s.cfg.DiskDir, s.cfg.Shards)
	if err != nil {
		return nil, err
	}
	g, err := diskGroup(s.cfg, layout, snap)
	if err != nil {
		return nil, err
	}
	if err := g.Checkpoint(); err != nil {
		s.metrics.Text(TextLastError).Set(err.Error())
	}
	return g, nil
}

// Checkpoint seals every shard's memtable and commits manifests under
// the next checkpoint id — the disk-mode durability point behind
// /v1/admin/snapshot. Returns the profile count made durable. A no-op
// error for in-memory configurations.
func (s *Server) Checkpoint() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.resolver.(*shard.Group)
	if !ok {
		return 0, fmt.Errorf("server: checkpoint: not serving a disk-backed index")
	}
	if err := g.Checkpoint(); err != nil {
		return 0, err
	}
	// A checkpoint reshapes the on-disk postings the gather path serves
	// from; cursors cut before it cannot prove their frontier is still
	// exact, so the generation advances and they are refused.
	s.generation.Add(1)
	s.metrics.Counter(CtrSnapshots).Inc()
	return g.Size(), nil
}
