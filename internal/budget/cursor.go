// The resumption cursor: a signed, self-contained token that lets a
// client continue a budget-exhausted stream exactly where it stopped.
//
// The cursor carries the resume position in the ranked candidate stream —
// the weight frontier and the last emitted (weight, ID) pair, which pin a
// point in the strict total order (weight descending, ID ascending) the
// stream emits in — plus the snapshot generation it was cut against and a
// hash of the resolved profile. It is stateless: the server keeps nothing
// per stream. A resume request re-runs the read-only gather (excluding
// the profile's own committed entry), skips strictly past the cursor
// position, and streams the remainder.
//
// Integrity and invalidation:
//
//   - The token is HMAC-SHA256 signed with a per-process random key, so
//     clients cannot forge or tamper with positions, and a restarted
//     server deterministically refuses every old cursor (the key is
//     gone) — the crash-recovery contract chaos phase 7 pins.
//   - The generation number is compared against the server's current
//     snapshot generation, which advances on every reload and
//     checkpoint; a cursor cut against a superseded index is refused
//     rather than resumed against shifted weights.
//   - The profile hash binds the cursor to the profile it was issued
//     for: the resume gather's self-exclusion arithmetic assumes the
//     re-sent profile derives the same block keys as the committed one.
//
// Every refusal is ErrCursorInvalid, which the serving layer maps to the
// 410 cursor_invalid envelope.
package budget

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"metablocking/internal/entity"
)

// ErrCursorInvalid reports a resumption cursor the server refuses: bad
// signature, malformed payload, superseded generation, or a profile that
// does not match the one the cursor was issued for.
var ErrCursorInvalid = fmt.Errorf("budget: invalid resumption cursor")

// Cursor is the resume position of a budget-exhausted stream.
type Cursor struct {
	// Generation is the snapshot generation the stream ran against;
	// reload and checkpoint advance it, invalidating the cursor.
	Generation uint64 `json:"gen"`
	// ID is the entity ID the stream's resolve assigned — excluded from
	// the resume gather, which runs after the profile was committed.
	ID entity.ID `json:"id"`
	// Profile is the ProfileHash of the resolved profile.
	Profile uint64 `json:"profile"`
	// Emitted is the cumulative number of comparisons emitted across the
	// original stream and every resume so far.
	Emitted int `json:"emitted"`
	// LastWeight and LastID are the last emitted candidate — the resume
	// point: emission continues strictly after (LastWeight, LastID) in
	// the weight-descending, ID-ascending order.
	LastWeight float64   `json:"last_weight"`
	LastID     entity.ID `json:"last_id"`
	// Frontier is the weight of the first unemitted candidate at
	// exhaustion time, echoed for observability.
	Frontier float64 `json:"frontier"`
}

// Signer signs and verifies cursors with HMAC-SHA256.
type Signer struct {
	key []byte
}

// NewSigner returns a signer with a fresh random key: cursors it signs
// die with the process, which is exactly the invalidation restart
// semantics call for.
func NewSigner() (*Signer, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("budget: cursor key: %w", err)
	}
	return &Signer{key: key}, nil
}

// NewSignerFromKey returns a signer with a fixed key, for tests that
// need to forge or replay tokens deterministically.
func NewSignerFromKey(key []byte) *Signer {
	return &Signer{key: append([]byte(nil), key...)}
}

// Sign encodes the cursor as base64url(payload).base64url(mac).
func (s *Signer) Sign(c Cursor) string {
	payload, err := json.Marshal(c)
	if err != nil {
		// Cursor is a struct of scalars; Marshal cannot fail.
		panic(err)
	}
	enc := base64.RawURLEncoding.EncodeToString(payload)
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(enc))
	return enc + "." + base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}

// Verify checks the token's signature and decodes the cursor. Any
// failure is ErrCursorInvalid — the caller never learns which part was
// wrong, and neither does a token-guessing client.
func (s *Signer) Verify(token string) (Cursor, error) {
	var c Cursor
	enc, sig, ok := strings.Cut(token, ".")
	if !ok {
		return c, ErrCursorInvalid
	}
	gotMAC, err := base64.RawURLEncoding.DecodeString(sig)
	if err != nil {
		return c, ErrCursorInvalid
	}
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(enc))
	if !hmac.Equal(gotMAC, mac.Sum(nil)) {
		return c, ErrCursorInvalid
	}
	payload, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return c, ErrCursorInvalid
	}
	if err := json.Unmarshal(payload, &c); err != nil {
		return c, ErrCursorInvalid
	}
	return c, nil
}

// ProfileHash fingerprints a profile's content (attribute names and
// values, length-delimited, in order) for cursor binding. It ignores the
// ID field: the original resolve hashes the profile before an ID is
// assigned, the resume after.
func ProfileHash(p entity.Profile) uint64 {
	h := fnv.New64a()
	var lenBuf [8]byte
	writeField := func(sv string) {
		n := len(sv)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write([]byte(sv))
	}
	for _, a := range p.Attributes {
		writeField(a.Name)
		writeField(a.Value)
	}
	return h.Sum64()
}
