// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic benchmark datasets: Table 1 (block
// collections before/after Block Filtering), Table 2 (dataset
// characteristics), Figure 10 (filtering-ratio sweep), Table 3 (existing
// pruning schemes before/after Block Filtering), Table 4 (Redefined and
// Reciprocal pruning), Table 5 (Optimized Edge Weighting) and Table 6
// (baselines: Graph-free Meta-blocking and Iterative Blocking).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/eval"
	"metablocking/internal/matching"
	"metablocking/internal/obs"
)

// FilterRatio is the Block Filtering ratio the paper tunes for
// pre-processing (§6.2).
const FilterRatio = 0.80

// Suite prepares the six datasets once and runs experiments against them.
type Suite struct {
	// Scale multiplies dataset sizes; 1.0 is the default laptop scale.
	Scale float64
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
	// Workers parallelizes dataset preparation (Token Blocking and Block
	// Filtering): 0 = serial, negative = GOMAXPROCS. The prepared blocks
	// are identical for any value.
	Workers int
	// Metrics, when non-nil, aggregates the pipeline counters of every
	// meta-blocking run the suite performs (cmd/experiments -metrics).
	Metrics *obs.Metrics

	prepared []*Prepared
}

// Prepared bundles one dataset with its derived block collections.
type Prepared struct {
	Dataset datagen.Dataset
	// Original is the Token Blocking output after Block Purging — the
	// "original block collection" of Table 1(a).
	Original *block.Collection
	// Filtered is Original restructured by Block Filtering with r=0.80 —
	// Table 1(b).
	Filtered *block.Collection
	// BlockingTime is OTime(B): extracting Original from the entities.
	BlockingTime time.Duration
	// FilteringTime is OTime of the Block Filtering step alone.
	FilteringTime time.Duration

	matchCost time.Duration // measured per-comparison matching cost
}

// obsHandle returns an observability handle reporting into the suite's
// registry, or nil (a no-op handle) when no registry is attached.
func (s *Suite) obsHandle() *obs.Observer {
	if s.Metrics == nil {
		return nil
	}
	return obs.New(context.Background(), obs.WithMetrics(s.Metrics))
}

// NewSuite builds a suite at the given scale.
func NewSuite(scale float64, out io.Writer) *Suite {
	if out == nil {
		out = io.Discard
	}
	return &Suite{Scale: scale, Out: out}
}

// Datasets prepares (once) and returns the six datasets with their block
// collections, in the paper's order D1C, D2C, D3C, D1D, D2D, D3D.
func (s *Suite) Datasets() []*Prepared {
	if s.prepared != nil {
		return s.prepared
	}
	for _, ds := range datagen.AllDatasets(s.Scale) {
		p := &Prepared{Dataset: ds}

		start := time.Now()
		blocks := blocking.TokenBlocking{Workers: s.Workers}.Build(ds.Collection)
		blocks = blockproc.BlockPurging{}.Apply(blocks)
		p.BlockingTime = time.Since(start)
		p.Original = blocks

		start = time.Now()
		p.Filtered = blockproc.BlockFiltering{Ratio: FilterRatio, Workers: s.Workers}.Apply(blocks)
		p.FilteringTime = time.Since(start)

		p.measureMatchCost()
		s.prepared = append(s.prepared, p)
	}
	return s.prepared
}

// measureMatchCost samples the Jaccard matcher over random co-occurring
// pairs to estimate the per-comparison matching cost, which extrapolates
// RTime for collections too large to resolve exhaustively (the paper does
// the same for D3, Table 2).
func (p *Prepared) measureMatchCost() {
	const samples = 20000
	m := matching.NewJaccardMatcher(p.Dataset.Collection, 0.5)
	rng := rand.New(rand.NewSource(1))
	n := p.Dataset.Collection.Size()
	pairs := make([]entity.Pair, samples)
	for i := range pairs {
		a := entity.ID(rng.Intn(n))
		b := entity.ID(rng.Intn(n))
		if a == b {
			b = entity.ID((int(b) + 1) % n)
		}
		pairs[i] = entity.MakePair(a, b)
	}
	start := time.Now()
	var sink float64
	for _, pr := range pairs {
		sink += m.Similarity(pr.A, pr.B)
	}
	_ = sink
	p.matchCost = time.Since(start) / samples
}

// ResolutionTime extrapolates RTime for executing the given number of
// comparisons on top of the overhead.
func (p *Prepared) ResolutionTime(comparisons int64, overhead time.Duration) time.Duration {
	return overhead + time.Duration(comparisons)*p.matchCost
}

// EvaluateBlockCollection measures a block collection of this dataset.
func (p *Prepared) EvaluateBlockCollection(c *block.Collection, baseline int64) eval.Report {
	r := eval.EvaluateBlocks(c, p.Dataset.GroundTruth, baseline)
	return r
}

// printf writes to the suite's output.
func (s *Suite) printf(format string, args ...any) {
	fmt.Fprintf(s.Out, format, args...)
}

// RunAll executes every experiment in the paper's order.
func (s *Suite) RunAll() {
	s.Table2()
	s.Table1()
	s.Figure10()
	s.Table3()
	s.Table5()
	s.Table4()
	s.Table6()
}

// --- formatting helpers ---

// sci renders a count in compact scientific-ish notation like the paper
// (e.g. 1.92e6).
func sci(v int64) string {
	f := float64(v)
	switch {
	case v == 0:
		return "0"
	case f < 1e4:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprintf("%.2e", f)
	}
}

// dur renders a duration rounded for table display.
func dur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
