package store

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func TestCollectionRoundTrip(t *testing.T) {
	want := paperexample.Collection()
	var buf bytes.Buffer
	if err := WriteCollection(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != want.Task || got.Split != want.Split {
		t.Fatalf("metadata lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Profiles, want.Profiles) {
		t.Fatal("profiles differ after round trip")
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	want := blocking.TokenBlocking{}.Build(paperexample.Collection())
	var buf bytes.Buffer
	if err := WriteBlocks(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlocks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("blocks differ after round trip")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	want := []entity.Pair{{A: 1, B: 2}, {A: 3, B: 9}}
	var buf bytes.Buffer
	if err := WritePairs(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairs(&buf, []entity.Pair{{A: 1, B: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlocks(&buf); err == nil {
		t.Fatal("pairs artifact accepted as blocks")
	}
}

func TestCorruptInputRejected(t *testing.T) {
	if _, err := ReadBlocks(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBlocks(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBlocksFileHelpers(t *testing.T) {
	want := blocking.TokenBlocking{}.Build(paperexample.Collection())
	path := filepath.Join(t.TempDir(), "blocks.bin")
	if err := SaveBlocksFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBlocksFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file round trip differs")
	}
	if _, err := LoadBlocksFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
