package metablocking

// The differential oracle harness: every scheme × algorithm × task ×
// workers combination of the production pipeline is cross-checked against
// the naive reference implementation in internal/oracle. The oracle is
// anchored to the paper's worked example by its own tests; here it anchors
// the optimized code paths — ScanCount weighting, bounded heaps, Shewchuk
// thresholds, sharded parallel pruning — to the set-based definitions.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"reflect"

	"metablocking/internal/datagen"
	"metablocking/internal/incremental"
	"metablocking/internal/oracle"
	"metablocking/internal/shard"
)

// diffCollections returns the adversarial random block collections the
// matrix runs on: Dirty and Clean-Clean, skewed Zipf memberships, with
// empty and singleton blocks mixed in.
func diffCollections() map[string]*Blocks {
	out := make(map[string]*Blocks)
	rng := rand.New(rand.NewSource(42))
	for i, cfg := range []oracle.GenConfig{
		{Entities: 30, Blocks: 25, MaxBlockSize: 4, EmptyBlocks: 2, SingletonBlocks: 3},
		{Entities: 60, Blocks: 50, MaxBlockSize: 6, ZipfS: 1.2},
		{Entities: 30, Split: 12, Blocks: 25, MaxBlockSize: 4, EmptyBlocks: 2, SingletonBlocks: 3},
		{Entities: 60, Split: 30, Blocks: 50, MaxBlockSize: 6, ZipfS: 1.2},
	} {
		name := "dirty"
		if cfg.Split > 0 {
			name = "clean"
		}
		out[name+string(rune('A'+i))] = oracle.Random(rng, cfg)
	}
	return out
}

// TestOracleDifferentialMatrix sweeps the full 5 schemes × 8 algorithms
// matrix on random Dirty and Clean-Clean collections: bit-identical
// weights between Algorithm 2, Algorithm 3 and the oracle's explicit
// intersection; exact comparison-multiset equality for serial, original-
// weighting and parallel pruning at 1 and 4 workers; and the Redefined /
// Reciprocal family theorems.
func TestOracleDifferentialMatrix(t *testing.T) {
	for name, c := range diffCollections() {
		t.Run(name, func(t *testing.T) {
			if err := oracle.CheckAll(c, 1, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBlockFilteringMatchesOracle checks Block Filtering — serial and
// parallel — against the brute-force reference across ratios, including
// the degenerate r=1.0 (blocks survive, order changes) on the same
// adversarial collections.
func TestBlockFilteringMatchesOracle(t *testing.T) {
	for name, c := range diffCollections() {
		for _, ratio := range []float64{0.3, 0.5, 0.8, 1.0} {
			if err := oracle.CheckFiltering(c, ratio, 1, 4); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestPipelineMatchesOracle runs the full public pipeline — Token
// Blocking, Block Purging, Block Filtering at the paper's r=0.8, then
// meta-blocking — on synthetic Clean-Clean and Dirty datasets and checks
// the retained comparisons of every scheme × algorithm × workers cell
// against the oracle applied to the same cleaned blocks (BuildBlocks
// mirrors the pipeline's pre-graph stages exactly). It also checks that
// attaching observability does not change the result, and that the worker
// count (1, 4, GOMAXPROCS) never does.
func TestPipelineMatchesOracle(t *testing.T) {
	cfg := datagen.Config{
		Name: "diff", Seed: 7, Size1: 60, Size2: 80, Duplicates: 40,
		Vocabulary: 300, CoreTokens: 4,
		Source1: datagen.SourceConfig{AttributeNames: 3, AttributesPerProfile: 3, TokensPerProfile: 5},
		Source2: datagen.SourceConfig{AttributeNames: 3, AttributesPerProfile: 3, TokensPerProfile: 5},
	}
	clean := datagen.Generate(cfg)
	datasets := map[string]*Collection{
		"clean": clean.Collection,
		"dirty": clean.ToDirty("diffD").Collection,
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	for name, coll := range datasets {
		t.Run(name, func(t *testing.T) {
			blocks := BuildBlocks(coll, TokenBlocking{}, 0.8)
			for _, scheme := range []Scheme{ARCS, CBS, ECBS, JS, EJS} {
				for _, alg := range []Algorithm{CEP, CNP, WEP, WNP, RedefinedCNP, ReciprocalCNP, RedefinedWNP, ReciprocalWNP} {
					want := oracle.Prune(blocks, scheme, alg)
					for _, w := range workerCounts {
						p := Pipeline{FilterRatio: 0.8, Scheme: scheme, Algorithm: alg, Workers: w}
						res, err := p.RunContext(context.Background(), coll)
						if err != nil {
							t.Fatalf("%v/%v workers=%d: %v", scheme, alg, w, err)
						}
						got := oracle.SortPairs(append([]Pair(nil), res.Pairs...))
						if !equalPairs(got, want) {
							t.Fatalf("%v/%v workers=%d: pipeline retained %d comparisons, oracle %d (first diff: %v)",
								scheme, alg, w, len(got), len(want), firstDiff(got, want))
						}
					}
					// Observability must be a pure observer: metrics plus a
					// progress sink leave the retained comparisons untouched.
					p := Pipeline{FilterRatio: 0.8, Scheme: scheme, Algorithm: alg, Workers: 4}
					res, err := p.RunContext(context.Background(), coll,
						WithMetrics(NewMetrics()), WithProgress(func(string, int64, int64) {}))
					if err != nil {
						t.Fatalf("%v/%v observed: %v", scheme, alg, err)
					}
					got := oracle.SortPairs(append([]Pair(nil), res.Pairs...))
					if !equalPairs(got, want) {
						t.Fatalf("%v/%v: observability changed the result (%d vs %d pairs)",
							scheme, alg, len(got), len(want))
					}
					// The compressed Entity Index must be invisible in the
					// output: identical retained pairs, serial and parallel.
					for _, w := range []int{0, 4} {
						p := Pipeline{FilterRatio: 0.8, Scheme: scheme, Algorithm: alg, Workers: w, CompressedIndex: true}
						res, err := p.RunContext(context.Background(), coll)
						if err != nil {
							t.Fatalf("%v/%v compressed workers=%d: %v", scheme, alg, w, err)
						}
						got := oracle.SortPairs(append([]Pair(nil), res.Pairs...))
						if !equalPairs(got, want) {
							t.Fatalf("%v/%v compressed workers=%d: %d pairs, oracle %d (first diff: %v)",
								scheme, alg, w, len(got), len(want), firstDiff(got, want))
						}
					}
				}
			}
		})
	}
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDiff reports the first position where two sorted comparison lists
// disagree, for failure messages.
func firstDiff(a, b []Pair) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("%v vs %v", a[i], b[i])
		}
	}
	return "length"
}

// TestShardedIncrementalMatchesSerial anchors the scatter-gather
// coordinator to the serial incremental resolver: for every scheme ×
// pruning mode × shard count in {1, 4, 16}, the same arrival order must
// produce bit-identical answers — IDs, candidate sets, exact float64
// weights — and a bit-identical canonical snapshot. The shard count is
// an implementation detail that must never leak into results.
func TestShardedIncrementalMatchesSerial(t *testing.T) {
	profiles := datagen.D1D(0.1).Collection.Profiles
	if len(profiles) > 300 {
		profiles = profiles[:300]
	}
	for _, scheme := range []Scheme{ARCS, CBS, ECBS, JS} {
		for _, k := range []int{0, 3} {
			cfg := incremental.Config{Scheme: scheme, K: k, MaxBlockSize: 50}
			serial, err := incremental.NewResolver(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]incremental.BatchResult, len(profiles))
			for i, p := range profiles {
				id, cands := serial.Add(p)
				want[i] = incremental.BatchResult{ID: id, Candidates: cands}
			}
			wantSnap := serial.Snapshot()
			for _, shards := range []int{1, 4, 16} {
				name := fmt.Sprintf("%v/k%d/shards%d", scheme, k, shards)
				g, err := shard.New(shard.Config{Resolver: cfg, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range profiles {
					got, err := g.Resolve(p)
					if err != nil {
						t.Fatalf("%s: arrival %d: %v", name, i, err)
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Fatalf("%s: arrival %d diverged from serial:\n got %+v\nwant %+v",
							name, i, got, want[i])
					}
				}
				if !reflect.DeepEqual(g.Snapshot(), wantSnap) {
					t.Fatalf("%s: canonical snapshot diverged from serial", name)
				}
				g.Close()
			}
		}
	}
}
