// Package incremental adapts Enhanced Meta-blocking to Incremental Entity
// Resolution — the future-work direction the paper closes with (§7).
//
// A Resolver maintains a growing, schema-agnostic Token Blocking index.
// Every arriving profile is blocked immediately and compared only against
// a pruned set of candidate neighbors, derived from the same weighted
// co-occurrence signal meta-blocking uses: the resolver scans the new
// profile's blocks with the ScanCount technique of Algorithm 3, weights
// each co-occurring profile, and keeps either the top-K candidates
// (cardinality pruning, CNP-style) or the ones at or above the mean weight
// (weight pruning, WNP-style). Oversized blocks are ignored while
// gathering candidates, mirroring Block Purging.
//
// The index stores every block's member list as a delta+varint posting
// list (IDs arrive in ascending order, so the deltas are small), decoded
// into a reused scratch buffer during candidate collection; together with
// the epoch-stamped ScanCount cells and the bounded top-K heap this keeps
// the per-arrival work allocation-free apart from the returned candidates.
package incremental

import (
	"fmt"
	"math"
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/postings"
)

// ErrUnsupportedScheme is returned by NewResolver for weighting schemes the
// incremental setting cannot maintain (currently EJS, whose global node
// degrees change with every arriving profile). It wraps the shared
// core.ErrUnsupportedScheme sentinel — the one the public metablocking
// package aliases — so errors.Is matches across layers.
var ErrUnsupportedScheme = fmt.Errorf("incremental: EJS needs global node degrees; use ARCS, CBS, ECBS or JS: %w", core.ErrUnsupportedScheme)

// Config tunes the incremental resolver.
type Config struct {
	// Scheme weights candidate edges. ARCS, CBS, ECBS and JS are
	// supported; EJS requires global node degrees, which an incremental
	// setting cannot maintain cheaply.
	Scheme core.Scheme
	// K, when positive, keeps the top-K weighted candidates per arriving
	// profile (cardinality pruning). When zero, candidates at or above
	// the mean weight of the neighborhood are kept (weight pruning).
	K int
	// MaxBlockSize ignores blocks with more members when collecting
	// candidates — the incremental analogue of Block Purging. Zero
	// defaults to 1000.
	MaxBlockSize int
	// MinTokenLength drops shorter tokens at blocking time.
	MinTokenLength int
}

// Candidate is a pruned comparison suggestion for a newly added profile.
type Candidate struct {
	ID     entity.ID
	Weight float64
}

// scanCell interleaves one entity's ScanCount epoch stamp and accumulator
// so a block scan touches one cache line per member instead of two.
type scanCell struct {
	epoch  int64
	common float64
}

// Resolver incrementally blocks profiles and emits pruned candidate
// comparisons. It is not safe for concurrent use: callers that serve
// concurrent traffic must serialize Add/AddBatch behind a single writer
// and fence reads (Size, Profile, Snapshot) from mutations, as
// internal/server's single-writer/multi-reader façade does.
type Resolver struct {
	cfg Config

	profiles []entity.Profile
	// blocks maps token → the delta+varint posting list of member profile
	// IDs; arrival order is ascending ID order, so every list encodes.
	blocks map[string]*postings.Builder
	// blocksOf[i] lists the tokens (block keys) of profile i.
	blocksOf [][]string

	// ScanCount scratch, grown on demand.
	cells []scanCell
	epoch int64

	// Per-call scratch, reused across arrivals; never retained in results.
	neighbors []entity.ID
	members   []entity.ID
	cands     []Candidate
	keyer     Keyer
	topk      candHeap
}

// Keyer extracts a profile's distinct tokens in first-appearance order —
// its prospective block keys — behind reusable scratch. The coordinator
// of a sharded index (internal/shard) uses its own Keyer so the keys it
// scatters are byte-identical to the ones a single-index Resolver would
// derive. The zero value is ready to use; not safe for concurrent use.
type Keyer struct {
	// MinTokenLength drops shorter tokens, like Config.MinTokenLength.
	MinTokenLength int

	seen   map[string]struct{}
	keyBuf []string
	tokBuf []string
}

// Keys returns the profile's distinct block keys in first-appearance
// order. The returned slice is scratch, overwritten by the next call.
func (ky *Keyer) Keys(p entity.Profile) []string {
	if ky.seen == nil {
		ky.seen = make(map[string]struct{})
	}
	clear(ky.seen)
	keys := ky.keyBuf[:0]
	for _, a := range p.Attributes {
		ky.tokBuf = entity.AppendTokens(ky.tokBuf[:0], a.Value)
		for _, tok := range ky.tokBuf {
			if len(tok) < ky.MinTokenLength {
				continue
			}
			if _, ok := ky.seen[tok]; ok {
				continue
			}
			ky.seen[tok] = struct{}{}
			keys = append(keys, tok)
		}
	}
	ky.keyBuf = keys
	return keys
}

// NewResolver validates the configuration and returns an empty resolver.
func NewResolver(cfg Config) (*Resolver, error) {
	if cfg.Scheme == core.EJS {
		return nil, ErrUnsupportedScheme
	}
	if cfg.MaxBlockSize == 0 {
		cfg.MaxBlockSize = 1000
	}
	return &Resolver{
		cfg:    cfg,
		blocks: make(map[string]*postings.Builder),
		keyer:  Keyer{MinTokenLength: cfg.MinTokenLength},
	}, nil
}

// Size returns the number of profiles resolved so far.
func (r *Resolver) Size() int { return len(r.profiles) }

// Profile returns a previously added profile.
func (r *Resolver) Profile(id entity.ID) *entity.Profile { return &r.profiles[id] }

// Add blocks the profile, assigns it the next ID, and returns the pruned
// candidate comparisons against the profiles added before it, heaviest
// first. A profile with no co-occurring predecessors yields no candidates.
func (r *Resolver) Add(p entity.Profile) (entity.ID, []Candidate) {
	id := entity.ID(len(r.profiles))
	p.ID = id
	r.profiles = append(r.profiles, p)
	r.cells = append(r.cells, scanCell{})

	scratch := r.tokenKeys(p)
	var keys []string
	if len(scratch) > 0 {
		keys = make([]string, len(scratch))
		copy(keys, scratch)
	}
	r.blocksOf = append(r.blocksOf, keys)

	// Gather weighted candidates from the profile's blocks BEFORE adding
	// it to them (candidates are strictly older profiles).
	candidates := r.collect(keys, -1)

	for _, k := range keys {
		b := r.blocks[k]
		if b == nil {
			b = new(postings.Builder)
			r.blocks[k] = b
		}
		b.Append(id)
	}
	return id, candidates
}

// Peek computes the pruned candidates the profile would receive from Add,
// without mutating the index: no ID is assigned, no block gains a member.
// It is the read-only resolve behind the serving layer's degraded mode,
// which keeps answering from the last good index while the write path is
// failing. Like Add it is not safe for concurrent use (it shares the
// ScanCount scratch). The error is always nil; the signature is the
// Index contract's, where sharded implementations can fail.
func (r *Resolver) Peek(p entity.Profile) ([]Candidate, error) {
	return r.collect(r.tokenKeys(p), -1), nil
}

// PeekExcluding is the read-only resume gather behind budget-aware
// streaming (internal/budget): it recomputes the candidates an
// ALREADY-COMMITTED profile received from its own Resolve, by removing
// that profile's contribution from the index's statistics. p must be the
// same profile that was committed as exclude — same attribute content,
// hence the same block keys — which lets the compensation be exact: every
// block named by p's keys is known to contain exclude, so its effective
// cardinality is one less (restoring ARCS increments and Block Purging
// decisions), exclude itself is skipped during the scan, and blocks whose
// only member is exclude are discounted from the ECBS block count. When
// no other profile was committed in between, the result is bit-identical
// to the candidate list the original Resolve returned.
func (r *Resolver) PeekExcluding(p entity.Profile, exclude entity.ID) ([]Candidate, error) {
	if int(exclude) < 0 || int(exclude) >= len(r.profiles) {
		return nil, fmt.Errorf("incremental: excluded profile %d of %d", exclude, len(r.profiles))
	}
	return r.collect(r.tokenKeys(p), exclude), nil
}

// LastWeighed returns how many neighbors the most recent
// Add/Peek/Resolve weighed before pruning — the single-index analogue of
// the shard coordinator's gather hook, feeding the serving layer's
// comparison accounting.
func (r *Resolver) LastWeighed() int { return len(r.neighbors) }

// tokenKeys returns the distinct tokens of the profile, in
// first-appearance order — its prospective block keys. The returned slice
// is scratch, overwritten by the next tokenKeys call.
func (r *Resolver) tokenKeys(p entity.Profile) []string {
	return r.keyer.Keys(p)
}

// collect runs the ScanCount accumulation over the blocks named by keys
// and applies the local pruning criterion. A non-negative exclude is the
// resume path (see PeekExcluding): that profile is already a member of
// every keyed block, so each block's effective cardinality is decremented
// before purging and increment derivation, the profile itself is skipped
// during the scan, and its singleton blocks are discounted from the ECBS
// block count — restoring the statistics of the index state its own
// Resolve ran against.
func (r *Resolver) collect(keys []string, exclude entity.ID) []Candidate {
	r.epoch++
	epoch := r.epoch
	cells := r.cells
	neighbors := r.neighbors[:0]
	for _, k := range keys {
		b := r.blocks[k]
		if b == nil {
			continue
		}
		n := b.Len()
		if exclude >= 0 {
			n--
		}
		if n <= 0 || n > r.cfg.MaxBlockSize {
			continue
		}
		inc := 1.0
		if r.cfg.Scheme == core.ARCS {
			// The block is about to gain the new profile; its
			// cardinality for this comparison counts the new member.
			nc := int64(n+1) * int64(n) / 2
			inc = 1 / float64(nc)
		}
		r.members = b.AppendTo(r.members[:0])
		for _, j := range r.members {
			if j == exclude {
				continue
			}
			c := &cells[j]
			if c.epoch != epoch {
				c.epoch = epoch
				c.common = inc
				neighbors = append(neighbors, j)
			} else {
				c.common += inc
			}
		}
	}
	r.neighbors = neighbors
	if len(neighbors) == 0 {
		return nil
	}
	nb := float64(len(r.blocks)) + 1
	if exclude >= 0 {
		for _, k := range keys {
			if b := r.blocks[k]; b != nil && b.Len() == 1 {
				nb--
			}
		}
	}
	if r.cfg.K > 0 {
		return r.topK(len(keys), nb, neighbors)
	}
	return r.aboveMean(len(keys), nb, neighbors)
}

// topK keeps the K heaviest candidates with a bounded min-heap ordered by
// the same total order sortCandidates sorts by (weight descending, ID
// ascending). The order is strict — neighbor IDs are distinct — so the
// selected set, and after the final sort the returned slice, is identical
// to sorting all candidates and truncating.
func (r *Resolver) topK(bi int, nb float64, neighbors []entity.ID) []Candidate {
	r.topk.reset(r.cfg.K)
	for _, j := range neighbors {
		r.topk.offer(Candidate{ID: j, Weight: r.weight(bi, nb, j)})
	}
	out := make([]Candidate, len(r.topk.cs))
	copy(out, r.topk.cs)
	sortCandidates(out)
	return out
}

// aboveMean keeps the candidates at or above the mean neighborhood weight.
// The mean is a single left-to-right sum over the neighbors in discovery
// order — the same accumulation order as weighting each candidate in turn,
// so thresholds are bit-stable across scratch reuse.
func (r *Resolver) aboveMean(bi int, nb float64, neighbors []entity.ID) []Candidate {
	cands := r.cands[:0]
	var sum float64
	for _, j := range neighbors {
		c := Candidate{ID: j, Weight: r.weight(bi, nb, j)}
		cands = append(cands, c)
		sum += c.Weight
	}
	r.cands = cands
	mean := sum / float64(len(cands))
	kept := 0
	for _, c := range cands {
		if c.Weight >= mean {
			kept++
		}
	}
	out := make([]Candidate, 0, kept)
	for _, c := range cands {
		if c.Weight >= mean {
			out = append(out, c)
		}
	}
	sortCandidates(out)
	return out
}

// weight evaluates the configured scheme for a new profile with bi block
// keys and an older profile j. nb is the ECBS block-count term, derived
// once per collect (possibly exclusion-compensated) from the current
// block statistics.
func (r *Resolver) weight(bi int, nb float64, j entity.ID) float64 {
	common := r.cells[j].common
	bj := len(r.blocksOf[j])
	switch r.cfg.Scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		return common * math.Log(nb/float64(bi)) * math.Log(nb/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	default:
		return common
	}
}

// BatchResult pairs one arrival of an AddBatch call with its assigned ID
// and pruned candidates.
type BatchResult struct {
	ID         entity.ID
	Candidates []Candidate
}

// AddBatch adds the profiles in order under one index pass and returns one
// result per profile. It is semantically identical to calling Add for each
// profile in sequence — earlier batch members become candidates of later
// ones — but amortizes the per-arrival overhead, which is what lets a
// serving layer coalesce many concurrent requests into a single writer
// turn. An empty batch returns nil.
func (r *Resolver) AddBatch(ps []entity.Profile) []BatchResult {
	if len(ps) == 0 {
		return nil
	}
	out := make([]BatchResult, len(ps))
	for i, p := range ps {
		id, cands := r.Add(p)
		out[i] = BatchResult{ID: id, Candidates: cands}
	}
	return out
}

// Snapshot is a self-contained, restorable copy of a resolver's state: the
// configuration, the profiles in arrival order, and the token index so a
// restore does not re-tokenize. internal/store persists it as the
// "resolver" artifact; the serving layer hot-swaps resolvers built from
// one. Block member lists are plain ID slices regardless of the resolver's
// internal compressed representation, so the artifact format is stable.
type Snapshot struct {
	Config   Config
	Profiles []entity.Profile
	// Blocks maps token → member profile IDs in arrival order.
	Blocks map[string][]entity.ID
	// BlocksOf lists the tokens (block keys) of each profile.
	BlocksOf [][]string
}

// Snapshot deep-copies the resolver's state, decoding the compressed
// posting lists into plain ID slices. The caller may persist or mutate the
// copy while the resolver keeps resolving.
func (r *Resolver) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:   r.cfg,
		Profiles: append([]entity.Profile(nil), r.profiles...),
		Blocks:   make(map[string][]entity.ID, len(r.blocks)),
		BlocksOf: make([][]string, len(r.blocksOf)),
	}
	for k, b := range r.blocks {
		s.Blocks[k] = b.AppendTo(make([]entity.ID, 0, b.Len()))
	}
	for i, keys := range r.blocksOf {
		s.BlocksOf[i] = append([]string(nil), keys...)
	}
	return s
}

// FromSnapshot rebuilds a resolver from a snapshot, validating the
// configuration and the index shape: every block member must be a known
// profile ID and every member list must be in arrival (strictly ascending
// ID) order, the invariant the compressed posting lists encode. The
// snapshot's data is copied out, so the caller may reuse it. Restoring n
// profiles costs O(index size) re-encoding but no re-tokenization.
func FromSnapshot(s *Snapshot) (*Resolver, error) {
	if s == nil {
		return nil, fmt.Errorf("incremental: nil snapshot")
	}
	if len(s.BlocksOf) != len(s.Profiles) {
		return nil, fmt.Errorf("incremental: snapshot has %d profiles but %d block-key lists",
			len(s.Profiles), len(s.BlocksOf))
	}
	r, err := NewResolver(s.Config)
	if err != nil {
		return nil, err
	}
	n := len(s.Profiles)
	r.profiles = append([]entity.Profile(nil), s.Profiles...)
	r.blocksOf = make([][]string, n)
	for i, keys := range s.BlocksOf {
		r.blocksOf[i] = append([]string(nil), keys...)
	}
	for k, members := range s.Blocks {
		b := new(postings.Builder)
		for _, id := range members {
			if int(id) < 0 || int(id) >= n {
				return nil, fmt.Errorf("incremental: snapshot block %q references profile %d of %d", k, id, n)
			}
			if id <= b.Last() {
				return nil, fmt.Errorf("incremental: snapshot block %q member %d out of arrival order", k, id)
			}
			b.Append(id)
		}
		r.blocks[k] = b
	}
	r.cells = make([]scanCell, n)
	return r, nil
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].Weight != cs[b].Weight {
			return cs[a].Weight > cs[b].Weight
		}
		return cs[a].ID < cs[b].ID
	})
}

// candHeap is a bounded min-heap under the candidate ranking (weight
// descending, ID ascending): the root is the weakest retained candidate,
// evicted when a stronger one arrives.
type candHeap struct {
	cs []Candidate
	k  int
}

func (h *candHeap) reset(k int) {
	h.cs = h.cs[:0]
	h.k = k
}

// outranks reports whether a is retained in preference to b — the exact
// total order sortCandidates sorts by.
func outranks(a, b Candidate) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return a.ID < b.ID
}

func (h *candHeap) offer(c Candidate) {
	if len(h.cs) < h.k {
		h.cs = append(h.cs, c)
		h.up(len(h.cs) - 1)
		return
	}
	if !outranks(c, h.cs[0]) {
		return
	}
	h.cs[0] = c
	h.down(0)
}

func (h *candHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !outranks(h.cs[p], h.cs[i]) {
			break
		}
		h.cs[p], h.cs[i] = h.cs[i], h.cs[p]
		i = p
	}
}

func (h *candHeap) down(i int) {
	n := len(h.cs)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if rt := l + 1; rt < n && outranks(h.cs[m], h.cs[rt]) {
			m = rt
		}
		if !outranks(h.cs[i], h.cs[m]) {
			return
		}
		h.cs[i], h.cs[m] = h.cs[m], h.cs[i]
		i = m
	}
}
