package entity

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: MakePair is symmetric and always canonical (A <= B).
func TestMakePairProperties(t *testing.T) {
	f := func(a, b int32) bool {
		p := MakePair(a, b)
		q := MakePair(b, a)
		return p == q && p.A <= p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Tokenize never returns empty tokens and lower-cases everything.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Tokenize is idempotent — re-tokenizing the joined tokens gives
// the same tokens.
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokenize(s)
		twice := Tokenize(strings.Join(once, " "))
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ground truth Contains matches membership of the canonical pair
// list regardless of insertion order.
func TestGroundTruthProperties(t *testing.T) {
	f := func(raw []Pair) bool {
		gt := NewGroundTruth(raw)
		for _, p := range raw {
			if p.A == p.B {
				continue
			}
			if !gt.Contains(p.A, p.B) || !gt.Contains(p.B, p.A) {
				return false
			}
		}
		return gt.Size() == len(gt.Pairs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
