package experiments

import (
	"time"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/eval"
)

// PruneResult is a pruning scheme's performance on one dataset, averaged
// across the five weighting schemes as the paper's tables do.
type PruneResult struct {
	Dataset     string
	Algorithm   core.Algorithm
	Comparisons int64 // ‖B'‖ (mean)
	PC, PQ      float64
	OTime       time.Duration
}

// pruneAveraged runs the pruning algorithm under every weighting scheme on
// the given block collection and averages the resulting measures.
func (s *Suite) pruneAveraged(p *Prepared, c *block.Collection, alg core.Algorithm, originalWeighting bool) PruneResult {
	var (
		comparisons []int64
		pcs, pqs    []float64
		otimes      []time.Duration
	)
	for _, scheme := range core.AllSchemes {
		res := core.Run(c, core.Config{
			Scheme:            scheme,
			Algorithm:         alg,
			OriginalWeighting: originalWeighting,
			Obs:               s.obsHandle(),
		})
		rep := eval.EvaluatePairs(res.Pairs, p.Dataset.GroundTruth, c.Comparisons())
		comparisons = append(comparisons, rep.Comparisons)
		pcs = append(pcs, rep.PC())
		pqs = append(pqs, rep.PQ())
		otimes = append(otimes, res.OTime)
	}
	return PruneResult{
		Dataset:     p.Dataset.Name,
		Algorithm:   alg,
		Comparisons: eval.MeanInt64(comparisons),
		PC:          eval.Mean(pcs),
		PQ:          eval.Mean(pqs),
		OTime:       eval.MeanDuration(otimes),
	}
}

func (s *Suite) prunePrintHeader() {
	s.printf("%-15s %-5s %10s %7s %10s %9s\n", "", "", "‖B'‖", "PC", "PQ", "OTime")
}

func (s *Suite) prunePrint(label string, r PruneResult) {
	s.printf("%-15s %-5s %10s %7.3f %10.2e %9s\n",
		label, r.Dataset, sci(r.Comparisons), r.PC, r.PQ, dur(r.OTime))
}

// Table3 evaluates the four existing pruning schemes (CEP, CNP, WEP, WNP)
// with the Original Edge Weighting of Algorithm 2, before (a-d left) and
// after (a-d right) Block Filtering, averaged across all five weighting
// schemes.
func (s *Suite) Table3() (before, after []PruneResult) {
	s.printf("\n=== Table 3: Existing pruning schemes (Original Edge Weighting), before and after Block Filtering ===\n")
	for _, alg := range []core.Algorithm{core.CEP, core.CNP, core.WEP, core.WNP} {
		s.printf("\n--- %v ---\n", alg)
		s.prunePrintHeader()
		for _, p := range s.Datasets() {
			r := s.pruneAveraged(p, p.Original, alg, true)
			before = append(before, r)
			s.prunePrint("original", r)
		}
		for _, p := range s.Datasets() {
			r := s.pruneAveraged(p, p.Filtered, alg, true)
			after = append(after, r)
			s.prunePrint("block-filtered", r)
		}
	}
	return before, after
}

// Table5 reports the overhead time of the four existing pruning schemes
// with Optimized Edge Weighting (Algorithm 3) on the filtered blocks.
func (s *Suite) Table5() []PruneResult {
	var out []PruneResult
	s.printf("\n=== Table 5: OTime with Optimized Edge Weighting (after Block Filtering) ===\n")
	s.printf("%-5s", "")
	for _, p := range s.Datasets() {
		s.printf(" %9s", p.Dataset.Name)
	}
	s.printf("\n")
	for _, alg := range []core.Algorithm{core.CEP, core.CNP, core.WEP, core.WNP} {
		s.printf("%-5v", alg)
		for _, p := range s.Datasets() {
			r := s.pruneAveraged(p, p.Filtered, alg, false)
			out = append(out, r)
			s.printf(" %9s", dur(r.OTime))
		}
		s.printf("\n")
	}
	return out
}

// Table4 evaluates the paper's new pruning schemes — Redefined and
// Reciprocal CNP/WNP — on top of Block Filtering with Optimized Edge
// Weighting, averaged across all weighting schemes.
func (s *Suite) Table4() []PruneResult {
	var out []PruneResult
	s.printf("\n=== Table 4: Redefined and Reciprocal Node-centric Pruning (after Block Filtering) ===\n")
	for _, alg := range []core.Algorithm{core.RedefinedCNP, core.ReciprocalCNP, core.RedefinedWNP, core.ReciprocalWNP} {
		s.printf("\n--- %v ---\n", alg)
		s.prunePrintHeader()
		for _, p := range s.Datasets() {
			r := s.pruneAveraged(p, p.Filtered, alg, false)
			out = append(out, r)
			s.prunePrint("", r)
		}
	}
	return out
}
