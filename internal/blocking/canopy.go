package blocking

import (
	"math/rand"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// CanopyClustering is the classic redundancy-negative blocking method
// (paper §2, ref [19]: McCallum, Nigam, Ungar): profiles highly similar to
// the current seed are removed from the candidate pool and placed
// exclusively in its canopy, so the most similar profiles share exactly
// one block. Similarity is the cheap shared-token count, evaluated through
// an inverted index.
//
// Being redundancy-negative, its blocks are NOT a valid meta-blocking
// input (block overlap carries no match signal); the method is included to
// complete the taxonomy and as a comparison point for the examples.
type CanopyClustering struct {
	// LooseThreshold is the minimum number of shared tokens to join a
	// canopy (default 2).
	LooseThreshold int
	// TightThreshold is the minimum number of shared tokens to be
	// removed from the candidate pool (default 4); must be ≥ Loose.
	TightThreshold int
	// Seed drives the random seed-selection order (default 1).
	Seed int64
}

// Name implements Method.
func (CanopyClustering) Name() string { return "Canopy Clustering" }

// Build implements Method.
func (cc CanopyClustering) Build(c *entity.Collection) *block.Collection {
	loose := cc.LooseThreshold
	if loose < 1 {
		loose = 2
	}
	tight := cc.TightThreshold
	if tight < loose {
		tight = loose * 2
	}
	seed := cc.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Inverted index: token → profiles containing it.
	index := make(map[string][]entity.ID)
	tokensOf := make([][]string, c.Size())
	for i := range c.Profiles {
		p := &c.Profiles[i]
		set := p.TokenSet()
		toks := make([]string, 0, len(set))
		for tok := range set {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		tokensOf[i] = toks
		for _, tok := range toks {
			index[tok] = append(index[tok], p.ID)
		}
	}

	// Candidate pool in random order.
	pool := make([]entity.ID, c.Size())
	for i := range pool {
		pool[i] = entity.ID(i)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	inPool := make([]bool, c.Size())
	for i := range inPool {
		inPool[i] = true
	}

	out := &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	shared := make([]int, c.Size())
	var touched []entity.ID
	for _, seedID := range pool {
		if !inPool[seedID] {
			continue
		}
		// Count shared tokens between the seed and every pool member.
		touched = touched[:0]
		for _, tok := range tokensOf[seedID] {
			for _, j := range index[tok] {
				if j == seedID || !inPool[j] {
					continue
				}
				if shared[j] == 0 {
					touched = append(touched, j)
				}
				shared[j]++
			}
		}
		var members []entity.ID
		for _, j := range touched {
			if shared[j] >= loose {
				members = append(members, j)
			}
			if shared[j] >= tight {
				inPool[j] = false // exclusively in this canopy
			}
			shared[j] = 0
		}
		inPool[seedID] = false
		if len(members) == 0 {
			continue
		}
		members = append(members, seedID)
		sortIDs(members)

		if c.Task == entity.CleanClean {
			var e1, e2 []entity.ID
			for _, id := range members {
				if c.InFirst(id) {
					e1 = append(e1, id)
				} else {
					e2 = append(e2, id)
				}
			}
			if len(e1) == 0 || len(e2) == 0 {
				continue
			}
			out.Blocks = append(out.Blocks, block.Block{Key: canopyKey(seedID), E1: e1, E2: e2})
			continue
		}
		out.Blocks = append(out.Blocks, block.Block{Key: canopyKey(seedID), E1: members})
	}
	return out
}

func canopyKey(seed entity.ID) string {
	// Stable, human-readable canopy identifier.
	const digits = "0123456789"
	if seed == 0 {
		return "canopy-0"
	}
	var buf [12]byte
	i := len(buf)
	for v := seed; v > 0; v /= 10 {
		i--
		buf[i] = digits[v%10]
	}
	return "canopy-" + string(buf[i:])
}
