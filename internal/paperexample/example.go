// Package paperexample provides the running example of the paper
// (Figures 1, 2, 5, 6, 8, 9) as a reusable test fixture: six entity
// profiles whose Token Blocking yields exactly the eight blocks of
// Figure 1(b) and whose JS-weighted blocking graph is Figure 2(a).
package paperexample

import "metablocking/internal/entity"

// Profile indices (p1..p6 of the paper map to IDs 0..5).
const (
	P1 entity.ID = iota
	P2
	P3
	P4
	P5
	P6
)

// Collection returns the six profiles of Figure 1(a) as a Dirty ER
// collection. p1≡p3 and p2≡p4 are the duplicates.
func Collection() *entity.Collection {
	mk := func(pairs ...string) entity.Profile {
		var p entity.Profile
		for i := 0; i+1 < len(pairs); i += 2 {
			p.Add(pairs[i], pairs[i+1])
		}
		return p
	}
	return entity.NewDirty([]entity.Profile{
		mk("FullName", "Jack Lloyd Miller", "job", "autoseller"),
		mk("name", "Erick Green", "profession", "vehicle vendor"),
		mk("fullname", "Jack Miller", "Work", "car vendor-seller"),
		mk("name", "Erick Lloyd Green", "profession", "car trader"),
		mk("Fullname", "James Jordan", "job", "car seller"),
		mk("name", "Nick Papas", "profession", "car dealer"),
	})
}

// GroundTruth returns the duplicates of the example: p1≡p3, p2≡p4.
func GroundTruth() *entity.GroundTruth {
	return entity.NewGroundTruth([]entity.Pair{
		entity.MakePair(P1, P3),
		entity.MakePair(P2, P4),
	})
}

// Blocks lists the expected Token Blocking output of Figure 1(b):
// blocking key → member profiles (in ID order). The keys are lower-cased
// tokens appearing in at least two profiles.
func Blocks() map[string][]entity.ID {
	return map[string][]entity.ID{
		"jack":   {P1, P3},
		"miller": {P1, P3},
		"erick":  {P2, P4},
		"green":  {P2, P4},
		"vendor": {P2, P3},
		"seller": {P3, P5},
		"lloyd":  {P1, P4},
		"car":    {P3, P4, P5, P6},
	}
}

// JSWeights lists the expected Jaccard edge weights of the blocking graph
// in Figure 2(a).
func JSWeights() map[entity.Pair]float64 {
	return map[entity.Pair]float64{
		entity.MakePair(P1, P3): 2.0 / 6.0,
		entity.MakePair(P1, P4): 1.0 / 6.0,
		entity.MakePair(P2, P3): 1.0 / 7.0,
		entity.MakePair(P2, P4): 2.0 / 5.0,
		entity.MakePair(P3, P4): 1.0 / 8.0,
		entity.MakePair(P3, P5): 2.0 / 5.0,
		entity.MakePair(P3, P6): 1.0 / 5.0,
		entity.MakePair(P4, P5): 1.0 / 5.0,
		entity.MakePair(P4, P6): 1.0 / 4.0,
		entity.MakePair(P5, P6): 1.0 / 2.0,
	}
}
