// Tuning: explore the recall/efficiency trade-off of Block Filtering's
// ratio r (the experiment behind the paper's Figure 10) and of the pruning
// algorithm choice, to pick a configuration for your workload.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	mb "metablocking"
)

func main() {
	ds := mb.GenerateDataset(mb.D2D, 0.15)
	c := ds.Collection

	fmt.Println("Block Filtering ratio sweep (graph-free, like Figure 10):")
	fmt.Printf("%6s %8s %8s %12s\n", "r", "PC", "RR", "comparisons")
	base := c.BruteForceComparisons()
	for r := 1; r <= 10; r++ {
		ratio := float64(r) / 10
		res, err := mb.Pipeline{GraphFree: true, FilterRatio: ratio}.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		rep := mb.Evaluate(res.Pairs, ds.GroundTruth, base)
		fmt.Printf("%6.1f %8.3f %8.3f %12d\n", ratio, rep.PC(), rep.RR(), len(res.Pairs))
	}

	fmt.Println("\nPruning algorithms at r=0.8 (JS weighting):")
	fmt.Printf("%-16s %8s %10s %12s %10s\n", "algorithm", "PC", "PQ", "comparisons", "overhead")
	for _, alg := range []mb.Algorithm{
		mb.CEP, mb.CNP, mb.WEP, mb.WNP,
		mb.RedefinedCNP, mb.ReciprocalCNP, mb.RedefinedWNP, mb.ReciprocalWNP,
	} {
		res, err := mb.Pipeline{FilterRatio: 0.8, Scheme: mb.JS, Algorithm: alg}.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		rep := mb.Evaluate(res.Pairs, ds.GroundTruth, base)
		fmt.Printf("%-16v %8.3f %10.4f %12d %10v\n",
			alg, rep.PC(), rep.PQ(), len(res.Pairs), res.OTime)
	}

	fmt.Println("\nrule of thumb (paper §6.4):")
	fmt.Println("  efficiency-intensive (PC ≥ 0.8, maximize PQ):  Reciprocal CNP")
	fmt.Println("  effectiveness-intensive (PC ≥ 0.95):           Reciprocal WNP")
	fmt.Println("  very noisy data:                               Redefined CNP / WNP")
}
