// Package incremental adapts Enhanced Meta-blocking to Incremental Entity
// Resolution — the future-work direction the paper closes with (§7).
//
// A Resolver maintains a growing, schema-agnostic Token Blocking index.
// Every arriving profile is blocked immediately and compared only against
// a pruned set of candidate neighbors, derived from the same weighted
// co-occurrence signal meta-blocking uses: the resolver scans the new
// profile's blocks with the ScanCount technique of Algorithm 3, weights
// each co-occurring profile, and keeps either the top-K candidates
// (cardinality pruning, CNP-style) or the ones at or above the mean weight
// (weight pruning, WNP-style). Oversized blocks are ignored while
// gathering candidates, mirroring Block Purging.
package incremental

import (
	"errors"
	"math"
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// ErrUnsupportedScheme is returned by NewResolver for weighting schemes the
// incremental setting cannot maintain (currently EJS, whose global node
// degrees change with every arriving profile).
var ErrUnsupportedScheme = errors.New("incremental: EJS needs global node degrees; use ARCS, CBS, ECBS or JS")

// Config tunes the incremental resolver.
type Config struct {
	// Scheme weights candidate edges. ARCS, CBS, ECBS and JS are
	// supported; EJS requires global node degrees, which an incremental
	// setting cannot maintain cheaply.
	Scheme core.Scheme
	// K, when positive, keeps the top-K weighted candidates per arriving
	// profile (cardinality pruning). When zero, candidates at or above
	// the mean weight of the neighborhood are kept (weight pruning).
	K int
	// MaxBlockSize ignores blocks with more members when collecting
	// candidates — the incremental analogue of Block Purging. Zero
	// defaults to 1000.
	MaxBlockSize int
	// MinTokenLength drops shorter tokens at blocking time.
	MinTokenLength int
}

// Candidate is a pruned comparison suggestion for a newly added profile.
type Candidate struct {
	ID     entity.ID
	Weight float64
}

// Resolver incrementally blocks profiles and emits pruned candidate
// comparisons. It is not safe for concurrent use.
type Resolver struct {
	cfg Config

	profiles []entity.Profile
	// blocks maps token → member profile IDs, in arrival order.
	blocks map[string][]entity.ID
	// blocksOf[i] lists the tokens (block keys) of profile i.
	blocksOf [][]string

	// ScanCount scratch, grown on demand.
	flags  []int64
	epoch  int64
	common []float64
}

// NewResolver validates the configuration and returns an empty resolver.
func NewResolver(cfg Config) (*Resolver, error) {
	if cfg.Scheme == core.EJS {
		return nil, ErrUnsupportedScheme
	}
	if cfg.MaxBlockSize == 0 {
		cfg.MaxBlockSize = 1000
	}
	return &Resolver{cfg: cfg, blocks: make(map[string][]entity.ID)}, nil
}

// Size returns the number of profiles resolved so far.
func (r *Resolver) Size() int { return len(r.profiles) }

// Profile returns a previously added profile.
func (r *Resolver) Profile(id entity.ID) *entity.Profile { return &r.profiles[id] }

// Add blocks the profile, assigns it the next ID, and returns the pruned
// candidate comparisons against the profiles added before it, heaviest
// first. A profile with no co-occurring predecessors yields no candidates.
func (r *Resolver) Add(p entity.Profile) (entity.ID, []Candidate) {
	id := entity.ID(len(r.profiles))
	p.ID = id
	r.profiles = append(r.profiles, p)
	r.flags = append(r.flags, 0)
	r.common = append(r.common, 0)

	// Distinct tokens of the new profile, in first-appearance order.
	seen := make(map[string]struct{})
	var keys []string
	for _, a := range p.Attributes {
		for _, tok := range entity.Tokenize(a.Value) {
			if len(tok) < r.cfg.MinTokenLength {
				continue
			}
			if _, ok := seen[tok]; ok {
				continue
			}
			seen[tok] = struct{}{}
			keys = append(keys, tok)
		}
	}
	r.blocksOf = append(r.blocksOf, keys)

	// Gather weighted candidates from the profile's blocks BEFORE adding
	// it to them (candidates are strictly older profiles).
	candidates := r.collect(id, keys)

	for _, k := range keys {
		r.blocks[k] = append(r.blocks[k], id)
	}
	return id, candidates
}

// collect runs the ScanCount accumulation over the new profile's blocks
// and applies the local pruning criterion.
func (r *Resolver) collect(id entity.ID, keys []string) []Candidate {
	r.epoch++
	var neighbors []entity.ID
	for _, k := range keys {
		members := r.blocks[k]
		if len(members) == 0 || len(members) > r.cfg.MaxBlockSize {
			continue
		}
		inc := 1.0
		if r.cfg.Scheme == core.ARCS {
			// The block is about to gain the new profile; its
			// cardinality for this comparison counts the new member.
			n := int64(len(members)+1) * int64(len(members)) / 2
			inc = 1 / float64(n)
		}
		for _, j := range members {
			if r.flags[j] != r.epoch {
				r.flags[j] = r.epoch
				r.common[j] = 0
				neighbors = append(neighbors, j)
			}
			r.common[j] += inc
		}
	}
	if len(neighbors) == 0 {
		return nil
	}

	out := make([]Candidate, 0, len(neighbors))
	for _, j := range neighbors {
		out = append(out, Candidate{ID: j, Weight: r.weight(id, j)})
	}
	if r.cfg.K > 0 {
		sortCandidates(out)
		if len(out) > r.cfg.K {
			out = out[:r.cfg.K]
		}
		return out
	}
	var sum float64
	for _, c := range out {
		sum += c.Weight
	}
	mean := sum / float64(len(out))
	kept := out[:0]
	for _, c := range out {
		if c.Weight >= mean {
			kept = append(kept, c)
		}
	}
	sortCandidates(kept)
	return kept
}

// weight evaluates the configured scheme for the new profile i and an
// older profile j, using the current (growing) block statistics.
func (r *Resolver) weight(i, j entity.ID) float64 {
	common := r.common[j]
	bi, bj := len(r.blocksOf[i]), len(r.blocksOf[j])
	switch r.cfg.Scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		nb := float64(len(r.blocks)) + 1
		return common * math.Log(nb/float64(bi)) * math.Log(nb/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	default:
		return common
	}
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].Weight != cs[b].Weight {
			return cs[a].Weight > cs[b].Weight
		}
		return cs[a].ID < cs[b].ID
	})
}
