package oracle

import (
	"math"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// FilterBlocks is the brute-force reference for Block Filtering (paper
// §4.1, Algorithm 1): order blocks from the most to the least important
// (ascending comparison cardinality, ties on the block key), limit every
// profile to round(r·|Bi|) memberships — at least one, the tie policy of
// the reference implementations — and drop blocks left without a valid
// comparison. The input is not modified; output blocks appear in the
// sorted processing order, as the production implementation's does.
func FilterBlocks(c *block.Collection, ratio float64) *block.Collection {
	type indexed struct {
		comparisons int64
		key         string
		bid         int
	}
	order := make([]indexed, len(c.Blocks))
	for i := range c.Blocks {
		order[i] = indexed{comparisons: c.Blocks[i].Comparisons(), key: c.Blocks[i].Key, bid: i}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].comparisons != order[j].comparisons {
			return order[i].comparisons < order[j].comparisons
		}
		return order[i].key < order[j].key
	})

	// |Bi| per profile and the per-profile membership limit.
	counts := make(map[entity.ID]int)
	for i := range c.Blocks {
		for _, id := range c.Blocks[i].E1 {
			counts[id]++
		}
		for _, id := range c.Blocks[i].E2 {
			counts[id]++
		}
	}
	limits := make(map[entity.ID]int, len(counts))
	for id, n := range counts {
		limit := int(math.Floor(ratio*float64(n) + 0.5))
		if limit < 1 {
			limit = 1
		}
		limits[id] = limit
	}

	out := &block.Collection{Task: c.Task, NumEntities: c.NumEntities, Split: c.Split}
	used := make(map[entity.ID]int)
	keep := func(ids []entity.ID) []entity.ID {
		var kept []entity.ID
		for _, id := range ids {
			if used[id] >= limits[id] {
				continue
			}
			used[id]++
			kept = append(kept, id)
		}
		return kept
	}
	for _, o := range order {
		b := &c.Blocks[o.bid]
		e1 := keep(b.E1)
		var e2 []entity.ID
		if b.E2 != nil {
			e2 = keep(b.E2)
		}
		// A filtered block survives only if it still entails a comparison.
		if c.Task == entity.CleanClean {
			if len(e1) == 0 || len(e2) == 0 {
				continue
			}
		} else if len(e1) < 2 {
			continue
		}
		nb := block.Block{Key: b.Key, E1: e1}
		if b.E2 != nil {
			nb.E2 = e2
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}
