package core

import (
	"time"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Config selects a full meta-blocking configuration: one weighting scheme
// combined with one pruning algorithm (Fig. 3 — every combination of the
// two parameters is valid), plus the edge-weighting implementation.
type Config struct {
	Scheme    Scheme
	Algorithm Algorithm
	// OriginalWeighting uses Algorithm 2 instead of the Optimized Edge
	// Weighting of Algorithm 3.
	OriginalWeighting bool
	// Workers enables the multi-core path for graph construction (Entity
	// Index, EJS degrees) and pruning: 0 keeps the serial implementation,
	// negative uses GOMAXPROCS, positive that many workers. The parallel
	// path always uses Optimized Edge Weighting and returns pairs in
	// canonical order; OriginalWeighting takes precedence when both are
	// set.
	Workers int
}

// Result is the output of one meta-blocking run.
type Result struct {
	// Pairs holds the retained comparisons; the original node-centric
	// algorithms (CNP, WNP) may retain a pair twice.
	Pairs []entity.Pair
	// OTime is the overhead: graph construction plus pruning.
	OTime time.Duration
	// GraphTime is the slice of OTime spent building the blocking graph
	// (Entity Index plus, for EJS, the degree pass).
	GraphTime time.Duration
	// PruneTime is the slice of OTime spent pruning.
	PruneTime time.Duration
}

// Run restructures the block collection with the given configuration and
// returns the retained comparisons along with the measured overhead time,
// broken down into graph construction and pruning. A non-zero Workers
// parallelizes both phases.
func Run(c *block.Collection, cfg Config) Result {
	start := time.Now()
	parallel := cfg.Workers != 0 && !cfg.OriginalWeighting
	var g *Graph
	if parallel {
		g = NewGraphWorkers(c, cfg.Scheme, cfg.Workers)
	} else {
		g = NewGraph(c, cfg.Scheme)
	}
	g.OriginalWeighting = cfg.OriginalWeighting
	graphDone := time.Now()
	var pairs []entity.Pair
	if parallel {
		pairs = g.PruneParallel(cfg.Algorithm, cfg.Workers)
	} else {
		pairs = g.Prune(cfg.Algorithm)
	}
	end := time.Now()
	return Result{
		Pairs:     pairs,
		OTime:     end.Sub(start),
		GraphTime: graphDone.Sub(start),
		PruneTime: end.Sub(graphDone),
	}
}
