package postings

// Intersection primitives over ascending []int32 posting lists. Two regimes:
//
//   - comparable lengths: a branch-light linear merge, the fastest shape when
//     both lists advance at similar rates;
//   - skewed lengths (≥ gallopRatio): gallop (exponential search + binary
//     search) through the long list for each element of the short list,
//     turning O(m+n) into O(m log(n/m)).
//
// All functions require strictly ascending input, which every producer in
// this repo guarantees by construction.

// gallopRatio is the length skew at which galloping beats the linear merge.
// Below it the merge's predictable branches win; the crossover is broad and
// flat, so a power of two in the 8–16 range is fine.
const gallopRatio = 8

// advance returns the smallest index i in [lo, len(xs)) with xs[i] >= v,
// galloping from lo and then binary-searching the bracketed window.
func advance(xs []int32, lo int, v int32) int {
	if lo >= len(xs) || xs[lo] >= v {
		return lo
	}
	// Gallop: find hi with xs[hi] >= v, doubling the step from lo.
	step := 1
	hi := lo + 1
	for hi < len(xs) && xs[hi] < v {
		lo = hi
		step <<= 1
		hi += step
	}
	if hi > len(xs) {
		hi = len(xs)
	}
	// Binary search in (lo, hi): xs[lo] < v, xs[hi] >= v (or hi == len).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// IntersectCount returns |a ∩ b|.
func IntersectCount(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopCount(a, b)
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			n++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	return n
}

func gallopCount(short, long []int32) int {
	n, j := 0, 0
	for _, v := range short {
		j = advance(long, j, v)
		if j == len(long) {
			break
		}
		if long[j] == v {
			n++
			j++
		}
	}
	return n
}

// IntersectCountMin returns |a ∩ b| if it is at least min, or -1 otherwise,
// bailing out as soon as the remaining elements cannot reach min — the
// LeCoBI early-exit condition from the redundancy check.
func IntersectCountMin(a, b []int32, min int) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) < min {
		return -1
	}
	if len(b) >= gallopRatio*len(a) {
		n, j := 0, 0
		for k, v := range a {
			if n+len(a)-k < min {
				return -1
			}
			j = advance(b, j, v)
			if j == len(b) {
				if n < min {
					return -1
				}
				return n
			}
			if b[j] == v {
				n++
				j++
			}
		}
		if n < min {
			return -1
		}
		return n
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		if n+len(a)-i < min {
			return -1
		}
		x, y := a[i], b[j]
		if x == y {
			n++
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
	if n < min {
		return -1
	}
	return n
}

// First returns the smallest common element of a and b, or -1 when the
// intersection is empty — the least-common-block ID used by LeCoBI.
func First(a, b []int32) int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return -1
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, v := range a {
			j = advance(b, j, v)
			if j == len(b) {
				return -1
			}
			if b[j] == v {
				return v
			}
		}
		return -1
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			return x
		}
		if x < y {
			i++
		} else {
			j++
		}
	}
	return -1
}

// ForEachCommon calls fn for every common element in ascending order.
func ForEachCommon(a, b []int32, fn func(int32)) {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, v := range a {
			j = advance(b, j, v)
			if j == len(b) {
				return
			}
			if b[j] == v {
				fn(v)
				j++
			}
		}
		return
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			fn(x)
			i++
			j++
		} else if x < y {
			i++
		} else {
			j++
		}
	}
}
