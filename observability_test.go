package metablocking

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSentinelErrors pins the typed errors of the public API: callers must
// be able to branch on them with errors.Is.
func TestSentinelErrors(t *testing.T) {
	if _, err := (Pipeline{}).Run(nil); !errors.Is(err, ErrEmptyCollection) {
		t.Errorf("nil collection: got %v, want ErrEmptyCollection", err)
	}
	if _, err := (Pipeline{}).Run(NewDirty(nil)); !errors.Is(err, ErrEmptyCollection) {
		t.Errorf("empty collection: got %v, want ErrEmptyCollection", err)
	}
	ds := GenerateDataset(D1D, 0.05)
	if _, err := (Pipeline{FilterRatio: 1.5}).Run(ds.Collection); !errors.Is(err, ErrInvalidFilterRatio) {
		t.Errorf("FilterRatio 1.5: got %v, want ErrInvalidFilterRatio", err)
	}
	if _, err := (Pipeline{FilterRatio: -0.1}).Run(ds.Collection); !errors.Is(err, ErrInvalidFilterRatio) {
		t.Errorf("FilterRatio -0.1: got %v, want ErrInvalidFilterRatio", err)
	}
	if _, err := (Pipeline{GraphFree: true}).Run(ds.Collection); !errors.Is(err, ErrGraphFreeNeedsFilter) {
		t.Errorf("GraphFree without ratio: got %v, want ErrGraphFreeNeedsFilter", err)
	}
	if _, err := NewIncrementalResolver(IncrementalConfig{Scheme: EJS}); !errors.Is(err, ErrUnsupportedScheme) {
		t.Errorf("incremental EJS: got %v, want ErrUnsupportedScheme", err)
	}
}

// TestRunContextImmediateCancel verifies an already-canceled context aborts
// the run before any stage completes.
func TestRunContextImmediateCancel(t *testing.T) {
	ds := GenerateDataset(D2C, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: ReciprocalWNP, Workers: -1}.
		RunContext(ctx, ds.Collection)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got non-nil result %v alongside cancellation", res)
	}
}

// TestRunContextCancelMidPrune cancels the run from the first prune-stage
// progress callback and verifies it returns promptly with context.Canceled,
// discards partial output, and leaks no goroutines.
func TestRunContextCancelMidPrune(t *testing.T) {
	ds := GenerateDataset(D2C, 0.5)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pruneSeen atomic.Bool
	start := time.Now()
	res, err := Pipeline{FilterRatio: 0.8, Scheme: ECBS, Algorithm: ReciprocalWNP, Workers: -1}.
		RunContext(ctx, ds.Collection, WithProgress(func(stage string, done, total int64) {
			if stage == "prune" && pruneSeen.CompareAndSwap(false, true) {
				cancel()
			}
		}))
	elapsed := time.Since(start)
	if !pruneSeen.Load() {
		t.Fatal("prune stage reported no progress; cannot cancel mid-prune")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("got non-nil result alongside cancellation")
	}
	// Bounded return: cancellation is polled once per stride, so the abort
	// should be far quicker than finishing the prune would be.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// No goroutine leaks: every worker drains via wg.Wait, so the count
	// settles back to (about) where it started.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sortedPairs returns a canonically ordered copy for multiset comparison:
// the serial node-centric traversals emit pairs in a different (and for
// some algorithms unspecified) order than the canonical parallel reduction.
func sortedPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestMetricsDeterminism verifies the acceptance invariant of the
// observability layer: retained pairs AND counter values are identical
// with observability on or off, serial or parallel.
func TestMetricsDeterminism(t *testing.T) {
	ds := GenerateDataset(D2C, 0.15)
	for _, alg := range []Algorithm{CEP, WEP, CNP, RedefinedCNP, ReciprocalWNP} {
		var refPairs []Pair
		var refCounters map[string]int64
		for _, workers := range []int{0, 3} {
			for _, observed := range []bool{false, true} {
				p := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: alg, Workers: workers}
				var res *Result
				var err error
				if observed {
					res, err = p.RunContext(context.Background(), ds.Collection, WithMetrics(NewMetrics()))
				} else {
					res, err = p.Run(ds.Collection)
				}
				if err != nil {
					t.Fatalf("alg %v workers %d observed %v: %v", alg, workers, observed, err)
				}
				if refPairs == nil {
					refPairs = sortedPairs(res.Pairs)
				} else if !reflect.DeepEqual(sortedPairs(res.Pairs), refPairs) {
					t.Errorf("alg %v workers %d observed %v: pairs differ from reference", alg, workers, observed)
				}
				if !observed {
					if res.Metrics.Counters != nil {
						t.Errorf("alg %v: unobserved run has a metrics snapshot", alg)
					}
					continue
				}
				if got := res.Metrics.Counter("filter.comparisons"); got != res.InputComparisons {
					t.Errorf("alg %v workers %d: filter.comparisons %d != InputComparisons %d",
						alg, workers, got, res.InputComparisons)
				}
				if got := res.Metrics.Counter("prune.pairs"); got != int64(len(res.Pairs)) {
					t.Errorf("alg %v workers %d: prune.pairs %d != len(Pairs) %d",
						alg, workers, got, len(res.Pairs))
				}
				if refCounters == nil {
					refCounters = res.Metrics.Counters
				} else if !reflect.DeepEqual(res.Metrics.Counters, refCounters) {
					t.Errorf("alg %v workers %d: counters %v differ from reference %v",
						alg, workers, res.Metrics.Counters, refCounters)
				}
			}
		}
	}
}

// TestProgressTotals verifies the blocking stage reports exact progress:
// the cumulative done count reaches the advertised total (the number of
// profiles) for both the serial and the sharded build.
func TestProgressTotals(t *testing.T) {
	ds := GenerateDataset(D1D, 0.3)
	for _, workers := range []int{0, 4} {
		var mu sync.Mutex
		finals := make(map[string][2]int64) // stage → {max done, total}
		_, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: CNP, Workers: workers}.
			RunContext(context.Background(), ds.Collection, WithProgress(func(stage string, done, total int64) {
				mu.Lock()
				if cur := finals[stage]; done > cur[0] {
					finals[stage] = [2]int64{done, total}
				}
				mu.Unlock()
			}))
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		mu.Lock()
		blocking, ok := finals["blocking"]
		mu.Unlock()
		if !ok {
			t.Fatalf("workers %d: no blocking progress reported", workers)
		}
		if want := int64(len(ds.Collection.Profiles)); blocking[0] != want || blocking[1] != want {
			t.Errorf("workers %d: blocking progress done=%d total=%d, want both %d",
				workers, blocking[0], blocking[1], want)
		}
		mu.Lock()
		prune, ok := finals["prune"]
		mu.Unlock()
		if !ok {
			t.Fatalf("workers %d: no prune progress reported", workers)
		}
		if prune[0] != prune[1] {
			t.Errorf("workers %d: prune progress done=%d != total=%d", workers, prune[0], prune[1])
		}
	}
}

// TestSpanHooks verifies every pipeline stage is bracketed by the span
// hooks in order.
func TestSpanHooks(t *testing.T) {
	ds := GenerateDataset(D1D, 0.1)
	var mu sync.Mutex
	var events []string
	_, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: WNP}.
		RunContext(context.Background(), ds.Collection,
			WithSpanHooks(
				func(stage string) {
					mu.Lock()
					events = append(events, "start:"+stage)
					mu.Unlock()
				},
				func(stage string, elapsed time.Duration) {
					if elapsed < 0 {
						t.Errorf("stage %s: negative elapsed %v", stage, elapsed)
					}
					mu.Lock()
					events = append(events, "end:"+stage)
					mu.Unlock()
				}))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"start:blocking", "end:blocking",
		"start:purge", "end:purge",
		"start:filter", "end:filter",
		"start:graph", "end:graph",
		"start:prune", "end:prune",
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("span events %v, want %v", events, want)
	}
}

// TestWorkerSetterKeepsPreset verifies withWorkers does not override a
// blocking method's own Workers field.
func TestWorkerSetterKeepsPreset(t *testing.T) {
	for _, m := range []BlockingMethod{
		TokenBlocking{Workers: 2},
		QGramsBlocking{Workers: 2},
		SuffixArrayBlocking{Workers: 2},
		ExtendedQGramsBlocking{Workers: 2},
	} {
		got := withWorkers(m, 7)
		if w := reflect.ValueOf(got).FieldByName("Workers").Int(); w != 2 {
			t.Errorf("%T: Workers = %d after withWorkers(7), want preset 2", m, w)
		}
	}
	// Methods without a sharded build pass through unchanged.
	if got := withWorkers(StandardBlocking{}, 7); !reflect.DeepEqual(got, StandardBlocking{}) {
		t.Errorf("StandardBlocking changed by withWorkers: %v", got)
	}
}

// TestBuildBlocksWorkers verifies the variadic worker count of BuildBlocks
// keeps the output bit-identical to the serial build.
func TestBuildBlocksWorkers(t *testing.T) {
	ds := GenerateDataset(D1C, 0.2)
	serial := BuildBlocks(ds.Collection, TokenBlocking{}, 0.8)
	parallel := BuildBlocks(ds.Collection, TokenBlocking{}, 0.8, 4)
	if serial.Len() != parallel.Len() || serial.Comparisons() != parallel.Comparisons() {
		t.Fatalf("serial %d blocks/%d comparisons, parallel %d/%d",
			serial.Len(), serial.Comparisons(), parallel.Len(), parallel.Comparisons())
	}
	if !reflect.DeepEqual(serial.Blocks, parallel.Blocks) {
		t.Fatal("parallel BuildBlocks output differs from serial")
	}
}

// TestGraphFreeMetrics verifies the graph-free workflow fills the snapshot
// with the same bookkeeping counters as the graph-based one.
func TestGraphFreeMetrics(t *testing.T) {
	ds := GenerateDataset(D1D, 0.1)
	res, err := Pipeline{GraphFree: true, FilterRatio: 0.8}.
		RunContext(context.Background(), ds.Collection, WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.Counter("filter.comparisons"); got != res.InputComparisons {
		t.Errorf("filter.comparisons %d != InputComparisons %d", got, res.InputComparisons)
	}
	if got := res.Metrics.Counter("prune.pairs"); got != int64(len(res.Pairs)) {
		t.Errorf("prune.pairs %d != len(Pairs) %d", got, len(res.Pairs))
	}
}

// TestMetricsSnapshotTable exercises the human-readable rendering used by
// the -metrics CLI flag.
func TestMetricsSnapshotTable(t *testing.T) {
	ds := GenerateDataset(D1D, 0.1)
	res, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: CNP}.
		RunContext(context.Background(), ds.Collection, WithMetrics(NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	table := res.Metrics.Table()
	for _, name := range []string{"blocking.blocks", "filter.comparisons", "prune.pairs"} {
		want := fmt.Sprintf("%s", name)
		if !containsLine(table, want) {
			t.Errorf("table missing %q:\n%s", name, table)
		}
	}
}

func containsLine(s, substr string) bool {
	for i := 0; i+len(substr) <= len(s); i++ {
		if s[i:i+len(substr)] == substr {
			return true
		}
	}
	return false
}
