package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1}, // serial knob
		{1, 10, 1}, // explicit serial
		{4, 10, 4}, // plain
		{8, 3, 3},  // clamped to n
		{4, 0, 1},  // empty input
		{-1, 1, 1}, // GOMAXPROCS clamped to n
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestRangesCoversInput(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		var covered atomic.Int64
		Ranges(workers, 100, func(_, lo, hi int) {
			covered.Add(int64(hi - lo))
		})
		if covered.Load() != 100 {
			t.Fatalf("workers=%d covered %d of 100", workers, covered.Load())
		}
	}
}

// TestRangesPanicIsolation: a panicking worker must not kill the process;
// the remaining workers drain and the caller receives one *PanicError with
// the worker's stack attached.
func TestRangesPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var pe *PanicError
		var drained atomic.Int64
		func() {
			defer func() {
				if r := recover(); r != nil {
					var ok bool
					if pe, ok = r.(*PanicError); !ok {
						t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
					}
				}
			}()
			Ranges(workers, workers, func(w, lo, hi int) {
				if w == 0 {
					panic("boom")
				}
				drained.Add(1)
			})
			t.Fatalf("workers=%d: no panic propagated", workers)
		}()
		if pe == nil || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if want := int64(workers - 1); drained.Load() != want {
			t.Fatalf("workers=%d: %d other workers drained, want %d", workers, drained.Load(), want)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("Error() = %q", pe.Error())
		}
	}
}

// TestDoPanicIsolation mirrors the Ranges contract for the fork/join form.
func TestDoPanicIsolation(t *testing.T) {
	for _, thunks := range []int{1, 3} {
		var pe *PanicError
		var drained atomic.Int64
		fns := make([]func(), thunks)
		fns[0] = func() { panic(errors.New("kapow")) }
		for i := 1; i < thunks; i++ {
			fns[i] = func() { drained.Add(1) }
		}
		func() {
			defer func() { pe = Recovered(recover()) }()
			Do(fns...)
			t.Fatalf("thunks=%d: no panic propagated", thunks)
		}()
		if pe == nil {
			t.Fatalf("thunks=%d: nil PanicError", thunks)
		}
		if err, ok := pe.Value.(error); !ok || err.Error() != "kapow" {
			t.Fatalf("thunks=%d: Value = %v", thunks, pe.Value)
		}
		if drained.Load() != int64(thunks-1) {
			t.Fatalf("thunks=%d: %d drained", thunks, drained.Load())
		}
	}
}

// TestRecoveredIdempotent: re-panicked PanicErrors keep the original stack
// instead of being wrapped again.
func TestRecoveredIdempotent(t *testing.T) {
	if Recovered(nil) != nil {
		t.Fatal("Recovered(nil) != nil")
	}
	orig := &PanicError{Value: "x", Stack: []byte("original stack")}
	if got := Recovered(orig); got != orig {
		t.Fatal("Recovered rewrapped a PanicError")
	}
	// Nested fan-out: a panic crossing two Ranges layers surfaces once.
	var pe *PanicError
	func() {
		defer func() { pe = Recovered(recover()) }()
		Ranges(2, 2, func(w, lo, hi int) {
			Ranges(2, 2, func(w2, lo2, hi2 int) {
				if w == 0 && w2 == 0 {
					panic("deep")
				}
			})
		})
	}()
	if pe == nil || pe.Value != "deep" {
		t.Fatalf("nested panic = %+v", pe)
	}
}
