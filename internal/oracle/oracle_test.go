package oracle

import (
	"math"
	"math/rand"
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

// exampleBlocks builds the paper's running example (Figure 1(b)).
func exampleBlocks(t *testing.T) *Graph {
	t.Helper()
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	return NewGraph(blocks, core.JS)
}

// TestOracleJSWeightsPaperExample anchors the oracle itself to the
// hand-computed Jaccard graph of Figure 2(a) — the oracle validates the
// production code, and the paper validates the oracle.
func TestOracleJSWeightsPaperExample(t *testing.T) {
	g := exampleBlocks(t)
	want := paperexample.JSWeights()
	if len(g.Weights) != len(want) {
		t.Fatalf("|EB| = %d, want %d", len(g.Weights), len(want))
	}
	for p, w := range want {
		if math.Abs(g.Weights[p]-w) > 1e-12 {
			t.Errorf("edge %v = %v, want %v", p, g.Weights[p], w)
		}
	}
}

// TestOraclePrunePaperExample anchors every oracle pruning algorithm to
// the worked example's published outcomes (Figures 5, 8, 9 and the §3
// thresholds).
func TestOraclePrunePaperExample(t *testing.T) {
	g := exampleBlocks(t)
	if K := CardinalityEdgeThreshold(g.c); K != 9 {
		t.Fatalf("K = %d, want 9", K)
	}
	if k := CardinalityNodeThreshold(g.c); k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	counts := map[core.Algorithm]int{
		core.CEP:           9,  // all but the lightest edge p3-p4
		core.WEP:           4,  // exact mean keeps 4 of 10
		core.CNP:           12, // directed comparisons, duplicates included
		core.RedefinedCNP:  7,
		core.ReciprocalCNP: 5,
		core.WNP:           9, // Figure 5(b)
		core.RedefinedWNP:  5, // Figure 8(b)
		core.ReciprocalWNP: 4, // Figure 9(b)
	}
	for alg, want := range counts {
		if got := len(g.Prune(alg)); got != want {
			t.Errorf("%v retained %d comparisons, want %d", alg, got, want)
		}
	}
	dropped := entity.MakePair(paperexample.P3, paperexample.P4)
	for _, p := range g.Prune(core.CEP) {
		if p == dropped {
			t.Errorf("CEP kept the lightest edge %v", dropped)
		}
	}
}

// TestOracleEmptyAndSingletonBlocks: comparison-free blocks contribute no
// edges but do count toward |B|, Σ|b| and |Bi| — the weight formulas and
// cardinality thresholds must see them.
func TestOracleEmptyAndSingletonBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := Random(rng, GenConfig{Entities: 20, Blocks: 10, MaxBlockSize: 4, EmptyBlocks: 3, SingletonBlocks: 4})
	if c.Len() != 17 {
		t.Fatalf("got %d blocks, want 17", c.Len())
	}
	g := NewGraph(c, core.ECBS)
	for p, w := range g.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			t.Fatalf("edge %v has invalid weight %v", p, w)
		}
	}
	// Pruning still runs on collections whose blocks are all
	// comparison-free.
	empty := Random(rng, GenConfig{Entities: 5, Blocks: 0, MaxBlockSize: 2, EmptyBlocks: 2, SingletonBlocks: 2})
	for _, alg := range core.AllAlgorithms {
		if got := Prune(empty, core.JS, alg); len(got) != 0 {
			t.Fatalf("%v retained %d comparisons from a comparison-free collection", alg, len(got))
		}
	}
}

// TestRandomShape: the generator keeps the structural promises the
// production code relies on (distinct keys, sorted distinct members,
// Clean-Clean blocks crossing the split).
func TestRandomShape(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, clean := range []bool{false, true} {
		cfg := GenConfig{Entities: 40, Blocks: 30, MaxBlockSize: 5, EmptyBlocks: 2, SingletonBlocks: 3}
		if clean {
			cfg.Split = 15
		}
		c := Random(rng, cfg)
		keys := make(map[string]bool)
		for i := range c.Blocks {
			b := &c.Blocks[i]
			if keys[b.Key] {
				t.Fatalf("duplicate block key %q", b.Key)
			}
			keys[b.Key] = true
			for _, side := range [][]entity.ID{b.E1, b.E2} {
				for n := 1; n < len(side); n++ {
					if side[n-1] >= side[n] {
						t.Fatalf("block %q side not sorted-distinct: %v", b.Key, side)
					}
				}
			}
			if clean {
				for _, id := range b.E1 {
					if int(id) >= c.Split {
						t.Fatalf("E1 member %d at/after split %d", id, c.Split)
					}
				}
				for _, id := range b.E2 {
					if int(id) < c.Split {
						t.Fatalf("E2 member %d before split %d", id, c.Split)
					}
				}
			}
		}
	}
}

// TestRandomSeedDeterminism: the generator is a pure function of the rng
// seed.
func TestRandomSeedDeterminism(t *testing.T) {
	cfg := GenConfig{Entities: 30, Blocks: 20, MaxBlockSize: 4, Split: 12, EmptyBlocks: 1, SingletonBlocks: 2}
	a := Random(rand.New(rand.NewSource(5)), cfg)
	b := Random(rand.New(rand.NewSource(5)), cfg)
	if err := CheckFiltering(a, 1.0); err != nil { // cheap structural sanity
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different block counts: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Blocks {
		x, y := &a.Blocks[i], &b.Blocks[i]
		if x.Key != y.Key || !sameIDs(x.E1, y.E1) || !sameIDs(x.E2, y.E2) {
			t.Fatalf("same seed, block %d differs", i)
		}
	}
}

// TestFromBytesTotal: every byte string decodes into either nil or a
// collection the full checker accepts structurally (this is the fuzz
// targets' precondition).
func TestFromBytesTotal(t *testing.T) {
	inputs := [][]byte{
		nil, {}, {0}, {0, 0}, {255, 255}, {3, 1, 7, 1, 2, 3, 4, 5, 6, 7},
		{13, 9, 0, 2, 200, 100, 5, 1, 2, 3, 4, 5},
	}
	for _, clean := range []bool{false, true} {
		for _, in := range inputs {
			c := FromBytes(in, clean)
			if c == nil {
				continue
			}
			if c.NumEntities < 2 {
				t.Fatalf("FromBytes(%v) produced %d entities", in, c.NumEntities)
			}
			if clean && (c.Split <= 0 || c.Split >= c.NumEntities) {
				t.Fatalf("FromBytes(%v) produced invalid split %d/%d", in, c.Split, c.NumEntities)
			}
			NewGraph(c, core.EJS) // must not panic
		}
	}
}
