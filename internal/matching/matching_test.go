package matching

import (
	"reflect"
	"testing"

	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func TestJaccardSimilarity(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewDirty([]entity.Profile{
		mk("a b c"),
		mk("b c d"),
		mk("x y"),
		mk(""),
	})
	m := NewJaccardMatcher(c, 0.5)
	if got := m.Similarity(0, 1); got != 0.5 {
		t.Errorf("sim(0,1) = %v, want 0.5 (2 common of 4 union)", got)
	}
	if got := m.Similarity(0, 2); got != 0 {
		t.Errorf("sim(0,2) = %v, want 0", got)
	}
	if got := m.Similarity(0, 3); got != 0 {
		t.Errorf("sim with empty profile = %v, want 0", got)
	}
	if got := m.Similarity(0, 0); got != 1 {
		t.Errorf("self similarity = %v, want 1", got)
	}
	if !m.Match(0, 1) || m.Match(0, 2) {
		t.Error("Match threshold misapplied")
	}
}

func TestJaccardSymmetry(t *testing.T) {
	c := paperexample.Collection()
	m := NewJaccardMatcher(c, 0.2)
	for a := entity.ID(0); int(a) < c.Size(); a++ {
		for b := a + 1; int(b) < c.Size(); b++ {
			if m.Similarity(a, b) != m.Similarity(b, a) {
				t.Fatalf("similarity not symmetric for (%d,%d)", a, b)
			}
		}
	}
}

func TestJaccardSeparatesDuplicatesOnExample(t *testing.T) {
	c := paperexample.Collection()
	m := NewJaccardMatcher(c, 0)
	gt := paperexample.GroundTruth()
	// Every duplicate pair must be more similar than the average
	// non-duplicate pair.
	var dupSum, nonSum float64
	var dupN, nonN int
	for a := entity.ID(0); int(a) < c.Size(); a++ {
		for b := a + 1; int(b) < c.Size(); b++ {
			s := m.Similarity(a, b)
			if gt.Contains(a, b) {
				dupSum += s
				dupN++
			} else {
				nonSum += s
				nonN++
			}
		}
	}
	if dupSum/float64(dupN) <= nonSum/float64(nonN) {
		t.Fatalf("duplicates (%v) not more similar than non-duplicates (%v)",
			dupSum/float64(dupN), nonSum/float64(nonN))
	}
}

func TestCluster(t *testing.T) {
	got := Cluster(6, []entity.Pair{
		{A: 0, B: 1},
		{A: 1, B: 2}, // transitive: {0,1,2}
		{A: 4, B: 5},
	})
	want := [][]entity.ID{{0, 1, 2}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Cluster = %v, want %v", got, want)
	}
}

func TestClusterNoMatches(t *testing.T) {
	if got := Cluster(3, nil); len(got) != 0 {
		t.Fatalf("Cluster with no matches = %v", got)
	}
}

func TestClusterDeterministicOrder(t *testing.T) {
	a := Cluster(8, []entity.Pair{{A: 6, B: 7}, {A: 0, B: 3}, {A: 1, B: 2}})
	b := Cluster(8, []entity.Pair{{A: 1, B: 2}, {A: 6, B: 7}, {A: 0, B: 3}})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cluster output depends on match order")
	}
}

func TestCosineMatcher(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewDirty([]entity.Profile{
		mk("a a a b"), // freq a:3 b:1
		mk("a b"),     // freq a:1 b:1
		mk("x y"),
		mk(""),
	})
	m := NewCosineMatcher(c, 0.5)
	// cos = (3+1) / (sqrt(10)*sqrt(2)) = 4/4.472 ≈ 0.894
	if got := m.Similarity(0, 1); got < 0.89 || got > 0.90 {
		t.Errorf("cos(0,1) = %v, want ≈0.894", got)
	}
	if m.Similarity(0, 2) != 0 || m.Similarity(0, 3) != 0 {
		t.Error("disjoint or empty profiles must score 0")
	}
	if m.Similarity(1, 1) < 0.999 {
		t.Error("self-similarity must be 1")
	}
	if !m.Match(0, 1) || m.Match(0, 2) {
		t.Error("threshold misapplied")
	}
}

func TestOverlapMatcher(t *testing.T) {
	mk := func(value string) entity.Profile {
		var p entity.Profile
		p.Add("v", value)
		return p
	}
	c := entity.NewDirty([]entity.Profile{
		mk("a b"),                 // terse record
		mk("a b c d e f g h i j"), // verbose record containing it
		mk("z"),
	})
	m := NewOverlapMatcher(c, 0.9)
	// Overlap = 2 / min(2, 10) = 1.0 even though Jaccard is only 0.2.
	if got := m.Similarity(0, 1); got != 1.0 {
		t.Errorf("overlap(0,1) = %v, want 1.0", got)
	}
	jm := NewJaccardMatcher(c, 0)
	if jm.Similarity(0, 1) >= 0.5 {
		t.Error("test premise broken: Jaccard should be low here")
	}
	if m.Similarity(0, 2) != 0 {
		t.Error("disjoint overlap must be 0")
	}
	if !m.Match(0, 1) {
		t.Error("threshold misapplied")
	}
}

func TestMatchersAreSymmetric(t *testing.T) {
	c := paperexample.Collection()
	cos := NewCosineMatcher(c, 0)
	ov := NewOverlapMatcher(c, 0)
	for a := entity.ID(0); int(a) < c.Size(); a++ {
		for b := a + 1; int(b) < c.Size(); b++ {
			if cos.Similarity(a, b) != cos.Similarity(b, a) {
				t.Fatalf("cosine asymmetric at (%d,%d)", a, b)
			}
			if ov.Similarity(a, b) != ov.Similarity(b, a) {
				t.Fatalf("overlap asymmetric at (%d,%d)", a, b)
			}
		}
	}
}
