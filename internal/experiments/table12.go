package experiments

import (
	"time"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// Table2Row holds one dataset's technical characteristics (paper Table 2).
type Table2Row struct {
	Name       string
	Entities1  int // |E1| (or |E| for Dirty ER)
	Entities2  int // |E2| (0 for Dirty ER)
	Duplicates int // |D(E)|
	Names      int // |N| distinct attribute names
	Pairs      int // |P| name-value pairs
	MeanPairs  float64
	BruteForce int64 // ‖E‖
	RTime      string
}

// Table2 reports the dataset characteristics.
func (s *Suite) Table2() []Table2Row {
	var rows []Table2Row
	s.printf("\n=== Table 2: Technical characteristics of the entity collections ===\n")
	s.printf("%-5s %9s %9s %9s %7s %10s %6s %12s %10s\n",
		"", "|E1|", "|E2|", "|D(E)|", "|N|", "|P|", "|p̄|", "‖E‖", "RT(E)")
	for _, p := range s.Datasets() {
		c := p.Dataset.Collection
		pairs, names := c.NamePairs(0, c.Size())
		n1, n2 := c.Split, c.Size()-c.Split
		if c.Task == entity.Dirty {
			n1, n2 = c.Size(), 0
		}
		row := Table2Row{
			Name:       p.Dataset.Name,
			Entities1:  n1,
			Entities2:  n2,
			Duplicates: p.Dataset.GroundTruth.Size(),
			Names:      names,
			Pairs:      pairs,
			MeanPairs:  float64(pairs) / float64(c.Size()),
			BruteForce: c.BruteForceComparisons(),
		}
		row.RTime = dur(p.ResolutionTime(row.BruteForce, 0))
		rows = append(rows, row)
		s.printf("%-5s %9d %9d %9d %7d %10s %6.1f %12s %10s\n",
			row.Name, row.Entities1, row.Entities2, row.Duplicates,
			row.Names, sci(int64(row.Pairs)), row.MeanPairs,
			sci(row.BruteForce), row.RTime)
	}
	return rows
}

// Table1Row holds one block collection's statistics (paper Table 1).
type Table1Row struct {
	Name        string
	Blocks      int     // |B|
	Comparisons int64   // ‖B‖
	BPE         float64 // Σ|b| / |E|
	PC, PQ, RR  float64
	GraphOrder  int    // |VB|
	GraphSize   int64  // |EB|
	OTime       string // overhead of deriving the collection
	RTime       string // OTime + matching over ‖B‖
}

// Table1 reports the original block collections (a) and the ones
// restructured by Block Filtering with r=0.80 (b).
func (s *Suite) Table1() (original, filtered []Table1Row) {
	s.printf("\n=== Table 1(a): Original block collections (Token Blocking + Block Purging) ===\n")
	s.table1Header()
	for _, p := range s.Datasets() {
		row := s.table1Row(p, p.Original, p.Dataset.Collection.BruteForceComparisons(), p.BlockingTime)
		original = append(original, row)
		s.table1Print(row)
	}
	s.printf("\n=== Table 1(b): After Block Filtering (r=%.2f) ===\n", FilterRatio)
	s.table1Header()
	for _, p := range s.Datasets() {
		row := s.table1Row(p, p.Filtered, p.Original.Comparisons(), p.BlockingTime+p.FilteringTime)
		filtered = append(filtered, row)
		s.table1Print(row)
	}
	return original, filtered
}

func (s *Suite) table1Header() {
	s.printf("%-5s %8s %10s %7s %7s %10s %7s %9s %10s %8s %9s\n",
		"", "|B|", "‖B‖", "BPE", "PC", "PQ", "RR", "|VB|", "|EB|", "OTime", "RTime")
}

func (s *Suite) table1Row(p *Prepared, c *block.Collection, baseline int64, overhead time.Duration) Table1Row {
	rep := p.EvaluateBlockCollection(c, baseline)
	g := core.NewGraph(c, core.CBS)
	row := Table1Row{
		Name:        p.Dataset.Name,
		Blocks:      c.Len(),
		Comparisons: c.Comparisons(),
		BPE:         c.BPE(),
		PC:          rep.PC(),
		PQ:          rep.PQ(),
		RR:          rep.RR(),
		GraphOrder:  g.NumNodes(),
		GraphSize:   g.NumEdges(),
		OTime:       dur(overhead),
		RTime:       dur(p.ResolutionTime(c.Comparisons(), overhead)),
	}
	return row
}

func (s *Suite) table1Print(r Table1Row) {
	s.printf("%-5s %8d %10s %7.2f %7.3f %10.2e %7.3f %9d %10s %8s %9s\n",
		r.Name, r.Blocks, sci(r.Comparisons), r.BPE, r.PC, r.PQ, r.RR,
		r.GraphOrder, sci(r.GraphSize), r.OTime, r.RTime)
}
