package incremental

import (
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/paperexample"
)

// TestPeekMatchesAddWithoutMutation: Peek returns exactly the candidates
// Add would, and leaves the index untouched — IDs, blocks, size.
func TestPeekMatchesAddWithoutMutation(t *testing.T) {
	for _, scheme := range []core.Scheme{core.ARCS, core.CBS, core.ECBS, core.JS} {
		for _, k := range []int{0, 3} {
			r, err := NewResolver(Config{Scheme: scheme, K: k})
			if err != nil {
				t.Fatal(err)
			}
			profiles := paperexample.Collection().Profiles
			r.AddBatch(profiles[:4])

			sizeBefore := r.Size()
			blocksBefore := len(r.blocks)
			peeked, err := r.Peek(profiles[4])
			if err != nil {
				t.Fatal(err)
			}
			if r.Size() != sizeBefore || len(r.blocks) != blocksBefore {
				t.Fatalf("scheme %v: Peek mutated the index", scheme)
			}
			// Peek again: idempotent.
			if again, _ := r.Peek(profiles[4]); !reflect.DeepEqual(again, peeked) {
				t.Fatalf("scheme %v: Peek not idempotent", scheme)
			}
			_, added := r.Add(profiles[4])
			if !reflect.DeepEqual(peeked, added) {
				t.Fatalf("scheme %v k=%d: Peek = %v, Add = %v", scheme, k, peeked, added)
			}
		}
	}
}
