// Command experiments reproduces the paper's evaluation (§6): every table
// and figure, on the synthetic benchmark datasets, at a configurable scale.
//
// Usage:
//
//	experiments [-scale 0.5] [-only table3] [-list]
//
// The -only flag accepts: table1, table2, table3, table4, table5, table6,
// figure10. Without it, everything runs in the paper's order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"metablocking/internal/experiments"
	"metablocking/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale multiplier (1.0 = full laptop scale)")
	only := flag.String("only", "", "run a single experiment (table1..table6, figure10)")
	list := flag.Bool("list", false, "list available experiments and exit")
	csvDir := flag.String("csv", "", "also write per-table CSV files into this directory")
	workers := flag.Int("workers", -1, "worker goroutines for dataset preparation (-1 = all CPUs, 0 = serial)")
	metrics := flag.Bool("metrics", false, "print the aggregated pipeline counter table to stderr on exit")
	pprofAddr := flag.String("pprof", "", "serve expvar and net/http/pprof on this address while the suite runs")
	flag.Parse()

	var reg *obs.Metrics
	if *metrics || *pprofAddr != "" {
		reg = obs.NewMetrics()
	}
	if *pprofAddr != "" {
		srv, err := obs.ServeDebug(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", *pprofAddr)
	}

	if *list {
		fmt.Println("table1   block collections before/after Block Filtering")
		fmt.Println("table2   dataset characteristics")
		fmt.Println("figure10 Block Filtering ratio sweep (D2C, D2D)")
		fmt.Println("table3   CEP/CNP/WEP/WNP before/after Block Filtering (Alg. 2 weighting)")
		fmt.Println("table5   OTime with Optimized Edge Weighting (Alg. 3)")
		fmt.Println("table4   Redefined and Reciprocal CNP/WNP")
		fmt.Println("table6   baselines: Graph-free Meta-blocking, Iterative Blocking")
		fmt.Println("extensions  supervised meta-blocking, progressive recall, parallel speedup")
		fmt.Println("schemes     per-weighting-scheme breakdown of the recommended configurations")
		fmt.Println("blocking    comparison of all ten blocking methods")
		return
	}

	s := experiments.NewSuite(*scale, os.Stdout)
	s.Workers = *workers
	s.Metrics = reg
	printMetrics := func() {
		if *metrics {
			fmt.Fprint(os.Stderr, reg.Snapshot().Table())
		}
	}
	fmt.Printf("Enhanced Meta-blocking experiment suite (scale %.2f)\n", *scale)
	start := time.Now()
	if *csvDir != "" {
		if err := s.WriteCSVReports(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV reports written to %s\n", *csvDir)
		fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
		printMetrics()
		return
	}
	switch *only {
	case "":
		s.RunAll()
	case "table1":
		s.Table1()
	case "table2":
		s.Table2()
	case "table3":
		s.Table3()
	case "table4":
		s.Table4()
	case "table5":
		s.Table5()
	case "table6":
		s.Table6()
	case "figure10":
		s.Figure10()
	case "extensions":
		s.Extensions()
	case "blocking":
		s.BlockingMethods()
	case "schemes":
		s.SchemeBreakdown()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *only)
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
	printMetrics()
}
