package main

import (
	"bufio"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	mb "metablocking"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadProfilesDirty(t *testing.T) {
	path := writeFile(t, "p.csv", `id,source,attribute,value
0,1,name,Jack Miller
0,1,job,seller
1,1,name,Erick Green
`)
	c, err := readProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.Task.String() != "Dirty ER" {
		t.Fatalf("Task = %v", c.Task)
	}
	if len(c.Profile(0).Attributes) != 2 {
		t.Fatalf("profile 0 attrs = %d", len(c.Profile(0).Attributes))
	}
}

func TestReadProfilesCleanClean(t *testing.T) {
	path := writeFile(t, "p.csv", `id,source,attribute,value
0,1,name,a
1,2,name,b
2,2,name,c
`)
	c, err := readProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Task.String() != "Clean-Clean ER" || c.Split != 1 || c.Size() != 3 {
		t.Fatalf("Task=%v Split=%d Size=%d", c.Task, c.Split, c.Size())
	}
}

func TestReadProfilesErrors(t *testing.T) {
	for name, content := range map[string]string{
		"bad id":        "x,1,a,v\n",
		"bad source":    "0,3,a,v\n",
		"mixed sources": "0,1,a,v\n0,2,b,w\n",
		"empty":         "id,source,attribute,value\n",
	} {
		path := writeFile(t, "p.csv", content)
		if _, err := readProfiles(path); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
	if _, err := readProfiles("/nonexistent/file.csv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadTruth(t *testing.T) {
	path := writeFile(t, "t.csv", "0,5\n1,6\n")
	gt, err := readTruth(path)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != 2 || !gt.Contains(5, 0) {
		t.Fatalf("ground truth wrong: %v", gt.Pairs())
	}
	bad := writeFile(t, "bad.csv", "x,y\n")
	if _, err := readTruth(bad); err == nil {
		t.Error("bad truth accepted")
	}
}

func TestWritePairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := writePairs(path, []mb.Pair{{A: 1, B: 2}, {A: 3, B: 4}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1,2\n3,4\n" {
		t.Fatalf("output = %q", data)
	}
}

func TestParsers(t *testing.T) {
	if _, err := parseDataset("D2C"); err != nil {
		t.Error(err)
	}
	if _, err := parseDataset("nope"); err == nil {
		t.Error("bad dataset accepted")
	}
	for _, s := range []string{"token", "qgrams", "suffix", "attrcluster"} {
		if _, err := parseBlocking(s); err != nil {
			t.Errorf("blocking %q: %v", s, err)
		}
	}
	if _, err := parseBlocking("standard?"); err == nil {
		t.Error("bad blocking accepted")
	}
	for _, s := range []string{"arcs", "cbs", "ecbs", "js", "ejs"} {
		if _, err := parseScheme(s); err != nil {
			t.Errorf("scheme %q: %v", s, err)
		}
	}
	if _, err := parseScheme("xx"); err == nil {
		t.Error("bad scheme accepted")
	}
	for _, s := range []string{"cep", "cnp", "wep", "wnp", "redefined-cnp", "reciprocal-cnp", "redefined-wnp", "reciprocal-wnp"} {
		if _, err := parseAlgorithm(s); err != nil {
			t.Errorf("algorithm %q: %v", s, err)
		}
	}
	if _, err := parseAlgorithm("xx"); err == nil {
		t.Error("bad algorithm accepted")
	}
}

// tableValue extracts one named counter/gauge value from the -metrics
// table rendering.
func tableValue(t *testing.T, table, name string) int64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(table))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("row %q: %v", sc.Text(), err)
			}
			return v
		}
	}
	t.Fatalf("table has no row %q:\n%s", name, table)
	return 0
}

// TestMetricsReport verifies the -metrics table agrees exactly with the
// run's Result: the filter-stage comparison count is InputComparisons and
// the retained-pair counter is len(Pairs).
func TestMetricsReport(t *testing.T) {
	ds := mb.GenerateDataset(mb.D1D, 0.1)
	res, err := mb.Pipeline{FilterRatio: 0.8, Scheme: mb.JS, Algorithm: mb.ReciprocalWNP, Workers: -1}.
		RunContext(context.Background(), ds.Collection, mb.WithMetrics(mb.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	table := metricsReport(res)
	if got := tableValue(t, table, "filter.comparisons"); got != res.InputComparisons {
		t.Errorf("filter.comparisons = %d, want InputComparisons %d", got, res.InputComparisons)
	}
	if got := tableValue(t, table, "prune.pairs"); got != int64(len(res.Pairs)) {
		t.Errorf("prune.pairs = %d, want len(Pairs) %d", got, len(res.Pairs))
	}
	for _, name := range []string{"blocking.blocks", "blocking.comparisons", "purge.blocks",
		"purge.comparisons", "filter.blocks", "graph.nodes", "prune.edges_weighted"} {
		tableValue(t, table, name) // must be present
	}
}

// TestProgressPrinter exercises the -progress line format and throttling.
func TestProgressPrinter(t *testing.T) {
	var b strings.Builder
	fn := progressPrinter(&b)
	fn("blocking", 512, 1024)
	fn("blocking", 256, 1024) // out-of-order tick: dropped
	fn("blocking", 600, 1024) // within throttle window: dropped
	fn("blocking", 1024, 1024)
	want := "blocking: 512/1024\nblocking: 1024/1024\n"
	if b.String() != want {
		t.Errorf("progress output %q, want %q", b.String(), want)
	}
}

func TestLoadInputValidation(t *testing.T) {
	if _, _, err := loadInput("", "", "", 1); err == nil {
		t.Error("no input accepted")
	}
	if _, _, err := loadInput("a.csv", "", "D1C", 1); err == nil {
		t.Error("both inputs accepted")
	}
	c, gt, err := loadInput("", "", "D1C", 0.02)
	if err != nil || c == nil || gt == nil {
		t.Fatalf("dataset load failed: %v", err)
	}
}
