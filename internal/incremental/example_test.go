package incremental_test

import (
	"fmt"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// Example streams three profiles: the third is a noisy duplicate of the
// first and surfaces as its top candidate on arrival.
func Example() {
	resolver, err := incremental.NewResolver(incremental.Config{
		Scheme: core.JS,
		K:      3,
	})
	if err != nil {
		panic(err)
	}

	add := func(name, value string) (entity.ID, []incremental.Candidate) {
		var p entity.Profile
		p.Add(name, value)
		return resolver.Add(p)
	}

	add("name", "Jack Lloyd Miller")
	add("name", "Erick Green")
	id, candidates := add("fullname", "Jack Miller")

	fmt.Printf("profile %d has %d candidate(s)\n", id, len(candidates))
	fmt.Printf("top candidate: profile %d (weight %.2f)\n",
		candidates[0].ID, candidates[0].Weight)
	// Output:
	// profile 2 has 1 candidate(s)
	// top candidate: profile 0 (weight 0.67)
}
