// The incremental frontier iterator: best-first emission without the full
// pre-sort. The original Scheduler materialized every comparison and paid
// an O(n log n) descending sort before the first emission — fine offline,
// wasteful online, where a budgeted consumer typically executes a small
// prefix of the stream and the serving path wants the first batch on the
// wire as early as possible. A Frontier heapifies the comparisons in O(n)
// and pops them lazily, so a budget of k comparisons costs O(n + k log n)
// instead of the full sort, while emitting the exact same deterministic
// order (the ranking is a strict total order: weight descending, then the
// canonical pair ascending — pairs are distinct).
package progressive

// frontierOutranks is the emission ranking: weight descending, ties broken
// on the canonical pair so schedules are deterministic. It is the same
// total order the pre-sort Scheduler used.
func frontierOutranks(a, b Comparison) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.Pair.A != b.Pair.A {
		return a.Pair.A < b.Pair.A
	}
	return a.Pair.B < b.Pair.B
}

// Frontier serves comparisons best-first from a binary max-heap under the
// emission ranking. The zero value is an empty frontier; build a populated
// one with NewFrontier. Not safe for concurrent use.
type Frontier struct {
	heap []Comparison
}

// NewFrontier takes ownership of cs and heapifies it in O(n). The caller
// must not reuse the slice.
func NewFrontier(cs []Comparison) *Frontier {
	f := &Frontier{heap: cs}
	for i := len(cs)/2 - 1; i >= 0; i-- {
		f.down(i)
	}
	return f
}

// Len returns how many comparisons have not been emitted yet.
func (f *Frontier) Len() int { return len(f.heap) }

// Peek returns the current frontier — the heaviest unemitted comparison —
// without consuming it, or ok=false when exhausted. Its weight is the
// resumption point a budget-aware consumer records when it stops.
func (f *Frontier) Peek() (Comparison, bool) {
	if len(f.heap) == 0 {
		return Comparison{}, false
	}
	return f.heap[0], true
}

// Next pops the heaviest unemitted comparison, or ok=false when exhausted.
// Successive pops emit the exact descending order the pre-sort produced.
func (f *Frontier) Next() (Comparison, bool) {
	n := len(f.heap)
	if n == 0 {
		return Comparison{}, false
	}
	top := f.heap[0]
	f.heap[0] = f.heap[n-1]
	f.heap = f.heap[:n-1]
	f.down(0)
	return top, true
}

func (f *Frontier) down(i int) {
	n := len(f.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && frontierOutranks(f.heap[r], f.heap[m]) {
			m = r
		}
		if !frontierOutranks(f.heap[m], f.heap[i]) {
			return
		}
		f.heap[i], f.heap[m] = f.heap[m], f.heap[i]
		i = m
	}
}
