// The budget-enforcing executor: walks a resolve's ranked candidates —
// already in the strict (weight descending, ID ascending) emission order
// — and flushes them in batches until the stream drains or a budget axis
// exhausts. Exhaustion is only ever declared AFTER at least one batch
// was flushed, so a budgeted request always gets the best prefix its
// budget paid for, never a bare timeout.
package budget

import (
	"sort"
	"time"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// DefaultBatch is the flush granularity when Emitter.Batch is unset.
const DefaultBatch = 16

// Stop reasons reported in Outcome.Reason and the stream's terminal
// frame.
const (
	// ReasonDeadline: the wall-clock budget ran out with candidates
	// remaining (exhaustion — a cursor is issued).
	ReasonDeadline = "deadline"
	// ReasonMaxComparisons: the comparison cap was reached with
	// candidates remaining (exhaustion — a cursor is issued).
	ReasonMaxComparisons = "max_comparisons"
	// ReasonMinConfidence: the weight frontier fell below the requested
	// floor (completion — the client asked for nothing weaker).
	ReasonMinConfidence = "min_confidence"
	// ReasonDegraded: the circuit breaker's zero-budget tier — one
	// Peek-derived batch, cursor-less.
	ReasonDegraded = "degraded"
)

// Outcome reports how an emission ended.
type Outcome struct {
	// Emitted counts comparisons flushed by this emission (not cumulative
	// across resumes).
	Emitted int
	// Exhausted reports that a budget axis stopped the stream with
	// candidates remaining — the caller must issue a cursor.
	Exhausted bool
	// Reason is one of the Reason constants, or "" when the stream
	// drained completely.
	Reason string
	// Last is the final emitted candidate (valid when Emitted > 0) — the
	// cursor's resume position.
	Last incremental.Candidate
	// Frontier is the weight of the first unemitted candidate (valid
	// when Exhausted).
	Frontier float64
}

// Emitter flushes ranked candidates in batches under a Contract. The
// zero value uses DefaultBatch and the real clock.
type Emitter struct {
	// Batch is the flush granularity: how many candidates clear the
	// frontier per flush.
	Batch int
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Emit streams cands (ranked weight-descending, ID-ascending) through
// flush under the contract, starting the wall-clock budget at start.
// The deadline is checked between batches — after the first flush, so
// even an already-expired budget delivers one batch. A flush error
// (client gone) aborts the emission and is returned as-is.
func (e *Emitter) Emit(cands []incremental.Candidate, c Contract, start time.Time, flush func([]incremental.Candidate) error) (Outcome, error) {
	batch := e.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	now := e.Now
	if now == nil {
		now = time.Now
	}
	var deadline time.Time
	if c.Budget > 0 {
		deadline = start.Add(c.Budget)
	}

	// The confidence floor truncates the stream outright: candidates are
	// weight-descending, so everything past the first one below the floor
	// is below it too. Reaching the floor is completion, not exhaustion.
	end := len(cands)
	byConfidence := false
	if c.MinConfidence > 0 {
		end = sort.Search(end, func(i int) bool { return cands[i].Weight < c.MinConfidence })
		byConfidence = end < len(cands)
	}
	// The comparison cap bounds emission below the floor cut.
	allow := end
	if c.MaxComparisons > 0 && c.MaxComparisons < allow {
		allow = c.MaxComparisons
	}

	var out Outcome
	for i := 0; i < allow; {
		j := i + batch
		if j > allow {
			j = allow
		}
		if err := flush(cands[i:j]); err != nil {
			return out, err
		}
		out.Emitted += j - i
		out.Last = cands[j-1]
		i = j
		if i < allow && !deadline.IsZero() && !now().Before(deadline) {
			out.Exhausted = true
			out.Reason = ReasonDeadline
			out.Frontier = cands[i].Weight
			return out, nil
		}
	}
	if out.Emitted < end {
		// Stopped by the comparison cap with candidates left above the
		// floor.
		out.Exhausted = true
		out.Reason = ReasonMaxComparisons
		out.Frontier = cands[out.Emitted].Weight
		return out, nil
	}
	if byConfidence {
		out.Reason = ReasonMinConfidence
	}
	return out, nil
}

// SkipAfter returns the suffix of cands strictly after the resume
// position (w, id) in the emission order — the remainder a cursor
// continues with. Binary search over the sorted stream.
func SkipAfter(cands []incremental.Candidate, w float64, id entity.ID) []incremental.Candidate {
	i := sort.Search(len(cands), func(i int) bool {
		c := cands[i]
		return c.Weight < w || (c.Weight == w && c.ID > id)
	})
	return cands[i:]
}
