package core

import "metablocking/internal/entity"

// weightedEdge is an edge candidate kept by a bounded top-K selection.
type weightedEdge struct {
	w    float64
	i, j entity.ID
}

// edgeHeap is a bounded min-heap over edge weights: offering more than cap
// edges evicts the lightest, leaving the top-cap weighted edges. It is the
// "sorted stack" of Algorithm 4 and the global top-K store of CEP.
type edgeHeap struct {
	items []weightedEdge
	cap   int
}

func newEdgeHeap(capacity int) *edgeHeap {
	return &edgeHeap{items: make([]weightedEdge, 0, capacity), cap: capacity}
}

func (h *edgeHeap) len() int { return len(h.items) }

func (h *edgeHeap) reset() { h.items = h.items[:0] }

// beats is the canonical total order on edges: heavier wins; ties break on
// the lexicographically smaller canonical pair. Top-K selection under a
// total order is independent of traversal order, so CEP and CNP return the
// same sets whichever edge-weighting implementation enumerated the edges.
func (e weightedEdge) beats(o weightedEdge) bool {
	if e.w != o.w {
		return e.w > o.w
	}
	a, b := e.canonical(), o.canonical()
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

func (e weightedEdge) canonical() entity.Pair { return entity.MakePair(e.i, e.j) }

// offer inserts the edge if the heap is not full, or replaces the current
// minimum when the new edge beats it under the canonical total order.
func (h *edgeHeap) offer(w float64, i, j entity.ID) {
	e := weightedEdge{w: w, i: i, j: j}
	if len(h.items) < h.cap {
		h.items = append(h.items, e)
		h.up(len(h.items) - 1)
		return
	}
	if h.cap == 0 || !e.beats(h.items[0]) {
		return
	}
	h.items[0] = e
	h.down(0)
}

// min returns the smallest retained weight, or 0 when empty.
func (h *edgeHeap) min() float64 {
	if len(h.items) == 0 {
		return 0
	}
	return h.items[0].w
}

func (h *edgeHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[parent].beats(h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *edgeHeap) down(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		weakest := i
		if left < n && h.items[weakest].beats(h.items[left]) {
			weakest = left
		}
		if right < n && h.items[weakest].beats(h.items[right]) {
			weakest = right
		}
		if weakest == i {
			return
		}
		h.items[i], h.items[weakest] = h.items[weakest], h.items[i]
		i = weakest
	}
}
