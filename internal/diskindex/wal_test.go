package diskindex

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

// quiesce waits until every shard actor is idle — the post-seal
// compaction runs before the actor's next op, so a Stats round-trip
// guarantees no background work will touch the directory after the
// test "crashes" (abandons the group without closing).
func quiesce(g *shard.Group) { g.Stats() }

// TestWALCrashReplayMatchesSerial is the tentpole claim: with the WAL
// on, a SIGKILL loses nothing acknowledged. For every scheme × shard
// count the group is crashed (abandoned un-closed, un-synced — the
// kernel has the appended log bytes, the process never fsynced them)
// at several points between automatic checkpoints; each reopen must
// replay the tail to the exact acknowledged state — size, canonical
// snapshot, Peek and every subsequent resolve bit-identical to a
// serial resolver that never crashed and never rolled back.
func TestWALCrashReplayMatchesSerial(t *testing.T) {
	profiles := testProfiles(t, 120)
	// Crash after these many acknowledged resolves. The ~4 KiB memtable
	// budget checkpoints every handful of arrivals, so the cuts land at
	// varied offsets past a rotation: some with short tails, some long.
	crashes := []int{1, 37, 38, 90}
	for _, scheme := range []core.Scheme{core.ARCS, core.CBS, core.ECBS, core.JS} {
		rcfg := incremental.Config{Scheme: scheme, K: 3, MaxBlockSize: 40}
		for _, shards := range []int{1, 4} {
			serial, err := incremental.NewResolver(rcfg)
			if err != nil {
				t.Fatal(err)
			}
			root := t.TempDir()
			g := openDiskGroup(t, root, shards, rcfg, 4<<10, 2, true)
			next := 0
			for _, cut := range crashes {
				for ; next < cut; next++ {
					want, _ := serial.Resolve(profiles[next])
					got, err := g.Resolve(profiles[next])
					if err != nil {
						t.Fatalf("scheme %v shards=%d: resolve %d: %v", scheme, shards, next, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("scheme %v shards=%d: arrival %d diverged", scheme, shards, next)
					}
				}
				quiesce(g)
				// Crash: abandon without Close — no final sync, no seal.
				g = openDiskGroup(t, root, shards, rcfg, 4<<10, 2, true)
				if g.Size() != next {
					t.Fatalf("scheme %v shards=%d: crash at %d recovered size %d — an acknowledged write was lost",
						scheme, shards, next, g.Size())
				}
				if !reflect.DeepEqual(g.Snapshot(), serial.Snapshot()) {
					t.Fatalf("scheme %v shards=%d: crash at %d: replayed snapshot differs from the never-crashed oracle",
						scheme, shards, next)
				}
			}
			for ; next < len(profiles); next++ {
				want, _ := serial.Resolve(profiles[next])
				got, err := g.Resolve(profiles[next])
				if err != nil {
					t.Fatalf("scheme %v shards=%d: post-crash resolve %d: %v", scheme, shards, next, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scheme %v shards=%d: post-crash arrival %d diverged", scheme, shards, next)
				}
			}
			wantPeek, _ := serial.Peek(profiles[13])
			if gotPeek, err := g.Peek(profiles[13]); err != nil || !reflect.DeepEqual(gotPeek, wantPeek) {
				t.Fatalf("scheme %v shards=%d: Peek diverged after crashes (err %v)", scheme, shards, err)
			}
			if !reflect.DeepEqual(g.Snapshot(), serial.Snapshot()) {
				t.Fatalf("scheme %v shards=%d: final snapshot diverged after crashes", scheme, shards)
			}
			replayed := int64(0)
			for _, st := range g.Stats() {
				if st.Disk != nil {
					replayed += st.Disk.WalReplayed
				}
			}
			if replayed == 0 {
				t.Fatalf("scheme %v shards=%d: no records were replayed — the crash windows missed the WAL path", scheme, shards)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestWALAppendFaultConsumesNoID pins the failure atomicity of the
// logged commit: when the append fault fires, the resolve fails, no ID
// is consumed, and the immediate retry of the same profile succeeds
// with the answer the never-faulted oracle gives. A crash after the
// retry must recover the retried commit, not a ghost of the failed one.
func TestWALAppendFaultConsumesNoID(t *testing.T) {
	profiles := testProfiles(t, 40)
	rcfg := incremental.Config{Scheme: core.JS, K: 3, MaxBlockSize: 40}
	serial, err := incremental.NewResolver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	inj := fault.New(1)
	g := openDiskGroupFault(t, root, 2, rcfg, 0, 2, true, inj)
	for i, p := range profiles[:20] {
		want, _ := serial.Resolve(p)
		got, err := g.Resolve(p)
		if err != nil {
			t.Fatalf("resolve %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("arrival %d diverged", i)
		}
	}
	// Profile 20 homes on shard 20%2 = 0; fail exactly its WAL append.
	inj.Arm(shard.WalAppendSite(0), fault.Spec{Times: 1})
	if _, err := g.Resolve(profiles[20]); err == nil {
		t.Fatal("resolve succeeded despite armed WAL append fault")
	} else if !strings.Contains(err.Error(), "wal") && !strings.Contains(err.Error(), "injected") {
		t.Fatalf("unexpected error: %v", err)
	}
	if g.Size() != 20 {
		t.Fatalf("failed resolve consumed an ID: size %d, want 20", g.Size())
	}
	for i, p := range profiles[20:] {
		want, _ := serial.Resolve(p)
		got, err := g.Resolve(p)
		if err != nil {
			t.Fatalf("retry resolve %d: %v", 20+i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-fault arrival %d diverged from oracle", 20+i)
		}
	}
	quiesce(g)
	// Crash + reopen: replay must land on exactly the acknowledged run.
	g = openDiskGroup(t, root, 2, rcfg, 0, 2, true)
	if g.Size() != len(profiles) {
		t.Fatalf("recovered size %d, want %d", g.Size(), len(profiles))
	}
	if !reflect.DeepEqual(g.Snapshot(), serial.Snapshot()) {
		t.Fatal("replayed snapshot diverged from oracle after append-fault run")
	}
	g.Close()
}

// TestWALSyncFaultSurfacesError pins the group-commit barrier's error
// path: an armed sync fault makes Group.SyncWAL fail (the server turns
// that into failed replies), and a rotate fault fails the checkpoint
// without losing the already-committed one.
func TestWALSyncFaultSurfacesError(t *testing.T) {
	profiles := testProfiles(t, 30)
	rcfg := incremental.Config{Scheme: core.JS, K: 3, MaxBlockSize: 40}
	root := t.TempDir()
	inj := fault.New(1)
	g := openDiskGroupFault(t, root, 2, rcfg, 0, 100, true, inj)
	defer g.Close()
	for _, p := range profiles[:10] {
		if _, err := g.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(shard.WalSyncSite(0), fault.Spec{Times: 1})
	if err := g.SyncWAL(); err == nil {
		t.Fatal("SyncWAL succeeded despite armed fault")
	}
	if err := g.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL after fault drained: %v", err)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles[10:20] {
		if _, err := g.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	inj.Arm(shard.WalRotateSite(1), fault.Spec{Times: 1})
	if err := g.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded despite armed rotate fault")
	}
	if g.Checkpointed() != 1 {
		t.Fatalf("failed rotation moved the checkpoint: %d, want 1", g.Checkpointed())
	}
	// The group still serves and the next checkpoint succeeds.
	for _, p := range profiles[20:] {
		if _, err := g.Resolve(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after drained rotate fault: %v", err)
	}
}

// TestCorruptionMatrixWAL extends the corruption battery to the log
// files: with a non-empty tail on disk (30 checkpointed arrivals, 30
// logged-only), every truncation boundary and sampled bit-flip of
// every WAL file must recover — without error — to a consistent
// prefix of the acknowledged run: at least the checkpoint, at most
// everything, and exactly equal to the serial oracle at that length.
// Damage never yields a wrong answer, only a shorter tail.
func TestCorruptionMatrixWAL(t *testing.T) {
	profiles := testProfiles(t, 60)
	rcfg := incremental.Config{Scheme: core.JS, K: 4, MaxBlockSize: 40}
	const shards, ckptAt = 2, 30

	// Oracle snapshots at every arrival count.
	serial, err := incremental.NewResolver(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := []*incremental.Snapshot{serial.Snapshot()}
	for _, p := range profiles {
		serial.Resolve(p)
		snaps = append(snaps, serial.Snapshot())
	}

	golden := t.TempDir()
	g := openDiskGroup(t, golden, shards, rcfg, 0, 2, true)
	for i, p := range profiles {
		if _, err := g.Resolve(p); err != nil {
			t.Fatal(err)
		}
		if i == ckptAt-1 {
			if err := g.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	quiesce(g) // crash: abandon — the last 30 arrivals exist only in the WAL

	var wals []string
	for _, rel := range listFiles(t, golden) {
		if strings.Contains(rel, "wal-") {
			wals = append(wals, rel)
		}
	}
	if len(wals) < shards {
		t.Fatalf("golden layout has %d wal files, want at least %d", len(wals), shards)
	}

	check := func(dir, what string) {
		layout, err := store.RecoverDiskDir(dir, shards)
		if err != nil {
			t.Fatalf("%s: recovery errored: %v", what, err)
		}
		if layout.Checkpoint != 1 {
			layout.Close()
			t.Fatalf("%s: wal damage moved the checkpoint to %d", what, layout.Checkpoint)
		}
		layout.Close()
		snap, err := store.LoadDiskDir(dir)
		if err != nil {
			t.Fatalf("%s: load after recovery: %v", what, err)
		}
		n := len(snap.Profiles)
		if n < ckptAt || n > len(profiles) {
			t.Fatalf("%s: recovered %d profiles, want a prefix in [%d,%d]", what, n, ckptAt, len(profiles))
		}
		if !reflect.DeepEqual(snap, snaps[n]) {
			t.Fatalf("%s: recovered %d profiles but contents differ from the oracle at that length", what, n)
		}
	}

	check(golden, "undamaged")
	undamaged, err := store.LoadDiskDir(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(undamaged.Profiles) != len(profiles) {
		t.Fatalf("undamaged recovery replayed to %d profiles, want %d", len(undamaged.Profiles), len(profiles))
	}

	for _, rel := range wals {
		raw, err := os.ReadFile(filepath.Join(golden, rel))
		if err != nil {
			t.Fatal(err)
		}
		cuts := []int{0, 1, 8, 12, len(raw) / 2, len(raw) - 25, len(raw) - 12, len(raw) - 1}
		for _, cut := range cuts {
			if cut < 0 || cut >= len(raw) {
				continue
			}
			what := fmt.Sprintf("%s truncated to %d/%d", rel, cut, len(raw))
			dir := t.TempDir()
			copyDir(t, golden, dir)
			if err := os.WriteFile(filepath.Join(dir, rel), raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			check(dir, what)
		}
		for _, off := range []int{0, 7, 15, len(raw) / 3, len(raw) / 2, len(raw) - 5} {
			if off < 0 || off >= len(raw) {
				continue
			}
			what := fmt.Sprintf("%s bit-flipped at %d/%d", rel, off, len(raw))
			dir := t.TempDir()
			copyDir(t, golden, dir)
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x10
			if err := os.WriteFile(filepath.Join(dir, rel), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			check(dir, what)
		}
	}
	g.Close()
}
