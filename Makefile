GO ?= go

# FUZZTIME bounds each fuzz-smoke target; COVER_BASELINE is the minimum
# total statement coverage `make cover` accepts (the pre-harness figure,
# ratcheted up as coverage grows).
FUZZTIME ?= 30s
COVER_BASELINE ?= 88.0

.PHONY: check race cover fuzz-smoke serve-smoke chaos-smoke ci bench-parallel bench-serve

## check: vet, build and test everything (the tier-1 gate).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: run the packages with concurrency — including the root package's
## observability/cancellation tests — under the race detector.
race:
	$(GO) test -race . ./internal/core/... ./internal/block/... ./internal/blocking/... ./internal/obs/... ./internal/oracle/... ./internal/server/... ./internal/loadgen/... ./internal/fault/... ./internal/par/... ./internal/store/... ./cmd/serve

## cover: fail if total statement coverage drops below COVER_BASELINE.
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_BASELINE) \
		'/^total:/ { sub(/%/, "", $$3); printf "total coverage %s%% (baseline %s%%)\n", $$3, min; \
		if ($$3+0 < min+0) { print "coverage regressed below baseline"; exit 1 } }'

## fuzz-smoke: run every fuzz target for FUZZTIME each — the differential
## oracle comparators on mutated block collections, and the tokenizer.
fuzz-smoke:
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzDiffDirty$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzDiffClean$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/entity -run '^$$' -fuzz '^FuzzTokenize$$' -fuzztime $(FUZZTIME)

## serve-smoke: build cmd/serve, start it on a random port, resolve a
## profile over HTTP, assert /healthz + /metrics, SIGTERM-drain, exit 0.
serve-smoke:
	sh scripts/serve_smoke.sh

## chaos-smoke: SIGKILL the real binary mid-snapshot (fault-injected
## delay), restart on the surviving artifact, assert /readyz green and
## that a corrupted snapshot reload yields 422.
chaos-smoke:
	sh scripts/chaos_smoke.sh

## ci: what the GitHub Actions workflow runs.
ci: check race cover fuzz-smoke serve-smoke chaos-smoke

## bench-parallel: regenerate the worker-sweep numbers of
## results_parallel_scale0.5.txt (honest wall-clock depends on host cores).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchtime 5x .

## bench-serve: micro-bench the batched server resolve path (reports
## ns/op, allocs and the achieved profiles/batch).
bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkServerResolve' ./internal/server
