// Supervised meta-blocking: when a labelled sample of comparisons is
// available, a classifier over all co-occurrence features prunes the
// blocking graph more accurately than any single weighting scheme
// (paper §2, ref [23]).
//
// The example trains on a 5% edge sample of a synthetic benchmark and
// compares the classifier against the best unsupervised weight-based
// configuration.
//
//	go run ./examples/supervised
package main

import (
	"fmt"
	"log"

	mb "metablocking"
)

func main() {
	ds := mb.GenerateDataset(mb.D2C, 0.2)
	blocks := mb.BuildBlocks(ds.Collection, mb.TokenBlocking{}, 0.8)
	baseline := blocks.Comparisons()
	fmt.Printf("input: %d comparisons, %d true matches\n\n", baseline, ds.GroundTruth.Size())

	// Supervised: logistic regression over ARCS/CBS/ECBS/JS/degrees.
	sup, err := mb.RunSupervised(blocks, ds.GroundTruth, mb.SupervisedConfig{})
	if err != nil {
		log.Fatal(err)
	}
	supRep := mb.Evaluate(sup.Pairs, ds.GroundTruth, baseline)
	fmt.Printf("supervised (trained on %d labelled edges):\n", sup.TrainingEdges)
	fmt.Printf("  retained %d comparisons  PC=%.3f  PQ=%.4f  overhead=%v\n",
		len(sup.Pairs), supRep.PC(), supRep.PQ(), sup.OTime)
	fmt.Printf("  learned weights per feature:\n")
	for f, name := range [6]string{"ARCS", "CBS", "ECBS", "JS", "DegreeI", "DegreeJ"} {
		fmt.Printf("    %-8s %+.3f\n", name, sup.Model.Weights[f])
	}

	// Unsupervised reference: Reciprocal WNP with JS.
	res, err := mb.Pipeline{FilterRatio: 0.8, Scheme: mb.JS, Algorithm: mb.ReciprocalWNP}.Run(ds.Collection)
	if err != nil {
		log.Fatal(err)
	}
	rep := mb.Evaluate(res.Pairs, ds.GroundTruth, baseline)
	fmt.Printf("\nunsupervised Reciprocal WNP (JS):\n")
	fmt.Printf("  retained %d comparisons  PC=%.3f  PQ=%.4f  overhead=%v\n",
		len(res.Pairs), rep.PC(), rep.PQ(), res.OTime)
}
