#!/bin/sh
# serve_smoke.sh — end-to-end smoke test for cmd/serve, run by `make
# serve-smoke` (and CI): build the binary, start it on a random port,
# resolve a profile over HTTP, assert /healthz and /metrics, then check
# that SIGTERM drains gracefully with exit status 0.
set -eu

workdir="$(mktemp -d)"
log="$workdir/serve.log"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building cmd/serve"
go build -o "$workdir/serve" ./cmd/serve

"$workdir/serve" -addr 127.0.0.1:0 -scheme js -k 5 >"$log" 2>&1 &
pid=$!

# Wait for the listening line and extract the base URL.
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's/^serve: listening on \(http:\/\/[0-9.:]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died early:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "serve-smoke: server never announced its address:"; cat "$log"; exit 1; }
echo "serve-smoke: serving at $base"

curl -fsS "$base/healthz" | grep -q '^ok$' || { echo "serve-smoke: /healthz failed"; exit 1; }
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "serve-smoke: /readyz failed"; exit 1; }

first="$(curl -fsS -X POST -d '{"attributes":{"name":["jack miller"],"job":["car seller"]}}' "$base/v1/resolve")"
echo "$first" | grep -q '"id":0' || { echo "serve-smoke: first resolve: $first"; exit 1; }
second="$(curl -fsS -X POST -d '{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}' "$base/v1/resolve")"
echo "$second" | grep -q '"candidates":\[{"id":0,' || { echo "serve-smoke: no candidate: $second"; exit 1; }

# Persist the serving index and hot-swap it back in — the admin loop.
snap="$workdir/smoke.snap"
saved="$(curl -fsS -X POST -d "{\"path\":\"$snap\"}" "$base/v1/admin/snapshot")"
echo "$saved" | grep -q '"profiles":2' || { echo "serve-smoke: snapshot: $saved"; exit 1; }
reloaded="$(curl -fsS -X POST -d "{\"path\":\"$snap\"}" "$base/v1/admin/reload")"
echo "$reloaded" | grep -q '"profiles":2' || { echo "serve-smoke: reload: $reloaded"; exit 1; }

curl -fsS "$base/metrics" | grep -q 'server\.accepted *2' || { echo "serve-smoke: /metrics missing counters"; curl -fsS "$base/metrics"; exit 1; }

echo "serve-smoke: sending SIGTERM"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "serve-smoke: exit status $status after SIGTERM:"; cat "$log"; exit 1; }
grep -q 'drained, 2 profiles resolved' "$log" || { echo "serve-smoke: no graceful drain in log:"; cat "$log"; exit 1; }

echo "serve-smoke: OK"
