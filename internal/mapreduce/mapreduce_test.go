package mapreduce

import (
	"sort"
	"strings"
	"testing"
)

type wordCount struct {
	word  string
	count int
}

func runWordCount(t *testing.T, docs []string, cfg Config) []wordCount {
	t.Helper()
	out := Run(docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(word string, counts []int, emit func(wordCount)) {
			total := 0
			for _, c := range counts {
				total += c
			}
			emit(wordCount{word: word, count: total})
		},
		cfg)
	sort.Slice(out, func(i, j int) bool { return out[i].word < out[j].word })
	return out
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	want := []wordCount{{"a", 3}, {"b", 2}, {"c", 1}}
	for _, cfg := range []Config{
		{},
		{Mappers: 1, Partitions: 1},
		{Mappers: 4, Partitions: 3},
		{Mappers: 16, Partitions: 7},
	} {
		got := runWordCount(t, docs, cfg)
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: got %v", cfg, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v: got %v, want %v", cfg, got, want)
			}
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	got := runWordCount(t, nil, Config{})
	if len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestMoreMappersThanInputs(t *testing.T) {
	got := runWordCount(t, []string{"solo"}, Config{Mappers: 8, Partitions: 8})
	if len(got) != 1 || got[0] != (wordCount{"solo", 1}) {
		t.Fatalf("got %v", got)
	}
}

// TestLargeShuffle checks correctness under real concurrency: many inputs,
// many keys, hash-partitioned across mappers and reducers.
func TestLargeShuffle(t *testing.T) {
	inputs := make([]int, 5000)
	for i := range inputs {
		inputs[i] = i
	}
	type sums struct {
		key int
		sum int
	}
	out := Run(inputs,
		func(n int, emit func(int, int)) {
			emit(n%97, n) // 97 keys
		},
		func(key int, values []int, emit func(sums)) {
			total := 0
			for _, v := range values {
				total += v
			}
			emit(sums{key: key, sum: total})
		},
		Config{Mappers: 8, Partitions: 5})
	if len(out) != 97 {
		t.Fatalf("keys = %d, want 97", len(out))
	}
	var grand int
	for _, s := range out {
		grand += s.sum
	}
	if want := 5000 * 4999 / 2; grand != want {
		t.Fatalf("grand sum = %d, want %d", grand, want)
	}
}
