package metablocking

import (
	"testing"
)

func exampleCollection() (*Collection, *GroundTruth) {
	mk := func(pairs ...string) Profile {
		var p Profile
		for i := 0; i+1 < len(pairs); i += 2 {
			p.Add(pairs[i], pairs[i+1])
		}
		return p
	}
	c := NewDirty([]Profile{
		mk("FullName", "Jack Lloyd Miller", "job", "autoseller"),
		mk("name", "Erick Green", "profession", "vehicle vendor"),
		mk("fullname", "Jack Miller", "Work", "car vendor-seller"),
		mk("name", "Erick Lloyd Green", "profession", "car trader"),
		mk("Fullname", "James Jordan", "job", "car seller"),
		mk("name", "Nick Papas", "profession", "car dealer"),
	})
	gt := NewGroundTruth([]Pair{{A: 0, B: 2}, {A: 1, B: 3}})
	return c, gt
}

func TestPipelineDefaults(t *testing.T) {
	c, gt := exampleCollection()
	res, err := Pipeline{}.Run(c) // Token Blocking + purging + JS/WEP... (ARCS is zero value)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no comparisons retained")
	}
	rep := Evaluate(res.Pairs, gt, res.InputComparisons)
	if rep.PC() == 0 {
		t.Fatal("all duplicates lost")
	}
	if res.OTime <= 0 {
		t.Fatal("OTime not measured")
	}
}

func TestPipelineReciprocalWNP(t *testing.T) {
	c, gt := exampleCollection()
	// Without purging this is exactly the paper example: Reciprocal WNP
	// retains the 4 comparisons of Figure 9, including both duplicates.
	res, err := Pipeline{Scheme: JS, Algorithm: ReciprocalWNP, DisablePurging: true}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 4 {
		t.Fatalf("retained %d comparisons, want 4 (Figure 9)", len(res.Pairs))
	}
	rep := Evaluate(res.Pairs, gt, res.InputComparisons)
	if rep.PC() != 1.0 {
		t.Fatalf("PC = %v, want 1.0", rep.PC())
	}
	if rep.PQ() != 0.5 {
		t.Fatalf("PQ = %v, want 0.5", rep.PQ())
	}

	// With default purging the oversized "car" block (4 of 6 profiles)
	// is discarded first, and Reciprocal WNP keeps only the two
	// duplicate comparisons: perfect precision at full recall.
	purged, err := Pipeline{Scheme: JS, Algorithm: ReciprocalWNP}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	prep := Evaluate(purged.Pairs, gt, purged.InputComparisons)
	if prep.PC() != 1.0 || prep.PQ() != 1.0 {
		t.Fatalf("with purging: PC = %v PQ = %v, want 1.0 and 1.0", prep.PC(), prep.PQ())
	}
}

func TestPipelineWithFiltering(t *testing.T) {
	c, _ := exampleCollection()
	full, err := Pipeline{Scheme: JS, Algorithm: WEP}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := Pipeline{Scheme: JS, Algorithm: WEP, FilterRatio: 0.5}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.InputComparisons >= full.InputComparisons {
		t.Fatalf("filtering did not shrink the input: %d vs %d",
			filtered.InputComparisons, full.InputComparisons)
	}
}

func TestPipelineGraphFree(t *testing.T) {
	c, gt := exampleCollection()
	res, err := Pipeline{GraphFree: true, FilterRatio: 0.55}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(res.Pairs, gt, res.InputComparisons)
	if rep.PC() == 0 {
		t.Fatal("graph-free lost all duplicates")
	}
}

func TestPipelineValidation(t *testing.T) {
	c, _ := exampleCollection()
	if _, err := (Pipeline{}).Run(nil); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := (Pipeline{}).Run(NewDirty(nil)); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := (Pipeline{FilterRatio: 1.5}).Run(c); err == nil {
		t.Error("out-of-range ratio accepted")
	}
	if _, err := (Pipeline{GraphFree: true}).Run(c); err == nil {
		t.Error("graph-free without ratio accepted")
	}
}

func TestMatchesAndCluster(t *testing.T) {
	c, _ := exampleCollection()
	res, err := Pipeline{Scheme: JS, Algorithm: ReciprocalWNP}.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// The example duplicates share 2 of 7 distinct tokens → Jaccard 2/7.
	m := NewJaccardMatcher(c, 0.25)
	matches := Matches(m, res.Pairs)
	if len(matches) == 0 {
		t.Fatal("matcher found nothing")
	}
	clusters := Cluster(c, matches)
	if len(clusters) == 0 {
		t.Fatal("no clusters formed")
	}
	for _, cl := range clusters {
		if len(cl) < 2 {
			t.Fatal("singleton cluster emitted")
		}
	}
}

func TestGenerateDatasetAllIDs(t *testing.T) {
	for _, id := range []DatasetID{D1C, D2C, D3C, D1D, D2D, D3D} {
		ds := GenerateDataset(id, 0.02)
		if ds.Collection.Size() == 0 || ds.GroundTruth.Size() == 0 {
			t.Fatalf("dataset %v empty", id)
		}
		if err := ds.GroundTruth.Validate(ds.Collection); err != nil {
			t.Fatalf("dataset %v: %v", id, err)
		}
	}
}

func TestPipelineEndToEndOnSyntheticData(t *testing.T) {
	ds := GenerateDataset(D1C, 0.05)
	for _, alg := range []Algorithm{CEP, CNP, WEP, WNP, RedefinedCNP, ReciprocalCNP, RedefinedWNP, ReciprocalWNP} {
		res, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: alg}.Run(ds.Collection)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rep := Evaluate(res.Pairs, ds.GroundTruth, res.InputComparisons)
		if rep.PC() < 0.5 {
			t.Errorf("%v: PC = %.3f implausibly low", alg, rep.PC())
		}
		if rep.RR() < 0 {
			t.Errorf("%v: negative reduction ratio", alg)
		}
	}
}

func TestBuildBlocksAndPersistence(t *testing.T) {
	ds := GenerateDataset(D1C, 0.03)
	blocks := BuildBlocks(ds.Collection, nil, 0.8)
	if blocks.Len() == 0 {
		t.Fatal("no blocks built")
	}
	path := t.TempDir() + "/blocks.bin"
	if err := SaveBlocks(path, blocks); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBlocks(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != blocks.Len() || loaded.Comparisons() != blocks.Comparisons() {
		t.Fatal("loaded blocks differ")
	}
	// Meta-blocking over loaded blocks must equal meta-blocking over the
	// originals.
	a := NewProgressiveScheduler(blocks, JS)
	b := NewProgressiveScheduler(loaded, JS)
	if a.Len() != b.Len() {
		t.Fatalf("schedules differ: %d vs %d", a.Len(), b.Len())
	}
}

func TestRunSupervisedFacade(t *testing.T) {
	ds := GenerateDataset(D1C, 0.05)
	blocks := BuildBlocks(ds.Collection, TokenBlocking{}, 0.8)
	res, err := RunSupervised(blocks, ds.GroundTruth, SupervisedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(res.Pairs, ds.GroundTruth, blocks.Comparisons())
	if rep.PC() < 0.7 {
		t.Fatalf("supervised PC = %.3f", rep.PC())
	}
}

func TestProgressiveSchedulerFacade(t *testing.T) {
	ds := GenerateDataset(D1C, 0.03)
	blocks := BuildBlocks(ds.Collection, nil, 0)
	s := NewProgressiveScheduler(blocks, ARCS)
	if s.Len() == 0 {
		t.Fatal("empty schedule")
	}
	first, ok := s.Next()
	if !ok {
		t.Fatal("no first comparison")
	}
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		if c.Weight > first.Weight {
			t.Fatal("schedule not descending")
		}
	}
}

func TestPipelineParallelWorkers(t *testing.T) {
	ds := GenerateDataset(D1D, 0.05)
	serial, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: RedefinedWNP}.Run(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: RedefinedWNP, Workers: 4}.Run(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Pairs) != len(parallel.Pairs) {
		t.Fatalf("parallel pipeline differs: %d vs %d pairs", len(parallel.Pairs), len(serial.Pairs))
	}
}
