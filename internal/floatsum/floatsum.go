// Package floatsum provides exact (correctly rounded) float64 summation
// after Shewchuk's adaptive expansion arithmetic — the algorithm behind
// Python's math.fsum.
//
// Meta-blocking derives pruning thresholds from means of edge weights
// (WEP's global mean, WNP's neighborhood means). Float addition is not
// associative, so a naive running sum would make threshold decisions on
// boundary edges depend on enumeration order — and therefore differ between
// the serial, multi-core and MapReduce implementations, and between worker
// counts. The exact sum is a property of the *multiset* of weights alone:
// every partitioning of the inputs across workers yields bit-identical
// thresholds, without materializing or sorting the weights.
package floatsum

// Acc accumulates an exact float64 sum as a list of non-overlapping
// partials. The zero value is an empty sum. Acc is not safe for concurrent
// use; give each worker its own and combine with Merge. Like math.fsum,
// the accumulator assumes no intermediate sum overflows — edge weights are
// bounded by block counts, far from the float64 range.
type Acc struct {
	partials []float64
	// n counts the accumulated values, so Mean needs no second counter.
	n int64
}

// Add folds x into the accumulator, maintaining the non-overlapping
// partials invariant (each partial is smaller in magnitude than the next's
// unit in the last place). Each step is Knuth's branchless TwoSum (6 flops,
// exact for any operand order) rather than the compare-and-swap Fast2Sum:
// the magnitude comparison is a data-dependent branch the CPU cannot
// predict, and Shewchuk's grow-expansion theorem guarantees TwoSum yields
// the same non-overlapping, increasing-magnitude expansion — so Sum()
// rounds to the identical float.
func (a *Acc) Add(x float64) {
	a.n++
	ps := a.partials[:0]
	for _, y := range a.partials {
		hi := x + y
		yv := hi - x
		xv := hi - yv
		lo := (y - yv) + (x - xv)
		if lo != 0 {
			ps = append(ps, lo)
		}
		x = hi
	}
	a.partials = append(ps, x)
}

// Merge folds the other accumulator's partials into a. Because the partials
// represent the other sum exactly, merging loses nothing: the combined
// accumulator holds the exact sum of both input multisets.
func (a *Acc) Merge(b *Acc) {
	for _, p := range b.partials {
		a.Add(p)
	}
	a.n += b.n - int64(len(b.partials))
}

// Reset empties the accumulator, keeping its capacity.
func (a *Acc) Reset() {
	a.partials = a.partials[:0]
	a.n = 0
}

// Count returns the number of values accumulated with Add (Merge carries
// counts over).
func (a *Acc) Count() int64 { return a.n }

// Sum returns the correctly rounded value of the exact accumulated sum.
// The rounding step follows CPython's math.fsum: partials are summed from
// the largest down, and ties halfway between two floats are resolved by
// inspecting the next partial so the result is the true nearest float.
func (a *Acc) Sum() float64 {
	ps := a.partials
	n := len(ps)
	if n == 0 {
		return 0
	}
	n--
	hi := ps[n]
	var lo float64
	for n > 0 {
		x := hi
		n--
		y := ps[n]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	// Halfway correction: if the discarded lo would round hi away from
	// zero and the remaining partials push the same way, nudge hi by one
	// ulp (only when the nudge is exact, i.e. hi+2·lo rounds to a float
	// whose difference from hi is exactly 2·lo).
	if n > 0 && ((lo < 0 && ps[n-1] < 0) || (lo > 0 && ps[n-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// Mean returns Sum()/Count(), or 0 for an empty accumulator.
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Sum() / float64(a.n)
}

// Mean returns the correctly rounded exact mean of xs, independent of the
// order of xs. It allocates nothing for the typical neighborhood sizes
// (the partials buffer lives on the stack up to 32 entries).
func Mean(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	var buf [32]float64
	a := Acc{partials: buf[:0]}
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum() / float64(len(xs))
}

// Sum returns the correctly rounded exact sum of xs.
func Sum(xs []float64) float64 {
	var buf [32]float64
	a := Acc{partials: buf[:0]}
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum()
}
