package blockproc

import (
	"sort"

	"metablocking/internal/block"
)

// AutoBlockPurging derives the Block Purging cardinality limit
// automatically from the block-size distribution — the comparison-based
// purging of the paper's ref [21]. Let A(c) and C(c) be the cumulative
// block assignments and comparisons of all blocks with cardinality ≤ c.
// Walking the distinct cardinalities from the largest down, removing a
// cardinality level is worthwhile while it improves the collection's
// assignment efficiency A/C (co-occurrence evidence per comparison) by at
// least the SmoothingFactor; the limit settles on the last level whose
// removal still paid off. Oversized blocks contribute quadratic cost but
// only linear evidence, so they are the ones trimmed.
type AutoBlockPurging struct {
	// SmoothingFactor; values <= 1 default to 1.025 (the reference
	// implementation's setting).
	SmoothingFactor float64
}

// Threshold computes the maximum retained block cardinality ‖b‖ for the
// collection, or 0 when the collection is empty.
func (a AutoBlockPurging) Threshold(c *block.Collection) int64 {
	sf := a.SmoothingFactor
	if sf <= 1 {
		sf = 1.025
	}
	if c.Len() == 0 {
		return 0
	}
	// Aggregate assignments and comparisons per distinct cardinality.
	type bucket struct {
		cardinality int64
		assignments int64
		comparisons int64
	}
	byCard := make(map[int64]*bucket)
	for i := range c.Blocks {
		card := c.Blocks[i].Comparisons()
		b := byCard[card]
		if b == nil {
			b = &bucket{cardinality: card}
			byCard[card] = b
		}
		b.assignments += int64(c.Blocks[i].Size())
		b.comparisons += card
	}
	buckets := make([]*bucket, 0, len(byCard))
	for _, b := range byCard {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].cardinality < buckets[j].cardinality })

	// Cumulative-from-smallest assignments and comparisons per level.
	cumA := make([]float64, len(buckets))
	cumC := make([]float64, len(buckets))
	var sumA, sumC float64
	for i, b := range buckets {
		sumA += float64(b.assignments)
		sumC += float64(b.comparisons)
		cumA[i] = sumA
		cumC[i] = sumC
	}

	// Walk down from the full collection. At step i, "previous" is the
	// collection truncated at level i+1 and "current" at level i; stop
	// when dropping level i+1 no longer improved A/C by ≥ SF.
	// If every removal paid off all the way down, only the smallest level
	// remains.
	threshold := buckets[0].cardinality
	var prevA, prevC float64
	for i := len(buckets) - 1; i >= 0; i-- {
		curA, curC := cumA[i], cumC[i]
		if prevC > 0 && curA*prevC < sf*curC*prevA {
			threshold = buckets[i+1].cardinality
			break
		}
		prevA, prevC = curA, curC
	}
	return threshold
}

// Apply purges the blocks whose cardinality exceeds the automatic
// threshold. Block order is preserved.
func (a AutoBlockPurging) Apply(c *block.Collection) *block.Collection {
	limit := a.Threshold(c)
	out := &block.Collection{Task: c.Task, NumEntities: c.NumEntities, Split: c.Split}
	for i := range c.Blocks {
		if c.Blocks[i].Comparisons() > limit {
			continue
		}
		out.Blocks = append(out.Blocks, c.Blocks[i])
	}
	return out
}
