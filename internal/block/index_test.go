package block

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"metablocking/internal/entity"
	"metablocking/internal/postings"
)

func TestEntityIndexLists(t *testing.T) {
	c := dirtyFixture()
	idx := NewEntityIndex(c)
	want := map[entity.ID][]int32{
		0: {0, 1},
		1: {0, 1},
		2: {0, 2},
		3: {2},
	}
	for id, list := range want {
		if got := idx.BlockList(id); !reflect.DeepEqual(got, list) {
			t.Errorf("BlockList(%d) = %v, want %v", id, got, list)
		}
		if idx.NumBlocks(id) != len(list) {
			t.Errorf("NumBlocks(%d) = %d, want %d", id, idx.NumBlocks(id), len(list))
		}
	}
	if idx.NumEntities() != 4 {
		t.Errorf("NumEntities = %d, want 4", idx.NumEntities())
	}
}

func TestEntityIndexListsAreAscending(t *testing.T) {
	c := randomCollection(rand.New(rand.NewSource(1)), 50, 30)
	idx := NewEntityIndex(c)
	for id := 0; id < c.NumEntities; id++ {
		list := idx.BlockList(entity.ID(id))
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i] < list[j] }) {
			t.Fatalf("block list of %d not ascending: %v", id, list)
		}
	}
}

func TestCommonBlocks(t *testing.T) {
	c := dirtyFixture()
	idx := NewEntityIndex(c)
	cases := []struct {
		a, b entity.ID
		want int
	}{
		{0, 1, 2}, // blocks 0 and 1
		{0, 2, 1}, // block 0
		{2, 3, 1}, // block 2
		{0, 3, 0},
	}
	for _, tc := range cases {
		if got := idx.CommonBlocks(tc.a, tc.b); got != tc.want {
			t.Errorf("CommonBlocks(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLeastCommonBlockAndLeCoBI(t *testing.T) {
	c := dirtyFixture()
	idx := NewEntityIndex(c)
	if got := idx.LeastCommonBlock(0, 1); got != 0 {
		t.Fatalf("LeastCommonBlock(0,1) = %d, want 0", got)
	}
	if got := idx.LeastCommonBlock(0, 3); got != -1 {
		t.Fatalf("LeastCommonBlock(0,3) = %d, want -1", got)
	}
	if !idx.IsNonRedundant(0, 0, 1) {
		t.Fatal("comparison (0,1) in block 0 must be non-redundant")
	}
	if idx.IsNonRedundant(1, 0, 1) {
		t.Fatal("comparison (0,1) in block 1 must be redundant (repeated from block 0)")
	}
}

// randomCollection builds a random Dirty block collection for property-style
// tests: numBlocks blocks over numEntities profiles, 2-6 members each.
func randomCollection(rng *rand.Rand, numEntities, numBlocks int) *Collection {
	c := &Collection{Task: entity.Dirty, NumEntities: numEntities, Split: numEntities}
	for b := 0; b < numBlocks; b++ {
		size := 2 + rng.Intn(5)
		seen := make(map[entity.ID]struct{})
		var members []entity.ID
		for len(members) < size {
			id := entity.ID(rng.Intn(numEntities))
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			members = append(members, id)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		c.Blocks = append(c.Blocks, Block{Key: string(rune('a' + b)), E1: members})
	}
	return c
}

// randomCleanCollection builds a random Clean-Clean block collection.
func randomCleanCollection(rng *rand.Rand, split, numEntities, numBlocks int) *Collection {
	c := &Collection{Task: entity.CleanClean, NumEntities: numEntities, Split: split}
	for b := 0; b < numBlocks; b++ {
		n1, n2 := 1+rng.Intn(3), 1+rng.Intn(3)
		e1 := distinctIDs(rng, 0, split, n1)
		e2 := distinctIDs(rng, split, numEntities, n2)
		c.Blocks = append(c.Blocks, Block{Key: string(rune('a' + b)), E1: e1, E2: e2})
	}
	return c
}

func distinctIDs(rng *rand.Rand, lo, hi, n int) []entity.ID {
	seen := make(map[entity.ID]struct{})
	var out []entity.ID
	for len(out) < n && len(out) < hi-lo {
		id := entity.ID(lo + rng.Intn(hi-lo))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property: CommonBlocks agrees with a brute-force intersection of block
// membership, on random collections.
func TestCommonBlocksMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		c := randomCollection(rng, 20, 15)
		idx := NewEntityIndex(c)
		for a := entity.ID(0); int(a) < c.NumEntities; a++ {
			for b := a + 1; int(b) < c.NumEntities; b++ {
				want := 0
				for k := range c.Blocks {
					if containsID(c.Blocks[k].E1, a) && containsID(c.Blocks[k].E1, b) {
						want++
					}
				}
				if got := idx.CommonBlocks(a, b); got != want {
					t.Fatalf("trial %d: CommonBlocks(%d,%d) = %d, want %d", trial, a, b, got, want)
				}
			}
		}
	}
}

func containsID(ids []entity.ID, x entity.ID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}

// TestCompressedIndexMatchesFlat builds the same random index twice,
// compresses one, and checks every accessor agrees: counts, decoded lists,
// intersections and LeCoBI answers.
func TestCompressedIndexMatchesFlat(t *testing.T) {
	c := randomCollection(rand.New(rand.NewSource(7)), 80, 60)
	flat := NewEntityIndex(c)
	comp := NewEntityIndex(c)
	comp.Compress()
	if !comp.Compressed() || flat.Compressed() {
		t.Fatal("Compressed() flags wrong")
	}
	var scratch []int32
	for id := 0; id < c.NumEntities; id++ {
		i := entity.ID(id)
		if got, want := comp.NumBlocks(i), flat.NumBlocks(i); got != want {
			t.Fatalf("NumBlocks(%d) = %d, want %d", id, got, want)
		}
		scratch = comp.AppendBlockList(scratch[:0], i)
		if !reflect.DeepEqual(append([]int32{}, scratch...), append([]int32{}, flat.BlockList(i)...)) {
			t.Fatalf("AppendBlockList(%d) = %v, want %v", id, scratch, flat.BlockList(i))
		}
	}
	// Intersections over the decoded compressed lists must match the
	// flat index's CommonBlocks / LeastCommonBlock exactly.
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			ia, ib := entity.ID(a), entity.ID(b)
			la := comp.AppendBlockList(nil, ia)
			lb := comp.AppendBlockList(nil, ib)
			if got, want := postings.IntersectCount(la, lb), flat.CommonBlocks(ia, ib); got != want {
				t.Fatalf("compressed IntersectCount(%d,%d) = %d, flat CommonBlocks %d", a, b, got, want)
			}
			if got, want := postings.First(la, lb), flat.LeastCommonBlock(ia, ib); got != want {
				t.Fatalf("compressed First(%d,%d) = %d, flat LeastCommonBlock %d", a, b, got, want)
			}
		}
	}
}

// TestCompressedIndexAccessors pins the compressed index's contract:
// BlockList panics, Compress is idempotent, and SizeBytes shrinks on a
// compressible index.
func TestCompressedIndexAccessors(t *testing.T) {
	c := randomCollection(rand.New(rand.NewSource(11)), 200, 150)
	idx := NewEntityIndex(c)
	flatSize := idx.SizeBytes()
	idx.Compress()
	idx.Compress() // idempotent
	if got := idx.SizeBytes(); got >= flatSize {
		t.Errorf("compressed SizeBytes = %d, flat was %d: expected a reduction", got, flatSize)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BlockList on a compressed index should panic")
		}
	}()
	idx.BlockList(0)
}
