package blocking

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// MinHashBlocking is Locality-Sensitive-Hashing blocking over the
// profiles' token sets: every profile gets a MinHash signature of
// Bands×Rows hash functions, the signature is cut into bands, and each
// band's value becomes a blocking key. Profiles whose token sets have
// Jaccard similarity s collide in at least one band with probability
// 1 − (1 − s^Rows)^Bands, so near-duplicates co-occur with high
// probability while dissimilar pairs rarely do.
//
// Like Token Blocking it is schema-agnostic and redundancy-positive (more
// shared bands → more likely a match), so its output is a valid
// meta-blocking input.
type MinHashBlocking struct {
	// Bands is the number of signature bands (default 8).
	Bands int
	// Rows is the number of hash values per band (default 4).
	Rows int
	// Seed derives the hash-function parameters (default 1).
	Seed int64
}

// Name implements Method.
func (MinHashBlocking) Name() string { return "MinHash LSH Blocking" }

// Build implements Method.
func (m MinHashBlocking) Build(c *entity.Collection) *block.Collection {
	bands := m.Bands
	if bands < 1 {
		bands = 8
	}
	rows := m.Rows
	if rows < 1 {
		rows = 4
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	numHashes := bands * rows

	// Universal hashing over 64-bit token hashes: h_i(x) = a_i*x + b_i.
	// Odd multipliers keep the map a bijection on uint64.
	as := make([]uint64, numHashes)
	bs := make([]uint64, numHashes)
	for i := range as {
		as[i] = rng.Uint64() | 1
		bs[i] = rng.Uint64()
	}

	idx := newKeyIndex(c)
	signature := make([]uint64, numHashes)
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for h := range signature {
			signature[h] = ^uint64(0)
		}
		empty := true
		for tok := range p.TokenSet() {
			empty = false
			base := hashToken(tok)
			for h := 0; h < numHashes; h++ {
				if v := as[h]*base + bs[h]; v < signature[h] {
					signature[h] = v
				}
			}
		}
		if empty {
			continue
		}
		for b := 0; b < bands; b++ {
			idx.add(bandKey(b, signature[b*rows:(b+1)*rows]), p.ID)
		}
	}
	return idx.build(c)
}

func hashToken(tok string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tok))
	return h.Sum64()
}

// bandKey fingerprints one band of the signature into a compact key.
func bandKey(band int, values []uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return fmt.Sprintf("b%d:%016x", band, h.Sum64())
}
