// Package oracle is a deliberately naive, obviously-correct reference
// implementation of the meta-blocking pipeline, used only by tests.
//
// Every production implementation of the same math — Optimized Edge
// Weighting (Alg. 3), its parallel shards, the MapReduce mirror — is
// cross-checked against this package by the differential harness
// (oracle_diff_test.go at the repository root) and the fuzz targets in
// this package. The oracle favours clarity over speed: explicit block-list
// intersection per pair (Alg. 2), hash sets instead of epoch-flagged
// scratch arrays, full sorts instead of bounded heaps, and arbitrary-
// precision summation instead of Shewchuk partials. Nothing here shares
// code with internal/core beyond the entity/block data model and the
// Scheme/Algorithm enums.
//
// The paper's theorems the checkers in invariants.go encode:
//
//   - Alg. 2 ≡ Alg. 3: both edge weightings produce bit-identical weights
//     for every scheme (paper §4.2).
//   - Redefined CNP/WNP retain exactly the distinct comparisons of the
//     original node-centric methods, each at most once (paper §5.1).
//   - Reciprocal comparisons are a subset of the Redefined ones (§5.2).
//   - Results are deterministic across worker counts and identical with
//     or without observability attached.
package oracle

import (
	"math"
	"math/big"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// Edge is one comparison of the blocking graph with its weight.
type Edge struct {
	Pair   entity.Pair
	Weight float64
}

// Graph is the fully materialized blocking graph: every distinct
// comparison with its naively computed weight, plus the per-node
// adjacency. Unlike core.Graph nothing is implicit or cached — the maps
// are the specification.
type Graph struct {
	// Weights maps every edge of the blocking graph to its weight.
	Weights map[entity.Pair]float64
	// Neighbors lists every node's distinct co-occurring profiles in
	// ascending ID order.
	Neighbors map[entity.ID][]entity.ID

	c *block.Collection
}

// blockLists returns, per entity, the ascending list of block IDs that
// contain it — the inverted Entity Index of the paper, rebuilt the naive
// way (one append per membership, blocks visited in ID order).
func blockLists(c *block.Collection) map[entity.ID][]int32 {
	lists := make(map[entity.ID][]int32)
	for bid := range c.Blocks {
		b := &c.Blocks[bid]
		for _, id := range b.E1 {
			lists[id] = append(lists[id], int32(bid))
		}
		for _, id := range b.E2 {
			lists[id] = append(lists[id], int32(bid))
		}
	}
	return lists
}

// neighborSets returns every node's set of distinct co-occurring profiles,
// honouring the task semantics: all co-members for Dirty ER, only
// cross-source co-members for Clean-Clean ER.
func neighborSets(c *block.Collection) map[entity.ID]map[entity.ID]bool {
	sets := make(map[entity.ID]map[entity.ID]bool)
	link := func(a, b entity.ID) {
		if sets[a] == nil {
			sets[a] = make(map[entity.ID]bool)
		}
		if sets[b] == nil {
			sets[b] = make(map[entity.ID]bool)
		}
		sets[a][b] = true
		sets[b][a] = true
	}
	for bid := range c.Blocks {
		b := &c.Blocks[bid]
		if c.Task == entity.CleanClean {
			for _, a := range b.E1 {
				for _, e := range b.E2 {
					link(a, e)
				}
			}
			continue
		}
		for i := 0; i < len(b.E1); i++ {
			for j := i + 1; j < len(b.E1); j++ {
				if b.E1[i] != b.E1[j] {
					link(b.E1[i], b.E1[j])
				}
			}
		}
	}
	return sets
}

// intersect returns the ascending block IDs shared by the two lists, by
// the most literal method possible: for every ID of the first list, a
// linear membership scan of the second.
func intersect(la, lb []int32) []int32 {
	var common []int32
	for _, x := range la {
		for _, y := range lb {
			if x == y {
				common = append(common, x)
				break
			}
		}
	}
	return common
}

// NewGraph materializes the blocking graph of the collection under the
// given weighting scheme, deriving every edge weight from the explicit
// block-list intersection of its two endpoints (Alg. 2 applied
// exhaustively, with no LeCoBI shortcut: neighbor sets are already
// distinct).
func NewGraph(c *block.Collection, scheme core.Scheme) *Graph {
	lists := blockLists(c)
	sets := neighborSets(c)

	// |VB| counts profiles placed in at least one block — including
	// members of singleton blocks, which have no incident edges.
	numNodes := len(lists)
	numBlocks := len(c.Blocks) // |B| includes blocks with no comparisons

	// 1/‖b‖ per block, for ARCS.
	invCard := make([]float64, numBlocks)
	for bid := range c.Blocks {
		if n := c.Blocks[bid].Comparisons(); n > 0 {
			invCard[bid] = 1 / float64(n)
		}
	}

	// Node degrees |vi| = number of distinct neighbors, for EJS.
	degree := func(id entity.ID) int32 { return int32(len(sets[id])) }

	g := &Graph{
		Weights:   make(map[entity.Pair]float64),
		Neighbors: make(map[entity.ID][]entity.ID, len(sets)),
		c:         c,
	}
	for id, set := range sets {
		ns := make([]entity.ID, 0, len(set))
		for j := range set {
			ns = append(ns, j)
		}
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
		g.Neighbors[id] = ns
	}

	for id, ns := range g.Neighbors {
		for _, j := range ns {
			if j < id {
				continue // each edge weighed once, from its smaller endpoint
			}
			common := intersect(lists[id], lists[j])
			// The co-occurrence statistic: |Bij|, or Σ 1/‖b‖ for ARCS,
			// summed in ascending block-ID order (the order every
			// production traversal uses, so ARCS sums round identically).
			var stat float64
			if scheme == core.ARCS {
				for _, bid := range common {
					stat += invCard[bid]
				}
			} else {
				stat = float64(len(common))
			}
			w := schemeWeight(scheme, stat,
				len(lists[id]), len(lists[j]),
				degree(id), degree(j),
				float64(numBlocks), float64(numNodes))
			g.Weights[entity.MakePair(id, j)] = w
		}
	}
	return g
}

// schemeWeight evaluates the five weighting formulas of Fig. 4. The
// operand pair is canonicalized exactly as the paper's symmetric formulas
// demand — the weight must not depend on which endpoint the edge is
// evaluated from, and float multiplication is commutative but not
// associative, so the factors are ordered by (|Bi|, |vi|).
func schemeWeight(scheme core.Scheme, common float64, bi, bj int, di, dj int32, numBlocks, numNodes float64) float64 {
	if bi > bj || (bi == bj && di > dj) {
		bi, bj = bj, bi
		di, dj = dj, di
	}
	switch scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		return common * math.Log(numBlocks/float64(bi)) * math.Log(numBlocks/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	case core.EJS:
		js := common / (float64(bi) + float64(bj) - common)
		return js * math.Log(numNodes/float64(di)) * math.Log(numNodes/float64(dj))
	default:
		panic("oracle: unknown scheme")
	}
}

// Edges returns every edge sorted canonically by pair.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.Weights))
	for p, w := range g.Weights {
		out = append(out, Edge{Pair: p, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i].Pair, out[j].Pair) })
	return out
}

// pairLess is the canonical (A, B) order on pairs.
func pairLess(p, q entity.Pair) bool {
	if p.A != q.A {
		return p.A < q.A
	}
	return p.B < q.B
}

// rankBefore is the canonical total order used by every top-K selection:
// heavier first, ties broken by the lexicographically smaller pair. It
// restates core's edgeHeap order independently; top-K under a total order
// is traversal-order independent, so oracle and production select the
// same sets.
func rankBefore(a, b Edge) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return pairLess(a.Pair, b.Pair)
}

// exactMean returns the correctly rounded mean of xs: the sum is
// accumulated in arbitrary-precision floats (wide enough that no rounding
// ever occurs), rounded once to float64, then divided by the count — the
// same two rounding steps the production floatsum package performs, so
// boundary edges compare identically against thresholds.
func exactMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// 4096 bits cover the full float64 exponent range plus carries, so
	// the accumulated sum is exact, not just well-conditioned.
	sum := new(big.Float).SetPrec(4096)
	for _, x := range xs {
		sum.Add(sum, new(big.Float).SetPrec(4096).SetFloat64(x))
	}
	s, _ := sum.Float64() // one correctly rounded conversion
	return s / float64(len(xs))
}

// assignments returns Σ|b|, counting every membership (empty and
// singleton blocks included).
func assignments(c *block.Collection) int64 {
	var total int64
	for i := range c.Blocks {
		total += int64(len(c.Blocks[i].E1) + len(c.Blocks[i].E2))
	}
	return total
}

// SortPairs orders a comparison multiset canonically in place and returns
// it; every oracle pruning result and every production result compared
// against it goes through this normalization.
func SortPairs(pairs []entity.Pair) []entity.Pair {
	sort.Slice(pairs, func(i, j int) bool { return pairLess(pairs[i], pairs[j]) })
	return pairs
}
