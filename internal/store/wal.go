// Per-shard write-ahead log for the out-of-core resolver: the layer
// that turns "recovers to the last checkpoint" into "loses nothing it
// acknowledged".
//
// Layout for a shard directory:
//
//	<root>/s<k>/wal-<seq>.wal        append-only commit log (CRC-32C
//	                                 framed records, truncate-on-tear)
//
// A WAL file opens with an 8-byte header (magic + version) followed by
// framed records, each [len u32][crc32c u32][payload]. Record 0 is the
// lineage meta: the resolver configuration plus {shard, shards,
// checkpoint, size} — the checkpoint this log extends and the global
// resolver size at its creation. Every later record is one committed
// profile: its serially-assigned entity ID, attributes, and the
// blocking keys it was indexed under. IDs are the determinism anchor:
// replaying records in ascending ID order reproduces the exact memtable
// insertion order of the never-crashed run, so snapshots, gathers, and
// float aggregates come out bit-identical.
//
// Torn tails truncate, never fail: the reader accepts the longest
// prefix of records whose frame lengths and CRCs verify, and recovery
// additionally keeps only the longest contiguous ID run starting at the
// checkpoint size — a record acknowledged to a client is by
// construction inside that run on its home shard's durable log.
//
// Rotation binds a log to exactly one checkpoint lineage: a seal
// creates the next WAL generation stamped with the about-to-commit
// (checkpoint, size) *before* the manifest commits, and the retention
// sweep deletes superseded logs only after the manifest that covers
// them is durable. Whichever side of the commit point a crash lands on,
// the surviving manifest and the log that matches its checkpoint agree.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

const (
	walMagic       = "MBWL"
	walVersion     = 1
	walHeaderSize  = 8 // magic + version
	walFrameHeader = 8 // payload length + CRC-32C
	// maxWalRecord bounds a single frame; a length field above it is
	// corruption (or a torn write through the length bytes), not data.
	maxWalRecord = 16 << 20
)

// WalFileName names the WAL file with the given rotation sequence.
func WalFileName(seq uint64) string {
	return fmt.Sprintf("wal-%020d.wal", seq)
}

func parseWalSeq(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".wal")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(s, 10, 64)
	return seq, err == nil
}

// WalMeta is a log's lineage binding, written as its first record: the
// resolver configuration and the checkpoint the log extends. Recovery
// replays only logs whose meta matches the checkpoint it loaded —
// a log rotated for a checkpoint that never committed, or left behind
// by an abandoned reload lineage, is silently skipped.
type WalMeta struct {
	Scheme         int
	K              int
	MaxBlockSize   int
	MinTokenLength int

	Shard  int
	Shards int
	// Checkpoint is the checkpoint id this log's records build on.
	Checkpoint uint64
	// Size is the global resolver size at that checkpoint; every record
	// in the log carries an ID >= Size.
	Size int
}

// WalMetaFor binds a log to cfg and the (checkpoint, size) lineage.
func WalMetaFor(cfg incremental.Config, shard, shards int, checkpoint uint64, size int) WalMeta {
	return WalMeta{
		Scheme:         int(cfg.Scheme),
		K:              cfg.K,
		MaxBlockSize:   cfg.MaxBlockSize,
		MinTokenLength: cfg.MinTokenLength,
		Shard:          shard,
		Shards:         shards,
		Checkpoint:     checkpoint,
		Size:           size,
	}
}

// Config returns the resolver configuration the meta binds.
func (m *WalMeta) Config() incremental.Config {
	return incremental.Config{
		Scheme:         core.Scheme(m.Scheme),
		K:              m.K,
		MaxBlockSize:   m.MaxBlockSize,
		MinTokenLength: m.MinTokenLength,
	}
}

// WalRecord is one committed profile: the serially-assigned ID from the
// coordinator's two-phase commit, the profile, and the blocking keys it
// was indexed under (stored, not re-derived, so replay cannot diverge
// from what the acknowledged commit actually did).
type WalRecord struct {
	ID      entity.ID
	Profile entity.Profile
	Keys    []string
}

// AppendWalRecord appends rec's payload encoding to dst: uvarint ID,
// then the attribute list, then the key list, all length-prefixed.
func AppendWalRecord(dst []byte, rec WalRecord) []byte {
	dst = binary.AppendUvarint(dst, uint64(rec.ID))
	dst = binary.AppendUvarint(dst, uint64(len(rec.Profile.Attributes)))
	for _, a := range rec.Profile.Attributes {
		dst = appendWalString(dst, a.Name)
		dst = appendWalString(dst, a.Value)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.Keys)))
	for _, k := range rec.Keys {
		dst = appendWalString(dst, k)
	}
	return dst
}

func appendWalString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeWalRecord parses one record payload. Any malformed byte —
// truncated varint, length past the buffer, trailing garbage — is an
// error; the recovery scan treats it as the torn tail of its file.
func DecodeWalRecord(payload []byte) (WalRecord, error) {
	var rec WalRecord
	id, n, err := walUvarint(payload)
	if err != nil || id > uint64(1)<<31-1 {
		return rec, ErrCorruptArtifact
	}
	payload = payload[n:]
	rec.ID = entity.ID(id)
	attrs, n, err := walUvarint(payload)
	if err != nil || attrs > uint64(len(payload)) {
		return rec, ErrCorruptArtifact
	}
	payload = payload[n:]
	if attrs > 0 {
		rec.Profile.Attributes = make([]entity.Attribute, 0, attrs)
		for i := uint64(0); i < attrs; i++ {
			var name, value string
			if name, payload, err = walString(payload); err != nil {
				return rec, err
			}
			if value, payload, err = walString(payload); err != nil {
				return rec, err
			}
			rec.Profile.Attributes = append(rec.Profile.Attributes, entity.Attribute{Name: name, Value: value})
		}
	}
	rec.Profile.ID = rec.ID
	keys, n, err := walUvarint(payload)
	if err != nil || keys > uint64(len(payload)) {
		return rec, ErrCorruptArtifact
	}
	payload = payload[n:]
	if keys > 0 {
		rec.Keys = make([]string, 0, keys)
		for i := uint64(0); i < keys; i++ {
			var k string
			if k, payload, err = walString(payload); err != nil {
				return rec, err
			}
			rec.Keys = append(rec.Keys, k)
		}
	}
	if len(payload) != 0 {
		return rec, ErrCorruptArtifact
	}
	return rec, nil
}

func walUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrCorruptArtifact
	}
	return v, n, nil
}

func walString(b []byte) (string, []byte, error) {
	n, sz, err := walUvarint(b)
	if err != nil || n > uint64(len(b)-sz) {
		return "", nil, ErrCorruptArtifact
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// WalWriter appends framed records to one log file. Append pushes each
// frame to the OS with a single write, so a SIGKILL'd process loses at
// most the record it had not yet been acknowledged for; Sync is the
// fsync boundary that extends the guarantee to power loss, invoked per
// micro-batch (group commit), on a timer, or never, per the sync
// policy.
type WalWriter struct {
	f       *os.File
	path    string
	bytes   int64
	records int64
	dirty   bool
	frame   []byte
}

// CreateWal creates (or truncates) path and durably writes the header
// and meta record: the file, its lineage binding, and its directory
// entry are all synced before any commit is logged against it.
func CreateWal(path string, meta WalMeta) (*WalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WalWriter{f: f, path: path}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(meta); err != nil {
		f.Close()
		return nil, err
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
	if _, err := f.Write(hdr); err != nil {
		w.abort()
		return nil, err
	}
	w.bytes = walHeaderSize
	if err := w.Append(buf.Bytes()); err != nil {
		w.abort()
		return nil, err
	}
	w.records = 0 // the meta record is framing, not data
	if err := w.Sync(); err != nil {
		w.abort()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		w.abort()
		return nil, err
	}
	return w, nil
}

// abort closes and removes a half-created log.
func (w *WalWriter) abort() {
	w.f.Close()
	os.Remove(w.path)
}

// Append frames payload and writes it to the OS in one write call. The
// caller must not acknowledge the commit if Append fails.
func (w *WalWriter) Append(payload []byte) error {
	if len(payload) > maxWalRecord {
		return fmt.Errorf("store: wal record %d bytes exceeds limit: %w", len(payload), ErrCorruptArtifact)
	}
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(payload)))
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.Checksum(payload, crcPoly))
	w.frame = append(w.frame, payload...)
	if _, err := w.f.Write(w.frame); err != nil {
		return err
	}
	w.bytes += int64(len(w.frame))
	w.records++
	w.dirty = true
	return nil
}

// Sync fsyncs the log — the group-commit barrier.
func (w *WalWriter) Sync() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// Close closes the file handle without syncing (callers sync first when
// the close must be durable).
func (w *WalWriter) Close() error { return w.f.Close() }

// Remove closes the writer and deletes its file — the discard path when
// a rotation's manifest commit fails and the old log stays live.
func (w *WalWriter) Remove() {
	w.f.Close()
	os.Remove(w.path)
}

// Bytes is the log's current size in bytes.
func (w *WalWriter) Bytes() int64 { return w.bytes }

// Records is the number of data records appended since creation.
func (w *WalWriter) Records() int64 { return w.records }

// Dirty reports whether appends have happened since the last Sync.
func (w *WalWriter) Dirty() bool { return w.dirty }

// Name is the log's file name within its shard directory.
func (w *WalWriter) Name() string { return filepath.Base(w.path) }

// readWalFile reads one log: its meta, the payloads of every record in
// the longest verifiable prefix, and how many trailing bytes were torn
// (0 or 1 frames — a tear ends the scan). ok is false when the file is
// unreadable or its header/meta does not verify, in which case the
// whole file is ignored; damage never turns into an error here.
func readWalFile(path string) (meta WalMeta, payloads [][]byte, torn int64, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < walHeaderSize || string(data[:4]) != walMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != walVersion {
		return meta, nil, 0, false
	}
	off := walHeaderSize
	first := true
	for off+walFrameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxWalRecord || off+walFrameHeader+n > len(data) {
			torn = 1
			break
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.Checksum(payload, crcPoly) != crc {
			torn = 1
			break
		}
		off += walFrameHeader + n
		if first {
			first = false
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&meta); err != nil {
				return meta, nil, 0, false
			}
			continue
		}
		payloads = append(payloads, payload)
	}
	if off < len(data) && torn == 0 {
		torn = 1 // trailing partial frame header
	}
	if first {
		return meta, nil, 0, false // no verifiable meta record
	}
	return meta, payloads, torn, true
}

// WalTail is the recovered log tail: the records to replay on top of
// the checkpoint, already deduplicated, ID-contiguous from the
// checkpoint size, and in ascending ID order; plus per-shard counts of
// frames dropped as torn, undecodable, or outside the contiguous run.
type WalTail struct {
	Records []WalRecord
	// Cfg is the resolver configuration the logs bind; meaningful only
	// when Records is non-empty.
	Cfg incremental.Config
	// Truncated[k] counts shard k's dropped frames.
	Truncated []int64
}

// RecoverWalTail scans every shard's logs that extend the recovered
// checkpoint and assembles the replayable tail. Records from logs bound
// to a different checkpoint (an uncommitted rotation, an abandoned
// lineage) are skipped entirely; duplicate IDs (a crash between
// recovery's re-log and its sweep) collapse; and only the longest
// contiguous ID run starting at layout.Size survives — an ID gap means
// the missing commit was never acknowledged, so nothing after it was
// either.
func RecoverWalTail(layout *DiskLayout) WalTail {
	tail := WalTail{Truncated: make([]int64, layout.Shards)}
	byID := make(map[entity.ID]WalRecord)
	perShard := make([]int64, layout.Shards)
	for k, state := range layout.Shard {
		for _, name := range state.WALs {
			meta, payloads, torn, ok := readWalFile(filepath.Join(state.Dir, name))
			if !ok {
				continue
			}
			if meta.Shard != k || meta.Shards != layout.Shards || meta.Checkpoint != layout.Checkpoint {
				continue
			}
			if layout.Checkpoint != 0 && meta.Config() != layout.Cfg {
				continue
			}
			tail.Truncated[k] += torn
			for _, payload := range payloads {
				rec, err := DecodeWalRecord(payload)
				if err != nil || int(rec.ID)%layout.Shards != k {
					// Undecodable or mis-homed past the CRC: treat the
					// rest of this file as torn.
					tail.Truncated[k]++
					break
				}
				if int(rec.ID) < layout.Size {
					continue // already inside the checkpoint
				}
				if _, dup := byID[rec.ID]; !dup {
					byID[rec.ID] = rec
					perShard[k]++
					tail.Cfg = meta.Config()
				}
			}
		}
	}
	for id := entity.ID(layout.Size); ; id++ {
		rec, ok := byID[id]
		if !ok {
			break
		}
		tail.Records = append(tail.Records, rec)
	}
	// Valid records beyond the contiguous run count as truncated on the
	// shard that held them.
	dropped := int64(len(byID)) - int64(len(tail.Records))
	if dropped > 0 {
		replayed := make([]int64, layout.Shards)
		for _, rec := range tail.Records {
			replayed[int(rec.ID)%layout.Shards]++
		}
		for k := range perShard {
			tail.Truncated[k] += perShard[k] - replayed[k]
		}
	}
	return tail
}
