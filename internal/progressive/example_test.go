package progressive_test

import (
	"fmt"

	"metablocking/internal/blocking"
	"metablocking/internal/core"
	"metablocking/internal/paperexample"
	"metablocking/internal/progressive"
)

// Example schedules the paper's running example: with JS weights, the
// heaviest comparison of Figure 2(a) (p5-p6 at 1/2) is emitted first and
// both true duplicates surface within the first five comparisons.
func Example() {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	scheduler := progressive.NewScheduler(blocks, core.JS)
	gt := paperexample.GroundTruth()

	found := 0
	for i := 0; i < 5; i++ {
		c, ok := scheduler.Next()
		if !ok {
			break
		}
		if gt.Contains(c.Pair.A, c.Pair.B) {
			found++
		}
		if i == 0 {
			fmt.Printf("first comparison: p%d-p%d (weight %.2f)\n", c.Pair.A+1, c.Pair.B+1, c.Weight)
		}
	}
	fmt.Printf("duplicates found in the first 5 of %d comparisons: %d of %d\n",
		scheduler.Len(), found, gt.Size())
	// Output:
	// first comparison: p5-p6 (weight 0.50)
	// duplicates found in the first 5 of 10 comparisons: 2 of 2
}
