// Command stream performs incremental Entity Resolution over a stream of
// JSONL profiles: every line is blocked on arrival and the pruned
// candidate comparisons are emitted immediately — the paper's future-work
// scenario (§7) as a composable Unix tool.
//
// Input (stdin or -input): one profile per line,
// {"id": 0, "attributes": {"name": ["Jack Miller"], ...}} — ids are
// ignored; arrival order assigns them.
//
// Output (stdout): candidate CSV rows, newID,candidateID,weight.
//
// Example:
//
//	go run ./cmd/datagen -scale 0.1 -dataset D1D -dump /tmp/p.csv   # make data
//	go run ./cmd/stream -k 5 -scheme js < profiles.jsonl > candidates.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"metablocking/internal/core"
	"metablocking/internal/dataio"
	"metablocking/internal/incremental"
	"metablocking/internal/obs"
)

// options carries the parsed command-line configuration.
type options struct {
	input     string
	k         int
	scheme    string
	maxBlock  int
	threshold float64
	metrics   bool
}

func main() {
	var opts options
	var pprofAddr string
	flag.StringVar(&opts.input, "input", "", "JSONL profiles file (default stdin)")
	flag.IntVar(&opts.k, "k", 10, "max candidates per arrival (0 = mean-weight pruning)")
	flag.StringVar(&opts.scheme, "scheme", "js", "weighting scheme: arcs, cbs, ecbs, js")
	flag.IntVar(&opts.maxBlock, "maxblock", 1000, "ignore blocks larger than this")
	flag.Float64Var(&opts.threshold, "min-weight", 0, "drop candidates below this weight")
	flag.BoolVar(&opts.metrics, "metrics", false, "print the stream counter table to stderr on exit")
	flag.StringVar(&pprofAddr, "pprof", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if pprofAddr != "" {
		srv, err := obs.ServeDebug(pprofAddr, streamMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", pprofAddr)
	}
	if err := run(os.Stdin, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

// streamMetrics collects the resolver's own counters: arrivals, emitted
// candidates and candidates dropped by -min-weight. It is served live by
// -pprof and printed on exit by -metrics.
var streamMetrics = obs.NewMetrics()

// Stream counter names.
const (
	ctrProfiles   = "stream.profiles"
	ctrCandidates = "stream.candidates"
	ctrDropped    = "stream.dropped"
)

func run(stdin io.Reader, stdout io.Writer, opts options) error {
	sch, err := parseScheme(opts.scheme)
	if err != nil {
		return err
	}
	resolver, err := incremental.NewResolver(incremental.Config{
		Scheme:       sch,
		K:            opts.k,
		MaxBlockSize: opts.maxBlock,
	})
	if err != nil {
		return err
	}

	in := stdin
	if opts.input != "" {
		f, err := os.Open(opts.input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	emitted := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		p, err := dataio.ParseProfileJSON(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", resolver.Size()+1, err)
		}
		id, candidates := resolver.Add(p)
		streamMetrics.Counter(ctrProfiles).Inc()
		for _, c := range candidates {
			if c.Weight < opts.threshold {
				streamMetrics.Counter(ctrDropped).Inc()
				continue
			}
			fmt.Fprintf(w, "%d,%d,%s\n", id, c.ID, strconv.FormatFloat(c.Weight, 'g', 6, 64))
			streamMetrics.Counter(ctrCandidates).Inc()
			emitted++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stream: %d profiles, %d candidate comparisons emitted\n",
		resolver.Size(), emitted)
	if opts.metrics {
		fmt.Fprint(os.Stderr, streamMetrics.Snapshot().Table())
	}
	return nil
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "arcs":
		return core.ARCS, nil
	case "cbs":
		return core.CBS, nil
	case "ecbs":
		return core.ECBS, nil
	case "js":
		return core.JS, nil
	default:
		return 0, fmt.Errorf("unknown or unsupported scheme %q (EJS needs global state)", s)
	}
}
