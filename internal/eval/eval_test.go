package eval

import (
	"math"
	"testing"
	"time"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

func TestReportMeasures(t *testing.T) {
	r := Report{Comparisons: 100, Detected: 8, Duplicates: 10, Baseline: 1000}
	if r.PC() != 0.8 {
		t.Errorf("PC = %v, want 0.8", r.PC())
	}
	if r.PQ() != 0.08 {
		t.Errorf("PQ = %v, want 0.08", r.PQ())
	}
	if r.RR() != 0.9 {
		t.Errorf("RR = %v, want 0.9", r.RR())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestReportZeroDivisions(t *testing.T) {
	var r Report
	if r.PC() != 0 || r.PQ() != 0 || r.RR() != 0 {
		t.Fatal("zero-value report must not divide by zero")
	}
}

func TestEvaluateBlocksPaperExample(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	gt := paperexample.GroundTruth()
	base := paperexample.Collection().BruteForceComparisons() // 15
	r := EvaluateBlocks(c, gt, base)
	if r.Comparisons != 13 {
		t.Errorf("‖B‖ = %d, want 13", r.Comparisons)
	}
	if r.PC() != 1.0 {
		t.Errorf("PC = %v, want 1 (both duplicates co-occur)", r.PC())
	}
	if math.Abs(r.PQ()-2.0/13.0) > 1e-12 {
		t.Errorf("PQ = %v, want 2/13", r.PQ())
	}
	if math.Abs(r.RR()-(1-13.0/15.0)) > 1e-12 {
		t.Errorf("RR = %v, want 2/15", r.RR())
	}
}

func TestEvaluatePairsCountsRedundant(t *testing.T) {
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 1}})
	pairs := []entity.Pair{
		entity.MakePair(0, 1),
		entity.MakePair(0, 1), // redundant: counted in ‖B'‖, not in |D|
		entity.MakePair(2, 3),
	}
	r := EvaluatePairs(pairs, gt, 10)
	if r.Comparisons != 3 {
		t.Errorf("‖B'‖ = %d, want 3", r.Comparisons)
	}
	if r.Detected != 1 {
		t.Errorf("|D(B')| = %d, want 1", r.Detected)
	}
	if r.RR() != 0.7 {
		t.Errorf("RR = %v, want 0.7", r.RR())
	}
}

type constSim float64

func (s constSim) Similarity(_, _ entity.ID) float64 { return float64(s) }

func TestResolutionTimeAddsOverhead(t *testing.T) {
	pairs := []entity.Pair{{A: 0, B: 1}, {A: 1, B: 2}}
	overhead := 5 * time.Millisecond
	rt := ResolutionTime(constSim(0.5), pairs, overhead)
	if rt < overhead {
		t.Fatalf("RTime %v below overhead %v", rt, overhead)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || MeanInt64(nil) != 0 || MeanDuration(nil) != 0 {
		t.Fatal("empty means must be zero")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
	if MeanInt64([]int64{2, 4}) != 3 {
		t.Fatal("MeanInt64 broken")
	}
	if MeanDuration([]time.Duration{time.Second, 3 * time.Second}) != 2*time.Second {
		t.Fatal("MeanDuration broken")
	}
}

func TestEvaluateMatches(t *testing.T) {
	gt := entity.NewGroundTruth([]entity.Pair{{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}})
	matches := []entity.Pair{
		entity.MakePair(0, 1), // TP
		entity.MakePair(1, 0), // duplicate of the TP: ignored
		entity.MakePair(2, 3), // TP
		entity.MakePair(0, 5), // FP
	}
	q := EvaluateMatches(matches, gt)
	if q.TruePositives != 2 || q.FalsePositives != 1 || q.FalseNegatives != 1 {
		t.Fatalf("quality = %+v", q)
	}
	if q.Precision() != 2.0/3.0 {
		t.Errorf("precision = %v", q.Precision())
	}
	if q.Recall() != 2.0/3.0 {
		t.Errorf("recall = %v", q.Recall())
	}
	if q.F1() != 2.0/3.0 {
		t.Errorf("F1 = %v", q.F1())
	}
	var zero PairwiseQuality
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero-value quality must not divide by zero")
	}
}

func TestComputeBlockStats(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	s := ComputeBlockStats(c)
	if s.Blocks != 8 || s.Comparisons != 13 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinSize != 2 || s.MaxSize != 4 || s.MedianSize != 2 {
		t.Fatalf("size distribution = %+v", s)
	}
	// The single largest block (car, 6 comparisons) is the top 1%.
	if s.TopShare != 6.0/13.0 {
		t.Fatalf("TopShare = %v, want 6/13", s.TopShare)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if empty := ComputeBlockStats(&block.Collection{}); empty.Blocks != 0 {
		t.Fatal("empty stats wrong")
	}
}
