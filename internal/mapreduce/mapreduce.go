// Package mapreduce is a small, generic, in-memory MapReduce engine:
// goroutine-parallel map tasks, hash-partitioned shuffle, and parallel
// reduce tasks. It exists to express the MapReduce formulation of
// meta-blocking (the scaling strategy of the paper's ref [20] lineage,
// "Beyond 100 million entities") inside this repository without external
// infrastructure; see the sibling package mrmeta for the jobs.
package mapreduce

import (
	"hash/maphash"
	"runtime"
	"sync"
)

// Mapper transforms one input into zero or more key–value pairs.
type Mapper[I any, K comparable, V any] func(input I, emit func(K, V))

// Reducer folds all values of one key into zero or more outputs.
type Reducer[K comparable, V, O any] func(key K, values []V, emit func(O))

// Config tunes a job run.
type Config struct {
	// Mappers is the number of concurrent map tasks (0 = GOMAXPROCS).
	Mappers int
	// Partitions is the number of shuffle partitions and concurrent
	// reduce tasks (0 = GOMAXPROCS).
	Partitions int
}

func (c Config) mappers() int {
	if c.Mappers > 0 {
		return c.Mappers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) partitions() int {
	if c.Partitions > 0 {
		return c.Partitions
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes one MapReduce job over the inputs. Output order is
// unspecified (callers needing determinism sort the result); within one
// key, values arrive at the reducer in a deterministic order only if the
// map phase is deterministic per input and Mappers == 1 — reducers must
// therefore be commutative-associative folds, the standard MapReduce
// contract.
func Run[I any, K comparable, V, O any](inputs []I, m Mapper[I, K, V], r Reducer[K, V, O], cfg Config) []O {
	numMappers := cfg.mappers()
	numParts := cfg.partitions()
	seed := maphash.MakeSeed()

	// Map phase: each mapper writes into its own set of per-partition
	// buckets — no locks on the hot path.
	type bucket map[K][]V
	perMapper := make([][]bucket, numMappers)
	var wg sync.WaitGroup
	chunk := (len(inputs) + numMappers - 1) / numMappers
	for w := 0; w < numMappers; w++ {
		lo := w * chunk
		if lo >= len(inputs) {
			break
		}
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		buckets := make([]bucket, numParts)
		for p := range buckets {
			buckets[p] = make(bucket)
		}
		perMapper[w] = buckets
		wg.Add(1)
		go func(lo, hi int, buckets []bucket) {
			defer wg.Done()
			emit := func(k K, v V) {
				p := int(maphash.Comparable(seed, k) % uint64(numParts))
				buckets[p][k] = append(buckets[p][k], v)
			}
			for i := lo; i < hi; i++ {
				m(inputs[i], emit)
			}
		}(lo, hi, buckets)
	}
	wg.Wait()

	// Shuffle + reduce: each partition merges its buckets from every
	// mapper and reduces, in parallel.
	outs := make([][]O, numParts)
	for p := 0; p < numParts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			merged := make(map[K][]V)
			for _, buckets := range perMapper {
				if buckets == nil {
					continue
				}
				for k, vs := range buckets[p] {
					merged[k] = append(merged[k], vs...)
				}
			}
			var out []O
			emit := func(o O) { out = append(out, o) }
			for k, vs := range merged {
				r(k, vs, emit)
			}
			outs[p] = out
		}(p)
	}
	wg.Wait()

	var total int
	for _, o := range outs {
		total += len(o)
	}
	result := make([]O, 0, total)
	for _, o := range outs {
		result = append(result, o...)
	}
	return result
}
