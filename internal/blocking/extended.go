package blocking

import (
	"sort"
	"strings"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
)

// ExtendedQGramsBlocking increases the precision of Q-grams Blocking by
// keying on *combinations* of q-grams instead of individual ones (Christen's
// survey, paper ref [4]): for a token with k q-grams, every combination of
// at least ⌈k·T⌉ grams forms a key, so two profiles co-occur only when
// they share most of a token's grams rather than any single gram.
type ExtendedQGramsBlocking struct {
	// Q is the gram length (default 3).
	Q int
	// Threshold T in (0, 1] sets the minimum portion of a token's grams a
	// combination must keep (default 0.9). Lower values are more
	// recall-oriented but explode combinatorially; the number of dropped
	// grams is additionally capped at 2.
	Threshold float64
	// Workers shards the build as in TokenBlocking; 0 or 1 = serial,
	// negative = GOMAXPROCS. Output is identical for any worker count.
	Workers int
}

var (
	_ WorkerSetter   = ExtendedQGramsBlocking{}
	_ ObservedMethod = ExtendedQGramsBlocking{}
)

// Name implements Method.
func (ExtendedQGramsBlocking) Name() string { return "Extended Q-grams Blocking" }

// WithWorkers implements WorkerSetter.
func (x ExtendedQGramsBlocking) WithWorkers(workers int) Method {
	if x.Workers == 0 {
		x.Workers = workers
	}
	return x
}

// Build implements Method.
func (x ExtendedQGramsBlocking) Build(c *entity.Collection) *block.Collection {
	return x.BuildObserved(c, nil)
}

// BuildObserved implements ObservedMethod.
func (x ExtendedQGramsBlocking) BuildObserved(c *entity.Collection, o *obs.Observer) *block.Collection {
	q := x.Q
	if q < 2 {
		q = 3
	}
	threshold := x.Threshold
	if threshold <= 0 || threshold > 1 {
		threshold = 0.9
	}
	return buildKeyed(c, x.Workers, o, func(p *entity.Profile, toks []string, emit func(string)) []string {
		for _, a := range p.Attributes {
			toks = entity.AppendTokens(toks[:0], a.Value)
			for _, tok := range toks {
				for _, key := range extendedQGramKeys(tok, q, threshold) {
					emit(key)
				}
			}
		}
		return toks
	}, nil)
}

// extendedQGramKeys derives the combination keys of one token.
func extendedQGramKeys(tok string, q int, threshold float64) []string {
	if len(tok) <= q {
		return []string{tok}
	}
	var grams []string
	for i := 0; i+q <= len(tok); i++ {
		grams = append(grams, tok[i:i+q])
	}
	k := len(grams)
	min := int(float64(k)*threshold + 0.9999) // ⌈k·T⌉
	if min < 1 {
		min = 1
	}
	maxDrop := k - min
	if maxDrop > 2 {
		maxDrop = 2 // combinatorial safety cap
	}
	var keys []string
	keys = append(keys, strings.Join(grams, "")) // drop 0
	if maxDrop >= 1 {
		for d := 0; d < k; d++ {
			keys = append(keys, joinExcept(grams, d, -1))
		}
	}
	if maxDrop >= 2 {
		for d1 := 0; d1 < k; d1++ {
			for d2 := d1 + 1; d2 < k; d2++ {
				keys = append(keys, joinExcept(grams, d1, d2))
			}
		}
	}
	return keys
}

func joinExcept(grams []string, skip1, skip2 int) string {
	var b strings.Builder
	for i, g := range grams {
		if i == skip1 || i == skip2 {
			continue
		}
		b.WriteString(g)
	}
	return b.String()
}

// ExtendedSortedNeighborhood slides the window over the sorted *distinct
// blocking keys* rather than over the profile list (paper ref [4]),
// making the method robust to skewed key frequencies: all profiles of the
// keys inside a window form one block.
type ExtendedSortedNeighborhood struct {
	// Window is the number of consecutive distinct keys per block
	// (default 2).
	Window int
	// Key derives each profile's sorting keys; nil uses every token.
	Key func(p *entity.Profile) []string
}

// Name implements Method.
func (ExtendedSortedNeighborhood) Name() string { return "Extended Sorted Neighborhood" }

// Build implements Method.
func (s ExtendedSortedNeighborhood) Build(c *entity.Collection) *block.Collection {
	w := s.Window
	if w < 2 {
		w = 2
	}
	keyFn := s.Key
	if keyFn == nil {
		keyFn = func(p *entity.Profile) []string { return p.Tokens() }
	}

	keyed := make(map[string][]entity.ID)
	seen := make(map[string]struct{})
	for i := range c.Profiles {
		p := &c.Profiles[i]
		clear(seen)
		for _, k := range keyFn(p) {
			if k == "" {
				continue
			}
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			keyed[k] = append(keyed[k], p.ID)
		}
	}
	keys := make([]string, 0, len(keyed))
	for k := range keyed {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	memberSet := make(map[entity.ID]struct{})
	for start := 0; start+w <= len(keys); start++ {
		clear(memberSet)
		for _, k := range keys[start : start+w] {
			for _, id := range keyed[k] {
				memberSet[id] = struct{}{}
			}
		}
		var e1, e2 []entity.ID
		for id := range memberSet {
			if c.Task == entity.CleanClean && !c.InFirst(id) {
				e2 = append(e2, id)
			} else {
				e1 = append(e1, id)
			}
		}
		if c.Task == entity.CleanClean {
			if len(e1) == 0 || len(e2) == 0 {
				continue
			}
		} else if len(e1) < 2 {
			continue
		}
		sortIDs(e1)
		sortIDs(e2)
		b := block.Block{Key: keys[start], E1: e1}
		if c.Task == entity.CleanClean {
			b.E2 = e2
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}
