package supervised

import (
	"errors"
	"math"
	"math/rand"
)

// LogisticRegression is a binary classifier over edge feature vectors,
// trained with mini-batch-free SGD. Features are standardized internally
// (zero mean, unit variance over the training set) so the default learning
// rate works across datasets.
type LogisticRegression struct {
	Weights [NumFeatures]float64
	Bias    float64

	mean, scale [NumFeatures]float64
}

// TrainConfig tunes the SGD training loop. Zero values get defaults.
type TrainConfig struct {
	Epochs       int     // default 50
	LearningRate float64 // default 0.1
	L2           float64 // default 1e-4
	Seed         int64   // shuffling seed; default 1
}

// Train fits a logistic regression on labelled edges. The negative class
// is undersampled to the positive class size (the balanced-sampling
// strategy of ref [23]) so the model is not swamped by superfluous
// comparisons.
func Train(edges []Edge, labels []bool, cfg TrainConfig) (*LogisticRegression, error) {
	if len(edges) != len(labels) {
		return nil, errors.New("supervised: edges and labels length mismatch")
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.L2 == 0 {
		cfg.L2 = 1e-4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Balanced sample: all positives + an equal number of negatives.
	var pos, neg []int
	for i, l := range labels {
		if l {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("supervised: training set needs both classes")
	}
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	if len(neg) > len(pos) {
		neg = neg[:len(pos)]
	}
	sample := append(append([]int(nil), pos...), neg...)

	m := &LogisticRegression{}
	m.fitScaler(edges, sample)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
		for _, idx := range sample {
			x := m.standardize(edges[idx].Features)
			y := 0.0
			if labels[idx] {
				y = 1.0
			}
			p := sigmoid(dot(m.Weights, x) + m.Bias)
			grad := p - y
			for f := 0; f < NumFeatures; f++ {
				m.Weights[f] -= cfg.LearningRate * (grad*x[f] + cfg.L2*m.Weights[f])
			}
			m.Bias -= cfg.LearningRate * grad
		}
	}
	return m, nil
}

// Probability returns P(match) for an edge.
func (m *LogisticRegression) Probability(e Edge) float64 {
	return sigmoid(dot(m.Weights, m.standardize(e.Features)) + m.Bias)
}

// fitScaler computes per-feature mean and standard deviation over the
// training sample.
func (m *LogisticRegression) fitScaler(edges []Edge, sample []int) {
	n := float64(len(sample))
	for _, idx := range sample {
		for f := 0; f < NumFeatures; f++ {
			m.mean[f] += edges[idx].Features[f]
		}
	}
	for f := 0; f < NumFeatures; f++ {
		m.mean[f] /= n
	}
	for _, idx := range sample {
		for f := 0; f < NumFeatures; f++ {
			d := edges[idx].Features[f] - m.mean[f]
			m.scale[f] += d * d
		}
	}
	for f := 0; f < NumFeatures; f++ {
		m.scale[f] = math.Sqrt(m.scale[f] / n)
		if m.scale[f] == 0 {
			m.scale[f] = 1
		}
	}
}

func (m *LogisticRegression) standardize(x [NumFeatures]float64) [NumFeatures]float64 {
	var out [NumFeatures]float64
	for f := 0; f < NumFeatures; f++ {
		out[f] = (x[f] - m.mean[f]) / m.scale[f]
	}
	return out
}

func dot(w, x [NumFeatures]float64) float64 {
	var s float64
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

func sigmoid(z float64) float64 {
	// Clamp to avoid overflow in Exp for extreme logits.
	if z < -30 {
		return 0
	}
	if z > 30 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}
