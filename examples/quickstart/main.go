// Quickstart: the paper's running example end to end.
//
// Six noisy, schema-heterogeneous profiles (Figure 1a) are blocked with
// Token Blocking, restructured by Meta-blocking (JS weighting + Reciprocal
// WNP pruning), matched with the Jaccard matcher, and clustered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mb "metablocking"
)

func main() {
	mk := func(pairs ...string) mb.Profile {
		var p mb.Profile
		for i := 0; i+1 < len(pairs); i += 2 {
			p.Add(pairs[i], pairs[i+1])
		}
		return p
	}

	// The entity collection of Figure 1(a): p1≡p3 and p2≡p4 despite the
	// different attribute names and noisy values.
	profiles := []mb.Profile{
		mk("FullName", "Jack Lloyd Miller", "job", "autoseller"),
		mk("name", "Erick Green", "profession", "vehicle vendor"),
		mk("fullname", "Jack Miller", "Work", "car vendor-seller"),
		mk("name", "Erick Lloyd Green", "profession", "car trader"),
		mk("Fullname", "James Jordan", "job", "car seller"),
		mk("name", "Nick Papas", "profession", "car dealer"),
	}
	collection := mb.NewDirty(profiles)

	// Blocking + meta-blocking in one pipeline. Purging is disabled so
	// the numbers match the paper's walk-through exactly.
	pipeline := mb.Pipeline{
		Blocking:       mb.TokenBlocking{},
		DisablePurging: true,
		Scheme:         mb.JS,
		Algorithm:      mb.ReciprocalWNP,
	}
	res, err := pipeline.Run(collection)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input blocks entail %d comparisons\n", res.InputComparisons)
	fmt.Printf("meta-blocking retained %d comparisons (overhead %v):\n", len(res.Pairs), res.OTime)
	for _, p := range res.Pairs {
		fmt.Printf("  compare %v and %v\n", collection.Profile(p.A), collection.Profile(p.B))
	}

	// Entity matching over the retained comparisons only.
	matcher := mb.NewJaccardMatcher(collection, 0.25)
	matches := mb.Matches(matcher, res.Pairs)
	fmt.Printf("\nmatches found: %d\n", len(matches))
	for _, cluster := range mb.Cluster(collection, matches) {
		fmt.Printf("  duplicate cluster: %v\n", cluster)
	}
	fmt.Println("\n(the toy Jaccard matcher also pairs p2-p4 at the same 2/7 similarity as")
	fmt.Println(" the true duplicates — matching quality is orthogonal to blocking, §3)")
}
