// Package store persists the pipeline's intermediate artifacts — entity
// collections, block collections and retained-comparison lists — in a
// compact self-describing binary format (encoding/gob with a versioned
// envelope). Blocking a large collection once and re-running meta-blocking
// configurations against the saved blocks is the intended workflow.
//
// The file-level helpers (SaveResolverFile, SaveBlocksFile and their Load
// counterparts) are crash-safe: artifacts are written to a temp file in
// the destination directory, wrapped in a checksummed container (magic +
// CRC32-C footer), fsynced, renamed into place, and the directory is
// fsynced — so a crash at any instant leaves either the previous artifact
// or the new one at the final path, never a torn file. Loads verify the
// checksum before a single byte reaches the gob decoder and classify
// failures with the ErrCorruptArtifact / ErrVersionMismatch sentinels.
// Files written before the container format was introduced load as
// legacy raw-gob artifacts.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
)

// Typed load errors; classify with errors.Is. Every corruption mode — a
// bad checksum, a truncated container, a gob payload that fails to decode,
// an artifact of the wrong kind — wraps ErrCorruptArtifact, and artifacts
// written by an incompatible format version wrap ErrVersionMismatch, so a
// caller (the serving layer's verify-before-swap) never has to parse error
// strings to refuse a snapshot.
var (
	// ErrCorruptArtifact marks an artifact whose framing, checksum or
	// payload failed verification — a torn or bit-flipped file.
	ErrCorruptArtifact = errors.New("store: corrupt artifact")
	// ErrVersionMismatch marks an artifact written by an incompatible
	// format version (container or per-kind envelope).
	ErrVersionMismatch = errors.New("store: artifact version mismatch")
)

// Fault sites of the save/load paths, consulted when an injector is
// installed with SetInjector. The chaos suite arms these to prove the
// atomic write protocol: a failure (or kill) at any site must leave the
// last good artifact at the final path.
const (
	FaultSaveCreate = "store.save.create"
	FaultSaveWrite  = "store.save.write"
	FaultSaveSync   = "store.save.sync"
	FaultSaveRename = "store.save.rename"
	FaultLoadRead   = "store.load.read"
)

// injector is the package's fault-injection hook; nil (the default) makes
// every site a no-op.
var injector atomic.Pointer[fault.Injector]

// SetInjector installs a fault injector for the save/load sites; nil
// removes it. Intended for chaos tests and the -fault flag of cmd/serve.
func SetInjector(in *fault.Injector) { injector.Store(in) }

func inj() *fault.Injector { return injector.Load() }

// format versions, one per artifact kind. Bump on incompatible changes.
const (
	collectionVersion = 1
	blocksVersion     = 1
	pairsVersion      = 1
	resolverVersion   = 1
)

// Checksummed container framing: header magic + container version, then
// the gob artifact, then a footer with the payload length, its CRC32-C
// and a closing magic. The footer-last layout means a torn write is
// detectable no matter where it tore.
const (
	containerVersion = 1
	headerSize       = 8  // magic(4) + version(4)
	footerSize       = 16 // length(8) + crc(4) + magic(4)
)

var (
	headMagic = [4]byte{'M', 'B', 'A', 'F'}
	footMagic = [4]byte{'M', 'B', 'A', 'E'}
	crcPoly   = crc32.MakeTable(crc32.Castagnoli)
)

// envelope is the self-describing header of every stored artifact.
type envelope struct {
	Kind    string
	Version int
}

func writeArtifact(w io.Writer, kind string, version int, payload any) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(envelope{Kind: kind, Version: version}); err != nil {
		return fmt.Errorf("store: encoding %s header: %w", kind, err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("store: encoding %s: %w", kind, err)
	}
	return bw.Flush()
}

func readArtifact(r io.Reader, kind string, version int, payload any) error {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("store: reading header: %v: %w", err, ErrCorruptArtifact)
	}
	if env.Kind != kind {
		return fmt.Errorf("store: artifact is a %q, expected %q: %w", env.Kind, kind, ErrCorruptArtifact)
	}
	if env.Version != version {
		return fmt.Errorf("store: %s version %d unsupported (want %d): %w", kind, env.Version, version, ErrVersionMismatch)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("store: decoding %s: %v: %w", kind, err, ErrCorruptArtifact)
	}
	return nil
}

// storedCollection mirrors entity.Collection for gob.
type storedCollection struct {
	Task     int
	Split    int
	Profiles []entity.Profile
}

// WriteCollection persists an entity collection.
func WriteCollection(w io.Writer, c *entity.Collection) error {
	return writeArtifact(w, "collection", collectionVersion, storedCollection{
		Task:     int(c.Task),
		Split:    c.Split,
		Profiles: c.Profiles,
	})
}

// ReadCollection loads an entity collection.
func ReadCollection(r io.Reader) (*entity.Collection, error) {
	var s storedCollection
	if err := readArtifact(r, "collection", collectionVersion, &s); err != nil {
		return nil, err
	}
	c := &entity.Collection{
		Task:     entity.Task(s.Task),
		Split:    s.Split,
		Profiles: s.Profiles,
	}
	return c, nil
}

// storedBlocks mirrors block.Collection for gob.
type storedBlocks struct {
	Task        int
	NumEntities int
	Split       int
	Blocks      []block.Block
}

// WriteBlocks persists a block collection.
func WriteBlocks(w io.Writer, c *block.Collection) error {
	return writeArtifact(w, "blocks", blocksVersion, storedBlocks{
		Task:        int(c.Task),
		NumEntities: c.NumEntities,
		Split:       c.Split,
		Blocks:      c.Blocks,
	})
}

// ReadBlocks loads a block collection.
func ReadBlocks(r io.Reader) (*block.Collection, error) {
	var s storedBlocks
	if err := readArtifact(r, "blocks", blocksVersion, &s); err != nil {
		return nil, err
	}
	return &block.Collection{
		Task:        entity.Task(s.Task),
		NumEntities: s.NumEntities,
		Split:       s.Split,
		Blocks:      s.Blocks,
	}, nil
}

// WritePairs persists a retained-comparison list.
func WritePairs(w io.Writer, pairs []entity.Pair) error {
	return writeArtifact(w, "pairs", pairsVersion, pairs)
}

// ReadPairs loads a retained-comparison list.
func ReadPairs(r io.Reader) ([]entity.Pair, error) {
	var pairs []entity.Pair
	if err := readArtifact(r, "pairs", pairsVersion, &pairs); err != nil {
		return nil, err
	}
	return pairs, nil
}

// storedResolver mirrors incremental.Snapshot for gob. The block index is
// flattened into parallel key/member slices, sorted by key, so the same
// snapshot always serializes to the same bytes (gob map encoding would
// follow Go's randomized map iteration).
type storedResolver struct {
	Scheme         int
	K              int
	MaxBlockSize   int
	MinTokenLength int
	Profiles       []entity.Profile
	BlockKeys      []string
	BlockMembers   [][]entity.ID
	BlocksOf       [][]string
}

// WriteResolver persists an incremental-resolver snapshot — the artifact
// cmd/serve loads at startup and hot-swaps via /v1/admin/reload.
func WriteResolver(w io.Writer, s *incremental.Snapshot) error {
	sr := storedResolver{
		Scheme:         int(s.Config.Scheme),
		K:              s.Config.K,
		MaxBlockSize:   s.Config.MaxBlockSize,
		MinTokenLength: s.Config.MinTokenLength,
		Profiles:       s.Profiles,
		BlocksOf:       s.BlocksOf,
	}
	sr.BlockKeys = make([]string, 0, len(s.Blocks))
	for k := range s.Blocks {
		sr.BlockKeys = append(sr.BlockKeys, k)
	}
	sort.Strings(sr.BlockKeys)
	sr.BlockMembers = make([][]entity.ID, len(sr.BlockKeys))
	for i, k := range sr.BlockKeys {
		sr.BlockMembers[i] = s.Blocks[k]
	}
	return writeArtifact(w, "resolver", resolverVersion, sr)
}

// ReadResolver loads an incremental-resolver snapshot.
func ReadResolver(r io.Reader) (*incremental.Snapshot, error) {
	var sr storedResolver
	if err := readArtifact(r, "resolver", resolverVersion, &sr); err != nil {
		return nil, err
	}
	if len(sr.BlockKeys) != len(sr.BlockMembers) {
		return nil, fmt.Errorf("store: resolver snapshot has %d block keys but %d member lists: %w",
			len(sr.BlockKeys), len(sr.BlockMembers), ErrCorruptArtifact)
	}
	s := &incremental.Snapshot{
		Config: incremental.Config{
			Scheme:         core.Scheme(sr.Scheme),
			K:              sr.K,
			MaxBlockSize:   sr.MaxBlockSize,
			MinTokenLength: sr.MinTokenLength,
		},
		Profiles: sr.Profiles,
		Blocks:   make(map[string][]entity.ID, len(sr.BlockKeys)),
		BlocksOf: sr.BlocksOf,
	}
	for i, k := range sr.BlockKeys {
		s.Blocks[k] = sr.BlockMembers[i]
	}
	return s, nil
}

// SaveResolverFile persists a resolver snapshot to a file with the atomic
// checksummed write protocol.
func SaveResolverFile(path string, s *incremental.Snapshot) error {
	return saveFileAtomic(path, func(w io.Writer) error { return WriteResolver(w, s) })
}

// LoadResolverFile loads a resolver snapshot from a file, verifying its
// checksum first (ErrCorruptArtifact / ErrVersionMismatch on failure).
func LoadResolverFile(path string) (*incremental.Snapshot, error) {
	payload, err := readFileVerified(path)
	if err != nil {
		return nil, err
	}
	return ReadResolver(bytes.NewReader(payload))
}

// SaveBlocksFile persists a block collection with the same atomic
// checksummed protocol.
func SaveBlocksFile(path string, c *block.Collection) error {
	return saveFileAtomic(path, func(w io.Writer) error { return WriteBlocks(w, c) })
}

// LoadBlocksFile loads a block collection from a file, verifying its
// checksum first.
func LoadBlocksFile(path string) (*block.Collection, error) {
	payload, err := readFileVerified(path)
	if err != nil {
		return nil, err
	}
	return ReadBlocks(bytes.NewReader(payload))
}

// saveFileAtomic writes one artifact crash-safely: the checksummed
// container goes to a temp file in the destination directory, is fsynced,
// renamed over the final path, and the directory entry is fsynced. The
// final path therefore always holds a complete artifact — the previous
// one until the rename commits, the new one after.
func saveFileAtomic(path string, write func(io.Writer) error) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		var header [headerSize]byte
		copy(header[:4], headMagic[:])
		binary.LittleEndian.PutUint32(header[4:], containerVersion)
		if _, err := w.Write(header[:]); err != nil {
			return err
		}
		cw := &crcWriter{w: w}
		if err := write(cw); err != nil {
			return err
		}
		var footer [footerSize]byte
		binary.LittleEndian.PutUint64(footer[:8], uint64(cw.n))
		binary.LittleEndian.PutUint32(footer[8:12], cw.crc)
		copy(footer[12:], footMagic[:])
		_, err := w.Write(footer[:])
		return err
	})
}

// AtomicWriteFile runs the crash-safe write protocol shared by every
// artifact this package persists — container-framed gobs and the paged
// disk-index segments alike: write to a temp file in the destination
// directory (through the armed fault sites, so chaos tests can tear the
// write), flush, fsync, rename over the final path, fsync the directory.
// A crash at any instant leaves either the previous file or the new one
// at path, never a torn mix. The callback owns the file's framing; it
// receives a buffered writer.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	in := inj()
	if ferr := in.Check(FaultSaveCreate); ferr != nil {
		return ferr
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriter(in.Writer(FaultSaveWrite, f))
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = in.Check(FaultSaveSync); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = in.Check(FaultSaveRename); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so the rename that committed an artifact is
// durable. Filesystems that refuse directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// crcWriter tracks the length and CRC32-C of everything written through it.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, crcPoly, p[:n])
	return n, err
}

// readFileVerified reads an artifact file and returns its gob payload
// after checksum verification. Container-framed files are verified
// end-to-end; files without the header magic are legacy raw-gob artifacts
// and are returned whole (their gob envelope still guards kind/version).
func readFileVerified(path string) ([]byte, error) {
	if err := inj().Check(FaultLoadRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || !bytes.Equal(data[:4], headMagic[:]) {
		return data, nil // legacy artifact: raw gob, no container
	}
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("store: %s: container truncated to %d bytes: %w", path, len(data), ErrCorruptArtifact)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != containerVersion {
		return nil, fmt.Errorf("store: %s: container version %d (want %d): %w", path, v, containerVersion, ErrVersionMismatch)
	}
	payload := data[headerSize : len(data)-footerSize]
	footer := data[len(data)-footerSize:]
	if !bytes.Equal(footer[12:], footMagic[:]) {
		return nil, fmt.Errorf("store: %s: footer magic missing (torn write): %w", path, ErrCorruptArtifact)
	}
	if n := binary.LittleEndian.Uint64(footer[:8]); n != uint64(len(payload)) {
		return nil, fmt.Errorf("store: %s: payload length %d, footer says %d: %w", path, len(payload), n, ErrCorruptArtifact)
	}
	if crc := crc32.Checksum(payload, crcPoly); crc != binary.LittleEndian.Uint32(footer[8:12]) {
		return nil, fmt.Errorf("store: %s: checksum mismatch: %w", path, ErrCorruptArtifact)
	}
	return payload, nil
}
