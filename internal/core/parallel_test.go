package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/paperexample"
)

// TestPruneParallelMatchesSerial: for every algorithm, scheme, worker
// count and task type, the parallel implementation must retain exactly
// the serial result (after canonical ordering).
func TestPruneParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inputs := map[string]*block.Collection{
		"dirty":   randomDirtyBlocks(rng, 60, 50),
		"clean":   randomCleanBlocks(rng, 25, 60, 50),
		"example": blocking.TokenBlocking{}.Build(paperexample.Collection()),
	}
	for name, blocks := range inputs {
		for _, scheme := range AllSchemes {
			for _, alg := range AllAlgorithms {
				want := NewGraph(blocks, scheme).Prune(alg)
				sortPairs(want)
				for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
					got := NewGraph(blocks, scheme).PruneParallel(alg, workers)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%v/%v workers=%d: parallel (%d pairs) ≠ serial (%d pairs)",
							name, scheme, alg, workers, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestPruneParallelOnSyntheticDataset exercises the parallel path on a
// realistic blocking graph with default worker count.
func TestPruneParallelOnSyntheticDataset(t *testing.T) {
	ds := datagen.D1C(0.05)
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	for _, alg := range []Algorithm{CEP, WEP, RedefinedCNP, ReciprocalWNP} {
		serial := NewGraph(blocks, ECBS).Prune(alg)
		sortPairs(serial)
		parallel := NewGraph(blocks, ECBS).PruneParallel(alg, 0)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%v: parallel ≠ serial on synthetic data: %d vs %d pairs",
				alg, len(parallel), len(serial))
		}
	}
}

// TestNewGraphWorkersMatchesSerial: the parallel graph construction must
// produce the same Entity Index contents and (for EJS) the same node
// degrees as the serial build, for every worker count.
func TestNewGraphWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	inputs := map[string]*block.Collection{
		"dirty": randomDirtyBlocks(rng, 60, 50),
		"clean": randomCleanBlocks(rng, 25, 60, 50),
	}
	for name, blocks := range inputs {
		want := NewGraph(blocks, EJS)
		for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0), -1} {
			got := NewGraphWorkers(blocks, EJS, workers)
			if got.NumNodes() != want.NumNodes() {
				t.Fatalf("%s workers=%d: NumNodes %d ≠ %d", name, workers, got.NumNodes(), want.NumNodes())
			}
			for id := 0; id < blocks.NumEntities; id++ {
				i := entity.ID(id)
				if !reflect.DeepEqual(got.index.BlockList(i), want.index.BlockList(i)) {
					t.Fatalf("%s workers=%d entity %d: block lists differ", name, workers, id)
				}
				if got.degrees[i] != want.degrees[i] {
					t.Fatalf("%s workers=%d entity %d: degree %d ≠ %d",
						name, workers, id, got.degrees[i], want.degrees[i])
				}
			}
		}
	}
}

// TestShardSharesImmutableState ensures shards see the same graph but own
// their scratch.
func TestShardSharesImmutableState(t *testing.T) {
	g := exampleGraph(t, EJS)
	s := g.shard()
	if s.index != g.index || s.blocks != g.blocks {
		t.Fatal("shard must share index and blocks")
	}
	if &s.sc.cells[0] == &g.sc.cells[0] {
		t.Fatal("shard must not share scratch arrays")
	}
	if s.ctx != g.ctx {
		t.Fatal("shard must inherit the weight context")
	}
}

// TestRunWorkersWithOriginalWeighting: OriginalWeighting takes precedence
// over Workers (parallel traversals are optimized-only), and the result
// still matches the serial optimized run.
func TestRunWorkersWithOriginalWeighting(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	serial := Run(blocks, Config{Scheme: JS, Algorithm: WEP})
	both := Run(blocks, Config{Scheme: JS, Algorithm: WEP, OriginalWeighting: true, Workers: 4})
	if len(serial.Pairs) != len(both.Pairs) {
		t.Fatalf("results differ: %d vs %d", len(serial.Pairs), len(both.Pairs))
	}
	negative := Run(blocks, Config{Scheme: JS, Algorithm: WEP, Workers: -1})
	if len(negative.Pairs) != len(serial.Pairs) {
		t.Fatalf("Workers=-1 changed the result: %d vs %d", len(negative.Pairs), len(serial.Pairs))
	}
}
