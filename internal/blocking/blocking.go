// Package blocking implements the blocking methods the paper builds on:
// the schema-agnostic, redundancy-positive methods (Token Blocking,
// Q-grams Blocking, Suffix Arrays, Attribute Clustering) plus Standard
// Blocking (disjoint) and Sorted Neighborhood (redundancy-neutral) for
// completeness of the taxonomy in §2.
package blocking

import (
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Method builds a block collection from an entity collection.
type Method interface {
	// Name identifies the method in reports and experiment output.
	Name() string
	// Build extracts the block collection. Implementations must produce a
	// deterministic block order for a given input.
	Build(c *entity.Collection) *block.Collection
}

// keyIndex accumulates, per blocking key, the profiles assigned to it,
// split by source collection, and converts the result into blocks.
type keyIndex struct {
	task  entity.Task
	split int
	keys  map[string]*keyEntry
}

type keyEntry struct {
	e1, e2 []entity.ID
}

func newKeyIndex(c *entity.Collection) *keyIndex {
	return &keyIndex{task: c.Task, split: c.Split, keys: make(map[string]*keyEntry)}
}

// add assigns a profile to a blocking key. Repeated assignments of the same
// profile to the same key are deduplicated by the caller supplying distinct
// keys per profile (use a per-profile set).
func (k *keyIndex) add(key string, id entity.ID) {
	e := k.keys[key]
	if e == nil {
		e = &keyEntry{}
		k.keys[key] = e
	}
	if k.task == entity.CleanClean && int(id) >= k.split {
		e.e2 = append(e.e2, id)
	} else {
		e.e1 = append(e.e1, id)
	}
}

// build converts the accumulated keys into a block collection, keeping only
// keys that entail at least one comparison: two profiles for Dirty ER, or
// one profile from each source for Clean-Clean ER. Blocks are ordered by
// key for determinism.
func (k *keyIndex) build(c *entity.Collection) *block.Collection {
	keys := make([]string, 0, len(k.keys))
	for key, e := range k.keys {
		if k.task == entity.CleanClean {
			if len(e.e1) == 0 || len(e.e2) == 0 {
				continue
			}
		} else if len(e.e1) < 2 {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)

	out := &block.Collection{Task: c.Task, NumEntities: c.Size(), Split: c.Split}
	out.Blocks = make([]block.Block, 0, len(keys))
	for _, key := range keys {
		e := k.keys[key]
		b := block.Block{Key: key, E1: e.e1}
		if k.task == entity.CleanClean {
			b.E2 = e.e2
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

// forEachProfileKeys runs fn once per profile with that profile's distinct
// blocking keys, reusing a scratch set between profiles.
func forEachProfileKeys(c *entity.Collection, keysOf func(p *entity.Profile, emit func(string)), fn func(id entity.ID, keys []string)) {
	seen := make(map[string]struct{})
	var buf []string
	for i := range c.Profiles {
		p := &c.Profiles[i]
		buf = buf[:0]
		clear(seen)
		keysOf(p, func(key string) {
			if key == "" {
				return
			}
			if _, ok := seen[key]; ok {
				return
			}
			seen[key] = struct{}{}
			buf = append(buf, key)
		})
		fn(p.ID, buf)
	}
}
