package core

import (
	"time"

	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
)

// Config selects a full meta-blocking configuration: one weighting scheme
// combined with one pruning algorithm (Fig. 3 — every combination of the
// two parameters is valid), plus the edge-weighting implementation.
type Config struct {
	Scheme    Scheme
	Algorithm Algorithm
	// OriginalWeighting uses Algorithm 2 instead of the Optimized Edge
	// Weighting of Algorithm 3.
	OriginalWeighting bool
	// Workers enables the multi-core path for graph construction (Entity
	// Index, EJS degrees) and pruning: 0 keeps the serial implementation,
	// negative uses GOMAXPROCS, positive that many workers. The parallel
	// path always uses Optimized Edge Weighting and returns pairs in
	// canonical order; OriginalWeighting takes precedence when both are
	// set.
	Workers int
	// CompressedIndex stores the Entity Index as delta+varint posting
	// lists (dense-bitmap fallback) instead of flat []int32 views, trading
	// a decode per neighborhood scan for a fraction of the memory.
	// Outputs are bit-identical to the flat path.
	CompressedIndex bool
	// Obs is the run's observability handle: graph/prune stage spans,
	// progress, the graph.nodes / prune.* counters and cooperative
	// cancellation. Nil disables all of it. When Obs's context is
	// canceled, Run aborts mid-stage and returns a partial Result the
	// caller must discard after checking Obs.Err.
	Obs *obs.Observer
}

// Result is the output of one meta-blocking run.
type Result struct {
	// Pairs holds the retained comparisons; the original node-centric
	// algorithms (CNP, WNP) may retain a pair twice.
	Pairs []entity.Pair
	// OTime is the overhead: graph construction plus pruning.
	OTime time.Duration
	// GraphTime is the slice of OTime spent building the blocking graph
	// (Entity Index plus, for EJS, the degree pass).
	GraphTime time.Duration
	// PruneTime is the slice of OTime spent pruning.
	PruneTime time.Duration
}

// Run restructures the block collection with the given configuration and
// returns the retained comparisons along with the measured overhead time,
// broken down into graph construction and pruning. A non-zero Workers
// parallelizes both phases.
func Run(c *block.Collection, cfg Config) Result {
	o := cfg.Obs
	start := time.Now()
	parallel := cfg.Workers != 0 && !cfg.OriginalWeighting
	endSpan := o.StartSpan(obs.StageGraph)
	graphWorkers := 1
	if parallel {
		graphWorkers = cfg.Workers
	}
	g := NewGraphObserved(c, cfg.Scheme, graphWorkers, o)
	g.OriginalWeighting = cfg.OriginalWeighting
	if cfg.CompressedIndex && !o.Canceled() {
		g.CompressIndex()
	}
	endSpan()
	graphDone := time.Now()
	if o.Canceled() {
		return Result{OTime: graphDone.Sub(start), GraphTime: graphDone.Sub(start)}
	}
	o.Counter(obs.CtrGraphNodes).Add(int64(g.NumNodes()))
	endSpan = o.StartSpan(obs.StagePrune)
	if !cfg.OriginalWeighting {
		// The progress total is the exact number of outer-loop iterations
		// of the algorithm's optimized weighting passes; the Original
		// traversals are comparison-driven and report no progress.
		g.meter = o.NewMeter(obs.StagePrune, pruneTicks(cfg.Algorithm, c))
	}
	var pairs []entity.Pair
	if parallel {
		pairs = g.PruneParallel(cfg.Algorithm, cfg.Workers)
	} else {
		o.Gauge(obs.GaugeWorkersPrune).Set(1)
		pairs = g.Prune(cfg.Algorithm)
	}
	g.meter = nil
	endSpan()
	o.Counter(obs.CtrPairsRetained).Add(int64(len(pairs)))
	end := time.Now()
	return Result{
		Pairs:     pairs,
		OTime:     end.Sub(start),
		GraphTime: graphDone.Sub(start),
		PruneTime: end.Sub(graphDone),
	}
}

// pruneTicks returns the exact number of outer-loop iterations the
// algorithm's optimized weighting passes perform over the collection —
// the progress total of the prune stage. Node-centric passes visit every
// entity ID; edge-centric passes visit only the emitting endpoints (all
// IDs for Dirty ER, the E1 side for Clean-Clean ER).
func pruneTicks(a Algorithm, c *block.Collection) int64 {
	node := int64(c.NumEntities)
	edge := node
	if c.Task == entity.CleanClean {
		edge = int64(c.Split)
	}
	switch a {
	case CEP:
		return edge
	case WEP:
		return 2 * edge
	case RedefinedWNP, ReciprocalWNP:
		return node + edge
	default: // CNP, WNP, RedefinedCNP, ReciprocalCNP: one node-centric pass
		return node
	}
}
