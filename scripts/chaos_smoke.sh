#!/bin/sh
# chaos_smoke.sh — crash-safety smoke test for cmd/serve, run by `make
# chaos-smoke` (and CI): kill the real binary with SIGKILL in the middle
# of a snapshot write (a -fault delay pins it inside the pre-rename
# window), then prove the previously saved artifact is still loadable —
# a restarted server goes green on /readyz and keeps resolving. Also
# checks that reloading a deliberately corrupted snapshot yields 422 and
# leaves the live index serving, that a progressive stream killed
# mid-flight leaves a cursor the restarted server refuses with a clean
# 410 cursor_invalid (fresh signing key) rather than a wrong answer, and
# that with -wal-sync=always a SIGKILL inside the group-commit window
# loses no acknowledged write: the restart replays the WAL tail and
# answers bit-identically to a never-crashed control.
set -eu

workdir="$(mktemp -d)"
log="$workdir/serve.log"
snap="$workdir/chaos.snap"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "chaos-smoke: building cmd/serve"
go build -o "$workdir/serve" ./cmd/serve

# start_server <extra flags...> — boots the binary and sets $base/$pid.
start_server() {
    : >"$log"
    "$workdir/serve" -addr 127.0.0.1:0 -scheme js -k 5 "$@" >"$log" 2>&1 &
    pid=$!
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's/^serve: listening on \(http:\/\/[0-9.:]*\)$/\1/p' "$log" | head -n 1)"
        [ -n "$base" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "chaos-smoke: server died early:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "chaos-smoke: server never announced its address:"; cat "$log"; exit 1; }
}

resolve() {
    curl -fsS -X POST -d "$1" "$base/v1/resolve" >/dev/null
}

# Phase 1: build a known-good artifact.
start_server
resolve '{"attributes":{"name":["jack miller"],"job":["car seller"]}}'
resolve '{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}'
saved="$(curl -fsS -X POST -d "{\"path\":\"$snap\"}" "$base/v1/admin/snapshot")"
echo "$saved" | grep -q '"profiles":2' || { echo "chaos-smoke: snapshot: $saved"; exit 1; }
kill -TERM "$pid"; wait "$pid" || true; pid=""
sum_before="$(cksum "$snap")"
echo "chaos-smoke: good artifact written ($sum_before)"

# Phase 2: SIGKILL mid-snapshot. The armed delay pins the save between
# writing the temp file and the fsync+rename, so the kill lands while the
# overwrite of $snap is in flight — the atomic-save window under test.
start_server -snapshot "$snap" -fault 'store.save.sync:delay=10s'
resolve '{"attributes":{"name":["john smith"],"city":["berlin"]}}'
curl -fsS -X POST -d "{\"path\":\"$snap\"}" "$base/v1/admin/snapshot" >/dev/null 2>&1 &
curl_pid=$!
sleep 1
echo "chaos-smoke: SIGKILL mid-snapshot"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
wait "$curl_pid" 2>/dev/null || true

sum_after="$(cksum "$snap")"
[ "$sum_before" = "$sum_after" ] || { echo "chaos-smoke: artifact changed across a torn write ($sum_before -> $sum_after)"; exit 1; }

# Phase 3: restart on the surviving artifact — readiness must go green.
start_server -snapshot "$snap"
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "chaos-smoke: /readyz not green after crash recovery"; cat "$log"; exit 1; }
grep -q 'loaded snapshot .* (2 profiles)' "$log" || { echo "chaos-smoke: snapshot not restored:"; cat "$log"; exit 1; }
resolve '{"attributes":{"name":["jack miller"],"job":["car seller"]}}'

# Phase 4: a corrupted artifact is rejected with 422 and the index keeps
# serving.
corrupt="$workdir/corrupt.snap"
cp "$snap" "$corrupt"
# Flip one byte in the middle of the payload.
size="$(wc -c <"$corrupt")"
mid=$((size / 2))
printf '\377' | dd of="$corrupt" bs=1 seek="$mid" count=1 conv=notrunc 2>/dev/null
code="$(curl -sS -o "$workdir/reload.out" -w '%{http_code}' -X POST -d "{\"path\":\"$corrupt\"}" "$base/v1/admin/reload")"
[ "$code" = "422" ] || { echo "chaos-smoke: corrupt reload returned $code, want 422:"; cat "$workdir/reload.out"; exit 1; }
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "chaos-smoke: not ready after rejected reload"; exit 1; }
resolve '{"attributes":{"name":["jane doe"]}}'
curl -fsS "$base/metrics" | grep -q 'store\.corrupt_loads *1' || { echo "chaos-smoke: corrupt_loads counter missing"; curl -fsS "$base/metrics"; exit 1; }

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "chaos-smoke: exit status $status after SIGTERM:"; cat "$log"; exit 1; }

# Phase 5: the sharded layout survives the same crash window. A -shards 4
# server writes a manifest plus four per-shard segments; SIGKILL during
# the next (fault-delayed) save must leave every committed file — the
# manifest and all generation-1 segments — checksum-valid and loadable.
shardsnap="$workdir/sharded.snap"
start_server -shards 4
resolve '{"attributes":{"name":["jack miller"],"job":["car seller"]}}'
resolve '{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}'
saved="$(curl -fsS -X POST -d "{\"path\":\"$shardsnap\"}" "$base/v1/admin/snapshot")"
echo "$saved" | grep -q '"profiles":2' || { echo "chaos-smoke: sharded snapshot: $saved"; exit 1; }
kill -TERM "$pid"; wait "$pid" || true; pid=""
segcount="$(ls "$shardsnap".g*.s* 2>/dev/null | wc -l)"
[ "$segcount" -eq 4 ] || { echo "chaos-smoke: expected 4 segment files, found $segcount"; exit 1; }
sums_before="$(cksum "$shardsnap" "$shardsnap".g*.s* | sort)"
echo "chaos-smoke: sharded artifact written (manifest + $segcount segments)"

start_server -shards 4 -snapshot "$shardsnap" -fault 'store.save.sync:delay=10s'
resolve '{"attributes":{"name":["john smith"],"city":["berlin"]}}'
curl -fsS -X POST -d "{\"path\":\"$shardsnap\"}" "$base/v1/admin/snapshot" >/dev/null 2>&1 &
curl_pid=$!
sleep 1
echo "chaos-smoke: SIGKILL mid-sharded-snapshot"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
wait "$curl_pid" 2>/dev/null || true

# Generation-1 files must be bit-identical; half-written generation-2
# segments may linger but are ignored by the loader and swept on the
# next successful save.
sums_after="$(cksum "$shardsnap" $(ls "$shardsnap".g1.s* 2>/dev/null) | sort)"
sums_g1_before="$(echo "$sums_before" | grep -v '\.g[2-9]' || true)"
[ "$sums_g1_before" = "$sums_after" ] || {
    echo "chaos-smoke: committed sharded files changed across a torn write"
    echo "before: $sums_g1_before"; echo "after: $sums_after"; exit 1;
}

start_server -shards 4 -snapshot "$shardsnap"
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "chaos-smoke: /readyz not green after sharded crash recovery"; cat "$log"; exit 1; }
grep -q 'loaded snapshot .* (2 profiles)' "$log" || { echo "chaos-smoke: sharded snapshot not restored:"; cat "$log"; exit 1; }
resolve '{"attributes":{"name":["jack miller"],"job":["car seller"]}}'
status_body="$(curl -fsS "$base/v1/admin/status")"
echo "$status_body" | grep -q '"shards":4' || { echo "chaos-smoke: status missing shard count: $status_body"; exit 1; }
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "chaos-smoke: exit status $status after sharded SIGTERM:"; cat "$log"; exit 1; }

# Phase 6: the out-of-core (-disk-dir) index survives SIGKILL in the
# middle of a background compaction. A 1-byte memtable budget makes every
# arrival checkpoint the directory; -compact-after 2 makes nearly every
# checkpoint trigger a compaction. The armed delay pins shard 0 inside
# its compaction window — after the sealed generation's manifest is
# committed — so the kill lands mid-compaction, and recovery must land on
# that committed checkpoint: no sealed generation is ever lost.
diskdir="$workdir/diskidx"
p1='{"attributes":{"name":["jack miller"],"job":["car seller"]}}'
p2='{"attributes":{"fullname":["jack q miller"],"work":["car vendor"]}}'
p3='{"attributes":{"name":["john smith"],"city":["berlin"]}}'
p4='{"attributes":{"name":["jane doe"],"city":["berlin"]}}'
p5='{"attributes":{"name":["john q smith"],"job":["car seller"]}}'
probe='{"attributes":{"name":["jack smith"],"city":["berlin"],"job":["car vendor"]}}'

start_server -disk-dir "$diskdir" -shards 2 -memtable-budget 1 -compact-after 2
resolve "$p1"; resolve "$p2"; resolve "$p3"; resolve "$p4"
# /v1/admin/snapshot with an empty path = checkpoint the directory in place.
saved="$(curl -fsS -X POST -d '{"path":""}' "$base/v1/admin/snapshot")"
echo "$saved" | grep -q '"profiles":4' || { echo "chaos-smoke: disk checkpoint: $saved"; exit 1; }
kill -TERM "$pid"; wait "$pid" || true; pid=""
echo "chaos-smoke: disk index checkpointed (4 profiles)"

# Restart armed: the fifth arrival blows the 1-byte budget, the automatic
# checkpoint seals and commits generation 5, then shard 0's compaction
# hits the 10s delay — SIGKILL lands inside it. The WAL sync barrier is
# off here: under -wal-sync=always the barrier would (correctly) queue
# behind the pinned compaction on the same actor and stall the resolve;
# this phase tests the segment layer's checkpoint durability, and
# phase 8 covers the barrier.
start_server -disk-dir "$diskdir" -shards 2 -memtable-budget 1 -compact-after 2 \
    -wal-sync=off -fault 'shard.0.compact:delay=10s'
resolve "$p5"
sleep 1
echo "chaos-smoke: SIGKILL mid-compaction"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Recovery: readiness green, all five sealed arrivals present, and the
# probe answer must be bit-identical to a run that never crashed.
start_server -disk-dir "$diskdir" -shards 2 -memtable-budget 1 -compact-after 2
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "chaos-smoke: /readyz not green after mid-compaction crash"; cat "$log"; exit 1; }
status_body="$(curl -fsS "$base/v1/admin/status")"
echo "$status_body" | grep -q '"profiles":5' || { echo "chaos-smoke: sealed generation lost: $status_body"; exit 1; }
echo "$status_body" | grep -q '"checkpoint"' || { echo "chaos-smoke: status missing checkpoint: $status_body"; exit 1; }
crashed_answer="$(curl -fsS -X POST -d "$probe" "$base/v1/resolve")"
kill -TERM "$pid"; wait "$pid" || true; pid=""

# Control: the same six arrivals straight through a fresh in-memory
# server; out-of-core + crash recovery must not change a single answer.
start_server
resolve "$p1"; resolve "$p2"; resolve "$p3"; resolve "$p4"; resolve "$p5"
control_answer="$(curl -fsS -X POST -d "$probe" "$base/v1/resolve")"
[ "$crashed_answer" = "$control_answer" ] || {
    echo "chaos-smoke: post-crash answer diverged from the no-crash control"
    echo "crashed: $crashed_answer"; echo "control: $control_answer"; exit 1;
}
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "chaos-smoke: exit status $status after disk-mode SIGTERM:"; cat "$log"; exit 1; }

# Phase 7: a progressive stream crosses a SIGKILL only as far as its
# cursor allows. A budgeted stream exhausts and hands out a signed
# resumption cursor; resuming against the live process streams the
# remainder to completion. Then a second stream is pinned mid-flight (an
# armed delay on the flush path) and the process is SIGKILLed — the
# restarted server signs with a fresh per-process key, so the stale
# cursor must be refused with a clean, typed 410 cursor_invalid
# envelope: never a wrong answer, never a bare error.
start_server -fault 'server.stream:delay=10s,after=2'
resolve "$p1"; resolve "$p2"; resolve "$p3"; resolve "$p4"; resolve "$p5"
stream1="$(curl -fsS -X POST -H 'Accept: application/x-ndjson' -d "$probe" "$base/v1/resolve?max_comparisons=1")"
echo "$stream1" | grep -q '"batch"' || { echo "chaos-smoke: budgeted stream flushed nothing: $stream1"; exit 1; }
cursor="$(printf '%s\n' "$stream1" | sed -n 's/.*"cursor":{"cursor":"\([^"]*\)".*/\1/p')"
[ -n "$cursor" ] || { echo "chaos-smoke: exhausted stream carried no cursor: $stream1"; exit 1; }

# Live resume: the remainder arrives and the stream completes (done frame).
resumed="$(curl -fsS -X POST -H 'Accept: application/x-ndjson' -d "$probe" "$base/v1/resolve?cursor=$cursor")"
echo "$resumed" | grep -q '"done"' || { echo "chaos-smoke: live resume did not complete: $resumed"; exit 1; }
echo "chaos-smoke: budgeted stream resumed to completion pre-crash"

# The third stream trips the armed delay on its first flush — pinned
# mid-stream (headers and meta frame out, no batch yet) when the kill lands.
curl -sS -X POST -H 'Accept: application/x-ndjson' -d "$probe" "$base/v1/resolve" >"$workdir/pinned.out" 2>&1 &
curl_pid=$!
sleep 1
echo "chaos-smoke: SIGKILL mid-stream"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
wait "$curl_pid" 2>/dev/null || true
if grep -q '"done"\|"cursor"' "$workdir/pinned.out"; then
    echo "chaos-smoke: pinned stream was not mid-flight at the kill"; cat "$workdir/pinned.out"; exit 1
fi

# Restart: fresh signing key, so the pre-crash cursor is structurally
# valid but unverifiable — the server must answer 410 cursor_invalid.
start_server
resolve "$p1"
code="$(curl -sS -o "$workdir/resume.out" -w '%{http_code}' -X POST -H 'Accept: application/x-ndjson' -d "$probe" "$base/v1/resolve?cursor=$cursor")"
[ "$code" = "410" ] || { echo "chaos-smoke: stale cursor returned $code, want 410:"; cat "$workdir/resume.out"; exit 1; }
grep -q '"code":"cursor_invalid"' "$workdir/resume.out" || { echo "chaos-smoke: 410 body missing cursor_invalid:"; cat "$workdir/resume.out"; exit 1; }
curl -fsS "$base/metrics" | grep -q 'budget\.cursor_invalid *1' || { echo "chaos-smoke: cursor_invalid counter missing"; curl -fsS "$base/metrics"; exit 1; }
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "chaos-smoke: exit status $status after mid-stream SIGTERM:"; cat "$log"; exit 1; }

# Phase 8: the write-ahead log closes disk mode's last loss window.
# Under -wal-sync=always every acknowledgment waits on an fsync barrier;
# the armed delay skips the first four barriers and pins the fifth open
# — p5's record is appended to the log, its reply unsent — when the
# SIGKILL lands. No checkpoint is ever taken (default memtable budget),
# so the restart recovers everything from the log alone: all four
# acknowledged arrivals (zero acknowledged-write loss) plus the
# in-flight fifth (at-least-once), and the probe answer must be
# bit-identical to a never-crashed control over the same five arrivals.
waldir="$workdir/walidx"
start_server -disk-dir "$waldir" -shards 1 -wal-sync=always \
    -fault 'shard.0.wal.sync:delay=10s,after=4'
resolve "$p1"; resolve "$p2"; resolve "$p3"; resolve "$p4"
curl -sS -X POST -d "$p5" "$base/v1/resolve" >"$workdir/pinned5.out" 2>&1 &
curl_pid=$!
sleep 1
echo "chaos-smoke: SIGKILL mid-group-commit"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
wait "$curl_pid" 2>/dev/null || true
if grep -q '"id":4' "$workdir/pinned5.out"; then
    echo "chaos-smoke: pinned commit was acknowledged before its sync barrier"; cat "$workdir/pinned5.out"; exit 1
fi

start_server -disk-dir "$waldir" -shards 1 -wal-sync=always
curl -fsS "$base/readyz" | grep -q '^ready$' || { echo "chaos-smoke: /readyz not green after mid-commit crash"; cat "$log"; exit 1; }
status_body="$(curl -fsS "$base/v1/admin/status")"
echo "$status_body" | grep -q '"profiles":5' || { echo "chaos-smoke: WAL replay lost writes: $status_body"; exit 1; }
echo "$status_body" | grep -q '"checkpoint":0' || { echo "chaos-smoke: unexpected checkpoint — recovery was not WAL-only: $status_body"; exit 1; }
echo "$status_body" | grep -q '"wal_sync":"always"' || { echo "chaos-smoke: status missing wal_sync: $status_body"; exit 1; }
curl -fsS "$base/metrics" | grep -q 'diskindex\.wal_replayed *5' || { echo "chaos-smoke: wal_replayed counter wrong"; curl -fsS "$base/metrics"; exit 1; }
crashed_answer="$(curl -fsS -X POST -d "$probe" "$base/v1/resolve")"
kill -TERM "$pid"; wait "$pid" || true; pid=""

# Control: the same five arrivals, never crashed, in-memory.
start_server
resolve "$p1"; resolve "$p2"; resolve "$p3"; resolve "$p4"; resolve "$p5"
control_answer="$(curl -fsS -X POST -d "$probe" "$base/v1/resolve")"
[ "$crashed_answer" = "$control_answer" ] || {
    echo "chaos-smoke: post-WAL-replay answer diverged from the no-crash control"
    echo "crashed: $crashed_answer"; echo "control: $control_answer"; exit 1;
}
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
[ "$status" -eq 0 ] || { echo "chaos-smoke: exit status $status after WAL-mode SIGTERM:"; cat "$log"; exit 1; }
echo "chaos-smoke: WAL replay recovered every acknowledged write"

echo "chaos-smoke: OK"
