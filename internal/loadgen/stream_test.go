package loadgen

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"metablocking/internal/entity"
)

func TestHTTPStreamerReassemblesStream(t *testing.T) {
	var lastQuery url.Values
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastQuery = r.URL.Query()
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"meta":{"id":9,"tier":"interactive","generation":0}}`)
		fmt.Fprintln(w, `{"batch":[{"id":1,"weight":2.5},{"id":4,"weight":1.5}]}`)
		fmt.Fprintln(w, `{"batch":[{"id":7,"weight":0.5}]}`)
		if r.URL.Query().Get("max_comparisons") != "" {
			fmt.Fprintln(w, `{"cursor":{"cursor":"tok.sig","reason":"max_comparisons","emitted":3,"total_emitted":3,"frontier":0.25}}`)
			return
		}
		fmt.Fprintln(w, `{"done":{"emitted":3,"total_emitted":3}}`)
	}))
	defer ts.Close()
	stream := HTTPStreamer(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	res, err := stream(p, url.Values{"tier": {"interactive"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 9 || len(res.Candidates) != 3 || res.Partial || res.Cursor != "" {
		t.Fatalf("completed stream = %+v", res)
	}
	if res.Candidates[0].Weight != 2.5 || res.Candidates[2].ID != 7 {
		t.Fatalf("candidates misassembled: %+v", res.Candidates)
	}
	if lastQuery.Get("tier") != "interactive" {
		t.Fatalf("query not forwarded: %v", lastQuery)
	}

	res, err = stream(p, url.Values{"max_comparisons": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Cursor != "tok.sig" || res.Reason != "max_comparisons" {
		t.Fatalf("exhausted stream = %+v", res)
	}
}

// TestStreamerClassifiesRetryableCodes pins the uniform-backoff fix:
// timeout (408) and tier_busy (429) envelopes are shed, not hard errors,
// with the envelope's advisory attached — for both client shapes.
func TestStreamerClassifiesRetryableCodes(t *testing.T) {
	var status int
	var code string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"m","retry_after_ms":1500}}`, code)
	}))
	defer ts.Close()
	stream := HTTPStreamer(ts.URL, ts.Client())
	resolve := HTTPResolver(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	for _, tc := range []struct {
		status int
		code   string
		shed   bool
	}{
		{http.StatusRequestTimeout, "timeout", true},
		{http.StatusTooManyRequests, "tier_busy", true},
		{http.StatusTooManyRequests, "queue_full", true},
		{http.StatusGone, "cursor_invalid", false},
		{http.StatusInternalServerError, "internal", false},
	} {
		status, code = tc.status, tc.code
		_, serr := stream(p, nil)
		_, rerr := resolve(p)
		for _, err := range []error{serr, rerr} {
			if errors.Is(err, ErrRejected) != tc.shed {
				t.Fatalf("code %s: shed=%v, want %v (err %v)", tc.code, !tc.shed, tc.shed, err)
			}
			if tc.shed {
				var rej *RejectedError
				if !errors.As(err, &rej) || rej.RetryAfter != 1500*time.Millisecond || rej.Code != tc.code {
					t.Fatalf("code %s: rejected error %+v", tc.code, err)
				}
			}
		}
	}
}

func TestRunMixedSplitsTiersDeterministically(t *testing.T) {
	var interactive, batch int
	stream := func(_ entity.Profile, q url.Values) (StreamResult, error) {
		switch q.Get("tier") {
		case "batch":
			batch++
			// Batch streams exhaust half the time (by budget_ms carried in
			// the query) and shed every 10th request.
			if batch%10 == 0 {
				return StreamResult{}, &RejectedError{Code: "tier_busy"}
			}
			if q.Get("budget_ms") != "5" {
				return StreamResult{}, fmt.Errorf("batch query lost: %v", q)
			}
			if batch%2 == 0 {
				return StreamResult{Partial: true, Cursor: "tok"}, nil
			}
			return StreamResult{}, nil
		case "interactive":
			interactive++
			return StreamResult{}, nil
		default:
			return StreamResult{}, fmt.Errorf("no tier in query: %v", q)
		}
	}
	rep := RunMixed(stream, someProfiles(10), MixedOptions{
		Options:    Options{Clients: 1, Requests: 200},
		BatchRatio: 0.3,
		BatchQuery: url.Values{"budget_ms": {"5"}},
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
	if rep.Interactive.Requests != 140 || rep.Batch.Requests != 60 {
		t.Fatalf("tier split %d/%d, want 140/60", rep.Interactive.Requests, rep.Batch.Requests)
	}
	if interactive != 140 || batch != 60 {
		t.Fatalf("streamer saw %d/%d", interactive, batch)
	}
	if rep.Batch.Rejected != 6 {
		t.Fatalf("batch rejected = %d, want 6", rep.Batch.Rejected)
	}
	if rep.Batch.Partials != 24 {
		// 60 requests, 6 shed (all on even counts); of the 54 answered,
		// partial on the remaining even counts: 30 − 6 = 24.
		t.Fatalf("batch partials = %d, want 24", rep.Batch.Partials)
	}
	wantRate := float64(24) / float64(54)
	if rep.Batch.PartialRate != wantRate {
		t.Fatalf("batch partial rate = %v, want %v", rep.Batch.PartialRate, wantRate)
	}
	if rep.Interactive.Partials != 0 || rep.Interactive.PartialRate != 0 {
		t.Fatalf("interactive partials = %+v", rep.Interactive)
	}
	if rep.Interactive.P50 < 0 || rep.Interactive.P99 < rep.Interactive.P50 {
		t.Fatalf("percentiles inconsistent: %+v", rep.Interactive)
	}
}

// TestRunMixedAgainstServer drives the real streaming endpoint end to
// end through the mixed profile (exercised fully in the server package's
// suite; here we pin the wiring of partial detection against a live
// NDJSON emitter that exhausts batch-tier requests).
func TestRunMixedAgainstServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"meta":{"id":1}}`)
		fmt.Fprintln(w, `{"batch":[{"id":0,"weight":1}]}`)
		if r.URL.Query().Get("tier") == "batch" {
			fmt.Fprintln(w, `{"cursor":{"cursor":"tok","reason":"deadline"}}`)
			return
		}
		fmt.Fprintln(w, `{"done":{"emitted":1,"total_emitted":1}}`)
	}))
	defer ts.Close()
	rep := RunMixed(HTTPStreamer(ts.URL, ts.Client()), someProfiles(5), MixedOptions{
		Options:    Options{Clients: 4, Requests: 100},
		BatchRatio: 0.5,
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
	if rep.Batch.PartialRate != 1 || rep.Interactive.PartialRate != 0 {
		t.Fatalf("partial rates %v/%v, want 1/0", rep.Batch.PartialRate, rep.Interactive.PartialRate)
	}
}
