package experiments

import (
	"fmt"
	"strings"
)

// asciiPlot renders series of y-values over a shared x-axis as a compact
// terminal chart, used to draw Figure 10 the way the paper prints it: two
// curves (PC and RR) per dataset over the filtering ratio.
type asciiPlot struct {
	width, height int
	series        []plotSeries
}

type plotSeries struct {
	name   string
	marker byte
	ys     []float64
}

func newASCIIPlot(height int) *asciiPlot {
	return &asciiPlot{height: height}
}

func (p *asciiPlot) add(name string, marker byte, ys []float64) {
	if len(ys) > p.width {
		p.width = len(ys)
	}
	p.series = append(p.series, plotSeries{name: name, marker: marker, ys: ys})
}

// render draws all series on a [0,1] y-axis. Points map to the nearest
// row; later series overwrite earlier ones on collisions.
func (p *asciiPlot) render(xLabel string) string {
	if p.width == 0 || p.height < 2 {
		return ""
	}
	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	for _, s := range p.series {
		for x, y := range s.ys {
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			row := int((1 - y) * float64(p.height-1))
			grid[row][x] = s.marker
		}
	}
	var b strings.Builder
	for r := range grid {
		yTick := 1 - float64(r)/float64(p.height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", yTick, grid[r])
	}
	fmt.Fprintf(&b, "      +%s+ %s\n", strings.Repeat("-", p.width), xLabel)
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c = %s", s.marker, s.name))
	}
	fmt.Fprintf(&b, "       %s\n", strings.Join(legend, "   "))
	return b.String()
}
