// Package store persists the pipeline's intermediate artifacts — entity
// collections, block collections and retained-comparison lists — in a
// compact self-describing binary format (encoding/gob with a versioned
// envelope). Blocking a large collection once and re-running meta-blocking
// configurations against the saved blocks is the intended workflow.
package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// format versions, one per artifact kind. Bump on incompatible changes.
const (
	collectionVersion = 1
	blocksVersion     = 1
	pairsVersion      = 1
	resolverVersion   = 1
)

// envelope is the self-describing header of every stored artifact.
type envelope struct {
	Kind    string
	Version int
}

func writeArtifact(w io.Writer, kind string, version int, payload any) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(envelope{Kind: kind, Version: version}); err != nil {
		return fmt.Errorf("store: encoding %s header: %w", kind, err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("store: encoding %s: %w", kind, err)
	}
	return bw.Flush()
}

func readArtifact(r io.Reader, kind string, version int, payload any) error {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("store: reading header: %w", err)
	}
	if env.Kind != kind {
		return fmt.Errorf("store: artifact is a %q, expected %q", env.Kind, kind)
	}
	if env.Version != version {
		return fmt.Errorf("store: %s version %d unsupported (want %d)", kind, env.Version, version)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("store: decoding %s: %w", kind, err)
	}
	return nil
}

// storedCollection mirrors entity.Collection for gob.
type storedCollection struct {
	Task     int
	Split    int
	Profiles []entity.Profile
}

// WriteCollection persists an entity collection.
func WriteCollection(w io.Writer, c *entity.Collection) error {
	return writeArtifact(w, "collection", collectionVersion, storedCollection{
		Task:     int(c.Task),
		Split:    c.Split,
		Profiles: c.Profiles,
	})
}

// ReadCollection loads an entity collection.
func ReadCollection(r io.Reader) (*entity.Collection, error) {
	var s storedCollection
	if err := readArtifact(r, "collection", collectionVersion, &s); err != nil {
		return nil, err
	}
	c := &entity.Collection{
		Task:     entity.Task(s.Task),
		Split:    s.Split,
		Profiles: s.Profiles,
	}
	return c, nil
}

// storedBlocks mirrors block.Collection for gob.
type storedBlocks struct {
	Task        int
	NumEntities int
	Split       int
	Blocks      []block.Block
}

// WriteBlocks persists a block collection.
func WriteBlocks(w io.Writer, c *block.Collection) error {
	return writeArtifact(w, "blocks", blocksVersion, storedBlocks{
		Task:        int(c.Task),
		NumEntities: c.NumEntities,
		Split:       c.Split,
		Blocks:      c.Blocks,
	})
}

// ReadBlocks loads a block collection.
func ReadBlocks(r io.Reader) (*block.Collection, error) {
	var s storedBlocks
	if err := readArtifact(r, "blocks", blocksVersion, &s); err != nil {
		return nil, err
	}
	return &block.Collection{
		Task:        entity.Task(s.Task),
		NumEntities: s.NumEntities,
		Split:       s.Split,
		Blocks:      s.Blocks,
	}, nil
}

// WritePairs persists a retained-comparison list.
func WritePairs(w io.Writer, pairs []entity.Pair) error {
	return writeArtifact(w, "pairs", pairsVersion, pairs)
}

// ReadPairs loads a retained-comparison list.
func ReadPairs(r io.Reader) ([]entity.Pair, error) {
	var pairs []entity.Pair
	if err := readArtifact(r, "pairs", pairsVersion, &pairs); err != nil {
		return nil, err
	}
	return pairs, nil
}

// storedResolver mirrors incremental.Snapshot for gob. The block index is
// flattened into parallel key/member slices, sorted by key, so the same
// snapshot always serializes to the same bytes (gob map encoding would
// follow Go's randomized map iteration).
type storedResolver struct {
	Scheme         int
	K              int
	MaxBlockSize   int
	MinTokenLength int
	Profiles       []entity.Profile
	BlockKeys      []string
	BlockMembers   [][]entity.ID
	BlocksOf       [][]string
}

// WriteResolver persists an incremental-resolver snapshot — the artifact
// cmd/serve loads at startup and hot-swaps via /v1/admin/reload.
func WriteResolver(w io.Writer, s *incremental.Snapshot) error {
	sr := storedResolver{
		Scheme:         int(s.Config.Scheme),
		K:              s.Config.K,
		MaxBlockSize:   s.Config.MaxBlockSize,
		MinTokenLength: s.Config.MinTokenLength,
		Profiles:       s.Profiles,
		BlocksOf:       s.BlocksOf,
	}
	sr.BlockKeys = make([]string, 0, len(s.Blocks))
	for k := range s.Blocks {
		sr.BlockKeys = append(sr.BlockKeys, k)
	}
	sort.Strings(sr.BlockKeys)
	sr.BlockMembers = make([][]entity.ID, len(sr.BlockKeys))
	for i, k := range sr.BlockKeys {
		sr.BlockMembers[i] = s.Blocks[k]
	}
	return writeArtifact(w, "resolver", resolverVersion, sr)
}

// ReadResolver loads an incremental-resolver snapshot.
func ReadResolver(r io.Reader) (*incremental.Snapshot, error) {
	var sr storedResolver
	if err := readArtifact(r, "resolver", resolverVersion, &sr); err != nil {
		return nil, err
	}
	if len(sr.BlockKeys) != len(sr.BlockMembers) {
		return nil, fmt.Errorf("store: resolver snapshot has %d block keys but %d member lists",
			len(sr.BlockKeys), len(sr.BlockMembers))
	}
	s := &incremental.Snapshot{
		Config: incremental.Config{
			Scheme:         core.Scheme(sr.Scheme),
			K:              sr.K,
			MaxBlockSize:   sr.MaxBlockSize,
			MinTokenLength: sr.MinTokenLength,
		},
		Profiles: sr.Profiles,
		Blocks:   make(map[string][]entity.ID, len(sr.BlockKeys)),
		BlocksOf: sr.BlocksOf,
	}
	for i, k := range sr.BlockKeys {
		s.Blocks[k] = sr.BlockMembers[i]
	}
	return s, nil
}

// SaveResolverFile persists a resolver snapshot to a file.
func SaveResolverFile(path string, s *incremental.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteResolver(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadResolverFile loads a resolver snapshot from a file.
func LoadResolverFile(path string) (*incremental.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadResolver(f)
}

// SaveBlocksFile and LoadBlocksFile are path-based conveniences.
func SaveBlocksFile(path string, c *block.Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteBlocks(f, c); err != nil {
		return err
	}
	return f.Close()
}

// LoadBlocksFile loads a block collection from a file.
func LoadBlocksFile(path string) (*block.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBlocks(f)
}
