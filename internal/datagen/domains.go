package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"metablocking/internal/entity"
)

// Domain-flavored dataset families. The D1..D3 presets reproduce the
// paper's benchmark *statistics* with abstract tokens; the families below
// render the same statistical structure as readable, domain-plausible
// records — bibliographic entries (the paper's D1: DBLP–Google Scholar)
// and movies (D2: IMDB–DBpedia) — for examples, demos and tokenizer
// realism. Identifying signal lives in names/titles (rare tokens), noise
// in common vocabulary, venues and boilerplate.

// syllables for pronounceable surnames and title words.
var (
	onsets  = []string{"b", "br", "ch", "d", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ei", "ou"}
	codas   = []string{"", "n", "r", "s", "l", "m", "ck", "rd", "st", "ng"}
	genres  = []string{"drama", "comedy", "thriller", "romance", "horror", "action", "adventure", "documentary", "crime", "fantasy", "mystery", "western"}
	venues  = []string{"sigmod", "vldb", "icde", "edbt", "kdd", "www", "cikm", "icdm", "wsdm", "jcdl"}
	topics  = []string{"entity", "resolution", "blocking", "data", "query", "graph", "index", "learning", "distributed", "stream", "record", "linkage", "schema", "matching", "scalable", "efficient", "adaptive", "incremental", "approximate", "heterogeneous"}
	plotfil = []string{"story", "young", "life", "world", "love", "family", "man", "woman", "finds", "must", "against", "journey", "secret", "past", "city", "war", "death", "friends", "discovers", "becomes"}
)

// commonWords is a mid-sized shared vocabulary for plot/abstract text —
// large enough that co-occurrence in it stays a weak signal, as in real
// free text. Generated deterministically at init.
var commonWords = func() []string {
	rng := rand.New(rand.NewSource(77))
	words := append([]string(nil), plotfil...)
	for len(words) < 220 {
		words = append(words, surname(rng))
	}
	return words
}()

// surname builds a deterministic pronounceable name from an index.
func surname(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(onsets[rng.Intn(len(onsets))])
		b.WriteString(vowels[rng.Intn(len(vowels))])
	}
	b.WriteString(codas[rng.Intn(len(codas))])
	return b.String()
}

// bibObject is one publication: the facts both sources render.
type bibObject struct {
	title   []string // distinctive + topical words
	authors []string
	venue   string
	year    int
}

// BIB generates a bibliographic Clean-Clean dataset in the mould of the
// paper's D1 (DBLP–Google Scholar): source 1 is structured and terse,
// source 2 free-text and noisier. Ground truth is by construction.
func BIB(scale float64) Dataset {
	size1 := scaled(2000, scale)
	size2 := scaled(6000, scale)
	dups := scaled(1800, scale)
	rng := rand.New(rand.NewSource(404))

	numObjects := size1 + size2 - dups
	objects := make([]bibObject, numObjects)
	for o := range objects {
		authors := make([]string, 1+rng.Intn(3))
		for a := range authors {
			authors[a] = surname(rng)
		}
		title := []string{surname(rng)} // one distinctive coined word
		for len(title) < 3+rng.Intn(4) {
			title = append(title, topics[rng.Intn(len(topics))])
		}
		objects[o] = bibObject{
			title:   title,
			authors: authors,
			venue:   venues[rng.Intn(len(venues))],
			year:    1995 + rng.Intn(25),
		}
	}

	renderDBLP := func(obj *bibObject) entity.Profile {
		var p entity.Profile
		p.Add("title", strings.Join(obj.title, " "))
		p.Add("authors", strings.Join(obj.authors, " "))
		p.Add("venue", obj.venue)
		p.Add("year", fmt.Sprintf("%d", obj.year))
		return p
	}
	renderScholar := func(obj *bibObject) entity.Profile {
		// Free text: citation-style single field, with token noise —
		// dropped author initials, occasional typos, truncated titles.
		var parts []string
		for _, a := range obj.authors {
			if rng.Float64() < 0.15 {
				continue // author dropped
			}
			parts = append(parts, a)
		}
		title := obj.title
		if rng.Float64() < 0.2 && len(title) > 2 {
			title = title[:len(title)-1] // truncated
		}
		for _, t := range title {
			if rng.Float64() < 0.08 {
				t = t + "x" // typo: token no longer blocks
			}
			parts = append(parts, t)
		}
		if rng.Float64() < 0.7 {
			parts = append(parts, fmt.Sprintf("%d", obj.year))
		}
		if rng.Float64() < 0.5 {
			parts = append(parts, "proc", obj.venue)
		}
		var p entity.Profile
		p.Add("citation", strings.Join(parts, " "))
		return p
	}
	return assembleDomain("BIB", rng, numObjects, size1, size2, dups,
		func(o int) entity.Profile { return renderDBLP(&objects[o]) },
		func(o int) entity.Profile { return renderScholar(&objects[o]) })
}

// movObject is one film.
type movObject struct {
	title    []string
	director string
	cast     []string
	genre    string
	year     int
}

// MOV generates a movies Clean-Clean dataset in the mould of the paper's
// D2 (IMDB–DBpedia): source 1 is a terse catalog, source 2 a verbose
// encyclopedia entry with a plot paragraph (high BPE side).
func MOV(scale float64) Dataset {
	size1 := scaled(4000, scale)
	size2 := scaled(3500, scale)
	dups := scaled(3000, scale)
	rng := rand.New(rand.NewSource(505))

	numObjects := size1 + size2 - dups
	objects := make([]movObject, numObjects)
	for o := range objects {
		cast := make([]string, 2+rng.Intn(3))
		for a := range cast {
			cast[a] = surname(rng)
		}
		title := []string{surname(rng)}
		for len(title) < 2+rng.Intn(3) {
			title = append(title, plotfil[rng.Intn(len(plotfil))])
		}
		objects[o] = movObject{
			title:    title,
			director: surname(rng),
			cast:     cast,
			genre:    genres[rng.Intn(len(genres))],
			year:     1950 + rng.Intn(70),
		}
	}

	renderIMDB := func(obj *movObject) entity.Profile {
		var p entity.Profile
		p.Add("title", strings.Join(obj.title, " "))
		p.Add("director", obj.director)
		p.Add("year", fmt.Sprintf("%d", obj.year))
		p.Add("genre", obj.genre)
		return p
	}
	renderDBpedia := func(obj *movObject) entity.Profile {
		var p entity.Profile
		p.Add("name", strings.Join(obj.title, " "))
		p.Add("starring", strings.Join(obj.cast, " "))
		p.Add("directedBy", obj.director)
		// Verbose plot: common words plus echoes of title and cast.
		plot := make([]string, 0, 30)
		for len(plot) < 22+rng.Intn(12) {
			plot = append(plot, commonWords[rng.Intn(len(commonWords))])
		}
		if rng.Float64() < 0.8 {
			plot = append(plot, obj.cast[0])
		}
		p.Add("abstract", strings.Join(plot, " "))
		p.Add("genreLabel", obj.genre+" film")
		return p
	}
	return assembleDomain("MOV", rng, numObjects, size1, size2, dups,
		func(o int) entity.Profile { return renderIMDB(&objects[o]) },
		func(o int) entity.Profile { return renderDBpedia(&objects[o]) })
}

// assembleDomain lays out the two sources with the standard overlap
// structure (objects [0, dups) shared) and shuffled E2 order.
func assembleDomain(name string, rng *rand.Rand, numObjects, size1, size2, dups int,
	render1, render2 func(o int) entity.Profile) Dataset {

	e1 := make([]entity.Profile, 0, size1)
	for o := 0; o < size1; o++ {
		e1 = append(e1, render1(o))
	}
	e2Objects := make([]int, 0, size2)
	for o := 0; o < dups; o++ {
		e2Objects = append(e2Objects, o)
	}
	for o := size1; o < numObjects; o++ {
		e2Objects = append(e2Objects, o)
	}
	rng.Shuffle(len(e2Objects), func(i, j int) {
		e2Objects[i], e2Objects[j] = e2Objects[j], e2Objects[i]
	})
	e2 := make([]entity.Profile, 0, size2)
	for _, o := range e2Objects {
		e2 = append(e2, render2(o))
	}

	coll := entity.NewCleanClean(e1, e2)
	var pairs []entity.Pair
	for i2, o := range e2Objects {
		if o < dups {
			pairs = append(pairs, entity.MakePair(entity.ID(o), entity.ID(size1+i2)))
		}
	}
	return Dataset{Name: name, Collection: coll, GroundTruth: entity.NewGroundTruth(pairs)}
}
