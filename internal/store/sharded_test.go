package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
)

// shardedFixture builds per-shard segments (plus the canonical snapshot)
// from a real resolver run, so round trips exercise genuine index shapes.
func shardedFixture(t *testing.T, shards int) (incremental.Config, []*incremental.PartitionSnapshot, *incremental.Snapshot) {
	t.Helper()
	cfg := incremental.Config{Scheme: core.ECBS, K: 3}
	r, err := incremental.NewResolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.D1D(0.05)
	r.AddBatch(ds.Collection.Profiles[:80])
	snap := r.Snapshot()
	parts, err := incremental.PartitionSnapshotsOf(snap, shards)
	if err != nil {
		t.Fatal(err)
	}
	return snap.Config, parts, snap
}

// TestShardedRoundTrip: save segments+manifest, load them back, and
// check both the per-segment contents and the canonical merge.
func TestShardedRoundTrip(t *testing.T) {
	cfg, segs, snap := shardedFixture(t, 4)
	path := filepath.Join(t.TempDir(), "resolver.snap")
	if err := SaveShardedResolverFile(path, cfg, segs); err != nil {
		t.Fatal(err)
	}
	gotCfg, gotSegs, err := LoadShardedResolverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg {
		t.Fatalf("config round trip: got %+v, want %+v", gotCfg, cfg)
	}
	if !reflect.DeepEqual(gotSegs, segs) {
		t.Fatal("segments diverged after round trip")
	}
	// LoadAny on a sharded artifact returns the canonical snapshot.
	gotSnap, err := LoadAnyResolverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, snap) {
		t.Fatal("canonical snapshot diverged after sharded round trip")
	}
	// LoadAny on a plain artifact still works.
	plain := filepath.Join(t.TempDir(), "plain.snap")
	if err := SaveResolverFile(plain, snap); err != nil {
		t.Fatal(err)
	}
	gotSnap, err = LoadAnyResolverFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, snap) {
		t.Fatal("canonical snapshot diverged after plain round trip")
	}
}

// TestShardedGenerations: a second save bumps the generation, loads see
// the new data, and the old generation's segments are swept.
func TestShardedGenerations(t *testing.T) {
	cfg, segs, _ := shardedFixture(t, 2)
	path := filepath.Join(t.TempDir(), "resolver.snap")
	if err := SaveShardedResolverFile(path, cfg, segs); err != nil {
		t.Fatal(err)
	}
	if err := SaveShardedResolverFile(path, cfg, segs); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(path + ".g*.s*")
	if len(matches) != 2 {
		t.Fatalf("after two saves, %d segment files remain (%v), want 2", len(matches), matches)
	}
	for _, f := range matches {
		if g, ok := parseGeneration(path, f); !ok || g != 2 {
			t.Fatalf("leftover segment %s not of generation 2", f)
		}
	}
	if _, _, err := LoadShardedResolverFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestShardedCrashWindows: a save that dies at any fault site — segment
// write, segment sync, manifest rename — leaves the previous artifact
// fully loadable with its original contents.
func TestShardedCrashWindows(t *testing.T) {
	cfg, segs, snap := shardedFixture(t, 3)
	grown := func() []*incremental.PartitionSnapshot {
		// A different (bigger) second version, so corruption would show.
		r, err := incremental.FromSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		r.AddBatch(datagen.D1D(0.05).Collection.Profiles[80:120])
		parts, err := incremental.PartitionSnapshotsOf(r.Snapshot(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return parts
	}()
	for _, site := range []string{FaultSaveCreate, FaultSaveWrite, FaultSaveSync, FaultSaveRename} {
		t.Run(site, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "resolver.snap")
			if err := SaveShardedResolverFile(path, cfg, segs); err != nil {
				t.Fatal(err)
			}
			inj := fault.New(7)
			inj.Arm(site, fault.Spec{Times: 1})
			SetInjector(inj)
			defer SetInjector(nil)
			if err := SaveShardedResolverFile(path, cfg, grown); err == nil {
				t.Fatalf("save with armed %s fault succeeded", site)
			}
			SetInjector(nil)
			_, gotSegs, err := LoadShardedResolverFile(path)
			if err != nil {
				t.Fatalf("artifact unloadable after failed save: %v", err)
			}
			if !reflect.DeepEqual(gotSegs, segs) {
				t.Fatal("failed save altered the previous artifact")
			}
			// The interrupted generation must not block a retry.
			if err := SaveShardedResolverFile(path, cfg, grown); err != nil {
				t.Fatalf("retry after failed save: %v", err)
			}
			_, gotSegs, err = LoadShardedResolverFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSegs, grown) {
				t.Fatal("retry did not commit the new artifact")
			}
		})
	}
}

// TestShardedCorruption: a flipped bit in any segment, a missing
// segment, or a mixed-generation segment classifies as corrupt.
func TestShardedCorruption(t *testing.T) {
	cfg, segs, _ := shardedFixture(t, 2)
	newSaved := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "resolver.snap")
		if err := SaveShardedResolverFile(path, cfg, segs); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("bitflip", func(t *testing.T) {
		path := newSaved(t)
		seg := segmentPath(path, 1, 1)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadShardedResolverFile(path); !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("bit-flipped segment: err = %v, want ErrCorruptArtifact", err)
		}
	})
	t.Run("missing-segment", func(t *testing.T) {
		path := newSaved(t)
		if err := os.Remove(segmentPath(path, 1, 0)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadShardedResolverFile(path); !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("missing segment: err = %v, want ErrCorruptArtifact", err)
		}
	})
	t.Run("cross-shard-swap", func(t *testing.T) {
		path := newSaved(t)
		a, b := segmentPath(path, 1, 0), segmentPath(path, 1, 1)
		tmp := a + ".swap"
		if err := os.Rename(a, tmp); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(b, a); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, b); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadShardedResolverFile(path); !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("swapped segments: err = %v, want ErrCorruptArtifact", err)
		}
	})
}

// TestShardedDeterministicBytes: saving the same segments twice yields
// byte-identical segment files (sorted keys, no map-order leakage).
func TestShardedDeterministicBytes(t *testing.T) {
	cfg, segs, _ := shardedFixture(t, 2)
	pathA := filepath.Join(t.TempDir(), "a.snap")
	pathB := filepath.Join(t.TempDir(), "b.snap")
	if err := SaveShardedResolverFile(pathA, cfg, segs); err != nil {
		t.Fatal(err)
	}
	if err := SaveShardedResolverFile(pathB, cfg, segs); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		a, err := os.ReadFile(segmentPath(pathA, 1, k))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(segmentPath(pathB, 1, k))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("segment %d bytes differ between identical saves", k)
		}
	}
}
