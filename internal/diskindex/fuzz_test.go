package diskindex

import (
	"fmt"
	"reflect"
	"testing"

	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// fuzzProfile derives arrival i deterministically from a tiny shared
// vocabulary, so postings overlap heavily and every scheme's weight
// arithmetic is exercised.
func fuzzProfile(i int) entity.Profile {
	return entity.Profile{Attributes: []entity.Attribute{
		{Name: "name", Value: fmt.Sprintf("tok%d tok%d", i%7, (i*3)%11)},
		{Name: "city", Value: fmt.Sprintf("city%d", i%5)},
	}}
}

// FuzzOutOfCore drives arbitrary Add / Checkpoint / Crash+Reopen
// sequences against the disk-backed group and diffs it after every
// step against an in-memory reference resolver. A crash (close without
// checkpoint) rolls both back to the last checkpoint; everything the
// reference knows past a checkpoint the disk index must answer
// identically, and the canonical snapshots must match bit for bit.
// Compaction is implicit: CompactAfter 2 makes nearly every checkpoint
// trigger one.
func FuzzOutOfCore(f *testing.F) {
	f.Add(1, []byte{0, 0, 0, 3, 0, 0, 4, 0, 3, 4, 0})
	f.Add(2, []byte{0, 3, 4, 0, 3, 4, 0, 3, 4})
	f.Add(3, []byte{0, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 4})
	f.Add(1, []byte{3, 3, 4, 4, 3})
	f.Fuzz(func(t *testing.T, shards int, ops []byte) {
		shards = shards%3 + 1
		if len(ops) > 64 {
			ops = ops[:64]
		}
		rcfg := incremental.Config{Scheme: core.JS, K: 3, MaxBlockSize: 40}
		root := t.TempDir()
		g := openDiskGroup(t, root, shards, rcfg, 0, 2, false)
		defer func() { g.Close() }()
		ref, err := incremental.NewResolver(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		var ckptSnap *incremental.Snapshot // reference state at last checkpoint
		next := 0                          // arrival counter, shared by both sides
		for step, op := range ops {
			switch op % 5 {
			case 0, 1, 2: // add one profile
				p := fuzzProfile(next)
				next++
				want, err := ref.Resolve(p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.Resolve(p)
				if err != nil {
					t.Fatalf("step %d: disk resolve: %v", step, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: resolve diverged:\n got %+v\nwant %+v", step, got, want)
				}
			case 3: // checkpoint
				if err := g.Checkpoint(); err != nil {
					t.Fatalf("step %d: checkpoint: %v", step, err)
				}
				ckptSnap = ref.Snapshot()
			case 4: // crash (no checkpoint) + reopen
				g.Close()
				g = openDiskGroup(t, root, shards, rcfg, 0, 2, false)
				// Roll the reference back to the last checkpoint too.
				if ckptSnap == nil {
					ref, err = incremental.NewResolver(rcfg)
					next = 0
				} else {
					ref, err = incremental.FromSnapshot(ckptSnap)
					next = len(ckptSnap.Profiles)
				}
				if err != nil {
					t.Fatal(err)
				}
				if g.Size() != ref.Size() {
					t.Fatalf("step %d: reopened size %d, reference %d", step, g.Size(), ref.Size())
				}
			}
			if g.Size() != ref.Size() {
				t.Fatalf("step %d: size skew: disk %d, reference %d", step, g.Size(), ref.Size())
			}
		}
		if !reflect.DeepEqual(g.Snapshot(), ref.Snapshot()) {
			t.Fatal("final canonical snapshot diverged from the in-memory reference")
		}
	})
}

// FuzzWALReplay is the durability counterpart of FuzzOutOfCore: the
// WAL is on, and after a crash+reopen the reference does NOT roll back
// — every acknowledged add must survive, replayed from the log tail,
// and the reopened group must keep answering bit-identically to the
// uninterrupted in-memory reference. (The reopen goes through Close so
// fuzz iterations don't leak actor goroutines; the log already holds
// every record at append time, so replay exercises the same path a
// SIGKILL leaves behind — crash_test and wal_test cover the un-closed
// variant.)
func FuzzWALReplay(f *testing.F) {
	f.Add(1, []byte{0, 0, 4, 0, 3, 0, 4, 0})
	f.Add(2, []byte{0, 0, 0, 4, 4, 0, 3, 4, 0, 0, 4})
	f.Add(3, []byte{4, 0, 4, 0, 4, 0, 4})
	f.Add(2, []byte{0, 3, 0, 4, 3, 4, 0, 0, 0, 4})
	f.Fuzz(func(t *testing.T, shards int, ops []byte) {
		shards = shards%3 + 1
		if len(ops) > 64 {
			ops = ops[:64]
		}
		rcfg := incremental.Config{Scheme: core.JS, K: 3, MaxBlockSize: 40}
		root := t.TempDir()
		g := openDiskGroup(t, root, shards, rcfg, 0, 2, true)
		defer func() { g.Close() }()
		ref, err := incremental.NewResolver(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for step, op := range ops {
			switch op % 5 {
			case 0, 1, 2: // add one profile
				p := fuzzProfile(next)
				next++
				want, err := ref.Resolve(p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.Resolve(p)
				if err != nil {
					t.Fatalf("step %d: disk resolve: %v", step, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("step %d: resolve diverged:\n got %+v\nwant %+v", step, got, want)
				}
			case 3: // checkpoint (rotates the log)
				if err := g.Checkpoint(); err != nil {
					t.Fatalf("step %d: checkpoint: %v", step, err)
				}
			case 4: // crash + reopen: the reference keeps everything
				g.Close()
				g = openDiskGroup(t, root, shards, rcfg, 0, 2, true)
			}
			if g.Size() != ref.Size() {
				t.Fatalf("step %d: acknowledged write lost: disk %d, reference %d", step, g.Size(), ref.Size())
			}
		}
		if !reflect.DeepEqual(g.Snapshot(), ref.Snapshot()) {
			t.Fatal("final canonical snapshot diverged from the never-rolled-back reference")
		}
	})
}
