package floatsum

import (
	"math"
	"math/rand"
	"testing"
)

// TestSumExactCases checks the classic cancellation cases a naive sum gets
// wrong.
func TestSumExactCases(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{2.5}, 2.5},
		{[]float64{1, 1e100, 1, -1e100}, 2},
		// Ten 0.1s: the exact sum 1.0000000000000000555… rounds to 1.0
		// (a naive left-to-right sum yields 0.9999999999999999).
		{[]float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}, 1.0},
	}
	for _, tc := range cases {
		if got := Sum(tc.xs); got != tc.want {
			t.Errorf("Sum(%v) = %g, want %g", tc.xs, got, tc.want)
		}
	}
}

// TestSumOrderIndependent: any permutation and any partitioning into merged
// accumulators must give bit-identical sums — the property the parallel
// pipeline's thresholds rely on.
func TestSumOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
	}
	want := Sum(xs)

	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(xs))
		shuffled := make([]float64, len(xs))
		for i, p := range perm {
			shuffled[i] = xs[p]
		}
		if got := Sum(shuffled); got != want {
			t.Fatalf("trial %d: shuffled sum %v ≠ %v", trial, got, want)
		}
		// Partition into k accumulators, merge, compare.
		k := 1 + rng.Intn(8)
		accs := make([]Acc, k)
		for i, x := range shuffled {
			accs[i%k].Add(x)
		}
		var total Acc
		for i := range accs {
			total.Merge(&accs[i])
		}
		if got := total.Sum(); got != want {
			t.Fatalf("trial %d: merged sum %v ≠ %v", trial, got, want)
		}
		if total.Count() != int64(len(xs)) {
			t.Fatalf("trial %d: merged count %d ≠ %d", trial, total.Count(), len(xs))
		}
	}
}

// TestMeanMatchesSum ensures Mean is Sum/len and handles the degenerate
// sizes.
func TestMeanMatchesSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{3.5}) != 3.5 {
		t.Fatal("Mean singleton")
	}
	xs := []float64{0.1, 0.2, 0.3, 0.7, 1e-17}
	if got, want := Mean(xs), Sum(xs)/float64(len(xs)); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	if a.Mean() != Mean(xs) {
		t.Fatal("Acc.Mean disagrees with Mean")
	}
}
