package experiments

import "metablocking/internal/blockproc"

// Figure10Point is one point of the filtering-ratio sweep.
type Figure10Point struct {
	Ratio  float64
	PC, RR float64
}

// Figure10Series is the sweep for one dataset.
type Figure10Series struct {
	Name   string
	Points []Figure10Point
}

// Figure10 sweeps Block Filtering's ratio r over [0.05, 1.0] with a step
// of 0.05 and reports PC and RR of the restructured blocks of D2C and D2D
// (the datasets the paper plots; the others behave alike, §6.2).
func (s *Suite) Figure10() []Figure10Series {
	var out []Figure10Series
	s.printf("\n=== Figure 10: Effect of Block Filtering's ratio r on D2C and D2D ===\n")
	for _, p := range s.Datasets() {
		if p.Dataset.Name != "D2C" && p.Dataset.Name != "D2D" {
			continue
		}
		series := Figure10Series{Name: p.Dataset.Name}
		base := p.Original.Comparisons()
		s.printf("%-5s %6s %8s %8s\n", "", "r", "PC", "RR")
		for r := 5; r <= 100; r += 5 {
			ratio := float64(r) / 100
			restructured := blockproc.BlockFiltering{Ratio: ratio}.Apply(p.Original)
			rep := p.EvaluateBlockCollection(restructured, base)
			pt := Figure10Point{Ratio: ratio, PC: rep.PC(), RR: rep.RR()}
			series.Points = append(series.Points, pt)
			s.printf("%-5s %6.2f %8.3f %8.3f\n", p.Dataset.Name, pt.Ratio, pt.PC, pt.RR)
		}
		out = append(out, series)

		plot := newASCIIPlot(11)
		pcs := make([]float64, len(series.Points))
		rrs := make([]float64, len(series.Points))
		for i, pt := range series.Points {
			pcs[i], rrs[i] = pt.PC, pt.RR
		}
		plot.add("PC", '*', pcs)
		plot.add("RR", 'o', rrs)
		s.printf("\n%s (r = 0.05 … 1.00)\n%s\n", p.Dataset.Name, plot.render("r"))
	}
	return out
}
