package metablocking

import (
	"testing"
)

// TestIntegrationMatrix drives the public API across every dataset family,
// weighting scheme and pruning algorithm at small scale and checks the
// paper's global invariants hold on each combination:
//
//   - weight-based pruning retains more comparisons and more recall than
//     cardinality-based pruning of the same family (shallow vs deep, §3)
//   - Redefined variants never lose recall against the originals (§5.1)
//   - Reciprocal variants never retain more than Redefined ones (§5.2)
//   - every configuration stays within [0, input] comparisons
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is slow")
	}
	datasets := []DatasetID{D1C, D1D, BIB, MOV}
	scales := map[DatasetID]float64{D1C: 0.05, D1D: 0.05, BIB: 0.1, MOV: 0.1}
	for _, id := range datasets {
		ds := GenerateDataset(id, scales[id])
		for _, scheme := range []Scheme{ARCS, CBS, ECBS, JS, EJS} {
			results := make(map[Algorithm]Report)
			retained := make(map[Algorithm]int)
			var input int64
			for _, alg := range []Algorithm{CEP, CNP, WEP, WNP, RedefinedCNP, ReciprocalCNP, RedefinedWNP, ReciprocalWNP} {
				res, err := Pipeline{FilterRatio: 0.8, Scheme: scheme, Algorithm: alg}.Run(ds.Collection)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", ds.Name, scheme, alg, err)
				}
				input = res.InputComparisons
				if int64(len(res.Pairs)) > input {
					t.Fatalf("%s/%v/%v: retained %d of %d input comparisons",
						ds.Name, scheme, alg, len(res.Pairs), input)
				}
				results[alg] = Evaluate(res.Pairs, ds.GroundTruth, input)
				retained[alg] = len(res.Pairs)
			}

			// Shallow vs deep pruning.
			if results[WEP].PC() < results[CEP].PC()-0.02 {
				t.Errorf("%s/%v: WEP recall %.3f below CEP's %.3f",
					ds.Name, scheme, results[WEP].PC(), results[CEP].PC())
			}
			if results[WNP].PC() < results[CNP].PC()-0.02 {
				t.Errorf("%s/%v: WNP recall %.3f below CNP's %.3f",
					ds.Name, scheme, results[WNP].PC(), results[CNP].PC())
			}
			// Redefined keeps recall, drops redundancy.
			if results[RedefinedCNP].Detected != results[CNP].Detected {
				t.Errorf("%s/%v: Redefined CNP changed recall", ds.Name, scheme)
			}
			if results[RedefinedWNP].Detected != results[WNP].Detected {
				t.Errorf("%s/%v: Redefined WNP changed recall", ds.Name, scheme)
			}
			if retained[RedefinedCNP] > retained[CNP] || retained[RedefinedWNP] > retained[WNP] {
				t.Errorf("%s/%v: redefined retained more than original", ds.Name, scheme)
			}
			// Reciprocal prunes deepest in its family.
			if retained[ReciprocalCNP] > retained[RedefinedCNP] {
				t.Errorf("%s/%v: Reciprocal CNP above Redefined CNP", ds.Name, scheme)
			}
			if retained[ReciprocalWNP] > retained[RedefinedWNP] {
				t.Errorf("%s/%v: Reciprocal WNP above Redefined WNP", ds.Name, scheme)
			}
		}
	}
}

// TestIntegrationEffectivenessContracts checks the application-class
// contracts of §3 on the effectiveness-intensive configurations: both the
// graph-based (Reciprocal WNP) and the graph-free (r=0.55) workflows must
// keep recall near the 0.95 bar while pruning the vast majority of the
// brute-force comparisons. (Which of the two retains fewer comparisons is
// scale- and dataset-dependent — see EXPERIMENTS.md Table 6 for the
// recorded relation at scale 0.5.)
func TestIntegrationEffectivenessContracts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration is slow")
	}
	for _, id := range []DatasetID{D1C, D1D, MOV} {
		ds := GenerateDataset(id, 0.2)
		base := ds.Collection.BruteForceComparisons()
		for name, p := range map[string]Pipeline{
			"graph-free":  {GraphFree: true, FilterRatio: 0.55},
			"graph-based": {FilterRatio: 0.8, Scheme: JS, Algorithm: ReciprocalWNP},
		} {
			res, err := p.Run(ds.Collection)
			if err != nil {
				t.Fatal(err)
			}
			rep := Evaluate(res.Pairs, ds.GroundTruth, base)
			if rep.PC() < 0.89 {
				t.Errorf("%v/%s: PC %.3f below the effectiveness bar", id, name, rep.PC())
			}
			if rep.RR() < 0.9 {
				t.Errorf("%v/%s: RR %.3f — pruning too shallow", id, name, rep.RR())
			}
		}
	}
}
