package blockproc

import (
	"testing"

	"metablocking/internal/blocking"
	"metablocking/internal/datagen"
	"metablocking/internal/paperexample"
)

func TestBlockSchedulingOrder(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	out := BlockScheduling{}.Apply(c)
	if out.Len() != c.Len() || out.Comparisons() != c.Comparisons() {
		t.Fatal("scheduling must not change content")
	}
	var prev int64 = -1
	for i := range out.Blocks {
		card := out.Blocks[i].Comparisons()
		if card < prev {
			t.Fatalf("block %d out of order: %d after %d", i, card, prev)
		}
		prev = card
	}
	// Input untouched.
	if c.Blocks[0].Key != "car" && c.Blocks[len(c.Blocks)-1].Key == "car" {
		t.Log("input order preserved")
	}
}

func TestDuplicatePropagationFindsAll(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	gt := paperexample.GroundTruth()
	res := DuplicatePropagation{Matcher: OracleMatcher{GT: gt}}.Run(c)
	if len(res.Matches) != gt.Size() {
		t.Fatalf("matches = %d, want %d", len(res.Matches), gt.Size())
	}
}

func TestBlockPruningStopsEarly(t *testing.T) {
	// The synthetic datasets front-load duplicates into small blocks, so
	// the discovery rate collapses once the scheduled pass reaches the
	// large noisy blocks — exactly where pruning must stop.
	ds := datagen.D1D(0.08)
	c := blocking.TokenBlocking{}.Build(ds.Collection)

	full := IterativeBlocking{Matcher: OracleMatcher{GT: ds.GroundTruth}}.Run(c)
	pruned := BlockPruning{
		Matcher:    OracleMatcher{GT: ds.GroundTruth},
		MinGain:    1e-3,
		WindowSize: 2000,
	}.Run(c)

	if pruned.ProcessedBlocks >= pruned.TotalBlocks {
		t.Fatalf("pruning never terminated early (%d of %d blocks)",
			pruned.ProcessedBlocks, pruned.TotalBlocks)
	}
	if pruned.Comparisons >= full.Comparisons {
		t.Fatalf("pruning executed %d comparisons, full run %d",
			pruned.Comparisons, full.Comparisons)
	}
	// Smallest-first scheduling front-loads the duplicates: the truncated
	// run must keep most of the recall.
	recall := float64(len(pruned.Matches)) / float64(ds.GroundTruth.Size())
	if recall < 0.8 {
		t.Fatalf("early-terminated recall %.3f too low", recall)
	}
	t.Logf("pruning: %d/%d blocks, %.1f%% comparisons, recall %.3f",
		pruned.ProcessedBlocks, pruned.TotalBlocks,
		100*float64(pruned.Comparisons)/float64(full.Comparisons), recall)
}

func TestBlockPruningProcessesEverythingWhenGainStaysHigh(t *testing.T) {
	c := blocking.TokenBlocking{}.Build(paperexample.Collection())
	gt := paperexample.GroundTruth()
	res := BlockPruning{Matcher: OracleMatcher{GT: gt}}.Run(c)
	if res.ProcessedBlocks != res.TotalBlocks {
		t.Fatalf("tiny input should process all blocks: %d of %d",
			res.ProcessedBlocks, res.TotalBlocks)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
}
