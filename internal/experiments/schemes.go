package experiments

import (
	"time"

	"metablocking/internal/core"
	"metablocking/internal/eval"
)

// SchemeRow is one (dataset, scheme, algorithm) measurement.
type SchemeRow struct {
	Dataset     string
	Scheme      core.Scheme
	Algorithm   core.Algorithm
	Comparisons int64
	PC, PQ      float64
	OTime       time.Duration
}

// SchemeBreakdown reports every weighting scheme individually for the two
// recommended pruning algorithms on the filtered blocks. The paper's
// tables average across schemes but its narrative makes per-scheme claims
// (e.g. §6.4: on D2C "two of them exceed the minimum acceptable recall" of
// Reciprocal WNP) — this experiment exposes that level of detail.
func (s *Suite) SchemeBreakdown() []SchemeRow {
	var out []SchemeRow
	s.printf("\n=== Per-scheme breakdown (after Block Filtering) ===\n")
	for _, alg := range []core.Algorithm{core.ReciprocalCNP, core.ReciprocalWNP} {
		s.printf("\n--- %v ---\n", alg)
		s.printf("%-5s", "")
		for _, scheme := range core.AllSchemes {
			s.printf(" %8s-PC %8s-PQ", scheme, scheme)
		}
		s.printf("\n")
		for _, p := range s.Datasets() {
			s.printf("%-5s", p.Dataset.Name)
			for _, scheme := range core.AllSchemes {
				res := core.Run(p.Filtered, core.Config{Scheme: scheme, Algorithm: alg, Obs: s.obsHandle()})
				rep := eval.EvaluatePairs(res.Pairs, p.Dataset.GroundTruth, p.Filtered.Comparisons())
				out = append(out, SchemeRow{
					Dataset:     p.Dataset.Name,
					Scheme:      scheme,
					Algorithm:   alg,
					Comparisons: rep.Comparisons,
					PC:          rep.PC(),
					PQ:          rep.PQ(),
					OTime:       res.OTime,
				})
				s.printf(" %11.3f %11.4f", rep.PC(), rep.PQ())
			}
			s.printf("\n")
		}
	}
	return out
}
