package blocking

import (
	"metablocking/internal/block"
	"metablocking/internal/entity"
	"metablocking/internal/obs"
)

// QGramsBlocking generalizes Token Blocking by keying on the character
// q-grams of every token (paper §2, redundancy-positive). It is more
// robust to typographical noise than whole tokens at the cost of larger,
// less precise blocks.
type QGramsBlocking struct {
	// Q is the gram length; values below 2 default to 3.
	Q int
	// Workers shards the build as in TokenBlocking; 0 or 1 = serial,
	// negative = GOMAXPROCS. Output is identical for any worker count.
	Workers int
}

var (
	_ WorkerSetter   = QGramsBlocking{}
	_ ObservedMethod = QGramsBlocking{}
)

// Name implements Method.
func (q QGramsBlocking) Name() string { return "Q-grams Blocking" }

func (q QGramsBlocking) size() int {
	if q.Q < 2 {
		return 3
	}
	return q.Q
}

// WithWorkers implements WorkerSetter.
func (q QGramsBlocking) WithWorkers(workers int) Method {
	if q.Workers == 0 {
		q.Workers = workers
	}
	return q
}

// Build implements Method.
func (q QGramsBlocking) Build(c *entity.Collection) *block.Collection {
	return q.BuildObserved(c, nil)
}

// BuildObserved implements ObservedMethod.
func (q QGramsBlocking) BuildObserved(c *entity.Collection, o *obs.Observer) *block.Collection {
	n := q.size()
	return buildKeyed(c, q.Workers, o, func(p *entity.Profile, toks []string, emit func(string)) []string {
		for _, a := range p.Attributes {
			toks = entity.AppendTokens(toks[:0], a.Value)
			for _, tok := range toks {
				if len(tok) <= n {
					emit(tok)
					continue
				}
				for i := 0; i+n <= len(tok); i++ {
					emit(tok[i : i+n])
				}
			}
		}
		return toks
	}, nil)
}

// SuffixArrayBlocking keys every token on its suffixes of at least
// MinLength characters (paper §2 ref [1]). Oversized suffix blocks (more
// than MaxBlockSize profiles) are dropped, as in the original method, since
// short common suffixes are not discriminative.
type SuffixArrayBlocking struct {
	// MinLength is the minimum suffix length; values below 1 default to 4.
	MinLength int
	// MaxBlockSize drops suffix keys assigned to more profiles than this;
	// 0 defaults to 50.
	MaxBlockSize int
	// Workers shards the build as in TokenBlocking; 0 or 1 = serial,
	// negative = GOMAXPROCS. Output is identical for any worker count.
	Workers int
}

var (
	_ WorkerSetter   = SuffixArrayBlocking{}
	_ ObservedMethod = SuffixArrayBlocking{}
)

// Name implements Method.
func (SuffixArrayBlocking) Name() string { return "Suffix Arrays Blocking" }

// WithWorkers implements WorkerSetter.
func (s SuffixArrayBlocking) WithWorkers(workers int) Method {
	if s.Workers == 0 {
		s.Workers = workers
	}
	return s
}

// Build implements Method.
func (s SuffixArrayBlocking) Build(c *entity.Collection) *block.Collection {
	return s.BuildObserved(c, nil)
}

// BuildObserved implements ObservedMethod.
func (s SuffixArrayBlocking) BuildObserved(c *entity.Collection, o *obs.Observer) *block.Collection {
	minLen := s.MinLength
	if minLen < 1 {
		minLen = 4
	}
	maxSize := s.MaxBlockSize
	if maxSize <= 0 {
		maxSize = 50
	}
	// Oversized suffix blocks are dropped at materialization time, after
	// the sharded postings have been merged (the per-worker partial counts
	// say nothing about a key's global size).
	return buildKeyed(c, s.Workers, o, func(p *entity.Profile, toks []string, emit func(string)) []string {
		for _, a := range p.Attributes {
			toks = entity.AppendTokens(toks[:0], a.Value)
			for _, tok := range toks {
				if len(tok) < minLen {
					continue
				}
				for i := 0; i+minLen <= len(tok); i++ {
					emit(tok[i:])
				}
			}
		}
		return toks
	}, func(e *keyEntry) bool {
		return len(e.e1)+len(e.e2) > maxSize
	})
}
