package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"metablocking/internal/dataio"
	"metablocking/internal/obs"
	"metablocking/internal/store"
)

// maxBodyBytes bounds a request body — matches the JSONL scanner buffer
// used by the batch tools (4 MiB).
const maxBodyBytes = 1 << 22

// ResolveResponse is the JSON body of a successful /v1/resolve call.
type ResolveResponse struct {
	// ID is the arrival-order identifier the index assigned, or -1 for a
	// degraded (read-only) answer.
	ID int `json:"id"`
	// Candidates lists the pruned comparison suggestions, heaviest first.
	Candidates []CandidateJSON `json:"candidates"`
	// Degraded marks an answer served read-only from the last good index
	// while the write path's circuit breaker is open.
	Degraded bool `json:"degraded,omitempty"`
}

// CandidateJSON is one pruned candidate comparison.
type CandidateJSON struct {
	ID     int     `json:"id"`
	Weight float64 `json:"weight"`
}

// ReloadRequest is the JSON body of /v1/admin/reload.
type ReloadRequest struct {
	// Path names a resolver-snapshot artifact written by internal/store.
	Path string `json:"path"`
}

// ReloadResponse reports a completed snapshot swap.
type ReloadResponse struct {
	// Profiles is the size of the freshly loaded index.
	Profiles int `json:"profiles"`
}

// SnapshotRequest is the JSON body of /v1/admin/snapshot.
type SnapshotRequest struct {
	// Path is where the resolver-snapshot artifact is written.
	Path string `json:"path"`
}

// SnapshotResponse reports a persisted snapshot.
type SnapshotResponse struct {
	// Profiles is the size of the index that was snapshotted.
	Profiles int `json:"profiles"`
	Path     string `json:"path"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service mux:
//
//	POST /v1/resolve      — resolve one JSONL profile record
//	POST /v1/admin/reload — hot-swap the index from a snapshot file
//	POST /v1/admin/snapshot — persist the serving index to a snapshot file
//	GET  /healthz         — liveness (always 200 while the process runs)
//	GET  /readyz          — readiness (503 once draining)
//	GET  /metrics         — the obs registry as a plain-text table
//	GET  /debug/vars      — the obs registry as expvar-style JSON
//
// Every endpoint is wrapped in obs.HTTPMetrics, so the registry carries
// per-endpoint request/error/shed/latency counters. When
// Config.RequestTimeout is set, every request's context additionally
// carries that deadline, so a stalled index pass turns into a bounded 408
// instead of a hung connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.HandlerFunc) {
		if d := s.cfg.RequestTimeout; d > 0 {
			inner := h
			h = func(w http.ResponseWriter, req *http.Request) {
				ctx, cancel := context.WithTimeout(req.Context(), d)
				defer cancel()
				inner(w, req.WithContext(ctx))
			}
		}
		mux.Handle(pattern, obs.HTTPMetrics(s.metrics, nil, name, h))
	}
	handle("POST /v1/resolve", "resolve", s.handleResolve)
	handle("POST /v1/admin/reload", "reload", s.handleReload)
	handle("POST /v1/admin/snapshot", "snapshot", s.handleSnapshot)
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ready\n")
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.metrics.Snapshot().Table())
	})
	handle("GET /debug/vars", "vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(s.metrics.Snapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleResolve(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	p, err := dataio.ParseProfileJSON(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	res, err := s.Resolve(req.Context(), p)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusRequestTimeout, ErrorResponse{Error: err.Error()})
		return
	case err != nil: // per-request failure: injected fault or recovered panic
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	out := ResolveResponse{
		ID:         int(res.ID),
		Candidates: make([]CandidateJSON, len(res.Candidates)),
		Degraded:   res.Degraded,
	}
	for i, c := range res.Candidates {
		out.Candidates[i] = CandidateJSON{ID: int(c.ID), Weight: c.Weight}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReload(w http.ResponseWriter, req *http.Request) {
	var r ReloadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&r); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if r.Path == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing snapshot path"})
		return
	}
	n, err := s.ReloadFile(r.Path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
		return
	case errors.Is(err, store.ErrCorruptArtifact) || errors.Is(err, store.ErrVersionMismatch):
		// Verify-before-swap: the artifact failed verification, the live
		// index was never touched. 422: the request was well-formed but
		// names an unusable snapshot.
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Profiles: n})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	var r SnapshotRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&r); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if r.Path == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing snapshot path"})
		return
	}
	n, err := s.SnapshotFile(r.Path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Profiles: n, Path: r.Path})
}
