// Package loadgen drives concurrent resolve traffic against an Entity
// Resolution serving target — the race-enabled harness behind the server's
// equivalence and backpressure tests and its micro-benchmarks.
//
// The generator is transport-agnostic: Run fans Options.Requests calls
// across Options.Clients goroutines through any Resolver func, and
// HTTPResolver adapts a running /v1/resolve endpoint to that signature.
// Shed load (HTTP 429 / server.ErrQueueFull mapped to ErrRejected by the
// adapter) is tallied separately from hard errors, so tests can assert
// "every accepted request completed" exactly.
//
// With Options.MaxAttempts > 1 the generator behaves like a well-behaved
// client under backpressure: a shed request is retried with jittered
// exponential backoff, honoring the server's Retry-After advisory as a
// floor, up to a capped attempt budget.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"metablocking/internal/dataio"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

// ErrRejected marks a request the target shed under load (HTTP 429). The
// generator counts these as backpressure, not failures.
var ErrRejected = errors.New("loadgen: request shed by target")

// RejectedError is a shed request carrying the server's stable error
// code and back-off advisory. It unwraps to ErrRejected, so
// errors.Is(err, ErrRejected) keeps working.
type RejectedError struct {
	// Code is the machine-readable code from the error envelope
	// ("queue_full", "shard_busy", "tier_busy", "timeout"); empty for
	// pre-envelope targets.
	Code string
	// RetryAfter is the server's advisory back-off; zero when absent.
	// Filled from the envelope's retry_after_ms, falling back to the
	// legacy Retry-After header.
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	code := e.Code
	if code == "" {
		code = "429"
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("loadgen: request shed by target (%s, retry after %s)", code, e.RetryAfter)
	}
	return fmt.Sprintf("loadgen: request shed by target (%s)", code)
}

func (e *RejectedError) Unwrap() error { return ErrRejected }

// ErrCursorInvalid marks a resumption cursor the target no longer
// honors (HTTP 410, code "cursor_invalid"): the server restarted or
// checkpointed, so the generation the cursor was cut against is gone.
// It is NOT backpressure — retrying the same cursor can never succeed;
// the recoverable move is restarting the stream from scratch, which
// FollowStream does.
var ErrCursorInvalid = errors.New("loadgen: resumption cursor invalidated by target")

// CursorInvalidError carries the envelope detail of an invalidated
// cursor. It unwraps to ErrCursorInvalid, not ErrRejected.
type CursorInvalidError struct {
	Message string
}

func (e *CursorInvalidError) Error() string {
	if e.Message == "" {
		return ErrCursorInvalid.Error()
	}
	return fmt.Sprintf("%s: %s", ErrCursorInvalid, e.Message)
}

func (e *CursorInvalidError) Unwrap() error { return ErrCursorInvalid }

// Resolver is one resolve attempt against the target.
type Resolver func(p entity.Profile) (incremental.BatchResult, error)

// Options shapes a load run.
type Options struct {
	// Clients is the number of concurrent workers. Default 8.
	Clients int
	// Requests is the total number of resolve calls. Default 1000.
	Requests int
	// MaxAttempts is the per-request attempt budget: 1 (the default)
	// never retries; n > 1 retries shed requests up to n-1 times with
	// jittered exponential backoff. A request still shed after the budget
	// counts as Rejected.
	MaxAttempts int
	// Backoff is the base back-off before the first retry; it doubles per
	// attempt. Default 10ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Default 1s.
	MaxBackoff time.Duration
	// Seed drives the per-worker jitter RNGs, making a run's sleep
	// sequence reproducible.
	Seed int64
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// backoffFor computes the jittered sleep before retry number attempt
// (1-based): an exponentially grown base, halved and re-filled with
// uniform jitter, floored by the server's Retry-After advisory.
func backoffFor(o Options, rng *rand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	d := o.Backoff << (attempt - 1)
	if d > o.MaxBackoff || d <= 0 { // <= 0: shift overflow
		d = o.MaxBackoff
	}
	half := d / 2
	d = half + time.Duration(rng.Int63n(int64(half)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Response records one completed request: the profile that was sent and
// what the target answered.
type Response struct {
	Profile    entity.Profile
	ID         entity.ID
	Candidates []incremental.Candidate
}

// Report aggregates a load run.
type Report struct {
	// Responses holds every accepted-and-answered request, in no
	// particular order (sort by ID to recover arrival order).
	Responses []Response
	// Rejected counts requests still shed after the attempt budget.
	Rejected int
	// Retries counts re-attempts of shed requests (MaxAttempts > 1).
	Retries int
	// Errors holds every other failure.
	Errors []error
}

// Run fans opts.Requests resolve calls over opts.Clients workers, cycling
// through the profile set, and aggregates the outcomes. It returns once
// every request has completed. Shed requests are retried within
// opts.MaxAttempts, sleeping a jittered exponential backoff (floored by
// the target's Retry-After advisory) between attempts.
func Run(resolve Resolver, profiles []entity.Profile, opts Options) *Report {
	opts = opts.withDefaults()
	var (
		next atomic.Int64
		mu   sync.Mutex
		rep  Report
		wg   sync.WaitGroup
	)
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)))
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				p := profiles[i%len(profiles)]
				var res incremental.BatchResult
				var err error
				retries := 0
				for attempt := 1; ; attempt++ {
					res, err = resolve(p)
					if !errors.Is(err, ErrRejected) || attempt >= opts.MaxAttempts {
						break
					}
					var retryAfter time.Duration
					var rej *RejectedError
					if errors.As(err, &rej) {
						retryAfter = rej.RetryAfter
					}
					opts.Sleep(backoffFor(opts, rng, attempt, retryAfter))
					retries++
				}
				mu.Lock()
				rep.Retries += retries
				switch {
				case errors.Is(err, ErrRejected):
					rep.Rejected++
				case err != nil:
					rep.Errors = append(rep.Errors, err)
				default:
					rep.Responses = append(rep.Responses, Response{
						Profile:    p,
						ID:         res.ID,
						Candidates: res.Candidates,
					})
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return &rep
}

// errorEnvelope mirrors the server's structured non-2xx body:
//
//	{"error":{"code":"queue_full","message":"...","retry_after_ms":1000}}
type errorEnvelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// retryableCodes are the envelope codes a well-behaved client treats as
// backpressure: back off and retry, uniformly. "timeout" (408) and
// "tier_busy" join the queue-shedding 429s — all four carry
// retry_after_ms.
var retryableCodes = map[string]bool{
	"queue_full": true,
	"shard_busy": true,
	"tier_busy":  true,
	"timeout":    true,
}

// classifyError turns a non-2xx response into a RejectedError (shed —
// retry with backoff) or a hard error, by the envelope's stable code.
// Pre-envelope targets are classified by bare status: 429 and 408 shed.
func classifyError(resp *http.Response, payload []byte) error {
	var env errorEnvelope
	json.Unmarshal(payload, &env) // best effort: pre-envelope targets leave it zero
	if env.Error.Code == "cursor_invalid" {
		return &CursorInvalidError{Message: env.Error.Message}
	}
	shed := retryableCodes[env.Error.Code] ||
		(env.Error.Code == "" &&
			(resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusRequestTimeout))
	if shed {
		after := time.Duration(env.Error.RetryAfterMs) * time.Millisecond
		if after == 0 {
			if v := resp.Header.Get("Retry-After"); v != "" {
				if secs, err := time.ParseDuration(v + "s"); err == nil {
					after = secs
				}
			}
		}
		return &RejectedError{Code: env.Error.Code, RetryAfter: after}
	}
	if env.Error.Code != "" {
		return fmt.Errorf("loadgen: status %d code %s: %s",
			resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	return fmt.Errorf("loadgen: status %d: %s", resp.StatusCode, payload)
}

// HTTPResolver adapts a server's base URL ("http://host:port") to a
// Resolver posting JSONL records to /v1/resolve. Non-2xx responses are
// classified by the stable code in the error envelope — "queue_full" and
// "shard_busy" map to ErrRejected with the envelope's retry_after_ms as
// the back-off advisory (falling back to the legacy Retry-After header);
// everything else is a hard error labeled with its code. A nil client
// uses http.DefaultClient.
func HTTPResolver(baseURL string, client *http.Client) Resolver {
	if client == nil {
		client = http.DefaultClient
	}
	return func(p entity.Profile) (incremental.BatchResult, error) {
		body, err := dataio.MarshalProfileJSON(p)
		if err != nil {
			return incremental.BatchResult{}, err
		}
		resp, err := client.Post(baseURL+"/v1/resolve", "application/json", bytes.NewReader(body))
		if err != nil {
			return incremental.BatchResult{}, err
		}
		defer resp.Body.Close()
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return incremental.BatchResult{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return incremental.BatchResult{}, classifyError(resp, payload)
		}
		var out struct {
			ID         int `json:"id"`
			Candidates []struct {
				ID     int     `json:"id"`
				Weight float64 `json:"weight"`
			} `json:"candidates"`
		}
		if err := json.Unmarshal(payload, &out); err != nil {
			return incremental.BatchResult{}, fmt.Errorf("loadgen: decoding response: %v", err)
		}
		res := incremental.BatchResult{ID: entity.ID(out.ID)}
		for _, c := range out.Candidates {
			res.Candidates = append(res.Candidates, incremental.Candidate{ID: entity.ID(c.ID), Weight: c.Weight})
		}
		return res, nil
	}
}
