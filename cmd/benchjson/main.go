// Command benchjson emits the repository's headline benchmark numbers as
// machine-readable JSON and gates a fresh run against a committed
// trajectory file (BENCH_PR10.json), failing on regressions.
//
// Two modes:
//
//	benchjson emit [-o out.json]
//	    runs the headline benchmarks in-process (testing.Benchmark) and
//	    writes {"schema":1,"benchmarks":{...}}: ns/op, B/op, allocs/op
//	    for the serial pipeline, the batched server resolve path and the
//	    out-of-core read path (cold and warm page cache), plus p50/p99
//	    request latency under concurrent load — for the synchronous
//	    resolve path, for the budget-aware interactive streaming mode
//	    (resolve_budget_interactive: per-stream p50/p99 and emitted
//	    comparisons per wall-clock millisecond), and for the disk-mode
//	    commit path under each write-ahead-log sync policy
//	    (commit_wal_off / commit_wal_interval / commit_wal_always —
//	    what the durability ladder costs per acknowledged write).
//
//	benchjson gate -baseline BENCH_PR10.json [-current fresh.json] [-ns]
//	    compares a current emit against the baseline's benchmarks
//	    section and exits non-zero when a gated metric regressed beyond
//	    its tolerance. allocs/op is always gated — it is
//	    hardware-independent, so it is the CI-safe signal. ns/op and the
//	    latency percentiles are gated only with -ns (same-machine runs);
//	    on shared CI hosts wall-clock is noise, allocation count is not.
//	    Per-benchmark tolerances embedded in the baseline file
//	    (alloc_tolerance, ns_tolerance) override the -threshold default.
//
// With no -current, gate runs emit itself and compares the live numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"metablocking"
	"metablocking/internal/budget"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/diskindex"
	"metablocking/internal/entity"
	"metablocking/internal/incremental"
	"metablocking/internal/loadgen"
	"metablocking/internal/server"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

// Bench is one benchmark's recorded metrics plus its optional gate
// tolerances (fractions: 0.10 = fail beyond +10%).
type Bench struct {
	NsPerOp          float64 `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	P50Ns            int64   `json:"p50_ns,omitempty"`
	P99Ns            int64   `json:"p99_ns,omitempty"`
	ProfilesPerBatch float64 `json:"profiles_per_batch,omitempty"`
	// ComparisonsPerMs is the progressive-serving throughput: ranked
	// candidates emitted to streaming clients per wall-clock millisecond
	// across the whole run (informational — wall-clock, never gated).
	ComparisonsPerMs float64 `json:"comparisons_per_ms,omitempty"`
	AllocTolerance   float64 `json:"alloc_tolerance,omitempty"`
	NsTolerance      float64 `json:"ns_tolerance,omitempty"`
}

// File is the trajectory artifact: the current numbers, and for the
// committed BENCH_PR8.json also the pre-PR baseline they improved on.
type File struct {
	Schema     int              `json:"schema"`
	PR         int              `json:"pr,omitempty"`
	Note       string           `json:"note,omitempty"`
	Go         string           `json:"go,omitempty"`
	Baseline   map[string]Bench `json:"baseline,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson emit|gate [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "emit":
		fs := flag.NewFlagSet("emit", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(os.Args[2:])
		f := File{Schema: 1, Go: runtime.Version(), Benchmarks: runAll()}
		writeJSON(*out, f)
	case "gate":
		fs := flag.NewFlagSet("gate", flag.ExitOnError)
		basePath := fs.String("baseline", "BENCH_PR10.json", "committed trajectory file")
		curPath := fs.String("current", "", "fresh emit to compare (default: run emit now)")
		threshold := fs.String("threshold", "0.10", "default regression tolerance (fraction)")
		gateNs := fs.Bool("ns", false, "also gate ns/op and latency percentiles (same-machine runs only)")
		fs.Parse(os.Args[2:])
		var thr float64
		if _, err := fmt.Sscanf(*threshold, "%f", &thr); err != nil || thr <= 0 {
			fatalf("bad -threshold %q", *threshold)
		}
		base := readJSON(*basePath)
		var cur File
		if *curPath != "" {
			cur = readJSON(*curPath)
		} else {
			cur = File{Schema: 1, Benchmarks: runAll()}
		}
		if !gate(base, cur, thr, *gateNs) {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown mode %q\n", os.Args[1])
		os.Exit(2)
	}
}

func runAll() map[string]Bench {
	out := make(map[string]Bench)
	fmt.Fprintln(os.Stderr, "benchjson: running pipeline_workers1 ...")
	out["pipeline_workers1"] = benchPipeline()
	fmt.Fprintln(os.Stderr, "benchjson: running server_resolve ...")
	out["server_resolve"] = benchServerResolve(1)
	for _, shards := range []int{4, 16} {
		name := fmt.Sprintf("server_resolve_shards%d", shards)
		fmt.Fprintln(os.Stderr, "benchjson: running "+name+" ...")
		out[name] = benchServerResolve(shards)
	}
	fmt.Fprintln(os.Stderr, "benchjson: running server_latency ...")
	out["server_latency"] = benchServerLatency()
	fmt.Fprintln(os.Stderr, "benchjson: running resolve_budget_interactive ...")
	out["resolve_budget_interactive"] = benchBudgetStream()
	fmt.Fprintln(os.Stderr, "benchjson: running resolve_disk_cold ...")
	out["resolve_disk_cold"] = benchResolveDisk(1)
	fmt.Fprintln(os.Stderr, "benchjson: running resolve_disk_warm ...")
	out["resolve_disk_warm"] = benchResolveDisk(8 << 20)
	for _, policy := range []string{server.WALSyncOff, server.WALSyncInterval, server.WALSyncAlways} {
		name := "commit_wal_" + policy
		fmt.Fprintln(os.Stderr, "benchjson: running "+name+" ...")
		out[name] = benchCommit(policy)
	}
	return out
}

// benchCommit prices the disk-mode commit path under one WAL sync
// policy: a single sequential client resolving against a disk-backed
// server, so each op is one acknowledged write including its append
// and — under "always" — its own group-commit fsync barrier (a batch
// of one: the worst case; concurrent load amortizes the barrier over
// the whole micro-batch). The memtable budget is high enough that
// nothing checkpoints, isolating the commit cost from seal cost.
func benchCommit(policy string) Bench {
	profiles := benchProfiles(1000)
	root, err := os.MkdirTemp("", "benchjson-wal")
	if err != nil {
		fatalf("commit bench: %v", err)
	}
	defer os.RemoveAll(root)
	s, err := server.New(server.Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    64,
		QueueDepth:  8192,
		DiskDir:     root,
		WALSync:     policy,
	})
	if err != nil {
		fatalf("commit bench: %v", err)
	}
	defer s.Close()

	var durs []time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		durs = make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := s.Resolve(context.Background(), profiles[i%len(profiles)]); err != nil {
				fatalf("commit bench: resolve: %v", err)
			}
			durs = append(durs, time.Since(start))
		}
	})
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	out := fromResult(r)
	if len(durs) > 0 {
		pct := func(p float64) int64 { return durs[int(p*float64(len(durs)-1))].Nanoseconds() }
		out.P50Ns = pct(0.50)
		out.P99Ns = pct(0.99)
	}
	return out
}

// benchPipeline mirrors BenchmarkParallelPipeline/workers=1: the full
// serial pipeline (Token Blocking → purging → filtering r=0.8 → JS +
// ReciprocalWNP pruning) on the D2D dataset at scale 0.5.
func benchPipeline() Bench {
	ds := datagen.D2D(0.5)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := metablocking.Pipeline{
				FilterRatio: 0.8,
				Scheme:      metablocking.JS,
				Algorithm:   metablocking.ReciprocalWNP,
				Workers:     1,
			}.Run(ds.Collection)
			if err != nil {
				fatalf("pipeline: %v", err)
			}
			if len(res.Pairs) == 0 {
				fatalf("pipeline retained nothing")
			}
		}
	})
	return fromResult(r)
}

// benchServerResolve mirrors BenchmarkServerResolve(Shards): the batched
// resolve path end to end with concurrent submitters so micro-batches
// coalesce, serving either the monolithic index (shards == 1) or the
// scatter-gather coordinator.
func benchServerResolve(shards int) Bench {
	profiles := benchProfiles(1000)
	s, err := server.New(server.Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		Shards:      shards,
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    64,
		QueueDepth:  8192,
	})
	if err != nil {
		fatalf("server: %v", err)
	}
	defer s.Close()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := s.Resolve(context.Background(), profiles[i%len(profiles)]); err != nil {
					fatalf("resolve: %v", err)
				}
				i++
			}
		})
	})
	out := fromResult(r)
	if batches := s.Metrics().Counter(server.CtrBatches).Value(); batches > 0 {
		out.ProfilesPerBatch = float64(s.Metrics().Counter(server.CtrBatchedProfs).Value()) / float64(batches)
	}
	return out
}

// benchServerLatency measures per-request wall-clock latency under
// concurrent load (8 clients, fresh server) and reports p50/p99.
func benchServerLatency() Bench {
	const clients, perClient = 8, 500
	profiles := benchProfiles(1000)
	s, err := server.New(server.Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    64,
		QueueDepth:  8192,
	})
	if err != nil {
		fatalf("server: %v", err)
	}
	defer s.Close()

	durs := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ds := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				p := profiles[(c*perClient+i)%len(profiles)]
				start := time.Now()
				if _, err := s.Resolve(context.Background(), p); err != nil {
					fatalf("resolve: %v", err)
				}
				ds = append(ds, time.Since(start))
			}
			durs[c] = ds
		}(c)
	}
	wg.Wait()
	var all []time.Duration
	for _, ds := range durs {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(all)-1))
		return all[i].Nanoseconds()
	}
	return Bench{P50Ns: pct(0.50), P99Ns: pct(0.99)}
}

// benchBudgetStream measures the budget-aware progressive path end to
// end over HTTP: interactive-tier NDJSON streams (default 250ms tier
// budget, 16-candidate frames) driven by the mixed-tier load generator
// with every request on the interactive tier. Reported are per-stream
// wall-clock p50/p99 — the latency a budget-bound client observes from
// POST to terminal frame — and comparisons-per-ms, the rate at which
// ranked candidates cross the wire across the whole run.
func benchBudgetStream() Bench {
	const clients, requests = 8, 2000
	profiles := benchProfiles(1000)
	s, err := server.New(server.Config{
		Resolver:    incremental.Config{Scheme: core.JS, K: 10},
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    64,
		QueueDepth:  8192,
		Tiers: []budget.Tier{
			{Name: budget.TierInteractive, Slots: 64, DefaultBudget: 250 * time.Millisecond},
			{Name: budget.TierBatch, Slots: 8, DefaultBudget: 5 * time.Second},
		},
		StreamBatch: 16,
	})
	if err != nil {
		fatalf("server: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	rep := loadgen.RunMixed(loadgen.HTTPStreamer(ts.URL, ts.Client()), profiles, loadgen.MixedOptions{
		Options:    loadgen.Options{Clients: clients, Requests: requests},
		BatchRatio: 0, // headline row is the interactive tier
	})
	elapsed := time.Since(start)
	if len(rep.Errors) > 0 {
		fatalf("budget stream: %v", rep.Errors[0])
	}
	if rep.Interactive.Rejected > 0 {
		fatalf("budget stream: %d interactive requests shed (tier slots misconfigured)", rep.Interactive.Rejected)
	}
	emitted := s.Metrics().Counter(budget.CtrComparisons).Value()
	return Bench{
		P50Ns:            rep.Interactive.P50.Nanoseconds(),
		P99Ns:            rep.Interactive.P99.Nanoseconds(),
		ComparisonsPerMs: float64(emitted) / (float64(elapsed.Nanoseconds()) / 1e6),
	}
}

// benchResolveDisk measures the out-of-core read path: 1000 profiles
// sealed into five delta segments (compaction disabled so the gather
// fans across a realistic LSM depth), then read-only Peek resolves
// through the shard coordinator. cacheBytes picks the variant: 1 byte
// evicts almost every posting page between operations so each Peek
// re-reads and re-verifies pages from disk (cold); 8 MiB holds the whole
// working set after the first pass (warm) — the steady state a serving
// replica lives in, where the disk index must cost no more allocations
// than the page-cache hits themselves.
func benchResolveDisk(cacheBytes int) Bench {
	profiles := benchProfiles(1000)
	rcfg := incremental.Config{Scheme: core.JS, K: 10}
	root, err := os.MkdirTemp("", "benchjson-disk")
	if err != nil {
		fatalf("disk bench: %v", err)
	}
	defer os.RemoveAll(root)

	open := func() *shard.Group {
		layout, err := store.RecoverDiskDir(root, 1)
		if err != nil {
			fatalf("disk bench: recover: %v", err)
		}
		parts := make([]*diskindex.Partition, layout.Shards)
		for k, state := range layout.Shard {
			parts[k], err = diskindex.Open(diskindex.Options{
				Config:       rcfg,
				Shards:       layout.Shards,
				Index:        k,
				State:        state,
				Checkpoint:   layout.Checkpoint,
				Size:         layout.Size,
				CacheBytes:   cacheBytes,
				CompactAfter: 64,
			})
			if err != nil {
				fatalf("disk bench: open: %v", err)
			}
		}
		blockSize := make(map[string]int)
		for _, p := range parts {
			p.AddBlockCounts(blockSize)
		}
		g, err := shard.Restored(shard.Config{
			Resolver:   rcfg,
			Shards:     layout.Shards,
			Backends:   func(k int) (shard.Backend, error) { return parts[k], nil },
			Checkpoint: layout.MaxCheckpoint,
		}, layout.Size, blockSize)
		if err != nil {
			fatalf("disk bench: restore: %v", err)
		}
		return g
	}

	g := open()
	defer func() { g.Close() }()
	for i, p := range profiles {
		if _, err := g.Resolve(p); err != nil {
			fatalf("disk bench: resolve: %v", err)
		}
		if (i+1)%200 == 0 {
			if err := g.Checkpoint(); err != nil {
				fatalf("disk bench: checkpoint: %v", err)
			}
		}
	}

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		i := 0
		for i = 0; i < b.N; i++ {
			if _, err := g.Peek(profiles[i%len(profiles)]); err != nil {
				fatalf("disk bench: peek: %v", err)
			}
		}
	})
	return fromResult(r)
}

func benchProfiles(n int) []entity.Profile {
	ds := datagen.D1D(0.1)
	if len(ds.Collection.Profiles) < n {
		fatalf("dataset has %d profiles, need %d", len(ds.Collection.Profiles), n)
	}
	return ds.Collection.Profiles[:n]
}

func fromResult(r testing.BenchmarkResult) Bench {
	return Bench{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// gate compares current against baseline and reports every gated metric.
// It returns false when any metric regressed beyond its tolerance.
func gate(base, cur File, defThr float64, gateNs bool) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	check := func(name, metric string, baseV, curV, tol float64, gated bool) {
		if baseV <= 0 {
			return
		}
		delta := (curV - baseV) / baseV
		status := "info"
		if gated {
			status = "ok"
			if delta > tol {
				status = "FAIL"
				ok = false
			}
		}
		fmt.Printf("%-22s %-18s base=%.0f cur=%.0f delta=%+.1f%% tol=%.0f%% [%s]\n",
			name, metric, baseV, curV, 100*delta, 100*tol, status)
	}
	for _, name := range names {
		b := base.Benchmarks[name]
		c, present := cur.Benchmarks[name]
		if !present {
			fmt.Printf("%-22s MISSING from current run [FAIL]\n", name)
			ok = false
			continue
		}
		allocTol, nsTol := b.AllocTolerance, b.NsTolerance
		if allocTol == 0 {
			allocTol = defThr
		}
		if nsTol == 0 {
			nsTol = defThr
		}
		check(name, "allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), allocTol, true)
		check(name, "ns/op", b.NsPerOp, c.NsPerOp, nsTol, gateNs)
		check(name, "p50_ns", float64(b.P50Ns), float64(c.P50Ns), nsTol, gateNs)
		check(name, "p99_ns", float64(b.P99Ns), float64(c.P99Ns), nsTol, gateNs)
		// Throughput runs the other way (higher is better) and is pure
		// wall-clock, so it is informational at every gating level.
		check(name, "cmp/ms", b.ComparisonsPerMs, c.ComparisonsPerMs, nsTol, false)
	}
	if !ok {
		fmt.Println("benchjson: REGRESSION detected")
	} else {
		fmt.Println("benchjson: gate passed")
	}
	return ok
}

func writeJSON(path string, f File) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if path == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func readJSON(path string) File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read: %v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fatalf("parse %s: %v", path, err)
	}
	if f.Schema != 1 {
		fatalf("%s: unsupported schema %d", path, f.Schema)
	}
	return f
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
