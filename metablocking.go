// Package metablocking is the public API of the Enhanced Meta-blocking
// library, a Go implementation of Papadakis et al., "Scaling Entity
// Resolution to Large, Heterogeneous Data with Enhanced Meta-blocking"
// (EDBT 2016).
//
// The package re-exports the building blocks (entity model, blocking
// methods, block cleaning, meta-blocking pruning, matching, evaluation)
// and wires them into a configurable Pipeline:
//
//	ds := metablocking.GenerateDataset(metablocking.D2C, 0.5)
//	p := metablocking.Pipeline{
//		Blocking:    metablocking.TokenBlocking{},
//		FilterRatio: 0.8,
//		Scheme:      metablocking.JS,
//		Algorithm:   metablocking.ReciprocalWNP,
//	}
//	res, err := p.Run(ds.Collection)
//
// The result carries the retained comparisons and, when a ground truth is
// supplied, the paper's effectiveness measures (PC, PQ, RR).
package metablocking

import (
	"context"
	"errors"
	"time"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/blockproc"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/eval"
	"metablocking/internal/incremental"
	"metablocking/internal/matching"
	"metablocking/internal/obs"
	"metablocking/internal/par"
	"metablocking/internal/progressive"
	"metablocking/internal/store"
	"metablocking/internal/supervised"
)

// Sentinel errors of the public API; test for them with errors.Is.
var (
	// ErrEmptyCollection is returned when the pipeline input is nil or has
	// no profiles.
	ErrEmptyCollection = errors.New("metablocking: empty collection")
	// ErrInvalidFilterRatio is returned when FilterRatio falls outside
	// [0, 1].
	ErrInvalidFilterRatio = errors.New("metablocking: FilterRatio must be in [0, 1]")
	// ErrGraphFreeNeedsFilter is returned when GraphFree is set without a
	// FilterRatio — the graph-free workflow of Figure 7(b) is Block
	// Filtering followed by Comparison Propagation, so a ratio is required.
	ErrGraphFreeNeedsFilter = errors.New("metablocking: GraphFree requires a FilterRatio")
	// ErrUnsupportedScheme is returned (wrapped with component context)
	// wherever a weighting scheme cannot be evaluated — e.g. by
	// NewIncrementalResolver for EJS, whose global node degrees the
	// incremental setting cannot maintain. It aliases the shared
	// internal sentinel, so errors.Is matches errors from every layer.
	ErrUnsupportedScheme = core.ErrUnsupportedScheme
)

// PanicError is a worker panic converted into an error: RunContext
// recovers panics raised anywhere in the pipeline — including inside
// parallel worker goroutines, which drain before the panic propagates —
// and returns one of these (retrieve with errors.As) instead of crashing
// the process. Value holds the recovered panic value, Stack the panicking
// goroutine's stack trace.
type PanicError = par.PanicError

// Crash-safe artifact errors of internal/store, re-exported so callers can
// classify load failures without importing internal packages.
var (
	// ErrCorruptArtifact marks a stored artifact whose checksum, framing
	// or payload failed verification — a torn or bit-flipped file.
	ErrCorruptArtifact = store.ErrCorruptArtifact
	// ErrVersionMismatch marks an artifact written by an incompatible
	// format version.
	ErrVersionMismatch = store.ErrVersionMismatch
)

// Entity model.
type (
	// Profile is a uniquely identified collection of name–value pairs.
	Profile = entity.Profile
	// Attribute is a single name–value pair.
	Attribute = entity.Attribute
	// Collection is the input of an ER task.
	Collection = entity.Collection
	// GroundTruth is the set of known duplicate pairs.
	GroundTruth = entity.GroundTruth
	// Pair is an unordered pair of profile IDs.
	Pair = entity.Pair
	// ID identifies a profile.
	ID = entity.ID
)

// NewDirty builds a Dirty ER collection (deduplication).
func NewDirty(profiles []Profile) *Collection { return entity.NewDirty(profiles) }

// NewCleanClean builds a Clean-Clean ER collection (record linkage).
func NewCleanClean(e1, e2 []Profile) *Collection { return entity.NewCleanClean(e1, e2) }

// NewGroundTruth builds a ground truth from duplicate pairs.
func NewGroundTruth(pairs []Pair) *GroundTruth { return entity.NewGroundTruth(pairs) }

// Blocking methods.
type (
	// BlockingMethod builds a block collection from an entity collection.
	BlockingMethod = blocking.Method
	// TokenBlocking is the paper's primary schema-agnostic method.
	TokenBlocking = blocking.TokenBlocking
	// QGramsBlocking keys on character q-grams.
	QGramsBlocking = blocking.QGramsBlocking
	// SuffixArrayBlocking keys on token suffixes.
	SuffixArrayBlocking = blocking.SuffixArrayBlocking
	// AttributeClusteringBlocking keys tokens within attribute clusters.
	AttributeClusteringBlocking = blocking.AttributeClusteringBlocking
	// StandardBlocking assigns one key per profile (disjoint blocks).
	StandardBlocking = blocking.StandardBlocking
	// SortedNeighborhood slides a window over key-sorted profiles.
	SortedNeighborhood = blocking.SortedNeighborhood
	// ExtendedQGramsBlocking keys on combinations of q-grams.
	ExtendedQGramsBlocking = blocking.ExtendedQGramsBlocking
	// ExtendedSortedNeighborhood windows over distinct sorted keys.
	ExtendedSortedNeighborhood = blocking.ExtendedSortedNeighborhood
	// CanopyClustering is the classic redundancy-negative method.
	CanopyClustering = blocking.CanopyClustering
	// MinHashBlocking is LSH blocking over token-set signatures.
	MinHashBlocking = blocking.MinHashBlocking
	// Blocks is a block collection.
	Blocks = block.Collection
)

// Weighting schemes and pruning algorithms (paper Fig. 3).
type (
	// Scheme selects the edge-weighting scheme.
	Scheme = core.Scheme
	// Algorithm selects the pruning algorithm.
	Algorithm = core.Algorithm
)

// Weighting schemes (Fig. 4).
const (
	ARCS = core.ARCS
	CBS  = core.CBS
	ECBS = core.ECBS
	JS   = core.JS
	EJS  = core.EJS
)

// Pruning algorithms (§3, §5).
const (
	CEP           = core.CEP
	CNP           = core.CNP
	WEP           = core.WEP
	WNP           = core.WNP
	RedefinedCNP  = core.RedefinedCNP
	ReciprocalCNP = core.ReciprocalCNP
	RedefinedWNP  = core.RedefinedWNP
	ReciprocalWNP = core.ReciprocalWNP
)

// Synthetic datasets (substitutes for the paper's benchmarks; DESIGN.md §5).
type Dataset = datagen.Dataset

// DatasetID names one of the six built-in benchmark profiles.
type DatasetID int

// The six benchmark datasets of the paper (§6.1), plus two domain-flavored
// families rendering the same statistical structure as readable records.
const (
	D1C DatasetID = iota
	D2C
	D3C
	D1D
	D2D
	D3D
	// BIB is a bibliographic Clean-Clean family (DBLP–Scholar-like, the
	// paper's D1 scenario) with human-readable titles, authors and venues.
	BIB
	// MOV is a movies Clean-Clean family (IMDB–DBpedia-like, the paper's
	// D2 scenario) with a terse catalog side and a verbose encyclopedia
	// side.
	MOV
)

// GenerateDataset builds one of the built-in synthetic benchmarks at the
// given scale (1.0 = default laptop-friendly size).
func GenerateDataset(id DatasetID, scale float64) Dataset {
	switch id {
	case D1C:
		return datagen.D1C(scale)
	case D2C:
		return datagen.D2C(scale)
	case D3C:
		return datagen.D3C(scale)
	case D1D:
		return datagen.D1D(scale)
	case D2D:
		return datagen.D2D(scale)
	case D3D:
		return datagen.D3D(scale)
	case BIB:
		return datagen.BIB(scale)
	case MOV:
		return datagen.MOV(scale)
	default:
		panic("metablocking: unknown dataset id")
	}
}

// Pipeline is the end-to-end workflow of Figure 7(a): blocking → Block
// Purging → Block Filtering → graph-based Meta-blocking. A zero Pipeline
// runs Token Blocking with purging on, no filtering, and the zero-valued
// configuration ARCS + CEP; set Scheme and Algorithm explicitly for the
// paper's recommended configurations (e.g. JS + ReciprocalWNP).
type Pipeline struct {
	// Blocking builds the redundancy-positive input blocks; nil defaults
	// to TokenBlocking.
	Blocking BlockingMethod
	// DisablePurging skips Block Purging (enabled by default, as in the
	// paper's setup §6.2).
	DisablePurging bool
	// FilterRatio enables Block Filtering with the given ratio r when in
	// (0, 1]; the paper's tuned pre-processing value is 0.8.
	FilterRatio float64
	// GraphFree skips the blocking graph entirely (Figure 7(b)): Block
	// Filtering (FilterRatio) followed by Comparison Propagation.
	GraphFree bool
	// Scheme is the edge-weighting scheme (zero value: ARCS).
	Scheme Scheme
	// Algorithm is the pruning algorithm (zero value: CEP).
	Algorithm Algorithm
	// OriginalWeighting switches to Algorithm 2 edge weighting.
	OriginalWeighting bool
	// CompressedIndex stores the blocking graph's Entity Index as
	// delta+varint posting lists (with a dense-bitmap fallback) instead of
	// flat int32 views, trading a decode per neighborhood scan for a
	// fraction of the memory. Retained pairs are bit-identical to the
	// flat index for every scheme and algorithm.
	CompressedIndex bool
	// Workers parallelizes every stage of the pipeline — blocking (for the
	// sharded methods: Token, Q-grams, Suffix Arrays, Extended Q-grams),
	// Block Filtering, graph construction and pruning: 0 = serial,
	// negative = one worker per CPU, positive = that many workers. Every
	// stage produces bit-identical output for any worker count. Parallel
	// pruning always uses Optimized Edge Weighting. A blocking method whose
	// own Workers field is already non-zero keeps it.
	Workers int
}

// Observability. A Metrics registry collects per-stage counters and worker
// gauges; pass one to RunContext via WithMetrics and read the snapshot from
// Result.Metrics (or the registry itself, which is safe to share across
// concurrent runs — counters accumulate).
type (
	// Metrics is a registry of named counters and gauges.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a registry's values.
	MetricsSnapshot = obs.Snapshot
	// ProgressFunc receives per-stage progress: done out of total units of
	// work (profiles for blocking, blocks for filtering, entities for
	// graph construction, traversal steps for pruning). It is called
	// concurrently from worker goroutines and must be safe and fast.
	ProgressFunc = obs.ProgressFunc
	// RunOption configures one RunContext call.
	RunOption = obs.Option
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// WithMetrics directs the run's counters and gauges into the registry and
// fills Result.Metrics with its snapshot.
func WithMetrics(m *Metrics) RunOption { return obs.WithMetrics(m) }

// WithProgress installs a progress callback, invoked about once per 1024
// units of work per worker.
func WithProgress(fn ProgressFunc) RunOption { return obs.WithProgress(fn) }

// WithSpanHooks installs stage-span hooks: start fires when a pipeline
// stage begins, end when it finishes with the elapsed wall-clock time.
// Stage names are "blocking", "purge", "filter", "graph" and "prune".
func WithSpanHooks(start func(stage string), end func(stage string, elapsed time.Duration)) RunOption {
	return obs.WithSpanHooks(start, end)
}

// Stages breaks a pipeline run's wall-clock time down by stage.
type Stages struct {
	// Blocking is the time spent building the input blocks.
	Blocking time.Duration
	// Filtering is the time spent cleaning them (Block Purging plus Block
	// Filtering).
	Filtering time.Duration
	// Graph is the time spent building the blocking graph (Entity Index
	// and, for EJS, the degree pass).
	Graph time.Duration
	// Prune is the time spent pruning the graph's edges.
	Prune time.Duration
}

// Result is a pipeline run's output.
type Result struct {
	// InputBlocks counts the blocks fed to meta-blocking after cleaning.
	InputBlocks int
	// InputComparisons is ‖B‖ of the cleaned input blocks.
	InputComparisons int64
	// Pairs holds the retained comparisons.
	Pairs []Pair
	// OTime is the total overhead time (blocking excluded, cleaning and
	// pruning included), mirroring the paper's OTime of restructuring.
	OTime time.Duration
	// Stages breaks the run down by stage; unlike OTime it includes the
	// blocking time.
	Stages Stages
	// Metrics is the run's counter/gauge snapshot, taken from the registry
	// passed via WithMetrics. Zero when the run had no registry.
	Metrics MetricsSnapshot
}

// Run executes the pipeline on a collection. It is RunContext with a
// background context and no options.
func (p Pipeline) Run(c *Collection) (*Result, error) {
	return p.RunContext(context.Background(), c)
}

// RunContext executes the pipeline on a collection under a context.
//
// When ctx is canceled the run aborts cooperatively — every stage polls
// the context at shard boundaries, all worker goroutines drain, partial
// output is discarded — and RunContext returns ctx.Err(). Options attach
// observability: WithMetrics collects per-stage counters and worker
// gauges (snapshotted into Result.Metrics), WithProgress streams per-stage
// progress, WithSpanHooks brackets each stage. All of it is optional and
// the retained pairs and counter values are identical whether or not any
// option is set, serial or parallel.
//
// A panic anywhere in the run — including inside parallel worker
// goroutines, which all drain first — is recovered and returned as a
// *PanicError instead of crashing the caller.
func (p Pipeline) RunContext(ctx context.Context, c *Collection, opts ...RunOption) (res *Result, err error) {
	defer func() {
		if pe := par.Recovered(recover()); pe != nil {
			res, err = nil, pe
		}
	}()
	if c == nil || c.Size() == 0 {
		return nil, ErrEmptyCollection
	}
	method := p.Blocking
	if method == nil {
		method = TokenBlocking{}
	}
	if p.FilterRatio < 0 || p.FilterRatio > 1 {
		return nil, ErrInvalidFilterRatio
	}
	if p.GraphFree && p.FilterRatio == 0 {
		return nil, ErrGraphFreeNeedsFilter
	}
	o := obs.New(ctx, opts...)

	blockStart := time.Now()
	endSpan := o.StartSpan(obs.StageBlocking)
	blocks := blocking.BuildObserved(withWorkers(method, p.Workers), c, o)
	endSpan()
	if err := o.Err(); err != nil {
		return nil, err
	}
	o.Counter(obs.CtrBlockingBlocks).Add(int64(blocks.Len()))
	o.Counter(obs.CtrBlockingComparisons).Add(blocks.Comparisons())

	start := time.Now()
	res = &Result{Stages: Stages{Blocking: start.Sub(blockStart)}}
	if !p.DisablePurging {
		endSpan = o.StartSpan(obs.StagePurge)
		blocks = blockproc.BlockPurging{}.Apply(blocks)
		endSpan()
	}
	o.Counter(obs.CtrPurgeBlocks).Add(int64(blocks.Len()))
	o.Counter(obs.CtrPurgeComparisons).Add(blocks.Comparisons())
	if p.GraphFree {
		res.InputBlocks = blocks.Len()
		res.InputComparisons = blocks.Comparisons()
		o.Counter(obs.CtrFilterBlocks).Add(int64(res.InputBlocks))
		o.Counter(obs.CtrFilterComparisons).Add(res.InputComparisons)
		endSpan = o.StartSpan(obs.StagePrune)
		res.Pairs = blockproc.GraphFreeMetaBlocking{Ratio: p.FilterRatio}.Apply(blocks)
		endSpan()
		o.Counter(obs.CtrPairsRetained).Add(int64(len(res.Pairs)))
		res.OTime = time.Since(start)
		res.Stages.Prune = res.OTime
		res.Metrics = o.Snapshot()
		return res, nil
	}
	if p.FilterRatio > 0 {
		endSpan = o.StartSpan(obs.StageFilter)
		blocks = blockproc.BlockFiltering{Ratio: p.FilterRatio, Workers: p.Workers, Obs: o}.Apply(blocks)
		endSpan()
		if err := o.Err(); err != nil {
			return nil, err
		}
	}
	filterDone := time.Now()
	res.Stages.Filtering = filterDone.Sub(start)
	res.InputBlocks = blocks.Len()
	res.InputComparisons = blocks.Comparisons()
	o.Counter(obs.CtrFilterBlocks).Add(int64(res.InputBlocks))
	o.Counter(obs.CtrFilterComparisons).Add(res.InputComparisons)
	run := core.Run(blocks, core.Config{
		Scheme:            p.Scheme,
		Algorithm:         p.Algorithm,
		OriginalWeighting: p.OriginalWeighting,
		Workers:           p.Workers,
		CompressedIndex:   p.CompressedIndex,
		Obs:               o,
	})
	if err := o.Err(); err != nil {
		return nil, err
	}
	res.Pairs = run.Pairs
	res.OTime = time.Since(start)
	res.Stages.Graph = run.GraphTime
	res.Stages.Prune = run.PruneTime
	res.Metrics = o.Snapshot()
	return res, nil
}

// withWorkers propagates the pipeline's worker count into the blocking
// methods with sharded builds (the blocking.WorkerSetter implementations);
// a method whose own Workers field is already non-zero keeps it.
func withWorkers(m BlockingMethod, workers int) BlockingMethod {
	if workers == 0 {
		return m
	}
	if ws, ok := m.(blocking.WorkerSetter); ok {
		return ws.WithWorkers(workers)
	}
	return m
}

// Evaluate measures retained comparisons against a ground truth; baseline
// is the comparison count RR is computed against (e.g. the input blocks'
// ‖B‖ or the brute-force ‖E‖).
func Evaluate(pairs []Pair, gt *GroundTruth, baseline int64) eval.Report {
	return eval.EvaluatePairs(pairs, gt, baseline)
}

// Report re-exports the evaluation report type.
type Report = eval.Report

// NewJaccardMatcher builds the paper's demonstration matcher.
func NewJaccardMatcher(c *Collection, threshold float64) *matching.JaccardMatcher {
	return matching.NewJaccardMatcher(c, threshold)
}

// Matches applies the matcher to the retained comparisons and returns the
// pairs at or above the matcher's threshold.
func Matches(m *matching.JaccardMatcher, pairs []Pair) []Pair {
	var out []Pair
	seen := make(map[Pair]struct{}, len(pairs))
	for _, p := range pairs {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if m.Match(p.A, p.B) {
			out = append(out, p)
		}
	}
	return out
}

// Cluster groups matched pairs into equivalence clusters (Dirty ER output).
func Cluster(c *Collection, matches []Pair) [][]ID {
	return matching.Cluster(c.Size(), matches)
}

// Incremental Entity Resolution (the paper's future-work direction, §7).
type (
	// IncrementalResolver blocks arriving profiles on the fly and emits
	// pruned candidate comparisons per arrival.
	IncrementalResolver = incremental.Resolver
	// IncrementalConfig tunes the incremental resolver.
	IncrementalConfig = incremental.Config
	// Candidate is a pruned comparison suggestion with its edge weight.
	Candidate = incremental.Candidate
)

// NewIncrementalResolver builds an empty incremental resolver.
func NewIncrementalResolver(cfg IncrementalConfig) (*IncrementalResolver, error) {
	return incremental.NewResolver(cfg)
}

// Progressive (pay-as-you-go) Entity Resolution (§3's efficiency-intensive
// application class).
type (
	// ProgressiveScheduler serves comparisons heaviest-first.
	ProgressiveScheduler = progressive.Scheduler
	// Comparison is one prioritized comparison with its edge weight.
	Comparison = progressive.Comparison
)

// NewProgressiveScheduler prioritizes a block collection's comparisons by
// edge weight. Build the blocks with a Pipeline's blocking stage or any
// BlockingMethod, clean them (purging/filtering), then schedule.
func NewProgressiveScheduler(blocks *Blocks, scheme Scheme) *ProgressiveScheduler {
	return progressive.NewScheduler(blocks, scheme)
}

// Supervised Meta-blocking (paper §2, ref [23]).
type (
	// SupervisedConfig tunes supervised meta-blocking.
	SupervisedConfig = supervised.Config
	// SupervisedResult carries the retained pairs and trained model.
	SupervisedResult = supervised.Result
)

// RunSupervised trains an edge classifier on a labelled sample drawn from
// the ground truth and retains the comparisons classified as matches.
func RunSupervised(blocks *Blocks, gt *GroundTruth, cfg SupervisedConfig) (*SupervisedResult, error) {
	return supervised.Run(blocks, gt, cfg)
}

// SaveBlocks persists a block collection to a file; LoadBlocks restores
// it. Blocking a large collection once and re-running meta-blocking
// configurations against the saved blocks is the intended workflow.
func SaveBlocks(path string, blocks *Blocks) error { return store.SaveBlocksFile(path, blocks) }

// LoadBlocks restores a block collection saved with SaveBlocks.
func LoadBlocks(path string) (*Blocks, error) { return store.LoadBlocksFile(path) }

// BuildBlocks runs a blocking method plus the paper's standard cleaning
// (Block Purging, then Block Filtering when ratio > 0) and returns the
// block collection — the input for schedulers and supervised runs. An
// optional workers argument parallelizes the sharded blocking methods and
// Block Filtering exactly as Pipeline.Workers does; the output is
// bit-identical for any worker count.
func BuildBlocks(c *Collection, method BlockingMethod, filterRatio float64, workers ...int) *Blocks {
	w := 0
	if len(workers) > 0 {
		w = workers[0]
	}
	if method == nil {
		method = TokenBlocking{}
	}
	blocks := withWorkers(method, w).Build(c)
	blocks = blockproc.BlockPurging{}.Apply(blocks)
	if filterRatio > 0 {
		blocks = blockproc.BlockFiltering{Ratio: filterRatio, Workers: w}.Apply(blocks)
	}
	return blocks
}
