package loadgen

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

func TestHTTPStreamerReassemblesStream(t *testing.T) {
	var lastQuery url.Values
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastQuery = r.URL.Query()
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"meta":{"id":9,"tier":"interactive","generation":0}}`)
		fmt.Fprintln(w, `{"batch":[{"id":1,"weight":2.5},{"id":4,"weight":1.5}]}`)
		fmt.Fprintln(w, `{"batch":[{"id":7,"weight":0.5}]}`)
		if r.URL.Query().Get("max_comparisons") != "" {
			fmt.Fprintln(w, `{"cursor":{"cursor":"tok.sig","reason":"max_comparisons","emitted":3,"total_emitted":3,"frontier":0.25}}`)
			return
		}
		fmt.Fprintln(w, `{"done":{"emitted":3,"total_emitted":3}}`)
	}))
	defer ts.Close()
	stream := HTTPStreamer(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	res, err := stream(p, url.Values{"tier": {"interactive"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 9 || len(res.Candidates) != 3 || res.Partial || res.Cursor != "" {
		t.Fatalf("completed stream = %+v", res)
	}
	if res.Candidates[0].Weight != 2.5 || res.Candidates[2].ID != 7 {
		t.Fatalf("candidates misassembled: %+v", res.Candidates)
	}
	if lastQuery.Get("tier") != "interactive" {
		t.Fatalf("query not forwarded: %v", lastQuery)
	}

	res, err = stream(p, url.Values{"max_comparisons": {"3"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Cursor != "tok.sig" || res.Reason != "max_comparisons" {
		t.Fatalf("exhausted stream = %+v", res)
	}
}

// TestFollowStreamRestartsOnInvalidCursor pins the restart-from-scratch
// recovery: a server that exhausts the first stream, was then restarted
// (so the resume attempt gets 410 cursor_invalid), and completes the
// re-sent fresh stream. The client must discard the dead generation's
// prefix, count exactly one restart, and reassemble only the post-restart
// answer — and a cursor that never becomes valid must exhaust the
// restart budget into a hard error, not loop forever.
func TestFollowStreamRestartsOnInvalidCursor(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.URL.Query().Get("cursor") != "" {
			// The restart invalidated every outstanding cursor.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGone)
			fmt.Fprint(w, `{"error":{"code":"cursor_invalid","message":"generation advanced"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"meta":{"id":9}}`)
		// "flap" mode: every fresh stream exhausts into a cursor the next
		// resume won't honor — a server restarting faster than any stream
		// completes. Otherwise only the first stream exhausts.
		if calls == 1 || r.URL.Query().Get("tier") == "flap" {
			fmt.Fprintln(w, `{"batch":[{"id":1,"weight":9.9}]}`)
			fmt.Fprintln(w, `{"cursor":{"cursor":"stale.sig","reason":"deadline"}}`)
			return
		}
		fmt.Fprintln(w, `{"batch":[{"id":2,"weight":2.5},{"id":5,"weight":1.5}]}`)
		fmt.Fprintln(w, `{"done":{"reason":""}}`)
	}))
	defer ts.Close()
	stream := HTTPStreamer(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	res, restarts, err := FollowStream(stream, p, url.Values{"tier": {"batch"}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	if calls != 3 {
		t.Fatalf("server saw %d requests, want 3 (stream, dead resume, fresh stream)", calls)
	}
	if res.Partial || res.Cursor != "" {
		t.Fatalf("followed stream did not complete: %+v", res)
	}
	// Only the post-restart generation's candidates survive.
	if len(res.Candidates) != 2 || res.Candidates[0].ID != 2 || res.Candidates[1].ID != 5 {
		t.Fatalf("stale prefix leaked into the reassembled answer: %+v", res.Candidates)
	}

	// A target that restarts faster than any stream completes burns the
	// restart budget into a hard error instead of looping forever.
	_, restarts, err = FollowStream(stream, p, url.Values{"tier": {"flap"}}, 2)
	if err == nil || !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("exhausted restarts should surface ErrCursorInvalid, got %v", err)
	}
	if restarts != 2 {
		t.Fatalf("restarts = %d, want the full budget of 2", restarts)
	}
}

// TestRunMixedCountsRestarts pins the report wiring: in FollowCursors
// mode a stream that loses its cursor to a server restart is restarted,
// completes, and shows up in its tier's Restarts tally — not as a
// partial, an error, or a shed.
func TestRunMixedCountsRestarts(t *testing.T) {
	var mu sync.Mutex
	exhausted := map[string]bool{}
	stream := func(p entity.Profile, q url.Values) (StreamResult, error) {
		mu.Lock()
		defer mu.Unlock()
		key := q.Get("tier") + "/" + p.Attributes[0].Value
		switch {
		case q.Get("cursor") != "":
			return StreamResult{}, &CursorInvalidError{Message: "generation advanced"}
		case !exhausted[key]:
			exhausted[key] = true
			return StreamResult{Partial: true, Cursor: "tok"}, nil
		default:
			return StreamResult{Candidates: []incremental.Candidate{{ID: 1, Weight: 1}}}, nil
		}
	}
	rep := RunMixed(stream, someProfiles(8), MixedOptions{
		Options:       Options{Clients: 4, Requests: 8},
		BatchRatio:    0.5,
		FollowCursors: true,
	})
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors)
	}
	total := rep.Interactive.Restarts + rep.Batch.Restarts
	if total != 8 {
		t.Fatalf("restarts = %d (interactive %d, batch %d), want 8",
			total, rep.Interactive.Restarts, rep.Batch.Restarts)
	}
	if rep.Interactive.Partials != 0 || rep.Batch.Partials != 0 {
		t.Fatalf("restarted-and-completed streams counted as partials: %+v", rep)
	}
}

// TestStreamerClassifiesRetryableCodes pins the uniform-backoff fix:
// timeout (408) and tier_busy (429) envelopes are shed, not hard errors,
// with the envelope's advisory attached — for both client shapes.
func TestStreamerClassifiesRetryableCodes(t *testing.T) {
	var status int
	var code string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"m","retry_after_ms":1500}}`, code)
	}))
	defer ts.Close()
	stream := HTTPStreamer(ts.URL, ts.Client())
	resolve := HTTPResolver(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	for _, tc := range []struct {
		status int
		code   string
		shed   bool
	}{
		{http.StatusRequestTimeout, "timeout", true},
		{http.StatusTooManyRequests, "tier_busy", true},
		{http.StatusTooManyRequests, "queue_full", true},
		{http.StatusGone, "cursor_invalid", false},
		{http.StatusInternalServerError, "internal", false},
	} {
		status, code = tc.status, tc.code
		_, serr := stream(p, nil)
		_, rerr := resolve(p)
		for _, err := range []error{serr, rerr} {
			if errors.Is(err, ErrRejected) != tc.shed {
				t.Fatalf("code %s: shed=%v, want %v (err %v)", tc.code, !tc.shed, tc.shed, err)
			}
			if tc.shed {
				var rej *RejectedError
				if !errors.As(err, &rej) || rej.RetryAfter != 1500*time.Millisecond || rej.Code != tc.code {
					t.Fatalf("code %s: rejected error %+v", tc.code, err)
				}
			}
		}
	}
}

func TestRunMixedSplitsTiersDeterministically(t *testing.T) {
	var interactive, batch int
	stream := func(_ entity.Profile, q url.Values) (StreamResult, error) {
		switch q.Get("tier") {
		case "batch":
			batch++
			// Batch streams exhaust half the time (by budget_ms carried in
			// the query) and shed every 10th request.
			if batch%10 == 0 {
				return StreamResult{}, &RejectedError{Code: "tier_busy"}
			}
			if q.Get("budget_ms") != "5" {
				return StreamResult{}, fmt.Errorf("batch query lost: %v", q)
			}
			if batch%2 == 0 {
				return StreamResult{Partial: true, Cursor: "tok"}, nil
			}
			return StreamResult{}, nil
		case "interactive":
			interactive++
			return StreamResult{}, nil
		default:
			return StreamResult{}, fmt.Errorf("no tier in query: %v", q)
		}
	}
	rep := RunMixed(stream, someProfiles(10), MixedOptions{
		Options:    Options{Clients: 1, Requests: 200},
		BatchRatio: 0.3,
		BatchQuery: url.Values{"budget_ms": {"5"}},
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
	if rep.Interactive.Requests != 140 || rep.Batch.Requests != 60 {
		t.Fatalf("tier split %d/%d, want 140/60", rep.Interactive.Requests, rep.Batch.Requests)
	}
	if interactive != 140 || batch != 60 {
		t.Fatalf("streamer saw %d/%d", interactive, batch)
	}
	if rep.Batch.Rejected != 6 {
		t.Fatalf("batch rejected = %d, want 6", rep.Batch.Rejected)
	}
	if rep.Batch.Partials != 24 {
		// 60 requests, 6 shed (all on even counts); of the 54 answered,
		// partial on the remaining even counts: 30 − 6 = 24.
		t.Fatalf("batch partials = %d, want 24", rep.Batch.Partials)
	}
	wantRate := float64(24) / float64(54)
	if rep.Batch.PartialRate != wantRate {
		t.Fatalf("batch partial rate = %v, want %v", rep.Batch.PartialRate, wantRate)
	}
	if rep.Interactive.Partials != 0 || rep.Interactive.PartialRate != 0 {
		t.Fatalf("interactive partials = %+v", rep.Interactive)
	}
	if rep.Interactive.P50 < 0 || rep.Interactive.P99 < rep.Interactive.P50 {
		t.Fatalf("percentiles inconsistent: %+v", rep.Interactive)
	}
}

// TestRunMixedAgainstServer drives the real streaming endpoint end to
// end through the mixed profile (exercised fully in the server package's
// suite; here we pin the wiring of partial detection against a live
// NDJSON emitter that exhausts batch-tier requests).
func TestRunMixedAgainstServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"meta":{"id":1}}`)
		fmt.Fprintln(w, `{"batch":[{"id":0,"weight":1}]}`)
		if r.URL.Query().Get("tier") == "batch" {
			fmt.Fprintln(w, `{"cursor":{"cursor":"tok","reason":"deadline"}}`)
			return
		}
		fmt.Fprintln(w, `{"done":{"emitted":1,"total_emitted":1}}`)
	}))
	defer ts.Close()
	rep := RunMixed(HTTPStreamer(ts.URL, ts.Client()), someProfiles(5), MixedOptions{
		Options:    Options{Clients: 4, Requests: 100},
		BatchRatio: 0.5,
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("errors: %v", rep.Errors)
	}
	if rep.Batch.PartialRate != 1 || rep.Interactive.PartialRate != 0 {
		t.Fatalf("partial rates %v/%v, want 1/0", rep.Batch.PartialRate, rep.Interactive.PartialRate)
	}
}
