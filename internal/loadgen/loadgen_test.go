package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metablocking/internal/entity"
	"metablocking/internal/incremental"
)

func someProfiles(n int) []entity.Profile {
	out := make([]entity.Profile, n)
	for i := range out {
		out[i].Add("name", fmt.Sprintf("profile %d", i))
	}
	return out
}

func TestRunClassifiesOutcomes(t *testing.T) {
	var calls atomic.Int64
	resolve := func(p entity.Profile) (incremental.BatchResult, error) {
		n := calls.Add(1)
		switch {
		case n%5 == 0:
			return incremental.BatchResult{}, ErrRejected
		case n%7 == 0:
			return incremental.BatchResult{}, errors.New("boom")
		default:
			return incremental.BatchResult{ID: entity.ID(n)}, nil
		}
	}
	rep := Run(resolve, someProfiles(10), Options{Clients: 4, Requests: 100})
	if got := len(rep.Responses) + rep.Rejected + len(rep.Errors); got != 100 {
		t.Fatalf("outcomes = %d, want 100", got)
	}
	if rep.Rejected == 0 || len(rep.Errors) == 0 || len(rep.Responses) == 0 {
		t.Fatalf("classification degenerate: %d ok, %d shed, %d errors",
			len(rep.Responses), rep.Rejected, len(rep.Errors))
	}
}

func TestHTTPResolverMapsStatuses(t *testing.T) {
	var mode atomic.Int32 // 0 = ok, 1 = shed, 2 = fail
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		switch mode.Load() {
		case 0:
			fmt.Fprint(w, `{"id": 3, "candidates": [{"id": 1, "weight": 0.5}]}`)
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			http.Error(w, "kaput", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	resolve := HTTPResolver(ts.URL, ts.Client())
	p := someProfiles(1)[0]

	res, err := resolve(p)
	if err != nil || res.ID != 3 || len(res.Candidates) != 1 || res.Candidates[0].Weight != 0.5 {
		t.Fatalf("ok mapping = %+v, %v", res, err)
	}
	mode.Store(1)
	if _, err := resolve(p); !errors.Is(err, ErrRejected) {
		t.Fatalf("429 mapped to %v, want ErrRejected", err)
	}
	mode.Store(2)
	if _, err := resolve(p); err == nil || errors.Is(err, ErrRejected) {
		t.Fatalf("500 mapped to %v, want a hard error", err)
	}
}

func TestRetriesRecoverFromShedding(t *testing.T) {
	// The target sheds two attempts out of every three: with a 3-attempt
	// budget and a single worker, every request recovers on its third try.
	var attempts int
	var mu sync.Mutex
	var id atomic.Int64
	resolve := func(entity.Profile) (incremental.BatchResult, error) {
		mu.Lock()
		defer mu.Unlock()
		attempts++
		if attempts%3 != 0 {
			return incremental.BatchResult{}, &RejectedError{RetryAfter: time.Millisecond}
		}
		return incremental.BatchResult{ID: entity.ID(id.Add(1))}, nil
	}

	var slept []time.Duration
	rep := Run(resolve, someProfiles(4), Options{
		Clients:     1, // single worker: the shed/accept cycle is deterministic
		Requests:    10,
		MaxAttempts: 3,
		Backoff:     8 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Seed:        42,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if len(rep.Errors) > 0 {
		t.Fatalf("hard errors: %v", rep.Errors)
	}
	if len(rep.Responses) != 10 || rep.Rejected != 0 {
		t.Fatalf("got %d responses, %d rejected; want all 10 recovered by retries", len(rep.Responses), rep.Rejected)
	}
	if rep.Retries != 20 {
		t.Fatalf("retries = %d, want 20 (2 per request)", rep.Retries)
	}
	if len(slept) != rep.Retries {
		t.Fatalf("slept %d times for %d retries", len(slept), rep.Retries)
	}
	for i, d := range slept {
		if d <= 0 || d > 50*time.Millisecond {
			t.Fatalf("sleep %d = %v outside (0, MaxBackoff]", i, d)
		}
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	calls := 0
	resolve := func(entity.Profile) (incremental.BatchResult, error) {
		calls++
		return incremental.BatchResult{}, ErrRejected // sheds forever
	}
	rep := Run(resolve, someProfiles(1), Options{
		Clients:     1,
		Requests:    2,
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
	})
	if rep.Rejected != 2 || len(rep.Responses) != 0 {
		t.Fatalf("rejected = %d, responses = %d; want 2 exhausted rejections", rep.Rejected, len(rep.Responses))
	}
	if calls != 8 {
		t.Fatalf("target saw %d attempts, want 8 (4 per request)", calls)
	}
	if rep.Retries != 6 {
		t.Fatalf("retries = %d, want 6", rep.Retries)
	}
}

func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opts := Options{Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}.withDefaults()
	// Server advisory dominates the small exponential backoff.
	if d := backoffFor(opts, rng, 1, time.Second); d != time.Second {
		t.Fatalf("backoff = %v, want the 1s Retry-After floor", d)
	}
	// Without an advisory the jittered exponential stays within bounds and
	// caps at MaxBackoff for large attempt numbers (incl. shift overflow).
	for attempt := 1; attempt <= 70; attempt++ {
		d := backoffFor(opts, rng, attempt, 0)
		if d <= 0 || d > opts.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, opts.MaxBackoff)
		}
	}
}
