// Package store persists the pipeline's intermediate artifacts — entity
// collections, block collections and retained-comparison lists — in a
// compact self-describing binary format (encoding/gob with a versioned
// envelope). Blocking a large collection once and re-running meta-blocking
// configurations against the saved blocks is the intended workflow.
package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// format versions, one per artifact kind. Bump on incompatible changes.
const (
	collectionVersion = 1
	blocksVersion     = 1
	pairsVersion      = 1
)

// envelope is the self-describing header of every stored artifact.
type envelope struct {
	Kind    string
	Version int
}

func writeArtifact(w io.Writer, kind string, version int, payload any) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(envelope{Kind: kind, Version: version}); err != nil {
		return fmt.Errorf("store: encoding %s header: %w", kind, err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("store: encoding %s: %w", kind, err)
	}
	return bw.Flush()
}

func readArtifact(r io.Reader, kind string, version int, payload any) error {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("store: reading header: %w", err)
	}
	if env.Kind != kind {
		return fmt.Errorf("store: artifact is a %q, expected %q", env.Kind, kind)
	}
	if env.Version != version {
		return fmt.Errorf("store: %s version %d unsupported (want %d)", kind, env.Version, version)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("store: decoding %s: %w", kind, err)
	}
	return nil
}

// storedCollection mirrors entity.Collection for gob.
type storedCollection struct {
	Task     int
	Split    int
	Profiles []entity.Profile
}

// WriteCollection persists an entity collection.
func WriteCollection(w io.Writer, c *entity.Collection) error {
	return writeArtifact(w, "collection", collectionVersion, storedCollection{
		Task:     int(c.Task),
		Split:    c.Split,
		Profiles: c.Profiles,
	})
}

// ReadCollection loads an entity collection.
func ReadCollection(r io.Reader) (*entity.Collection, error) {
	var s storedCollection
	if err := readArtifact(r, "collection", collectionVersion, &s); err != nil {
		return nil, err
	}
	c := &entity.Collection{
		Task:     entity.Task(s.Task),
		Split:    s.Split,
		Profiles: s.Profiles,
	}
	return c, nil
}

// storedBlocks mirrors block.Collection for gob.
type storedBlocks struct {
	Task        int
	NumEntities int
	Split       int
	Blocks      []block.Block
}

// WriteBlocks persists a block collection.
func WriteBlocks(w io.Writer, c *block.Collection) error {
	return writeArtifact(w, "blocks", blocksVersion, storedBlocks{
		Task:        int(c.Task),
		NumEntities: c.NumEntities,
		Split:       c.Split,
		Blocks:      c.Blocks,
	})
}

// ReadBlocks loads a block collection.
func ReadBlocks(r io.Reader) (*block.Collection, error) {
	var s storedBlocks
	if err := readArtifact(r, "blocks", blocksVersion, &s); err != nil {
		return nil, err
	}
	return &block.Collection{
		Task:        entity.Task(s.Task),
		NumEntities: s.NumEntities,
		Split:       s.Split,
		Blocks:      s.Blocks,
	}, nil
}

// WritePairs persists a retained-comparison list.
func WritePairs(w io.Writer, pairs []entity.Pair) error {
	return writeArtifact(w, "pairs", pairsVersion, pairs)
}

// ReadPairs loads a retained-comparison list.
func ReadPairs(r io.Reader) ([]entity.Pair, error) {
	var pairs []entity.Pair
	if err := readArtifact(r, "pairs", pairsVersion, &pairs); err != nil {
		return nil, err
	}
	return pairs, nil
}

// SaveBlocksFile and LoadBlocksFile are path-based conveniences.
func SaveBlocksFile(path string, c *block.Collection) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteBlocks(f, c); err != nil {
		return err
	}
	return f.Close()
}

// LoadBlocksFile loads a block collection from a file.
func LoadBlocksFile(path string) (*block.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBlocks(f)
}
