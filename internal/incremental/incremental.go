// Package incremental adapts Enhanced Meta-blocking to Incremental Entity
// Resolution — the future-work direction the paper closes with (§7).
//
// A Resolver maintains a growing, schema-agnostic Token Blocking index.
// Every arriving profile is blocked immediately and compared only against
// a pruned set of candidate neighbors, derived from the same weighted
// co-occurrence signal meta-blocking uses: the resolver scans the new
// profile's blocks with the ScanCount technique of Algorithm 3, weights
// each co-occurring profile, and keeps either the top-K candidates
// (cardinality pruning, CNP-style) or the ones at or above the mean weight
// (weight pruning, WNP-style). Oversized blocks are ignored while
// gathering candidates, mirroring Block Purging.
package incremental

import (
	"fmt"
	"math"
	"sort"

	"metablocking/internal/core"
	"metablocking/internal/entity"
)

// ErrUnsupportedScheme is returned by NewResolver for weighting schemes the
// incremental setting cannot maintain (currently EJS, whose global node
// degrees change with every arriving profile). It wraps the shared
// core.ErrUnsupportedScheme sentinel — the one the public metablocking
// package aliases — so errors.Is matches across layers.
var ErrUnsupportedScheme = fmt.Errorf("incremental: EJS needs global node degrees; use ARCS, CBS, ECBS or JS: %w", core.ErrUnsupportedScheme)

// Config tunes the incremental resolver.
type Config struct {
	// Scheme weights candidate edges. ARCS, CBS, ECBS and JS are
	// supported; EJS requires global node degrees, which an incremental
	// setting cannot maintain cheaply.
	Scheme core.Scheme
	// K, when positive, keeps the top-K weighted candidates per arriving
	// profile (cardinality pruning). When zero, candidates at or above
	// the mean weight of the neighborhood are kept (weight pruning).
	K int
	// MaxBlockSize ignores blocks with more members when collecting
	// candidates — the incremental analogue of Block Purging. Zero
	// defaults to 1000.
	MaxBlockSize int
	// MinTokenLength drops shorter tokens at blocking time.
	MinTokenLength int
}

// Candidate is a pruned comparison suggestion for a newly added profile.
type Candidate struct {
	ID     entity.ID
	Weight float64
}

// Resolver incrementally blocks profiles and emits pruned candidate
// comparisons. It is not safe for concurrent use: callers that serve
// concurrent traffic must serialize Add/AddBatch behind a single writer
// and fence reads (Size, Profile, Snapshot) from mutations, as
// internal/server's single-writer/multi-reader façade does.
type Resolver struct {
	cfg Config

	profiles []entity.Profile
	// blocks maps token → member profile IDs, in arrival order.
	blocks map[string][]entity.ID
	// blocksOf[i] lists the tokens (block keys) of profile i.
	blocksOf [][]string

	// ScanCount scratch, grown on demand.
	flags  []int64
	epoch  int64
	common []float64
}

// NewResolver validates the configuration and returns an empty resolver.
func NewResolver(cfg Config) (*Resolver, error) {
	if cfg.Scheme == core.EJS {
		return nil, ErrUnsupportedScheme
	}
	if cfg.MaxBlockSize == 0 {
		cfg.MaxBlockSize = 1000
	}
	return &Resolver{cfg: cfg, blocks: make(map[string][]entity.ID)}, nil
}

// Size returns the number of profiles resolved so far.
func (r *Resolver) Size() int { return len(r.profiles) }

// Profile returns a previously added profile.
func (r *Resolver) Profile(id entity.ID) *entity.Profile { return &r.profiles[id] }

// Add blocks the profile, assigns it the next ID, and returns the pruned
// candidate comparisons against the profiles added before it, heaviest
// first. A profile with no co-occurring predecessors yields no candidates.
func (r *Resolver) Add(p entity.Profile) (entity.ID, []Candidate) {
	id := entity.ID(len(r.profiles))
	p.ID = id
	r.profiles = append(r.profiles, p)
	r.flags = append(r.flags, 0)
	r.common = append(r.common, 0)

	keys := r.tokenKeys(p)
	r.blocksOf = append(r.blocksOf, keys)

	// Gather weighted candidates from the profile's blocks BEFORE adding
	// it to them (candidates are strictly older profiles).
	candidates := r.collect(keys)

	for _, k := range keys {
		r.blocks[k] = append(r.blocks[k], id)
	}
	return id, candidates
}

// Peek computes the pruned candidates the profile would receive from Add,
// without mutating the index: no ID is assigned, no block gains a member.
// It is the read-only resolve behind the serving layer's degraded mode,
// which keeps answering from the last good index while the write path is
// failing. Like Add it is not safe for concurrent use (it shares the
// ScanCount scratch).
func (r *Resolver) Peek(p entity.Profile) []Candidate {
	return r.collect(r.tokenKeys(p))
}

// tokenKeys returns the distinct tokens of the profile, in
// first-appearance order — its prospective block keys.
func (r *Resolver) tokenKeys(p entity.Profile) []string {
	seen := make(map[string]struct{})
	var keys []string
	for _, a := range p.Attributes {
		for _, tok := range entity.Tokenize(a.Value) {
			if len(tok) < r.cfg.MinTokenLength {
				continue
			}
			if _, ok := seen[tok]; ok {
				continue
			}
			seen[tok] = struct{}{}
			keys = append(keys, tok)
		}
	}
	return keys
}

// collect runs the ScanCount accumulation over the blocks named by keys
// and applies the local pruning criterion.
func (r *Resolver) collect(keys []string) []Candidate {
	r.epoch++
	var neighbors []entity.ID
	for _, k := range keys {
		members := r.blocks[k]
		if len(members) == 0 || len(members) > r.cfg.MaxBlockSize {
			continue
		}
		inc := 1.0
		if r.cfg.Scheme == core.ARCS {
			// The block is about to gain the new profile; its
			// cardinality for this comparison counts the new member.
			n := int64(len(members)+1) * int64(len(members)) / 2
			inc = 1 / float64(n)
		}
		for _, j := range members {
			if r.flags[j] != r.epoch {
				r.flags[j] = r.epoch
				r.common[j] = 0
				neighbors = append(neighbors, j)
			}
			r.common[j] += inc
		}
	}
	if len(neighbors) == 0 {
		return nil
	}

	out := make([]Candidate, 0, len(neighbors))
	for _, j := range neighbors {
		out = append(out, Candidate{ID: j, Weight: r.weight(len(keys), j)})
	}
	if r.cfg.K > 0 {
		sortCandidates(out)
		if len(out) > r.cfg.K {
			out = out[:r.cfg.K]
		}
		return out
	}
	var sum float64
	for _, c := range out {
		sum += c.Weight
	}
	mean := sum / float64(len(out))
	kept := out[:0]
	for _, c := range out {
		if c.Weight >= mean {
			kept = append(kept, c)
		}
	}
	sortCandidates(kept)
	return kept
}

// weight evaluates the configured scheme for a new profile with bi block
// keys and an older profile j, using the current (growing) block
// statistics.
func (r *Resolver) weight(bi int, j entity.ID) float64 {
	common := r.common[j]
	bj := len(r.blocksOf[j])
	switch r.cfg.Scheme {
	case core.ARCS, core.CBS:
		return common
	case core.ECBS:
		nb := float64(len(r.blocks)) + 1
		return common * math.Log(nb/float64(bi)) * math.Log(nb/float64(bj))
	case core.JS:
		return common / (float64(bi) + float64(bj) - common)
	default:
		return common
	}
}

// BatchResult pairs one arrival of an AddBatch call with its assigned ID
// and pruned candidates.
type BatchResult struct {
	ID         entity.ID
	Candidates []Candidate
}

// AddBatch adds the profiles in order under one index pass and returns one
// result per profile. It is semantically identical to calling Add for each
// profile in sequence — earlier batch members become candidates of later
// ones — but amortizes the per-arrival overhead, which is what lets a
// serving layer coalesce many concurrent requests into a single writer
// turn. An empty batch returns nil.
func (r *Resolver) AddBatch(ps []entity.Profile) []BatchResult {
	if len(ps) == 0 {
		return nil
	}
	out := make([]BatchResult, len(ps))
	for i, p := range ps {
		id, cands := r.Add(p)
		out[i] = BatchResult{ID: id, Candidates: cands}
	}
	return out
}

// Snapshot is a self-contained, restorable copy of a resolver's state: the
// configuration, the profiles in arrival order, and the token index so a
// restore does not re-tokenize. internal/store persists it as the
// "resolver" artifact; the serving layer hot-swaps resolvers built from
// one.
type Snapshot struct {
	Config   Config
	Profiles []entity.Profile
	// Blocks maps token → member profile IDs in arrival order.
	Blocks map[string][]entity.ID
	// BlocksOf lists the tokens (block keys) of each profile.
	BlocksOf [][]string
}

// Snapshot deep-copies the resolver's state. The caller may persist or
// mutate the copy while the resolver keeps resolving.
func (r *Resolver) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:   r.cfg,
		Profiles: append([]entity.Profile(nil), r.profiles...),
		Blocks:   make(map[string][]entity.ID, len(r.blocks)),
		BlocksOf: make([][]string, len(r.blocksOf)),
	}
	for k, members := range r.blocks {
		s.Blocks[k] = append([]entity.ID(nil), members...)
	}
	for i, keys := range r.blocksOf {
		s.BlocksOf[i] = append([]string(nil), keys...)
	}
	return s
}

// FromSnapshot rebuilds a resolver from a snapshot, validating the
// configuration and the index shape. The snapshot's slices are deep-copied,
// so the caller may reuse it. Restoring n profiles costs O(index size)
// copying but no re-tokenization.
func FromSnapshot(s *Snapshot) (*Resolver, error) {
	if s == nil {
		return nil, fmt.Errorf("incremental: nil snapshot")
	}
	if len(s.BlocksOf) != len(s.Profiles) {
		return nil, fmt.Errorf("incremental: snapshot has %d profiles but %d block-key lists",
			len(s.Profiles), len(s.BlocksOf))
	}
	r, err := NewResolver(s.Config)
	if err != nil {
		return nil, err
	}
	n := len(s.Profiles)
	r.profiles = append([]entity.Profile(nil), s.Profiles...)
	r.blocksOf = make([][]string, n)
	for i, keys := range s.BlocksOf {
		r.blocksOf[i] = append([]string(nil), keys...)
	}
	for k, members := range s.Blocks {
		for _, id := range members {
			if int(id) < 0 || int(id) >= n {
				return nil, fmt.Errorf("incremental: snapshot block %q references profile %d of %d", k, id, n)
			}
		}
		r.blocks[k] = append([]entity.ID(nil), members...)
	}
	r.flags = make([]int64, n)
	r.common = make([]float64, n)
	return r, nil
}

func sortCandidates(cs []Candidate) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].Weight != cs[b].Weight {
			return cs[a].Weight > cs[b].Weight
		}
		return cs[a].ID < cs[b].ID
	})
}
