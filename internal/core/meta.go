package core

import (
	"time"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// Config selects a full meta-blocking configuration: one weighting scheme
// combined with one pruning algorithm (Fig. 3 — every combination of the
// two parameters is valid), plus the edge-weighting implementation.
type Config struct {
	Scheme    Scheme
	Algorithm Algorithm
	// OriginalWeighting uses Algorithm 2 instead of the Optimized Edge
	// Weighting of Algorithm 3.
	OriginalWeighting bool
	// Workers enables parallel pruning: 0 keeps the serial implementation,
	// negative uses GOMAXPROCS, positive that many workers. Parallel
	// pruning always uses Optimized Edge Weighting and returns pairs in
	// canonical order; OriginalWeighting takes precedence when both are
	// set.
	Workers int
}

// Result is the output of one meta-blocking run.
type Result struct {
	// Pairs holds the retained comparisons; the original node-centric
	// algorithms (CNP, WNP) may retain a pair twice.
	Pairs []entity.Pair
	// OTime is the overhead: graph construction plus pruning.
	OTime time.Duration
}

// Run restructures the block collection with the given configuration and
// returns the retained comparisons along with the measured overhead time.
func Run(c *block.Collection, cfg Config) Result {
	start := time.Now()
	g := NewGraph(c, cfg.Scheme)
	g.OriginalWeighting = cfg.OriginalWeighting
	var pairs []entity.Pair
	if cfg.Workers != 0 && !cfg.OriginalWeighting {
		workers := cfg.Workers
		if workers < 0 {
			workers = 0 // PruneParallel resolves 0 to GOMAXPROCS
		}
		pairs = g.PruneParallel(cfg.Algorithm, workers)
	} else {
		pairs = g.Prune(cfg.Algorithm)
	}
	return Result{Pairs: pairs, OTime: time.Since(start)}
}
