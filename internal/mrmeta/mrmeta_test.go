package mrmeta

import (
	"math"
	"reflect"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/blocking"
	"metablocking/internal/core"
	"metablocking/internal/datagen"
	"metablocking/internal/entity"
	"metablocking/internal/mapreduce"
	"metablocking/internal/paperexample"
)

// TestWeightedEdgesMatchCore: the MapReduce edge-weighting job must derive
// the same graph as the sequential traversals, for every scheme and both
// ER tasks.
func TestWeightedEdgesMatchCore(t *testing.T) {
	inputs := map[string]func() *block.Collection{
		"example": func() *block.Collection {
			return blocking.TokenBlocking{}.Build(paperexample.Collection())
		},
		"cleanclean": func() *block.Collection {
			ds := datagen.D1C(0.02)
			return blocking.TokenBlocking{}.Build(ds.Collection)
		},
	}
	for name, mk := range inputs {
		for _, scheme := range core.AllSchemes {
			blocks := mk()
			want := make(map[entity.Pair]float64)
			core.NewGraph(blocks, scheme).ForEachEdge(func(i, j entity.ID, w float64) {
				want[entity.MakePair(i, j)] = w
			})

			job := NewJob(blocks, scheme, mapreduce.Config{Mappers: 4, Partitions: 3})
			edges := job.WeightedEdges()
			if len(edges) != len(want) {
				t.Fatalf("%s/%v: %d edges, want %d", name, scheme, len(edges), len(want))
			}
			for _, e := range edges {
				w, ok := want[e.Pair]
				if !ok {
					t.Fatalf("%s/%v: unexpected edge %v", name, scheme, e.Pair)
				}
				if math.Abs(w-e.Weight) > 1e-9 {
					t.Fatalf("%s/%v: edge %v weight %v, want %v", name, scheme, e.Pair, e.Weight, w)
				}
			}
		}
	}
}

// assertSetsMatch compares retained-pair sets. For ARCS the per-edge
// aggregates (Σ 1/‖b‖) are summed in different orders by the sequential
// and the MapReduce implementations, so weights — and hence threshold
// decisions on boundary edges — may differ in the last ulp; a tiny
// symmetric difference is tolerated there. All other schemes have
// bit-identical weights and must match exactly.
func assertSetsMatch(t *testing.T, label string, scheme core.Scheme, got, want []entity.Pair) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	if scheme != core.ARCS {
		t.Fatalf("%s: MapReduce (%d pairs) ≠ core (%d pairs)", label, len(got), len(want))
	}
	gotSet := make(map[entity.Pair]struct{}, len(got))
	for _, p := range got {
		gotSet[p] = struct{}{}
	}
	wantSet := make(map[entity.Pair]struct{}, len(want))
	for _, p := range want {
		wantSet[p] = struct{}{}
	}
	diff := 0
	for p := range gotSet {
		if _, ok := wantSet[p]; !ok {
			diff++
		}
	}
	for p := range wantSet {
		if _, ok := gotSet[p]; !ok {
			diff++
		}
	}
	limit := 2 + len(want)/200 // ≤ 0.5% boundary flips
	if diff > limit {
		t.Fatalf("%s: ARCS symmetric difference %d exceeds %d (%d vs %d pairs)",
			label, diff, limit, len(got), len(want))
	}
}

// TestWEPMatchesCore validates the distributed WEP against the sequential
// one.
func TestWEPMatchesCore(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	for _, scheme := range core.AllSchemes {
		want := core.NewGraph(blocks, scheme).Prune(core.WEP)
		sortPairs(want)
		got := NewJob(blocks, scheme, mapreduce.Config{}).WEP()
		assertSetsMatch(t, "WEP/"+scheme.String(), scheme, got, want)
	}
}

// TestCEPMatchesCore validates the distributed CEP.
func TestCEPMatchesCore(t *testing.T) {
	ds := datagen.D1D(0.02)
	blocks := blocking.TokenBlocking{}.Build(ds.Collection)
	for _, scheme := range []core.Scheme{core.JS, core.ARCS} {
		want := core.NewGraph(blocks, scheme).Prune(core.CEP)
		sortPairs(want)
		got := NewJob(blocks, scheme, mapreduce.Config{Mappers: 3, Partitions: 4}).CEP()
		assertSetsMatch(t, "CEP/"+scheme.String(), scheme, got, want)
	}
}

// TestJobDeterministicAcrossConfigs: results do not depend on mapper or
// partition counts.
func TestJobDeterministicAcrossConfigs(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	ref := NewJob(blocks, core.JS, mapreduce.Config{Mappers: 1, Partitions: 1}).WEP()
	for _, cfg := range []mapreduce.Config{
		{Mappers: 2, Partitions: 2},
		{Mappers: 8, Partitions: 5},
	} {
		got := NewJob(blocks, core.JS, cfg).WEP()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("cfg %+v changed the result", cfg)
		}
	}
}

// TestIndexJobCounts: job 1 reproduces |Bi| for every entity.
func TestIndexJobCounts(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	job := NewJob(blocks, core.CBS, mapreduce.Config{})
	// Paper example: |B1|=3, |B2|=3, |B3|=5, |B4|=4, |B5|=2, |B6|=1.
	want := []int32{3, 3, 5, 4, 2, 1}
	for id, w := range want {
		if got := job.blocksPerEntity[id]; got != w {
			t.Errorf("|B%d| = %d, want %d", id+1, got, w)
		}
	}
}

// TestNodeCentricMatchesCore validates the MapReduce node-centric
// formulations against the sequential implementations across schemes,
// algorithms and both ER tasks.
func TestNodeCentricMatchesCore(t *testing.T) {
	ds := datagen.D1C(0.02)
	inputs := map[string]*block.Collection{
		"example":    blocking.TokenBlocking{}.Build(paperexample.Collection()),
		"cleanclean": blocking.TokenBlocking{}.Build(ds.Collection),
	}
	algorithms := []core.Algorithm{
		core.RedefinedWNP, core.ReciprocalWNP, core.RedefinedCNP, core.ReciprocalCNP,
	}
	for name, blocks := range inputs {
		for _, scheme := range core.AllSchemes {
			for _, alg := range algorithms {
				want := core.NewGraph(blocks, scheme).Prune(alg)
				sortPairs(want)
				got := NewJob(blocks, scheme, mapreduce.Config{Mappers: 3, Partitions: 2}).Prune(alg)
				assertSetsMatch(t, name+"/"+scheme.String()+"/"+alg.String(), scheme, got, want)
			}
		}
	}
}

func TestPruneRejectsUnsupported(t *testing.T) {
	blocks := blocking.TokenBlocking{}.Build(paperexample.Collection())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unsupported algorithm")
		}
	}()
	NewJob(blocks, core.JS, mapreduce.Config{}).Prune(core.WNP)
}
