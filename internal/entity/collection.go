package entity

import (
	"errors"
	"fmt"
	"sort"
)

// Task distinguishes the two Entity Resolution tasks of the paper (§3).
type Task int

const (
	// Dirty ER takes a single entity collection that contains duplicates
	// and produces equivalence clusters (a.k.a. Deduplication).
	Dirty Task = iota
	// CleanClean ER receives two duplicate-free but overlapping entity
	// collections and identifies matches between them (Record Linkage).
	CleanClean
)

// String returns the conventional name of the task.
func (t Task) String() string {
	switch t {
	case Dirty:
		return "Dirty ER"
	case CleanClean:
		return "Clean-Clean ER"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Collection is the input of an ER task: all entity profiles plus, for
// Clean-Clean ER, the boundary between the two source collections.
//
// Profiles are stored in ID order: Profiles[i].ID == ID(i). For Clean-Clean
// ER, IDs < Split belong to the first source collection E1 and the rest to
// E2; for Dirty ER, Split is len(Profiles).
type Collection struct {
	Task     Task
	Profiles []Profile
	Split    int
}

// NewDirty builds a Dirty ER collection, assigning dense IDs in order.
func NewDirty(profiles []Profile) *Collection {
	c := &Collection{Task: Dirty, Profiles: profiles, Split: len(profiles)}
	c.renumber()
	return c
}

// NewCleanClean builds a Clean-Clean ER collection from the two source
// collections, assigning E1 the IDs 0..len(e1)-1 and E2 the rest.
func NewCleanClean(e1, e2 []Profile) *Collection {
	profiles := make([]Profile, 0, len(e1)+len(e2))
	profiles = append(profiles, e1...)
	profiles = append(profiles, e2...)
	c := &Collection{Task: CleanClean, Profiles: profiles, Split: len(e1)}
	c.renumber()
	return c
}

func (c *Collection) renumber() {
	for i := range c.Profiles {
		c.Profiles[i].ID = ID(i)
	}
}

// Size returns |E|, the number of profiles in the collection.
func (c *Collection) Size() int { return len(c.Profiles) }

// Profile returns the profile with the given ID.
func (c *Collection) Profile(id ID) *Profile { return &c.Profiles[id] }

// InFirst reports whether the given profile belongs to the first source
// collection (always true for Dirty ER inputs below Split).
func (c *Collection) InFirst(id ID) bool { return int(id) < c.Split }

// BruteForceComparisons returns ‖E‖, the number of comparisons executed by
// the brute-force approach: n1·n2 for Clean-Clean ER and n(n-1)/2 for
// Dirty ER.
func (c *Collection) BruteForceComparisons() int64 {
	n := int64(len(c.Profiles))
	if c.Task == CleanClean {
		n1 := int64(c.Split)
		return n1 * (n - n1)
	}
	return n * (n - 1) / 2
}

// NamePairs returns |P| (total number of name–value pairs) and |N| (number
// of distinct attribute names) over the given ID range [lo, hi).
func (c *Collection) NamePairs(lo, hi int) (pairs int, names int) {
	distinct := make(map[string]struct{})
	for i := lo; i < hi; i++ {
		pairs += len(c.Profiles[i].Attributes)
		for _, a := range c.Profiles[i].Attributes {
			distinct[a.Name] = struct{}{}
		}
	}
	return pairs, len(distinct)
}

// ToDirty merges a Clean-Clean collection into a single Dirty collection
// that contains the duplicates in itself, exactly as the paper derives the
// DxD datasets from the DxC ones (§6.1). Ground truth carries over
// unchanged because IDs are preserved.
func (c *Collection) ToDirty() *Collection {
	profiles := make([]Profile, len(c.Profiles))
	copy(profiles, c.Profiles)
	return NewDirty(profiles)
}

// Pair is an unordered pair of profile IDs with A < B.
type Pair struct {
	A, B ID
}

// MakePair builds the canonical (ordered) form of a pair.
func MakePair(a, b ID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// GroundTruth is the set of duplicate pairs D(E) of a collection.
type GroundTruth struct {
	pairs map[Pair]struct{}
}

// NewGroundTruth builds a ground truth from duplicate pairs. Pairs are
// canonicalized; duplicates are ignored.
func NewGroundTruth(pairs []Pair) *GroundTruth {
	gt := &GroundTruth{pairs: make(map[Pair]struct{}, len(pairs))}
	for _, p := range pairs {
		gt.pairs[MakePair(p.A, p.B)] = struct{}{}
	}
	return gt
}

// Size returns |D(E)|, the number of existing duplicate pairs.
func (g *GroundTruth) Size() int { return len(g.pairs) }

// Contains reports whether (a, b) is a duplicate pair.
func (g *GroundTruth) Contains(a, b ID) bool {
	_, ok := g.pairs[MakePair(a, b)]
	return ok
}

// Pairs returns all duplicate pairs in a deterministic order.
func (g *GroundTruth) Pairs() []Pair {
	out := make([]Pair, 0, len(g.pairs))
	for p := range g.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Validate checks that the ground truth is consistent with the collection:
// all IDs in range and, for Clean-Clean ER, every pair crossing the split.
func (g *GroundTruth) Validate(c *Collection) error {
	n := ID(c.Size())
	for p := range g.pairs {
		if p.A < 0 || p.B >= n {
			return fmt.Errorf("ground truth pair (%d,%d) out of range [0,%d)", p.A, p.B, n)
		}
		if p.A == p.B {
			return fmt.Errorf("ground truth pair (%d,%d) is reflexive", p.A, p.B)
		}
		if c.Task == CleanClean && c.InFirst(p.A) == c.InFirst(p.B) {
			return errors.New("clean-clean ground truth pair does not cross the collection split")
		}
	}
	return nil
}
