package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"metablocking/internal/dataio"
	"metablocking/internal/obs"
	"metablocking/internal/shard"
	"metablocking/internal/store"
)

// maxBodyBytes bounds a request body — matches the JSONL scanner buffer
// used by the batch tools (4 MiB).
const maxBodyBytes = 1 << 22

// ResolveResponse is the JSON body of a successful /v1/resolve call.
type ResolveResponse struct {
	// ID is the arrival-order identifier the index assigned, or -1 for a
	// degraded (read-only) answer.
	ID int `json:"id"`
	// Candidates lists the pruned comparison suggestions, heaviest first.
	Candidates []CandidateJSON `json:"candidates"`
	// Degraded marks an answer served read-only from the last good index
	// while the write path's circuit breaker is open.
	Degraded bool `json:"degraded,omitempty"`
}

// CandidateJSON is one pruned candidate comparison.
type CandidateJSON struct {
	ID     int     `json:"id"`
	Weight float64 `json:"weight"`
}

// ReloadRequest is the JSON body of /v1/admin/reload.
type ReloadRequest struct {
	// Path names a resolver-snapshot artifact written by internal/store.
	Path string `json:"path"`
}

// ReloadResponse reports a completed snapshot swap.
type ReloadResponse struct {
	// Profiles is the size of the freshly loaded index.
	Profiles int `json:"profiles"`
}

// SnapshotRequest is the JSON body of /v1/admin/snapshot.
type SnapshotRequest struct {
	// Path is where the resolver-snapshot artifact is written. In disk
	// mode it may be empty: the snapshot is then a checkpoint of the
	// serving directory itself.
	Path string `json:"path"`
}

// SnapshotResponse reports a persisted snapshot.
type SnapshotResponse struct {
	// Profiles is the size of the index that was snapshotted.
	Profiles int `json:"profiles"`
	Path     string `json:"path"`
}

// Stable machine-readable error codes of the /v1 API. Every non-2xx
// response carries one in its envelope; clients (internal/loadgen)
// branch on the code, never on the message text or status phrase.
const (
	// CodeInvalidRequest (400): the request body could not be read or
	// decoded at all.
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound (404): the named snapshot artifact does not exist.
	CodeNotFound = "not_found"
	// CodeTimeout (408): the per-request deadline expired or the client
	// context was canceled before the answer.
	CodeTimeout = "timeout"
	// CodeBodyTooLarge (413): the request body exceeded maxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeInvalidProfile (422): the body decoded but is not a valid
	// profile record.
	CodeInvalidProfile = "invalid_profile"
	// CodeCorruptArtifact (422): the named snapshot failed checksum or
	// payload verification; the live index was not touched.
	CodeCorruptArtifact = "corrupt_artifact"
	// CodeVersionMismatch (422): the named snapshot was written by an
	// incompatible format version.
	CodeVersionMismatch = "version_mismatch"
	// CodeSchemeMismatch (422): the snapshot's weighting scheme differs
	// from the serving scheme.
	CodeSchemeMismatch = "scheme_mismatch"
	// CodeQueueFull (429): the admission queue shed the request; the
	// envelope carries retry_after_ms.
	CodeQueueFull = "queue_full"
	// CodeShardBusy (429): a shard's admission queue shed the request;
	// the envelope carries retry_after_ms.
	CodeShardBusy = "shard_busy"
	// CodeTierBusy (429): the request's SLA tier has no admission slot
	// free; the envelope carries retry_after_ms.
	CodeTierBusy = "tier_busy"
	// CodeCursorInvalid (410): the resumption cursor failed verification —
	// bad signature (a restart rotates the key), a stale snapshot
	// generation, or a profile that no longer hashes to the cursor's. The
	// stream must be restarted from scratch.
	CodeCursorInvalid = "cursor_invalid"
	// CodeDraining (503): the server is shutting down gracefully.
	CodeDraining = "draining"
	// CodeShardDown (503): the request's home shard is marked down.
	CodeShardDown = "shard_down"
	// CodeInternal (500): an unclassified per-request failure (injected
	// fault, recovered panic, index error).
	CodeInternal = "internal"
)

// ErrorBody is the envelope's payload: a stable code, a human-readable
// message, and — on retryable statuses (408/429/503) — the advisory
// back-off.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the versioned JSON body of every non-2xx response:
//
//	{"error":{"code":"queue_full","message":"...","retry_after_ms":1000}}
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// writeError emits the envelope. Retryable statuses — 408 (timeout), 429
// (shed) and 503 (draining / shard down) — carry retry_after_ms and the
// legacy Retry-After header so every client backs off uniformly instead
// of special-casing 429.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	body := ErrorResponse{Error: ErrorBody{Code: code, Message: msg}}
	switch status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		body.Error.RetryAfterMs = s.cfg.RetryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	}
	writeJSON(w, status, body)
}

// resolveErrorCode maps a Resolve error to its status and stable code.
func resolveErrorCode(err error) (int, string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull
	case errors.Is(err, shard.ErrShardBusy):
		return http.StatusTooManyRequests, CodeShardBusy
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, shard.ErrShardDown):
		return http.StatusServiceUnavailable, CodeShardDown
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, CodeTimeout
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// Handler returns the service mux:
//
//	POST /v1/resolve      — resolve one JSONL profile record
//	POST /v1/admin/reload — hot-swap the index from a snapshot file
//	POST /v1/admin/snapshot — persist the serving index to a snapshot file
//	GET  /v1/admin/status — effective config, shard gauges, breaker state
//	GET  /healthz         — liveness (always 200 while the process runs)
//	GET  /readyz          — readiness (503 once draining)
//	GET  /metrics         — the obs registry as a plain-text table
//	GET  /debug/vars      — the obs registry as expvar-style JSON
//
// Every endpoint is wrapped in obs.HTTPMetrics, so the registry carries
// per-endpoint request/error/shed/latency counters. When
// Config.RequestTimeout is set, every request's context additionally
// carries that deadline, so a stalled index pass turns into a bounded 408
// instead of a hung connection.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.HandlerFunc) {
		if d := s.cfg.RequestTimeout; d > 0 {
			inner := h
			h = func(w http.ResponseWriter, req *http.Request) {
				ctx, cancel := context.WithTimeout(req.Context(), d)
				defer cancel()
				inner(w, req.WithContext(ctx))
			}
		}
		mux.Handle(pattern, obs.HTTPMetrics(s.metrics, nil, name, h))
	}
	handle("POST /v1/resolve", "resolve", s.handleResolve)
	handle("POST /v1/admin/reload", "reload", s.handleReload)
	handle("POST /v1/admin/snapshot", "snapshot", s.handleSnapshot)
	handle("GET /v1/admin/status", "status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	handle("GET /healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	handle("GET /readyz", "readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ready\n")
	})
	handle("GET /metrics", "metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, s.metrics.Snapshot().Table())
	})
	handle("GET /debug/vars", "vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(s.metrics.Snapshot())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleResolve(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return
		}
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	p, err := dataio.ParseProfileJSON(body)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodeInvalidProfile, err.Error())
		return
	}
	if isStreamRequest(req) {
		s.handleResolveStream(w, req, p, start)
		return
	}
	res, err := s.Resolve(req.Context(), p)
	if err != nil {
		status, code := resolveErrorCode(err)
		s.writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ResolveResponse{
		ID:         int(res.ID),
		Candidates: candidateJSON(res.Candidates),
		Degraded:   res.Degraded,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, req *http.Request) {
	var r ReloadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&r); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if r.Path == "" {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "missing snapshot path")
		return
	}
	n, err := s.ReloadFile(r.Path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		s.writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	case errors.Is(err, store.ErrCorruptArtifact):
		// Verify-before-swap: the artifact failed verification, the live
		// index was never touched. 422: the request was well-formed but
		// names an unusable snapshot.
		s.writeError(w, http.StatusUnprocessableEntity, CodeCorruptArtifact, err.Error())
		return
	case errors.Is(err, store.ErrVersionMismatch):
		s.writeError(w, http.StatusUnprocessableEntity, CodeVersionMismatch, err.Error())
		return
	case errors.Is(err, ErrSchemeMismatch):
		s.writeError(w, http.StatusUnprocessableEntity, CodeSchemeMismatch, err.Error())
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Profiles: n})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	var r SnapshotRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(&r); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if r.Path == "" && !s.diskMode() {
		s.writeError(w, http.StatusBadRequest, CodeInvalidRequest, "missing snapshot path")
		return
	}
	n, err := s.SnapshotFile(r.Path)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	path := r.Path
	if path == "" {
		path = s.cfg.DiskDir
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Profiles: n, Path: path})
}
