// Command serve runs the online Entity Resolution query service: an
// HTTP/JSON façade over the incremental resolver that micro-batches
// concurrent /v1/resolve requests into single index passes, sheds load
// with 429 + Retry-After when its bounded admission queue fills, and
// hot-swaps pre-blocked snapshots (written by internal/store) via
// /v1/admin/reload without failing in-flight requests.
//
// With -shards N (N > 1) the index is partitioned into N single-writer
// shards behind a scatter-gather coordinator; answers stay bit-identical
// to the single-index configuration at every shard count.
//
// With -disk-dir the index is out-of-core: recent arrivals live in
// per-shard memtables, sealed history in paged, checksummed segment
// files under the directory, compacted in the background. The directory
// is recovered to its newest consistent checkpoint at startup;
// /v1/admin/snapshot with an empty path checkpoints it in place.
// -memtable-budget bounds RAM per shard, -disk-cache the posting-page
// cache. Answers remain bit-identical to the in-memory configurations.
//
// POST /v1/resolve also serves a budget-aware progressive mode: with an
// Accept of text/event-stream (SSE) or application/x-ndjson, or any of
// the budget_ms / max_comparisons / min_confidence / tier / cursor query
// parameters, ranked candidates stream best-first in batches. A request
// that exhausts its budget receives the best prefix plus a signed
// resumption cursor; -interactive-slots / -batch-slots bound per-tier
// concurrency and -interactive-budget / -batch-budget set the default
// SLAs.
//
// Endpoints: POST /v1/resolve, POST /v1/admin/reload,
// POST /v1/admin/snapshot, GET /v1/admin/status, GET /healthz,
// GET /readyz, GET /metrics, GET /debug/vars. Every non-2xx response
// carries a structured {"error":{"code":...}} envelope.
//
// Example:
//
//	go run ./cmd/serve -addr 127.0.0.1:8080 -scheme js -k 5 &
//	curl -X POST -d '{"attributes":{"name":["Jack Miller"]}}' \
//	    http://127.0.0.1:8080/v1/resolve
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops, accepted
// requests are answered, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metablocking/internal/budget"
	"metablocking/internal/core"
	"metablocking/internal/fault"
	"metablocking/internal/incremental"
	"metablocking/internal/server"
	"metablocking/internal/store"
)

// faultFlags collects repeatable -fault values ("site:directive,...").
type faultFlags []string

func (f *faultFlags) String() string { return fmt.Sprint(*f) }
func (f *faultFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// options carries the parsed command-line configuration.
type options struct {
	addr        string
	scheme      string
	k           int
	maxBlock    int
	minToken    int
	shards      int
	shardQueue  int
	diskDir     string
	memBudget   int
	diskCache   int
	compactN    int
	wal         bool
	walSync     string
	walInterval time.Duration
	batchWindow time.Duration
	batchMax    int
	queueDepth  int
	retryAfter  time.Duration
	snapshot    string
	metrics     bool

	// Budget-aware streaming knobs.
	interactiveSlots  int
	batchSlots        int
	interactiveBudget time.Duration
	batchBudget       time.Duration
	streamBatch       int

	// Resilience knobs.
	requestTimeout  time.Duration
	breakerFailures int
	breakerCooldown time.Duration
	faults          faultFlags
	faultSeed       int64
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	flag.StringVar(&opts.scheme, "scheme", "js", "weighting scheme: arcs, cbs, ecbs, js")
	flag.IntVar(&opts.k, "k", 10, "max candidates per arrival (0 = mean-weight pruning)")
	flag.IntVar(&opts.maxBlock, "maxblock", 1000, "ignore blocks larger than this")
	flag.IntVar(&opts.minToken, "min-token", 0, "drop tokens shorter than this at blocking time")
	flag.IntVar(&opts.shards, "shards", 1, "index partitions behind the scatter-gather coordinator (answers are identical at every count)")
	flag.IntVar(&opts.shardQueue, "shard-queue", 2, "per-shard admission queue bound when -shards > 1")
	flag.StringVar(&opts.diskDir, "disk-dir", "", "serve the out-of-core index from this directory (recovered at startup; empty = in-memory)")
	flag.IntVar(&opts.memBudget, "memtable-budget", 32<<20, "per-shard memtable bytes before an automatic checkpoint (-disk-dir mode)")
	flag.IntVar(&opts.diskCache, "disk-cache", 8<<20, "per-shard posting-page cache bytes (-disk-dir mode)")
	flag.IntVar(&opts.compactN, "compact-after", 4, "sealed delta segments per shard before background compaction (-disk-dir mode)")
	flag.BoolVar(&opts.wal, "wal", true, "write-ahead-log every commit before acknowledging it (-disk-dir mode; false trades crash durability for speed)")
	flag.StringVar(&opts.walSync, "wal-sync", "always", "WAL fsync policy: always (group-commit barrier per batch), interval, off (-disk-dir mode)")
	flag.DurationVar(&opts.walInterval, "wal-sync-interval", 100*time.Millisecond, "fsync cadence for -wal-sync=interval")
	flag.DurationVar(&opts.batchWindow, "batch-window", 2*time.Millisecond, "max wait for more arrivals before flushing a micro-batch")
	flag.IntVar(&opts.batchMax, "batch-max", 64, "max arrivals per index pass")
	flag.IntVar(&opts.queueDepth, "queue", 1024, "admission queue bound; overflow sheds with 429")
	flag.DurationVar(&opts.retryAfter, "retry-after", time.Second, "advisory back-off sent with 429 responses")
	flag.StringVar(&opts.snapshot, "snapshot", "", "resolver snapshot to load at startup (see /v1/admin/reload)")
	flag.IntVar(&opts.interactiveSlots, "interactive-slots", 64, "concurrent streamed resolves admitted for the interactive tier (0 = unbounded)")
	flag.IntVar(&opts.batchSlots, "batch-slots", 8, "concurrent streamed resolves admitted for the batch tier (0 = unbounded)")
	flag.DurationVar(&opts.interactiveBudget, "interactive-budget", 250*time.Millisecond, "default time budget for interactive-tier streams that set none (0 = unbudgeted)")
	flag.DurationVar(&opts.batchBudget, "batch-budget", 5*time.Second, "default time budget for batch-tier streams that set none (0 = unbudgeted)")
	flag.IntVar(&opts.streamBatch, "stream-batch", 16, "ranked candidates flushed per streamed frame")
	flag.BoolVar(&opts.metrics, "metrics", false, "print the counter table to stderr on exit")
	flag.DurationVar(&opts.requestTimeout, "request-timeout", 5*time.Second, "per-request deadline (0 disables)")
	flag.IntVar(&opts.breakerFailures, "breaker-failures", 5, "consecutive resolve failures that open degraded mode (-1 disables)")
	flag.DurationVar(&opts.breakerCooldown, "breaker-cooldown", time.Second, "how long degraded mode lasts before a recovery probe")
	flag.Var(&opts.faults, "fault", "arm a fault site, e.g. store.save.sync:delay=2s or server.resolve:panic,times=1 (repeatable; chaos testing only)")
	flag.Int64Var(&opts.faultSeed, "fault-seed", 1, "seed for probabilistic fault injection")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is canceled, then drains
// gracefully. When ready is non-nil the resolved listen address is sent on
// it once the listener is bound (used by tests and by nothing else).
func run(ctx context.Context, opts options, logw io.Writer, ready chan<- string) error {
	scheme, err := parseScheme(opts.scheme)
	if err != nil {
		return err
	}

	// Chaos testing: arm the requested fault sites. The injector reaches
	// the store (snapshot save/load) and the server's resolve path; with
	// no -fault flags both run fault-free at nil-injector cost.
	var inj *fault.Injector
	if len(opts.faults) > 0 {
		inj = fault.New(opts.faultSeed)
		for _, v := range opts.faults {
			name, spec, err := fault.ParseSpec(v)
			if err != nil {
				return err
			}
			inj.Arm(name, spec)
			fmt.Fprintf(logw, "serve: armed fault %s\n", v)
		}
		store.SetInjector(inj)
		defer store.SetInjector(nil)
	}

	srv, err := server.New(server.Config{
		Resolver: incremental.Config{
			Scheme:         scheme,
			K:              opts.k,
			MaxBlockSize:   opts.maxBlock,
			MinTokenLength: opts.minToken,
		},
		Shards:           opts.shards,
		ShardQueueDepth:  opts.shardQueue,
		DiskDir:          opts.diskDir,
		MemtableBudget:   opts.memBudget,
		DiskCacheBytes:   opts.diskCache,
		DiskCompactAfter: opts.compactN,
		WALDisabled:      !opts.wal,
		WALSync:          opts.walSync,
		WALSyncInterval:  opts.walInterval,
		BatchWindow:      opts.batchWindow,
		MaxBatch:         opts.batchMax,
		QueueDepth:       opts.queueDepth,
		RetryAfter:       opts.retryAfter,
		RequestTimeout:   opts.requestTimeout,
		BreakerThreshold: opts.breakerFailures,
		BreakerCooldown:  opts.breakerCooldown,
		Tiers: []budget.Tier{
			{Name: budget.TierInteractive, Slots: opts.interactiveSlots, DefaultBudget: opts.interactiveBudget},
			{Name: budget.TierBatch, Slots: opts.batchSlots, DefaultBudget: opts.batchBudget},
		},
		StreamBatch: opts.streamBatch,
	}, server.WithFault(inj))
	if err != nil {
		return err
	}
	defer srv.Close()
	if opts.snapshot != "" {
		n, err := srv.ReloadFile(opts.snapshot)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		fmt.Fprintf(logw, "serve: loaded snapshot %s (%d profiles)\n", opts.snapshot, n)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	// Connection-level deadlines: a client that stalls sending headers or
	// a body, or stops reading its response, cannot pin a connection (and
	// its handler goroutine) forever. Per-request work is bounded
	// separately by -request-timeout inside the handler.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(logw, "serve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener (in-flight handlers finish),
	// then answer every accepted request before exiting.
	fmt.Fprintln(logw, "serve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close()
	if opts.metrics {
		fmt.Fprint(logw, srv.Metrics().Snapshot().Table())
	}
	fmt.Fprintf(logw, "serve: drained, %d profiles resolved\n", srv.Size())
	return nil
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "arcs":
		return core.ARCS, nil
	case "cbs":
		return core.CBS, nil
	case "ecbs":
		return core.ECBS, nil
	case "js":
		return core.JS, nil
	default:
		return 0, fmt.Errorf("unknown or unsupported scheme %q: %w (EJS needs global state)", s, core.ErrUnsupportedScheme)
	}
}
