package eval

import (
	"fmt"
	"sort"

	"metablocking/internal/block"
)

// BlockStats summarizes a block collection's structure: the size and
// cardinality distribution that drives every method in this repository
// (Block Purging trims the tail, Block Filtering reorders by it, ARCS
// weights by it). Used for dataset calibration and diagnostics.
type BlockStats struct {
	Blocks      int
	Comparisons int64
	Assignments int64
	BPE         float64
	// MinSize..MaxSize describe the block-size (|b|) distribution.
	MinSize, MaxSize int
	MedianSize       int
	P90Size, P99Size int
	// TopShare is the fraction of ‖B‖ contributed by the largest 1% of
	// blocks — the skew Block Purging and Filtering exploit.
	TopShare float64
}

// ComputeBlockStats derives the statistics of a collection.
func ComputeBlockStats(c *block.Collection) BlockStats {
	s := BlockStats{
		Blocks:      c.Len(),
		Comparisons: c.Comparisons(),
		Assignments: c.Assignments(),
		BPE:         c.BPE(),
	}
	if c.Len() == 0 {
		return s
	}
	sizes := make([]int, c.Len())
	cards := make([]int64, c.Len())
	for i := range c.Blocks {
		sizes[i] = c.Blocks[i].Size()
		cards[i] = c.Blocks[i].Comparisons()
	}
	sort.Ints(sizes)
	s.MinSize = sizes[0]
	s.MaxSize = sizes[len(sizes)-1]
	s.MedianSize = sizes[len(sizes)/2]
	s.P90Size = sizes[percentileIndex(len(sizes), 0.90)]
	s.P99Size = sizes[percentileIndex(len(sizes), 0.99)]

	sort.Slice(cards, func(i, j int) bool { return cards[i] < cards[j] })
	top := len(cards) / 100
	if top < 1 {
		top = 1
	}
	var topSum int64
	for _, card := range cards[len(cards)-top:] {
		topSum += card
	}
	if s.Comparisons > 0 {
		s.TopShare = float64(topSum) / float64(s.Comparisons)
	}
	return s
}

func percentileIndex(n int, p float64) int {
	idx := int(p * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// String renders the stats on one line.
func (s BlockStats) String() string {
	return fmt.Sprintf("|B|=%d ‖B‖=%d BPE=%.2f sizes[min/med/p90/p99/max]=%d/%d/%d/%d/%d top1%%=%.0f%%",
		s.Blocks, s.Comparisons, s.BPE,
		s.MinSize, s.MedianSize, s.P90Size, s.P99Size, s.MaxSize, 100*s.TopShare)
}
