// Package entity defines the entity-profile model that all blocking and
// meta-blocking components operate on.
//
// An entity profile is a uniquely identified collection of name–value pairs
// describing a real-world object (paper §3). Profiles are grouped into
// collections; depending on the input collections, Entity Resolution is
// either Dirty ER (one collection with duplicates in itself) or Clean-Clean
// ER (two duplicate-free but overlapping collections).
package entity

import (
	"fmt"
	"strings"
	"unicode"
)

// ID identifies a profile within a Collection. IDs are dense: a collection
// with n profiles uses IDs 0..n-1. For Clean-Clean ER the two source
// collections share one ID space; IDs below the split belong to the first
// collection.
type ID = int32

// Attribute is a single name–value pair of a profile.
type Attribute struct {
	Name  string
	Value string
}

// Profile is a uniquely identified set of name–value pairs.
type Profile struct {
	ID         ID
	Attributes []Attribute
}

// Add appends a name–value pair to the profile.
func (p *Profile) Add(name, value string) {
	p.Attributes = append(p.Attributes, Attribute{Name: name, Value: value})
}

// Tokens returns the whitespace-delimited, lower-cased tokens of all
// attribute values of the profile. It is the token set used by Token
// Blocking and by the Jaccard entity matcher.
func (p *Profile) Tokens() []string {
	var out []string
	for _, a := range p.Attributes {
		out = appendTokens(out, a.Value)
	}
	return out
}

// TokenSet returns the distinct tokens of the profile's values.
func (p *Profile) TokenSet() map[string]struct{} {
	set := make(map[string]struct{})
	for _, a := range p.Attributes {
		for _, t := range Tokenize(a.Value) {
			set[t] = struct{}{}
		}
	}
	return set
}

// String renders the profile compactly, for debugging and examples.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d{", p.ID)
	for i, a := range p.Attributes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%q", a.Name, a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Tokenize splits a value into maximal runs of letters and digits and
// lower-cases the result, dropping empty tokens. It is deliberately
// schema-agnostic — no stemming, no stop words — mirroring the paper's
// Token Blocking, and Unicode-aware: any non-letter, non-digit rune
// (whitespace, punctuation, typographic hyphens, …) separates tokens.
func Tokenize(value string) []string {
	return appendTokens(nil, value)
}

// AppendTokens appends the value's tokens (same splitting and lowering as
// Tokenize) to dst and returns the extended slice, letting hot callers
// reuse one token buffer across values instead of allocating per call.
func AppendTokens(dst []string, value string) []string {
	return appendTokens(dst, value)
}

func appendTokens(dst []string, value string) []string {
	// Fast path: pure ASCII values (the overwhelming majority in the
	// synthetic benchmarks) avoid rune decoding, and the value is
	// lower-cased at most once — every token is then a zero-copy substring
	// instead of a per-token ToLower allocation.
	if isASCII(value) {
		if hasUpperASCII(value) {
			value = strings.ToLower(value)
		}
		start := -1
		for i := 0; i < len(value); i++ {
			if isASCIITokenByte(value[i]) {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				dst = append(dst, value[start:i])
				start = -1
			}
		}
		if start >= 0 {
			dst = append(dst, value[start:])
		}
		return dst
	}
	start := -1
	for i, r := range value {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = append(dst, strings.ToLower(value[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		dst = append(dst, strings.ToLower(value[start:]))
	}
	return dst
}

func hasUpperASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			return true
		}
	}
	return false
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

func isASCIITokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
