package metablocking

import (
	"context"
	"errors"
	"strings"
	"testing"

	"metablocking/internal/block"
	"metablocking/internal/entity"
)

// panickingMethod is a blocking method whose build panics — a stand-in for
// any bug deep inside a pipeline stage.
type panickingMethod struct{}

func (panickingMethod) Name() string { return "panicking" }
func (panickingMethod) Build(c *entity.Collection) *block.Collection {
	panic("blocking stage bug")
}

// TestRunContextRecoversPanic: a panic anywhere in the pipeline surfaces
// as a *PanicError from RunContext instead of killing the process, with
// the stack attached.
func TestRunContextRecoversPanic(t *testing.T) {
	ds := GenerateDataset(D1D, 0.05)
	p := Pipeline{Blocking: panickingMethod{}, Scheme: JS, Algorithm: WNP}
	res, err := p.RunContext(context.Background(), ds.Collection)
	if res != nil {
		t.Fatal("panicking run returned a result")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "blocking stage bug" {
		t.Fatalf("recovered value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "Build") {
		t.Fatalf("stack does not show the panicking frame:\n%s", pe.Stack)
	}
	// The same pipeline with a sane method still works afterwards — the
	// process and the caller's goroutine are unharmed.
	p.Blocking = TokenBlocking{}
	if _, err := p.RunContext(context.Background(), ds.Collection); err != nil {
		t.Fatalf("recovery left the pipeline unusable: %v", err)
	}
}

// TestRunContextRecoversWorkerPanic: the panic is raised inside a parallel
// worker goroutine (where recover on the caller cannot see it without
// par's isolation) and must still come back as a typed error.
func TestRunContextRecoversWorkerPanic(t *testing.T) {
	ds := GenerateDataset(D1D, 0.05)
	// Corrupt the input so a parallel stage indexes out of range: a profile
	// ID beyond the collection bounds makes the Entity Index build panic
	// inside its sharded loop.
	profiles := append([]Profile(nil), ds.Collection.Profiles...)
	c := NewDirty(profiles)
	c.Profiles[0].ID = ID(len(profiles) + 1000000)
	p := Pipeline{FilterRatio: 0.8, Scheme: JS, Algorithm: WNP, Workers: 4}
	res, err := p.RunContext(context.Background(), c)
	if err == nil {
		t.Skip("corrupted input did not trip the parallel stage on this path")
	}
	if res != nil {
		t.Fatal("panicking run returned a result")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
}
