// Package mrmeta expresses meta-blocking as MapReduce jobs over the
// in-memory engine of package mapreduce — the formulation the paper's
// ref [20] lineage uses to scale blocking-based ER beyond one machine.
//
// Job 1 (entity index): map blocks → (entity, block id); reduce → block
// lists. Job 2 (edge weighting): map blocks → (pair, contribution); reduce
// → edge weights, using the broadcast entity statistics of job 1. The
// driver then applies an edge-centric pruning criterion (WEP's mean
// threshold or CEP's top-K) over the weighted edges.
//
// Outputs are validated against the sequential core implementation in the
// tests; the point of this package is the faithful distributed
// formulation, not raw speed (the in-memory engine pays shuffle
// materialization costs the sequential traversals avoid).
package mrmeta

import (
	"math"
	"sort"

	"metablocking/internal/block"
	"metablocking/internal/core"
	"metablocking/internal/entity"
	"metablocking/internal/floatsum"
	"metablocking/internal/mapreduce"
)

// blockInput is one map input of either job: a block with its positional
// ID.
type blockInput struct {
	id  int32
	blk *block.Block
	// comparisons caches ‖b‖ for ARCS contributions.
	comparisons int64
	clean       bool
}

// WeightedEdge is one output of the edge-weighting job.
type WeightedEdge struct {
	Pair   entity.Pair
	Weight float64
}

// Job holds the broadcast state shared by all tasks: the input blocks and
// the entity statistics (block lists per entity) produced by job 1.
type Job struct {
	blocks *block.Collection
	scheme core.Scheme
	cfg    mapreduce.Config

	// blocksPerEntity is |Bi| per entity (job 1 output).
	blocksPerEntity []int32
	numBlocks       float64
	nodes           float64
}

// numNodes lazily counts |VB| — the entities appearing in ≥1 block.
func (j *Job) numNodes() float64 {
	if j.nodes == 0 {
		for _, n := range j.blocksPerEntity {
			if n > 0 {
				j.nodes++
			}
		}
	}
	return j.nodes
}

// NewJob prepares the broadcast state by running the entity-index job.
func NewJob(c *block.Collection, scheme core.Scheme, cfg mapreduce.Config) *Job {
	j := &Job{blocks: c, scheme: scheme, cfg: cfg, numBlocks: float64(c.Len())}
	j.blocksPerEntity = j.runIndexJob()
	return j
}

// runIndexJob is job 1: entity → |Bi| via map(block) → (entity, 1),
// reduce(entity, ones) → count.
func (j *Job) runIndexJob() []int32 {
	type indexOut struct {
		id    entity.ID
		count int32
	}
	inputs := j.inputs()
	outs := mapreduce.Run(inputs,
		func(in blockInput, emit func(entity.ID, int32)) {
			for _, id := range in.blk.E1 {
				emit(id, 1)
			}
			for _, id := range in.blk.E2 {
				emit(id, 1)
			}
		},
		func(id entity.ID, ones []int32, emit func(indexOut)) {
			var n int32
			for _, v := range ones {
				n += v
			}
			emit(indexOut{id: id, count: n})
		},
		j.cfg)
	counts := make([]int32, j.blocks.NumEntities)
	for _, o := range outs {
		counts[o.id] = o.count
	}
	return counts
}

func (j *Job) inputs() []blockInput {
	clean := j.blocks.Task == entity.CleanClean
	inputs := make([]blockInput, j.blocks.Len())
	for i := range j.blocks.Blocks {
		b := &j.blocks.Blocks[i]
		inputs[i] = blockInput{
			id:          int32(i),
			blk:         b,
			comparisons: b.Comparisons(),
			clean:       clean,
		}
	}
	return inputs
}

// WeightedEdges is job 2: map every block to its comparisons' (pair,
// contribution) and reduce each pair's contributions into the edge weight.
// The map side emits every comparison, including redundant repetitions —
// the reduce side's aggregate equals |Bij| (or Σ 1/‖b‖), exactly the
// statistic the weighting schemes need, so no LeCoBI test is required.
func (j *Job) WeightedEdges() []WeightedEdge {
	// EJS needs node degrees, which require one more aggregation: degree
	// = number of distinct neighbors. Derive it from the pair keys after
	// the main shuffle instead of a third job.
	edges := mapreduce.Run(j.inputs(),
		func(in blockInput, emit func(entity.Pair, float64)) {
			contribution := 1.0
			if j.scheme == core.ARCS && in.comparisons > 0 {
				contribution = 1 / float64(in.comparisons)
			}
			if in.clean {
				for _, a := range in.blk.E1 {
					for _, b := range in.blk.E2 {
						emit(entity.MakePair(a, b), contribution)
					}
				}
				return
			}
			ids := in.blk.E1
			for x := 0; x < len(ids); x++ {
				for y := x + 1; y < len(ids); y++ {
					emit(entity.MakePair(ids[x], ids[y]), contribution)
				}
			}
		},
		func(p entity.Pair, contributions []float64, emit func(WeightedEdge)) {
			// Contributions arrive in shuffle order; sort before folding
			// so the aggregate is deterministic (float addition is not
			// associative). Only ARCS has non-uniform contributions.
			sort.Float64s(contributions)
			var sum float64
			for _, c := range contributions {
				sum += c
			}
			emit(WeightedEdge{Pair: p, Weight: sum}) // finalized below
		},
		j.cfg)

	var degrees []int32
	if j.scheme.NeedsDegrees() {
		degrees = make([]int32, j.blocks.NumEntities)
		for _, e := range edges {
			degrees[e.Pair.A]++
			degrees[e.Pair.B]++
		}
	}
	for i := range edges {
		edges[i].Weight = j.finalize(edges[i].Pair, edges[i].Weight, degrees)
	}
	return edges
}

// finalize turns the aggregated co-occurrence statistic into the scheme's
// weight, mirroring core's weight formulas.
func (j *Job) finalize(p entity.Pair, agg float64, degrees []int32) float64 {
	bi := float64(j.blocksPerEntity[p.A])
	bj := float64(j.blocksPerEntity[p.B])
	var di, dj float64
	if degrees != nil {
		di, dj = float64(degrees[p.A]), float64(degrees[p.B])
	}
	// Canonicalize operand pairs exactly as core.weightContext.weight does,
	// so the (non-associative) float products come out bit-identical.
	if bi > bj || (bi == bj && di > dj) {
		bi, bj = bj, bi
		di, dj = dj, di
	}
	switch j.scheme {
	case core.ARCS, core.CBS:
		return agg
	case core.ECBS:
		return agg * math.Log(j.numBlocks/bi) * math.Log(j.numBlocks/bj)
	case core.JS:
		return agg / (bi + bj - agg)
	case core.EJS:
		js := agg / (bi + bj - agg)
		return js * math.Log(j.numNodes()/di) * math.Log(j.numNodes()/dj)
	default:
		return agg
	}
}

// WEP prunes the weighted edges at the global mean (Weighted Edge
// Pruning), returning the retained pairs in canonical order.
func (j *Job) WEP() []entity.Pair {
	edges := j.WeightedEdges()
	if len(edges) == 0 {
		return nil
	}
	// Exact (correctly rounded) mean, bit-identical to core's threshold
	// when the per-edge weights are: the exact sum depends only on the
	// multiset of weights, not on shuffle order.
	var acc floatsum.Acc
	for _, e := range edges {
		acc.Add(e.Weight)
	}
	mean := acc.Mean()
	var out []entity.Pair
	for _, e := range edges {
		if e.Weight >= mean {
			out = append(out, e.Pair)
		}
	}
	sortPairs(out)
	return out
}

// CEP retains the globally top-K weighted edges, K = ⌊Σ|b|/2⌋, with the
// same canonical tie-breaking as the core implementation.
func (j *Job) CEP() []entity.Pair {
	k := int(j.blocks.Assignments() / 2)
	edges := j.WeightedEdges()
	if k <= 0 || len(edges) == 0 {
		return nil
	}
	sort.Slice(edges, func(a, b int) bool {
		ea, eb := edges[a], edges[b]
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		if ea.Pair.A != eb.Pair.A {
			return ea.Pair.A < eb.Pair.A
		}
		return ea.Pair.B < eb.Pair.B
	})
	if k > len(edges) {
		k = len(edges)
	}
	out := make([]entity.Pair, 0, k)
	for _, e := range edges[:k] {
		out = append(out, e.Pair)
	}
	sortPairs(out)
	return out
}

func sortPairs(pairs []entity.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}
